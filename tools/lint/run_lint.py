#!/usr/bin/env python3
"""XSACT project lint: concurrency-discipline checks the compiler can't do.

Four checks, each cheap enough to run on every commit (pure stdlib, no
third-party deps, no compiler needed):

  raw-mutex       No raw std::mutex / std::lock_guard / std::unique_lock /
                  std::condition_variable / std::once_flag outside
                  src/common/mutex.h. All locking goes through the
                  annotated xsact::Mutex so the clang -Wthread-safety CI
                  gate sees every acquisition (a raw mutex is invisible
                  to it). Waiver: // LINT:ALLOW(raw-mutex): <reason>

  blocking-call   Functions marked XSACT_EVENT_LOOP_THREAD in a header
                  must not block in their .cc definitions: no sleeps, no
                  file streams, no unbounded future.wait() — one stalled
                  callback stalls every connection the loop serves.
                  Waiver (same line or up to 3 lines above):
                  // LINT:ALLOW(blocking-call): <reason>

  fault-docs      Every fault::RegisterFaultPoint("name") site in src/
                  must be documented in docs/robustness.md, and every
                  fault-point name the doc mentions must still exist in
                  the code — the chaos-testing table is the operator
                  contract and silently drifting names break soak runs.

  memory-order    Atomic operations (.load/.store/.exchange/fetch_*/
                  compare_exchange_*, std::atomic_load/atomic_store) must
                  pass an explicit std::memory_order argument. Defaulted
                  seq_cst on hot paths hides both cost and intent; the
                  codebase spells ordering out everywhere.
                  Waiver: // LINT:ALLOW(memory-order): <reason>

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Usage:
  tools/lint/run_lint.py                    # lint src/ (the CI mode)
  tools/lint/run_lint.py path [path...]     # lint specific files/dirs
  tools/lint/run_lint.py --skip-fault-docs  # e.g. for fixture subsets
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

# The one file allowed to name raw standard-library primitives: it wraps
# them in the annotated capability types everything else must use.
RAW_MUTEX_ALLOWED = {"src/common/mutex.h"}

RAW_MUTEX_TOKENS = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::condition_variable",
    "std::once_flag",
    "std::call_once",
]

# Tokens that block (or can block unboundedly) inside an event-loop
# function. `.wait_for(`/`.wait_until(` are deliberately absent: the loop
# legitimately polls futures with a zero timeout.
BLOCKING_TOKENS = [
    "sleep_for",
    "sleep_until",
    "::usleep",
    "::nanosleep",
    "std::ifstream",
    "std::ofstream",
    "std::fstream",
    "fopen(",
    "::system(",
    ".wait()",
    ".join(",
]

CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

# File extensions that make a backticked `a.b` token in the docs a file
# name, not a fault-point name.
DOC_FILE_SUFFIXES = {
    "cc", "h", "hpp", "cpp", "py", "md", "xml", "json", "yml", "yaml", "txt",
}


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving newlines.

    Keeps byte offsets stable so line numbers computed on the stripped
    text match the original file.
    """
    out = list(text)
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i
            while j + 1 < n and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j + 1 < n:
                out[j] = " "
                out[j + 1] = " "
                j += 2
            i = j
        elif c == '"' or c == "'":
            quote = c
            out[i] = " "
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    if text[j] != "\n":
                        out[j] = " "
                    j += 1
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n:
                out[j] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def waived(lines, lineno, tag, window=3):
    """True if a LINT:ALLOW(tag) comment covers 1-based line `lineno`."""
    needle = f"LINT:ALLOW({tag})"
    lo = max(0, lineno - 1 - window)
    return any(needle in line for line in lines[lo:lineno])


def iter_cxx_files(paths):
    for path in paths:
        if path.is_file():
            if path.suffix in CXX_SUFFIXES:
                yield path
        else:
            for child in sorted(path.rglob("*")):
                if child.is_file() and child.suffix in CXX_SUFFIXES:
                    yield child


def rel(path):
    try:
        return str(path.resolve().relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check_raw_mutex(files, findings):
    for path in files:
        if rel(path) in RAW_MUTEX_ALLOWED:
            continue
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        stripped = strip_comments_and_strings(text)
        for token in RAW_MUTEX_TOKENS:
            for match in re.finditer(re.escape(token), stripped):
                lineno = line_of(stripped, match.start())
                if waived(lines, lineno, "raw-mutex"):
                    continue
                findings.append(
                    f"{rel(path)}:{lineno}: [raw-mutex] {token} outside "
                    "src/common/mutex.h — use xsact::Mutex/MutexLock/CondVar "
                    "(common/mutex.h) so -Wthread-safety sees the acquisition"
                )


def marked_function_names(header_text):
    """Function names declared with the XSACT_EVENT_LOOP_THREAD marker."""
    names = []
    for match in re.finditer(r"XSACT_EVENT_LOOP_THREAD\b", header_text):
        paren = header_text.find("(", match.end())
        if paren < 0:
            continue
        idents = re.findall(r"[A-Za-z_]\w*", header_text[match.end():paren])
        if idents:
            names.append(idents[-1])
    return names


def function_body_span(text, name):
    """(start, end) offsets of the body of `name`'s definition, or None.

    Matches `Qualifier::name(` or a line-initial `name(` and brace-matches
    from the first '{' after the parameter list.
    """
    pattern = re.compile(r"(?:[\w>]+::|^|\n)\s*~?" + re.escape(name) + r"\s*\(")
    for match in pattern.finditer(text):
        i = text.find("(", match.start() + 1)
        depth = 0
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        # Skip declarations: the next non-space char after the parameter
        # list (and any const/noexcept/attributes) must be '{'.
        j = i + 1
        while j < len(text) and text[j] not in "{;":
            j += 1
        if j >= len(text) or text[j] == ";":
            continue
        start = j
        depth = 0
        while j < len(text):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    return (start, j + 1)
            j += 1
    return None


def check_event_loop(files, findings):
    files = list(files)
    headers = [p for p in files if p.suffix in {".h", ".hpp"}]
    for header in headers:
        header_text = strip_comments_and_strings(
            header.read_text(encoding="utf-8"))
        names = marked_function_names(header_text)
        if not names:
            continue
        source = header.with_suffix(".cc")
        if not source.is_file():
            continue
        text = source.read_text(encoding="utf-8")
        lines = text.splitlines()
        stripped = strip_comments_and_strings(text)
        for name in names:
            span = function_body_span(stripped, name)
            if span is None:
                continue  # defined inline in the header or renamed
            body = stripped[span[0]:span[1]]
            for token in BLOCKING_TOKENS:
                for match in re.finditer(re.escape(token), body):
                    lineno = line_of(stripped, span[0] + match.start())
                    if waived(lines, lineno, "blocking-call"):
                        continue
                    findings.append(
                        f"{rel(source)}:{lineno}: [blocking-call] {token} "
                        f"inside event-loop function {name}() — marked "
                        "XSACT_EVENT_LOOP_THREAD; a blocked callback stalls "
                        "every connection this loop serves"
                    )


def check_fault_docs(findings):
    doc = REPO_ROOT / "docs" / "robustness.md"
    if not doc.is_file():
        findings.append("docs/robustness.md: [fault-docs] file missing")
        return
    registered = {}
    for path in iter_cxx_files([REPO_ROOT / "src"]):
        text = path.read_text(encoding="utf-8")
        for match in re.finditer(
                r"RegisterFaultPoint\(\s*\"([^\"]+)\"", text):
            if rel(path).startswith("src/common/faultpoint"):
                continue  # the registry itself (doc comments, not sites)
            registered.setdefault(match.group(1), []).append(
                f"{rel(path)}:{line_of(text, match.start())}")
    doc_text = doc.read_text(encoding="utf-8")
    documented = set()
    for match in re.finditer(r"`([a-z_]+\.[a-z_]+)`", doc_text):
        name = match.group(1)
        if name.rsplit(".", 1)[1] in DOC_FILE_SUFFIXES:
            continue  # a file name, not a fault-point name
        documented.add(name)
    for name, sites in sorted(registered.items()):
        if name not in documented:
            findings.append(
                f"{sites[0]}: [fault-docs] fault point \"{name}\" is "
                "registered but not documented in docs/robustness.md — "
                "add it to the fault-point table"
            )
    for name in sorted(documented - set(registered)):
        findings.append(
            f"docs/robustness.md: [fault-docs] fault point \"{name}\" is "
            "documented but no RegisterFaultPoint site in src/ registers "
            "it — stale name breaks chaos soak configs"
        )


ATOMIC_OP = re.compile(
    r"(?:\.\s*(?:load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"|std::atomic_(?:load|store))\s*\(")


def check_memory_order(files, findings):
    for path in files:
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        stripped = strip_comments_and_strings(text)
        for match in ATOMIC_OP.finditer(stripped):
            i = stripped.find("(", match.start())
            depth = 0
            j = i
            while j < len(stripped):
                if stripped[j] == "(":
                    depth += 1
                elif stripped[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            argtext = stripped[i:j + 1]
            if "memory_order" in argtext:
                continue
            lineno = line_of(stripped, match.start())
            if waived(lines, lineno, "memory-order"):
                continue
            op = match.group(0).strip().rstrip("(").strip()
            findings.append(
                f"{rel(path)}:{lineno}: [memory-order] {op} without an "
                "explicit std::memory_order argument — spell the ordering "
                "out (defaulted seq_cst hides cost and intent)"
            )


def main(argv):
    parser = argparse.ArgumentParser(
        description="XSACT concurrency-discipline lint")
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: src/)")
    parser.add_argument(
        "--skip-fault-docs", action="store_true",
        help="skip the fault-point/doc cross-check (for partial file sets)")
    args = parser.parse_args(argv)

    if args.paths:
        roots = [pathlib.Path(p) for p in args.paths]
        for root in roots:
            if not root.exists():
                print(f"run_lint.py: no such path: {root}", file=sys.stderr)
                return 2
    else:
        roots = [REPO_ROOT / "src"]

    files = list(iter_cxx_files(roots))
    findings = []
    check_raw_mutex(files, findings)
    check_event_loop(files, findings)
    if not args.skip_fault_docs:
        check_fault_docs(findings)
    check_memory_order(files, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"run_lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"run_lint.py: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
