// generate_datasets: writes the three synthetic demo corpora to XML
// files, so xsact_cli (or any XSACT embedder) can load them from disk.
//
//   $ ./tools/generate_datasets [output_dir]   (default ".")

#include <cstdio>
#include <string>

#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "xml/io.h"

int main(int argc, char** argv) {
  using namespace xsact;
  const std::string dir = argc > 1 ? argv[1] : ".";

  struct Job {
    std::string path;
    xml::Document doc;
  };
  Job jobs[] = {
      {dir + "/product_reviews.xml", data::GenerateProductReviews({})},
      {dir + "/outdoor_retailer.xml", data::GenerateOutdoorRetailer({})},
      {dir + "/movies.xml", data::GenerateMovies({})},
  };
  for (const Job& job : jobs) {
    const Status status = xml::WriteDocumentToFile(job.doc, job.path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %-32s (%zu nodes)\n", job.path.c_str(),
                job.doc.NodeCount());
  }
  return 0;
}
