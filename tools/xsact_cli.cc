// xsact_cli: terminal front-end for XSACT (the demo UI of Figure 5,
// minus the browser). See `xsact_cli --help` or src/cli/options.h.

#include <iostream>

#include "cli/app.h"
#include "cli/options.h"

int main(int argc, char** argv) {
  auto options = xsact::cli::ParseCliArgs(argc, argv);
  if (!options.ok()) {
    std::cerr << options.status() << "\n\n" << xsact::cli::CliUsage();
    return 2;
  }
  return xsact::cli::RunApp(*options, std::cout, std::cerr);
}
