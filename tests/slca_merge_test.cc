// Scan-vs-merge equivalence tests for the SLCA and ELCA kernels: the
// skip-driven merge over compressed postings must return exactly the
// scan kernels' answers on handcrafted shapes, on random trees, with
// empty / single-node lists, with every term in one leaf, and past the
// 64-keyword single-mask limit. Also covers the plain (pre-decoded)
// PostingSource path the engine uses for fielded terms.

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "search/inverted_index.h"
#include "search/slca.h"
#include "xml/document.h"
#include "xml/parser.h"

namespace xsact::search {
namespace {

/// One corpus under test: document, table, index, and decoded-list
/// storage so scan (MatchLists) and merge (MergeLists) views can be
/// built for the same terms.
struct Corpus {
  xml::Document doc;
  xml::NodeTable table;
  InvertedIndex index;
  std::deque<std::vector<xml::NodeId>> storage;

  explicit Corpus(xml::Document d) : doc(std::move(d)) {
    table = xml::NodeTable::Build(doc);
    index = InvertedIndex::Build(table);
  }

  MatchLists Scan(const std::vector<std::string>& terms) {
    MatchLists lists;
    for (const auto& t : terms) {
      lists.push_back(index.Decode(t, &storage.emplace_back()));
    }
    return lists;
  }

  MergeLists Compressed(const std::vector<std::string>& terms) {
    MergeLists lists;
    for (const auto& t : terms) {
      lists.push_back(PostingSource(index.Postings(t)));
    }
    return lists;
  }

  MergeLists Plain(const std::vector<std::string>& terms) {
    MergeLists lists;
    for (const auto& t : terms) {
      lists.push_back(PostingSource(index.Decode(t, &storage.emplace_back())));
    }
    return lists;
  }
};

Corpus FromXml(std::string_view text) {
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return Corpus(std::move(doc).value());
}

/// Asserts every kernel pairing agrees on `terms`, for compressed and
/// plain merge inputs and for a fresh vs reused scratch.
void ExpectEquivalent(Corpus& c, const std::vector<std::string>& terms,
                      MergeScratch* scratch) {
  const MatchLists scan_lists = c.Scan(terms);
  const MergeLists compressed = c.Compressed(terms);
  const MergeLists plain = c.Plain(terms);

  const auto slca_scan = ComputeSlcaByScan(c.table, scan_lists);
  EXPECT_EQ(ComputeSlcaMerge(c.table, compressed, scratch), slca_scan);
  EXPECT_EQ(ComputeSlcaMerge(c.table, plain, scratch), slca_scan);

  const auto elca_scan = ComputeElcaByScan(c.table, scan_lists);
  EXPECT_EQ(ComputeElcaMerge(c.table, compressed, scratch), elca_scan);
  EXPECT_EQ(ComputeElcaMerge(c.table, plain, scratch), elca_scan);
}

TEST(SlcaMergeTest, HandcraftedShapes) {
  Corpus c = FromXml(
      "<catalog>"
      "<product><name>tomtom go</name><kind>gps</kind>"
      "  <reviews><review>great gps</review><review>go anywhere</review>"
      "  </reviews></product>"
      "<product><name>garmin nuvi</name><kind>gps</kind></product>"
      "<product><name>acme tent</name><kind>tent</kind></product>"
      "</catalog>");
  MergeScratch scratch;
  for (const auto& terms : std::vector<std::vector<std::string>>{
           {"gps"},
           {"tomtom", "gps"},
           {"gps", "go"},
           {"great", "anywhere"},
           {"gps", "tent"},
           {"tomtom", "garmin"}}) {
    ExpectEquivalent(c, terms, &scratch);
  }
}

TEST(SlcaMergeTest, EmptyAndMissingLists) {
  Corpus c = FromXml("<c><n>alpha</n><n>beta</n></c>");
  MergeScratch scratch;
  // Missing term: conjunctive semantics -> empty everywhere.
  ExpectEquivalent(c, {"alpha", "zzz"}, &scratch);
  EXPECT_TRUE(ComputeSlcaMerge(c.table, c.Compressed({"alpha", "zzz"}),
                               &scratch)
                  .empty());
  // No lists at all.
  EXPECT_TRUE(ComputeSlcaMerge(c.table, {}, &scratch).empty());
  EXPECT_TRUE(ComputeElcaMerge(c.table, {}, &scratch).empty());
}

TEST(SlcaMergeTest, SingleNodeLists) {
  // Each term occurs exactly once, in different leaves: one-entry
  // posting lists drive every pred/succ boundary case.
  Corpus c = FromXml(
      "<r><a><x>uno</x></a><b><y>dos</y></b><c><z>tres</z></c></r>");
  MergeScratch scratch;
  ExpectEquivalent(c, {"uno"}, &scratch);
  ExpectEquivalent(c, {"uno", "dos"}, &scratch);
  ExpectEquivalent(c, {"uno", "dos", "tres"}, &scratch);
}

TEST(SlcaMergeTest, AllTermsInOneLeaf) {
  Corpus c = FromXml(
      "<r><p><n>alpha beta gamma delta</n></p><q>alpha</q><q>beta</q></r>");
  MergeScratch scratch;
  ExpectEquivalent(c, {"alpha", "beta", "gamma", "delta"}, &scratch);
}

TEST(SlcaMergeTest, MoreThanSixtyFourKeywords) {
  // 70 distinct words, all inside one <all> leaf, each word also alone
  // in its own sibling: forces the wide multi-word scan masks AND a
  // 70-way merge. The SLCA is the <all> element.
  std::string all_text;
  std::string siblings;
  std::vector<std::string> terms;
  for (int i = 0; i < 70; ++i) {
    const std::string w = "w" + std::to_string(i);
    terms.push_back(w);
    all_text += (i ? " " : "") + w;
    siblings += "<s>" + w + "</s>";
  }
  Corpus c = FromXml("<r><all>" + all_text + "</all>" + siblings + "</r>");
  MergeScratch scratch;

  const auto scan = ComputeSlcaByScan(c.table, c.Scan(terms));
  ASSERT_EQ(scan.size(), 1u);
  EXPECT_EQ(c.table.node(scan[0])->tag(), "all");
  ExpectEquivalent(c, terms, &scratch);

  // Drop one word from the <all> leaf's siblings only: answers shrink to
  // exactly the leaf (the root loses its exclusive witness for w0).
  std::vector<std::string> partial(terms.begin() + 1, terms.end());
  partial.push_back("w0");
  ExpectEquivalent(c, partial, &scratch);
}

// Property: on random trees, merge == scan for SLCA and ELCA across
// keyword subsets of every size, including duplicated-term lists.
class MergeEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeEquivalenceProperty, MergeEqualsScan) {
  Rng rng(GetParam());
  const std::vector<std::string> pool = {"ant", "bee", "cat", "dog", "elk",
                                         "fox"};
  xml::Document doc = xml::Document::WithRoot("root");
  std::vector<xml::Node*> elements = {doc.root()};
  const int nodes = static_cast<int>(rng.Range(5, 120));
  for (int i = 0; i < nodes; ++i) {
    xml::Node* parent = elements[rng.Below(elements.size())];
    xml::Node* e = parent->AddElement("e" + std::to_string(rng.Below(4)));
    elements.push_back(e);
    if (rng.Chance(0.6)) {
      std::string text = pool[rng.Below(pool.size())];
      if (rng.Chance(0.3)) text += " " + pool[rng.Below(pool.size())];
      e->AddChild(xml::Node::MakeText(text));
    }
  }
  Corpus c(std::move(doc));
  MergeScratch scratch;

  for (const auto& terms : std::vector<std::vector<std::string>>{
           {"ant"},
           {"ant", "bee"},
           {"cat", "dog", "elk"},
           {"ant", "bee", "cat", "dog"},
           {"ant", "ant", "bee"},  // duplicate list
           {"ant", "bee", "cat", "dog", "elk", "fox"}}) {
    ExpectEquivalent(c, terms, &scratch);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeEquivalenceProperty,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace xsact::search
