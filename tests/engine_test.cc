// Tests for the Xsact end-to-end facade.

#include <gtest/gtest.h>

#include "core/dod.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "data/vocab.h"
#include "engine/xsact.h"
#include "xml/writer.h"

namespace xsact::engine {
namespace {

TEST(XsactTest, FromXmlRejectsMalformedInput) {
  EXPECT_FALSE(Xsact::FromXml("<broken").ok());
  EXPECT_EQ(Xsact::FromXml("").status().code(), StatusCode::kParseError);
}

TEST(XsactTest, FromXmlParsesAndSearches) {
  auto xsact = Xsact::FromXml(
      "<catalog>"
      "<product><name>tomtom gps</name><price>100</price></product>"
      "<product><name>garmin gps</name><price>150</price></product>"
      "</catalog>");
  ASSERT_TRUE(xsact.ok()) << xsact.status();
  auto results = xsact->Search("gps");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);
}

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::ProductReviewsConfig config;
    config.num_products = 10;
    config.min_reviews = 6;
    config.max_reviews = 20;
    config.seed = 11;
    xsact_ = std::make_unique<Xsact>(data::GenerateProductReviews(config));
  }

  std::unique_ptr<Xsact> xsact_;
};

TEST_F(EngineFixture, SearchAndCompareEndToEnd) {
  CompareOptions options;
  options.selector.size_bound = 6;
  auto outcome = xsact_->SearchAndCompare("gps", 4, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GE(outcome->instance.num_results(), 2);
  EXPECT_LE(outcome->instance.num_results(), 4);
  EXPECT_TRUE(core::AllValid(outcome->instance, outcome->dfss,
                             options.selector.size_bound));
  EXPECT_EQ(outcome->total_dod,
            core::TotalDod(outcome->instance, outcome->dfss));
  EXPECT_GT(outcome->total_dod, 0);  // products genuinely differ
  EXPECT_FALSE(outcome->table.rows.empty());
  EXPECT_GE(outcome->select_seconds, 0.0);
}

TEST_F(EngineFixture, AlgorithmsAreSelectable) {
  int64_t dods[2] = {0, 0};
  int i = 0;
  for (core::SelectorKind kind :
       {core::SelectorKind::kSnippet, core::SelectorKind::kMultiSwap}) {
    CompareOptions options;
    options.algorithm = kind;
    options.selector.size_bound = 5;
    auto outcome = xsact_->SearchAndCompare("gps", 4, options);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    dods[i++] = outcome->total_dod;
  }
  EXPECT_GE(dods[1], dods[0]);  // multi-swap at least matches snippets
}

TEST_F(EngineFixture, CompareNeedsTwoResults) {
  auto results = xsact_->Search("gps");
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  const Status one = xsact_
                         ->CompareResults({results->at(0).root})
                         .status();
  EXPECT_EQ(one.code(), StatusCode::kInvalidArgument);
  const Status none = xsact_->CompareResults({}).status();
  EXPECT_EQ(none.code(), StatusCode::kInvalidArgument);
  const Status null_root =
      xsact_->CompareResults({results->at(0).root, nullptr}).status();
  EXPECT_EQ(null_root.code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineFixture, DuplicateRootsCollapse) {
  auto results = xsact_->Search("gps");
  ASSERT_TRUE(results.ok());
  ASSERT_GE(results->size(), 2u);
  const Status dup = xsact_
                         ->CompareResults({results->at(0).root,
                                           results->at(0).root})
                         .status();
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
}

TEST(XsactLiftTest, LiftResultsToBrandEntities) {
  data::OutdoorRetailerConfig config;
  config.num_brands = 5;
  config.min_products = 15;
  config.max_products = 30;
  Xsact xsact(data::GenerateOutdoorRetailer(config));

  // "jackets" matches product categories; lifting moves the comparison to
  // the owning brands ("men, jackets" scenario of the paper).
  CompareOptions options;
  options.lift_results_to = "brand";
  options.selector.size_bound = 6;
  auto outcome = xsact.SearchAndCompare("men jackets", 0, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_GE(outcome->instance.num_results(), 2);
  for (const std::string& header : outcome->table.headers) {
    // Brand results are labeled by the brand name.
    bool known = false;
    for (const std::string& b : data::OutdoorBrands()) {
      if (header == b) known = true;
    }
    EXPECT_TRUE(known) << header;
  }
  // The comparison surfaces the brands' category focus.
  bool category_row = false;
  for (const auto& row : outcome->table.rows) {
    if (row.label.find("category") != std::string::npos) category_row = true;
  }
  EXPECT_TRUE(category_row);
}

TEST(XsactLiftTest, LiftToMissingTagKeepsResults) {
  Xsact xsact(data::GenerateOutdoorRetailer({.num_brands = 3}));
  CompareOptions options;
  options.lift_results_to = "nonexistent";
  auto outcome = xsact.SearchAndCompare("jackets", 3, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GE(outcome->instance.num_results(), 2);
}

TEST(XsactThresholdTest, ThresholdChangesDod) {
  data::ProductReviewsConfig config;
  config.num_products = 8;
  config.min_reviews = 10;
  config.max_reviews = 30;
  Xsact xsact(data::GenerateProductReviews(config));
  CompareOptions strict;
  strict.diff_threshold = 2.0;  // occurrences must differ by 200%
  CompareOptions loose;
  loose.diff_threshold = 0.0;   // any difference counts
  auto a = xsact.SearchAndCompare("gps", 4, strict);
  auto b = xsact.SearchAndCompare("gps", 4, loose);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(a->total_dod, b->total_dod);
}

}  // namespace
}  // namespace xsact::engine
