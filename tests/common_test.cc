// Unit tests for the common runtime: Status/StatusOr, RNG, strings,
// stats, interner.

#include <gtest/gtest.h>

#include <set>

#include "common/interner.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace xsact {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("y").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("z").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("o").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("io").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("u").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::AlreadyExists("a").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::DeadlineExceeded("d").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("r").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "deadline exceeded: late");
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "resource exhausted: full");
  const Status s = Status::ParseError("line 3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "line 3");
  EXPECT_EQ(s.ToString(), "parse error: line 3");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  const Status s = Status::NotFound("key k").WithContext("loading index");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "loading index: key k");
  // No-op for OK.
  EXPECT_TRUE(Status().WithContext("ctx").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MovesValueOut) {
  StatusOr<std::string> v = std::string("payload");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  XSACT_ASSIGN_OR_RETURN(const int h, Half(x));
  XSACT_RETURN_IF_ERROR(Status::Ok());
  *out = h;
  return Status::Ok();
}

TEST(StatusOrTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  const Status err = UseMacros(3, &out);
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  // bound 1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfStaysInRangeAndSkews) {
  Rng rng(13);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 5000; ++i) {
    const size_t r = rng.Zipf(10, 1.2);
    ASSERT_LT(r, 10u);
    ++hits[r];
  }
  // Rank 0 must dominate the tail under a skewed distribution.
  EXPECT_GT(hits[0], hits[9] * 3);
}

TEST(RngTest, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(14);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.Zipf(4, 0.0)];
  for (int h : hits) EXPECT_NEAR(h, 2000, 350);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_EQ(std::multiset<int>(v.begin(), v.end()),
            std::multiset<int>(shuffled.begin(), shuffled.end()));
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, TokenizeLowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("TomTom, GPS!"),
            (std::vector<std::string>{"tomtom", "gps"}));
  EXPECT_EQ(Tokenize("Go-630 (Tri-linguial)"),
            (std::vector<std::string>{"go", "630", "tri", "linguial"}));
  EXPECT_TRUE(Tokenize("  ,;  ").empty());
}

TEST(StringUtilTest, JoinAndTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_TRUE(EqualsIgnoreCase("GPS", "gps"));
  EXPECT_FALSE(EqualsIgnoreCase("GPS", "gp"));
  EXPECT_TRUE(StartsWith("catalog/product", "catalog"));
  EXPECT_FALSE(StartsWith("cat", "catalog"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", "file.xml"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a|b|c", "|", "\\|"), "a\\|b\\|c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(72.727272, 0), "73");
}

TEST(SampleStatsTest, BasicMoments) {
  SampleStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.StdDev(), 1.118, 1e-3);
  EXPECT_DOUBLE_EQ(s.Median(), 2.5);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 4.0);
}

TEST(SampleStatsTest, EmptyIsZero) {
  SampleStats s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
}

TEST(InternerTest, AssignsDenseIdsInOrder) {
  StringInterner in;
  EXPECT_EQ(in.Intern("a"), 0);
  EXPECT_EQ(in.Intern("b"), 1);
  EXPECT_EQ(in.Intern("a"), 0);  // idempotent
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.Lookup(1), "b");
  EXPECT_EQ(in.Find("b"), 1);
  EXPECT_EQ(in.Find("missing"), -1);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // ms >= s numerically
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace xsact
