// Property tests for the bitset differentiation substrate: the packed
// DiffMatrix, the word-based Dfs bitmap, the popcount DoD primitives and
// the incrementally-maintained SelectionState must agree EXACTLY with a
// naive scalar reference re-derived from first principles (TypeStats +
// the paper's predicate), across ~100 randomized instances of varying
// size, threshold and weighting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/dod.h"
#include "core/selection_state.h"
#include "core/weights.h"
#include "test_util.h"

namespace xsact::core {
namespace {

using testing::InstanceFixture;
using testing::RandomInstance;

// ---------------------------------------------------------------------------
// Naive scalar reference, independent of the DiffMatrix: re-evaluates the
// paper's differentiability predicate straight from the TypeStats.
// ---------------------------------------------------------------------------

bool NaiveOccurrencesDiffer(double a, double b, double threshold) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  constexpr double kEps = 1e-9;
  return (hi - lo) > threshold * lo + kEps;
}

bool NaiveDifferentiable(const ComparisonInstance& instance,
                         feature::TypeId t, int i, int j) {
  if (i == j) return false;
  const feature::TypeStats* si = instance.result(i).Find(t);
  const feature::TypeStats* sj = instance.result(j).Find(t);
  if (si == nullptr || sj == nullptr) return false;
  for (const feature::ValueId v : {si->DominantValue(), sj->DominantValue()}) {
    if (v == feature::kInvalidValueId) continue;
    if (NaiveOccurrencesDiffer(si->RelativeOccurrenceOf(v),
                               sj->RelativeOccurrenceOf(v),
                               instance.diff_threshold())) {
      return true;
    }
  }
  return false;
}

int NaivePairDod(const ComparisonInstance& instance, const Dfs& a,
                 const Dfs& b) {
  int dod = 0;
  for (feature::TypeId t : a.SelectedTypes(instance)) {
    if (b.ContainsType(instance, t) &&
        NaiveDifferentiable(instance, t, a.result_index(), b.result_index())) {
      ++dod;
    }
  }
  return dod;
}

int64_t NaiveTotalDod(const ComparisonInstance& instance,
                      const std::vector<Dfs>& dfss) {
  int64_t total = 0;
  for (size_t i = 0; i < dfss.size(); ++i) {
    for (size_t j = i + 1; j < dfss.size(); ++j) {
      total += NaivePairDod(instance, dfss[i], dfss[j]);
    }
  }
  return total;
}

int NaiveTypeGain(const ComparisonInstance& instance,
                  const std::vector<Dfs>& dfss, int i, feature::TypeId t) {
  int gain = 0;
  for (int j = 0; j < instance.num_results(); ++j) {
    if (j == i) continue;
    if (dfss[static_cast<size_t>(j)].ContainsType(instance, t) &&
        NaiveDifferentiable(instance, t, i, j)) {
      ++gain;
    }
  }
  return gain;
}

double NaiveWeightedPairDod(const ComparisonInstance& instance, const Dfs& a,
                            const Dfs& b, const TypeWeights& weights) {
  double dod = 0;
  for (feature::TypeId t : a.SelectedTypes(instance)) {
    if (b.ContainsType(instance, t) &&
        NaiveDifferentiable(instance, t, a.result_index(), b.result_index())) {
      dod += weights.Of(t);
    }
  }
  return dod;
}

/// Random (not necessarily valid) DFS assignment; DoD primitives are
/// defined on arbitrary subsets.
std::vector<Dfs> RandomAssignment(const ComparisonInstance& instance,
                                  Rng& rng) {
  std::vector<Dfs> dfss;
  for (int i = 0; i < instance.num_results(); ++i) {
    Dfs dfs(instance, i);
    const int num_entries = static_cast<int>(instance.entries(i).size());
    for (int k = 0; k < num_entries; ++k) {
      if (rng.Below(3) == 0) dfs.Add(k);
    }
    dfss.push_back(std::move(dfs));
  }
  return dfss;
}

/// ~100 varied instances: seeds x (n, types, threshold) grid.
struct Config {
  uint64_t seed;
  int n;
  int max_types;
  double threshold;
};

std::vector<Config> Grid() {
  std::vector<Config> configs;
  uint64_t seed = 1;
  for (const int n : {2, 3, 5, 8, 13}) {
    for (const int max_types : {3, 8, 16}) {
      for (const double threshold : {0.05, 0.10, 0.50}) {
        configs.push_back(Config{seed++, n, max_types, threshold});
      }
    }
  }
  // 5 * 3 * 3 = 45 grid points, doubled with a second seed round = 90,
  // plus a few larger instances crossing the one-word mask boundary.
  const size_t base = configs.size();
  for (size_t c = 0; c < base; ++c) {
    Config copy = configs[c];
    copy.seed += 1000;
    configs.push_back(copy);
  }
  configs.push_back(Config{7001, 40, 12, 0.10});
  configs.push_back(Config{7002, 65, 10, 0.10});  // > 64 results: 2 words
  configs.push_back(Config{7003, 70, 6, 0.25});
  return configs;
}

// ---------------------------------------------------------------------------
// Matrix + primitive equivalence.
// ---------------------------------------------------------------------------

TEST(DodBitsetTest, DiffMatrixMatchesNaivePredicate) {
  for (const Config& config : Grid()) {
    InstanceFixture fx = RandomInstance(config.seed, config.n,
                                        config.max_types, config.threshold);
    const ComparisonInstance& instance = fx.instance;
    const DiffMatrix& matrix = instance.diff_matrix();
    int64_t pairs = 0;
    for (int dense = 0; dense < matrix.num_types(); ++dense) {
      const feature::TypeId t = matrix.TypeAt(dense);
      EXPECT_EQ(instance.DenseTypeIndex(t), dense);
      for (int i = 0; i < instance.num_results(); ++i) {
        for (int j = 0; j < instance.num_results(); ++j) {
          const bool expected = NaiveDifferentiable(instance, t, i, j);
          ASSERT_EQ(instance.Differentiable(t, i, j), expected)
              << "seed=" << config.seed << " t=" << t << " i=" << i
              << " j=" << j;
          ASSERT_EQ(matrix.Test(dense, i, j), expected);
          if (expected && i < j) ++pairs;
        }
      }
    }
    EXPECT_EQ(matrix.CountPairs(), pairs);
    EXPECT_EQ(instance.DifferentiationCeiling(), pairs);
  }
}

TEST(DodBitsetTest, PairTotalAndGainMatchNaiveReference) {
  for (const Config& config : Grid()) {
    InstanceFixture fx = RandomInstance(config.seed, config.n,
                                        config.max_types, config.threshold);
    const ComparisonInstance& instance = fx.instance;
    Rng rng(config.seed ^ 0xABCDEF);
    const std::vector<Dfs> dfss = RandomAssignment(instance, rng);

    for (size_t i = 0; i < dfss.size(); ++i) {
      for (size_t j = i + 1; j < dfss.size(); ++j) {
        ASSERT_EQ(PairDod(instance, dfss[i], dfss[j]),
                  NaivePairDod(instance, dfss[i], dfss[j]))
            << "seed=" << config.seed << " i=" << i << " j=" << j;
      }
    }
    ASSERT_EQ(TotalDod(instance, dfss), NaiveTotalDod(instance, dfss))
        << "seed=" << config.seed;

    for (int i = 0; i < instance.num_results(); ++i) {
      for (const Entry& e : instance.entries(i)) {
        ASSERT_EQ(TypeGain(instance, dfss, i, e.type_id),
                  NaiveTypeGain(instance, dfss, i, e.type_id))
            << "seed=" << config.seed << " i=" << i << " type=" << e.type_id;
      }
    }
  }
}

TEST(DodBitsetTest, WeightedPrimitivesMatchNaiveReference) {
  for (const Config& config : Grid()) {
    if (config.seed % 3 != 0) continue;  // weighted pass on a subsample
    InstanceFixture fx = RandomInstance(config.seed, config.n,
                                        config.max_types, config.threshold);
    const ComparisonInstance& instance = fx.instance;
    Rng rng(config.seed ^ 0x5EED);
    const std::vector<Dfs> dfss = RandomAssignment(instance, rng);

    for (const WeightScheme scheme :
         {WeightScheme::kUniform, WeightScheme::kInterestingness,
          WeightScheme::kSignificance}) {
      const TypeWeights weights = TypeWeights::Compute(instance, scheme);
      for (size_t i = 0; i < dfss.size(); ++i) {
        for (size_t j = i + 1; j < dfss.size(); ++j) {
          ASSERT_DOUBLE_EQ(
              WeightedPairDod(instance, dfss[i], dfss[j], weights),
              NaiveWeightedPairDod(instance, dfss[i], dfss[j], weights));
        }
      }
      for (int i = 0; i < instance.num_results(); ++i) {
        for (const Entry& e : instance.entries(i)) {
          ASSERT_DOUBLE_EQ(
              WeightedTypeGain(instance, dfss, i, e.type_id, weights),
              NaiveTypeGain(instance, dfss, i, e.type_id) *
                  weights.Of(e.type_id));
        }
      }
    }
    // Uniform weighting degenerates exactly to the unweighted objective.
    const TypeWeights uniform = TypeWeights::Uniform();
    EXPECT_DOUBLE_EQ(WeightedTotalDod(instance, dfss, uniform),
                     static_cast<double>(TotalDod(instance, dfss)));
  }
}

// ---------------------------------------------------------------------------
// SelectionState: incremental maintenance vs rebuild-from-scratch.
// ---------------------------------------------------------------------------

/// Compares every per-type selected mask of `state` against `fresh`.
void ExpectMasksEqual(const ComparisonInstance& instance,
                      const SelectionState& state,
                      const SelectionState& fresh) {
  const int words = instance.diff_matrix().words_per_mask();
  for (int t = 0; t < instance.diff_matrix().num_types(); ++t) {
    for (int w = 0; w < words; ++w) {
      ASSERT_EQ(state.SelectedMask(t)[w], fresh.SelectedMask(t)[w])
          << "type " << t << " word " << w;
    }
  }
}

TEST(SelectionStateTest, IncrementalMatchesRebuildUnderRandomMutation) {
  for (const Config& config : Grid()) {
    if (config.seed % 2 != 0) continue;  // mutation pass on a subsample
    InstanceFixture fx = RandomInstance(config.seed, config.n,
                                        config.max_types, config.threshold);
    const ComparisonInstance& instance = fx.instance;
    Rng rng(config.seed ^ 0xFACE);

    std::vector<Dfs> dfss;
    for (int i = 0; i < instance.num_results(); ++i) {
      dfss.emplace_back(instance, i);
    }
    SelectionState state(instance, &dfss);

    for (int step = 0; step < 200; ++step) {
      const int i =
          static_cast<int>(rng.Below(static_cast<uint64_t>(instance.num_results())));
      const int num_entries = static_cast<int>(instance.entries(i).size());
      if (num_entries == 0) continue;
      const int k = static_cast<int>(rng.Below(static_cast<uint64_t>(num_entries)));
      switch (rng.Below(3)) {
        case 0:
          state.Add(i, k);
          break;
        case 1:
          state.Remove(i, k);
          break;
        default: {
          // Wholesale replacement through Assign.
          Dfs replacement(instance, i);
          for (int e = 0; e < num_entries; ++e) {
            if (rng.Below(2) == 0) replacement.Add(e);
          }
          state.Assign(i, replacement);
          break;
        }
      }
      if (step % 25 == 0 || step == 199) {
        const SelectionState fresh(instance, dfss);
        ExpectMasksEqual(instance, state, fresh);
        ASSERT_EQ(state.TotalDod(), fresh.TotalDod());
        ASSERT_EQ(state.TotalDod(), NaiveTotalDod(instance, dfss))
            << "seed=" << config.seed << " step=" << step;
      }
    }

    // Per-type gains from masks agree with the naive partner scan.
    for (int i = 0; i < instance.num_results(); ++i) {
      for (const Entry& e : instance.entries(i)) {
        ASSERT_EQ(state.TypeGain(i, e.dense_type),
                  NaiveTypeGain(instance, dfss, i, e.type_id));
      }
    }
    const TypeWeights weights =
        TypeWeights::Compute(instance, WeightScheme::kSignificance);
    EXPECT_NEAR(state.WeightedTotalDod(weights),
                WeightedTotalDod(instance, dfss, weights), 1e-7);
  }
}

TEST(SelectionStateTest, VersionsAdvanceOnlyForTouchedTypes) {
  InstanceFixture fx = RandomInstance(42, 6, 10, 0.10);
  const ComparisonInstance& instance = fx.instance;
  std::vector<Dfs> dfss;
  for (int i = 0; i < instance.num_results(); ++i) dfss.emplace_back(instance, i);
  SelectionState state(instance, &dfss);

  std::vector<uint32_t> before;
  for (int t = 0; t < instance.diff_matrix().num_types(); ++t) {
    before.push_back(state.Version(t));
  }
  ASSERT_FALSE(instance.entries(0).empty());
  const int dense = instance.entries(0)[0].dense_type;
  state.Add(0, 0);
  for (int t = 0; t < instance.diff_matrix().num_types(); ++t) {
    if (t == dense) {
      EXPECT_GT(state.Version(t), before[static_cast<size_t>(t)]);
    } else {
      EXPECT_EQ(state.Version(t), before[static_cast<size_t>(t)]);
    }
  }
  // Redundant add: no mask change, no version bump.
  const uint32_t v = state.Version(dense);
  state.Add(0, 0);
  EXPECT_EQ(state.Version(dense), v);
}

// ---------------------------------------------------------------------------
// Word-packed Dfs bitmap vs a std::set model.
// ---------------------------------------------------------------------------

TEST(DfsBitsetTest, WordBitmapMatchesSetModel) {
  InstanceFixture fx = RandomInstance(99, 3, 40, 0.10);
  const ComparisonInstance& instance = fx.instance;
  const int num_entries = static_cast<int>(instance.entries(0).size());
  ASSERT_GT(num_entries, 0);

  Rng rng(123);
  Dfs dfs(instance, 0);
  std::set<int> model;
  for (int step = 0; step < 500; ++step) {
    const int k = static_cast<int>(rng.Below(static_cast<uint64_t>(num_entries)));
    if (rng.Below(2) == 0) {
      dfs.Add(k);
      model.insert(k);
    } else {
      dfs.Remove(k);
      model.erase(k);
    }
    ASSERT_EQ(dfs.size(), static_cast<int>(model.size()));
  }
  EXPECT_EQ(dfs.SelectedEntries(),
            std::vector<int>(model.begin(), model.end()));
  for (int k = 0; k < num_entries; ++k) {
    EXPECT_EQ(dfs.Contains(k), model.count(k) > 0);
  }
}

}  // namespace
}  // namespace xsact::core
