// Robustness and determinism properties across the whole stack:
//  * the parser never crashes on mutated/garbage input (Status or a
//    valid document, nothing else),
//  * every selector is deterministic run-to-run,
//  * the engine behaves identically across answer-semantics choices
//    where the semantics coincide,
//  * end-to-end failure injection (malformed corpora, hostile values).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dod.h"
#include "core/selector.h"
#include "data/product_reviews.h"
#include "engine/xsact.h"
#include "table/renderer.h"
#include "test_util.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xsact {
namespace {

// ---------------------------------------------------------------------------
// Parser fuzz: random mutations of a valid document must either parse or
// fail cleanly -- and whatever parses must re-serialize and re-parse.
// ---------------------------------------------------------------------------

class ParserFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzProperty, MutatedInputNeverBreaksInvariants) {
  Rng rng(GetParam());
  const xml::Document doc = data::GenerateProductReviews(
      {.num_products = 2, .min_reviews = 1, .max_reviews = 3,
       .seed = GetParam()});
  std::string text = xml::WriteDocument(doc);

  for (int round = 0; round < 20; ++round) {
    // Apply 1-5 random byte mutations.
    const int mutations = static_cast<int>(rng.Range(1, 5));
    std::string mutated = text;
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Below(mutated.size());
      switch (rng.Below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Range(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.Range(32, 126)));
      }
    }
    StatusOr<xml::Document> parsed = xml::Parse(mutated);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
      continue;
    }
    // Whatever survived must be serializable and re-parseable.
    const std::string reserialized = xml::WriteDocument(*parsed);
    StatusOr<xml::Document> reparsed = xml::Parse(reserialized);
    EXPECT_TRUE(reparsed.ok())
        << reparsed.status() << "\nmutated: " << mutated;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzProperty,
                         ::testing::Range<uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Selector determinism.
// ---------------------------------------------------------------------------

class SelectorDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectorDeterminism, RepeatedSelectionIsIdentical) {
  testing::InstanceFixture fx =
      testing::RandomInstance(GetParam(), 3, 6);
  core::SelectorOptions options;
  options.size_bound = 3;
  for (core::SelectorKind kind :
       {core::SelectorKind::kSnippet, core::SelectorKind::kGreedy,
        core::SelectorKind::kSingleSwap, core::SelectorKind::kMultiSwap,
        core::SelectorKind::kWeightedMultiSwap}) {
    auto selector = core::MakeSelector(kind);
    const auto a = selector->Select(fx.instance, options);
    const auto b = selector->Select(fx.instance, options);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i])
          << core::SelectorKindName(kind) << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorDeterminism,
                         ::testing::Range<uint64_t>(100, 110));

// ---------------------------------------------------------------------------
// Engine-level robustness.
// ---------------------------------------------------------------------------

TEST(EngineSemanticsTest, ScanIndexedAndElcaEnginesAgreeOnEntityResults) {
  // For entity-level results on catalog-shaped data the three semantics
  // coincide after return-node inference: an ELCA ancestor above the
  // entity maps back to... itself only if it IS an entity; catalogs put
  // entities directly above the matches, so the result sets agree.
  const std::string text = xml::WriteDocument(data::GenerateProductReviews(
      {.num_products = 8, .min_reviews = 3, .max_reviews = 8, .seed = 5}));
  std::vector<std::vector<std::string>> titles;
  for (search::SlcaAlgorithm alg :
       {search::SlcaAlgorithm::kScan, search::SlcaAlgorithm::kIndexed}) {
    auto xsact = engine::Xsact::FromXml(text, alg);
    ASSERT_TRUE(xsact.ok());
    auto results = xsact->Search("gps compact");
    ASSERT_TRUE(results.ok());
    std::vector<std::string> t;
    for (const auto& r : *results) t.push_back(r.title);
    titles.push_back(std::move(t));
  }
  EXPECT_EQ(titles[0], titles[1]);

  auto elca = engine::Xsact::FromXml(text, search::SlcaAlgorithm::kElca);
  ASSERT_TRUE(elca.ok());
  auto elca_results = elca->Search("gps compact");
  ASSERT_TRUE(elca_results.ok());
  EXPECT_GE(elca_results->size(), titles[0].size());  // superset semantics
}

TEST(EngineRobustnessTest, HostileValuesSurviveTheFullPipeline) {
  // Values with markup, quotes and entities must flow through extraction,
  // comparison and every renderer without breaking well-formedness.
  auto xsact = engine::Xsact::FromXml(
      "<catalog>"
      "<product><name>a &lt;b&gt; &amp; \"c\"</name><price>1</price>"
      "<tag>common</tag></product>"
      "<product><name>d 'e' &#65;</name><price>2</price>"
      "<tag>common</tag></product>"
      "</catalog>");
  ASSERT_TRUE(xsact.ok()) << xsact.status();
  engine::CompareOptions options;
  auto outcome = xsact->SearchAndCompare("common", 0, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  const std::string html = table::RenderHtml(outcome->table);
  EXPECT_EQ(html.find("<b>"), std::string::npos);  // escaped, not raw
  const std::string json = table::RenderJson(outcome->table);
  EXPECT_NE(json.find("\\\""), std::string::npos);
  const std::string csv = table::RenderCsv(outcome->table);
  EXPECT_FALSE(csv.empty());
}

TEST(EngineRobustnessTest, MaxComparedAppliesAfterLifting) {
  // 2 brands x several matching products: max_compared=2 must yield two
  // BRANDS, not the first two products' brand collapsed into one.
  auto xsact = engine::Xsact::FromXml(
      "<catalog>"
      "<brand><name>alpha</name><products>"
      "<product><kind>jacket</kind><c>x</c></product>"
      "<product><kind>jacket</kind><c>y</c></product>"
      "</products></brand>"
      "<brand><name>beta</name><products>"
      "<product><kind>jacket</kind><c>z</c></product>"
      "<product><kind>jacket</kind><c>w</c></product>"
      "</products></brand>"
      "</catalog>");
  ASSERT_TRUE(xsact.ok());
  engine::CompareOptions options;
  options.lift_results_to = "brand";
  auto outcome = xsact->SearchAndCompare("jacket", 2, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->table.headers.size(), 2u);
  EXPECT_EQ(outcome->table.headers[0], "alpha");
  EXPECT_EQ(outcome->table.headers[1], "beta");
}

TEST(EngineRobustnessTest, SingleResultCorpusCannotCompare) {
  auto xsact = engine::Xsact::FromXml(
      "<c><p><n>only match</n></p><p><n>other</n></p></c>");
  ASSERT_TRUE(xsact.ok());
  auto outcome = xsact->SearchAndCompare("only", 0, {});
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineRobustnessTest, ZeroBoundYieldsEmptyDfss) {
  // A degenerate bound produces empty-but-valid DFSs and an empty table,
  // not a crash.
  auto xsact = engine::Xsact::FromXml(
      "<c><p><a>k1 shared</a></p><p><a>k2 shared</a></p></c>");
  ASSERT_TRUE(xsact.ok());
  engine::CompareOptions options;
  options.selector.size_bound = 0;
  auto outcome = xsact->SearchAndCompare("shared", 0, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->total_dod, 0);
  EXPECT_TRUE(outcome->table.rows.empty());
}

}  // namespace
}  // namespace xsact
