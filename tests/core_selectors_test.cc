// Tests for the DFS selection algorithms: the paper's worked example
// (Figure 1 / Figure 2 arithmetic), algorithm-specific unit tests, and
// property tests (validity, local optimality, oracle comparisons) over
// randomized instances.

#include <gtest/gtest.h>

#include <set>

#include "core/dod.h"
#include "core/exhaustive.h"
#include "core/multi_swap.h"
#include "core/selector.h"
#include "core/single_swap.h"
#include "core/snippet_selector.h"
#include "data/paper_example.h"
#include "test_util.h"

namespace xsact::core {
namespace {

using testing::BuildInstance;
using testing::InstanceFixture;
using testing::RandomInstance;

std::set<std::string> TypeNames(const ComparisonInstance& instance,
                                const Dfs& dfs) {
  std::set<std::string> names;
  for (feature::TypeId t : dfs.SelectedTypes(instance)) {
    names.insert(instance.catalog().TypeName(t));
  }
  return names;
}

// ---------------------------------------------------------------------------
// The paper's worked example.
// ---------------------------------------------------------------------------

TEST(PaperExampleTest, SnippetsReproduceFigure1AndDoD2) {
  data::PaperGpsInstance gps = data::BuildPaperGpsInstance(/*augmented=*/false);
  SelectorOptions options;
  options.size_bound = 5;
  const auto dfss = SnippetSelector().Select(gps.instance, options);

  // S1 = the exact snippet of Figure 1 for GPS 1.
  EXPECT_EQ(TypeNames(gps.instance, dfss[0]),
            (std::set<std::string>{
                "product.name", "review.pro: easy to read",
                "review.pro: compact", "review.best use: auto",
                "review.category: casual user"}));
  // S3 = the exact snippet for GPS 3.
  EXPECT_EQ(TypeNames(gps.instance, dfss[1]),
            (std::set<std::string>{
                "product.name", "review.pro: acquires satellites quickly",
                "review.pro: easy to setup", "review.pro: compact",
                "review.best use: faster routes"}));
  // "the two DFSs in Figure 1 have a DoD of 2" (name and pro:compact).
  EXPECT_EQ(TotalDod(gps.instance, dfss), 2);
}

TEST(PaperExampleTest, XsactReachesDoD5OnFigure2Instance) {
  data::PaperGpsInstance gps = data::BuildPaperGpsInstance(/*augmented=*/true);
  SelectorOptions options;
  options.size_bound = 7;  // Figure 2's table shows 7 rows
  const auto multi = MultiSwapOptimizer().Select(gps.instance, options);
  EXPECT_GE(TotalDod(gps.instance, multi), 5);  // the paper's Figure-2 claim
  EXPECT_EQ(TotalDod(gps.instance, multi), 6);  // the exact optimum here
  EXPECT_TRUE(AllValid(gps.instance, multi, options.size_bound));

  // At the snippets' own budget (L=5, five items per snippet in Figure 1)
  // the baseline achieves DoD 2; on this instance the swap optimizers
  // plateau at the same value (every exchange is an equal-gain move), and
  // only the joint exhaustive optimum reaches 3 -- the coordination gap
  // that makes the problem NP-hard.
  SelectorOptions small;
  small.size_bound = 5;
  EXPECT_EQ(TotalDod(gps.instance,
                     SnippetSelector().Select(gps.instance, small)),
            2);
  EXPECT_EQ(TotalDod(gps.instance,
                     MultiSwapOptimizer().Select(gps.instance, small)),
            2);
  EXPECT_EQ(TotalDod(gps.instance,
                     SingleSwapOptimizer().Select(gps.instance, small)),
            2);
  EXPECT_EQ(TotalDod(gps.instance,
                     ExhaustiveSelector().Select(gps.instance, small)),
            3);
}

TEST(PaperExampleTest, ExhaustiveConfirmsOptimaOnPaperInstance) {
  data::PaperGpsInstance gps = data::BuildPaperGpsInstance(/*augmented=*/true);
  // At the smallest budget the local optimizers reach the global optimum.
  SelectorOptions tiny;
  tiny.size_bound = 3;
  EXPECT_EQ(TotalDod(gps.instance,
                     ExhaustiveSelector().Select(gps.instance, tiny)),
            TotalDod(gps.instance,
                     MultiSwapOptimizer().Select(gps.instance, tiny)));
  // At L=5 and L=7 the instance exhibits the NP-hard coordination gap:
  // the joint optimum drops "name" from BOTH DFSs to align the review
  // prefixes, which no sequence of single-DFS re-optimizations can reach
  // from the snippet start (each sits on an equal-gain plateau).
  for (const auto& [bound, exact_dod, local_dod] :
       std::vector<std::tuple<int, int64_t, int64_t>>{{5, 3, 2}, {7, 7, 6}}) {
    SelectorOptions options;
    options.size_bound = bound;
    const auto exact = ExhaustiveSelector().Select(gps.instance, options);
    const auto multi = MultiSwapOptimizer().Select(gps.instance, options);
    EXPECT_EQ(TotalDod(gps.instance, exact), exact_dod) << "L=" << bound;
    EXPECT_EQ(TotalDod(gps.instance, multi), local_dod) << "L=" << bound;
  }
}

// ---------------------------------------------------------------------------
// Snippet selector.
// ---------------------------------------------------------------------------

TEST(SnippetSelectorTest, TakesMostSignificantPrefix) {
  InstanceFixture fx = BuildInstance({{
      {"review", "pro: a", "yes", 9, 10},
      {"review", "pro: b", "yes", 7, 10},
      {"review", "pro: c", "yes", 5, 10},
  }});
  SelectorOptions options;
  options.size_bound = 2;
  const auto dfss = SnippetSelector().Select(fx.instance, options);
  EXPECT_EQ(TypeNames(fx.instance, dfss[0]),
            (std::set<std::string>{"review.pro: a", "review.pro: b"}));
}

TEST(SnippetSelectorTest, BoundLargerThanEntriesSelectsAll) {
  InstanceFixture fx = BuildInstance({{
      {"review", "pro: a", "yes", 9, 10},
  }});
  SelectorOptions options;
  options.size_bound = 10;
  const auto dfss = SnippetSelector().Select(fx.instance, options);
  EXPECT_EQ(dfss[0].size(), 1);
}

TEST(SnippetSelectorTest, PrefersHigherRelativeOccurrenceAcrossGroups) {
  // name (100%) must beat a review aspect at 60%.
  InstanceFixture fx = BuildInstance({{
      {"review", "pro: a", "yes", 6, 10},
      {"product", "name", "x", 1, 1},
  }});
  SelectorOptions options;
  options.size_bound = 1;
  const auto dfss = SnippetSelector().Select(fx.instance, options);
  EXPECT_EQ(TypeNames(fx.instance, dfss[0]),
            (std::set<std::string>{"product.name"}));
}

// ---------------------------------------------------------------------------
// Single-swap.
// ---------------------------------------------------------------------------

TEST(SingleSwapTest, EscapesSnippetLocalChoice) {
  // Result 1's snippet already shows "shared" (its top type); result 0's
  // snippet shows "only-a" instead. One swap on result 0 brings the
  // shared, differentiable type in (gain 1 > loss 0).
  InstanceFixture fx = BuildInstance({
      {{"alpha", "pro: only-a", "yes", 9, 10},
       {"beta", "pro: shared", "yes", 8, 10}},
      {{"beta", "pro: shared", "yes", 2, 10},
       {"gamma", "pro: only-b", "yes", 1, 10}},
  });
  SelectorOptions options;
  options.size_bound = 1;
  const auto snippet = SnippetSelector().Select(fx.instance, options);
  EXPECT_EQ(TotalDod(fx.instance, snippet), 0);
  const auto swapped = SingleSwapOptimizer().Select(fx.instance, options);
  EXPECT_EQ(TotalDod(fx.instance, swapped), 1);
  EXPECT_EQ(TypeNames(fx.instance, swapped[0]),
            (std::set<std::string>{"beta.pro: shared"}));
  EXPECT_TRUE(AllValid(fx.instance, swapped, options.size_bound));
}

TEST(SingleSwapTest, CoordinatedChangesAreBeyondBothLocalOptimizers) {
  // Neither result's snippet selects "shared"; selecting it in ONE DFS
  // gains nothing (the partner does not show it), so both swap
  // algorithms sit in a zero-gain local optimum. Only the joint
  // (exhaustive) optimizer coordinates the two DFSs -- a concrete
  // instance of the NP-hard coordination structure (Theorem 2.1).
  InstanceFixture fx = BuildInstance({
      {{"alpha", "pro: only-a", "yes", 9, 10},
       {"beta", "pro: shared", "yes", 8, 10}},
      {{"gamma", "pro: only-b", "yes", 9, 10},
       {"beta", "pro: shared", "yes", 2, 10}},
  });
  SelectorOptions options;
  options.size_bound = 1;
  EXPECT_EQ(TotalDod(fx.instance,
                     SingleSwapOptimizer().Select(fx.instance, options)),
            0);
  EXPECT_EQ(TotalDod(fx.instance,
                     MultiSwapOptimizer().Select(fx.instance, options)),
            0);
  const auto exact = ExhaustiveSelector().Select(fx.instance, options);
  EXPECT_EQ(TotalDod(fx.instance, exact), 1);
  EXPECT_EQ(TypeNames(fx.instance, exact[0]),
            (std::set<std::string>{"beta.pro: shared"}));
  EXPECT_EQ(TypeNames(fx.instance, exact[1]),
            (std::set<std::string>{"beta.pro: shared"}));
}

TEST(SingleSwapTest, RespectsValidityWhileSwapping) {
  // The gaining type is least significant; selecting it requires keeping
  // everything above it, which exceeds the budget -> not reachable by any
  // single swap chain, DoD stays 0, and the DFS must stay valid.
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: big1", "yes", 9, 10},
       {"review", "pro: big2", "yes", 8, 10},
       {"review", "pro: tiny", "yes", 2, 10}},
      {{"review", "pro: tiny", "yes", 9, 10}},
  });
  SelectorOptions options;
  options.size_bound = 2;
  const auto dfss = SingleSwapOptimizer().Select(fx.instance, options);
  EXPECT_TRUE(AllValid(fx.instance, dfss, options.size_bound));
  EXPECT_EQ(TotalDod(fx.instance, dfss), 0);
}

// ---------------------------------------------------------------------------
// Multi-swap.
// ---------------------------------------------------------------------------

TEST(MultiSwapTest, RebuildsWholeDfsWhenSingleSwapsCannot) {
  // Result 0 owns two entity groups: "alpha" with x1, x2 (each gaining 1
  // against result 1) and "beta" with y1 (gain 0) and y2 (gain 3, shared
  // with results 2-4). The snippet start selects {x1, x2}. Reaching the
  // optimum {y1, y2} needs TWO coordinated changes: selecting y2 alone is
  // invalid (y1 is more significant), and swapping anything for y1 loses
  // DoD. Single-swap is provably stuck; multi-swap's DP rebuilds the DFS.
  InstanceFixture fx = BuildInstance({
      {{"alpha", "x1", "yes", 9, 10},
       {"alpha", "x2", "yes", 8, 10},
       {"beta", "y1", "yes", 7, 10},
       {"beta", "y2", "yes", 6, 10}},
      {{"alpha", "x1", "yes", 2, 10}, {"alpha", "x2", "yes", 2, 10}},
      {{"beta", "y2", "yes", 1, 10}},
      {{"beta", "y2", "yes", 2, 10}},
      {{"beta", "y2", "yes", 3, 10}},
  });
  SelectorOptions options;
  options.size_bound = 2;
  options.fill_to_bound = false;  // keep the counter-example crisp

  const auto snippet = SnippetSelector().Select(fx.instance, options);
  EXPECT_EQ(TypeNames(fx.instance, snippet[0]),
            (std::set<std::string>{"alpha.x1", "alpha.x2"}));

  const auto single = SingleSwapOptimizer().Select(fx.instance, options);
  const auto multi = MultiSwapOptimizer().Select(fx.instance, options);
  EXPECT_TRUE(AllValid(fx.instance, single, options.size_bound));
  EXPECT_TRUE(AllValid(fx.instance, multi, options.size_bound));

  // Pairs among results 2-4 always contribute 3 (their mutual y2 shares
  // differ); result 0 adds 2 when stuck on {x1, x2} and 3 after the DP
  // rebuilds its DFS to {y1, y2}.
  EXPECT_EQ(TotalDod(fx.instance, single), 5);  // 3 + stuck {x1, x2}
  EXPECT_EQ(TotalDod(fx.instance, multi), 6);   // 3 + rebuilt {y1, y2}
  EXPECT_EQ(TypeNames(fx.instance, multi[0]),
            (std::set<std::string>{"beta.y1", "beta.y2"}));
}

TEST(MultiSwapTest, OptimizeOneMatchesEnumerationOverSingleResult) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    InstanceFixture fx = RandomInstance(seed, 3, 6);
    SelectorOptions options;
    options.size_bound = 3;
    // Fix results 1, 2 with snippets; exactly re-optimize result 0 and
    // compare against brute force over all valid DFSs of result 0.
    auto dfss = SnippetSelector().Select(fx.instance, options);
    const Dfs best = MultiSwapOptimizer::OptimizeOne(fx.instance, dfss, 0,
                                                     options.size_bound);
    int64_t best_gain = 0;
    for (feature::TypeId t : best.SelectedTypes(fx.instance)) {
      best_gain += TypeGain(fx.instance, dfss, 0, t);
    }
    EXPECT_TRUE(best.IsValid(fx.instance)) << "seed " << seed;
    EXPECT_LE(best.size(), options.size_bound);

    int64_t brute_gain = 0;
    for (const Dfs& cand : ExhaustiveSelector::EnumerateValid(
             fx.instance, 0, options.size_bound)) {
      int64_t g = 0;
      for (feature::TypeId t : cand.SelectedTypes(fx.instance)) {
        g += TypeGain(fx.instance, dfss, 0, t);
      }
      brute_gain = std::max(brute_gain, g);
    }
    EXPECT_EQ(best_gain, brute_gain) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Exhaustive.
// ---------------------------------------------------------------------------

TEST(ExhaustiveTest, EnumerateValidProducesExactlyTheValidSets) {
  InstanceFixture fx = BuildInstance({{
      {"review", "pro: a", "yes", 9, 10},
      {"review", "pro: b", "yes", 6, 10},
      {"review", "pro: c", "yes", 6, 10},
  }});
  const auto all = ExhaustiveSelector::EnumerateValid(fx.instance, 0, 3);
  // Valid sets: {}, {a}, {a,b}, {a,c}, {a,b,c} -> 5.
  EXPECT_EQ(all.size(), 5u);
  std::set<std::vector<int>> seen;
  for (const Dfs& d : all) {
    EXPECT_TRUE(d.IsValid(fx.instance));
    EXPECT_LE(d.size(), 3);
    EXPECT_TRUE(seen.insert(d.SelectedEntries()).second) << "duplicate";
  }
}

TEST(ExhaustiveTest, EnumerationRespectsSizeBound) {
  InstanceFixture fx = BuildInstance({{
      {"review", "pro: a", "yes", 9, 10},
      {"review", "pro: b", "yes", 6, 10},
      {"review", "pro: c", "yes", 6, 10},
  }});
  const auto all = ExhaustiveSelector::EnumerateValid(fx.instance, 0, 1);
  // {}, {a} only.
  EXPECT_EQ(all.size(), 2u);
}

// ---------------------------------------------------------------------------
// Factory.
// ---------------------------------------------------------------------------

TEST(SelectorFactoryTest, MakesEveryKind) {
  for (SelectorKind kind :
       {SelectorKind::kSnippet, SelectorKind::kGreedy,
        SelectorKind::kSingleSwap, SelectorKind::kMultiSwap,
        SelectorKind::kExhaustive}) {
    auto selector = MakeSelector(kind);
    ASSERT_NE(selector, nullptr);
    EXPECT_EQ(selector->name(), SelectorKindName(kind));
  }
}

// ---------------------------------------------------------------------------
// Properties over random instances.
// ---------------------------------------------------------------------------

struct PropertyParam {
  uint64_t seed;
  int num_results;
  int max_types;
  int size_bound;
};

class SelectorProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(SelectorProperty, AllAlgorithmsProduceValidBoundedAssignments) {
  const PropertyParam p = GetParam();
  InstanceFixture fx = RandomInstance(p.seed, p.num_results, p.max_types);
  SelectorOptions options;
  options.size_bound = p.size_bound;
  for (SelectorKind kind : {SelectorKind::kSnippet, SelectorKind::kGreedy,
                            SelectorKind::kSingleSwap,
                            SelectorKind::kMultiSwap}) {
    const auto dfss = MakeSelector(kind)->Select(fx.instance, options);
    ASSERT_EQ(static_cast<int>(dfss.size()), fx.instance.num_results());
    EXPECT_TRUE(AllValid(fx.instance, dfss, options.size_bound))
        << SelectorKindName(kind) << " seed " << p.seed;
  }
}

TEST_P(SelectorProperty, OptimizersNeverLoseToSnippets) {
  const PropertyParam p = GetParam();
  InstanceFixture fx = RandomInstance(p.seed, p.num_results, p.max_types);
  SelectorOptions options;
  options.size_bound = p.size_bound;
  const int64_t snippet =
      TotalDod(fx.instance, SnippetSelector().Select(fx.instance, options));
  const int64_t single = TotalDod(
      fx.instance, SingleSwapOptimizer().Select(fx.instance, options));
  const int64_t multi = TotalDod(
      fx.instance, MultiSwapOptimizer().Select(fx.instance, options));
  EXPECT_GE(single, snippet) << "seed " << p.seed;
  EXPECT_GE(multi, snippet) << "seed " << p.seed;
}

TEST_P(SelectorProperty, SingleSwapResultIsSingleSwapOptimal) {
  const PropertyParam p = GetParam();
  InstanceFixture fx = RandomInstance(p.seed, p.num_results, p.max_types);
  SelectorOptions options;
  options.size_bound = p.size_bound;
  const auto dfss = SingleSwapOptimizer().Select(fx.instance, options);
  EXPECT_FALSE(SingleSwapOptimizer::HasImprovingMove(fx.instance, dfss,
                                                     options.size_bound))
      << "seed " << p.seed;
}

TEST_P(SelectorProperty, MultiSwapResultIsMultiSwapOptimal) {
  const PropertyParam p = GetParam();
  InstanceFixture fx = RandomInstance(p.seed, p.num_results, p.max_types);
  SelectorOptions options;
  options.size_bound = p.size_bound;
  auto dfss = MultiSwapOptimizer().Select(fx.instance, options);
  const int64_t dod = TotalDod(fx.instance, dfss);
  // No whole-DFS rewrite of any single result may improve total DoD.
  for (int i = 0; i < fx.instance.num_results(); ++i) {
    for (const Dfs& cand : ExhaustiveSelector::EnumerateValid(
             fx.instance, i, options.size_bound)) {
      std::vector<Dfs> alt = dfss;
      alt[static_cast<size_t>(i)] = cand;
      EXPECT_LE(TotalDod(fx.instance, alt), dod)
          << "seed " << p.seed << " result " << i;
    }
  }
}

TEST_P(SelectorProperty, MultiSwapDominatesSingleSwapFromSameStart) {
  // Not guaranteed in general for local search, but it holds on these
  // instances and matches the paper's Figure 4(a) trend; treat as a
  // regression canary with the exhaustive bound as the hard ceiling.
  const PropertyParam p = GetParam();
  InstanceFixture fx = RandomInstance(p.seed, p.num_results, p.max_types);
  SelectorOptions options;
  options.size_bound = p.size_bound;
  const int64_t multi = TotalDod(
      fx.instance, MultiSwapOptimizer().Select(fx.instance, options));
  const int64_t exact = TotalDod(
      fx.instance, ExhaustiveSelector().Select(fx.instance, options));
  EXPECT_LE(multi, exact) << "seed " << p.seed;
  EXPECT_GE(exact, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectorProperty,
    ::testing::Values(PropertyParam{1, 2, 5, 2}, PropertyParam{2, 2, 6, 3},
                      PropertyParam{3, 3, 5, 2}, PropertyParam{4, 3, 6, 3},
                      PropertyParam{5, 3, 4, 4}, PropertyParam{6, 2, 4, 1},
                      PropertyParam{7, 3, 6, 2}, PropertyParam{8, 2, 6, 4},
                      PropertyParam{9, 3, 5, 3}, PropertyParam{10, 3, 4, 2}));

}  // namespace
}  // namespace xsact::core
