// Unit tests for the entity identifier (XSeek-style node categorization).

#include <gtest/gtest.h>

#include "data/product_reviews.h"
#include "entity/entity_identifier.h"
#include "xml/parser.h"

namespace xsact::entity {
namespace {

using xml::Document;
using xml::Parse;

Document Doc(std::string_view text) {
  auto d = Parse(text);
  EXPECT_TRUE(d.ok()) << d.status();
  return std::move(d).value();
}

TEST(NodeCategoryTest, Names) {
  EXPECT_EQ(NodeCategoryToString(NodeCategory::kEntity), "entity");
  EXPECT_EQ(NodeCategoryToString(NodeCategory::kAttribute), "attribute");
  EXPECT_EQ(NodeCategoryToString(NodeCategory::kMultiAttribute),
            "multi-attribute");
  EXPECT_EQ(NodeCategoryToString(NodeCategory::kConnection), "connection");
  EXPECT_EQ(NodeCategoryToString(NodeCategory::kValue), "value");
}

TEST(EntityIdentifierTest, PaperShapeCategories) {
  // The Figure-1 structure: products > product > reviews > review > pros >
  // pro; review has single-valued leaves too.
  Document doc = Doc(
      "<products>"
      "  <product>"
      "    <name>gps one</name>"
      "    <reviews>"
      "      <review><stars>4</stars>"
      "        <pros><pro>compact</pro><pro>accurate</pro></pros></review>"
      "      <review><stars>5</stars><pros><pro>compact</pro></pros></review>"
      "    </reviews>"
      "  </product>"
      "  <product><name>gps two</name><reviews>"
      "      <review><stars>2</stars><pros><pro>cheap</pro></pros></review>"
      "      <review><stars>3</stars><pros><pro>cheap</pro></pros></review>"
      "  </reviews></product>"
      "</products>");
  const EntitySchema schema = InferSchema(doc);

  EXPECT_EQ(schema.CategoryOf("products", "product"), NodeCategory::kEntity);
  EXPECT_EQ(schema.CategoryOf("reviews", "review"), NodeCategory::kEntity);
  EXPECT_EQ(schema.CategoryOf("pros", "pro"), NodeCategory::kMultiAttribute);
  EXPECT_EQ(schema.CategoryOf("product", "name"), NodeCategory::kAttribute);
  EXPECT_EQ(schema.CategoryOf("review", "stars"), NodeCategory::kAttribute);
  EXPECT_EQ(schema.CategoryOf("product", "reviews"),
            NodeCategory::kConnection);
  EXPECT_EQ(schema.CategoryOf("review", "pros"), NodeCategory::kConnection);
}

TEST(EntityIdentifierTest, RepeatedLeafIsMultiAttributeNotEntity) {
  Document doc = Doc("<m><genres><genre>action</genre><genre>drama</genre>"
                     "</genres></m>");
  const EntitySchema schema = InferSchema(doc);
  EXPECT_EQ(schema.CategoryOf("genres", "genre"),
            NodeCategory::kMultiAttribute);
}

TEST(EntityIdentifierTest, SingleOccurrenceStaysAttributeOrConnection) {
  Document doc = Doc("<r><meta><author>me</author></meta></r>");
  const EntitySchema schema = InferSchema(doc);
  EXPECT_EQ(schema.CategoryOf("r", "meta"), NodeCategory::kConnection);
  EXPECT_EQ(schema.CategoryOf("meta", "author"), NodeCategory::kAttribute);
}

TEST(EntityIdentifierTest, RepetitionAnywhereMarksTheTagPair) {
  // A tag repeated under SOME parent instance is set-like under that
  // parent tag everywhere.
  Document doc = Doc(
      "<r><box><item><x>1</x></item></box>"
      "<box><item><x>1</x></item><item><x>2</x></item></box></r>");
  const EntitySchema schema = InferSchema(doc);
  EXPECT_EQ(schema.CategoryOf("box", "item"), NodeCategory::kEntity);
}

TEST(EntityIdentifierTest, CategoryOfNode) {
  Document doc = Doc("<r><a><b>1</b><b>2</b></a></r>");
  const EntitySchema schema = InferSchema(doc);
  const xml::Node* a = doc.root()->FirstChildElement("a");
  const xml::Node* b = a->FirstChildElement("b");
  EXPECT_EQ(schema.CategoryOf(*a), NodeCategory::kConnection);
  EXPECT_EQ(schema.CategoryOf(*b), NodeCategory::kMultiAttribute);
  EXPECT_EQ(schema.CategoryOf(*b->first_child()), NodeCategory::kValue);
  // Unknown pair falls back on structure.
  Document other = Doc("<z><leaf>v</leaf></z>");
  EXPECT_EQ(schema.CategoryOf(*other.root()->FirstChildElement("leaf")),
            NodeCategory::kAttribute);
}

TEST(EntityIdentifierTest, OwningEntityWalksUpToEntity) {
  Document doc = Doc(
      "<products><product><reviews>"
      "<review><pros><pro>a</pro><pro>b</pro></pros></review>"
      "<review><pros><pro>a</pro></pros></review>"
      "</reviews></product>"
      "<product><reviews><review><pros><pro>c</pro></pros></review>"
      "<review><pros><pro>c</pro></pros></review></reviews></product>"
      "</products>");
  const EntitySchema schema = InferSchema(doc);
  const xml::Node* product = doc.root()->ChildElements("product")[0];
  const xml::Node* review =
      product->FirstChildElement("reviews")->ChildElements("review")[0];
  const xml::Node* pro =
      review->FirstChildElement("pros")->ChildElements("pro")[0];
  EXPECT_EQ(schema.OwningEntity(*pro, *product), review);
  // The bounding root acts as its own entity.
  EXPECT_EQ(schema.OwningEntity(*product, *product), product);
  // A node whose ancestors hold no entity returns the bound.
  EXPECT_EQ(schema.OwningEntity(*review, *review), review);
}

TEST(EntityIdentifierTest, InferSchemaFromRootsMatchesWholeDocument) {
  const xml::Document doc = data::GenerateProductReviews(
      {.num_products = 4, .min_reviews = 3, .max_reviews = 6, .seed = 5});
  const EntitySchema whole = InferSchema(doc);
  std::vector<const xml::Node*> roots;
  for (const xml::Node* p : doc.root()->ChildElements("product")) {
    roots.push_back(p);
  }
  const EntitySchema partial = InferSchemaFromRoots(roots);
  EXPECT_EQ(partial.CategoryOf("reviews", "review"), NodeCategory::kEntity);
  EXPECT_EQ(partial.CategoryOf("pros", "pro"), NodeCategory::kMultiAttribute);
  EXPECT_EQ(whole.CategoryOf("reviews", "review"), NodeCategory::kEntity);
}

TEST(EntityIdentifierTest, EmptyDocument) {
  xml::Document empty;
  const EntitySchema schema = InferSchema(empty);
  EXPECT_TRUE(schema.Entries().empty());
}

TEST(EntityIdentifierTest, SetAndContains) {
  EntitySchema schema;
  EXPECT_FALSE(schema.Contains("a", "b"));
  schema.Set("a", "b", NodeCategory::kEntity);
  EXPECT_TRUE(schema.Contains("a", "b"));
  EXPECT_EQ(schema.CategoryOf("a", "b"), NodeCategory::kEntity);
  schema.Set("a", "b", NodeCategory::kAttribute);  // override
  EXPECT_EQ(schema.CategoryOf("a", "b"), NodeCategory::kAttribute);
}

}  // namespace
}  // namespace xsact::entity
