// Lock-discipline regression tests. These pin the two defects the
// thread-safety annotation pass surfaced (see docs/static_analysis.md):
//
//   1. ReloadCorpus after Shutdown() used to load + swap the new
//      snapshot anyway — the drained service silently came back to life
//      on a fresh corpus and its health flipped back to healthy. A
//      drained service must abandon the reload (kCancelled) and leave
//      snapshot, epoch, and health exactly as the drain left them.
//
//   2. Submit consulted the result cache BEFORE checking the drain
//      flag, so a query whose outcome was cached before Shutdown()
//      still returned real data afterwards, violating the documented
//      "rejects new submissions" contract. The draining check now runs
//      before the cache lookup.
//
// Both are behavioral (not data races), so they hold under plain builds
// as well as the TSAN CI job.

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/product_reviews.h"
#include "engine/query_service.h"
#include "engine/snapshot.h"
#include "table/renderer.h"
#include "xml/io.h"
#include "xml/writer.h"

namespace xsact::engine {
namespace {

/// Deterministic byte fingerprint of a serve outcome (table + DoD, or
/// the error text) — equal fingerprints mean equal outcomes.
std::string Fingerprint(const StatusOr<OutcomePtr>& outcome) {
  if (!outcome.ok()) return "ERR:" + outcome.status().ToString();
  return table::RenderAscii((*outcome)->table) + "#" +
         std::to_string((*outcome)->total_dod);
}

class LockDisciplineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::ProductReviewsConfig config_a;
    config_a.num_products = 24;
    config_a.seed = 1;
    snapshot_a_ = CorpusSnapshot::Build(data::GenerateProductReviews(config_a));

    data::ProductReviewsConfig config_b;
    config_b.num_products = 30;
    config_b.seed = 7;
    xml_b_ = xml::WriteDocument(data::GenerateProductReviews(config_b),
                                {.indent_width = 2, .declaration = true});
  }

  SnapshotPtr snapshot_a_;
  std::string xml_b_;
};

TEST_F(LockDisciplineTest, ReloadAfterShutdownIsAbandoned) {
  const std::string path =
      ::testing::TempDir() + "/xsact_lock_discipline_reload.xml";
  ASSERT_TRUE(xml::WriteStringToFile(path, xml_b_).ok());

  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(snapshot_a_, options);
  const SnapshotPtr before_snapshot = service.snapshot();
  const uint64_t before_epoch = service.snapshot_epoch();
  const ServiceHealth before_health = service.health();
  ASSERT_TRUE(before_health.healthy);

  service.Shutdown();

  // The reload must resolve kCancelled — not load, not swap, not retry.
  const Status reloaded = service.ReloadCorpus(path).get();
  EXPECT_EQ(reloaded.code(), StatusCode::kCancelled) << reloaded;

  // Serving state and health are untouched by the abandoned reload.
  EXPECT_EQ(service.snapshot(), before_snapshot);
  EXPECT_EQ(service.snapshot_epoch(), before_epoch);
  const ServiceHealth after = service.health();
  EXPECT_TRUE(after.healthy);
  EXPECT_EQ(after.reload_successes, before_health.reload_successes);
  EXPECT_EQ(after.reload_failures, before_health.reload_failures);
  EXPECT_TRUE(after.last_error.empty());
  std::remove(path.c_str());
}

TEST_F(LockDisciplineTest, ReloadAfterShutdownDoesNotBurnAttempts) {
  // Even against a path that would fail with a retryable IO error, a
  // drained service must bail out before the first load attempt rather
  // than spinning through the retry/backoff schedule.
  QueryServiceOptions options;
  options.num_threads = 1;
  options.reload_max_attempts = 3;
  options.reload_backoff_ms = 50;
  QueryService service(snapshot_a_, options);
  service.Shutdown();

  const Status reloaded =
      service.ReloadCorpus("/nonexistent/xsact_corpus.xml").get();
  EXPECT_EQ(reloaded.code(), StatusCode::kCancelled) << reloaded;
  EXPECT_EQ(service.health().reload_attempts, 0u);
}

TEST_F(LockDisciplineTest, CacheHitDoesNotBypassDrain) {
  QueryServiceOptions options;
  options.num_threads = 2;
  options.enable_cache = true;
  QueryService service(snapshot_a_, options);

  // Compute and cache an outcome, then verify it's a hit.
  const std::string query = "gps";
  const std::string warm = Fingerprint(service.Submit(query).get());
  ASSERT_NE(warm.substr(0, 4), "ERR:");
  EXPECT_EQ(Fingerprint(service.Submit(query).get()), warm);
  ASSERT_GE(service.cache_stats().hits, 1u);

  service.Shutdown();

  // The drained service must reject the submission even though the
  // answer is sitting in the cache.
  const StatusOr<OutcomePtr> after = service.Submit(query).get();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kCancelled) << after.status();

  // The rejection is counted as a cancellation, not a cache hit.
  const uint64_t hits_before = service.cache_stats().hits;
  const uint64_t cancelled_before = service.admission_stats().cancelled;
  const StatusOr<OutcomePtr> again = service.Submit(query).get();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(service.cache_stats().hits, hits_before);
  EXPECT_EQ(service.admission_stats().cancelled, cancelled_before + 1);
}

TEST_F(LockDisciplineTest, ShutdownIsIdempotentAndFuturesResolve) {
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(snapshot_a_, options);

  // Queue a burst, drain mid-flight, drain again: every future must
  // still become ready (ok, or kCancelled for work the drain caught).
  std::vector<std::future<StatusOr<OutcomePtr>>> futures;
  futures.reserve(32);
  for (int i = 0; i < 32; ++i) {
    futures.push_back(service.Submit("camera"));
  }
  service.Shutdown();
  service.Shutdown();
  for (auto& future : futures) {
    const StatusOr<OutcomePtr> outcome = future.get();
    if (!outcome.ok()) {
      EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled)
          << outcome.status();
    }
  }
}

}  // namespace
}  // namespace xsact::engine
