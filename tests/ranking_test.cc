// Tests for search-result ranking, file I/O and result snippets.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "data/product_reviews.h"
#include "engine/xsact.h"
#include "search/ranking.h"
#include "search/search_engine.h"
#include "xml/io.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xsact {
namespace {

xml::Document Doc(std::string_view text) {
  auto d = xml::Parse(text);
  EXPECT_TRUE(d.ok()) << d.status();
  return std::move(d).value();
}

class RankingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Result 1: tight match (both terms in one small product).
    // Result 2: sprawling match (terms scattered in a big subtree).
    // Result 3: repeats "gps" many times.
    engine_ = std::make_unique<search::SearchEngine>(Doc(
        "<catalog>"
        "<product><name>tomtom gps</name></product>"
        "<product><name>tomtom device</name>"
        "  <a>f1</a><b>f2</b><c>f3</c><d>f4</d><e>f5</e><f>f6</f>"
        "  <g>f7</g><h>f8</h><i>f9</i><j>f10</j><k>f11</k>"
        "  <desc>works like a gps</desc></product>"
        "<product><name>tomtom gps gps gps</name>"
        "  <desc>gps gps</desc></product>"
        "</catalog>"));
  }

  std::unique_ptr<search::SearchEngine> engine_;
};

TEST_F(RankingTest, TermFrequencyInSubtreeCounts) {
  const auto& table = engine_->table();
  const auto& index = engine_->index();
  // Product roots are the entity nodes (repeated under catalog).
  auto results = engine_->Search("tomtom");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ(search::TermFrequencyInSubtree(table, index, "gps",
                                           results->at(0).root_id),
            1u);
  EXPECT_EQ(search::TermFrequencyInSubtree(table, index, "gps",
                                           results->at(1).root_id),
            1u);
  // Postings are per-element, so the third product counts 2 elements
  // (name and desc), not 5 raw occurrences.
  EXPECT_EQ(search::TermFrequencyInSubtree(table, index, "gps",
                                           results->at(2).root_id),
            2u);
  EXPECT_EQ(search::TermFrequencyInSubtree(table, index, "zzz",
                                           results->at(0).root_id),
            0u);
}

TEST_F(RankingTest, TighterAndDenserMatchesRankHigher) {
  auto ranked = engine_->SearchRanked("tomtom gps");
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  // The sprawling product (result 2 in document order) must sink to the
  // bottom; the dense repeat match ranks above the single tight match.
  EXPECT_EQ(ranked->at(2).title, "tomtom device");
  EXPECT_EQ(ranked->at(0).title, "tomtom gps gps gps");
}

TEST_F(RankingTest, RankingIsStableAndDeterministic) {
  auto a = engine_->SearchRanked("tomtom gps");
  auto b = engine_->SearchRanked("tomtom gps");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->at(i).root_id, b->at(i).root_id);
  }
}

TEST_F(RankingTest, ScoresAreNonNegativeAndOrdered) {
  auto results = engine_->Search("gps");
  ASSERT_TRUE(results.ok());
  const auto terms = std::vector<std::string_view>{"gps"};
  double prev = 1e18;
  auto ranked = search::RankResults(engine_->table(), engine_->index(), terms,
                                    *results);
  for (const auto& r : ranked) {
    const double s =
        search::ScoreResult(engine_->table(), engine_->index(), terms, r);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, prev);
    prev = s;
  }
}

TEST(BriefSnippetTest, ShowsLeadingLeafFields) {
  xml::Document doc = Doc(
      "<product><name>gizmo</name><price>9.99</price>"
      "<reviews><review><stars>5</stars></review>"
      "<review><stars>1</stars></review></reviews>"
      "<color>red</color></product>");
  EXPECT_EQ(search::BriefSnippet(*doc.root()),
            "name: gizmo | price: 9.99 | color: red");
  EXPECT_EQ(search::BriefSnippet(*doc.root(), 1), "name: gizmo");
  xml::Document empty = Doc("<p><deep><x>1</x></deep></p>");
  EXPECT_EQ(search::BriefSnippet(*empty.root()), "");
}

TEST(BriefSnippetTest, TruncatesLongValues) {
  xml::Document doc =
      Doc("<p><blurb>" + std::string(100, 'a') + "</blurb></p>");
  const std::string snippet = search::BriefSnippet(*doc.root());
  EXPECT_NE(snippet.find("..."), std::string::npos);
  EXPECT_LT(snippet.size(), 60u);
}

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  const std::string path_ = ::testing::TempDir() + "/xsact_io_test.xml";
};

TEST_F(IoTest, WriteAndReadRoundtrip) {
  const xml::Document doc = data::GenerateProductReviews(
      {.num_products = 3, .min_reviews = 2, .max_reviews = 4, .seed = 9});
  ASSERT_TRUE(xml::WriteDocumentToFile(doc, path_).ok());
  auto loaded = xml::ParseFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(xml::WriteDocument(*loaded), xml::WriteDocument(doc));
}

TEST_F(IoTest, ReadMissingFileFails) {
  auto missing = xml::ReadFileToString("/nonexistent/xsact.xml");
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
  auto parse_missing = xml::ParseFile("/nonexistent/xsact.xml");
  EXPECT_EQ(parse_missing.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, ParseFileReportsPathOnSyntaxError) {
  ASSERT_TRUE(xml::WriteStringToFile(path_, "<broken").ok());
  auto parsed = xml::ParseFile(path_);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find(path_), std::string::npos);
}

TEST_F(IoTest, EngineFromFile) {
  const xml::Document doc = data::GenerateProductReviews(
      {.num_products = 4, .min_reviews = 3, .max_reviews = 6, .seed = 2});
  ASSERT_TRUE(xml::WriteDocumentToFile(doc, path_).ok());
  auto xsact = engine::Xsact::FromFile(path_);
  ASSERT_TRUE(xsact.ok()) << xsact.status();
  auto results = xsact->Search("gps");
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

}  // namespace
}  // namespace xsact
