// Tests for the synthetic dataset generators: determinism, structural
// shape, and searchability of the workload keywords.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/paper_example.h"
#include "data/product_reviews.h"
#include "data/vocab.h"
#include "entity/entity_identifier.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xml/writer.h"

namespace xsact::data {
namespace {

TEST(ProductReviewsTest, DeterministicForSeed) {
  ProductReviewsConfig config;
  config.num_products = 5;
  config.min_reviews = 2;
  config.max_reviews = 6;
  config.seed = 42;
  const std::string a = xml::WriteDocument(GenerateProductReviews(config));
  const std::string b = xml::WriteDocument(GenerateProductReviews(config));
  EXPECT_EQ(a, b);
  config.seed = 43;
  EXPECT_NE(a, xml::WriteDocument(GenerateProductReviews(config)));
}

TEST(ProductReviewsTest, ShapeMatchesFigure1) {
  ProductReviewsConfig config;
  config.num_products = 6;
  config.min_reviews = 3;
  config.max_reviews = 9;
  const xml::Document doc = GenerateProductReviews(config);
  ASSERT_EQ(doc.root()->tag(), "products");
  const auto products = doc.root()->ChildElements("product");
  ASSERT_EQ(products.size(), 6u);
  for (const xml::Node* p : products) {
    EXPECT_NE(p->FirstChildElement("name"), nullptr);
    EXPECT_NE(p->FirstChildElement("rating"), nullptr);
    const xml::Node* reviews = p->FirstChildElement("reviews");
    ASSERT_NE(reviews, nullptr);
    const auto rs = reviews->ChildElements("review");
    EXPECT_GE(rs.size(), 3u);
    EXPECT_LE(rs.size(), 9u);
    for (const xml::Node* r : rs) {
      EXPECT_NE(r->FirstChildElement("stars"), nullptr);
      EXPECT_NE(r->FirstChildElement("pros"), nullptr);
    }
  }
}

TEST(ProductReviewsTest, GeneratedXmlParsesBack) {
  const xml::Document doc = GenerateProductReviews(
      {.num_products = 3, .min_reviews = 2, .max_reviews = 4, .seed = 7});
  auto parsed = xml::Parse(xml::WriteDocument(doc));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->NodeCount(), doc.NodeCount());
}

TEST(ProductReviewsTest, SchemaInfersExpectedCategories) {
  const xml::Document doc = GenerateProductReviews(
      {.num_products = 5, .min_reviews = 3, .max_reviews = 8, .seed = 9});
  const entity::EntitySchema schema = entity::InferSchema(doc);
  EXPECT_EQ(schema.CategoryOf("products", "product"),
            entity::NodeCategory::kEntity);
  EXPECT_EQ(schema.CategoryOf("reviews", "review"),
            entity::NodeCategory::kEntity);
  EXPECT_EQ(schema.CategoryOf("pros", "pro"),
            entity::NodeCategory::kMultiAttribute);
}

TEST(OutdoorRetailerTest, BrandsHaveFocusedPortfolios) {
  OutdoorRetailerConfig config;
  config.num_brands = 4;
  config.min_products = 30;
  config.max_products = 40;
  const xml::Document doc = GenerateOutdoorRetailer(config);
  ASSERT_EQ(doc.root()->tag(), "catalog");
  const auto brands = doc.root()->ChildElements("brand");
  ASSERT_EQ(brands.size(), 4u);
  for (const xml::Node* brand : brands) {
    const auto products =
        brand->FirstChildElement("products")->ChildElements("product");
    ASSERT_GE(products.size(), 30u);
    // The dominant category must cover a majority-ish share.
    std::map<std::string, int> by_category;
    for (const xml::Node* p : products) {
      ++by_category[p->FirstChildElement("category")->InnerText()];
    }
    int max_count = 0;
    for (const auto& [cat, count] : by_category) max_count = std::max(max_count, count);
    EXPECT_GT(max_count * 2, static_cast<int>(products.size()))
        << "brand lacks a dominant category";
  }
}

TEST(OutdoorRetailerTest, Deterministic) {
  OutdoorRetailerConfig config;
  config.num_brands = 3;
  config.min_products = 5;
  config.max_products = 8;
  EXPECT_EQ(xml::WriteDocument(GenerateOutdoorRetailer(config)),
            xml::WriteDocument(GenerateOutdoorRetailer(config)));
}

TEST(MoviesTest, FranchiseSizesControlResultCounts) {
  MoviesConfig config;
  config.franchise_sizes = {2, 3, 5};
  config.min_reviews = 2;
  config.max_reviews = 4;
  const xml::Document doc = GenerateMovies(config);
  const auto movies = doc.root()->ChildElements("movie");
  ASSERT_EQ(movies.size(), 10u);
  // Count movies whose title carries each franchise stem.
  const auto& franchises = MovieFranchises();
  std::vector<int> counts(3, 0);
  for (const xml::Node* m : movies) {
    const std::string title = m->FirstChildElement("title")->InnerText();
    for (size_t f = 0; f < 3; ++f) {
      if (title.find(franchises[f]) != std::string::npos) ++counts[f];
    }
  }
  EXPECT_EQ(counts, (std::vector<int>{2, 3, 5}));
}

TEST(MoviesTest, MovieShape) {
  MoviesConfig config;
  config.franchise_sizes = {3};
  const xml::Document doc = GenerateMovies(config);
  for (const xml::Node* m : doc.root()->ChildElements("movie")) {
    for (const char* tag :
         {"title", "year", "director", "runtime", "country", "rating",
          "votes", "genres", "reviews"}) {
      EXPECT_NE(m->FirstChildElement(tag), nullptr) << tag;
    }
  }
}

TEST(MoviesTest, WorkloadHasEightDistinctQueries) {
  const auto workload = MovieQueryWorkload(5);
  ASSERT_EQ(workload.size(), 8u);
  std::set<std::string> ids, queries;
  for (const QuerySpec& q : workload) {
    ids.insert(q.id);
    queries.insert(q.query);
    EXPECT_EQ(q.size_bound, 5);
  }
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(queries.size(), 8u);
  EXPECT_EQ(workload[0].id, "QM1");
  EXPECT_EQ(workload[7].id, "QM8");
}

TEST(PaperExampleTest, StatisticsMatchFigure1) {
  PaperGpsInstance gps = BuildPaperGpsInstance(/*augmented=*/false);
  ASSERT_EQ(gps.instance.num_results(), 2);
  const feature::TypeId compact =
      gps.catalog->FindType("review", "pro: compact");
  ASSERT_GE(compact, 0);
  const feature::TypeStats* s1 = gps.instance.result(0).Find(compact);
  const feature::TypeStats* s3 = gps.instance.result(1).Find(compact);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s3, nullptr);
  EXPECT_DOUBLE_EQ(s1->occurrence, 8);
  EXPECT_DOUBLE_EQ(s1->entity_cardinality, 11);
  EXPECT_DOUBLE_EQ(s3->occurrence, 38);
  EXPECT_DOUBLE_EQ(s3->entity_cardinality, 68);
  // The augmented instance adds the "..." counts without touching these.
  PaperGpsInstance aug = BuildPaperGpsInstance(/*augmented=*/true);
  EXPECT_GT(aug.instance.result(0).NumTypes(),
            gps.instance.result(0).NumTypes());
}

TEST(VocabTest, PoolsAreNonEmptyAndStable) {
  EXPECT_FALSE(ProAspects().empty());
  EXPECT_FALSE(ConAspects().empty());
  EXPECT_FALSE(BestUses().empty());
  EXPECT_FALSE(OutdoorBrands().empty());
  EXPECT_EQ(OutdoorCategories().size(), OutdoorSubcategories().size());
  EXPECT_GE(MovieFranchises().size(), 8u);
  EXPECT_EQ(&ProAspects(), &ProAspects());  // same static instance
}

}  // namespace
}  // namespace xsact::data
