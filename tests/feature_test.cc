// Unit tests for the feature model: catalog, result statistics, and the
// extractor's reproduction of the paper's Figure-1 arithmetic.

#include <gtest/gtest.h>

#include "entity/entity_identifier.h"
#include "feature/catalog.h"
#include "feature/extractor.h"
#include "feature/result_features.h"
#include "xml/parser.h"

namespace xsact::feature {
namespace {

TEST(CatalogTest, TypeInterningIsIdempotentAndDense) {
  FeatureCatalog cat;
  const TypeId a = cat.InternType("review", "pro: compact");
  const TypeId b = cat.InternType("review", "pro: easy to read");
  const TypeId a2 = cat.InternType("review", "pro: compact");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(cat.NumTypes(), 2u);
  EXPECT_EQ(cat.EntityOf(a), "review");
  EXPECT_EQ(cat.AttributeOf(a), "pro: compact");
  EXPECT_EQ(cat.TypeName(a), "review.pro: compact");
}

TEST(CatalogTest, EntityAttributeSplitIsUnambiguous) {
  FeatureCatalog cat;
  // ("a", "b.c") and ("a.b", "c") must intern to different types.
  const TypeId t1 = cat.InternType("a", "b.c");
  const TypeId t2 = cat.InternType("a.b", "c");
  EXPECT_NE(t1, t2);
}

TEST(CatalogTest, FindWithoutIntern) {
  FeatureCatalog cat;
  EXPECT_EQ(cat.FindType("x", "y"), kInvalidTypeId);
  cat.InternType("x", "y");
  EXPECT_GE(cat.FindType("x", "y"), 0);
  EXPECT_EQ(cat.FindValue("v"), kInvalidValueId);
  const ValueId v = cat.InternValue("v");
  EXPECT_EQ(cat.FindValue("v"), v);
  EXPECT_EQ(cat.ValueOf(v), "v");
}

TEST(ResultFeaturesTest, AggregatesObservations) {
  FeatureCatalog cat;
  const TypeId stars = cat.InternType("review", "stars");
  const ValueId five = cat.InternValue("5");
  const ValueId four = cat.InternValue("4");
  ResultFeatures rf;
  rf.AddObservation(stars, five, 6, 11);
  rf.AddObservation(stars, four, 3, 11);
  rf.AddObservation(stars, five, 2, 11);  // merges into (stars, 5)
  rf.Seal();

  const TypeStats* ts = rf.Find(stars);
  ASSERT_NE(ts, nullptr);
  EXPECT_DOUBLE_EQ(ts->occurrence, 11);
  EXPECT_DOUBLE_EQ(ts->entity_cardinality, 11);
  ASSERT_EQ(ts->values.size(), 2u);
  EXPECT_EQ(ts->DominantValue(), five);  // 8 > 3
  EXPECT_DOUBLE_EQ(ts->RelativeOccurrenceOf(five), 8.0 / 11.0);
  EXPECT_DOUBLE_EQ(ts->RelativeOccurrenceOf(four), 3.0 / 11.0);
  EXPECT_DOUBLE_EQ(ts->RelativeOccurrenceOf(999), 0.0);
  EXPECT_DOUBLE_EQ(ts->RelativeOccurrence(), 1.0);
}

TEST(ResultFeaturesTest, DominantTieBreaksByValueId) {
  FeatureCatalog cat;
  const TypeId t = cat.InternType("e", "a");
  const ValueId v1 = cat.InternValue("first");
  const ValueId v2 = cat.InternValue("second");
  ResultFeatures rf;
  rf.AddObservation(t, v2, 5, 10);
  rf.AddObservation(t, v1, 5, 10);
  rf.Seal();
  EXPECT_EQ(rf.Find(t)->DominantValue(), v1);  // equal counts: lower id
}

TEST(ResultFeaturesTest, TypesSortedAndCounted) {
  FeatureCatalog cat;
  ResultFeatures rf;
  rf.AddObservation(cat.InternType("e", "b"), cat.InternValue("x"), 1, 1);
  rf.AddObservation(cat.InternType("e", "a"), cat.InternValue("y"), 1, 1);
  rf.Seal();
  EXPECT_EQ(rf.NumTypes(), 2u);
  EXPECT_EQ(rf.NumFeatures(), 2u);
  EXPECT_LT(rf.types()[0].type_id, rf.types()[1].type_id);
  EXPECT_TRUE(rf.HasType(rf.types()[0].type_id));
  EXPECT_FALSE(rf.HasType(12345));
}

// ---------------------------------------------------------------------------
// Extractor
// ---------------------------------------------------------------------------

class ExtractorTest : public ::testing::Test {
 protected:
  // A miniature Figure-1 product: 3 reviews; "compact" praised by 2 of 3.
  void SetUp() override {
    auto doc = xml::Parse(
        "<products>"
        "<product>"
        "  <name>TomTom Go 630</name>"
        "  <rating>4.2</rating>"
        "  <reviews>"
        "    <review><stars>5</stars>"
        "      <pros><pro>compact</pro><pro>easy to read</pro></pros></review>"
        "    <review><stars>5</stars><pros><pro>compact</pro></pros></review>"
        "    <review><stars>2</stars><pros><pro>large screen</pro></pros>"
        "    </review>"
        "  </reviews>"
        "</product>"
        "<product><name>other</name><rating>3.0</rating><reviews>"
        "    <review><stars>1</stars><pros><pro>cheap</pro></pros></review>"
        "    <review><stars>2</stars><pros><pro>cheap</pro></pros></review>"
        "</reviews></product>"
        "</products>");
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
    schema_ = entity::InferSchema(doc_);
    product_ = doc_.root()->ChildElements("product")[0];
  }

  xml::Document doc_;
  entity::EntitySchema schema_;
  const xml::Node* product_ = nullptr;
  FeatureCatalog catalog_;
};

TEST_F(ExtractorTest, MultiAttributeBecomesQualifiedBooleanType) {
  FeatureExtractor extractor;
  ResultFeatures rf = extractor.Extract(*product_, schema_, &catalog_);

  const TypeId compact = catalog_.FindType("review", "pro: compact");
  ASSERT_GE(compact, 0);
  const TypeStats* ts = rf.Find(compact);
  ASSERT_NE(ts, nullptr);
  EXPECT_DOUBLE_EQ(ts->occurrence, 2);           // 2 of 3 reviewers
  EXPECT_DOUBLE_EQ(ts->entity_cardinality, 3);   // "# of reviews: 3"
  ASSERT_EQ(ts->values.size(), 1u);
  EXPECT_EQ(catalog_.ValueOf(ts->DominantValue()), "yes");
  EXPECT_NEAR(ts->RelativeOccurrence(), 2.0 / 3.0, 1e-12);
}

TEST_F(ExtractorTest, SingleAttributeKeepsValueDistribution) {
  FeatureExtractor extractor;
  ResultFeatures rf = extractor.Extract(*product_, schema_, &catalog_);

  const TypeId stars = catalog_.FindType("review", "stars");
  ASSERT_GE(stars, 0);
  const TypeStats* ts = rf.Find(stars);
  ASSERT_NE(ts, nullptr);
  EXPECT_DOUBLE_EQ(ts->occurrence, 3);  // every review has stars
  ASSERT_EQ(ts->values.size(), 2u);     // "5" x2, "2" x1
  EXPECT_EQ(catalog_.ValueOf(ts->DominantValue()), "5");
}

TEST_F(ExtractorTest, ProductAttributesOwnedByResultRoot) {
  FeatureExtractor extractor;
  ResultFeatures rf = extractor.Extract(*product_, schema_, &catalog_);

  const TypeId name = catalog_.FindType("product", "name");
  ASSERT_GE(name, 0);
  const TypeStats* ts = rf.Find(name);
  ASSERT_NE(ts, nullptr);
  EXPECT_DOUBLE_EQ(ts->occurrence, 1);
  EXPECT_DOUBLE_EQ(ts->entity_cardinality, 1);
  EXPECT_EQ(catalog_.ValueOf(ts->DominantValue()), "tomtom go 630");
  EXPECT_EQ(rf.label(), "TomTom Go 630");
}

TEST_F(ExtractorTest, ValueCaseFoldingConfigurable) {
  ExtractorOptions opts;
  opts.fold_value_case = false;
  FeatureExtractor extractor(opts);
  ResultFeatures rf = extractor.Extract(*product_, schema_, &catalog_);
  const TypeId name = catalog_.FindType("product", "name");
  EXPECT_EQ(catalog_.ValueOf(rf.Find(name)->DominantValue()),
            "TomTom Go 630");
}

TEST_F(ExtractorTest, LongValuesTruncated) {
  auto doc = xml::Parse("<r><note>" + std::string(300, 'x') + "</note><note2>ok</note2></r>");
  ASSERT_TRUE(doc.ok());
  ExtractorOptions opts;
  opts.max_value_length = 10;
  FeatureExtractor extractor(opts);
  entity::EntitySchema schema = entity::InferSchema(*doc);
  ResultFeatures rf = extractor.Extract(*doc->root(), schema, &catalog_);
  const TypeId note = catalog_.FindType("r", "note");
  ASSERT_GE(note, 0);
  EXPECT_EQ(catalog_.ValueOf(rf.Find(note)->DominantValue()).size(), 10u);
}

TEST_F(ExtractorTest, EmptyValuesSkipped) {
  auto doc = xml::Parse("<r><a></a><b>ok</b></r>");
  ASSERT_TRUE(doc.ok());
  FeatureExtractor extractor;
  entity::EntitySchema schema = entity::InferSchema(*doc);
  ResultFeatures rf = extractor.Extract(*doc->root(), schema, &catalog_);
  EXPECT_EQ(catalog_.FindType("r", "a"), kInvalidTypeId);
  EXPECT_GE(catalog_.FindType("r", "b"), 0);
}

TEST_F(ExtractorTest, BareLeafResultHasNoFeatures) {
  auto doc = xml::Parse("<name>just text</name>");
  ASSERT_TRUE(doc.ok());
  FeatureExtractor extractor;
  entity::EntitySchema schema = entity::InferSchema(*doc);
  ResultFeatures rf = extractor.Extract(*doc->root(), schema, &catalog_);
  EXPECT_EQ(rf.NumTypes(), 0u);
}

}  // namespace
}  // namespace xsact::feature
