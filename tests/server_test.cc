// HttpServer integration tests: real sockets against a live event loop.
// Covers the serving contract end to end — byte-identical /query bodies
// vs the direct router path, the shared Status→HTTP mapping (404/429/
// 500/504 + Retry-After), keep-alive and pipelining, slow-loris 408,
// oversized-request 431, connection-cap 503, client-disconnect
// cancellation reaching the engine, and graceful vs forced drain.

#include "server/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/faultpoint.h"
#include "data/product_reviews.h"
#include "engine/router.h"
#include "engine/snapshot.h"
#include "server/http_client.h"
#include "table/renderer.h"

namespace xsact::server {
namespace {

using engine::QueryServiceOptions;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DisarmAllFaultPoints(); }

  void TearDown() override {
    StopServer();
    fault::DisarmAllFaultPoints();
  }

  engine::SnapshotPtr BuildCorpus() {
    data::ProductReviewsConfig config;
    config.num_products = 16;
    config.seed = 7;
    return engine::CorpusSnapshot::Build(
        data::GenerateProductReviews(config));
  }

  /// Builds a router over `dataset_names` (all sharing one immutable
  /// snapshot — legal, snapshots are corpus-constant) and runs the
  /// server on a background thread.
  void StartServer(ServerOptions options = {},
                   QueryServiceOptions service_options = {},
                   std::vector<std::string> dataset_names = {"products"}) {
    const engine::SnapshotPtr snapshot = BuildCorpus();
    std::vector<engine::DatasetSpec> specs;
    for (std::string& name : dataset_names) {
      specs.push_back({std::move(name), snapshot});
    }
    StatusOr<engine::ServiceRouter> router =
        engine::ServiceRouter::Create(std::move(specs), service_options);
    ASSERT_TRUE(router.ok()) << router.status();
    router_ = std::make_unique<engine::ServiceRouter>(std::move(*router));
    server_ = std::make_unique<HttpServer>(router_.get(), options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started;
    thread_ = std::thread([this] { server_->Run(); });
  }

  void StopServer() {
    if (server_ != nullptr) server_->Stop();
    if (thread_.joinable()) thread_.join();
  }

  int port() const { return server_->port(); }

  std::unique_ptr<engine::ServiceRouter> router_;
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

TEST_F(ServerTest, QueryBodyIsByteIdenticalToDirectRouterPath) {
  StartServer();
  HttpClient client(port());
  StatusOr<ClientResponse> response = client.Get("/query?q=gps");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 200);

  StatusOr<engine::OutcomePtr> direct =
      router_->Submit("products", "gps").get();
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_EQ(response->body, table::RenderJson((*direct)->table))
      << "HTTP serving must not alter the rendered outcome";
}

TEST_F(ServerTest, PostBodyServesLikeQueryParameter) {
  StartServer();
  HttpClient client(port());
  StatusOr<ClientResponse> get = client.Get("/query?q=gps");
  StatusOr<ClientResponse> post = client.Post("/query", "gps", "text/plain");
  ASSERT_TRUE(get.ok()) << get.status();
  ASSERT_TRUE(post.ok()) << post.status();
  EXPECT_EQ(post->code, 200);
  EXPECT_EQ(post->body, get->body);
}

TEST_F(ServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartServer();
  HttpClient client(port());
  for (int i = 0; i < 5; ++i) {
    StatusOr<ClientResponse> response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->code, 200);
    EXPECT_TRUE(response->keep_alive);
  }
  EXPECT_EQ(server_->stats().accepted, 1u)
      << "keep-alive requests must reuse the connection";
}

TEST_F(ServerTest, PipelinedRequestsAllAnswered) {
  StartServer();
  HttpClient client(port());
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\n\r\n"
                           "GET /healthz HTTP/1.1\r\n\r\n")
                  .ok());
  for (int i = 0; i < 2; ++i) {
    StatusOr<ClientResponse> response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->code, 200);
  }
}

TEST_F(ServerTest, HealthzAndStatzReportServingState) {
  StartServer();
  HttpClient client(port());
  StatusOr<ClientResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->code, 200);
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos);

  ASSERT_TRUE(client.Get("/query?q=gps").ok());
  StatusOr<ClientResponse> statz = client.Get("/statz");
  ASSERT_TRUE(statz.ok()) << statz.status();
  EXPECT_EQ(statz->code, 200);
  EXPECT_NE(statz->body.find("\"server\""), std::string::npos);
  EXPECT_NE(statz->body.find("\"dataset\":\"products\""), std::string::npos);
  EXPECT_NE(statz->body.find("\"admission\""), std::string::npos);
  EXPECT_NE(statz->body.find("\"health\""), std::string::npos);
  EXPECT_NE(statz->body.find("\"draining\":false"), std::string::npos);
}

// ---- error mapping (common/status.h is the shared source of truth) ---

TEST_F(ServerTest, UnknownDatasetMapsNotFoundTo404) {
  StartServer();
  HttpClient client(port());
  StatusOr<ClientResponse> response =
      client.Get("/query?dataset=nope&q=gps");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 404);
  EXPECT_NE(response->body.find("unknown dataset"), std::string::npos);
}

TEST_F(ServerTest, AmbiguousDatasetIs400WithSeveralDatasets) {
  StartServer({}, {}, {"left", "right"});
  HttpClient client(port());
  StatusOr<ClientResponse> response = client.Get("/query?q=gps");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 400);

  StatusOr<ClientResponse> routed =
      client.Get("/query?dataset=right&q=gps");
  ASSERT_TRUE(routed.ok()) << routed.status();
  EXPECT_EQ(routed->code, 200);
}

TEST_F(ServerTest, MissingQueryIs400) {
  StartServer();
  HttpClient client(port());
  StatusOr<ClientResponse> response = client.Get("/query");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 400);
}

TEST_F(ServerTest, MalformedNumericParameterIs400) {
  StartServer();
  HttpClient client(port());
  StatusOr<ClientResponse> response =
      client.Get("/query?q=gps&max_results=lots");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 400);
}

TEST_F(ServerTest, UnknownEndpointIs404AndMethodIs405) {
  StartServer();
  HttpClient client(port());
  StatusOr<ClientResponse> missing = client.Get("/nope");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(missing->code, 404);

  StatusOr<ClientResponse> put = client.Request("PUT", "/query", {}, "x");
  ASSERT_TRUE(put.ok()) << put.status();
  EXPECT_EQ(put->code, 405);
  ASSERT_NE(put->FindHeader("allow"), nullptr);
}

TEST_F(ServerTest, ShedRequestMaps429WithRetryAfter) {
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.enable_cache = false;
  service_options.max_queue = 1;
  StartServer({}, service_options);

  fault::FaultSpec slow;
  slow.code = StatusCode::kOk;  // pure latency injection
  slow.delay_ms = 150;  // hold the single worker busy
  ASSERT_TRUE(fault::ArmFaultPointByName("service.worker", slow));

  // Three concurrent requests: one evaluating, one queued, one shed.
  std::vector<std::unique_ptr<HttpClient>> clients;
  for (const char* q : {"gps", "camera", "battery"}) {
    clients.push_back(std::make_unique<HttpClient>(port()));
    ASSERT_TRUE(clients.back()
                    ->SendRaw(std::string("GET /query?q=") + q +
                              " HTTP/1.1\r\n\r\n")
                    .ok());
    // Let the server dispatch in order so exactly one overflows.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  int ok_count = 0;
  int shed_count = 0;
  for (auto& client : clients) {
    StatusOr<ClientResponse> response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    if (response->code == 200) {
      ++ok_count;
    } else if (response->code == 429) {
      ++shed_count;
      const std::string* retry = response->FindHeader("retry-after");
      ASSERT_NE(retry, nullptr) << "429 must carry Retry-After";
      EXPECT_EQ(*retry, "1");
    } else {
      FAIL() << "unexpected status " << response->code;
    }
  }
  EXPECT_EQ(ok_count, 2);
  EXPECT_EQ(shed_count, 1);
}

TEST_F(ServerTest, ExpiredDeadlineMaps504) {
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.enable_cache = false;
  StartServer({}, service_options);

  fault::FaultSpec slow;
  slow.code = StatusCode::kOk;  // pure latency injection
  slow.delay_ms = 150;
  ASSERT_TRUE(fault::ArmFaultPointByName("service.worker", slow));

  HttpClient busy(port());
  ASSERT_TRUE(busy.SendRaw("GET /query?q=gps HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  HttpClient expired(port());
  StatusOr<ClientResponse> response =
      expired.Get("/query?q=camera&timeout_ms=20");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 504);
  StatusOr<ClientResponse> first = busy.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->code, 200);
}

TEST_F(ServerTest, EngineFailureMaps500) {
  QueryServiceOptions service_options;
  service_options.enable_cache = false;
  StartServer({}, service_options);

  fault::FaultSpec broken;
  broken.code = StatusCode::kInternal;
  broken.message = "chaos-worker-broken";
  ASSERT_TRUE(fault::ArmFaultPointByName("service.worker", broken));

  HttpClient client(port());
  StatusOr<ClientResponse> response = client.Get("/query?q=gps");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 500);
  EXPECT_NE(response->body.find("chaos-worker-broken"), std::string::npos);

  fault::DisarmAllFaultPoints();
  StatusOr<ClientResponse> recovered = client.Get("/query?q=gps");
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->code, 200) << "server must recover after the fault";
}

// ---- hostile clients -------------------------------------------------

TEST_F(ServerTest, SlowLorisGets408) {
  ServerOptions options;
  options.read_timeout_ms = 200;
  StartServer(options);
  HttpClient client(port());
  ASSERT_TRUE(client.SendRaw("GET /query?q=gps HTTP/1.1\r\nHos").ok());
  StatusOr<ClientResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 408);
  EXPECT_FALSE(response->keep_alive);
  EXPECT_GE(server_->stats().timeouts, 1u);
}

TEST_F(ServerTest, IdleKeepAliveConnectionIsClosedSilently) {
  ServerOptions options;
  options.idle_timeout_ms = 200;
  StartServer(options);
  HttpClient client(port());
  ASSERT_TRUE(client.Connect().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  // Never sent a byte: the close must be silent (EOF, no 408).
  StatusOr<ClientResponse> response = client.ReadResponse();
  EXPECT_FALSE(response.ok());

  // The server is still accepting fresh connections.
  HttpClient fresh(port());
  StatusOr<ClientResponse> health = fresh.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->code, 200);
}

TEST_F(ServerTest, SlowQueryDoesNotTripIdleTimeoutAfterResponse) {
  ServerOptions options;
  options.idle_timeout_ms = 200;
  QueryServiceOptions service_options;
  service_options.enable_cache = false;
  StartServer(options, service_options);

  fault::FaultSpec slow;
  slow.code = StatusCode::kOk;  // pure latency injection
  slow.delay_ms = 400;  // evaluation alone outlasts idle_timeout_ms
  ASSERT_TRUE(fault::ArmFaultPointByName("service.worker", slow));

  HttpClient client(port());
  StatusOr<ClientResponse> first = client.Get("/query?q=gps");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->code, 200);
  EXPECT_TRUE(first->keep_alive);

  // The idle clock restarts when the response is queued, so immediate
  // reuse must ride the SAME connection — not get closed as "idle the
  // whole time the engine was evaluating".
  fault::DisarmAllFaultPoints();
  StatusOr<ClientResponse> second = client.Get("/query?q=camera");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->code, 200);
  EXPECT_EQ(server_->stats().accepted, 1u);
}

TEST_F(ServerTest, OversizedHeadersGet431AndClose) {
  StartServer();
  HttpClient client(port());
  StatusOr<ClientResponse> response = client.Request(
      "GET", "/healthz", {{"X-Big", std::string(20000, 'b')}}, "");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 431);
  EXPECT_FALSE(response->keep_alive);
}

TEST_F(ServerTest, GarbageBytesGet400NeverReachTheEngine) {
  StartServer();
  HttpClient client(port());
  ASSERT_TRUE(client.SendRaw("\x16\x03\x01\x7f\r\n\r\n").ok());
  StatusOr<ClientResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 400);
  EXPECT_EQ(router_->stats().datasets[0].admission.admitted, 0u)
      << "garbage must be rejected before the engine sees it";
}

TEST_F(ServerTest, LargePostBodyUpToLimitIsServed) {
  StartServer();
  HttpClient client(port());
  // 256 KiB in one burst — well past the 64 KiB pipelining flood cap
  // but within max_body_bytes: the parser must consume it as it
  // arrives instead of the server dropping the connection as a flood.
  const std::string big(256 * 1024, 'x');
  StatusOr<ClientResponse> post =
      client.Post("/query?q=gps", big, "text/plain");
  ASSERT_TRUE(post.ok()) << post.status();
  EXPECT_EQ(post->code, 200);
  EXPECT_TRUE(post->keep_alive);
  EXPECT_EQ(server_->stats().disconnects, 0u);

  StatusOr<ClientResponse> get = client.Get("/query?q=gps");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(post->body, get->body);
}

TEST_F(ServerTest, FloodDuringEvaluationClosesAndCancels) {
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.enable_cache = false;
  StartServer({}, service_options);

  fault::FaultSpec slow;
  slow.code = StatusCode::kOk;  // pure latency injection
  slow.delay_ms = 400;
  ASSERT_TRUE(fault::ArmFaultPointByName("service.worker", slow));

  HttpClient client(port());
  ASSERT_TRUE(client.SendRaw("GET /query?q=gps HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Flood 128 KiB while the engine owns the request. The flood close is
  // NOT a clean EOF, yet it must still abandon the in-flight work.
  [[maybe_unused]] const Status ignored =
      client.SendRaw(std::string(128 * 1024, 'F'));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->stats().cancelled_by_disconnect == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server_->stats().cancelled_by_disconnect, 1u);
  EXPECT_GE(server_->stats().disconnects, 1u);
}

TEST_F(ServerTest, ConnectionCapAnswers503) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  HttpClient occupant(port());
  ASSERT_TRUE(occupant.Get("/healthz").ok());  // holds its keep-alive slot
  HttpClient rejected(port());
  StatusOr<ClientResponse> response = rejected.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 503);
  EXPECT_GE(server_->stats().rejected_at_capacity, 1u);
}

TEST_F(ServerTest, ClientDisconnectCancelsEngineWork) {
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.enable_cache = false;
  StartServer({}, service_options);

  fault::FaultSpec slow;
  slow.code = StatusCode::kOk;  // pure latency injection
  slow.delay_ms = 300;
  ASSERT_TRUE(fault::ArmFaultPointByName("service.worker", slow));

  HttpClient client(port());
  ASSERT_TRUE(client.SendRaw("GET /query?q=gps HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  client.Close();  // hang up while the engine is mid-evaluation

  // The event loop must notice the EOF and fire the request's cancel.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->stats().cancelled_by_disconnect == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server_->stats().cancelled_by_disconnect, 1u);

  // The stack stays fully serviceable afterwards.
  fault::DisarmAllFaultPoints();
  HttpClient second(port());
  StatusOr<ClientResponse> response = second.Get("/query?q=camera");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 200);
}

// ---- graceful drain --------------------------------------------------

TEST_F(ServerTest, GracefulDrainFinishesInflightWithinBudget) {
  ServerOptions options;
  options.drain_budget_ms = 3000;
  QueryServiceOptions service_options;
  service_options.enable_cache = false;
  StartServer(options, service_options);

  fault::FaultSpec slow;
  slow.code = StatusCode::kOk;  // pure latency injection
  slow.delay_ms = 200;
  ASSERT_TRUE(fault::ArmFaultPointByName("service.worker", slow));

  HttpClient client(port());
  ASSERT_TRUE(client.SendRaw("GET /query?q=gps HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Stop();

  // In-flight request completes normally; the response sheds the
  // connection (draining servers never keep-alive).
  StatusOr<ClientResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 200);
  EXPECT_FALSE(response->keep_alive);

  thread_.join();  // Run() must return after the drain
  EXPECT_TRUE(server_->draining());

  // New connections are refused (listener closed).
  HttpClient late(port());
  EXPECT_FALSE(late.Connect().ok());
}

TEST_F(ServerTest, ExhaustedDrainBudgetHardCancelsVia499) {
  ServerOptions options;
  options.drain_budget_ms = 50;
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.enable_cache = false;
  StartServer(options, service_options);

  fault::FaultSpec slow;
  slow.code = StatusCode::kOk;  // pure latency injection
  slow.delay_ms = 1000;  // far past the drain budget
  ASSERT_TRUE(fault::ArmFaultPointByName("service.worker", slow));

  HttpClient client(port());
  ASSERT_TRUE(client.SendRaw("GET /query?q=gps HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto start = std::chrono::steady_clock::now();
  server_->Stop();
  StatusOr<ClientResponse> response = client.ReadResponse();
  thread_.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  // The engine was hard-cancelled: the client sees 499 (request
  // cancelled) and the drain completes promptly instead of waiting out
  // the full evaluation.
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, 499);
  EXPECT_LT(elapsed.count(), 10000);
}

TEST_F(ServerTest, QueryDuringDrainIs503) {
  ServerOptions options;
  options.drain_budget_ms = 1000;
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.enable_cache = false;
  StartServer(options, service_options);

  fault::FaultSpec slow;
  slow.code = StatusCode::kOk;  // pure latency injection
  slow.delay_ms = 400;
  ASSERT_TRUE(fault::ArmFaultPointByName("service.worker", slow));

  // Keep one request in flight so the drain lingers, then ask again on
  // an ALREADY-ACCEPTED connection (new connects are refused outright).
  HttpClient busy(port());
  ASSERT_TRUE(busy.SendRaw("GET /query?q=gps HTTP/1.1\r\n\r\n").ok());
  HttpClient parked(port());
  ASSERT_TRUE(parked.Connect().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  StatusOr<ClientResponse> refused = parked.Get("/query?q=camera");
  if (refused.ok()) {
    EXPECT_EQ(refused->code, 503);
  }  // else: the drain already closed the idle connection — also correct

  StatusOr<ClientResponse> inflight = busy.ReadResponse();
  ASSERT_TRUE(inflight.ok()) << inflight.status();
  EXPECT_EQ(inflight->code, 200);
  thread_.join();
}

}  // namespace
}  // namespace xsact::server
