// Parser-equivalence property suite: pins the zero-copy arena parser
// (and its fused NodeTable build) against a verbatim copy of the seed
// parser on all three demo corpora, randomized documents, and a
// malformed-input corpus (error parity: same kParseError, same
// line/column, same message bytes).

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xml/writer.h"

namespace xsact::xml {
namespace {

// ---------------------------------------------------------------------------
// Seed parser, reproduced verbatim (recursive descent over a char cursor,
// one unique_ptr node + owned strings per node, separate NodeTable walk).
// Only the child-iteration syntax of the DOM API is adapted.
// ---------------------------------------------------------------------------

namespace seed {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    const size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      out.push_back(text[i++]);  // lone '&': pass through leniently
      continue;
    }
    const std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      uint32_t code = 0;
      bool valid = entity.size() > 1;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (size_t k = 2; k < entity.size() && valid; ++k) {
          char c = entity[k];
          code *= 16;
          if (c >= '0' && c <= '9') {
            code += static_cast<uint32_t>(c - '0');
          } else if (c >= 'a' && c <= 'f') {
            code += static_cast<uint32_t>(c - 'a' + 10);
          } else if (c >= 'A' && c <= 'F') {
            code += static_cast<uint32_t>(c - 'A' + 10);
          } else {
            valid = false;
          }
        }
        valid = valid && entity.size() > 2;
      } else {
        for (size_t k = 1; k < entity.size() && valid; ++k) {
          char c = entity[k];
          if (c < '0' || c > '9') {
            valid = false;
          } else {
            code = code * 10 + static_cast<uint32_t>(c - '0');
          }
        }
      }
      if (!valid || code == 0 || code > 0x10FFFF) {
        out.append(text.substr(i, semi - i + 1));
      } else if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      // Unknown named entity: keep verbatim.
      out.append(text.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool Match(std::string_view literal) {
    if (input_.substr(pos_).substr(0, literal.size()) != literal) return false;
    for (size_t i = 0; i < literal.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  size_t pos() const { return pos_; }
  std::string_view Slice(size_t from, size_t to) const {
    return input_.substr(from, to - from);
  }

  Status Error(std::string message) const {
    return Status::ParseError("line " + std::to_string(line_) + ", column " +
                              std::to_string(column_) + ": " +
                              std::move(message));
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class ParserImpl {
 public:
  ParserImpl(std::string_view input, ParseOptions options)
      : cur_(input), options_(options) {}

  StatusOr<Document> Run() {
    XSACT_RETURN_IF_ERROR(SkipProlog());
    if (cur_.AtEnd() || cur_.Peek() != '<') {
      return cur_.Error("expected root element");
    }
    std::unique_ptr<Node> root;
    XSACT_RETURN_IF_ERROR(ParseElement(&root));
    // Trailing misc: whitespace, comments, PIs.
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) break;
      if (cur_.Match("<!--")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("-->"));
        continue;
      }
      if (cur_.Match("<?")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("?>"));
        continue;
      }
      if (options_.strict_trailing) {
        return cur_.Error("unexpected content after root element");
      }
      break;
    }
    return Document(std::move(root));
  }

 private:
  Status SkipProlog() {
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.Match("<?")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("?>"));
      } else if (cur_.Match("<!--")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("-->"));
      } else if (cur_.Match("<!DOCTYPE") || cur_.Match("<!doctype")) {
        XSACT_RETURN_IF_ERROR(SkipDoctype());
      } else {
        return Status::Ok();
      }
    }
  }

  Status SkipUntil(std::string_view terminator) {
    while (!cur_.AtEnd()) {
      if (cur_.Match(terminator)) return Status::Ok();
      cur_.Advance();
    }
    return cur_.Error("unterminated construct, expected '" +
                      std::string(terminator) + "'");
  }

  Status SkipDoctype() {
    // DOCTYPE may contain an internal subset in brackets.
    int bracket_depth = 0;
    while (!cur_.AtEnd()) {
      char c = cur_.Advance();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) return Status::Ok();
    }
    return cur_.Error("unterminated DOCTYPE");
  }

  Status ParseName(std::string* out) {
    if (cur_.AtEnd() || !IsNameStartChar(cur_.Peek())) {
      return cur_.Error("expected a name");
    }
    const size_t start = cur_.pos();
    cur_.Advance();
    while (!cur_.AtEnd() && IsNameChar(cur_.Peek())) cur_.Advance();
    *out = std::string(cur_.Slice(start, cur_.pos()));
    return Status::Ok();
  }

  Status ParseAttributes(Node* element, bool* self_closing) {
    *self_closing = false;
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) return cur_.Error("unterminated start tag");
      if (cur_.Match("/>")) {
        *self_closing = true;
        return Status::Ok();
      }
      if (cur_.Match(">")) return Status::Ok();
      std::string name;
      XSACT_RETURN_IF_ERROR(ParseName(&name));
      cur_.SkipWhitespace();
      if (cur_.AtEnd() || cur_.Peek() != '=') {
        return cur_.Error("expected '=' after attribute name '" + name + "'");
      }
      cur_.Advance();  // '='
      cur_.SkipWhitespace();
      if (cur_.AtEnd() || (cur_.Peek() != '"' && cur_.Peek() != '\'')) {
        return cur_.Error("expected quoted attribute value");
      }
      const char quote = cur_.Advance();
      const size_t start = cur_.pos();
      while (!cur_.AtEnd() && cur_.Peek() != quote) cur_.Advance();
      if (cur_.AtEnd()) return cur_.Error("unterminated attribute value");
      std::string value = DecodeEntities(cur_.Slice(start, cur_.pos()));
      cur_.Advance();  // closing quote
      element->AddAttribute(std::move(name), std::move(value));
    }
  }

  Status ParseElement(std::unique_ptr<Node>* out) {
    if (!cur_.Match("<")) return cur_.Error("expected '<'");
    std::string tag;
    XSACT_RETURN_IF_ERROR(ParseName(&tag));
    std::unique_ptr<Node> element = Node::MakeElement(tag);
    bool self_closing = false;
    XSACT_RETURN_IF_ERROR(ParseAttributes(element.get(), &self_closing));
    if (!self_closing) {
      XSACT_RETURN_IF_ERROR(ParseContent(element.get(), tag));
    }
    *out = std::move(element);
    return Status::Ok();
  }

  Status ParseContent(Node* element, const std::string& tag) {
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      if (!(options_.skip_whitespace_text && IsAllWhitespace(pending_text))) {
        element->AddChild(Node::MakeText(DecodeEntities(pending_text)));
      }
      pending_text.clear();
    };

    for (;;) {
      if (cur_.AtEnd()) {
        return cur_.Error("unterminated element <" + tag + ">");
      }
      if (cur_.Peek() == '<') {
        if (cur_.Match("</")) {
          flush_text();
          std::string close_tag;
          XSACT_RETURN_IF_ERROR(ParseName(&close_tag));
          cur_.SkipWhitespace();
          if (!cur_.Match(">")) {
            return cur_.Error("malformed end tag </" + close_tag + ">");
          }
          if (close_tag != tag) {
            return cur_.Error("mismatched end tag: expected </" + tag +
                              ">, found </" + close_tag + ">");
          }
          return Status::Ok();
        }
        if (cur_.Match("<!--")) {
          XSACT_RETURN_IF_ERROR(SkipUntil("-->"));
          continue;
        }
        if (cur_.Match("<![CDATA[")) {
          flush_text();
          const size_t start = cur_.pos();
          size_t end = start;
          // Scan for the CDATA terminator without entity decoding.
          for (;;) {
            if (cur_.AtEnd()) return cur_.Error("unterminated CDATA section");
            if (cur_.Match("]]>")) {
              end = cur_.pos() - 3;
              break;
            }
            cur_.Advance();
          }
          element->AddChild(
              Node::MakeText(std::string(cur_.Slice(start, end))));
          continue;
        }
        if (cur_.Match("<?")) {
          XSACT_RETURN_IF_ERROR(SkipUntil("?>"));
          continue;
        }
        flush_text();
        std::unique_ptr<Node> child;
        XSACT_RETURN_IF_ERROR(ParseElement(&child));
        element->AddChild(std::move(child));
        continue;
      }
      pending_text.push_back(cur_.Advance());
    }
  }

  Cursor cur_;
  ParseOptions options_;
};

StatusOr<Document> Parse(std::string_view input, ParseOptions options = {}) {
  ParserImpl impl(input, options);
  return impl.Run();
}

/// The seed's NodeTable: recursive walk plus a pointer->id hash map.
struct Table {
  std::vector<const Node*> nodes;
  std::vector<DeweyId> deweys;
  std::vector<NodeId> parents;
  std::unordered_map<const Node*, NodeId> ids;

  static void BuildImpl(const Node* node, DeweyId* dewey, NodeId parent,
                        Table* t) {
    const NodeId my_id = static_cast<NodeId>(t->nodes.size());
    t->nodes.push_back(node);
    t->deweys.push_back(*dewey);
    t->parents.push_back(parent);
    int32_t child_index = 0;
    for (const Node* child : node->children()) {
      dewey->Push(child_index++);
      BuildImpl(child, dewey, my_id, t);
      dewey->Pop();
    }
  }

  static Table Build(const Document& doc) {
    Table t;
    if (!doc.empty()) {
      DeweyId dewey;
      BuildImpl(doc.root(), &dewey, kInvalidNodeId, &t);
      t.ids.reserve(t.nodes.size());
      for (size_t i = 0; i < t.nodes.size(); ++i) {
        t.ids.emplace(t.nodes[i], static_cast<NodeId>(i));
      }
    }
    return t;
  }

  std::string TagPath(NodeId id) const {
    std::vector<std::string> parts;
    for (NodeId cur = id; cur != kInvalidNodeId;
         cur = parents[static_cast<size_t>(cur)]) {
      const Node* n = nodes[static_cast<size_t>(cur)];
      parts.push_back(n->is_element() ? std::string(n->tag()) : "#text");
    }
    std::string out;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      if (!out.empty()) out.push_back('/');
      out += *it;
    }
    return out;
  }
};

}  // namespace seed

// ---------------------------------------------------------------------------
// Equivalence checks.
// ---------------------------------------------------------------------------

/// Parses `text` with both parsers and asserts byte-identical serialized
/// DOMs plus an identical NodeTable (ids, parents, Deweys, subtree
/// extents, tag paths) from the fused build, the walk-based build over
/// the arena document, and the seed's recursive build.
void ExpectEquivalent(const std::string& text, ParseOptions options = {}) {
  StatusOr<Document> legacy = seed::Parse(text, options);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  StatusOr<ParsedCorpus> fused = ParseCorpus(text, options);
  ASSERT_TRUE(fused.ok()) << fused.status();
  const Document& arena_doc = fused->doc;
  const NodeTable& fused_table = fused->table;

  // Byte-identical serialization, compact and pretty.
  for (const int indent : {0, 2}) {
    WriteOptions wo;
    wo.indent_width = indent;
    ASSERT_EQ(WriteDocument(*legacy, wo), WriteDocument(arena_doc, wo))
        << "serialized DOM diverged (indent " << indent << ")";
  }

  const seed::Table legacy_table = seed::Table::Build(*legacy);
  const NodeTable walk_table = NodeTable::Build(arena_doc);

  ASSERT_EQ(legacy_table.nodes.size(), fused_table.size());
  ASSERT_EQ(walk_table.size(), fused_table.size());
  for (size_t i = 0; i < fused_table.size(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    EXPECT_EQ(legacy_table.parents[i], fused_table.parent(id));
    EXPECT_EQ(walk_table.parent(id), fused_table.parent(id));
    EXPECT_EQ(legacy_table.deweys[i], fused_table.dewey(id));
    EXPECT_EQ(walk_table.dewey(id), fused_table.dewey(id));
    EXPECT_EQ(walk_table.subtree_end(id), fused_table.subtree_end(id));
    // Extents match the seed's recursive subtree size.
    EXPECT_EQ(static_cast<size_t>(fused_table.subtree_end(id) - id),
              legacy_table.nodes[i]->SubtreeSize());
    EXPECT_EQ(legacy_table.TagPath(id), fused_table.TagPath(id));
    // IdOf round-trips without the seed's hash map.
    EXPECT_EQ(fused_table.IdOf(fused_table.node(id)), id);
    EXPECT_EQ(walk_table.IdOf(walk_table.node(id)), id);
    // Node content matches position by position.
    EXPECT_EQ(legacy_table.nodes[i]->kind(), fused_table.node(id)->kind());
    EXPECT_EQ(legacy_table.nodes[i]->tag(), fused_table.node(id)->tag());
    EXPECT_EQ(legacy_table.nodes[i]->text(), fused_table.node(id)->text());
    EXPECT_EQ(legacy_table.nodes[i]->attributes(),
              fused_table.node(id)->attributes());
    if (testing::Test::HasFailure()) {
      FAIL() << "first divergence at id " << id;
    }
  }
  // Foreign nodes resolve to kInvalidNodeId, as with the seed's map.
  EXPECT_EQ(fused_table.IdOf(legacy->root()), kInvalidNodeId);
  EXPECT_EQ(fused_table.IdOf(nullptr), kInvalidNodeId);
}

/// Both parsers must reject `text` with byte-identical status messages
/// (same error, same 1-based line/column).
void ExpectErrorParity(const std::string& text, ParseOptions options = {}) {
  StatusOr<Document> legacy = seed::Parse(text, options);
  StatusOr<Document> arena = Parse(text, options);
  ASSERT_FALSE(legacy.ok()) << "seed parser accepted: " << text;
  ASSERT_FALSE(arena.ok()) << "arena parser accepted: " << text;
  EXPECT_EQ(legacy.status().code(), arena.status().code()) << text;
  EXPECT_EQ(legacy.status().message(), arena.status().message()) << text;
}

TEST(ParserEquivTest, ProductReviewsCorpus) {
  data::ProductReviewsConfig config;
  config.num_products = 12;
  const std::string text =
      WriteDocument(data::GenerateProductReviews(config),
                    {.indent_width = 2, .declaration = true});
  ExpectEquivalent(text);
}

TEST(ParserEquivTest, OutdoorRetailerCorpus) {
  data::OutdoorRetailerConfig config;
  const std::string text =
      WriteDocument(data::GenerateOutdoorRetailer(config),
                    {.indent_width = 2, .declaration = true});
  ExpectEquivalent(text);
}

TEST(ParserEquivTest, MoviesCorpus) {
  const std::string text = WriteDocument(
      data::GenerateMovies({}), {.indent_width = 2, .declaration = true});
  ExpectEquivalent(text);
}

TEST(ParserEquivTest, SyntaxCornerCases) {
  const char* cases[] = {
      "<r/>",
      "<r a=\"1\" b='two'/>",
      "<r>text</r>",
      "<r>a&amp;b &lt;x&gt; &#65;&#x42; &unknown; fish & chips</r>",
      "<r><![CDATA[a < b && c > d]]></r>",
      "<r><![CDATA[]]></r>",
      "<r>pre<!-- c -->post</r>",       // one merged text node
      "<r>pre&am<!-- c -->p;post</r>",  // entity split across segments
      "<r>  <a/>  </r>",                // whitespace-only runs
      "<r>&#32;</r>",                   // entity-encoded whitespace is kept
      "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]><r/>",
      "<r><?php echo 1; ?><a/></r>",
      "<ns:r ns:a=\"v\"><ns:c/></ns:r>",
      "<r/>  <!-- bye -->\n",
      "<r><a>1</a><a>2</a><b><c>x</c></b>mixed<d/></r>",
  };
  for (const char* text : cases) {
    SCOPED_TRACE(text);
    ExpectEquivalent(text);
    ParseOptions keep_ws;
    keep_ws.skip_whitespace_text = false;
    ExpectEquivalent(text, keep_ws);
  }
  ParseOptions lenient;
  lenient.strict_trailing = false;
  ExpectEquivalent("<r/>junk after root", lenient);
}

TEST(ParserEquivTest, MalformedInputErrorParity) {
  const char* cases[] = {
      "",
      "   ",
      "plain text",
      "<",
      "<1tag/>",
      "<a>",
      "<a><b>",
      "<a></b>",
      "<a>\n<b>\n</c>\n</a>",
      "<a x></a>",
      "<a x=></a>",
      "<a x=\"1></a>",
      "<a x='1' y=\"2></a>",
      "<a /junk></a>",
      "<a><!-- unterminated",
      "<a><![CDATA[ unterminated",
      "<a><?pi unterminated",
      "<!DOCTYPE r [<!ELEMENT",
      "<?xml unterminated",
      "<a/><b/>",
      "<a/>junk",
      "<a></a junk>",
      "<a><b></b",
      "<a attr=\"v\"",
  };
  for (const char* text : cases) {
    SCOPED_TRACE(text);
    ExpectErrorParity(text);
  }
}

// ---------------------------------------------------------------------------
// Property: random trees serialized both compact and pretty parse to
// equivalent DOMs + tables under both parsers.
// ---------------------------------------------------------------------------

void BuildRandomTree(Rng& rng, Node* node, int depth, int* budget) {
  const int children = static_cast<int>(rng.Range(0, depth > 0 ? 4 : 0));
  for (int c = 0; c < children && *budget > 0; ++c) {
    --*budget;
    const bool last_is_text =
        node->child_count() > 0 && node->last_child()->is_text();
    if (!last_is_text && rng.Chance(0.3)) {
      node->AddChild(Node::MakeText("text & <" + std::to_string(rng.Below(100)) +
                                    "> \"quoted\""));
    } else {
      Node* child = node->AddElement("el" + std::to_string(rng.Below(6)));
      if (rng.Chance(0.4)) {
        child->AddAttribute("attr", "v&'" + std::to_string(rng.Below(50)));
      }
      BuildRandomTree(rng, child, depth - 1, budget);
    }
  }
}

class ParserEquivProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserEquivProperty, RandomTrees) {
  Rng rng(GetParam());
  auto root = Node::MakeElement("root");
  int budget = 60;
  BuildRandomTree(rng, root.get(), 5, &budget);
  for (const int indent : {0, 2}) {
    WriteOptions wo;
    wo.indent_width = indent;
    ExpectEquivalent(WriteNode(*root, wo));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserEquivProperty,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace xsact::xml
