// Tests for the weighted-DoD extension: weight schemes, weighted
// objective arithmetic, and the weighted multi-swap optimizer.

#include <gtest/gtest.h>

#include "core/dod.h"
#include "core/exhaustive.h"
#include "core/multi_swap.h"
#include "core/snippet_selector.h"
#include "core/weights.h"
#include "test_util.h"

namespace xsact::core {
namespace {

using testing::BuildInstance;
using testing::InstanceFixture;
using testing::RandomInstance;

TEST(TypeWeightsTest, UniformIsAllOnes) {
  InstanceFixture fx = RandomInstance(1, 3, 5);
  const TypeWeights weights =
      TypeWeights::Compute(fx.instance, WeightScheme::kUniform);
  for (int i = 0; i < fx.instance.num_results(); ++i) {
    for (const Entry& e : fx.instance.entries(i)) {
      EXPECT_DOUBLE_EQ(weights.Of(e.type_id), 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(TypeWeights::Uniform().Of(123), 1.0);  // unknown -> 1
}

TEST(TypeWeightsTest, SchemeNames) {
  EXPECT_EQ(WeightSchemeName(WeightScheme::kUniform), "uniform");
  EXPECT_EQ(WeightSchemeName(WeightScheme::kInterestingness),
            "interestingness");
  EXPECT_EQ(WeightSchemeName(WeightScheme::kSignificance), "significance");
}

TEST(TypeWeightsTest, InterestingnessSeparatesConstantFromVarying) {
  InstanceFixture fx = BuildInstance({
      {{"product", "kind", "gps", 1, 1},          // constant across results
       {"product", "name", "model-a", 1, 1},      // distinct values
       {"review", "pro: battery", "yes", 9, 10}}, // 90% vs 10% spread
      {{"product", "kind", "gps", 1, 1},
       {"product", "name", "model-b", 1, 1},
       {"review", "pro: battery", "yes", 1, 10}},
  });
  const TypeWeights weights =
      TypeWeights::Compute(fx.instance, WeightScheme::kInterestingness);
  const auto& cat = *fx.catalog;
  const double kind_w = weights.Of(cat.FindType("product", "kind"));
  const double name_w = weights.Of(cat.FindType("product", "name"));
  const double batt_w = weights.Of(cat.FindType("review", "pro: battery"));
  EXPECT_DOUBLE_EQ(kind_w, TypeWeights::kFloor);  // identical everywhere
  EXPECT_GT(name_w, kind_w);                      // values differ
  EXPECT_GT(batt_w, kind_w);                      // shares spread widely
  EXPECT_LE(name_w, 1.0);
  EXPECT_LE(batt_w, 1.0);
}

TEST(TypeWeightsTest, SignificanceFavorsHighShares) {
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: major", "yes", 9, 10},
       {"review", "pro: minor", "yes", 1, 10}},
      {{"review", "pro: major", "yes", 8, 10},
       {"review", "pro: minor", "yes", 2, 10}},
  });
  const TypeWeights weights =
      TypeWeights::Compute(fx.instance, WeightScheme::kSignificance);
  const auto& cat = *fx.catalog;
  EXPECT_GT(weights.Of(cat.FindType("review", "pro: major")),
            weights.Of(cat.FindType("review", "pro: minor")));
}

TEST(TypeWeightsTest, SetClampsToValidRange) {
  TypeWeights weights;
  weights.Set(1, 5.0);
  EXPECT_DOUBLE_EQ(weights.Of(1), 1.0);
  weights.Set(1, -3.0);
  EXPECT_DOUBLE_EQ(weights.Of(1), TypeWeights::kFloor);
  weights.Set(1, 0.5);
  EXPECT_DOUBLE_EQ(weights.Of(1), 0.5);
}

TEST(WeightedDodTest, UniformWeightsMatchUnweighted) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    InstanceFixture fx = RandomInstance(seed, 3, 6);
    SelectorOptions options;
    options.size_bound = 3;
    const auto dfss = MultiSwapOptimizer().Select(fx.instance, options);
    const TypeWeights uniform = TypeWeights::Uniform();
    EXPECT_DOUBLE_EQ(WeightedTotalDod(fx.instance, dfss, uniform),
                     static_cast<double>(TotalDod(fx.instance, dfss)));
    for (int i = 0; i < fx.instance.num_results(); ++i) {
      for (const Entry& e : fx.instance.entries(i)) {
        EXPECT_DOUBLE_EQ(
            WeightedTypeGain(fx.instance, dfss, i, e.type_id, uniform),
            static_cast<double>(TypeGain(fx.instance, dfss, i, e.type_id)));
      }
    }
  }
}

TEST(WeightedDodTest, WeightsScaleContributions) {
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: x", "yes", 9, 10}},
      {{"review", "pro: x", "yes", 1, 10}},
  });
  std::vector<Dfs> dfss;
  for (int i = 0; i < 2; ++i) {
    Dfs d(fx.instance, i);
    d.Add(0);
    dfss.push_back(std::move(d));
  }
  TypeWeights weights;
  const feature::TypeId x = fx.catalog->FindType("review", "pro: x");
  weights.Set(x, 0.5);
  EXPECT_DOUBLE_EQ(WeightedPairDod(fx.instance, dfss[0], dfss[1], weights),
                   0.5);
  EXPECT_DOUBLE_EQ(WeightedTotalDod(fx.instance, dfss, weights), 0.5);
}

TEST(WeightedMultiSwapTest, UniformSchemeMatchesPlainMultiSwap) {
  for (uint64_t seed = 20; seed < 30; ++seed) {
    InstanceFixture fx = RandomInstance(seed, 3, 6);
    SelectorOptions options;
    options.size_bound = 3;
    const auto plain = MultiSwapOptimizer().Select(fx.instance, options);
    const auto weighted = WeightedMultiSwapOptimizer(WeightScheme::kUniform)
                              .Select(fx.instance, options);
    EXPECT_EQ(TotalDod(fx.instance, plain), TotalDod(fx.instance, weighted))
        << "seed " << seed;
  }
}

TEST(WeightedMultiSwapTest, ProducesValidBoundedAssignments) {
  for (WeightScheme scheme :
       {WeightScheme::kInterestingness, WeightScheme::kSignificance}) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      InstanceFixture fx = RandomInstance(seed, 3, 6);
      SelectorOptions options;
      options.size_bound = 3;
      const auto dfss =
          WeightedMultiSwapOptimizer(scheme).Select(fx.instance, options);
      EXPECT_TRUE(AllValid(fx.instance, dfss, options.size_bound))
          << WeightSchemeName(scheme) << " seed " << seed;
    }
  }
}

TEST(WeightedMultiSwapTest, WeightedDpMatchesEnumeration) {
  // The weighted per-result DP must be exact: against fixed partners it
  // finds the maximum weighted gain over ALL valid DFSs of one result.
  for (uint64_t seed = 40; seed < 55; ++seed) {
    InstanceFixture fx = RandomInstance(seed, 3, 6);
    SelectorOptions options;
    options.size_bound = 3;
    const auto dfss = SnippetSelector().Select(fx.instance, options);
    for (WeightScheme scheme :
         {WeightScheme::kInterestingness, WeightScheme::kSignificance}) {
      const TypeWeights weights = TypeWeights::Compute(fx.instance, scheme);
      const Dfs best = MultiSwapOptimizer::OptimizeOneWeighted(
          fx.instance, dfss, 0, options.size_bound, weights);
      double best_gain = 0;
      for (feature::TypeId t : best.SelectedTypes(fx.instance)) {
        best_gain += WeightedTypeGain(fx.instance, dfss, 0, t, weights);
      }
      EXPECT_TRUE(best.IsValid(fx.instance));

      double brute_gain = 0;
      for (const Dfs& cand : ExhaustiveSelector::EnumerateValid(
               fx.instance, 0, options.size_bound)) {
        double g = 0;
        for (feature::TypeId t : cand.SelectedTypes(fx.instance)) {
          g += WeightedTypeGain(fx.instance, dfss, 0, t, weights);
        }
        brute_gain = std::max(brute_gain, g);
      }
      EXPECT_NEAR(best_gain, brute_gain, 1e-9)
          << WeightSchemeName(scheme) << " seed " << seed;
    }
  }
}

TEST(WeightedMultiSwapTest, InterestingnessShiftsSelectionTowardVariety) {
  // "boring" barely differentiates results 0 and 1 (same value, small
  // spread); "vivid" differs in value across all three results. Results
  // 0 and 1 hold both types in one tie level (snippets pick boring, the
  // lower type id); result 2 only carries vivid. Under uniform weights
  // the re-optimization of results 0/1 sees equal gains (1 vs 1) and
  // stays on the snippet plateau; interestingness weights (0.325 vs 1.0)
  // tip both over to vivid — which here even raises the PLAIN DoD from 1
  // to 3, i.e. the weighted objective escapes a tie plateau the uniform
  // optimizer is stuck on.
  InstanceFixture fx = BuildInstance({
      {{"review", "boring", "yes", 60, 100},
       {"review", "vivid", "red", 60, 100}},
      {{"review", "boring", "yes", 50, 100},
       {"review", "vivid", "blue", 50, 100}},
      {{"review", "vivid", "green", 50, 100}},
  });
  SelectorOptions options;
  options.size_bound = 1;
  options.fill_to_bound = false;
  const feature::TypeId vivid = fx.catalog->FindType("review", "vivid");
  const feature::TypeId boring = fx.catalog->FindType("review", "boring");
  ASSERT_TRUE(fx.instance.Differentiable(boring, 0, 1));
  ASSERT_TRUE(fx.instance.Differentiable(vivid, 0, 1));
  ASSERT_TRUE(fx.instance.Differentiable(vivid, 0, 2));
  ASSERT_TRUE(fx.instance.Differentiable(vivid, 1, 2));

  const auto plain = MultiSwapOptimizer().Select(fx.instance, options);
  const auto weighted =
      WeightedMultiSwapOptimizer(WeightScheme::kInterestingness)
          .Select(fx.instance, options);
  EXPECT_TRUE(plain[0].ContainsType(fx.instance, boring));
  EXPECT_TRUE(plain[1].ContainsType(fx.instance, boring));
  EXPECT_TRUE(weighted[0].ContainsType(fx.instance, vivid));
  EXPECT_TRUE(weighted[1].ContainsType(fx.instance, vivid));
  EXPECT_TRUE(weighted[2].ContainsType(fx.instance, vivid));
  EXPECT_EQ(TotalDod(fx.instance, plain), 1);
  EXPECT_EQ(TotalDod(fx.instance, weighted), 3);
}

}  // namespace
}  // namespace xsact::core
