// Integration tests: the full pipeline (generator -> parser -> index ->
// SLCA -> entities -> features -> DFS -> table) on all three datasets,
// including the QM1..QM8 movie workload of Figure 4.

#include <gtest/gtest.h>

#include "core/dod.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "engine/xsact.h"
#include "table/renderer.h"
#include "xml/writer.h"

namespace xsact {
namespace {

using engine::CompareOptions;
using engine::Xsact;

TEST(MovieWorkloadIntegrationTest, EveryQmQueryComparesItsFranchise) {
  data::MoviesConfig config;
  config.min_reviews = 4;
  config.max_reviews = 12;
  Xsact xsact(data::GenerateMovies(config));
  const auto workload = data::MovieQueryWorkload(5);
  ASSERT_EQ(workload.size(), config.franchise_sizes.size());

  for (size_t k = 0; k < workload.size(); ++k) {
    auto results = xsact.Search(workload[k].query);
    ASSERT_TRUE(results.ok()) << workload[k].id;
    EXPECT_EQ(results->size(),
              static_cast<size_t>(config.franchise_sizes[k]))
        << workload[k].id;

    CompareOptions options;
    options.selector.size_bound = workload[k].size_bound;
    auto outcome = xsact.SearchAndCompare(workload[k].query, 0, options);
    ASSERT_TRUE(outcome.ok()) << workload[k].id;
    EXPECT_TRUE(core::AllValid(outcome->instance, outcome->dfss,
                               options.selector.size_bound))
        << workload[k].id;
    EXPECT_GT(outcome->total_dod, 0) << workload[k].id;
  }
}

TEST(MovieWorkloadIntegrationTest, AlgorithmOrderingHoldsAcrossQueries) {
  // The Figure-4(a) trend: multi-swap >= single-swap >= snippet on every
  // query (the optimizers also never fall below the snippet baseline by
  // construction).
  data::MoviesConfig config;
  config.min_reviews = 4;
  config.max_reviews = 10;
  Xsact xsact(data::GenerateMovies(config));
  for (const auto& spec : data::MovieQueryWorkload(5)) {
    int64_t dod_by_kind[3] = {0, 0, 0};
    int i = 0;
    for (core::SelectorKind kind :
         {core::SelectorKind::kSnippet, core::SelectorKind::kSingleSwap,
          core::SelectorKind::kMultiSwap}) {
      CompareOptions options;
      options.algorithm = kind;
      options.selector.size_bound = spec.size_bound;
      auto outcome = xsact.SearchAndCompare(spec.query, 0, options);
      ASSERT_TRUE(outcome.ok()) << spec.id;
      dod_by_kind[i++] = outcome->total_dod;
    }
    EXPECT_GE(dod_by_kind[1], dod_by_kind[0]) << spec.id;  // single >= snip
    EXPECT_GE(dod_by_kind[2], dod_by_kind[0]) << spec.id;  // multi >= snip
  }
}

TEST(ProductReviewsIntegrationTest, ComparisonTableRendersEverywhere) {
  data::ProductReviewsConfig config;
  config.num_products = 12;
  config.min_reviews = 8;
  config.max_reviews = 24;
  Xsact xsact(data::GenerateProductReviews(config));
  CompareOptions options;
  options.selector.size_bound = 8;
  auto outcome = xsact.SearchAndCompare("gps", 3, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  const std::string ascii = table::RenderAscii(outcome->table);
  const std::string md = table::RenderMarkdown(outcome->table);
  const std::string html = table::RenderHtml(outcome->table);
  const std::string csv = table::RenderCsv(outcome->table);
  const std::string json = table::RenderJson(outcome->table);
  for (const std::string* out : {&ascii, &md, &html, &csv, &json}) {
    EXPECT_FALSE(out->empty());
  }
  // Every result label appears in every rendering.
  for (const std::string& header : outcome->table.headers) {
    EXPECT_NE(ascii.find(header), std::string::npos);
    EXPECT_NE(csv.find(header), std::string::npos);
  }
}

TEST(OutdoorIntegrationTest, BrandComparisonShowsCategoryFocus) {
  data::OutdoorRetailerConfig config;
  config.num_brands = 6;
  config.min_products = 25;
  config.max_products = 50;
  Xsact xsact(data::GenerateOutdoorRetailer(config));
  CompareOptions options;
  options.lift_results_to = "brand";
  options.selector.size_bound = 6;
  auto outcome = xsact.SearchAndCompare("jackets", 0, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_GE(outcome->instance.num_results(), 3);

  // The category type must be selected and differentiating: distinct
  // brands focus on distinct categories by construction.
  bool found_differentiating_category = false;
  for (const auto& row : outcome->table.rows) {
    if (row.label == "product.category" && row.differentiating) {
      found_differentiating_category = true;
    }
  }
  EXPECT_TRUE(found_differentiating_category)
      << table::RenderAscii(outcome->table);
}

TEST(StabilityIntegrationTest, RepeatedRunsAreIdentical) {
  data::MoviesConfig config;
  config.franchise_sizes = {5, 5};
  Xsact xsact(data::GenerateMovies(config));
  CompareOptions options;
  options.selector.size_bound = 5;
  auto a = xsact.SearchAndCompare("star", 0, options);
  auto b = xsact.SearchAndCompare("star", 0, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_dod, b->total_dod);
  EXPECT_EQ(table::RenderJson(a->table), table::RenderJson(b->table));
}

TEST(SerializationIntegrationTest, CorpusSurvivesWriteParseCycle) {
  const xml::Document original = data::GenerateProductReviews(
      {.num_products = 6, .min_reviews = 4, .max_reviews = 10, .seed = 3});
  auto reparsed = Xsact::FromXml(xml::WriteDocument(original));
  ASSERT_TRUE(reparsed.ok());
  Xsact direct(original.Clone());
  CompareOptions options;
  auto a = reparsed->SearchAndCompare("gps", 3, options);
  auto b = direct.SearchAndCompare("gps", 3, options);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->total_dod, b->total_dod);
  EXPECT_EQ(a->table.headers, b->table.headers);
}

}  // namespace
}  // namespace xsact
