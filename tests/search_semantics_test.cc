// Tests for ELCA answer semantics, fielded query parsing, and their
// integration in the search engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "search/search_engine.h"
#include "search/slca.h"
#include "xml/parser.h"

namespace xsact::search {
namespace {

xml::Document Doc(std::string_view text) {
  auto d = xml::Parse(text);
  EXPECT_TRUE(d.ok()) << d.status();
  return std::move(d).value();
}

class ElcaTest : public ::testing::Test {
 protected:
  void Init(std::string_view text) {
    doc_ = Doc(text);
    table_ = xml::NodeTable::Build(doc_);
    index_ = InvertedIndex::Build(table_);
  }

  MatchLists Lists(const std::vector<std::string>& terms) {
    MatchLists lists;
    for (const auto& t : terms) {
      lists.push_back(index_.Decode(t, &storage_.emplace_back()));
    }
    return lists;
  }

  std::vector<std::string> TagsOf(const std::vector<xml::NodeId>& ids) {
    std::vector<std::string> tags;
    for (auto id : ids) tags.emplace_back(table_.node(id)->tag());
    return tags;
  }

  xml::Document doc_;
  xml::NodeTable table_;
  InvertedIndex index_;
  std::deque<std::vector<xml::NodeId>> storage_;
};

TEST_F(ElcaTest, ElcaEqualsSlcaWhenNoExclusiveAncestors) {
  Init("<c><p><n>alpha beta</n></p><p><n>gamma</n></p></c>");
  const auto lists = Lists({"alpha", "beta"});
  EXPECT_EQ(ComputeElcaByScan(table_, lists),
            ComputeSlcaByScan(table_, lists));
}

TEST_F(ElcaTest, AncestorWithOwnWitnessesIsElcaButNotSlca) {
  // The first <p> contains alpha+beta inside <n> (an SLCA), AND has its
  // own alpha (in <m>) plus beta (in <o>) outside that full descendant:
  // <p> is an ELCA with exclusive witnesses, but not an SLCA.
  Init(
      "<c><p><n>alpha beta</n><m>alpha</m><o>beta</o></p>"
      "<p><n>alpha</n></p></c>");
  const auto lists = Lists({"alpha", "beta"});
  const auto slca = ComputeSlcaByScan(table_, lists);
  const auto elca = ComputeElcaByScan(table_, lists);
  ASSERT_EQ(slca.size(), 1u);
  EXPECT_EQ(table_.node(slca[0])->tag(), "n");
  ASSERT_EQ(elca.size(), 2u);
  EXPECT_EQ(TagsOf(elca), (std::vector<std::string>{"p", "n"}));
}

TEST_F(ElcaTest, ShieldedAncestorIsNotElca) {
  // Root contains both keywords only through the full <n>; no exclusive
  // witnesses of its own -> not an ELCA.
  Init("<c><p><n>alpha beta</n></p><q>alpha</q></c>");
  const auto elca = ComputeElcaByScan(table_, Lists({"alpha", "beta"}));
  ASSERT_EQ(elca.size(), 1u);
  EXPECT_EQ(table_.node(elca[0])->tag(), "n");
}

TEST_F(ElcaTest, EmptyListsGiveNoAnswers) {
  Init("<c><n>alpha</n></c>");
  EXPECT_TRUE(ComputeElcaByScan(table_, Lists({"alpha", "zzz"})).empty());
  EXPECT_TRUE(ComputeElcaByScan(table_, {}).empty());
}

// Property: SLCA is always a subset of ELCA, on random documents.
class ElcaSupersetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ElcaSupersetProperty, SlcaSubsetOfElca) {
  Rng rng(GetParam());
  const std::vector<std::string> pool = {"ant", "bee", "cat", "dog"};
  xml::Document doc = xml::Document::WithRoot("root");
  std::vector<xml::Node*> elements = {doc.root()};
  const int nodes = static_cast<int>(rng.Range(5, 50));
  for (int i = 0; i < nodes; ++i) {
    xml::Node* parent = elements[rng.Below(elements.size())];
    xml::Node* e = parent->AddElement("e" + std::to_string(rng.Below(3)));
    elements.push_back(e);
    if (rng.Chance(0.6)) {
      e->AddChild(xml::Node::MakeText(pool[rng.Below(pool.size())]));
    }
  }
  const xml::NodeTable table = xml::NodeTable::Build(doc);
  const InvertedIndex index = InvertedIndex::Build(table);
  for (const auto& terms : std::vector<std::vector<std::string>>{
           {"ant"}, {"ant", "bee"}, {"cat", "dog"}, {"ant", "bee", "cat"}}) {
    std::deque<std::vector<xml::NodeId>> storage;
    MatchLists lists;
    for (const auto& t : terms) {
      lists.push_back(index.Decode(t, &storage.emplace_back()));
    }
    const auto slca = ComputeSlcaByScan(table, lists);
    const auto elca = ComputeElcaByScan(table, lists);
    for (xml::NodeId id : slca) {
      EXPECT_TRUE(std::find(elca.begin(), elca.end(), id) != elca.end())
          << "seed " << GetParam();
    }
    EXPECT_GE(elca.size(), slca.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElcaSupersetProperty,
                         ::testing::Range<uint64_t>(0, 30));

TEST(ParseQueryTest, PlainTermsHaveNoField) {
  EXPECT_EQ(ParseQuery("TomTom GPS"),
            (std::vector<QueryTerm>{{"tomtom", ""}, {"gps", ""}}));
}

TEST(ParseQueryTest, FieldedTermsCarryRestriction) {
  EXPECT_EQ(ParseQuery("director:Moreau star"),
            (std::vector<QueryTerm>{{"moreau", "director"}, {"star", ""}}));
}

TEST(ParseQueryTest, FieldAppliesToEveryTokenOfItsChunk) {
  EXPECT_EQ(ParseQuery("name:go-630"),
            (std::vector<QueryTerm>{{"go", "name"}, {"630", "name"}}));
}

TEST(ParseQueryTest, DegenerateColons) {
  // Leading colon or empty field: treated as plain tokens.
  EXPECT_EQ(ParseQuery(":x"), (std::vector<QueryTerm>{{"x", ""}}));
  EXPECT_TRUE(ParseQuery("  :  ").empty());
  EXPECT_TRUE(ParseQuery("").empty());
}

TEST(FieldedSearchTest, RestrictsMatchesToTaggedElements) {
  SearchEngine engine(Doc(
      "<movies>"
      "<movie><title>star quest</title><director>moreau</director>"
      "<year>1</year></movie>"
      "<movie><title>moreau story</title><director>laurent</director>"
      "<year>2</year></movie>"
      "</movies>"));
  // Unfielded: "moreau" matches both movies (title of one, director of
  // the other).
  auto plain = engine.Search("moreau");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->size(), 2u);
  // Fielded: only the movie DIRECTED by moreau.
  auto fielded = engine.Search("director:moreau");
  ASSERT_TRUE(fielded.ok());
  ASSERT_EQ(fielded->size(), 1u);
  EXPECT_EQ(fielded->at(0).title, "star quest");
  // Field with no matches in that tag.
  auto none = engine.Search("year:moreau");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(ElcaEngineTest, ElcaEngineReturnsSupersetResults) {
  const char* corpus =
      "<catalog>"
      "<product><name>alpha kit</name>"
      "  <parts><part><name>alpha bolt</name><size>beta</size></part>"
      "          <part><name>gamma nut</name><size>beta</size></part>"
      "  </parts><grade>beta</grade></product>"
      "<product><name>plain</name><grade>delta</grade></product>"
      "</catalog>";
  SearchEngine slca_engine(Doc(corpus), SlcaAlgorithm::kScan);
  SearchEngine elca_engine(Doc(corpus), SlcaAlgorithm::kElca);
  auto a = slca_engine.Search("alpha beta");
  auto b = elca_engine.Search("alpha beta");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->size(), a->size());
}

}  // namespace
}  // namespace xsact::search
