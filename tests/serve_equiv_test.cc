// Property tests pinning the bitset-substrate ports of the serve path's
// rendering layer — BuildComparisonTable, ExplainDifferences and
// TypeWeights::Compute — against faithful reproductions of the scalar
// implementations they replaced, on randomized instances (the
// core_dod_bitset_test pattern). The ports are pure representation
// changes: every table row, explanation sentence, and weight must match
// EXACTLY, including tie-breaking and floating-point summation order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/dod.h"
#include "core/weights.h"
#include "table/comparison_table.h"
#include "table/explainer.h"
#include "test_util.h"

namespace xsact {
namespace {

using core::ComparisonInstance;
using core::Dfs;
using core::TypeWeights;
using core::WeightScheme;
using table::ComparisonTable;
using table::Explanation;
using table::TableRow;
using testing::InstanceFixture;
using testing::RandomInstance;

// ---------------------------------------------------------------------------
// Scalar references: the pre-port implementations, reproduced verbatim
// (std::map unions, per-cell Differentiable probes, TypeStats scans).
// ---------------------------------------------------------------------------

ComparisonTable ScalarBuildComparisonTable(const ComparisonInstance& instance,
                                           const std::vector<Dfs>& dfss) {
  const int n = instance.num_results();
  ComparisonTable table;
  for (int i = 0; i < n; ++i) {
    const std::string& label = instance.result(i).label();
    table.headers.push_back(label.empty() ? "result " + std::to_string(i + 1)
                                          : label);
  }
  table.total_dod = core::TotalDod(instance, dfss);

  std::map<feature::TypeId, std::vector<int>> selected_by;
  for (int i = 0; i < n; ++i) {
    for (feature::TypeId t :
         dfss[static_cast<size_t>(i)].SelectedTypes(instance)) {
      selected_by[t].push_back(i);
    }
  }

  const auto& catalog = instance.catalog();
  for (const auto& [type_id, selectors] : selected_by) {
    TableRow row;
    row.type_id = type_id;
    row.label = catalog.TypeName(type_id);
    row.selected_in = static_cast<int>(selectors.size());
    row.cells.assign(static_cast<size_t>(n), "-");
    for (int i : selectors) {
      const feature::TypeStats* stats = instance.result(i).Find(type_id);
      if (stats == nullptr) continue;
      const feature::ValueId v = stats->DominantValue();
      std::string cell =
          v == feature::kInvalidValueId ? "?" : catalog.ValueOf(v);
      cell += " (" +
              FormatDouble(100.0 * stats->RelativeOccurrenceOf(v), 0) + "%)";
      row.cells[static_cast<size_t>(i)] = std::move(cell);
    }
    for (size_t a = 0; a < selectors.size() && !row.differentiating; ++a) {
      for (size_t b = a + 1; b < selectors.size(); ++b) {
        if (instance.Differentiable(type_id, selectors[a], selectors[b])) {
          row.differentiating = true;
          break;
        }
      }
    }
    table.rows.push_back(std::move(row));
  }

  std::stable_sort(table.rows.begin(), table.rows.end(),
                   [](const TableRow& a, const TableRow& b) {
                     if (a.differentiating != b.differentiating) {
                       return a.differentiating;
                     }
                     if (a.selected_in != b.selected_in) {
                       return a.selected_in > b.selected_in;
                     }
                     return a.label < b.label;
                   });
  return table;
}

std::string ScalarLabelOf(const ComparisonInstance& instance, int i) {
  const std::string& label = instance.result(i).label();
  return label.empty() ? "result " + std::to_string(i + 1) : label;
}

std::string ScalarPercent(double rel) {
  return FormatDouble(100.0 * rel, 0) + "%";
}

std::vector<Explanation> ScalarExplainDifferences(
    const ComparisonInstance& instance, const std::vector<Dfs>& dfss,
    size_t max_statements) {
  const int n = instance.num_results();
  const auto& catalog = instance.catalog();

  std::map<feature::TypeId, std::vector<int>> selected_by;
  for (int i = 0; i < n; ++i) {
    for (feature::TypeId t :
         dfss[static_cast<size_t>(i)].SelectedTypes(instance)) {
      selected_by[t].push_back(i);
    }
  }

  std::vector<Explanation> out;
  for (const auto& [type_id, holders] : selected_by) {
    int pairs = 0;
    int best_a = -1;
    int best_b = -1;
    double best_contrast = -1;
    for (size_t x = 0; x < holders.size(); ++x) {
      for (size_t y = x + 1; y < holders.size(); ++y) {
        const int a = holders[x];
        const int b = holders[y];
        if (!instance.Differentiable(type_id, a, b)) continue;
        ++pairs;
        const feature::TypeStats* sa = instance.result(a).Find(type_id);
        const feature::TypeStats* sb = instance.result(b).Find(type_id);
        const double contrast =
            std::abs(sa->RelativeOccurrenceOf(sa->DominantValue()) -
                     sb->RelativeOccurrenceOf(sb->DominantValue())) +
            (sa->DominantValue() != sb->DominantValue() ? 1.0 : 0.0);
        if (contrast > best_contrast) {
          best_contrast = contrast;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (pairs == 0) continue;

    const feature::TypeStats* sa = instance.result(best_a).Find(type_id);
    const feature::TypeStats* sb = instance.result(best_b).Find(type_id);
    const feature::ValueId va = sa->DominantValue();
    const feature::ValueId vb = sb->DominantValue();
    Explanation e;
    e.type_id = type_id;
    e.pairs_differentiated = pairs;
    const std::string attr = catalog.AttributeOf(type_id);
    if (va != vb) {
      e.text = attr + " is \"" + catalog.ValueOf(va) + "\" for " +
               ScalarLabelOf(instance, best_a) + " but \"" +
               catalog.ValueOf(vb) + "\" for " +
               ScalarLabelOf(instance, best_b);
    } else {
      e.text = attr + " holds for " +
               ScalarPercent(sa->RelativeOccurrenceOf(va)) + " of " +
               ScalarLabelOf(instance, best_a) + "'s " +
               catalog.EntityOf(type_id) + "s vs " +
               ScalarPercent(sb->RelativeOccurrenceOf(vb)) + " of " +
               ScalarLabelOf(instance, best_b) + "'s";
    }
    out.push_back(std::move(e));
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Explanation& a, const Explanation& b) {
                     return a.pairs_differentiated > b.pairs_differentiated;
                   });
  if (out.size() > max_statements) out.resize(max_statements);
  return out;
}

double ScalarClamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

double ScalarNormalizedEntropy(const std::map<feature::ValueId, int>& histogram,
                               int total) {
  if (histogram.size() <= 1 || total <= 0) return 0.0;
  double h = 0.0;
  for (const auto& [value, count] : histogram) {
    (void)value;
    const double p = static_cast<double>(count) / total;
    if (p > 0) h -= p * std::log(p);
  }
  return h / std::log(static_cast<double>(histogram.size()));
}

double ScalarInterestingness(const ComparisonInstance& instance,
                             feature::TypeId type) {
  std::map<feature::ValueId, int> dominant_values;
  double min_rel = 1.0;
  double max_rel = 0.0;
  int carriers = 0;
  for (int i = 0; i < instance.num_results(); ++i) {
    const feature::TypeStats* stats = instance.result(i).Find(type);
    if (stats == nullptr) continue;
    ++carriers;
    const feature::ValueId v = stats->DominantValue();
    ++dominant_values[v];
    const double rel = stats->RelativeOccurrenceOf(v);
    min_rel = std::min(min_rel, rel);
    max_rel = std::max(max_rel, rel);
  }
  if (carriers <= 1) return 0.0;
  const double value_diversity =
      ScalarNormalizedEntropy(dominant_values, carriers);
  const double share_spread = ScalarClamp01(max_rel - min_rel);
  return std::max(value_diversity, share_spread);
}

double ScalarSignificance(const ComparisonInstance& instance,
                          feature::TypeId type) {
  double sum = 0.0;
  int carriers = 0;
  for (int i = 0; i < instance.num_results(); ++i) {
    const feature::TypeStats* stats = instance.result(i).Find(type);
    if (stats == nullptr) continue;
    ++carriers;
    sum += ScalarClamp01(stats->RelativeOccurrence());
  }
  return carriers > 0 ? sum / carriers : 0.0;
}

/// The seed's TypeWeights::Compute: per-(result, entry) discovery with
/// "seen before?" probes, returned as a plain map.
std::map<feature::TypeId, double> ScalarComputeWeights(
    const ComparisonInstance& instance, WeightScheme scheme) {
  std::map<feature::TypeId, double> weights;
  for (int i = 0; i < instance.num_results(); ++i) {
    for (const core::Entry& e : instance.entries(i)) {
      if (weights.count(e.type_id) > 0) continue;
      double w = 1.0;
      switch (scheme) {
        case WeightScheme::kUniform:
          w = 1.0;
          break;
        case WeightScheme::kInterestingness:
          w = TypeWeights::kFloor +
              (1.0 - TypeWeights::kFloor) *
                  ScalarInterestingness(instance, e.type_id);
          break;
        case WeightScheme::kSignificance:
          w = TypeWeights::kFloor +
              (1.0 - TypeWeights::kFloor) *
                  ScalarSignificance(instance, e.type_id);
          break;
      }
      weights.emplace(e.type_id, w);
    }
  }
  return weights;
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

std::vector<Dfs> RandomAssignment(const ComparisonInstance& instance,
                                  Rng& rng) {
  std::vector<Dfs> dfss;
  for (int i = 0; i < instance.num_results(); ++i) {
    Dfs dfs(instance, i);
    const int num_entries = static_cast<int>(instance.entries(i).size());
    for (int k = 0; k < num_entries; ++k) {
      if (rng.Below(3) == 0) dfs.Add(k);
    }
    dfss.push_back(std::move(dfs));
  }
  return dfss;
}

struct Config {
  uint64_t seed;
  int n;
  int max_types;
  double threshold;
};

std::vector<Config> Grid() {
  std::vector<Config> configs;
  uint64_t seed = 31;
  for (const int n : {2, 3, 5, 8, 13}) {
    for (const int max_types : {3, 8, 16}) {
      for (const double threshold : {0.05, 0.10, 0.50}) {
        configs.push_back(Config{seed++, n, max_types, threshold});
      }
    }
  }
  configs.push_back(Config{8101, 40, 12, 0.10});
  configs.push_back(Config{8102, 66, 10, 0.10});  // > 64 results: 2 words
  return configs;
}

void ExpectTablesEqual(const ComparisonTable& got, const ComparisonTable& want,
                       uint64_t seed) {
  ASSERT_EQ(got.headers, want.headers) << "seed=" << seed;
  ASSERT_EQ(got.total_dod, want.total_dod) << "seed=" << seed;
  ASSERT_EQ(got.rows.size(), want.rows.size()) << "seed=" << seed;
  for (size_t r = 0; r < got.rows.size(); ++r) {
    const TableRow& a = got.rows[r];
    const TableRow& b = want.rows[r];
    ASSERT_EQ(a.type_id, b.type_id) << "seed=" << seed << " row=" << r;
    ASSERT_EQ(a.label, b.label) << "seed=" << seed << " row=" << r;
    ASSERT_EQ(a.cells, b.cells) << "seed=" << seed << " row=" << r;
    ASSERT_EQ(a.selected_in, b.selected_in) << "seed=" << seed << " row=" << r;
    ASSERT_EQ(a.differentiating, b.differentiating)
        << "seed=" << seed << " row=" << r;
  }
}

TEST(ServeEquivTest, ComparisonTableMatchesScalarReference) {
  for (const Config& config : Grid()) {
    InstanceFixture fx = RandomInstance(config.seed, config.n,
                                        config.max_types, config.threshold);
    Rng rng(config.seed ^ 0x7AB1E);
    const std::vector<Dfs> dfss = RandomAssignment(fx.instance, rng);
    ExpectTablesEqual(table::BuildComparisonTable(fx.instance, dfss),
                      ScalarBuildComparisonTable(fx.instance, dfss),
                      config.seed);
  }
}

TEST(ServeEquivTest, ExplanationsMatchScalarReference) {
  for (const Config& config : Grid()) {
    InstanceFixture fx = RandomInstance(config.seed, config.n,
                                        config.max_types, config.threshold);
    Rng rng(config.seed ^ 0xE9b1A);
    const std::vector<Dfs> dfss = RandomAssignment(fx.instance, rng);
    for (const size_t max_statements : {size_t{3}, size_t{5}, size_t{100}}) {
      const std::vector<Explanation> got =
          table::ExplainDifferences(fx.instance, dfss, max_statements);
      const std::vector<Explanation> want =
          ScalarExplainDifferences(fx.instance, dfss, max_statements);
      ASSERT_EQ(got.size(), want.size()) << "seed=" << config.seed;
      for (size_t e = 0; e < got.size(); ++e) {
        ASSERT_EQ(got[e].type_id, want[e].type_id)
            << "seed=" << config.seed << " e=" << e;
        ASSERT_EQ(got[e].pairs_differentiated, want[e].pairs_differentiated)
            << "seed=" << config.seed << " e=" << e;
        ASSERT_EQ(got[e].text, want[e].text)
            << "seed=" << config.seed << " e=" << e;
      }
    }
  }
}

TEST(ServeEquivTest, WeightsMatchScalarReferenceBitForBit) {
  for (const Config& config : Grid()) {
    InstanceFixture fx = RandomInstance(config.seed, config.n,
                                        config.max_types, config.threshold);
    const ComparisonInstance& instance = fx.instance;
    for (const WeightScheme scheme :
         {WeightScheme::kUniform, WeightScheme::kInterestingness,
          WeightScheme::kSignificance}) {
      const TypeWeights ported = TypeWeights::Compute(instance, scheme);
      const std::map<feature::TypeId, double> scalar =
          ScalarComputeWeights(instance, scheme);
      ASSERT_EQ(ported.size(), scalar.size()) << "seed=" << config.seed;
      for (const auto& [type_id, w] : scalar) {
        // Exact equality: the port must preserve summation order.
        ASSERT_EQ(ported.Of(type_id), w)
            << "seed=" << config.seed << " type=" << type_id
            << " scheme=" << core::WeightSchemeName(scheme);
      }
      // Types outside the instance still read as 1.0.
      EXPECT_DOUBLE_EQ(ported.Of(100000), 1.0);
      EXPECT_DOUBLE_EQ(ported.Of(feature::kInvalidTypeId), 1.0);
    }
  }
}

}  // namespace
}  // namespace xsact
