// Tests for the CLI option parser and application flow.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "cli/app.h"
#include "cli/options.h"
#include "common/shutdown_signal.h"
#include "data/product_reviews.h"
#include "xml/io.h"
#include "xml/writer.h"

namespace xsact::cli {
namespace {

StatusOr<CliOptions> Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "xsact");
  return ParseCliArgs(static_cast<int>(args.size()), args.data());
}

TEST(CliParseTest, DefaultsWithQuery) {
  auto options = Parse({"--query=tomtom gps"});
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_EQ(options->query, "tomtom gps");
  EXPECT_EQ(options->dataset, "products");
  EXPECT_EQ(options->algorithm, core::SelectorKind::kMultiSwap);
  EXPECT_EQ(options->format, OutputFormat::kAscii);
  EXPECT_EQ(options->bound, 6);
  EXPECT_EQ(options->max_results, 4u);
  EXPECT_DOUBLE_EQ(options->threshold, 0.10);
  EXPECT_FALSE(options->list_only);
  EXPECT_FALSE(options->ranked);
}

TEST(CliParseTest, QueryIsMandatoryUnlessHelp) {
  EXPECT_EQ(Parse({}).status().code(), StatusCode::kInvalidArgument);
  auto help = Parse({"--help"});
  ASSERT_TRUE(help.ok());
  EXPECT_TRUE(help->help);
}

TEST(CliParseTest, AllFlagsParse) {
  auto options = Parse({"--query=men jackets", "--dataset=outdoor",
                        "--algorithm=single-swap", "--format=json",
                        "--lift=brand", "--bound=9", "--max-results=0",
                        "--threshold=0.25", "--seed=7", "--ranked", "--list",
                        "--show-dfs", "--weights=significance"});
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_EQ(options->dataset, "outdoor");
  EXPECT_EQ(options->algorithm, core::SelectorKind::kSingleSwap);
  EXPECT_EQ(options->format, OutputFormat::kJson);
  EXPECT_EQ(options->lift, "brand");
  EXPECT_EQ(options->bound, 9);
  EXPECT_EQ(options->max_results, 0u);
  EXPECT_DOUBLE_EQ(options->threshold, 0.25);
  EXPECT_EQ(options->seed, 7u);
  EXPECT_TRUE(options->ranked);
  EXPECT_TRUE(options->list_only);
  EXPECT_TRUE(options->show_dfs);
  EXPECT_EQ(options->weight_scheme, core::WeightScheme::kSignificance);
}

TEST(CliParseTest, AlgorithmAliases) {
  EXPECT_EQ(Parse({"--query=q", "--algorithm=multi"})->algorithm,
            core::SelectorKind::kMultiSwap);
  EXPECT_EQ(Parse({"--query=q", "--algorithm=single"})->algorithm,
            core::SelectorKind::kSingleSwap);
  EXPECT_EQ(Parse({"--query=q", "--algorithm=weighted"})->algorithm,
            core::SelectorKind::kWeightedMultiSwap);
  EXPECT_EQ(Parse({"--query=q", "--format=md"})->format,
            OutputFormat::kMarkdown);
}

TEST(CliParseTest, RejectsMalformedValues) {
  EXPECT_FALSE(Parse({"--query=q", "--bound=zero"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--bound=0"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--bound=-3"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--threshold=abc"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--threshold=-1"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--max-results=-1"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--algorithm=quantum"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--format=pdf"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--weights=magic"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--bound"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--frobnicate=1"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "positional"}).ok());
}

TEST(CliParseTest, UsageMentionsEveryFlag) {
  const std::string usage = CliUsage();
  for (const char* flag :
       {"--dataset", "--query", "--algorithm", "--weights", "--bound",
        "--max-results", "--threshold", "--lift", "--format", "--seed",
        "--ranked", "--list", "--show-dfs", "--help", "--deadline-ms",
        "--max-queue", "--threads", "--repeat", "--cache", "--watch",
        "--max-reloads", "--serve", "--port", "--drain-ms"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(CliParseTest, SingleDatasetKeepsLegacyField) {
  auto options = Parse({"--query=gps", "--dataset=outdoor"});
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_EQ(options->dataset, "outdoor");
  ASSERT_EQ(options->datasets.size(), 1u);
  EXPECT_EQ(options->datasets[0].name, "outdoor");
  EXPECT_EQ(options->datasets[0].source, "outdoor");
}

TEST(CliParseTest, RepeatedNamedDatasetsParse) {
  auto options = Parse({"--query=gps", "--dataset=shop=products",
                        "--dataset=films=movies",
                        "--dataset=extra=corpus/extra.xml"});
  ASSERT_TRUE(options.ok()) << options.status();
  ASSERT_EQ(options->datasets.size(), 3u);
  EXPECT_EQ(options->datasets[0].name, "shop");
  EXPECT_EQ(options->datasets[0].source, "products");
  EXPECT_EQ(options->datasets[1].name, "films");
  EXPECT_EQ(options->datasets[1].source, "movies");
  EXPECT_EQ(options->datasets[2].name, "extra");
  EXPECT_EQ(options->datasets[2].source, "corpus/extra.xml");
}

// A value whose pre-'=' part contains '/' or '.' is a verbatim file
// path, not a name=source binding — a file literally named
// "results=v2.xml" stays addressable.
TEST(CliParseTest, PathLikeDatasetValuesAreNotSplit) {
  auto dotted = Parse({"--query=q", "--dataset=./results=v2.xml"});
  ASSERT_TRUE(dotted.ok()) << dotted.status();
  EXPECT_EQ(dotted->dataset, "./results=v2.xml");
  ASSERT_EQ(dotted->datasets.size(), 1u);
  EXPECT_EQ(dotted->datasets[0].source, "./results=v2.xml");

  auto slashed = Parse({"--query=q", "--dataset=corpora/run=3/a.xml"});
  ASSERT_TRUE(slashed.ok()) << slashed.status();
  EXPECT_EQ(slashed->dataset, "corpora/run=3/a.xml");
}

TEST(CliParseTest, RejectsBadDatasetBindings) {
  EXPECT_FALSE(Parse({"--query=q", "--dataset==products"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--dataset=name="}).ok());
  EXPECT_FALSE(
      Parse({"--query=q", "--dataset=a=products", "--dataset=a=movies"})
          .ok())
      << "duplicate names must be rejected";
  EXPECT_FALSE(Parse({"--query=q", "--dataset=a=products",
                      "--dataset=b=movies", "--list"})
                   .ok())
      << "--list is a single-dataset mode";
}

TEST(CliParseTest, AdmissionFlagsParse) {
  auto options = Parse(
      {"--query=q", "--threads=2", "--deadline-ms=250", "--max-queue=16"});
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_EQ(options->deadline_ms, 250);
  EXPECT_EQ(options->max_queue, 16);
  EXPECT_FALSE(Parse({"--query=q", "--threads=2", "--deadline-ms=-1"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--threads=2", "--max-queue=-2"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--threads=2", "--deadline-ms"}).ok());
}

// The synchronous single-dataset path never constructs a QueryService,
// so admission flags there would be silently ignored — reject instead.
TEST(CliParseTest, AdmissionFlagsNeedAServingMode) {
  EXPECT_FALSE(Parse({"--query=q", "--deadline-ms=250"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--max-queue=16"}).ok());
  EXPECT_TRUE(Parse({"--query=q", "--cache", "--max-queue=16"}).ok());
  EXPECT_TRUE(Parse({"--query=q", "--repeat=4", "--deadline-ms=250"}).ok());
  EXPECT_TRUE(Parse({"--query=q", "--dataset=a=products",
                     "--dataset=b=movies", "--deadline-ms=250"})
                  .ok());
}

TEST(CliParseTest, RouterWatchNeedsAFileDataset) {
  EXPECT_FALSE(Parse({"--query=q", "--dataset=a=products",
                      "--dataset=b=movies", "--watch"})
                   .ok());
  auto ok = Parse({"--query=q", "--dataset=a=products",
                   "--dataset=b=corpus/b.xml", "--watch"});
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(CliParseTest, ServeFlagsParse) {
  // --serve needs no --query; it is a network serving mode.
  auto options = Parse({"--serve", "--port=8080", "--drain-ms=500",
                        "--dataset=outdoor"});
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_TRUE(options->serve);
  EXPECT_EQ(options->port, 8080);
  EXPECT_EQ(options->drain_ms, 500);
  EXPECT_TRUE(options->query.empty());

  auto defaults = Parse({"--serve"});
  ASSERT_TRUE(defaults.ok()) << defaults.status();
  EXPECT_EQ(defaults->port, 0) << "port 0 = kernel-assigned";
}

TEST(CliParseTest, ServeRejectsConflictsAndBadValues) {
  EXPECT_FALSE(Parse({"--serve", "--watch"}).ok());
  EXPECT_FALSE(Parse({"--serve", "--list"}).ok());
  EXPECT_FALSE(Parse({"--serve", "--ranked"}).ok());
  EXPECT_FALSE(Parse({"--serve", "--repeat=4"}).ok());
  EXPECT_FALSE(Parse({"--serve", "--port=70000"}).ok());
  EXPECT_FALSE(Parse({"--serve", "--port=-1"}).ok());
  EXPECT_FALSE(Parse({"--serve", "--port=http"}).ok());
  EXPECT_FALSE(Parse({"--serve", "--drain-ms=-5"}).ok());
  // Serve-only flags are meaningless (silently ignored) elsewhere.
  EXPECT_FALSE(Parse({"--query=q", "--port=8080"}).ok());
  EXPECT_FALSE(Parse({"--query=q", "--drain-ms=100"}).ok());
}

TEST(CliAppTest, HelpPrintsUsage) {
  CliOptions options;
  options.help = true;
  std::ostringstream out, err;
  EXPECT_EQ(RunApp(options, out, err), 0);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliAppTest, UnknownDatasetFails) {
  CliOptions options;
  options.dataset = "nope";
  options.query = "gps";
  std::ostringstream out, err;
  EXPECT_EQ(RunApp(options, out, err), 1);
  EXPECT_NE(err.str().find("unknown dataset"), std::string::npos);
}

TEST(CliAppTest, ListModeShowsSnippets) {
  CliOptions options;
  options.query = "gps";
  options.list_only = true;
  std::ostringstream out, err;
  EXPECT_EQ(RunApp(options, out, err), 0);
  EXPECT_NE(out.str().find("results"), std::string::npos);
  EXPECT_NE(out.str().find("1. "), std::string::npos);
  EXPECT_NE(out.str().find("name:"), std::string::npos);
}

TEST(CliAppTest, CompareProducesTable) {
  CliOptions options;
  options.query = "gps";
  options.show_dfs = true;
  std::ostringstream out, err;
  EXPECT_EQ(RunApp(options, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("total DoD:"), std::string::npos);
  EXPECT_NE(out.str().find("selected DFSs"), std::string::npos);
}

TEST(CliAppTest, JsonFormatEmitsJson) {
  CliOptions options;
  options.query = "gps";
  options.format = OutputFormat::kJson;
  std::ostringstream out, err;
  EXPECT_EQ(RunApp(options, out, err), 0) << err.str();
  EXPECT_EQ(out.str().find("total DoD:"), std::string::npos);
  EXPECT_NE(out.str().find("\"total_dod\":"), std::string::npos);
}

TEST(CliAppTest, WeightedAlgorithmWithSchemes) {
  for (core::WeightScheme scheme :
       {core::WeightScheme::kUniform, core::WeightScheme::kInterestingness,
        core::WeightScheme::kSignificance}) {
    CliOptions options;
    options.query = "gps";
    options.algorithm = core::SelectorKind::kWeightedMultiSwap;
    options.weight_scheme = scheme;
    std::ostringstream out, err;
    EXPECT_EQ(RunApp(options, out, err), 0) << err.str();
    EXPECT_NE(out.str().find("total DoD:"), std::string::npos);
  }
}

TEST(CliAppTest, OutdoorLiftScenario) {
  CliOptions options;
  options.dataset = "outdoor";
  options.query = "men jackets";
  options.lift = "brand";
  std::ostringstream out, err;
  EXPECT_EQ(RunApp(options, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("product.category"), std::string::npos);
}

// One invocation, two datasets, one router: each dataset renders under
// its own header and the admission/cache counters are printed.
TEST(CliAppTest, RouterServesMultipleDatasets) {
  CliOptions options;
  options.query = "gps";
  options.datasets = {{"left", "products"}, {"right", "products"}};
  options.cache = true;
  options.repeat = 2;
  options.deadline_ms = 60000;
  options.max_queue = 64;
  std::ostringstream out, err;
  EXPECT_EQ(RunApp(options, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("=== left (epoch 0) ==="), std::string::npos);
  EXPECT_NE(out.str().find("=== right (epoch 0) ==="), std::string::npos);
  EXPECT_NE(out.str().find("total DoD:"), std::string::npos);
  EXPECT_NE(out.str().find("router stats:"), std::string::npos);
  EXPECT_NE(out.str().find("shed 0"), std::string::npos);
  EXPECT_NE(out.str().find("deadline-exceeded 0"), std::string::npos);
}

TEST(CliAppTest, RouterReportsUnknownSource) {
  CliOptions options;
  options.query = "gps";
  options.datasets = {{"a", "products"}, {"b", "nope"}};
  std::ostringstream out, err;
  EXPECT_EQ(RunApp(options, out, err), 1);
  EXPECT_NE(err.str().find("dataset 'b'"), std::string::npos);
  EXPECT_NE(err.str().find("unknown dataset"), std::string::npos);
}

TEST(CliAppTest, NoResultsQueryFailsGracefully) {
  CliOptions options;
  options.query = "zzzznothing";
  std::ostringstream out, err;
  EXPECT_EQ(RunApp(options, out, err), 1);
  EXPECT_NE(err.str().find("at least two results"), std::string::npos);
}

// --serve with a shutdown already requested (the signal beat the
// server to its poll loop): the server must start, drain immediately,
// and exit 0 — the startup race the wakeup pipe exists for.
TEST(CliAppTest, ServeModeDrainsOnPresetShutdown) {
  RequestShutdown();
  CliOptions options;
  options.serve = true;
  options.drain_ms = 500;
  std::ostringstream out, err;
  const int rc = RunApp(options, out, err);
  ResetShutdownState();
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("serving 1 dataset(s) on http://127.0.0.1:"),
            std::string::npos);
  EXPECT_NE(out.str().find("drained:"), std::string::npos);
}

// --watch with a shutdown already requested: serve once, then stop at
// the first loop iteration instead of polling forever.
TEST(CliAppTest, WatchModeStopsOnPresetShutdown) {
  data::ProductReviewsConfig config;
  config.num_products = 8;
  config.seed = 3;
  const std::string path = ::testing::TempDir() + "/xsact_cli_watch.xml";
  ASSERT_TRUE(
      xml::WriteStringToFile(
          path, xml::WriteDocument(data::GenerateProductReviews(config)))
          .ok());

  RequestShutdown();
  CliOptions options;
  options.query = "gps";
  options.dataset = path;
  options.datasets = {{path, path}};
  options.watch = true;
  std::ostringstream out, err;
  const int rc = RunApp(options, out, err);
  ResetShutdownState();
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("shutdown requested; stopping watch"),
            std::string::npos)
      << out.str();
}

}  // namespace
}  // namespace xsact::cli
