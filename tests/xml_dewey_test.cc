// Unit tests for Dewey ids, the node table and path queries.

#include <gtest/gtest.h>

#include "xml/dewey.h"
#include "xml/parser.h"
#include "xml/path.h"

namespace xsact::xml {
namespace {

DeweyId D(std::vector<int32_t> v) { return DeweyId(std::move(v)); }

TEST(DeweyTest, OrderingIsPreOrder) {
  EXPECT_LT(D({0}), D({0, 0}));      // ancestor before descendant
  EXPECT_LT(D({0, 0}), D({0, 1}));   // left sibling first
  EXPECT_LT(D({0, 9}), D({1}));      // whole subtree before next sibling
  EXPECT_LE(D({1}), D({1}));
  EXPECT_EQ(D({1, 2}), D({1, 2}));
}

TEST(DeweyTest, AncestorChecks) {
  EXPECT_TRUE(D({0}).IsAncestorOf(D({0, 3})));
  EXPECT_TRUE(D({0}).IsAncestorOrSelf(D({0})));
  EXPECT_FALSE(D({0}).IsAncestorOf(D({0})));
  EXPECT_FALSE(D({0, 1}).IsAncestorOf(D({0, 2, 1})));
  EXPECT_TRUE(D({}).IsAncestorOrSelf(D({5, 5})));  // root dominates all
}

TEST(DeweyTest, Lca) {
  EXPECT_EQ(DeweyId::Lca(D({0, 1, 2}), D({0, 1, 5})), D({0, 1}));
  EXPECT_EQ(DeweyId::Lca(D({0, 1}), D({0, 1, 5})), D({0, 1}));
  EXPECT_EQ(DeweyId::Lca(D({1}), D({2})), D({}));
  EXPECT_EQ(DeweyId::Lca(D({3, 3}), D({3, 3})), D({3, 3}));
}

TEST(DeweyTest, ParentAndToString) {
  EXPECT_EQ(D({1, 2}).Parent(), D({1}));
  EXPECT_EQ(D({}).Parent(), D({}));
  EXPECT_EQ(D({0, 2, 5}).ToString(), "0.2.5");
  EXPECT_EQ(D({}).ToString(), "ε");
}

class NodeTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<Document> doc = Parse(
        "<catalog>"
        "<product><name>alpha</name><price>10</price></product>"
        "<product><name>beta</name></product>"
        "</catalog>");
    ASSERT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    table_ = NodeTable::Build(doc_);
  }

  Document doc_;
  NodeTable table_;
};

TEST_F(NodeTableTest, PreOrderIdsAndDeweys) {
  // catalog=0, product=1, name=2, text=3, price=4, text=5, product=6, ...
  EXPECT_EQ(table_.size(), doc_.NodeCount());
  EXPECT_EQ(table_.node(0), doc_.root());
  EXPECT_EQ(table_.dewey(0), DeweyId());
  EXPECT_EQ(table_.node(1)->tag(), "product");
  EXPECT_EQ(table_.dewey(1), D({0}));
  EXPECT_EQ(table_.node(2)->tag(), "name");
  EXPECT_EQ(table_.dewey(2), D({0, 0}));
  // Dewey order must equal id order everywhere.
  for (size_t i = 1; i < table_.size(); ++i) {
    EXPECT_LT(table_.dewey(static_cast<NodeId>(i - 1)),
              table_.dewey(static_cast<NodeId>(i)));
  }
}

TEST_F(NodeTableTest, ParentLinks) {
  EXPECT_EQ(table_.parent(0), kInvalidNodeId);
  EXPECT_EQ(table_.parent(1), 0);
  EXPECT_EQ(table_.parent(2), 1);
}

TEST_F(NodeTableTest, IdOfRoundtrips) {
  for (size_t i = 0; i < table_.size(); ++i) {
    EXPECT_EQ(table_.IdOf(table_.node(static_cast<NodeId>(i))),
              static_cast<NodeId>(i));
  }
  Document other = Document::WithRoot("x");
  EXPECT_EQ(table_.IdOf(other.root()), kInvalidNodeId);
}

TEST_F(NodeTableTest, FindByDewey) {
  for (size_t i = 0; i < table_.size(); ++i) {
    EXPECT_EQ(table_.FindByDewey(table_.dewey(static_cast<NodeId>(i))),
              static_cast<NodeId>(i));
  }
  EXPECT_EQ(table_.FindByDewey(D({9, 9})), kInvalidNodeId);
}

TEST_F(NodeTableTest, TagPath) {
  EXPECT_EQ(table_.TagPath(0), "catalog");
  EXPECT_EQ(table_.TagPath(2), "catalog/product/name");
  EXPECT_EQ(table_.TagPath(3), "catalog/product/name/#text");
}

TEST(PathTest, SelectPathFindsAllMatches) {
  StatusOr<Document> doc = Parse(
      "<c><p><n>1</n></p><p><n>2</n><n>3</n></p><q><n>4</n></q></c>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(SelectPath(*doc, "/c/p/n").size(), 3u);
  EXPECT_EQ(SelectPath(*doc, "c/p/n").size(), 3u);  // leading slash optional
  EXPECT_EQ(SelectPath(*doc, "/c/q/n").size(), 1u);
  EXPECT_EQ(SelectPath(*doc, "/c").size(), 1u);
  EXPECT_TRUE(SelectPath(*doc, "/wrong/p").empty());
  EXPECT_TRUE(SelectPath(*doc, "/c/missing").empty());
  EXPECT_TRUE(SelectPath(*doc, "").empty());
}

TEST(PathTest, SelectByTagIsRecursive) {
  StatusOr<Document> doc =
      Parse("<r><a><b><a/></b></a><a/></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(SelectByTag(*doc->root(), "a").size(), 3u);
  EXPECT_EQ(SelectByTag(*doc->root(), "r").size(), 1u);  // includes root
  EXPECT_TRUE(SelectByTag(*doc->root(), "zzz").empty());
}

}  // namespace
}  // namespace xsact::xml
