// Unit tests for the Dfs container and the validity predicate
// (Definition 1(2) of the paper).

#include <gtest/gtest.h>

#include "core/dfs.h"
#include "core/dod.h"
#include "test_util.h"

namespace xsact::core {
namespace {

using testing::BuildInstance;
using testing::InstanceFixture;

class DfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One result, review group occurrences: 9, 6, 6, 3 (a tie at 6),
    // plus a singleton product group.
    fx_ = BuildInstance({{
        {"review", "pro: top", "yes", 9, 10},
        {"review", "pro: mid1", "yes", 6, 10},
        {"review", "pro: mid2", "yes", 6, 10},
        {"review", "pro: low", "yes", 3, 10},
        {"product", "name", "n", 1, 1},
    }});
    // Group layout: product [0,1), review [1,5).
  }

  InstanceFixture fx_;
};

TEST_F(DfsTest, AddRemoveTrackSize) {
  Dfs d(fx_.instance, 0);
  EXPECT_EQ(d.size(), 0);
  d.Add(1);
  d.Add(2);
  EXPECT_EQ(d.size(), 2);
  d.Add(2);  // idempotent
  EXPECT_EQ(d.size(), 2);
  d.Remove(2);
  EXPECT_EQ(d.size(), 1);
  d.Remove(2);  // idempotent
  EXPECT_EQ(d.size(), 1);
  EXPECT_TRUE(d.Contains(1));
  EXPECT_FALSE(d.Contains(2));
  EXPECT_EQ(d.SelectedEntries(), (std::vector<int>{1}));
}

TEST_F(DfsTest, EmptyIsValid) {
  Dfs d(fx_.instance, 0);
  EXPECT_TRUE(d.IsValid(fx_.instance));
}

TEST_F(DfsTest, PrefixIsValid) {
  Dfs d(fx_.instance, 0);
  d.Add(1);  // top (9)
  EXPECT_TRUE(d.IsValid(fx_.instance));
  d.Add(2);  // mid1 (6)
  EXPECT_TRUE(d.IsValid(fx_.instance));
  d.Add(0);  // product name: separate group, fine on its own
  EXPECT_TRUE(d.IsValid(fx_.instance));
}

TEST_F(DfsTest, SkippingSignificantTypeIsInvalid) {
  Dfs d(fx_.instance, 0);
  d.Add(2);  // mid1 without top(9): unselected 9 > selected 6 -> invalid
  EXPECT_FALSE(d.IsValid(fx_.instance));
  d.Add(1);
  EXPECT_TRUE(d.IsValid(fx_.instance));
  d.Add(4);  // low(3) while mid2(6) unselected -> invalid
  EXPECT_FALSE(d.IsValid(fx_.instance));
}

TEST_F(DfsTest, TieGroupsAllowFreeChoice) {
  Dfs d(fx_.instance, 0);
  d.Add(1);  // top
  d.Add(3);  // mid2 only (mid1 unselected, same occurrence 6) -> valid
  EXPECT_TRUE(d.IsValid(fx_.instance));
}

TEST_F(DfsTest, SelectedTypesMatchEntries) {
  Dfs d(fx_.instance, 0);
  d.Add(0);
  d.Add(1);
  const auto types = d.SelectedTypes(fx_.instance);
  ASSERT_EQ(types.size(), 2u);
  const auto& entries = fx_.instance.entries(0);
  EXPECT_EQ(types[0], entries[0].type_id);
  EXPECT_EQ(types[1], entries[1].type_id);
  EXPECT_TRUE(d.ContainsType(fx_.instance, entries[0].type_id));
  EXPECT_FALSE(d.ContainsType(fx_.instance, 9999));
}

TEST_F(DfsTest, ToStringListsSelectedFeatures) {
  Dfs d(fx_.instance, 0);
  d.Add(1);
  const std::string s = d.ToString(fx_.instance);
  EXPECT_NE(s.find("review.pro: top"), std::string::npos);
  EXPECT_NE(s.find("90%"), std::string::npos);
}

TEST_F(DfsTest, AllValidChecksSizesAndValidity) {
  std::vector<Dfs> dfss;
  dfss.emplace_back(fx_.instance, 0);
  dfss[0].Add(1);
  EXPECT_TRUE(AllValid(fx_.instance, dfss, 1));
  EXPECT_FALSE(AllValid(fx_.instance, dfss, 0));  // size bound exceeded
  dfss[0].Add(3);
  dfss[0].Remove(1);  // now invalid
  EXPECT_FALSE(AllValid(fx_.instance, dfss, 5));
  EXPECT_FALSE(AllValid(fx_.instance, {}, 5));  // wrong arity
}

TEST(DodTest, PairAndTotal) {
  InstanceFixture fx = BuildInstance({
      {{"product", "name", "a", 1, 1},
       {"review", "pro: x", "yes", 9, 10},
       {"review", "pro: y", "yes", 5, 10}},
      {{"product", "name", "b", 1, 1},
       {"review", "pro: x", "yes", 2, 10},
       {"review", "pro: y", "yes", 5, 10}},
  });
  // Select everything on both sides.
  std::vector<Dfs> dfss;
  for (int i = 0; i < 2; ++i) {
    Dfs d(fx.instance, i);
    for (size_t k = 0; k < fx.instance.entries(i).size(); ++k) {
      d.Add(static_cast<int>(k));
    }
    dfss.push_back(std::move(d));
  }
  // name differs, pro:x differs (90% vs 20%), pro:y equal -> DoD 2.
  EXPECT_EQ(PairDod(fx.instance, dfss[0], dfss[1]), 2);
  EXPECT_EQ(TotalDod(fx.instance, dfss), 2);

  // Deselect pro:x in result 1: the type is no longer shared -> DoD 1.
  const feature::TypeId x = fx.catalog->FindType("review", "pro: x");
  dfss[1].Remove(fx.instance.EntryIndexOfType(1, x));
  EXPECT_EQ(PairDod(fx.instance, dfss[0], dfss[1]), 1);
}

TEST(DodTest, TypeGainCountsDifferentiablePartners) {
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: x", "yes", 9, 10}},
      {{"review", "pro: x", "yes", 2, 10}},
      {{"review", "pro: x", "yes", 9, 10}},
  });
  const feature::TypeId x = fx.catalog->FindType("review", "pro: x");
  std::vector<Dfs> dfss;
  for (int i = 0; i < 3; ++i) dfss.emplace_back(fx.instance, i);
  // Nobody selects x yet: gain of adding it to result 0 is 0.
  EXPECT_EQ(TypeGain(fx.instance, dfss, 0, x), 0);
  // Results 1 and 2 select x; result 0 differs from 1 (90 vs 20) but not
  // from 2 (90 vs 90).
  dfss[1].Add(fx.instance.EntryIndexOfType(1, x));
  dfss[2].Add(fx.instance.EntryIndexOfType(2, x));
  EXPECT_EQ(TypeGain(fx.instance, dfss, 0, x), 1);
  // And for result 1, both partners differ.
  EXPECT_EQ(TypeGain(fx.instance, dfss, 1, x), 1);  // only 0... 0 hasn't selected
  dfss[0].Add(fx.instance.EntryIndexOfType(0, x));
  EXPECT_EQ(TypeGain(fx.instance, dfss, 1, x), 2);
}

}  // namespace
}  // namespace xsact::core
