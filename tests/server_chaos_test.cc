// Network chaos suite for the HTTP front-end: hostile and broken
// clients, randomized wire garbage, injected transport faults
// (server.accept / server.read / server.write), and mid-drain abuse.
// The invariant throughout: the server never crashes, never wedges,
// answers parseable requests only with documented status codes, and
// /healthz returns 200 once the chaos stops.
//
// CI runs the randomized soak under ASAN+UBSAN and TSAN with fixed
// seeds (XSACT_CHAOS_SEED), mirroring the engine-level chaos suite in
// fault_injection_test.cc.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/faultpoint.h"
#include "data/product_reviews.h"
#include "engine/router.h"
#include "engine/snapshot.h"
#include "server/http_client.h"
#include "server/server.h"

namespace xsact::server {
namespace {

// Every status the front-end is documented to emit. Anything else on
// the wire is a bug.
const std::set<int> kDocumentedCodes = {200, 400, 404, 405, 408, 413,
                                       429, 431, 499, 500, 501, 503,
                                       504, 505};

class ServerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DisarmAllFaultPoints(); }

  void TearDown() override {
    StopServer();
    fault::DisarmAllFaultPoints();
  }

  void StartServer(ServerOptions options = {}) {
    data::ProductReviewsConfig config;
    config.num_products = 16;
    config.seed = 7;
    const engine::SnapshotPtr snapshot =
        engine::CorpusSnapshot::Build(data::GenerateProductReviews(config));
    std::vector<engine::DatasetSpec> specs;
    specs.push_back({"products", snapshot});
    engine::QueryServiceOptions service_options;
    service_options.num_threads = 2;
    service_options.max_queue = 8;
    StatusOr<engine::ServiceRouter> router =
        engine::ServiceRouter::Create(std::move(specs), service_options);
    ASSERT_TRUE(router.ok()) << router.status();
    router_ = std::make_unique<engine::ServiceRouter>(std::move(*router));
    server_ = std::make_unique<HttpServer>(router_.get(), options);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started;
    thread_ = std::thread([this] { server_->Run(); });
  }

  void StopServer() {
    if (server_ != nullptr) server_->Stop();
    if (thread_.joinable()) thread_.join();
  }

  int port() const { return server_->port(); }

  /// The liveness probe every chaos test ends with: after the abuse
  /// (and with faults disarmed), a fresh client must get a 200.
  void ExpectServerAlive() {
    fault::DisarmAllFaultPoints();
    HttpClient probe(port());
    StatusOr<ClientResponse> health = probe.Get("/healthz");
    ASSERT_TRUE(health.ok()) << "server wedged: " << health.status();
    EXPECT_EQ(health->code, 200);
    StatusOr<ClientResponse> query = probe.Get("/query?q=gps");
    ASSERT_TRUE(query.ok()) << query.status();
    EXPECT_EQ(query->code, 200);
  }

  std::unique_ptr<engine::ServiceRouter> router_;
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

// ---- deterministic abuse ---------------------------------------------

TEST_F(ServerChaosTest, FloodOfGarbageConnectionsNeverKillsTheServer) {
  StartServer();
  const char* payloads[] = {
      "\x16\x03\x01\x02\x03\r\n\r\n",           // TLS hello to a plain port
      "GET\r\n\r\n",                            // truncated request line
      "PUT /query HTTP/1.1\r\n\r\n",            // bad method
      "GET / HTTP/9.9\r\n\r\n",                 // absurd version
      "GET / HTTP/1.1\r\nbad header\r\n\r\n",   // header without colon
      "\r\n\r\n\r\n\r\n",                       // bare newlines
  };
  // Short recv timeout: payloads the parser tolerates (leading CRLFs)
  // leave the connection open with nothing to read.
  for (int round = 0; round < 3; ++round) {
    for (const char* payload : payloads) {
      HttpClient client(port(), 300);
      ASSERT_TRUE(client.SendRaw(payload).ok());
      StatusOr<ClientResponse> response = client.ReadResponse();
      if (response.ok()) {
        EXPECT_EQ(kDocumentedCodes.count(response->code), 1u)
            << "undocumented status " << response->code;
        EXPECT_NE(response->code, 200) << "garbage must not succeed";
      }
    }
  }
  EXPECT_GE(server_->stats().parse_errors, 1u);
  ExpectServerAlive();
}

TEST_F(ServerChaosTest, MidRequestDisconnectsAreHarmless) {
  StartServer();
  const char* fragments[] = {
      "G",
      "GET /query?q=gps HTT",
      "GET /query?q=gps HTTP/1.1\r\nHost: x\r",
      "POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial",
  };
  for (int round = 0; round < 10; ++round) {
    for (const char* fragment : fragments) {
      HttpClient client(port(), 2000);
      ASSERT_TRUE(client.SendRaw(fragment).ok());
      client.Close();  // hang up mid-request, never read the answer
    }
  }
  ExpectServerAlive();
}

TEST_F(ServerChaosTest, TransportFaultsDropConnectionsNotTheServer) {
  StartServer();
  // Each transport point fires probabilistically; affected connections
  // are dropped, everyone else is served.
  for (const char* point : {"server.read", "server.write", "server.accept"}) {
    fault::FaultSpec spec;
    spec.code = StatusCode::kIoError;
    spec.probability = 0.5;
    spec.seed = 17;
    ASSERT_TRUE(fault::ArmFaultPointByName(point, spec));
    int answered = 0;
    for (int i = 0; i < 20; ++i) {
      HttpClient client(port(), 2000);
      StatusOr<ClientResponse> response = client.Get("/healthz");
      if (response.ok()) {
        EXPECT_EQ(response->code, 200);
        ++answered;
      }
    }
    fault::DisarmAllFaultPoints();
    EXPECT_GT(answered, 0) << point << " blackholed every connection";
  }
  ExpectServerAlive();
}

TEST_F(ServerChaosTest, DrainUnderFloodCompletesWithinBudget) {
  ServerOptions options;
  options.drain_budget_ms = 500;
  StartServer(options);

  // A burst of clients, some mid-request, some awaiting answers.
  std::vector<std::unique_ptr<HttpClient>> clients;
  for (int i = 0; i < 12; ++i) {
    clients.push_back(std::make_unique<HttpClient>(port(), 2000));
    if (i % 3 == 0) {
      ASSERT_TRUE(clients.back()->SendRaw("GET /query?q=g").ok());
    } else {
      ASSERT_TRUE(clients.back()
                      ->SendRaw("GET /query?q=gps HTTP/1.1\r\n\r\n")
                      .ok());
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = std::chrono::steady_clock::now();
  server_->Stop();
  thread_.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Budget + forced-drain grace + scheduling slack.
  EXPECT_LT(elapsed.count(), 5000) << "drain blew through its budget";

  // Clients that had a complete request in flight get a real response.
  for (size_t i = 0; i < clients.size(); ++i) {
    StatusOr<ClientResponse> response = clients[i]->ReadResponse();
    if (response.ok()) {
      EXPECT_EQ(kDocumentedCodes.count(response->code), 1u)
          << "undocumented status " << response->code;
    }
  }
}

// ---- randomized soak -------------------------------------------------

/// Drives a mixed population of well-formed, malformed, slow, and
/// vanishing clients while transport faults flicker on and off. The
/// server must stay crash-free and answer only documented codes, and
/// serve cleanly once the storm passes.
TEST_F(ServerChaosTest, RandomizedNetworkChaosSoakIsCrashFreeAndRecovers) {
  uint64_t seed = 1;
  if (const char* env = std::getenv("XSACT_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  StartServer();
  const char* transport_points[] = {"server.accept", "server.read",
                                    "server.write"};
  const char* queries[] = {"gps", "camera", "battery", "tripod"};

  for (int round = 0; round < 6; ++round) {
    // Flicker transport faults: each point independently armed with a
    // random firing probability for this round.
    fault::DisarmAllFaultPoints();
    for (const char* point : transport_points) {
      if (coin(rng) < 0.5) {
        fault::FaultSpec spec;
        spec.code = StatusCode::kIoError;
        spec.probability = 0.2 + 0.6 * coin(rng);
        spec.seed = rng();
        ASSERT_TRUE(fault::ArmFaultPointByName(point, spec));
      }
    }

    for (int i = 0; i < 12; ++i) {
      HttpClient client(port(), 2000);
      const double dice = coin(rng);
      if (dice < 0.35) {
        // Well-formed query; any documented outcome is acceptable.
        StatusOr<ClientResponse> response = client.Get(
            std::string("/query?q=") + queries[rng() % 4]);
        if (response.ok()) {
          EXPECT_EQ(kDocumentedCodes.count(response->code), 1u)
              << "undocumented status " << response->code;
        }
      } else if (dice < 0.55) {
        // Random wire garbage (newline-terminated so the parser sees a
        // full line; NULs excluded only to keep std::string simple).
        std::string garbage;
        const size_t len = 1 + rng() % 64;
        for (size_t b = 0; b < len; ++b) {
          garbage.push_back(static_cast<char>(1 + rng() % 255));
        }
        garbage += "\r\n\r\n";
        if (client.SendRaw(garbage).ok()) {
          StatusOr<ClientResponse> response = client.ReadResponse();
          if (response.ok()) {
            EXPECT_NE(response->code, 200) << "garbage must not succeed";
          }
        }
      } else if (dice < 0.75) {
        // Partial request, then vanish.
        (void)client.SendRaw("GET /query?q=gps HTTP/1.1\r\nHo");
        client.Close();
      } else if (dice < 0.9) {
        // Pipelined pair on one connection.
        if (client
                .SendRaw("GET /healthz HTTP/1.1\r\n\r\n"
                         "GET /statz HTTP/1.1\r\n\r\n")
                .ok()) {
          (void)client.ReadResponse();
          (void)client.ReadResponse();
        }
      } else {
        // Flood: oversized headers.
        (void)client.Request("GET", "/healthz",
                             {{"X-Flood", std::string(40000, 'f')}}, "");
      }
    }
  }

  // Storm over: full recovery expected.
  ExpectServerAlive();
  const ServerStats stats = server_->stats();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.parse_errors, 0u);
}

}  // namespace
}  // namespace xsact::server
