// Unit and property tests for the inverted index, the two SLCA
// implementations and the XSeek-style search engine.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "data/movies.h"
#include "data/product_reviews.h"
#include "search/inverted_index.h"
#include "search/search_engine.h"
#include "search/slca.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xsact::search {
namespace {

xml::Document Doc(std::string_view text) {
  auto d = xml::Parse(text);
  EXPECT_TRUE(d.ok()) << d.status();
  return std::move(d).value();
}

TEST(InvertedIndexTest, PostingsAreSortedElementIds) {
  xml::Document doc = Doc(
      "<c><p><n>alpha beta</n></p><p><n>beta gamma</n></p></c>");
  const xml::NodeTable table = xml::NodeTable::Build(doc);
  const InvertedIndex index = InvertedIndex::Build(table);

  EXPECT_TRUE(index.Contains("alpha"));
  EXPECT_TRUE(index.Contains("beta"));
  EXPECT_FALSE(index.Contains("delta"));
  EXPECT_EQ(index.Postings("beta").size(), 2u);
  EXPECT_EQ(index.Df("beta"), 2u);
  EXPECT_EQ(index.Postings("alpha").size(), 1u);
  EXPECT_EQ(index.Df("delta"), 0u);
  // Postings point at the containing element (the <n> nodes).
  std::vector<xml::NodeId> decoded;
  const PostingList beta = index.Decode("beta", &decoded);
  for (xml::NodeId id : beta) {
    EXPECT_EQ(table.node(id)->tag(), "n");
  }
  EXPECT_TRUE(std::is_sorted(beta.begin(), beta.end()));
}

TEST(InvertedIndexTest, CaseFoldingAndTokenization) {
  xml::Document doc = Doc("<r><t>TomTom, GPS-Device!</t></r>");
  const xml::NodeTable table = xml::NodeTable::Build(doc);
  const InvertedIndex index = InvertedIndex::Build(table);
  EXPECT_TRUE(index.Contains("tomtom"));
  EXPECT_TRUE(index.Contains("gps"));
  EXPECT_TRUE(index.Contains("device"));
  EXPECT_FALSE(index.Contains("TomTom"));  // already folded
}

TEST(InvertedIndexTest, AttributeValuesIndexed) {
  xml::Document doc = Doc(R"(<r><a name="hidden gem">x</a></r>)");
  const xml::NodeTable table = xml::NodeTable::Build(doc);
  const InvertedIndex index = InvertedIndex::Build(table);
  ASSERT_TRUE(index.Contains("hidden"));
  std::vector<xml::NodeId> decoded;
  EXPECT_EQ(table.node(index.Decode("hidden", &decoded)[0])->tag(), "a");
}

TEST(InvertedIndexTest, DuplicateTermInOneElementPostsOnce) {
  xml::Document doc = Doc("<r><t>spam spam spam</t></r>");
  const xml::NodeTable table = xml::NodeTable::Build(doc);
  const InvertedIndex index = InvertedIndex::Build(table);
  EXPECT_EQ(index.Postings("spam").size(), 1u);
}

// ---------------------------------------------------------------------------
// SLCA
// ---------------------------------------------------------------------------

/// Match lists decoded from the index, bundled with the backing storage
/// the views point into (movable; views stay valid across the move).
struct DecodedLists {
  std::vector<std::vector<xml::NodeId>> storage;
  MatchLists lists;
};

DecodedLists Lists(const InvertedIndex& index,
                   const std::vector<std::string>& terms) {
  DecodedLists out;
  out.storage.reserve(terms.size());
  for (const auto& t : terms) {
    std::vector<xml::NodeId>& s = out.storage.emplace_back();
    out.lists.push_back(index.Decode(t, &s));
  }
  return out;
}

class SlcaTest : public ::testing::Test {
 protected:
  void Init(std::string_view text) {
    doc_ = Doc(text);
    table_ = xml::NodeTable::Build(doc_);
    index_ = InvertedIndex::Build(table_);
  }

  std::vector<std::string> TagsOf(const std::vector<xml::NodeId>& ids) {
    std::vector<std::string> tags;
    for (auto id : ids) tags.emplace_back(table_.node(id)->tag());
    return tags;
  }

  xml::Document doc_;
  xml::NodeTable table_;
  InvertedIndex index_;
};

TEST_F(SlcaTest, SingleKeywordReturnsMatchingElements) {
  Init("<c><p><n>alpha</n></p><p><n>alpha</n></p></c>");
  const auto slca = ComputeSlcaByScan(table_, Lists(index_, {"alpha"}).lists);
  EXPECT_EQ(TagsOf(slca), (std::vector<std::string>{"n", "n"}));
}

TEST_F(SlcaTest, TwoKeywordsMeetAtCommonAncestor) {
  Init(
      "<catalog>"
      "<product><name>tomtom</name><kind>gps</kind></product>"
      "<product><name>garmin</name><kind>gps</kind></product>"
      "</catalog>");
  const auto slca =
      ComputeSlcaByScan(table_, Lists(index_, {"tomtom", "gps"}).lists);
  // Only the first product contains both; the SLCA is that product.
  ASSERT_EQ(slca.size(), 1u);
  EXPECT_EQ(table_.node(slca[0])->tag(), "product");
  EXPECT_EQ(table_.node(slca[0])->FirstChildElement("name")->InnerText(),
            "tomtom");
}

TEST_F(SlcaTest, DeeperMatchSuppressesAncestor) {
  // Both keywords inside one <n>: the SLCA is <n>, not the root.
  Init("<c><p><n>alpha beta</n></p><p><n>alpha</n><m>beta</m></p></c>");
  const auto slca =
      ComputeSlcaByScan(table_, Lists(index_, {"alpha", "beta"}).lists);
  // First product: SLCA = n (contains both). Second product: SLCA = p.
  ASSERT_EQ(slca.size(), 2u);
  EXPECT_EQ(TagsOf(slca), (std::vector<std::string>{"n", "p"}));
}

TEST_F(SlcaTest, MissingKeywordYieldsEmpty) {
  Init("<c><n>alpha</n></c>");
  EXPECT_TRUE(
      ComputeSlcaByScan(table_, Lists(index_, {"alpha", "zzz"}).lists).empty());
  EXPECT_TRUE(
      ComputeSlcaIndexed(table_, Lists(index_, {"alpha", "zzz"}).lists).empty());
  EXPECT_TRUE(ComputeSlcaByScan(table_, {}).empty());
  EXPECT_TRUE(ComputeSlcaIndexed(table_, {}).empty());
}

TEST_F(SlcaTest, ThreeKeywords) {
  Init(
      "<r>"
      "<a><x>one</x><y>two</y><z>three</z></a>"
      "<b><x>one</x><y>two</y></b>"
      "</r>");
  const auto slca =
      ComputeSlcaByScan(table_, Lists(index_, {"one", "two", "three"}).lists);
  ASSERT_EQ(slca.size(), 1u);
  EXPECT_EQ(table_.node(slca[0])->tag(), "a");
}

TEST_F(SlcaTest, IndexedMatchesScanOnHandcrafted) {
  Init(
      "<movies>"
      "<movie><title>star quest</title><d>one</d></movie>"
      "<movie><title>star fall</title><d>two</d></movie>"
      "<movie><title>dragon star</title><d>one</d></movie>"
      "</movies>");
  for (const auto& terms :
       std::vector<std::vector<std::string>>{{"star"},
                                             {"star", "quest"},
                                             {"star", "one"},
                                             {"one"},
                                             {"star", "dragon"}}) {
    EXPECT_EQ(ComputeSlcaByScan(table_, Lists(index_, terms).lists),
              ComputeSlcaIndexed(table_, Lists(index_, terms).lists))
        << "terms: " << terms[0];
  }
}

// Property: the two SLCA implementations agree on random documents and
// random keyword subsets.
class SlcaEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlcaEquivalenceProperty, ScanEqualsIndexed) {
  Rng rng(GetParam());
  // Random tree whose leaves carry words from a tiny pool (forcing both
  // overlap and repetition).
  const std::vector<std::string> pool = {"ant", "bee", "cat", "dog", "elk"};
  xml::Document doc = xml::Document::WithRoot("root");
  std::vector<xml::Node*> elements = {doc.root()};
  const int nodes = static_cast<int>(rng.Range(5, 60));
  for (int i = 0; i < nodes; ++i) {
    xml::Node* parent = elements[rng.Below(elements.size())];
    xml::Node* e = parent->AddElement("e" + std::to_string(rng.Below(4)));
    elements.push_back(e);
    if (rng.Chance(0.6)) {
      std::string text = pool[rng.Below(pool.size())];
      if (rng.Chance(0.3)) text += " " + pool[rng.Below(pool.size())];
      e->AddChild(xml::Node::MakeText(text));
    }
  }
  const xml::NodeTable table = xml::NodeTable::Build(doc);
  const InvertedIndex index = InvertedIndex::Build(table);

  for (const auto& terms : std::vector<std::vector<std::string>>{
           {"ant"},
           {"ant", "bee"},
           {"cat", "dog", "elk"},
           {"ant", "bee", "cat", "dog"}}) {
    const DecodedLists decoded = Lists(index, terms);
    const MatchLists& lists = decoded.lists;
    const auto scan = ComputeSlcaByScan(table, lists);
    const auto indexed = ComputeSlcaIndexed(table, lists);
    EXPECT_EQ(scan, indexed) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlcaEquivalenceProperty,
                         ::testing::Range<uint64_t>(0, 40));

// ---------------------------------------------------------------------------
// SearchEngine
// ---------------------------------------------------------------------------

TEST(SearchEngineTest, ReturnsEntityResultsInDocumentOrder) {
  SearchEngine engine(data::GenerateMovies(
      {.franchise_sizes = {3, 4}, .min_reviews = 2, .max_reviews = 4,
       .seed = 77}));
  auto results = engine.Search("star");
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 3u);
  for (const SearchResult& r : *results) {
    EXPECT_EQ(r.root->tag(), "movie");
    EXPECT_NE(r.title.find("star"), std::string::npos);
  }
}

TEST(SearchEngineTest, ConjunctiveSemantics) {
  SearchEngine engine(Doc(
      "<c><p><n>tomtom gps</n></p><p><n>garmin gps</n></p>"
      "<p><n>tomtom phone</n></p></c>"));
  auto results = engine.Search("tomtom gps");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);

  auto none = engine.Search("tomtom zune");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(SearchEngineTest, EmptyQueryIsInvalid) {
  SearchEngine engine(Doc("<c><n>x</n></c>"));
  EXPECT_EQ(engine.Search("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Search(" ,; ").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SearchEngineTest, LiftsSlcaToEntityReturnNode) {
  // "quiet" occurs in a leaf deep inside the review; the result should be
  // the review entity, not the leaf.
  SearchEngine engine(Doc(
      "<products><product><reviews>"
      "<review><pros><pro>quiet</pro><pro>fast</pro></pros></review>"
      "<review><pros><pro>loud</pro></pros></review>"
      "</reviews></product>"
      "<product><reviews>"
      "<review><pros><pro>cheap</pro></pros></review>"
      "<review><pros><pro>cheap</pro></pros></review>"
      "</reviews></product></products>"));
  auto results = engine.Search("quiet");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(results->at(0).root->tag(), "review");
  EXPECT_EQ(results->at(0).slca->tag(), "pro");
}

TEST(SearchEngineTest, DeduplicatesResultsMappingToOneEntity) {
  // "quiet" matches two distinct leaves inside the SAME review entity;
  // both SLCAs must collapse into one result.
  SearchEngine engine(Doc(
      "<products><product><reviews>"
      "<review><pros><pro>quiet</pro><pro>small</pro></pros>"
      "<cons><con>quiet speaker</con><con>slow</con></cons></review>"
      "<review><pros><pro>fast</pro></pros>"
      "<cons><con>bulky</con></cons></review>"
      "</reviews></product></products>"));
  auto results = engine.Search("quiet");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(results->at(0).root->tag(), "review");
}

TEST(SearchEngineTest, ScanAndIndexedEnginesAgree) {
  xml::Document doc = data::GenerateProductReviews(
      {.num_products = 6, .min_reviews = 3, .max_reviews = 8, .seed = 3});
  const std::string text = xml::WriteDocument(doc);
  SearchEngine scan_engine(Doc(text), SlcaAlgorithm::kScan);
  SearchEngine indexed_engine(Doc(text), SlcaAlgorithm::kIndexed);
  for (const char* q : {"gps", "compact", "garmin gps", "easy"}) {
    auto a = scan_engine.Search(q);
    auto b = indexed_engine.Search(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size()) << q;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(a->at(i).root_id, b->at(i).root_id);
    }
  }
}

TEST(InferTitleTest, PrefersNameThenTitleThenText) {
  xml::Document with_name = Doc("<p><name>gizmo</name><title>t</title></p>");
  EXPECT_EQ(InferTitle(*with_name.root()), "gizmo");
  xml::Document with_title = Doc("<p><title>the movie</title></p>");
  EXPECT_EQ(InferTitle(*with_title.root()), "the movie");
  xml::Document bare = Doc("<p>some plain text</p>");
  EXPECT_EQ(InferTitle(*bare.root()), "some plain text");
  xml::Document empty = Doc("<p/>");
  EXPECT_EQ(InferTitle(*empty.root()), "p");
}

}  // namespace
}  // namespace xsact::search
