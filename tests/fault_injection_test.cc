// Chaos suite: walks every fault point registered in the binary and
// asserts the serving stack degrades gracefully — injected failures
// surface as error Statuses (never crashes, hangs, or corrupted
// serving), the service keeps its last-known-good snapshot through
// failed reloads, deadlines bound execution time (not just queue time),
// and Shutdown() drains queued and in-flight work with kCancelled.
//
// Runs under ASAN+UBSAN in CI with 10 fixed seeds (XSACT_CHAOS_SEED)
// driving the randomized soak test.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/faultpoint.h"
#include "data/product_reviews.h"
#include "engine/query_service.h"
#include "engine/session.h"
#include "engine/snapshot.h"
#include "table/renderer.h"
#include "xml/io.h"
#include "xml/writer.h"

namespace xsact::engine {
namespace {

std::string Fingerprint(const StatusOr<OutcomePtr>& outcome) {
  if (!outcome.ok()) return "ERR:" + outcome.status().ToString();
  return table::RenderAscii((*outcome)->table) + "#" +
         std::to_string((*outcome)->total_dod);
}

/// Everything one pass over the serving stack observed: the individual
/// operation statuses plus which ones failed.
struct WorkloadResult {
  Status from_file;
  std::vector<Status> serves;
  Status reload;

  bool AllOk() const {
    if (!from_file.ok() || !reload.ok()) return false;
    for (const Status& s : serves) {
      if (!s.ok()) return false;
    }
    return true;
  }

  /// True iff some operation failed with a message containing `needle`.
  bool SawError(const std::string& needle) const {
    auto matches = [&needle](const Status& s) {
      return !s.ok() && s.ToString().find(needle) != std::string::npos;
    };
    if (matches(from_file) || matches(reload)) return true;
    for (const Status& s : serves) {
      if (matches(s)) return true;
    }
    return false;
  }
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAllFaultPoints();
    data::ProductReviewsConfig config;
    config.num_products = 20;
    config.seed = 11;
    xml::Document doc = data::GenerateProductReviews(config);
    corpus_path_ = ::testing::TempDir() + "/xsact_chaos_corpus.xml";
    ASSERT_TRUE(xml::WriteStringToFile(
                    corpus_path_,
                    xml::WriteDocument(doc, {.indent_width = 2,
                                             .declaration = true}))
                    .ok());
    snapshot_ = CorpusSnapshot::Build(std::move(doc));
    QuerySession session;
    StatusOr<ComparisonOutcome> reference =
        SearchAndCompare(*snapshot_, &session, "gps");
    ASSERT_TRUE(reference.ok()) << reference.status();
    expected_gps_ = table::RenderAscii(reference->table) + "#" +
                    std::to_string(reference->total_dod);
  }

  void TearDown() override {
    fault::DisarmAllFaultPoints();
    std::remove(corpus_path_.c_str());
  }

  /// One pass over every layer carrying a fault site: file load → full
  /// snapshot build+validate, query serving through the worker pool
  /// (search, extraction), and a hot reload.
  WorkloadResult RunWorkload() {
    WorkloadResult result;
    result.from_file = CorpusSnapshot::FromFile(corpus_path_).status();

    QueryServiceOptions options;
    options.num_threads = 1;
    options.enable_cache = false;  // every serve must reach a worker
    QueryService service(snapshot_, options);
    for (const char* query : {"gps", "camera"}) {
      StatusOr<OutcomePtr> outcome = service.Submit(query).get();
      result.serves.push_back(outcome.status());
      // Degradation is fail-stop, never wrong answers: whatever faults
      // are flying, a serve that DOES succeed is byte-identical to the
      // reference.
      if (outcome.ok() && std::string(query) == "gps") {
        EXPECT_EQ(Fingerprint(outcome), expected_gps_);
      }
    }
    result.reload = service.ReloadCorpus(corpus_path_).get();
    return result;
  }

  std::string corpus_path_;
  SnapshotPtr snapshot_;
  std::string expected_gps_;
};

// The tentpole gate: enumerate the registry (so new sites are covered
// automatically) and prove each one (a) actually fires under the serve
// workload, (b) surfaces as an error Status at kStatus sites, and
// (c) leaves the stack fully functional once disarmed.
TEST_F(FaultInjectionTest, EveryRegisteredFaultPointFiresAndRecovers) {
  const std::vector<fault::FaultPointInfo> points = fault::AllFaultPoints();
  ASSERT_GE(points.size(), 10u)
      << "expected the full set of serving-stack fault sites to be linked";

  for (const fault::FaultPointInfo& point : points) {
    if (point.name.rfind("server.", 0) == 0) {
      // Transport-layer sites (src/server/) need a live socket pair to
      // fire; they are exercised by tests/server_chaos_test.cc. They
      // only register here if something in this binary pulls in server
      // objects — skip them rather than fail on a site this workload
      // cannot reach.
      continue;
    }
    SCOPED_TRACE("fault point '" + point.name + "'");
    fault::FaultSpec spec;
    spec.message = "chaos-" + point.name;
    if (point.kind == fault::FaultSiteKind::kHitOnly) {
      spec.delay_ms = 1;  // latency only; the site has no Status channel
    }
    fault::ArmFaultPoint(point.id, spec);

    const WorkloadResult faulted = RunWorkload();
    EXPECT_GT(fault::FaultPointFires(point.id), 0u)
        << "the workload never reached this site";
    if (point.kind == fault::FaultSiteKind::kStatus) {
      EXPECT_TRUE(faulted.SawError(spec.message))
          << "injected error never surfaced to a caller";
    } else {
      // Hit-only sites may not alter any outcome; serving stays correct.
      EXPECT_TRUE(faulted.AllOk());
    }

    fault::DisarmFaultPoint(point.id);
    EXPECT_TRUE(RunWorkload().AllOk())
        << "stack did not recover after disarming";
  }
}

// A transient I/O failure during reload is retried with backoff and the
// reload still lands: first attempt fails (injected kIoError, max one
// fire), second attempt succeeds.
TEST_F(FaultInjectionTest, ReloadRetriesTransientIoFailure) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.reload_max_attempts = 3;
  options.reload_backoff_ms = 1;
  QueryService service(snapshot_, options);

  fault::FaultSpec spec;
  spec.code = StatusCode::kIoError;
  spec.message = "chaos-transient-io";
  spec.max_fires = 1;
  ASSERT_TRUE(fault::ArmFaultPointByName("io.read_file", spec));

  const Status reloaded = service.ReloadCorpus(corpus_path_).get();
  EXPECT_TRUE(reloaded.ok()) << reloaded;
  EXPECT_EQ(service.snapshot_epoch(), 1u);

  const ServiceHealth health = service.health();
  EXPECT_TRUE(health.healthy);
  EXPECT_EQ(health.reload_successes, 1u);
  EXPECT_EQ(health.reload_failures, 0u);
  EXPECT_EQ(health.reload_attempts, 2u) << "one injected failure + one retry";
  EXPECT_TRUE(health.last_error.empty());
}

// Shutdown() during a backed-off reload retry must interrupt the
// backoff sleep, not wait it out: the retry wait is on a condition
// variable watching the drain signal, so a service told to drain while
// a reload sits in a long backoff resolves the reload promptly with
// kCancelled instead of pinning shutdown for the full interval.
TEST_F(FaultInjectionTest, ShutdownInterruptsReloadRetryBackoff) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.reload_max_attempts = 3;
  options.reload_backoff_ms = 10000;  // would pin shutdown for 10 s
  QueryService service(snapshot_, options);

  fault::FaultSpec spec;
  spec.code = StatusCode::kIoError;
  spec.message = "chaos-io-every-time";
  ASSERT_TRUE(fault::ArmFaultPointByName("io.read_file", spec));

  std::future<Status> reload = service.ReloadCorpus(corpus_path_);
  // Let the first attempt fail and the retry enter its backoff wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto start = std::chrono::steady_clock::now();
  service.Shutdown();
  const Status result = reload.get();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_EQ(result.code(), StatusCode::kCancelled) << result;
  EXPECT_NE(result.ToString().find("draining"), std::string::npos) << result;
  EXPECT_LT(elapsed.count(), 5000)
      << "Shutdown waited out the reload backoff instead of "
         "interrupting it";

  const ServiceHealth health = service.health();
  EXPECT_FALSE(health.healthy);
  EXPECT_EQ(health.reload_successes, 0u);
  EXPECT_EQ(health.reload_failures, 1u);
}

// A deterministic (non-I/O) reload failure is NOT retried, never
// advances the serving state, carries the underlying error message, and
// flips per-service health — which recovers on the next good reload.
TEST_F(FaultInjectionTest, FailedReloadKeepsLastKnownGoodSnapshot) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.enable_cache = false;
  QueryService service(snapshot_, options);
  const SnapshotPtr before = service.snapshot();

  fault::FaultSpec spec;
  spec.code = StatusCode::kParseError;
  spec.message = "chaos-parse-kaput";
  ASSERT_TRUE(fault::ArmFaultPointByName("parse.corpus", spec));

  const Status failed = service.ReloadCorpus(corpus_path_).get();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kParseError);
  EXPECT_NE(failed.ToString().find("chaos-parse-kaput"), std::string::npos)
      << failed;

  // Serving state untouched: same snapshot object, same epoch, and the
  // service keeps answering correctly.
  EXPECT_EQ(service.snapshot().get(), before.get());
  EXPECT_EQ(service.snapshot_epoch(), 0u);
  EXPECT_EQ(Fingerprint(service.Submit("gps").get()), expected_gps_);

  ServiceHealth health = service.health();
  EXPECT_FALSE(health.healthy);
  EXPECT_EQ(health.reload_failures, 1u);
  EXPECT_EQ(health.reload_attempts, 1u) << "parse errors must not be retried";
  EXPECT_NE(health.last_error.find("chaos-parse-kaput"), std::string::npos);

  fault::DisarmAllFaultPoints();
  const Status recovered = service.ReloadCorpus(corpus_path_).get();
  EXPECT_TRUE(recovered.ok()) << recovered;
  EXPECT_EQ(service.snapshot_epoch(), 1u);
  health = service.health();
  EXPECT_TRUE(health.healthy);
  EXPECT_EQ(health.reload_successes, 1u);
  EXPECT_TRUE(health.last_error.empty());
}

// --deadline-ms bounds EXECUTION time, not just queue time: a query
// whose evaluation is artificially slowed blows its deadline mid-flight
// and resolves DEADLINE_EXCEEDED with bounded overrun, via the
// cooperative cancellation checks inside the kernels.
TEST_F(FaultInjectionTest, DeadlineBoundsExecutionTime) {
  QueryServiceOptions options;
  options.num_threads = 2;
  options.enable_cache = false;
  QueryService service(snapshot_, options);

  fault::FaultSpec spec;
  spec.delay_ms = 100;  // every evaluation stalls well past the deadline
  ASSERT_TRUE(fault::ArmFaultPointByName("search.evaluate", spec));

  const std::vector<std::string> queries = {
      "gps", "camera", "battery", "laptop",
      "screen", "gps camera", "battery gps", "camera laptop"};
  const Deadline deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<StatusOr<OutcomePtr>>> futures;
  for (const std::string& query : queries) {
    futures.push_back(service.Submit(query, {}, 0, deadline));
  }
  for (auto& future : futures) {
    const StatusOr<OutcomePtr> outcome = future.get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded)
        << outcome.status();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // The in-flight checks fired: at least the first tasks were dequeued
  // before the deadline, started evaluating, and were cut short (the
  // site's fire count proves evaluation actually began).
  EXPECT_GT(fault::FaultPointFires(fault::FindFaultPoint("search.evaluate")),
            0u);
  EXPECT_EQ(service.admission_stats().deadline_exceeded, queries.size());
  // Bounded overrun: without in-flight cancellation 8 stalled queries on
  // 2 workers would take >= 400ms of injected delay alone; cooperative
  // checks drain them in roughly one delay per worker. Generous bound
  // for sanitizer builds.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            3000);
}

// Shutdown() drains cleanly: queued tasks resolve kCancelled without
// evaluating, the in-flight task stops at its next cooperative check,
// and new submissions are rejected with kCancelled.
TEST_F(FaultInjectionTest, ShutdownCancelsQueuedAndInflightWork) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.enable_cache = false;
  QueryService service(snapshot_, options);

  fault::FaultSpec spec;
  spec.delay_ms = 150;  // slow extraction keeps work in flight
  ASSERT_TRUE(fault::ArmFaultPointByName("session.extract", spec));

  std::vector<std::future<StatusOr<OutcomePtr>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit("gps"));
  }
  // Let the single worker start (and stall inside) the first task.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto start = std::chrono::steady_clock::now();
  service.Shutdown();
  size_t ok = 0;
  size_t cancelled = 0;
  for (auto& future : futures) {
    const StatusOr<OutcomePtr> outcome = future.get();
    if (outcome.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(outcome.status().code(), StatusCode::kCancelled)
          << outcome.status();
      ++cancelled;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(ok + cancelled, futures.size());
  EXPECT_GE(cancelled, 1u) << "queued work must drain as kCancelled";
  // Drain latency is one cooperative-check stride (here: one stalled
  // extraction), not the whole backlog.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);

  const StatusOr<OutcomePtr> rejected = service.Submit("camera").get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kCancelled);
  EXPECT_GE(service.admission_stats().cancelled, cancelled + 1);
}

// Randomized soak: arm a random subset of sites with random specs
// (probabilistic firing, mixed codes, small delays) and hammer the
// stack. Any Status outcome is acceptable; crashes, sanitizer reports,
// hangs, or a failure to recover after disarming are not. CI runs this
// under ASAN+UBSAN with XSACT_CHAOS_SEED=1..10.
TEST_F(FaultInjectionTest, RandomizedChaosSoakIsCrashFreeAndRecovers) {
  uint64_t seed = 1;
  if (const char* env = std::getenv("XSACT_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const StatusCode codes[] = {StatusCode::kIoError, StatusCode::kInternal,
                              StatusCode::kDataCorruption,
                              StatusCode::kParseError};

  const std::vector<fault::FaultPointInfo> points = fault::AllFaultPoints();
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " round " +
                 std::to_string(round));
    for (const fault::FaultPointInfo& point : points) {
      if (coin(rng) < 0.35) {
        fault::FaultSpec spec;
        spec.code = codes[rng() % (sizeof(codes) / sizeof(codes[0]))];
        spec.message = "chaos-soak";
        spec.probability = 0.5;
        spec.seed = rng();
        spec.max_fires = 1 + rng() % 3;
        spec.delay_ms = static_cast<int>(rng() % 2);
        fault::ArmFaultPoint(point.id, spec);
      } else {
        fault::DisarmFaultPoint(point.id);
      }
    }
    RunWorkload();  // any Status mix is fine; it must not crash or hang
  }

  fault::DisarmAllFaultPoints();
  EXPECT_TRUE(RunWorkload().AllOk()) << "stack must recover after the soak";
}

}  // namespace
}  // namespace xsact::engine
