// Shared helpers for the XSACT test suite: programmatic instance
// construction and a seeded random-instance generator used by the
// property tests.

#ifndef XSACT_TESTS_TEST_UTIL_H_
#define XSACT_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/instance.h"
#include "feature/catalog.h"
#include "feature/result_features.h"

namespace xsact::testing {

/// A ComparisonInstance together with the catalog it points into.
struct InstanceFixture {
  std::unique_ptr<feature::FeatureCatalog> catalog;
  core::ComparisonInstance instance;
};

/// Declarative observation for BuildInstance.
struct Obs {
  std::string entity;
  std::string attribute;
  std::string value;
  double count = 1;
  double cardinality = 1;
};

/// Builds an instance from per-result observation lists.
inline InstanceFixture BuildInstance(
    const std::vector<std::vector<Obs>>& results_obs,
    double diff_threshold = 0.10) {
  InstanceFixture fx;
  fx.catalog = std::make_unique<feature::FeatureCatalog>();
  std::vector<feature::ResultFeatures> results;
  int label = 1;
  for (const auto& obs_list : results_obs) {
    feature::ResultFeatures rf;
    rf.set_label("R" + std::to_string(label++));
    for (const Obs& o : obs_list) {
      rf.AddObservation(fx.catalog->InternType(o.entity, o.attribute),
                        fx.catalog->InternValue(o.value), o.count,
                        o.cardinality);
    }
    rf.Seal();
    results.push_back(std::move(rf));
  }
  fx.instance = core::ComparisonInstance::Build(std::move(results),
                                                fx.catalog.get(),
                                                diff_threshold);
  return fx;
}

/// Random instance: `n` results, up to `max_types` opinion types drawn
/// from a shared pool (so types overlap across results), with random
/// counts. Deterministic in `seed`.
inline InstanceFixture RandomInstance(uint64_t seed, int n, int max_types,
                                      double diff_threshold = 0.10) {
  Rng rng(seed);
  std::vector<std::vector<Obs>> all;
  const int pool = std::max(2, max_types);
  for (int i = 0; i < n; ++i) {
    std::vector<Obs> obs;
    const double cardinality = static_cast<double>(rng.Range(5, 60));
    // Product-level attribute with a distinct value per result.
    obs.push_back(Obs{"product", "name", "model-" + std::to_string(i), 1, 1});
    const int types = static_cast<int>(rng.Range(1, pool));
    for (int t = 0; t < types; ++t) {
      const int type_idx = static_cast<int>(rng.Below(
          static_cast<uint64_t>(pool)));
      const double count =
          static_cast<double>(rng.Range(1, static_cast<int64_t>(cardinality)));
      obs.push_back(Obs{"review", "aspect-" + std::to_string(type_idx), "yes",
                        count, cardinality});
    }
    all.push_back(std::move(obs));
  }
  return BuildInstance(all, diff_threshold);
}

}  // namespace xsact::testing

#endif  // XSACT_TESTS_TEST_UTIL_H_
