// Unit tests for the DOM node and document types.

#include <gtest/gtest.h>

#include "xml/document.h"
#include "xml/node.h"
#include "xml/writer.h"

namespace xsact::xml {
namespace {

TEST(NodeTest, ElementConstruction) {
  auto n = Node::MakeElement("product");
  EXPECT_TRUE(n->is_element());
  EXPECT_FALSE(n->is_text());
  EXPECT_EQ(n->tag(), "product");
  EXPECT_EQ(n->parent(), nullptr);
  EXPECT_EQ(n->child_count(), 0u);
  EXPECT_TRUE(n->IsLeafElement());
}

TEST(NodeTest, TextConstruction) {
  auto n = Node::MakeText("hello");
  EXPECT_TRUE(n->is_text());
  EXPECT_EQ(n->text(), "hello");
  EXPECT_FALSE(n->IsLeafElement());  // leaf-ness is an element property
}

TEST(NodeTest, AddChildSetsParent) {
  auto root = Node::MakeElement("root");
  Node* child = root->AddElement("child");
  EXPECT_EQ(child->parent(), root.get());
  EXPECT_EQ(root->child_count(), 1u);
  EXPECT_FALSE(root->IsLeafElement());
}

TEST(NodeTest, AddElementWithTextInlinesValue) {
  auto root = Node::MakeElement("product");
  Node* name = root->AddElementWithText("name", "TomTom Go 630");
  EXPECT_EQ(name->tag(), "name");
  EXPECT_TRUE(name->IsLeafElement());
  EXPECT_EQ(name->InnerText(), "TomTom Go 630");
}

TEST(NodeTest, Attributes) {
  auto n = Node::MakeElement("a");
  n->AddAttribute("href", "http://wsdb.asu.edu/xsact");
  n->AddAttribute("rel", "demo");
  ASSERT_NE(n->FindAttribute("href"), nullptr);
  EXPECT_EQ(*n->FindAttribute("href"), "http://wsdb.asu.edu/xsact");
  EXPECT_EQ(n->FindAttribute("missing"), nullptr);
  EXPECT_EQ(n->attributes().size(), 2u);
}

TEST(NodeTest, ChildLookups) {
  auto root = Node::MakeElement("reviews");
  root->AddElement("review");
  root->AddElement("review");
  root->AddElement("summary");
  EXPECT_EQ(root->ChildElements("review").size(), 2u);
  EXPECT_EQ(root->ChildElements().size(), 3u);
  EXPECT_NE(root->FirstChildElement("summary"), nullptr);
  EXPECT_EQ(root->FirstChildElement("absent"), nullptr);
}

TEST(NodeTest, InnerTextConcatenatesAndTrims) {
  auto root = Node::MakeElement("r");
  root->AddChild(Node::MakeText("  alpha "));
  Node* mid = root->AddElement("m");
  mid->AddChild(Node::MakeText("beta"));
  root->AddChild(Node::MakeText("gamma  "));
  EXPECT_EQ(root->InnerText(), "alpha beta gamma");
}

TEST(NodeTest, SubtreeSizeCountsAllNodes) {
  auto root = Node::MakeElement("r");        // 1
  Node* a = root->AddElement("a");           // 2
  a->AddChild(Node::MakeText("t"));          // 3
  root->AddElement("b");                     // 4
  EXPECT_EQ(root->SubtreeSize(), 4u);
}

TEST(NodeTest, CloneIsDeepAndDetached) {
  auto root = Node::MakeElement("r");
  root->AddAttribute("k", "v");
  root->AddElementWithText("c", "text");
  auto copy = root->Clone();
  EXPECT_EQ(copy->parent(), nullptr);
  EXPECT_EQ(copy->tag(), "r");
  ASSERT_EQ(copy->child_count(), 1u);
  EXPECT_EQ(copy->InnerText(), "text");
  ASSERT_NE(copy->FindAttribute("k"), nullptr);
  // Mutating the copy must not touch the original.
  copy->AddElement("extra");
  EXPECT_EQ(root->child_count(), 1u);
}

TEST(DocumentTest, EmptyDocument) {
  Document doc;
  EXPECT_TRUE(doc.empty());
  EXPECT_EQ(doc.NodeCount(), 0u);
  EXPECT_EQ(WriteDocument(doc), "");
}

TEST(DocumentTest, WithRootAndVisit) {
  Document doc = Document::WithRoot("catalog");
  doc.root()->AddElementWithText("name", "x");
  int elements = 0;
  int max_depth = -1;
  doc.Visit([&](const Node& n, int depth) {
    if (n.is_element()) ++elements;
    max_depth = std::max(max_depth, depth);
  });
  EXPECT_EQ(elements, 2);
  EXPECT_EQ(max_depth, 2);  // catalog -> name -> text
  EXPECT_EQ(doc.NodeCount(), 3u);
}

TEST(DocumentTest, CloneIsIndependent) {
  Document doc = Document::WithRoot("r");
  doc.root()->AddElement("a");
  Document copy = doc.Clone();
  copy.root()->AddElement("b");
  EXPECT_EQ(doc.NodeCount(), 2u);
  EXPECT_EQ(copy.NodeCount(), 3u);
}

}  // namespace
}  // namespace xsact::xml
