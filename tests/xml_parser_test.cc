// Unit and property tests for the XML parser and writer.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xsact::xml {
namespace {

Document MustParse(std::string_view text) {
  StatusOr<Document> doc = Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

TEST(ParserTest, MinimalDocument) {
  Document doc = MustParse("<root/>");
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.root()->tag(), "root");
  EXPECT_EQ(doc.root()->child_count(), 0u);
}

TEST(ParserTest, NestedElementsAndText) {
  Document doc = MustParse(
      "<product><name>TomTom Go 630</name><rating>4.2</rating></product>");
  const Node* root = doc.root();
  ASSERT_EQ(root->ChildElements().size(), 2u);
  EXPECT_EQ(root->FirstChildElement("name")->InnerText(), "TomTom Go 630");
  EXPECT_EQ(root->FirstChildElement("rating")->InnerText(), "4.2");
}

TEST(ParserTest, AttributesBothQuoteStyles) {
  Document doc = MustParse(R"(<a x="1" y='two' z="a&amp;b"/>)");
  EXPECT_EQ(*doc.root()->FindAttribute("x"), "1");
  EXPECT_EQ(*doc.root()->FindAttribute("y"), "two");
  EXPECT_EQ(*doc.root()->FindAttribute("z"), "a&b");
}

TEST(ParserTest, NamedEntities) {
  Document doc = MustParse("<t>&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;</t>");
  EXPECT_EQ(doc.root()->InnerText(), "<a> & \"b\" 'c'");
}

TEST(ParserTest, NumericEntities) {
  Document doc = MustParse("<t>&#65;&#x42;&#x43;</t>");
  EXPECT_EQ(doc.root()->InnerText(), "ABC");
}

TEST(ParserTest, NumericEntityUtf8Encoding) {
  Document doc = MustParse("<t>&#233;</t>");  // é
  EXPECT_EQ(doc.root()->InnerText(), "\xC3\xA9");
}

TEST(ParserTest, UnknownEntityPassesThrough) {
  Document doc = MustParse("<t>&nbsp;</t>");
  EXPECT_EQ(doc.root()->InnerText(), "&nbsp;");
}

TEST(ParserTest, LoneAmpersandIsLenient) {
  Document doc = MustParse("<t>fish & chips</t>");
  EXPECT_EQ(doc.root()->InnerText(), "fish & chips");
}

TEST(ParserTest, CommentsAreSkipped) {
  Document doc = MustParse("<r><!-- note --><a/><!-- end --></r>");
  EXPECT_EQ(doc.root()->ChildElements().size(), 1u);
}

TEST(ParserTest, CdataIsVerbatim) {
  Document doc = MustParse("<t><![CDATA[a < b && c > d]]></t>");
  EXPECT_EQ(doc.root()->InnerText(), "a < b && c > d");
}

TEST(ParserTest, DeclarationAndDoctypeSkipped) {
  Document doc = MustParse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE products [<!ELEMENT product ANY>]>\n"
      "<products><product/></products>");
  EXPECT_EQ(doc.root()->tag(), "products");
}

TEST(ParserTest, ProcessingInstructionInContent) {
  Document doc = MustParse("<r><?php echo 1; ?><a/></r>");
  EXPECT_EQ(doc.root()->ChildElements().size(), 1u);
}

TEST(ParserTest, WhitespaceOnlyTextSkippedByDefault) {
  Document doc = MustParse("<r>\n  <a/>\n  <b/>\n</r>");
  EXPECT_EQ(doc.root()->child_count(), 2u);
}

TEST(ParserTest, WhitespaceKeptWhenRequested) {
  ParseOptions opts;
  opts.skip_whitespace_text = false;
  StatusOr<Document> doc = Parse("<r>\n  <a/>\n</r>", opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->child_count(), 3u);  // ws, <a/>, ws
}

TEST(ParserTest, MixedContentPreserved) {
  Document doc = MustParse("<p>alpha<b>beta</b>gamma</p>");
  EXPECT_EQ(doc.root()->child_count(), 3u);
  EXPECT_EQ(doc.root()->InnerText(), "alpha beta gamma");
}

TEST(ParserErrorTest, MismatchedTags) {
  StatusOr<Document> doc = Parse("<a><b></a></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("mismatched"), std::string::npos);
}

TEST(ParserErrorTest, UnterminatedElement) {
  EXPECT_FALSE(Parse("<a><b>").ok());
}

TEST(ParserErrorTest, UnterminatedAttribute) {
  EXPECT_FALSE(Parse("<a x=\"1></a>").ok());
}

TEST(ParserErrorTest, MissingAttributeValue) {
  EXPECT_FALSE(Parse("<a x></a>").ok());
}

TEST(ParserErrorTest, GarbageAfterRoot) {
  EXPECT_FALSE(Parse("<a/><b/>").ok());
  EXPECT_FALSE(Parse("<a/>junk").ok());
  // Trailing comments/whitespace are fine.
  EXPECT_TRUE(Parse("<a/>  <!-- bye -->\n").ok());
}

TEST(ParserErrorTest, EmptyAndNonsenseInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("   ").ok());
  EXPECT_FALSE(Parse("plain text").ok());
  EXPECT_FALSE(Parse("<").ok());
  EXPECT_FALSE(Parse("<1tag/>").ok());
}

TEST(ParserErrorTest, ErrorsReportPosition) {
  StatusOr<Document> doc = Parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos);
}

TEST(WriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeAttribute("\"x'&"), "&quot;x&apos;&amp;");
}

TEST(WriterTest, CompactAndPretty) {
  auto root = Node::MakeElement("r");
  root->AddElementWithText("a", "1");
  WriteOptions compact;
  compact.indent_width = 0;
  EXPECT_EQ(WriteNode(*root, compact), "<r><a>1</a></r>");
  const std::string pretty = WriteNode(*root);
  EXPECT_NE(pretty.find("  <a>1</a>\n"), std::string::npos);
}

TEST(WriterTest, SelfClosingForEmptyElements) {
  auto root = Node::MakeElement("empty");
  WriteOptions compact;
  compact.indent_width = 0;
  EXPECT_EQ(WriteNode(*root, compact), "<empty/>");
}

TEST(WriterTest, DeclarationEmitted) {
  auto root = Node::MakeElement("r");
  WriteOptions opts;
  opts.declaration = true;
  opts.indent_width = 0;
  EXPECT_EQ(WriteNode(*root, opts), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>");
}

// ---------------------------------------------------------------------------
// Property: write -> parse roundtrips preserve structure, for random trees.
// ---------------------------------------------------------------------------

void BuildRandomTree(Rng& rng, Node* node, int depth, int* budget) {
  const int children = static_cast<int>(rng.Range(0, depth > 0 ? 4 : 0));
  for (int c = 0; c < children && *budget > 0; ++c) {
    --*budget;
    // Avoid adjacent text nodes: serialization would merge them and the
    // roundtrip comparison would (correctly) flag a structural change.
    const bool last_is_text =
        node->child_count() > 0 && node->last_child()->is_text();
    if (!last_is_text && rng.Chance(0.3)) {
      node->AddChild(Node::MakeText("text & <" + std::to_string(rng.Below(100)) +
                                    "> \"quoted\""));
    } else {
      Node* child = node->AddElement("el" + std::to_string(rng.Below(6)));
      if (rng.Chance(0.4)) {
        child->AddAttribute("attr", "v&'" + std::to_string(rng.Below(50)));
      }
      BuildRandomTree(rng, child, depth - 1, budget);
    }
  }
}

bool SameStructure(const Node& a, const Node& b) {
  if (a.kind() != b.kind()) return false;
  if (a.is_text()) return a.text() == b.text();
  if (a.tag() != b.tag()) return false;
  if (a.attributes() != b.attributes()) return false;
  if (a.child_count() != b.child_count()) return false;
  const Node* ca = a.first_child();
  const Node* cb = b.first_child();
  while (ca != nullptr && cb != nullptr) {
    if (!SameStructure(*ca, *cb)) return false;
    ca = ca->next_sibling();
    cb = cb->next_sibling();
  }
  return ca == nullptr && cb == nullptr;
}

class RoundtripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundtripProperty, WriteParseWrite) {
  Rng rng(GetParam());
  auto root = Node::MakeElement("root");
  int budget = 60;
  BuildRandomTree(rng, root.get(), 5, &budget);

  WriteOptions compact;
  compact.indent_width = 0;
  const std::string text = WriteNode(*root, compact);
  StatusOr<Document> parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  EXPECT_TRUE(SameStructure(*root, *parsed->root())) << text;
  // Idempotence: serializing the parse yields the identical string.
  EXPECT_EQ(WriteNode(*parsed->root(), compact), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundtripProperty,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace xsact::xml
