// Tests for the block-compressed posting-list codec: varbyte round
// trips, block-boundary list sizes, both per-block layouts (varbyte and
// packed-with-exceptions), and Rank against a reference lower_bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "search/postings_codec.h"

namespace xsact::search {
namespace {

TEST(VarbyteTest, RoundTripsBoundaryValues) {
  const std::vector<uint32_t> values = {
      0,    1,    127,        128,        129,       16383, 16384,
      16385, 2097151, 2097152, 268435455, 268435456, 4294967295u};
  std::vector<uint8_t> bytes;
  for (uint32_t v : values) AppendVarbyte(v, &bytes);
  const uint8_t* p = bytes.data();
  for (uint32_t v : values) {
    uint32_t decoded = 0;
    p = DecodeVarbyte(p, &decoded);
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(p, bytes.data() + bytes.size());
}

TEST(VarbyteTest, EncodedWidthGrowsAtSevenBitBoundaries) {
  std::vector<uint8_t> bytes;
  AppendVarbyte(127, &bytes);
  EXPECT_EQ(bytes.size(), 1u);
  bytes.clear();
  AppendVarbyte(128, &bytes);
  EXPECT_EQ(bytes.size(), 2u);
  bytes.clear();
  AppendVarbyte(4294967295u, &bytes);
  EXPECT_EQ(bytes.size(), 5u);
}

/// Encodes `ids` and returns a handle plus the backing storage.
struct Encoded {
  std::vector<uint8_t> bytes;
  std::vector<PostingsSkip> skips;
  std::vector<xml::NodeId> ids;

  CompressedPostings Handle() const {
    return CompressedPostings(bytes.data(), skips.data(), skips.size(),
                              ids.size(), bytes.size());
  }
};

Encoded Encode(std::vector<xml::NodeId> ids) {
  Encoded e;
  e.ids = std::move(ids);
  const Status encoded =
      EncodePostings(e.ids.data(), e.ids.size(), &e.bytes, &e.skips);
  EXPECT_TRUE(encoded.ok()) << encoded;
  return e;
}

void ExpectRoundTrip(const Encoded& e) {
  const CompressedPostings cp = e.Handle();
  ASSERT_EQ(cp.size(), e.ids.size());
  // Whole-list decode.
  std::vector<xml::NodeId> all;
  cp.DecodeAll(&all);
  EXPECT_EQ(all, e.ids);
  // Independent per-block decode, checking skip first-ids and lengths;
  // the checked (validating) decoder must agree with the trusted one.
  std::vector<xml::NodeId> block(kPostingsBlockSize);
  std::vector<xml::NodeId> checked(kPostingsBlockSize);
  size_t consumed = 0;
  for (size_t b = 0; b < cp.num_blocks(); ++b) {
    const size_t len = cp.DecodeBlock(b, block.data());
    ASSERT_EQ(len, cp.BlockLength(b));
    ASSERT_GT(len, 0u);
    EXPECT_EQ(block[0], cp.BlockFirstId(b));
    for (size_t i = 0; i < len; ++i) {
      ASSERT_EQ(block[i], e.ids[consumed + i]) << "block " << b << " pos " << i;
    }
    size_t checked_len = 0;
    const Status status = cp.DecodeBlockChecked(b, checked.data(),
                                                &checked_len);
    ASSERT_TRUE(status.ok()) << "block " << b << ": " << status;
    ASSERT_EQ(checked_len, len);
    for (size_t i = 0; i < len; ++i) {
      ASSERT_EQ(checked[i], block[i]) << "block " << b << " pos " << i;
    }
    consumed += len;
  }
  EXPECT_EQ(consumed, e.ids.size());
  // Freshly encoded data always validates (against any id universe that
  // contains it).
  const Status valid = e.ids.empty()
                           ? cp.Validate(0)
                           : cp.Validate(static_cast<size_t>(e.ids.back()) + 1);
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST(PostingsCodecTest, EmptyList) {
  const Encoded e = Encode({});
  EXPECT_TRUE(e.bytes.empty());
  EXPECT_TRUE(e.skips.empty());
  const CompressedPostings cp = e.Handle();
  EXPECT_TRUE(cp.empty());
  EXPECT_EQ(cp.num_blocks(), 0u);
  EXPECT_EQ(cp.Rank(0), 0u);
  EXPECT_EQ(cp.Rank(1000), 0u);
  std::vector<xml::NodeId> out;
  EXPECT_TRUE(cp.DecodeAll(&out).empty());
}

TEST(PostingsCodecTest, BlockBoundarySizes) {
  // Sizes straddling every interesting block boundary: 1, B-1, B, B+1,
  // 2B-1, 2B, 2B+1 with B = kPostingsBlockSize.
  const size_t kB = kPostingsBlockSize;
  for (size_t n : {size_t{1}, kB - 1, kB, kB + 1, 2 * kB - 1, 2 * kB,
                   2 * kB + 1, 5 * kB + 17}) {
    std::vector<xml::NodeId> ids;
    ids.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ids.push_back(static_cast<xml::NodeId>(3 * i + 1));
    }
    const Encoded e = Encode(std::move(ids));
    EXPECT_EQ(e.skips.size(), (n + kB - 1) / kB) << "n=" << n;
    ExpectRoundTrip(e);
  }
}

TEST(PostingsCodecTest, DenseRunUsesPackedLayoutAndCompresses) {
  // Consecutive ids: every gap is 1, stored as gap-1 = 0 -> the packed
  // layout hits width 0 and blocks should be a handful of bytes.
  std::vector<xml::NodeId> ids;
  for (int i = 100; i < 100 + 4 * static_cast<int>(kPostingsBlockSize); ++i) {
    ids.push_back(i);
  }
  const Encoded e = Encode(std::move(ids));
  ExpectRoundTrip(e);
  // 4 full blocks of zero-width packed gaps: payload far below raw size.
  EXPECT_LT(e.bytes.size(), e.ids.size() * sizeof(xml::NodeId) / 8);
}

TEST(PostingsCodecTest, SkewedGapsWithExceptions) {
  // Mostly-small gaps with a few huge outliers per block exercise the
  // exception patch path of the packed layout.
  Rng rng(7);
  std::vector<xml::NodeId> ids;
  xml::NodeId cur = 0;
  for (int i = 0; i < 1000; ++i) {
    cur += rng.Chance(0.05) ? static_cast<xml::NodeId>(rng.Range(50000, 500000))
                            : static_cast<xml::NodeId>(rng.Range(1, 7));
    ids.push_back(cur);
  }
  ExpectRoundTrip(Encode(std::move(ids)));
}

TEST(PostingsCodecTest, HugeUniformGapsFallBackToVarbyte) {
  // All-large gaps: packed width ~ varbyte cost, either way it must
  // round-trip (this hits the varbyte header path for most blocks).
  Rng rng(11);
  std::vector<xml::NodeId> ids;
  xml::NodeId cur = 0;
  for (int i = 0; i < 500; ++i) {
    cur += static_cast<xml::NodeId>(rng.Range(100000, 4000000));
    if (cur < 0) break;  // NodeId is int32: stop before overflow
    ids.push_back(cur);
  }
  ASSERT_GT(ids.size(), kPostingsBlockSize);
  ExpectRoundTrip(Encode(std::move(ids)));
}

TEST(PostingsCodecTest, RankMatchesLowerBound) {
  Rng rng(23);
  std::vector<xml::NodeId> ids;
  xml::NodeId cur = 0;
  for (int i = 0; i < 700; ++i) {
    cur += static_cast<xml::NodeId>(rng.Range(1, 900));
    ids.push_back(cur);
  }
  const Encoded e = Encode(ids);
  const CompressedPostings cp = e.Handle();
  auto reference = [&](xml::NodeId limit) {
    return static_cast<size_t>(
        std::lower_bound(ids.begin(), ids.end(), limit) - ids.begin());
  };
  // Every posting id, its neighbours, and the extremes.
  EXPECT_EQ(cp.Rank(0), 0u);
  EXPECT_EQ(cp.Rank(ids.front()), 0u);
  EXPECT_EQ(cp.Rank(ids.back() + 1), ids.size());
  for (xml::NodeId id : ids) {
    EXPECT_EQ(cp.Rank(id), reference(id));
    EXPECT_EQ(cp.Rank(id + 1), reference(id + 1));
  }
  for (int i = 0; i < 500; ++i) {
    const xml::NodeId limit =
        static_cast<xml::NodeId>(rng.Below(static_cast<uint64_t>(ids.back()) + 100));
    EXPECT_EQ(cp.Rank(limit), reference(limit));
  }
}

TEST(PostingsCodecTest, RandomListsRoundTripProperty) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    // Random density per seed, from near-consecutive to very sparse.
    const int max_gap = static_cast<int>(rng.Range(1, 1 << rng.Range(1, 20)));
    const int n = static_cast<int>(rng.Range(1, 1200));
    std::set<xml::NodeId> unique;
    xml::NodeId cur = static_cast<xml::NodeId>(rng.Range(0, 1000));
    for (int i = 0; i < n; ++i) {
      unique.insert(cur);
      cur += static_cast<xml::NodeId>(rng.Range(1, max_gap));
      if (cur < 0) break;
    }
    std::vector<xml::NodeId> ids(unique.begin(), unique.end());
    ExpectRoundTrip(Encode(std::move(ids)));
  }
}

TEST(PostingsCodecTest, SkipOffsetsAreRelativeToEntrySize) {
  // Append two lists into the same buffers; the second list's skip
  // offsets must be relative to its own payload start.
  std::vector<uint8_t> bytes;
  std::vector<PostingsSkip> skips;
  std::vector<xml::NodeId> a, b;
  for (int i = 0; i < 300; ++i) a.push_back(2 * i);
  for (int i = 0; i < 200; ++i) b.push_back(7 * i + 3);
  ASSERT_TRUE(EncodePostings(a.data(), a.size(), &bytes, &skips).ok());
  const size_t a_bytes = bytes.size();
  const size_t a_skips = skips.size();
  ASSERT_TRUE(EncodePostings(b.data(), b.size(), &bytes, &skips).ok());

  const CompressedPostings ca(bytes.data(), skips.data(), a_skips, a.size(),
                              a_bytes);
  const CompressedPostings cb(bytes.data() + a_bytes, skips.data() + a_skips,
                              skips.size() - a_skips, b.size(),
                              bytes.size() - a_bytes);
  std::vector<xml::NodeId> out;
  ca.DecodeAll(&out);
  EXPECT_EQ(out, a);
  cb.DecodeAll(&out);
  EXPECT_EQ(out, b);
  EXPECT_EQ(cb.front(), 3);
}

TEST(PostingsCodecTest, EncodeRejectsUnsortedInput) {
  std::vector<uint8_t> bytes;
  std::vector<PostingsSkip> skips;
  const std::vector<xml::NodeId> unsorted = {5, 3, 9};
  EXPECT_EQ(EncodePostings(unsorted.data(), unsorted.size(), &bytes, &skips)
                .code(),
            StatusCode::kInvalidArgument);
  const std::vector<xml::NodeId> duplicate = {3, 3};
  EXPECT_EQ(EncodePostings(duplicate.data(), duplicate.size(), &bytes, &skips)
                .code(),
            StatusCode::kInvalidArgument);
  const std::vector<xml::NodeId> negative = {-1, 4};
  EXPECT_EQ(EncodePostings(negative.data(), negative.size(), &bytes, &skips)
                .code(),
            StatusCode::kInvalidArgument);
}

// Every single-bit flip anywhere in the payload of a multi-id block is
// caught by the per-block checksum: DecodeBlockChecked reports
// kDataCorruption instead of returning wrong ids (or walking out of
// bounds).
TEST(PostingsCodecTest, ChecksumDetectsBitFlips) {
  Rng rng(31);
  std::vector<xml::NodeId> ids;
  xml::NodeId cur = 0;
  for (int i = 0; i < 300; ++i) {
    cur += static_cast<xml::NodeId>(rng.Range(1, 5000));
    ids.push_back(cur);
  }
  const Encoded e = Encode(ids);
  const size_t node_count = static_cast<size_t>(ids.back()) + 1;

  std::vector<xml::NodeId> out(kPostingsBlockSize);
  size_t len = 0;
  size_t detected = 0;
  for (size_t byte = 0; byte < e.bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; bit += 3) {  // every 3rd bit: cheap but dense
      Encoded mutated = e;
      mutated.bytes[byte] ^= static_cast<uint8_t>(1u << bit);
      const CompressedPostings cp = mutated.Handle();
      bool caught = false;
      for (size_t b = 0; b < cp.num_blocks() && !caught; ++b) {
        caught = !cp.DecodeBlockChecked(b, out.data(), &len).ok();
      }
      caught = caught || !cp.Validate(node_count).ok();
      EXPECT_TRUE(caught) << "flip at byte " << byte << " bit " << bit
                          << " went undetected";
      detected += caught;
    }
  }
  EXPECT_GT(detected, 0u);
}

TEST(PostingsCodecTest, CheckedDecodeRejectsTruncation) {
  std::vector<xml::NodeId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(13 * i + 5);
  const Encoded e = Encode(ids);
  ASSERT_GT(e.bytes.size(), kPostingsChecksumBytes + 2);

  // Present the same skips/counts over a shorter byte span: the checked
  // decoder must notice the missing tail instead of reading past it.
  const CompressedPostings truncated(e.bytes.data(), e.skips.data(),
                                     e.skips.size(), e.ids.size(),
                                     e.bytes.size() - 3);
  std::vector<xml::NodeId> out(kPostingsBlockSize);
  size_t len = 0;
  bool caught = false;
  for (size_t b = 0; b < truncated.num_blocks() && !caught; ++b) {
    caught = !truncated.DecodeBlockChecked(b, out.data(), &len).ok();
  }
  EXPECT_TRUE(caught);
  EXPECT_FALSE(truncated.Validate(static_cast<size_t>(ids.back()) + 1).ok());
}

TEST(PostingsCodecTest, ValidateChecksIdUniverseAndShape) {
  std::vector<xml::NodeId> ids;
  for (int i = 0; i < 150; ++i) ids.push_back(4 * i);
  const Encoded e = Encode(ids);
  const CompressedPostings cp = e.Handle();

  EXPECT_TRUE(cp.Validate(static_cast<size_t>(ids.back()) + 1).ok());
  // An id universe smaller than the largest posting is corruption (a
  // posting would point past the node table).
  const Status out_of_universe = cp.Validate(static_cast<size_t>(ids.back()));
  EXPECT_EQ(out_of_universe.code(), StatusCode::kDataCorruption)
      << out_of_universe;
  // Block-index bounds surface as errors, not UB.
  std::vector<xml::NodeId> out(kPostingsBlockSize);
  size_t len = 0;
  EXPECT_EQ(cp.DecodeBlockChecked(cp.num_blocks(), out.data(), &len).code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace xsact::search
