// Tests for the difference explainer.

#include <gtest/gtest.h>

#include "core/multi_swap.h"
#include "data/paper_example.h"
#include "table/explainer.h"
#include "test_util.h"

namespace xsact::table {
namespace {

using testing::BuildInstance;
using testing::InstanceFixture;

std::vector<core::Dfs> SelectAll(const core::ComparisonInstance& instance) {
  std::vector<core::Dfs> dfss;
  for (int i = 0; i < instance.num_results(); ++i) {
    core::Dfs d(instance, i);
    for (size_t k = 0; k < instance.entries(i).size(); ++k) {
      d.Add(static_cast<int>(k));
    }
    dfss.push_back(std::move(d));
  }
  return dfss;
}

TEST(ExplainerTest, DifferingValuesSentence) {
  InstanceFixture fx = BuildInstance({
      {{"product", "category", "rain jackets", 1, 1}},
      {{"product", "category", "ski jackets", 1, 1}},
  });
  const auto explanations =
      ExplainDifferences(fx.instance, SelectAll(fx.instance));
  ASSERT_EQ(explanations.size(), 1u);
  EXPECT_EQ(explanations[0].pairs_differentiated, 1);
  EXPECT_EQ(explanations[0].text,
            "category is \"rain jackets\" for R1 but \"ski jackets\" for R2");
}

TEST(ExplainerTest, DifferingSharesSentence) {
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: compact", "yes", 8, 11}},
      {{"review", "pro: compact", "yes", 38, 68}},
  });
  const auto explanations =
      ExplainDifferences(fx.instance, SelectAll(fx.instance));
  ASSERT_EQ(explanations.size(), 1u);
  EXPECT_EQ(explanations[0].text,
            "pro: compact holds for 73% of R1's reviews vs 56% of R2's");
}

TEST(ExplainerTest, NonDifferentiatingTypesAreSilent) {
  InstanceFixture fx = BuildInstance({
      {{"product", "kind", "gps", 1, 1}},
      {{"product", "kind", "gps", 1, 1}},
  });
  EXPECT_TRUE(ExplainDifferences(fx.instance, SelectAll(fx.instance)).empty());
}

TEST(ExplainerTest, SortsByPairsAndHonorsLimit) {
  // "wide" differentiates all three pairs; "narrow" only one.
  InstanceFixture fx = BuildInstance({
      {{"product", "wide", "a", 1, 1}, {"review", "narrow", "yes", 9, 10}},
      {{"product", "wide", "b", 1, 1}, {"review", "narrow", "yes", 8, 10}},
      {{"product", "wide", "c", 1, 1}, {"review", "narrow", "yes", 1, 10}},
  });
  const auto dfss = SelectAll(fx.instance);
  const auto all = ExplainDifferences(fx.instance, dfss, 10);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].type_id, fx.catalog->FindType("product", "wide"));
  EXPECT_EQ(all[0].pairs_differentiated, 3);
  EXPECT_GE(all[0].pairs_differentiated, all[1].pairs_differentiated);
  const auto limited = ExplainDifferences(fx.instance, dfss, 1);
  ASSERT_EQ(limited.size(), 1u);
  EXPECT_EQ(limited[0].type_id, all[0].type_id);
}

TEST(ExplainerTest, PicksMostContrastingPairForTheSentence) {
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: x", "yes", 9, 10}},
      {{"review", "pro: x", "yes", 7, 10}},
      {{"review", "pro: x", "yes", 1, 10}},
  });
  const auto explanations =
      ExplainDifferences(fx.instance, SelectAll(fx.instance));
  ASSERT_EQ(explanations.size(), 1u);
  // 90% vs 10% is the widest contrast.
  EXPECT_NE(explanations[0].text.find("90%"), std::string::npos);
  EXPECT_NE(explanations[0].text.find("10%"), std::string::npos);
}

TEST(ExplainerTest, PaperInstanceReadsLikeTheWalkthrough) {
  data::PaperGpsInstance gps = data::BuildPaperGpsInstance(true);
  core::SelectorOptions options;
  options.size_bound = 7;
  const auto dfss = core::MultiSwapOptimizer().Select(gps.instance, options);
  const auto explanations = ExplainDifferences(gps.instance, dfss, 10);
  ASSERT_GE(explanations.size(), 5u);
  const std::string rendered = RenderExplanations(explanations);
  EXPECT_NE(rendered.find("name is"), std::string::npos);
  EXPECT_NE(rendered.find("pro: compact holds for 73%"), std::string::npos);
  EXPECT_NE(rendered.find("  * "), std::string::npos);
}

TEST(ExplainerTest, EmptyDfssYieldNothing) {
  InstanceFixture fx = BuildInstance({
      {{"product", "a", "x", 1, 1}},
      {{"product", "a", "y", 1, 1}},
  });
  std::vector<core::Dfs> empty;
  for (int i = 0; i < 2; ++i) empty.emplace_back(fx.instance, i);
  EXPECT_TRUE(ExplainDifferences(fx.instance, empty).empty());
}

}  // namespace
}  // namespace xsact::table
