// Equivalence test for the id-based extractor rewrite: a faithful
// reproduction of the seed's tuple-of-strings extractor (recursive entity
// count pass + std::map<tuple<string,string,string>> aggregation) must
// produce IDENTICAL ResultFeatures — and drive identical catalog id
// assignment — on the generated demo corpora and on randomized documents.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/outdoor_retailer.h"
#include "data/movies.h"
#include "data/product_reviews.h"
#include "entity/entity_identifier.h"
#include "feature/extractor.h"
#include "search/search_engine.h"
#include "xml/document.h"

namespace xsact::feature {
namespace {

// ---------------------------------------------------------------------------
// The seed's extractor, reproduced verbatim.
// ---------------------------------------------------------------------------

struct LegacyState {
  std::unordered_map<std::string, double> cardinality;
  std::map<std::tuple<std::string, std::string, std::string>, double> obs;
};

void LegacyCountEntities(const xml::Node& node, const xml::Node& root,
                         const entity::EntitySchema& schema,
                         LegacyState* state) {
  if (node.is_element() &&
      (&node == &root ||
       schema.CategoryOf(node) == entity::NodeCategory::kEntity)) {
    state->cardinality[std::string(node.tag())] += 1;
  }
  for (const xml::Node* child : node.children()) {
    LegacyCountEntities(*child, root, schema, state);
  }
}

ResultFeatures LegacyExtract(const xml::Node& result_root,
                             const entity::EntitySchema& schema,
                             FeatureCatalog* catalog,
                             const ExtractorOptions& options) {
  LegacyState state;
  LegacyCountEntities(result_root, result_root, schema, &state);

  std::vector<const xml::Node*> stack = {&result_root};
  while (!stack.empty()) {
    const xml::Node* node = stack.back();
    stack.pop_back();
    for (const xml::Node* child : node->children()) {
      if (child->is_element()) stack.push_back(child);
    }
    if (!node->is_element() || !node->IsLeafElement()) continue;
    if (node == &result_root) continue;

    std::string value = node->InnerText();
    if (value.empty() && options.skip_empty_values) continue;
    if (options.fold_value_case) value = ToLower(value);
    if (value.size() > options.max_value_length) {
      value.resize(options.max_value_length);
    }

    const entity::NodeCategory category = schema.CategoryOf(*node);
    const xml::Node* owner = schema.OwningEntity(*node, result_root);
    const std::string entity_tag(owner->tag());

    if (category == entity::NodeCategory::kMultiAttribute) {
      state.obs[{entity_tag, std::string(node->tag()) + ": " + value, "yes"}] += 1;
    } else {
      state.obs[{entity_tag, std::string(node->tag()), value}] += 1;
    }
  }

  ResultFeatures features;
  features.set_label(search::InferTitle(result_root));
  for (const auto& [key, count] : state.obs) {
    const auto& [entity_tag, attribute, value] = key;
    const TypeId type = catalog->InternType(entity_tag, attribute);
    const ValueId value_id = catalog->InternValue(value);
    auto it = state.cardinality.find(entity_tag);
    const double cardinality = it == state.cardinality.end() ? 1 : it->second;
    features.AddObservation(type, value_id, count, cardinality);
  }
  features.Seal();
  return features;
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

void ExpectFeaturesEqual(const ResultFeatures& got, const ResultFeatures& want,
                         const std::string& context) {
  ASSERT_EQ(got.label(), want.label()) << context;
  ASSERT_EQ(got.NumTypes(), want.NumTypes()) << context;
  ASSERT_EQ(got.NumFeatures(), want.NumFeatures()) << context;
  for (size_t t = 0; t < got.types().size(); ++t) {
    const TypeStats& a = got.types()[t];
    const TypeStats& b = want.types()[t];
    ASSERT_EQ(a.type_id, b.type_id) << context << " type#" << t;
    ASSERT_EQ(a.occurrence, b.occurrence) << context << " type#" << t;
    ASSERT_EQ(a.entity_cardinality, b.entity_cardinality)
        << context << " type#" << t;
    ASSERT_EQ(a.values.size(), b.values.size()) << context << " type#" << t;
    for (size_t v = 0; v < a.values.size(); ++v) {
      ASSERT_EQ(a.values[v].value_id, b.values[v].value_id)
          << context << " type#" << t << " value#" << v;
      ASSERT_EQ(a.values[v].count, b.values[v].count)
          << context << " type#" << t << " value#" << v;
    }
  }
}

void ExpectCatalogsEqual(const FeatureCatalog& got, const FeatureCatalog& want,
                         const std::string& context) {
  ASSERT_EQ(got.NumTypes(), want.NumTypes()) << context;
  ASSERT_EQ(got.NumValues(), want.NumValues()) << context;
  for (TypeId t = 0; t < static_cast<TypeId>(want.NumTypes()); ++t) {
    ASSERT_EQ(got.EntityOf(t), want.EntityOf(t)) << context << " type=" << t;
    ASSERT_EQ(got.AttributeOf(t), want.AttributeOf(t))
        << context << " type=" << t;
  }
  for (ValueId v = 0; v < static_cast<ValueId>(want.NumValues()); ++v) {
    ASSERT_EQ(got.ValueOf(v), want.ValueOf(v)) << context << " value=" << v;
  }
}

/// Runs both extractors over every subtree under `roots_parent` whose tag
/// is `result_tag`, sharing one catalog per side, and compares everything.
void CompareOnCorpus(const xml::Document& doc, const std::string& result_tag,
                     const ExtractorOptions& options,
                     const std::string& context) {
  const entity::EntitySchema schema = entity::InferSchema(doc);
  const std::vector<const xml::Node*> roots =
      xml::SelectByTag(*doc.root(), result_tag);
  ASSERT_FALSE(roots.empty()) << context;

  const xml::NodeTable table = xml::NodeTable::Build(doc);
  const entity::DocumentCategoryIndex category_index(table, schema);

  FeatureCatalog new_catalog;
  FeatureCatalog fast_catalog;
  FeatureCatalog legacy_catalog;
  const FeatureExtractor extractor(options);
  for (size_t r = 0; r < roots.size(); ++r) {
    const ResultFeatures got =
        extractor.Extract(*roots[r], schema, &new_catalog);
    const ResultFeatures fast = extractor.Extract(
        table, category_index, table.IdOf(roots[r]), &fast_catalog);
    const ResultFeatures want =
        LegacyExtract(*roots[r], schema, &legacy_catalog, options);
    ExpectFeaturesEqual(got, want,
                        context + " result#" + std::to_string(r));
    ExpectFeaturesEqual(fast, want,
                        context + " fast result#" + std::to_string(r));
  }
  ExpectCatalogsEqual(new_catalog, legacy_catalog, context);
  ExpectCatalogsEqual(fast_catalog, legacy_catalog, context + " fast");
}

TEST(ExtractorEquivTest, ProductReviewsCorpus) {
  data::ProductReviewsConfig config;
  config.num_products = 12;
  CompareOnCorpus(data::GenerateProductReviews(config), "product", {},
                  "product_reviews");
}

TEST(ExtractorEquivTest, OutdoorRetailerBrands) {
  CompareOnCorpus(data::GenerateOutdoorRetailer({}), "brand", {},
                  "outdoor_retailer");
}

TEST(ExtractorEquivTest, MoviesCorpus) {
  data::MoviesConfig config;
  config.franchise_sizes = {3, 4, 5};
  CompareOnCorpus(data::GenerateMovies(config), "movie", {}, "movies");
}

TEST(ExtractorEquivTest, OptionVariants) {
  data::ProductReviewsConfig config;
  config.num_products = 6;
  const xml::Document doc = data::GenerateProductReviews(config);

  ExtractorOptions no_fold;
  no_fold.fold_value_case = false;
  CompareOnCorpus(doc, "product", no_fold, "no_fold");

  ExtractorOptions truncate;
  truncate.max_value_length = 5;
  CompareOnCorpus(doc, "product", truncate, "truncate");

  ExtractorOptions keep_empty;
  keep_empty.skip_empty_values = false;
  CompareOnCorpus(doc, "product", keep_empty, "keep_empty");
}

TEST(ExtractorEquivTest, RandomizedDocuments) {
  const std::vector<std::string> tags = {"a", "b", "c", "d"};
  const std::vector<std::string> words = {"Red",  "green", "BLUE ",
                                          "teal", "gray",  "a b"};
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    xml::Document doc = xml::Document::WithRoot("root");
    std::vector<xml::Node*> elements = {doc.root()};
    const int nodes = static_cast<int>(rng.Range(10, 80));
    for (int i = 0; i < nodes; ++i) {
      xml::Node* parent = elements[rng.Below(elements.size())];
      xml::Node* e = parent->AddElement(tags[rng.Below(tags.size())]);
      elements.push_back(e);
      if (rng.Chance(0.7)) {
        e->AddChild(xml::Node::MakeText(words[rng.Below(words.size())]));
      }
    }
    CompareOnCorpus(doc, "a", {}, "random seed=" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace xsact::feature
