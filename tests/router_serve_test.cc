// ServiceRouter tests: routing correctness (byte-identity to direct
// QueryService serving and to the single-threaded reference), admission
// control (deadline-exceeded outcomes, queue-full load shedding), stats
// aggregation across datasets, and per-dataset hot reload routing.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "data/product_reviews.h"
#include "engine/query_service.h"
#include "engine/router.h"
#include "engine/session.h"
#include "engine/snapshot.h"
#include "table/renderer.h"
#include "xml/io.h"
#include "xml/writer.h"

namespace xsact::engine {
namespace {

const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      "gps", "camera", "battery life", "kind:laptop"};
  return queries;
}

/// Deterministic byte fingerprint of a serve outcome (table + DoD, or
/// the error text).
std::string Fingerprint(const StatusOr<OutcomePtr>& outcome) {
  if (!outcome.ok()) return "ERR:" + outcome.status().ToString();
  return table::RenderAscii((*outcome)->table) + "#" +
         std::to_string((*outcome)->total_dod);
}

/// Single-threaded reference outcome for `query` against `snapshot`.
std::string Expected(const SnapshotPtr& snapshot, const std::string& query) {
  QuerySession session;
  StatusOr<ComparisonOutcome> outcome =
      SearchAndCompare(*snapshot, &session, query);
  if (!outcome.ok()) {
    return "ERR:" + outcome.status().ToString();
  }
  return table::RenderAscii(outcome->table) + "#" +
         std::to_string(outcome->total_dod);
}

SnapshotPtr MakeCorpus(int num_products, uint64_t seed) {
  data::ProductReviewsConfig config;
  config.num_products = num_products;
  config.seed = seed;
  return CorpusSnapshot::Build(data::GenerateProductReviews(config));
}

class RouterServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alpha_ = MakeCorpus(20, 11);
    beta_ = MakeCorpus(26, 42);
    for (const std::string& query : Queries()) {
      expected_alpha_.push_back(Expected(alpha_, query));
      expected_beta_.push_back(Expected(beta_, query));
    }
    // The corpora must actually differ, or per-dataset routing is
    // untestable.
    ASSERT_NE(expected_alpha_[0], expected_beta_[0]);
  }

  StatusOr<ServiceRouter> MakeRouter(const QueryServiceOptions& options) {
    return ServiceRouter::Create(
        {{"alpha", alpha_}, {"beta", beta_}}, options);
  }

  SnapshotPtr alpha_;
  SnapshotPtr beta_;
  std::vector<std::string> expected_alpha_;
  std::vector<std::string> expected_beta_;
};

TEST_F(RouterServeTest, CreateRejectsBadSpecs) {
  EXPECT_EQ(ServiceRouter::Create({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceRouter::Create({{"", alpha_}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceRouter::Create({{"alpha", nullptr}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceRouter::Create({{"dup", alpha_}, {"dup", beta_}})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(RouterServeTest, ExposesDatasetsSorted) {
  QueryServiceOptions options;
  options.num_threads = 1;
  StatusOr<ServiceRouter> router = ServiceRouter::Create(
      {{"zeta", beta_}, {"alpha", alpha_}}, options);
  ASSERT_TRUE(router.ok()) << router.status();
  EXPECT_EQ(router->num_datasets(), 2u);
  EXPECT_EQ(router->dataset_names(),
            (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_NE(router->service("alpha"), nullptr);
  EXPECT_NE(router->service("zeta"), nullptr);
  EXPECT_EQ(router->service("missing"), nullptr);
}

// The acceptance gate: serving through the router is byte-identical to
// serving directly through a per-dataset QueryService, which in turn
// matches the single-threaded reference.
TEST_F(RouterServeTest, RoutedServingIsByteIdenticalToDirectServing) {
  QueryServiceOptions options;
  options.num_threads = 2;
  options.enable_cache = false;
  StatusOr<ServiceRouter> router = MakeRouter(options);
  ASSERT_TRUE(router.ok()) << router.status();
  QueryService direct_alpha(alpha_, options);
  QueryService direct_beta(beta_, options);

  for (size_t q = 0; q < Queries().size(); ++q) {
    const std::string routed_alpha =
        Fingerprint(router->Submit("alpha", Queries()[q]).get());
    const std::string routed_beta =
        Fingerprint(router->Submit("beta", Queries()[q]).get());
    EXPECT_EQ(routed_alpha,
              Fingerprint(direct_alpha.Submit(Queries()[q]).get()));
    EXPECT_EQ(routed_beta,
              Fingerprint(direct_beta.Submit(Queries()[q]).get()));
    EXPECT_EQ(routed_alpha, expected_alpha_[q]);
    EXPECT_EQ(routed_beta, expected_beta_[q]);
  }
}

TEST_F(RouterServeTest, UnknownDatasetResolvesNotFound) {
  QueryServiceOptions options;
  options.num_threads = 1;
  StatusOr<ServiceRouter> router = MakeRouter(options);
  ASSERT_TRUE(router.ok()) << router.status();
  StatusOr<OutcomePtr> outcome = router->Submit("gamma", "gps").get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
  const Status reload = router->ReloadCorpus("gamma", "/tmp/x.xml").get();
  EXPECT_EQ(reload.code(), StatusCode::kNotFound);
}

// A task dequeued at or past its deadline resolves DEADLINE_EXCEEDED
// without being evaluated, and the per-dataset counter records it.
TEST_F(RouterServeTest, ExpiredDeadlineResolvesDeadlineExceeded) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.enable_cache = false;
  StatusOr<ServiceRouter> router = MakeRouter(options);
  ASSERT_TRUE(router.ok()) << router.status();

  const Deadline expired =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  StatusOr<OutcomePtr> outcome =
      router->Submit("alpha", Queries()[0], {}, 0, expired).get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);

  // A generous deadline serves normally.
  const Deadline relaxed =
      std::chrono::steady_clock::now() + std::chrono::minutes(5);
  EXPECT_EQ(Fingerprint(router->Submit("alpha", Queries()[0], {}, 0, relaxed)
                            .get()),
            expected_alpha_[0]);

  const RouterStats stats = router->stats();
  ASSERT_EQ(stats.datasets.size(), 2u);
  EXPECT_EQ(stats.datasets[0].dataset, "alpha");
  EXPECT_EQ(stats.datasets[0].admission.deadline_exceeded, 1u);
  EXPECT_EQ(stats.datasets[1].admission.deadline_exceeded, 0u);
  EXPECT_EQ(stats.total_deadline_exceeded(), 1u);
}

// A cache hit resolves at submission — before any queueing — so it is
// served even when the request's deadline has already passed.
TEST_F(RouterServeTest, CacheHitServesDespiteExpiredDeadline) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.enable_cache = true;
  StatusOr<ServiceRouter> router = MakeRouter(options);
  ASSERT_TRUE(router.ok()) << router.status();

  ASSERT_EQ(Fingerprint(router->Submit("alpha", Queries()[0]).get()),
            expected_alpha_[0]);
  const Deadline expired =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_EQ(Fingerprint(router->Submit("alpha", Queries()[0], {}, 0, expired)
                            .get()),
            expected_alpha_[0]);
  const RouterStats stats = router->stats();
  EXPECT_EQ(stats.datasets[0].cache.hits, 1u);
  EXPECT_EQ(stats.datasets[0].admission.deadline_exceeded, 0u);
}

// Flooding a single-worker service with a queue bound of 1 must shed:
// rejected futures resolve RESOURCE_EXHAUSTED immediately, accepted ones
// still serve the correct outcome, and the counters add up.
TEST_F(RouterServeTest, FullQueueShedsWithResourceExhausted) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.enable_cache = false;
  options.max_queue = 1;
  StatusOr<ServiceRouter> router = MakeRouter(options);
  ASSERT_TRUE(router.ok()) << router.status();

  constexpr size_t kFlood = 32;
  std::vector<std::future<StatusOr<OutcomePtr>>> futures;
  futures.reserve(kFlood);
  for (size_t i = 0; i < kFlood; ++i) {
    futures.push_back(router->Submit("beta", Queries()[0]));
  }
  size_t ok = 0;
  size_t shed = 0;
  for (auto& future : futures) {
    StatusOr<OutcomePtr> outcome = future.get();
    if (outcome.ok()) {
      EXPECT_EQ(Fingerprint(outcome), expected_beta_[0]);
      ++ok;
    } else {
      ASSERT_EQ(outcome.status().code(), StatusCode::kResourceExhausted)
          << outcome.status();
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kFlood);
  EXPECT_GE(ok, 1u) << "the in-flight and queued tasks must still serve";
  EXPECT_GE(shed, 1u) << "a 32-deep burst into a queue of 1 must shed";

  const RouterStats stats = router->stats();
  ASSERT_EQ(stats.datasets.size(), 2u);
  EXPECT_EQ(stats.datasets[1].dataset, "beta");
  EXPECT_EQ(stats.datasets[1].admission.shed, shed);
  EXPECT_EQ(stats.datasets[1].admission.admitted, ok);
  EXPECT_EQ(stats.datasets[0].admission.shed, 0u);
  EXPECT_EQ(stats.total_shed(), shed);
  EXPECT_EQ(stats.total_queue_depth(), 0u) << "drained after get()";
}

// Stats are attributed to the dataset that served the traffic.
TEST_F(RouterServeTest, StatsAggregatePerDataset) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.enable_cache = true;
  StatusOr<ServiceRouter> router = MakeRouter(options);
  ASSERT_TRUE(router.ok()) << router.status();

  ASSERT_TRUE(router->Submit("alpha", Queries()[0]).get().ok());
  ASSERT_TRUE(router->Submit("alpha", Queries()[0]).get().ok());  // hit
  ASSERT_TRUE(router->Submit("beta", Queries()[1]).get().ok());

  const RouterStats stats = router->stats();
  ASSERT_EQ(stats.datasets.size(), 2u);
  EXPECT_EQ(stats.datasets[0].dataset, "alpha");
  EXPECT_EQ(stats.datasets[0].cache.hits, 1u);
  EXPECT_EQ(stats.datasets[0].cache.misses, 1u);
  EXPECT_EQ(stats.datasets[0].admission.admitted, 1u);
  EXPECT_EQ(stats.datasets[1].dataset, "beta");
  EXPECT_EQ(stats.datasets[1].cache.hits, 0u);
  EXPECT_EQ(stats.datasets[1].cache.misses, 1u);
  EXPECT_EQ(stats.datasets[1].admission.admitted, 1u);
  EXPECT_EQ(stats.datasets[0].epoch, 0u);
  EXPECT_EQ(stats.datasets[1].epoch, 0u);
}

// ReloadCorpus routes to the named service only: the reloaded dataset
// swaps snapshots (and bumps its epoch), the other keeps serving its
// corpus at epoch 0.
TEST_F(RouterServeTest, ReloadRoutesToNamedDatasetOnly) {
  const std::string path =
      ::testing::TempDir() + "/xsact_router_reload.xml";
  data::ProductReviewsConfig config;
  config.num_products = 26;
  config.seed = 42;
  const std::string beta_xml =
      xml::WriteDocument(data::GenerateProductReviews(config),
                         {.indent_width = 2, .declaration = true});
  ASSERT_TRUE(xml::WriteStringToFile(path, beta_xml).ok());
  // Parse-roundtripped corpus: its serve outcomes match a file reload.
  StatusOr<SnapshotPtr> reloaded_ref = CorpusSnapshot::FromXml(beta_xml);
  ASSERT_TRUE(reloaded_ref.ok()) << reloaded_ref.status();
  std::vector<std::string> expected_reloaded;
  for (const std::string& query : Queries()) {
    expected_reloaded.push_back(Expected(*reloaded_ref, query));
  }

  QueryServiceOptions options;
  options.num_threads = 2;
  StatusOr<ServiceRouter> router = MakeRouter(options);
  ASSERT_TRUE(router.ok()) << router.status();

  const Status reloaded = router->ReloadCorpus("alpha", path).get();
  ASSERT_TRUE(reloaded.ok()) << reloaded;
  EXPECT_EQ(router->service("alpha")->snapshot_epoch(), 1u);
  EXPECT_EQ(router->service("beta")->snapshot_epoch(), 0u);
  for (size_t q = 0; q < Queries().size(); ++q) {
    EXPECT_EQ(Fingerprint(router->Submit("alpha", Queries()[q]).get()),
              expected_reloaded[q]);
    EXPECT_EQ(Fingerprint(router->Submit("beta", Queries()[q]).get()),
              expected_beta_[q]);
  }
  std::remove(path.c_str());
}

// One dataset fed a corrupt corpus must not take the router down: the
// failed reload leaves that dataset serving its last-known-good
// snapshot, its health (and the underlying error) shows up in
// RouterStats, and the healthy dataset is untouched.
TEST_F(RouterServeTest, CorruptDatasetDegradesAloneAndReportsHealth) {
  const std::string corrupt_path =
      ::testing::TempDir() + "/xsact_router_corrupt.xml";
  ASSERT_TRUE(
      xml::WriteStringToFile(corrupt_path,
                             "<products><product><name>truncated mid-tag")
          .ok());

  QueryServiceOptions options;
  options.num_threads = 1;
  options.enable_cache = false;
  StatusOr<ServiceRouter> router = MakeRouter(options);
  ASSERT_TRUE(router.ok()) << router.status();

  const Status failed = router->ReloadCorpus("beta", corrupt_path).get();
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.ToString().find(corrupt_path), std::string::npos)
      << "reload error must carry the failing path: " << failed;

  // Both datasets keep serving; beta serves its last-known-good corpus.
  for (size_t q = 0; q < Queries().size(); ++q) {
    EXPECT_EQ(Fingerprint(router->Submit("alpha", Queries()[q]).get()),
              expected_alpha_[q]);
    EXPECT_EQ(Fingerprint(router->Submit("beta", Queries()[q]).get()),
              expected_beta_[q]);
  }
  EXPECT_EQ(router->service("beta")->snapshot_epoch(), 0u)
      << "failed reload must not advance the serving state";

  const RouterStats stats = router->stats();
  ASSERT_EQ(stats.datasets.size(), 2u);
  EXPECT_EQ(stats.datasets[0].dataset, "alpha");
  EXPECT_TRUE(stats.datasets[0].health.healthy);
  EXPECT_EQ(stats.datasets[1].dataset, "beta");
  EXPECT_FALSE(stats.datasets[1].health.healthy);
  EXPECT_EQ(stats.datasets[1].health.reload_failures, 1u);
  EXPECT_FALSE(stats.datasets[1].health.last_error.empty());
  EXPECT_EQ(stats.total_unhealthy(), 1u);

  // A good reload restores beta's health.
  const std::string good_path =
      ::testing::TempDir() + "/xsact_router_recover.xml";
  data::ProductReviewsConfig config;
  config.num_products = 26;
  config.seed = 42;
  ASSERT_TRUE(
      xml::WriteStringToFile(
          good_path,
          xml::WriteDocument(data::GenerateProductReviews(config),
                             {.indent_width = 2, .declaration = true}))
          .ok());
  const Status recovered = router->ReloadCorpus("beta", good_path).get();
  ASSERT_TRUE(recovered.ok()) << recovered;
  EXPECT_TRUE(router->stats().datasets[1].health.healthy);
  EXPECT_EQ(router->stats().total_unhealthy(), 0u);
  EXPECT_EQ(router->service("beta")->snapshot_epoch(), 1u);

  std::remove(corrupt_path.c_str());
  std::remove(good_path.c_str());
}

}  // namespace
}  // namespace xsact::engine
