// Negative fixture: uses raw std::mutex / std::lock_guard instead of
// the annotated xsact::Mutex. tools/lint/run_lint.py MUST flag both
// ([raw-mutex]) — a raw mutex is invisible to -Wthread-safety, so the
// lint is the only gate that catches it. If run_lint.py passes this
// file, the lint is dead — check_fixtures.py fails the CI job.
//
// Not part of the normal build: linted only by
// tests/static_analysis/check_fixtures.py.

#include <mutex>

namespace {

std::mutex g_mu;
int g_count = 0;

}  // namespace

int FixtureMain() {
  std::lock_guard<std::mutex> lock(g_mu);
  return ++g_count;
}
