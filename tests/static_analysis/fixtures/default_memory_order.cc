// Negative fixture: atomic operations with the defaulted (seq_cst)
// memory order. tools/lint/run_lint.py MUST flag both the load and the
// fetch_add ([memory-order]) — the codebase spells ordering out
// everywhere so cost and intent stay visible. If run_lint.py passes
// this file, the lint is dead — check_fixtures.py fails the CI job.
//
// Not part of the normal build: linted only by
// tests/static_analysis/check_fixtures.py.

#include <atomic>

namespace {

std::atomic<int> g_count{0};

}  // namespace

int FixtureMain() {
  g_count.fetch_add(1);  // BUG (deliberate): no memory_order argument
  return g_count.load();  // BUG (deliberate): no memory_order argument
}
