// Negative fixture: calls an XSACT_REQUIRES(mu_) method without holding
// the mutex. clang -Wthread-safety -Werror MUST refuse to compile this
// file (expected diagnostic: "calling function 'InsertLocked' requires
// holding mutex 'mu_' exclusively"). If it ever compiles, the
// thread-safety gate is dead — check_fixtures.py fails the CI job.
//
// Not part of the normal build: compiled only by
// tests/static_analysis/check_fixtures.py.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Table {
 public:
  void InsertLocked(int key) XSACT_REQUIRES(mu_) { last_ = key; }

  // BUG (deliberate): lock-free call into a REQUIRES method.
  void Insert(int key) { InsertLocked(key); }

 private:
  xsact::Mutex mu_;
  int last_ XSACT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int FixtureMain() {
  Table table;
  table.Insert(7);
  return 0;
}
