// Negative fixture (header half): declares an event-loop function whose
// definition in blocking_event_loop.cc sleeps. tools/lint/run_lint.py
// MUST flag the sleep ([blocking-call]). See blocking_event_loop.cc.
//
// Not part of the normal build: linted only by
// tests/static_analysis/check_fixtures.py.

#ifndef XSACT_TESTS_STATIC_ANALYSIS_FIXTURES_BLOCKING_EVENT_LOOP_H_
#define XSACT_TESTS_STATIC_ANALYSIS_FIXTURES_BLOCKING_EVENT_LOOP_H_

#include "common/thread_annotations.h"

namespace xsact_fixture {

class Loop {
 public:
  XSACT_EVENT_LOOP_THREAD void Tick();
};

}  // namespace xsact_fixture

#endif  // XSACT_TESTS_STATIC_ANALYSIS_FIXTURES_BLOCKING_EVENT_LOOP_H_
