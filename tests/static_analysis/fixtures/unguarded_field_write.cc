// Negative fixture: writes a GUARDED_BY field without holding its
// mutex. clang -Wthread-safety -Werror MUST refuse to compile this file
// (expected diagnostic: -Wthread-safety-analysis, "writing variable
// 'value_' requires holding mutex 'mu_'"). If it ever compiles, the
// thread-safety gate is dead — check_fixtures.py fails the CI job.
//
// Not part of the normal build: compiled only by
// tests/static_analysis/check_fixtures.py.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  // BUG (deliberate): mutates value_ with mu_ not held.
  void Increment() { ++value_; }

 private:
  xsact::Mutex mu_;
  int value_ XSACT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int FixtureMain() {
  Counter counter;
  counter.Increment();
  return 0;
}
