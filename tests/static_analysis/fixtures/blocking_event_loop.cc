// Negative fixture: an XSACT_EVENT_LOOP_THREAD function that blocks.
// tools/lint/run_lint.py MUST flag the sleep_for ([blocking-call]) —
// one stalled callback stalls every connection the loop serves. If
// run_lint.py passes this file, the lint is dead — check_fixtures.py
// fails the CI job.
//
// Not part of the normal build: linted only by
// tests/static_analysis/check_fixtures.py.

#include "blocking_event_loop.h"

#include <chrono>
#include <thread>

namespace xsact_fixture {

// BUG (deliberate): sleeping on the event-loop thread.
void Loop::Tick() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

}  // namespace xsact_fixture
