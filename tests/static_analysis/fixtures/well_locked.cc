// Control fixture: correct locking discipline. This file MUST compile
// clean under clang -Wthread-safety -Werror and pass tools/lint — it
// proves the gates are wired up (a broken harness would "reject" it for
// unrelated reasons and check_fixtures.py would catch that).
//
// Not part of the normal build: compiled only by
// tests/static_analysis/check_fixtures.py.

#include <atomic>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() XSACT_EXCLUDES(mu_) {
    xsact::MutexLock lock(mu_);
    ++value_;
  }

  int Get() const XSACT_EXCLUDES(mu_) {
    xsact::MutexLock lock(mu_);
    return value_;
  }

  int GetLocked() const XSACT_REQUIRES(mu_) { return value_; }

  void Wake() { ready_.store(true, std::memory_order_release); }
  bool Ready() const { return ready_.load(std::memory_order_acquire); }

 private:
  mutable xsact::Mutex mu_;
  int value_ XSACT_GUARDED_BY(mu_) = 0;
  std::atomic<bool> ready_{false};
};

}  // namespace

int FixtureMain() {
  Counter counter;
  counter.Increment();
  counter.Wake();
  return counter.Get() + static_cast<int>(counter.Ready());
}
