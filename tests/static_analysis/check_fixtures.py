#!/usr/bin/env python3
"""Proves the static-analysis gates bite: every negative fixture in
tests/static_analysis/fixtures/ must be REJECTED by its gate, and the
well_locked.cc control must PASS — a gate that accepts a known-bad file
(or rejects a known-good one) is dead and this script fails the build.

Two gate families:

  clang -Wthread-safety -Werror  (unguarded_field_write.cc,
      requires_without_lock.cc; well_locked.cc as the positive control).
      Needs a clang++ on PATH (or $CLANGXX); skipped with a notice when
      absent — pass --require-clang (the CI mode) to make absence fatal.

  tools/lint/run_lint.py  (raw_mutex.cc, blocking_event_loop.{h,cc},
      default_memory_order.cc; well_locked.cc as the positive control).
      Pure stdlib — always runs.

Exit status: 0 = all gates bite, 1 = a gate is dead, 2 = harness error.
"""

import argparse
import pathlib
import shutil
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parent.parent
FIXTURES = HERE / "fixtures"
RUN_LINT = REPO_ROOT / "tools" / "lint" / "run_lint.py"

THREAD_SAFETY_FLAGS = [
    "-std=c++17", "-fsyntax-only", "-Wthread-safety", "-Werror",
    "-I", str(REPO_ROOT / "src"),
]

failures = []


def fail(message):
    print(f"FAIL: {message}")
    failures.append(message)


def ok(message):
    print(f"  ok: {message}")


def clang_rejects(clangxx, fixture):
    result = subprocess.run(
        [clangxx] + THREAD_SAFETY_FLAGS + [str(fixture)],
        capture_output=True, text=True)
    return result.returncode != 0, result.stderr


def check_thread_safety(clangxx):
    accepted, stderr = clang_rejects(clangxx, FIXTURES / "well_locked.cc")
    if accepted:  # rejected the control → harness is broken
        fail("thread-safety gate rejected the well_locked.cc control:\n"
             + stderr)
        return
    ok("well_locked.cc compiles clean (control)")
    for name in ("unguarded_field_write.cc", "requires_without_lock.cc"):
        rejected, stderr = clang_rejects(clangxx, FIXTURES / name)
        if not rejected:
            fail(f"thread-safety gate ACCEPTED {name} — the gate is dead")
        elif "-Wthread-safety" not in stderr and "thread-safety" not in stderr:
            fail(f"{name} was rejected, but not by the thread-safety "
                 f"analysis:\n{stderr}")
        else:
            ok(f"{name} rejected by -Wthread-safety")


def lint(paths):
    result = subprocess.run(
        [sys.executable, str(RUN_LINT), "--skip-fault-docs"]
        + [str(p) for p in paths],
        capture_output=True, text=True)
    return result.returncode, result.stdout


def check_lint():
    code, out = lint([FIXTURES / "well_locked.cc"])
    if code != 0:
        fail(f"lint rejected the well_locked.cc control:\n{out}")
        return
    ok("well_locked.cc lints clean (control)")
    expectations = [
        ([FIXTURES / "raw_mutex.cc"], "[raw-mutex]"),
        ([FIXTURES / "blocking_event_loop.h",
          FIXTURES / "blocking_event_loop.cc"], "[blocking-call]"),
        ([FIXTURES / "default_memory_order.cc"], "[memory-order]"),
    ]
    for paths, tag in expectations:
        names = ", ".join(p.name for p in paths)
        code, out = lint(paths)
        if code == 0:
            fail(f"lint ACCEPTED {names} — the {tag} check is dead")
        elif tag not in out:
            fail(f"lint rejected {names}, but without a {tag} finding:\n{out}")
        else:
            ok(f"{names} rejected with {tag}")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--require-clang", action="store_true",
        help="fail (instead of skip) when no clang++ is available — "
             "the CI static-analysis job sets this")
    parser.add_argument(
        "--clangxx", default=None,
        help="clang++ binary to use (default: $CLANGXX, then PATH)")
    args = parser.parse_args(argv)

    if not FIXTURES.is_dir():
        print(f"harness error: no fixtures dir at {FIXTURES}")
        return 2

    import os
    clangxx = args.clangxx or os.environ.get("CLANGXX") or shutil.which(
        "clang++")
    if clangxx:
        print(f"thread-safety fixtures (compiler: {clangxx}):")
        check_thread_safety(clangxx)
    elif args.require_clang:
        print("harness error: --require-clang set but no clang++ found")
        return 2
    else:
        print("thread-safety fixtures: SKIPPED (no clang++ on this "
              "machine; the CI static-analysis job runs them)")

    print("lint fixtures:")
    check_lint()

    if failures:
        print(f"{len(failures)} dead gate(s)")
        return 1
    print("all gates bite")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
