// Concurrency equivalence suite for the two-tier serving core.
//
// The contract under test: any number of threads serving queries against
// one shared immutable CorpusSnapshot — through raw QuerySessions or the
// QueryService pool — produce outcomes BYTE-IDENTICAL to single-threaded
// serving (tables, explanations, DFSs, DoD), and session/workspace reuse
// across sequential queries never changes output either. Plus unit tests
// for the sharded LRU result cache (hit/miss counters, LRU eviction,
// options-fingerprint discrimination, query normalization) and the
// session pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/movies.h"
#include "data/product_reviews.h"
#include "engine/query_service.h"
#include "engine/session.h"
#include "engine/snapshot.h"
#include "engine/xsact.h"
#include "table/explainer.h"
#include "table/renderer.h"

namespace xsact {
namespace {

using engine::CacheStats;
using engine::CompareOptions;
using engine::ComparisonOutcome;
using engine::CorpusSnapshot;
using engine::OutcomePtr;
using engine::QueryService;
using engine::QueryServiceOptions;
using engine::QuerySession;
using engine::SessionPool;
using engine::SnapshotPtr;

/// One workload item: a query plus the options it runs under.
struct WorkItem {
  std::string query;
  CompareOptions options;
};

/// Renders everything an outcome carries that a user could observe.
std::string RenderOutcome(const ComparisonOutcome& outcome) {
  std::string out = table::RenderAscii(outcome.table);
  out += "total_dod=" + std::to_string(outcome.total_dod) + "\n";
  for (const table::Explanation& e :
       table::ExplainDifferences(outcome.instance, outcome.dfss, 5)) {
    out += e.text + "\n";
  }
  for (const core::Dfs& dfs : outcome.dfss) {
    out += dfs.ToString(outcome.instance) + "\n";
  }
  return out;
}

/// The movie evaluation workload (8 queries of varying result-set size)
/// against the default movie corpus.
std::vector<WorkItem> MovieWorkload() {
  std::vector<WorkItem> items;
  for (const data::QuerySpec& spec : data::MovieQueryWorkload()) {
    WorkItem item;
    item.query = spec.query;
    item.options.selector.size_bound = spec.size_bound;
    items.push_back(std::move(item));
  }
  return items;
}

class ConcurrentServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    snapshot_ = new SnapshotPtr(
        CorpusSnapshot::Build(data::GenerateMovies({})));
    workload_ = new std::vector<WorkItem>(MovieWorkload());
    // Single-threaded reference: one fresh session per query.
    reference_ = new std::vector<std::string>();
    for (const WorkItem& item : *workload_) {
      QuerySession session;
      auto outcome = engine::SearchAndCompare(**snapshot_, &session,
                                              item.query, 0, item.options);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      reference_->push_back(RenderOutcome(*outcome));
    }
  }

  static void TearDownTestSuite() {
    delete reference_;
    reference_ = nullptr;
    delete workload_;
    workload_ = nullptr;
    delete snapshot_;
    snapshot_ = nullptr;
  }

  static SnapshotPtr* snapshot_;
  static std::vector<WorkItem>* workload_;
  static std::vector<std::string>* reference_;
};

SnapshotPtr* ConcurrentServeTest::snapshot_ = nullptr;
std::vector<WorkItem>* ConcurrentServeTest::workload_ = nullptr;
std::vector<std::string>* ConcurrentServeTest::reference_ = nullptr;

// N raw threads x M queries against one shared snapshot, each thread
// reusing one private session: every outcome must match the
// single-threaded reference byte for byte.
TEST_F(ConcurrentServeTest, RawThreadsAreByteIdenticalToSingleThread) {
  constexpr int kThreads = 8;
  const std::vector<WorkItem>& workload = *workload_;
  std::vector<std::vector<std::string>> rendered(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &workload, &rendered] {
      QuerySession session;  // private per thread, reused across queries
      std::vector<std::string>& out = rendered[static_cast<size_t>(t)];
      out.resize(workload.size());
      // Each thread walks the workload at a different offset so distinct
      // queries overlap in time across threads.
      for (size_t k = 0; k < workload.size(); ++k) {
        const size_t q = (k + static_cast<size_t>(t)) % workload.size();
        const WorkItem& item = workload[q];
        auto outcome = engine::SearchAndCompare(
            **snapshot_, &session, item.query, 0, item.options);
        ASSERT_TRUE(outcome.ok()) << outcome.status();
        out[q] = RenderOutcome(*outcome);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (size_t q = 0; q < workload.size(); ++q) {
      EXPECT_EQ(rendered[static_cast<size_t>(t)][q], (*reference_)[q])
          << "thread " << t << ", query \"" << workload[q].query << "\"";
    }
  }
}

// Workspace reuse must never leak state between queries: a session that
// has already served the whole workload still reproduces the
// fresh-session reference exactly.
TEST_F(ConcurrentServeTest, SessionReuseMatchesFreshSession) {
  QuerySession warmed;
  for (const WorkItem& item : *workload_) {
    auto outcome = engine::SearchAndCompare(**snapshot_, &warmed, item.query,
                                            0, item.options);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
  }
  for (size_t q = 0; q < workload_->size(); ++q) {
    const WorkItem& item = (*workload_)[q];
    auto outcome = engine::SearchAndCompare(**snapshot_, &warmed, item.query,
                                            0, item.options);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(RenderOutcome(*outcome), (*reference_)[q])
        << "query \"" << item.query << "\"";
  }
}

// The Xsact facade serves through the same snapshot+pool machinery; its
// concurrent calls must match the reference too.
TEST_F(ConcurrentServeTest, XsactFacadeIsThreadSafe) {
  const engine::Xsact xsact(*snapshot_);
  constexpr int kThreads = 4;
  std::vector<std::vector<std::string>> rendered(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &xsact, &rendered] {
      for (const WorkItem& item : *workload_) {
        auto outcome = xsact.SearchAndCompare(item.query, 0, item.options);
        ASSERT_TRUE(outcome.ok()) << outcome.status();
        rendered[static_cast<size_t>(t)].push_back(RenderOutcome(*outcome));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(rendered[static_cast<size_t>(t)].size(), reference_->size());
    for (size_t q = 0; q < reference_->size(); ++q) {
      EXPECT_EQ(rendered[static_cast<size_t>(t)][q], (*reference_)[q]);
    }
  }
}

// QueryService end to end: a multi-threaded batch (every query three
// times, interleaved) returns reference-identical outcomes.
TEST_F(ConcurrentServeTest, QueryServiceBatchIsByteIdentical) {
  QueryServiceOptions options;
  options.num_threads = 4;
  options.enable_cache = false;
  QueryService service(*snapshot_, options);
  ASSERT_EQ(service.num_threads(), 4);

  constexpr int kRepeats = 3;
  std::vector<std::future<StatusOr<OutcomePtr>>> futures;
  for (int r = 0; r < kRepeats; ++r) {
    for (const WorkItem& item : *workload_) {
      futures.push_back(service.Submit(item.query, item.options));
    }
  }
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t q = 0; q < workload_->size(); ++q) {
      auto outcome = futures[static_cast<size_t>(r) * workload_->size() + q]
                         .get();
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      EXPECT_EQ(RenderOutcome(**outcome), (*reference_)[q]);
    }
  }
}

// Submitting an error query resolves the future with the error status.
TEST_F(ConcurrentServeTest, QueryServicePropagatesErrors) {
  QueryService service(*snapshot_, {});
  auto outcome = service.Submit("   ").get();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(service.cache_stats().entries, 0u) << "errors must not be cached";
}

TEST(QueryNormalizationTest, CollapsesWhitespaceCaseAndPunctuation) {
  EXPECT_EQ(QueryService::NormalizeQuery("  GPS   tomtom "), "gps tomtom");
  EXPECT_EQ(QueryService::NormalizeQuery("gps, TomTom!"), "gps tomtom");
  EXPECT_EQ(QueryService::NormalizeQuery("director:Moreau"),
            "director:moreau");
  EXPECT_EQ(QueryService::NormalizeQuery(""), "");
}

TEST(OptionsFingerprintTest, DiscriminatesOutcomeRelevantFields) {
  const CompareOptions base;
  CompareOptions bound = base;
  bound.selector.size_bound = 3;
  CompareOptions threshold = base;
  threshold.diff_threshold = 0.25;
  CompareOptions lift = base;
  lift.lift_results_to = "brand";
  CompareOptions capped = base;
  capped.max_compared = 4;
  const std::string fp = QueryService::OptionsFingerprint(base);
  EXPECT_NE(fp, QueryService::OptionsFingerprint(bound));
  EXPECT_NE(fp, QueryService::OptionsFingerprint(threshold));
  EXPECT_NE(fp, QueryService::OptionsFingerprint(lift));
  EXPECT_NE(fp, QueryService::OptionsFingerprint(capped));
  EXPECT_EQ(fp, QueryService::OptionsFingerprint(CompareOptions{}));
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    snapshot_ = CorpusSnapshot::Build(data::GenerateMovies({}));
  }
  SnapshotPtr snapshot_;
};

// A repeated query is answered from the cache: one miss, then hits that
// return the SAME shared outcome object.
TEST_F(CacheTest, RepeatedQueryHits) {
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(snapshot_, options);

  auto first = service.Submit("star").get();
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = service.Submit("star").get();
  ASSERT_TRUE(second.ok()) << second.status();

  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(first->get(), second->get()) << "hit must share the outcome";
}

// Whitespace/case variants of one query share a cache entry.
TEST_F(CacheTest, NormalizedVariantsShareAnEntry) {
  QueryService service(snapshot_, {});
  auto first = service.Submit("star").get();
  ASSERT_TRUE(first.ok()) << first.status();
  auto variant = service.Submit("  STAR ").get();
  ASSERT_TRUE(variant.ok()) << variant.status();
  EXPECT_EQ(service.cache_stats().hits, 1u);
  EXPECT_EQ(first->get(), variant->get());
}

// Different options under the same query must NOT share an entry.
TEST_F(CacheTest, DifferentOptionsMiss) {
  QueryService service(snapshot_, {});
  CompareOptions narrow;
  narrow.selector.size_bound = 2;
  auto base = service.Submit("star").get();
  ASSERT_TRUE(base.ok()) << base.status();
  auto narrowed = service.Submit("star", narrow).get();
  ASSERT_TRUE(narrowed.ok()) << narrowed.status();
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_NE(base->get(), narrowed->get());
}

// LRU eviction: with capacity 2 (one shard), a third distinct query
// evicts the least recently used entry, which then misses again.
TEST_F(CacheTest, LruEvictsLeastRecentlyUsed) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_shards = 1;
  options.cache_capacity = 2;
  QueryService service(snapshot_, options);

  ASSERT_TRUE(service.Submit("star").get().ok());     // miss -> {star}
  ASSERT_TRUE(service.Submit("galaxy").get().ok());  // miss -> {star,galaxy}
  // Touch "star" so "galaxy" becomes the LRU entry.
  ASSERT_TRUE(service.Submit("star").get().ok());  // hit
  ASSERT_TRUE(service.Submit("dragon").get().ok());  // evicts galaxy
  CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);

  ASSERT_TRUE(service.Submit("star").get().ok());  // still cached
  EXPECT_EQ(service.cache_stats().hits, 2u);
  ASSERT_TRUE(service.Submit("galaxy").get().ok());  // evicted: miss
  EXPECT_EQ(service.cache_stats().misses, 4u);
}

// Shard capacities must sum EXACTLY to cache_capacity — the former
// max(1, capacity/shards) rounding drifted in both directions
// (capacity=1, shards=8 admitted 8 entries; 100/8 admitted 96).
TEST_F(CacheTest, ShardCapacitiesSumExactlyToConfiguredCapacity) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_shards = 8;
  options.cache_capacity = 100;
  QueryService service(snapshot_, options);
  const std::vector<size_t>& capacities = service.cache_shard_capacities();
  ASSERT_EQ(capacities.size(), 8u);
  size_t total = 0;
  size_t lo = capacities[0];
  size_t hi = capacities[0];
  for (const size_t capacity : capacities) {
    total += capacity;
    lo = std::min(lo, capacity);
    hi = std::max(hi, capacity);
  }
  EXPECT_EQ(total, 100u);
  EXPECT_LE(hi - lo, 1u) << "remainder must spread evenly";
}

// capacity < shards: the total stays the configured capacity (shards
// beyond the remainder get 0 and never store), so a capacity-1 cache
// holds at most ONE entry no matter how many shards stripe it.
TEST_F(CacheTest, TinyCapacityNeverExceedsConfiguredTotal) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_shards = 8;
  options.cache_capacity = 1;
  QueryService service(snapshot_, options);

  size_t total = 0;
  for (const size_t capacity : service.cache_shard_capacities()) {
    total += capacity;
  }
  EXPECT_EQ(total, 1u);

  for (const char* query : {"star", "galaxy", "dragon"}) {
    ASSERT_TRUE(service.Submit(query).get().ok());
    EXPECT_LE(service.cache_stats().entries, 1u);
  }
}

// A zero-capacity cache is just disabled: no entries, no counter churn.
TEST_F(CacheTest, ZeroCapacityDisablesCache) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  QueryService service(snapshot_, options);
  EXPECT_TRUE(service.cache_shard_capacities().empty());
  ASSERT_TRUE(service.Submit("star").get().ok());
  ASSERT_TRUE(service.Submit("star").get().ok());
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// std::thread::hardware_concurrency() may legitimately return 0 ("not
// computable"); the pool must still come up with one worker, or every
// Submit would queue forever. The options seam pins the reported value.
TEST_F(CacheTest, ZeroHardwareConcurrencyClampsToOneWorker) {
  QueryServiceOptions options;
  options.num_threads = 0;  // resolve from "hardware"
  options.hardware_concurrency_override = 0;
  QueryService service(snapshot_, options);
  EXPECT_EQ(service.num_threads(), 1);
  auto outcome = service.Submit("star").get();
  EXPECT_TRUE(outcome.ok()) << outcome.status();
}

// The pool recycles released sessions instead of constructing new ones.
TEST(SessionPoolTest, RecyclesSessions) {
  SessionPool pool;
  EXPECT_EQ(pool.IdleCount(), 0u);
  QuerySession* first = nullptr;
  {
    SessionPool::Lease lease = pool.Acquire();
    first = lease.get();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(pool.IdleCount(), 0u);
  }
  EXPECT_EQ(pool.IdleCount(), 1u);
  {
    SessionPool::Lease lease = pool.Acquire();
    EXPECT_EQ(lease.get(), first) << "released session must be reused";
    EXPECT_EQ(pool.IdleCount(), 0u);
  }
  EXPECT_EQ(pool.IdleCount(), 1u);
}

TEST(SessionPoolTest, ConcurrentAcquireIsSafe) {
  SessionPool pool;
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kIterations; ++i) {
        SessionPool::Lease lease = pool.Acquire();
        ASSERT_NE(lease.get(), nullptr);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(pool.IdleCount(), static_cast<size_t>(kThreads));
}

}  // namespace
}  // namespace xsact
