// Unit tests for the comparison table model and its renderers.

#include <gtest/gtest.h>

#include "core/multi_swap.h"
#include "core/snippet_selector.h"
#include "data/paper_example.h"
#include "table/comparison_table.h"
#include "table/renderer.h"
#include "test_util.h"

namespace xsact::table {
namespace {

using core::SelectorOptions;

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gps_ = data::BuildPaperGpsInstance(/*augmented=*/true);
    SelectorOptions options;
    options.size_bound = 7;
    dfss_ = core::MultiSwapOptimizer().Select(gps_.instance, options);
    table_ = BuildComparisonTable(gps_.instance, dfss_);
  }

  data::PaperGpsInstance gps_{nullptr, core::ComparisonInstance()};
  std::vector<core::Dfs> dfss_;
  ComparisonTable table_;
};

TEST_F(TableTest, HeadersAreResultLabels) {
  ASSERT_EQ(table_.headers.size(), 2u);
  EXPECT_EQ(table_.headers[0], "TomTom Go 630 Portable GPS");
  EXPECT_EQ(table_.headers[1], "TomTom Go 730 (Tri-linguial) BOX");
}

TEST_F(TableTest, RowsCoverUnionOfSelectedTypes) {
  // Both DFSs have 7 features; >= 6 types are shared, so the union has
  // at most 8 rows and at least 7.
  EXPECT_GE(table_.rows.size(), 7u);
  EXPECT_LE(table_.rows.size(), 8u);
  for (const TableRow& row : table_.rows) {
    EXPECT_EQ(row.cells.size(), 2u);
    EXPECT_GE(row.selected_in, 1);
  }
}

TEST_F(TableTest, DifferentiatingRowsSortFirstAndDodRecorded) {
  EXPECT_EQ(table_.total_dod, 6);
  ASSERT_FALSE(table_.rows.empty());
  EXPECT_TRUE(table_.rows.front().differentiating);
  // Once a non-differentiating row appears, no differentiating row may
  // follow (sort stability).
  bool seen_plain = false;
  int differentiating = 0;
  for (const TableRow& row : table_.rows) {
    if (!row.differentiating) {
      seen_plain = true;
    } else {
      EXPECT_FALSE(seen_plain);
      ++differentiating;
    }
  }
  EXPECT_EQ(differentiating, 6);  // matches the DoD for two results
}

TEST_F(TableTest, CellsShowValueAndPercentage) {
  // Find the pro:compact row: 73% vs 56%.
  bool found = false;
  for (const TableRow& row : table_.rows) {
    if (row.label == "review.pro: compact") {
      found = true;
      EXPECT_EQ(row.cells[0], "yes (73%)");
      EXPECT_EQ(row.cells[1], "yes (56%)");
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TableTest, AbsentTypesRenderAsDash) {
  // Build a table where one side lacks a type: use snippets at L=5.
  SelectorOptions options;
  options.size_bound = 5;
  auto snippets = core::SnippetSelector().Select(gps_.instance, options);
  ComparisonTable t = BuildComparisonTable(gps_.instance, snippets);
  bool dash_seen = false;
  for (const TableRow& row : t.rows) {
    for (const std::string& cell : row.cells) {
      if (cell == "-") dash_seen = true;
    }
  }
  EXPECT_TRUE(dash_seen);
  EXPECT_EQ(t.total_dod, 2);
}

TEST_F(TableTest, AsciiRendering) {
  const std::string out = RenderAscii(table_);
  EXPECT_NE(out.find("TomTom Go 630 Portable GPS"), std::string::npos);
  EXPECT_NE(out.find("review.pro: compact"), std::string::npos);
  EXPECT_NE(out.find("total DoD: 6"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);  // box ruling
}

TEST_F(TableTest, MarkdownRendering) {
  const std::string out = RenderMarkdown(table_);
  EXPECT_NE(out.find("| feature |"), std::string::npos);
  EXPECT_NE(out.find("| --- |"), std::string::npos);
}

TEST_F(TableTest, HtmlRenderingEscapes) {
  const std::string out = RenderHtml(table_);
  EXPECT_NE(out.find("<table class=\"xsact-comparison\">"),
            std::string::npos);
  EXPECT_NE(out.find("TomTom Go 730 (Tri-linguial) BOX"), std::string::npos);
  EXPECT_EQ(out.find("<script"), std::string::npos);
}

TEST(RendererEscapingTest, HtmlEscapesDangerousContent) {
  ComparisonTable t;
  t.headers = {"<script>alert(1)</script>"};
  TableRow row;
  row.label = "a&b";
  row.cells = {"\"quoted\""};
  t.rows.push_back(row);
  const std::string out = RenderHtml(t);
  EXPECT_EQ(out.find("<script>alert"), std::string::npos);
  EXPECT_NE(out.find("&lt;script&gt;"), std::string::npos);
  EXPECT_NE(out.find("a&amp;b"), std::string::npos);
  EXPECT_NE(out.find("&quot;quoted&quot;"), std::string::npos);
}

TEST(RendererEscapingTest, CsvQuotesAndDoublesQuotes) {
  ComparisonTable t;
  t.headers = {"col,with,commas"};
  TableRow row;
  row.label = "say \"hi\"";
  row.cells = {"v1"};
  t.rows.push_back(row);
  const std::string out = RenderCsv(t);
  EXPECT_NE(out.find("\"col,with,commas\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(RendererEscapingTest, JsonEscapesControlCharacters) {
  ComparisonTable t;
  t.headers = {"h"};
  TableRow row;
  row.label = "line\nbreak\t\"q\"\\";
  row.cells = {"v"};
  row.differentiating = true;
  t.rows.push_back(row);
  t.total_dod = 3;
  const std::string out = RenderJson(t);
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\\t"), std::string::npos);
  EXPECT_NE(out.find("\\\""), std::string::npos);
  EXPECT_NE(out.find("\\\\"), std::string::npos);
  EXPECT_NE(out.find("\"total_dod\":3"), std::string::npos);
  EXPECT_NE(out.find("\"differentiating\":true"), std::string::npos);
}

TEST(RendererEmptyTest, EmptyTableRendersHeadersOnly) {
  ComparisonTable t;
  t.headers = {"a", "b"};
  EXPECT_NE(RenderAscii(t).find("feature"), std::string::npos);
  EXPECT_NE(RenderMarkdown(t).find("| feature |"), std::string::npos);
  EXPECT_NE(RenderCsv(t).find("\"feature\""), std::string::npos);
  EXPECT_NE(RenderJson(t).find("\"rows\":[]"), std::string::npos);
}

}  // namespace
}  // namespace xsact::table
