// Snapshot hot-swap tests: queries racing ReloadCorpus/SwapSnapshot must
// each be served from exactly one snapshot (outcomes byte-identical to
// single-threaded serving against that snapshot — never a mix), the
// result cache must be epoch-invalidated, and a failed reload must leave
// the serving snapshot untouched. Runs under the TSAN CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/product_reviews.h"
#include "engine/query_service.h"
#include "engine/router.h"
#include "engine/session.h"
#include "engine/snapshot.h"
#include "table/renderer.h"
#include "xml/io.h"
#include "xml/writer.h"

namespace xsact::engine {
namespace {

const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      "gps", "camera", "battery life", "kind:laptop", "nosuchterm"};
  return queries;
}

/// Deterministic byte fingerprint of a serve outcome (table + DoD, or
/// the error text). Byte-identity across sessions is the PR 3 invariant,
/// so equal fingerprints mean equal outcomes.
std::string Fingerprint(const StatusOr<OutcomePtr>& outcome) {
  if (!outcome.ok()) return "ERR:" + outcome.status().ToString();
  return table::RenderAscii((*outcome)->table) + "#" +
         std::to_string((*outcome)->total_dod);
}

/// Single-threaded reference outcome for `query` against `snapshot`.
std::string Expected(const SnapshotPtr& snapshot, const std::string& query) {
  QuerySession session;
  StatusOr<ComparisonOutcome> outcome =
      SearchAndCompare(*snapshot, &session, query);
  if (!outcome.ok()) {
    return "ERR:" + outcome.status().ToString();
  }
  return table::RenderAscii(outcome->table) + "#" +
         std::to_string(outcome->total_dod);
}

class HotSwapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two distinct corpora; B is built through serialize+parse so its
    // outcomes match what a file reload produces.
    data::ProductReviewsConfig config_a;
    config_a.num_products = 24;
    config_a.seed = 1;
    snapshot_a_ = CorpusSnapshot::Build(data::GenerateProductReviews(config_a));
    data::ProductReviewsConfig config_b;
    config_b.num_products = 30;
    config_b.seed = 7;
    xml_b_ = xml::WriteDocument(data::GenerateProductReviews(config_b),
                                {.indent_width = 2, .declaration = true});
    auto parsed = CorpusSnapshot::FromXml(xml_b_);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    snapshot_b_ = *parsed;

    for (const std::string& query : Queries()) {
      expected_a_.push_back(Expected(snapshot_a_, query));
      expected_b_.push_back(Expected(snapshot_b_, query));
    }
    // The corpora must actually differ, or "never a mixed outcome" is
    // vacuous.
    ASSERT_NE(expected_a_[0], expected_b_[0]);
  }

  SnapshotPtr snapshot_a_;
  SnapshotPtr snapshot_b_;
  std::string xml_b_;
  std::vector<std::string> expected_a_;
  std::vector<std::string> expected_b_;
};

TEST_F(HotSwapTest, SwapPublishesNewSnapshotAndBumpsEpoch) {
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(snapshot_a_, options);
  EXPECT_EQ(service.snapshot_epoch(), 0u);
  EXPECT_EQ(service.snapshot(), snapshot_a_);

  EXPECT_EQ(Fingerprint(service.Submit(Queries()[0]).get()), expected_a_[0]);
  service.SwapSnapshot(snapshot_b_);
  EXPECT_EQ(service.snapshot_epoch(), 1u);
  EXPECT_EQ(service.snapshot(), snapshot_b_);
  for (size_t q = 0; q < Queries().size(); ++q) {
    EXPECT_EQ(Fingerprint(service.Submit(Queries()[q]).get()),
              expected_b_[q]);
  }
}

TEST_F(HotSwapTest, QueriesRacingSwapsNeverMixSnapshots) {
  QueryServiceOptions options;
  options.num_threads = 4;
  options.enable_cache = false;
  QueryService service(snapshot_a_, options);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 60;
  std::atomic<bool> failed{false};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const size_t q = static_cast<size_t>(t + i) % Queries().size();
        const std::string got = Fingerprint(service.Submit(Queries()[q]).get());
        if (got != expected_a_[q] && got != expected_b_[q]) {
          failed.store(true);
          ADD_FAILURE() << "mixed-snapshot outcome for query '" << Queries()[q]
                        << "'";
        }
      }
    });
  }
  // Race: swap back and forth while the submitters hammer the service.
  for (int swap = 0; swap < 20; ++swap) {
    service.SwapSnapshot(swap % 2 == 0 ? snapshot_b_ : snapshot_a_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& thread : submitters) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(service.snapshot_epoch(), 20u);

  // Settled: everything submitted from here on serves the last snapshot.
  for (size_t q = 0; q < Queries().size(); ++q) {
    EXPECT_EQ(Fingerprint(service.Submit(Queries()[q]).get()),
              expected_a_[q]);
  }
}

TEST_F(HotSwapTest, CacheIsEpochInvalidatedAcrossSwaps) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.enable_cache = true;
  QueryService service(snapshot_a_, options);

  EXPECT_EQ(Fingerprint(service.Submit(Queries()[0]).get()), expected_a_[0]);
  EXPECT_EQ(Fingerprint(service.Submit(Queries()[0]).get()), expected_a_[0]);
  CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  service.SwapSnapshot(snapshot_b_);
  // Same query, new epoch: must recompute against B, not serve stale A.
  EXPECT_EQ(Fingerprint(service.Submit(Queries()[0]).get()), expected_b_[0]);
  stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  // And the fresh entry serves hits under the new epoch.
  EXPECT_EQ(Fingerprint(service.Submit(Queries()[0]).get()), expected_b_[0]);
  EXPECT_EQ(service.cache_stats().hits, 2u);
}

TEST_F(HotSwapTest, ReloadCorpusSwapsInBackground) {
  const std::string path = ::testing::TempDir() + "/xsact_hot_swap_b.xml";
  ASSERT_TRUE(xml::WriteStringToFile(path, xml_b_).ok());

  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(snapshot_a_, options);
  EXPECT_EQ(Fingerprint(service.Submit(Queries()[0]).get()), expected_a_[0]);

  const Status reloaded = service.ReloadCorpus(path).get();
  ASSERT_TRUE(reloaded.ok()) << reloaded;
  EXPECT_EQ(service.snapshot_epoch(), 1u);
  for (size_t q = 0; q < Queries().size(); ++q) {
    EXPECT_EQ(Fingerprint(service.Submit(Queries()[q]).get()),
              expected_b_[q]);
  }
  std::remove(path.c_str());
}

TEST_F(HotSwapTest, FailedReloadLeavesServingStateUntouched) {
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(snapshot_a_, options);

  const Status missing = service.ReloadCorpus("/nonexistent/corpus.xml").get();
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(service.snapshot_epoch(), 0u);
  EXPECT_EQ(Fingerprint(service.Submit(Queries()[0]).get()), expected_a_[0]);

  // A malformed corpus is also rejected without a swap.
  const std::string path = ::testing::TempDir() + "/xsact_hot_swap_bad.xml";
  ASSERT_TRUE(xml::WriteStringToFile(path, "<broken").ok());
  const Status malformed = service.ReloadCorpus(path).get();
  EXPECT_FALSE(malformed.ok());
  EXPECT_EQ(service.snapshot_epoch(), 0u);
  EXPECT_EQ(Fingerprint(service.Submit(Queries()[0]).get()), expected_a_[0]);
  std::remove(path.c_str());
}

TEST_F(HotSwapTest, ReloadRacesQueryLoad) {
  const std::string path = ::testing::TempDir() + "/xsact_hot_swap_race.xml";
  ASSERT_TRUE(xml::WriteStringToFile(path, xml_b_).ok());

  QueryServiceOptions options;
  options.num_threads = 4;
  options.enable_cache = true;
  QueryService service(snapshot_a_, options);

  std::atomic<bool> stop{false};
  std::thread submitter([&] {
    int i = 0;
    while (!stop.load()) {
      const size_t q = static_cast<size_t>(i++) % Queries().size();
      const std::string got = Fingerprint(service.Submit(Queries()[q]).get());
      if (got != expected_a_[q] && got != expected_b_[q]) {
        ADD_FAILURE() << "mixed-snapshot outcome during reload race";
      }
    }
  });
  for (int r = 0; r < 3; ++r) {
    const Status reloaded = service.ReloadCorpus(path).get();
    ASSERT_TRUE(reloaded.ok()) << reloaded;
  }
  stop.store(true);
  submitter.join();
  EXPECT_EQ(service.snapshot_epoch(), 3u);
  std::remove(path.c_str());
}

// Hot swap under routing: while submitter threads hammer BOTH datasets
// of a router, one dataset's service is swapped back and forth. Swapped-
// dataset outcomes must always be wholly from one snapshot (A or B,
// never a mix), and the untouched dataset must be completely unaffected.
// Runs under the TSAN CI job.
TEST_F(HotSwapTest, RoutedQueriesRacingSwapNeverLeakAcrossDatasets) {
  QueryServiceOptions options;
  options.num_threads = 4;
  options.enable_cache = true;  // also exercises epoch-keyed caching
  StatusOr<ServiceRouter> router = ServiceRouter::Create(
      {{"hot", snapshot_a_}, {"cold", snapshot_b_}}, options);
  ASSERT_TRUE(router.ok()) << router.status();

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 40;
  std::atomic<bool> failed{false};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const size_t q = static_cast<size_t>(t + i) % Queries().size();
        const std::string hot =
            Fingerprint(router->Submit("hot", Queries()[q]).get());
        if (hot != expected_a_[q] && hot != expected_b_[q]) {
          failed.store(true);
          ADD_FAILURE() << "mixed-snapshot outcome on swapped dataset for '"
                        << Queries()[q] << "'";
        }
        const std::string cold =
            Fingerprint(router->Submit("cold", Queries()[q]).get());
        if (cold != expected_b_[q]) {
          failed.store(true);
          ADD_FAILURE() << "unswapped dataset drifted for '" << Queries()[q]
                        << "'";
        }
      }
    });
  }
  // Race: swap only "hot" while both datasets serve.
  QueryService* hot_service = router->service("hot");
  ASSERT_NE(hot_service, nullptr);
  for (int swap = 0; swap < 20; ++swap) {
    hot_service->SwapSnapshot(swap % 2 == 0 ? snapshot_b_ : snapshot_a_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& thread : submitters) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(router->service("hot")->snapshot_epoch(), 20u);
  EXPECT_EQ(router->service("cold")->snapshot_epoch(), 0u);

  // Settled: "hot" serves its last snapshot, "cold" never moved.
  for (size_t q = 0; q < Queries().size(); ++q) {
    EXPECT_EQ(Fingerprint(router->Submit("hot", Queries()[q]).get()),
              expected_a_[q]);
    EXPECT_EQ(Fingerprint(router->Submit("cold", Queries()[q]).get()),
              expected_b_[q]);
  }
}

}  // namespace
}  // namespace xsact::engine
