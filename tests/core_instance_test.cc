// Unit tests for ComparisonInstance: entry ordering, grouping, and the
// differentiability predicate (paper §2 arithmetic).

#include <gtest/gtest.h>

#include "core/instance.h"
#include "test_util.h"

namespace xsact::core {
namespace {

using testing::BuildInstance;
using testing::InstanceFixture;
using testing::Obs;

TEST(InstanceTest, EntriesSortedBySignificanceWithinGroups) {
  InstanceFixture fx = BuildInstance({{
      {"review", "pro: a", "yes", 3, 10},
      {"review", "pro: b", "yes", 9, 10},
      {"review", "pro: c", "yes", 6, 10},
      {"product", "name", "n1", 1, 1},
  }});
  const auto& groups = fx.instance.groups(0);
  ASSERT_EQ(groups.size(), 2u);  // product, review (sorted by entity name)
  EXPECT_EQ(groups[0].entity, "product");
  EXPECT_EQ(groups[1].entity, "review");
  const auto& entries = fx.instance.entries(0);
  // Review group: occurrences 9, 6, 3.
  EXPECT_DOUBLE_EQ(entries[static_cast<size_t>(groups[1].begin)].occurrence, 9);
  EXPECT_DOUBLE_EQ(entries[static_cast<size_t>(groups[1].begin + 1)].occurrence,
                   6);
  EXPECT_DOUBLE_EQ(entries[static_cast<size_t>(groups[1].begin + 2)].occurrence,
                   3);
}

TEST(InstanceTest, TieBreakByTypeIdIsDeterministic) {
  InstanceFixture fx = BuildInstance({{
      {"review", "pro: z", "yes", 5, 10},
      {"review", "pro: a", "yes", 5, 10},
  }});
  const auto& entries = fx.instance.entries(0);
  ASSERT_EQ(entries.size(), 2u);
  // "pro: z" was interned first -> lower type id -> first at equal counts.
  EXPECT_LT(entries[0].type_id, entries[1].type_id);
}

TEST(InstanceTest, EntryLookupByType) {
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: a", "yes", 3, 10}},
      {{"review", "pro: b", "yes", 2, 10}},
  });
  const feature::TypeId a = fx.catalog->FindType("review", "pro: a");
  const feature::TypeId b = fx.catalog->FindType("review", "pro: b");
  EXPECT_GE(fx.instance.EntryIndexOfType(0, a), 0);
  EXPECT_EQ(fx.instance.EntryIndexOfType(0, b), -1);
  EXPECT_TRUE(fx.instance.HasType(0, a));
  EXPECT_FALSE(fx.instance.HasType(1, a));
  EXPECT_TRUE(fx.instance.HasType(1, b));
}

// Differentiability arithmetic: |a-b| > x * min(a,b) on relative
// occurrences of the dominant values.
TEST(InstanceTest, DifferentiableWhenSharesDifferEnough) {
  // compact: 8/11 = 72.7% vs 38/68 = 55.9%: differ by ~17pp > 10% of 55.9%.
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: compact", "yes", 8, 11}},
      {{"review", "pro: compact", "yes", 38, 68}},
  });
  const feature::TypeId t = fx.catalog->FindType("review", "pro: compact");
  EXPECT_TRUE(fx.instance.Differentiable(t, 0, 1));
  EXPECT_TRUE(fx.instance.Differentiable(t, 1, 0));  // symmetric
}

TEST(InstanceTest, NotDifferentiableWithinThreshold) {
  // 50% vs 54%: difference 4pp, threshold 10% of 50% = 5pp -> NOT diff.
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: a", "yes", 50, 100}},
      {{"review", "pro: a", "yes", 54, 100}},
  });
  const feature::TypeId t = fx.catalog->FindType("review", "pro: a");
  EXPECT_FALSE(fx.instance.Differentiable(t, 0, 1));
}

TEST(InstanceTest, ThresholdBoundaryIsStrict) {
  // Exactly x% of the smaller: 50% vs 55% with x=10%: 5pp == 5pp -> NOT
  // "more than" -> not differentiable.
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: a", "yes", 50, 100}},
      {{"review", "pro: a", "yes", 55, 100}},
  });
  const feature::TypeId t = fx.catalog->FindType("review", "pro: a");
  EXPECT_FALSE(fx.instance.Differentiable(t, 0, 1));
  // Just above the boundary.
  InstanceFixture fx2 = BuildInstance({
      {{"review", "pro: a", "yes", 50, 100}},
      {{"review", "pro: a", "yes", 56, 100}},
  });
  const feature::TypeId t2 = fx2.catalog->FindType("review", "pro: a");
  EXPECT_TRUE(fx2.instance.Differentiable(t2, 0, 1));
}

TEST(InstanceTest, ThresholdIsConfigurable) {
  // 50% vs 60%: differentiable at x=10%, not at x=25%.
  const std::vector<std::vector<Obs>> obs = {
      {{"review", "pro: a", "yes", 50, 100}},
      {{"review", "pro: a", "yes", 60, 100}},
  };
  InstanceFixture lo = BuildInstance(obs, 0.10);
  InstanceFixture hi = BuildInstance(obs, 0.25);
  EXPECT_TRUE(lo.instance.Differentiable(
      lo.catalog->FindType("review", "pro: a"), 0, 1));
  EXPECT_FALSE(hi.instance.Differentiable(
      hi.catalog->FindType("review", "pro: a"), 0, 1));
}

TEST(InstanceTest, DifferentDominantValuesAreDifferentiable) {
  // Same type, disjoint values: each dominant value has occurrence 0 on
  // the other side -> differentiable (the "name" case).
  InstanceFixture fx = BuildInstance({
      {{"product", "name", "go 630", 1, 1}},
      {{"product", "name", "go 730", 1, 1}},
  });
  const feature::TypeId t = fx.catalog->FindType("product", "name");
  EXPECT_TRUE(fx.instance.Differentiable(t, 0, 1));
}

TEST(InstanceTest, SameValueSameShareNotDifferentiable) {
  InstanceFixture fx = BuildInstance({
      {{"product", "kind", "gps", 1, 1}},
      {{"product", "kind", "gps", 1, 1}},
  });
  const feature::TypeId t = fx.catalog->FindType("product", "kind");
  EXPECT_FALSE(fx.instance.Differentiable(t, 0, 1));
}

TEST(InstanceTest, MissingTypeNeverDifferentiable) {
  InstanceFixture fx = BuildInstance({
      {{"review", "pro: a", "yes", 9, 10}},
      {{"review", "pro: b", "yes", 9, 10}},
  });
  const feature::TypeId a = fx.catalog->FindType("review", "pro: a");
  EXPECT_FALSE(fx.instance.Differentiable(a, 0, 1));
  EXPECT_FALSE(fx.instance.Differentiable(12345, 0, 1));
}

TEST(InstanceTest, SecondaryValueDifferenceCounts) {
  // Dominant values agree in share, but result 1's dominant ("red", 50%)
  // occurs 0% in result 0 -> differentiable through R1's displayed value.
  InstanceFixture fx = BuildInstance({
      {{"review", "color", "blue", 5, 10}},
      {{"review", "color", "red", 5, 10},
       {"review", "color", "blue", 5, 10}},
  });
  const feature::TypeId t = fx.catalog->FindType("review", "color");
  // R0 dominant: blue 50%; R1 dominant: blue or red (tie -> lower value id
  // = "blue" interned first). blue: 50% vs 50% -> not diff; red: 0 vs 50 ->
  // diff... but red is only compared if it is a displayed dominant value.
  // With the tie resolved to blue on both sides, the pair is NOT
  // differentiable; bump red's count to break the tie.
  InstanceFixture fx2 = BuildInstance({
      {{"review", "color", "blue", 5, 10}},
      {{"review", "color", "red", 6, 10},
       {"review", "color", "blue", 4, 10}},
  });
  const feature::TypeId t2 = fx2.catalog->FindType("review", "color");
  EXPECT_FALSE(fx.instance.Differentiable(t, 0, 1));
  EXPECT_TRUE(fx2.instance.Differentiable(t2, 0, 1));
}

TEST(InstanceTest, DifferentiationCeilingCountsSharedDiffTypes) {
  InstanceFixture fx = BuildInstance({
      {{"product", "name", "a", 1, 1},
       {"review", "pro: x", "yes", 9, 10}},
      {{"product", "name", "b", 1, 1},
       {"review", "pro: x", "yes", 2, 10}},
      {{"product", "name", "c", 1, 1}},
  });
  // Pairs: (0,1): name diff + pro:x diff = 2; (0,2): name = 1; (1,2): 1.
  EXPECT_EQ(fx.instance.DifferentiationCeiling(), 4);
}

TEST(InstanceTest, EmptyInstance) {
  InstanceFixture fx = BuildInstance({});
  EXPECT_EQ(fx.instance.num_results(), 0);
  EXPECT_EQ(fx.instance.NumTypesTotal(), 0u);
  EXPECT_EQ(fx.instance.DifferentiationCeiling(), 0);
}

}  // namespace
}  // namespace xsact::core
