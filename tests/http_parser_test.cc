// HttpParser unit tests: the happy path (fixed bodies, chunked framing,
// keep-alive semantics, pipelining, byte-at-a-time feeding) and the
// table-driven malformed-request corpus — every hostile input the
// front-end promises to answer with a clean 4xx/5xx (docs/serving.md)
// instead of UB, unbounded buffering, or a hang.

#include "server/http.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xsact::server {
namespace {

HttpParser FeedAll(std::string_view wire, HttpParserLimits limits = {}) {
  HttpParser parser(limits);
  while (!wire.empty() && !parser.done() && !parser.failed()) {
    const size_t used = parser.Feed(wire);
    if (used == 0) break;
    wire.remove_prefix(used);
  }
  return parser;
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser =
      FeedAll("GET /query?q=gps HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/query?q=gps");
  EXPECT_EQ(parser.request().version_minor, 1);
  EXPECT_TRUE(parser.request().keep_alive);
  ASSERT_NE(parser.request().FindHeader("host"), nullptr);
  EXPECT_EQ(*parser.request().FindHeader("host"), "x");
}

TEST(HttpParserTest, OneByteAtATimeIsIdenticalToOneShot) {
  const std::string wire =
      "POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  HttpParser parser;
  for (const char c : wire) {
    ASSERT_FALSE(parser.failed());
    EXPECT_EQ(parser.Feed(std::string_view(&c, 1)), 1u);
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpParserTest, DecodesChunkedBody) {
  HttpParser parser = FeedAll(
      "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "wikipedia");
}

TEST(HttpParserTest, ChunkedTrailersAreDiscarded) {
  HttpParser parser = FeedAll(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\nX-Trailer: ignored\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "abc");
  EXPECT_EQ(parser.request().FindHeader("x-trailer"), nullptr);
}

TEST(HttpParserTest, KeepAliveSemantics) {
  EXPECT_TRUE(FeedAll("GET / HTTP/1.1\r\n\r\n").request().keep_alive);
  EXPECT_FALSE(FeedAll("GET / HTTP/1.0\r\n\r\n").request().keep_alive);
  EXPECT_FALSE(
      FeedAll("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
          .request()
          .keep_alive);
  EXPECT_TRUE(
      FeedAll("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          .request()
          .keep_alive);
}

TEST(HttpParserTest, BareLfLineEndingsAreTolerated) {
  HttpParser parser = FeedAll("GET /x HTTP/1.1\nHost: y\n\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/x");
}

TEST(HttpParserTest, PipelinedRequestLeavesRemainderUnconsumed) {
  const std::string wire =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  HttpParser parser;
  const size_t used = parser.Feed(wire);
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/a");
  parser.Reset();
  EXPECT_FALSE(parser.started());
  const size_t used2 = parser.Feed(std::string_view(wire).substr(used));
  EXPECT_EQ(used + used2, wire.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, StartedDistinguishesIdleFromMidRequest) {
  HttpParser parser;
  EXPECT_FALSE(parser.started());
  parser.Feed("GET /slow");
  EXPECT_TRUE(parser.started());
  EXPECT_FALSE(parser.done());
  EXPECT_FALSE(parser.failed());
}

// ---- the malformed-request corpus ------------------------------------

struct MalformedCase {
  const char* name;
  std::string wire;
  int want_code;  ///< expected error_code(); 0 = parser must NOT fail
                  ///< (truncated input: incomplete, awaiting bytes)
};

class MalformedRequestTest
    : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedRequestTest, FailsCleanlyWithDocumentedCode) {
  const MalformedCase& test_case = GetParam();
  HttpParser parser = FeedAll(test_case.wire);
  if (test_case.want_code == 0) {
    // Truncated mid-request: not an error yet — the server's read
    // timeout (408) handles peers that never finish.
    EXPECT_FALSE(parser.failed()) << parser.error_detail();
    EXPECT_FALSE(parser.done());
    EXPECT_TRUE(parser.started());
  } else {
    ASSERT_TRUE(parser.failed())
        << "parser accepted malformed input: " << test_case.name;
    EXPECT_EQ(parser.error_code(), test_case.want_code)
        << parser.error_detail();
    EXPECT_FALSE(parser.error_detail().empty());
  }
}

std::string Repeat(char c, size_t n) { return std::string(n, c); }

INSTANTIATE_TEST_SUITE_P(
    Corpus, MalformedRequestTest,
    ::testing::Values(
        // -- request line ------------------------------------------------
        MalformedCase{"truncated_request_line", "GET /que", 0},
        MalformedCase{"missing_version", "GET /query\r\n\r\n", 400},
        MalformedCase{"too_many_fields", "GET /a b HTTP/1.1\r\n\r\n", 400},
        MalformedCase{"empty_method", " /query HTTP/1.1\r\n\r\n", 400},
        MalformedCase{"method_not_token", "GE T/ HTTP/1.1\r\n\r\n", 400},
        MalformedCase{"relative_target", "GET query HTTP/1.1\r\n\r\n", 400},
        MalformedCase{"nul_in_request_line",
                      std::string("GET /qu\0ry HTTP/1.1\r\n\r\n", 23), 400},
        MalformedCase{"garbage_binary_tls_hello", "\x16\x03\x01\x7f\r\n",
                      400},
        MalformedCase{"not_http_version", "GET / FTP/1.1\r\n\r\n", 400},
        MalformedCase{"http_2_version", "GET / HTTP/2.0\r\n\r\n", 505},
        MalformedCase{"http_0_9_version", "GET / HTTP/0.9\r\n\r\n", 505},
        MalformedCase{"oversized_request_line",
                      "GET /" + Repeat('a', 8192) + " HTTP/1.1\r\n\r\n",
                      431},
        // -- headers ----------------------------------------------------
        MalformedCase{"truncated_headers",
                      "GET / HTTP/1.1\r\nHost: x\r\nAccept: ", 0},
        MalformedCase{"split_header_obs_fold",
                      "GET / HTTP/1.1\r\nX-A: one\r\n two\r\n\r\n", 400},
        MalformedCase{"header_without_colon",
                      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
        MalformedCase{"space_before_colon",
                      "GET / HTTP/1.1\r\nHost : x\r\n\r\n", 400},
        MalformedCase{"empty_header_name",
                      "GET / HTTP/1.1\r\n: value\r\n\r\n", 400},
        MalformedCase{"nul_in_header",
                      std::string("GET / HTTP/1.1\r\nX: a\0b\r\n\r\n", 26),
                      400},
        MalformedCase{"oversized_header_block",
                      "GET / HTTP/1.1\r\nX-Big: " + Repeat('b', 20000) +
                          "\r\n\r\n",
                      431},
        MalformedCase{"newline_free_garbage_stream", Repeat('A', 30000),
                      431},
        // -- body framing -----------------------------------------------
        MalformedCase{"oversized_content_length",
                      "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
                      413},
        MalformedCase{"negative_content_length",
                      "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
        MalformedCase{"non_numeric_content_length",
                      "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400},
        MalformedCase{"conflicting_content_lengths",
                      "POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                      "Content-Length: 6\r\n\r\n",
                      400},
        MalformedCase{"content_length_and_chunked",
                      "POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                      "Transfer-Encoding: chunked\r\n\r\n",
                      400},
        MalformedCase{"unsupported_transfer_encoding",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
                      501},
        MalformedCase{"truncated_body",
                      "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi", 0},
        // -- chunked framing --------------------------------------------
        MalformedCase{"invalid_chunk_size",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                      "xyz\r\n",
                      400},
        MalformedCase{"missing_chunk_terminator",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                      "3\r\nabcX\r\n",
                      400},
        MalformedCase{"oversized_chunked_body",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                      "FFFFFFFF\r\n",
                      413},
        // 4 + 0xFFFFFFFFFFFFFFFD wraps to 1 in 64 bits: the size check
        // must reject the chunk, not pass it on the wrapped sum.
        MalformedCase{"wrapping_chunk_size_sum",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                      "4\r\nwiki\r\nFFFFFFFFFFFFFFFD\r\n",
                      413},
        MalformedCase{"malformed_trailer",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                      "0\r\nbroken trailer no colon\r\n",
                      400}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

// Header-count cap fires 431 on the 101st field.
TEST(HttpParserTest, TooManyHeadersIs431) {
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 101; ++i) {
    wire += "H" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  HttpParserLimits limits;
  limits.max_header_bytes = 1 << 20;  // isolate the field-count cap
  HttpParser parser = FeedAll(wire, limits);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), 431);
}

// The parser's buffering is bounded even when fed adversarial input
// forever: a newline-free stream fails at the line cap, after which
// Feed consumes nothing further.
TEST(HttpParserTest, FailedParserStopsConsuming) {
  HttpParser parser = FeedAll(Repeat('Z', 100000));
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.Feed("more"), 0u);
  EXPECT_TRUE(parser.failed());
}

// ---- response serialization + helpers --------------------------------

TEST(HttpSerializeTest, SerializesResponseWithContentLength) {
  HttpResponse response;
  response.code = 200;
  response.body = "{\"ok\":true}";
  const std::string wire = SerializeResponse(response, true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);
}

TEST(HttpSerializeTest, CloseForcesConnectionClose) {
  HttpResponse response;
  response.code = 429;
  response.close = true;
  response.extra_headers.emplace_back("Retry-After", "1");
  const std::string wire = SerializeResponse(response, true);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
}

TEST(HttpHelpersTest, SplitTargetAndDecode) {
  std::string_view path;
  std::string_view query;
  SplitTarget("/query?q=gps+camera&n=3", &path, &query);
  EXPECT_EQ(path, "/query");
  EXPECT_EQ(query, "q=gps+camera&n=3");

  std::string decoded;
  ASSERT_TRUE(PercentDecode("a%20b+c%2Fd", &decoded));
  EXPECT_EQ(decoded, "a b c/d");
  EXPECT_FALSE(PercentDecode("broken%2", &decoded));
  EXPECT_FALSE(PercentDecode("broken%zz", &decoded));
}

TEST(HttpHelpersTest, ParseQueryParamsDropsUndecodablePairs) {
  const auto params = ParseQueryParams("q=gps+camera&bad=%zz&n=3&flag");
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].first, "q");
  EXPECT_EQ(params[0].second, "gps camera");
  EXPECT_EQ(params[1].first, "n");
  EXPECT_EQ(params[1].second, "3");
  EXPECT_EQ(params[2].first, "flag");
  EXPECT_EQ(params[2].second, "");
}

TEST(HttpHelpersTest, JsonEscapeControlBytes) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

}  // namespace
}  // namespace xsact::server
