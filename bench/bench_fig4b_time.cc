// E2 — Figure 4(b): "Processing Time".
//
// For each movie query QM1..QM8, the paper plots the DFS generation time
// of the single-swap and multi-swap methods (both under ~0.12 s on 2010
// hardware; single-swap is usually faster, but multi-swap occasionally
// wins because it raises DoD in bigger steps and converges in fewer
// rounds). This harness reports the median selection time per query.

#include <cstdio>

#include "bench_common.h"
#include "data/movies.h"

int main() {
  using namespace xsact;
  bench::Header("Figure 4b", "Processing time (DFS selection, median ms)");

  engine::Xsact xsact(data::GenerateMovies({}));
  const auto workload = data::MovieQueryWorkload(/*size_bound=*/5);

  std::printf("%-6s %8s %16s %15s %9s\n", "query", "results",
              "single-swap(ms)", "multi-swap(ms)", "faster");
  bool all_fast = true;
  int single_wins = 0;
  for (const auto& spec : workload) {
    const bench::QueryReport r =
        bench::RunQuery(xsact, spec.id, spec.query, spec.size_bound,
                        /*repeats=*/15);
    std::printf("%-6s %8zu %16.4f %15.4f %9s\n", r.id.c_str(), r.num_results,
                r.time_single_ms, r.time_multi_ms,
                r.time_single_ms <= r.time_multi_ms ? "single" : "multi");
    if (r.time_single_ms <= r.time_multi_ms) ++single_wins;
    // The paper's ceiling is 0.12 s; we allow the same absolute budget
    // even though modern hardware is far faster.
    if (r.time_single_ms > 120.0 || r.time_multi_ms > 120.0) {
      all_fast = false;
    }
  }
  bench::Rule();
  std::printf("single-swap faster on %d/8 queries\n", single_wins);
  std::printf(
      "shape check (both algorithms within the paper's 0.12 s budget): %s\n",
      all_fast ? "PASS" : "FAIL");
  return all_fast ? 0 : 1;
}
