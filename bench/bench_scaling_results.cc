// A1 — ablation: DoD and selection time as the number of compared
// results n grows (the paper's user selects results via checkboxes; this
// sweep shows how the objective and cost scale with the selection size).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/dod.h"
#include "data/movies.h"

int main() {
  using namespace xsact;
  bench::Header("Ablation A1",
                "Scaling with the number of compared results n (L=5)");

  // One big franchise so a single query yields up to 32 results.
  data::MoviesConfig config;
  config.franchise_sizes = {32};
  engine::Xsact xsact(data::GenerateMovies(config));

  std::printf("%-4s %10s %12s %11s %17s %16s\n", "n", "snippet",
              "single-swap", "multi-swap", "single time (ms)",
              "multi time (ms)");
  bool monotone_ok = true;
  int64_t prev_multi = -1;
  for (int n : {2, 4, 8, 16, 32}) {
    int64_t dods[3] = {0, 0, 0};
    double times[2] = {0, 0};
    int i = 0;
    for (core::SelectorKind kind :
         {core::SelectorKind::kSnippet, core::SelectorKind::kSingleSwap,
          core::SelectorKind::kMultiSwap}) {
      engine::CompareOptions options;
      options.algorithm = kind;
      options.selector.size_bound = 5;
      SampleStats stats;
      for (int r = 0; r < 5; ++r) {
        auto outcome =
            xsact.SearchAndCompare("star", static_cast<size_t>(n), options);
        if (!outcome.ok()) {
          std::fprintf(stderr, "failed: %s\n",
                       outcome.status().ToString().c_str());
          return 1;
        }
        dods[i] = outcome->total_dod;
        stats.Add(outcome->select_seconds);
      }
      if (i >= 1) times[i - 1] = stats.Median() * 1e3;
      ++i;
    }
    std::printf("%-4d %10lld %12lld %11lld %17.4f %16.4f\n", n,
                static_cast<long long>(dods[0]),
                static_cast<long long>(dods[1]),
                static_cast<long long>(dods[2]), times[0], times[1]);
    // Total DoD sums over pairs, so it must grow with n.
    if (dods[2] < prev_multi) monotone_ok = false;
    prev_multi = dods[2];
  }
  bench::Rule();
  std::printf("shape check (total DoD grows with n): %s\n",
              monotone_ok ? "PASS" : "FAIL");
  return monotone_ok ? 0 : 1;
}
