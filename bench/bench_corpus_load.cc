// bench_corpus_load — the zero-copy arena load path (ParseCorpus: one
// pass emitting the arena DOM + fused NodeTable) vs a faithful in-file
// reproduction of the seed's corpus load:
//
//   * recursive-descent parser over a per-character cursor with
//     line/column tracking, building one heap node per XML node with
//     owned tag/text/attribute std::strings and vector<unique_ptr>
//     children (the seed's exact DOM representation),
//   * a separate full-tree NodeTable walk assigning ids/parents/Deweys
//     recursively plus the unordered_map<const Node*, NodeId> IdOf side
//     table.
//
// Equivalence gate (exit non-zero on failure): on every (corpus, scale)
// the serialized DOMs must be byte-identical (compact and pretty) and
// the node tables must agree exactly — ids, parents, Dewey labels,
// subtree extents and tag paths.
//
// Speedup gate: >= 3x end-to-end corpus load (text -> DOM + table) at
// every corpus's largest scale. Emits machine-readable
// BENCH_corpus_load.json.

#include <cctype>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "xml/dewey.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xml/writer.h"

namespace {

using namespace xsact;

// ---------------------------------------------------------------------------
// Legacy substrate: the seed's DOM, parser and node table, reproduced.
// ---------------------------------------------------------------------------

namespace legacy {

/// The seed's node: owned strings, one heap allocation per node plus a
/// unique_ptr per child edge.
struct Node {
  bool element = false;
  std::string tag;
  std::string text;
  Node* parent = nullptr;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<Node>> children;

  size_t SubtreeSize() const {
    size_t n = 1;
    for (const auto& c : children) n += c->SubtreeSize();
    return n;
  }
};

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}
bool IsAllWhitespace(const std::string& s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// The seed's cursor: per-character Advance with line/column tracking.
struct Cursor {
  std::string_view input;
  size_t pos = 0;
  int line = 1;
  int column = 1;

  bool AtEnd() const { return pos >= input.size(); }
  char Peek() const { return input[pos]; }
  char Advance() {
    char c = input[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  }
  bool Match(std::string_view literal) {
    if (input.substr(pos).substr(0, literal.size()) != literal) return false;
    for (size_t i = 0; i < literal.size(); ++i) Advance();
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }
  std::string_view Slice(size_t from, size_t to) const {
    return input.substr(from, to - from);
  }
};

/// The seed's recursive-descent parser. The bench corpora are
/// well-formed, so malformed input aborts (error parity is pinned by
/// tests/xml_parser_equiv_test.cc, not here).
struct Parser {
  Cursor cur;

  explicit Parser(std::string_view input) { cur.input = input; }

  [[noreturn]] void Die(const char* what) {
    std::fprintf(stderr, "legacy parser failed: %s (line %d)\n", what,
                 cur.line);
    std::exit(1);
  }

  void SkipUntil(std::string_view terminator) {
    while (!cur.AtEnd()) {
      if (cur.Match(terminator)) return;
      cur.Advance();
    }
    Die("unterminated construct");
  }

  std::string ParseName() {
    if (cur.AtEnd() || !IsNameStartChar(cur.Peek())) Die("expected a name");
    const size_t start = cur.pos;
    cur.Advance();
    while (!cur.AtEnd() && IsNameChar(cur.Peek())) cur.Advance();
    return std::string(cur.Slice(start, cur.pos));
  }

  bool ParseAttributes(Node* element) {
    for (;;) {
      cur.SkipWhitespace();
      if (cur.AtEnd()) Die("unterminated start tag");
      if (cur.Match("/>")) return true;
      if (cur.Match(">")) return false;
      std::string name = ParseName();
      cur.SkipWhitespace();
      if (cur.AtEnd() || cur.Peek() != '=') Die("expected '='");
      cur.Advance();
      cur.SkipWhitespace();
      if (cur.AtEnd() || (cur.Peek() != '"' && cur.Peek() != '\'')) {
        Die("expected quoted attribute value");
      }
      const char quote = cur.Advance();
      const size_t start = cur.pos;
      while (!cur.AtEnd() && cur.Peek() != quote) cur.Advance();
      if (cur.AtEnd()) Die("unterminated attribute value");
      element->attributes.emplace_back(
          std::move(name), xml::DecodeEntities(cur.Slice(start, cur.pos)));
      cur.Advance();
    }
  }

  std::unique_ptr<Node> ParseElement() {
    if (!cur.Match("<")) Die("expected '<'");
    auto element = std::make_unique<Node>();
    element->element = true;
    element->tag = ParseName();
    const bool self_closing = ParseAttributes(element.get());
    if (!self_closing) ParseContent(element.get());
    return element;
  }

  void ParseContent(Node* element) {
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      if (!IsAllWhitespace(pending_text)) {
        auto text = std::make_unique<Node>();
        text->text = xml::DecodeEntities(pending_text);
        text->parent = element;
        element->children.push_back(std::move(text));
      }
      pending_text.clear();
    };

    for (;;) {
      if (cur.AtEnd()) Die("unterminated element");
      if (cur.Peek() == '<') {
        if (cur.Match("</")) {
          flush_text();
          const std::string close_tag = ParseName();
          cur.SkipWhitespace();
          if (!cur.Match(">")) Die("malformed end tag");
          if (close_tag != element->tag) Die("mismatched end tag");
          return;
        }
        if (cur.Match("<!--")) {
          SkipUntil("-->");
          continue;
        }
        if (cur.Match("<![CDATA[")) {
          flush_text();
          const size_t start = cur.pos;
          size_t end = start;
          for (;;) {
            if (cur.AtEnd()) Die("unterminated CDATA");
            if (cur.Match("]]>")) {
              end = cur.pos - 3;
              break;
            }
            cur.Advance();
          }
          auto text = std::make_unique<Node>();
          text->text = std::string(cur.Slice(start, end));
          text->parent = element;
          element->children.push_back(std::move(text));
          continue;
        }
        if (cur.Match("<?")) {
          SkipUntil("?>");
          continue;
        }
        flush_text();
        std::unique_ptr<Node> child = ParseElement();
        child->parent = element;
        element->children.push_back(std::move(child));
        continue;
      }
      pending_text.push_back(cur.Advance());
    }
  }

  std::unique_ptr<Node> Run() {
    for (;;) {
      cur.SkipWhitespace();
      if (cur.Match("<?")) {
        SkipUntil("?>");
      } else if (cur.Match("<!--")) {
        SkipUntil("-->");
      } else if (cur.Match("<!DOCTYPE") || cur.Match("<!doctype")) {
        int depth = 0;
        for (;;) {
          if (cur.AtEnd()) Die("unterminated DOCTYPE");
          const char c = cur.Advance();
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth <= 0) break;
        }
      } else {
        break;
      }
    }
    if (cur.AtEnd() || cur.Peek() != '<') Die("expected root element");
    return ParseElement();
  }
};

std::unique_ptr<Node> Parse(std::string_view text) {
  Parser parser(text);
  return parser.Run();
}

/// The seed's NodeTable: recursive full-tree walk plus the pointer->id
/// hash map backing IdOf.
struct Table {
  std::vector<const Node*> nodes;
  std::vector<xml::DeweyId> deweys;
  std::vector<xml::NodeId> parents;
  std::unordered_map<const Node*, xml::NodeId> ids;

  static void BuildImpl(const Node* node, xml::DeweyId* dewey,
                        xml::NodeId parent, Table* t) {
    const xml::NodeId my_id = static_cast<xml::NodeId>(t->nodes.size());
    t->nodes.push_back(node);
    t->deweys.push_back(*dewey);
    t->parents.push_back(parent);
    int32_t child_index = 0;
    for (const auto& child : node->children) {
      dewey->Push(child_index++);
      BuildImpl(child.get(), dewey, my_id, t);
      dewey->Pop();
    }
  }

  static Table Build(const Node* root) {
    Table t;
    xml::DeweyId dewey;
    BuildImpl(root, &dewey, xml::kInvalidNodeId, &t);
    t.ids.reserve(t.nodes.size());
    for (size_t i = 0; i < t.nodes.size(); ++i) {
      t.ids.emplace(t.nodes[i], static_cast<xml::NodeId>(i));
    }
    return t;
  }

  std::string TagPath(xml::NodeId id) const {
    std::vector<std::string> parts;
    for (xml::NodeId cur = id; cur != xml::kInvalidNodeId;
         cur = parents[static_cast<size_t>(cur)]) {
      const Node* n = nodes[static_cast<size_t>(cur)];
      parts.push_back(n->element ? n->tag : "#text");
    }
    std::string out;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      if (!out.empty()) out.push_back('/');
      out += *it;
    }
    return out;
  }
};

/// Serializer over the legacy DOM mirroring xml/writer.cc rule for rule,
/// so byte-identical output means identical logical trees.
void WriteImpl(const Node& node, int depth, int indent, std::string* out) {
  const bool pretty = indent > 0;
  auto append_indent = [&] {
    if (pretty) out->append(static_cast<size_t>(depth * indent), ' ');
  };
  if (!node.element) {
    append_indent();
    out->append(xml::EscapeText(node.text));
    if (pretty) out->push_back('\n');
    return;
  }
  append_indent();
  out->push_back('<');
  out->append(node.tag);
  for (const auto& [name, value] : node.attributes) {
    out->push_back(' ');
    out->append(name);
    out->append("=\"");
    out->append(xml::EscapeAttribute(value));
    out->push_back('"');
  }
  if (node.children.empty()) {
    out->append("/>");
    if (pretty) out->push_back('\n');
    return;
  }
  if (node.children.size() == 1 && !node.children[0]->element) {
    out->push_back('>');
    out->append(xml::EscapeText(node.children[0]->text));
    out->append("</");
    out->append(node.tag);
    out->push_back('>');
    if (pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (pretty) out->push_back('\n');
  for (const auto& child : node.children) {
    WriteImpl(*child, depth + 1, indent, out);
  }
  append_indent();
  out->append("</");
  out->append(node.tag);
  out->push_back('>');
  if (pretty) out->push_back('\n');
}

std::string Write(const Node& root, int indent) {
  std::string out;
  WriteImpl(root, 0, indent, &out);
  return out;
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

struct Workload {
  std::string corpus;
  std::string scale;  // "S" / "M" / "L"
  bool largest = false;
  std::string text;  // serialized corpus (the on-disk form)
};

std::vector<Workload> BuildWorkloads() {
  const xml::WriteOptions disk{.indent_width = 2, .declaration = true};
  std::vector<Workload> workloads;
  {
    const int scales[] = {16, 48, 96};
    const char* names[] = {"S", "M", "L"};
    for (int s = 0; s < 3; ++s) {
      data::ProductReviewsConfig config;
      config.num_products = scales[s];
      workloads.push_back(Workload{
          "product_reviews", names[s], s == 2,
          WriteDocument(data::GenerateProductReviews(config), disk)});
    }
  }
  {
    const int scales[] = {1, 2, 4};
    const char* names[] = {"S", "M", "L"};
    for (int s = 0; s < 3; ++s) {
      data::OutdoorRetailerConfig config;
      config.min_products = 18 * scales[s];
      config.max_products = 60 * scales[s];
      workloads.push_back(Workload{
          "outdoor_retailer", names[s], s == 2,
          WriteDocument(data::GenerateOutdoorRetailer(config), disk)});
    }
  }
  {
    const int scales[] = {1, 2, 4};
    const char* names[] = {"S", "M", "L"};
    for (int s = 0; s < 3; ++s) {
      data::MoviesConfig config;
      for (int& size : config.franchise_sizes) size *= scales[s];
      workloads.push_back(Workload{"movies", names[s], s == 2,
                                   WriteDocument(data::GenerateMovies(config),
                                                 disk)});
    }
  }
  return workloads;
}

/// Identity gate: byte-identical serialized DOM and identical node table
/// (ids, parents, Deweys, subtree extents, tag paths) between the legacy
/// load and the fused arena load.
bool CheckIdentity(const Workload& w) {
  bool ok = true;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "FAIL %s/%s: %s\n", w.corpus.c_str(),
                 w.scale.c_str(), what);
    ok = false;
  };

  const std::unique_ptr<legacy::Node> legacy_root = legacy::Parse(w.text);
  const legacy::Table legacy_table = legacy::Table::Build(legacy_root.get());
  StatusOr<xml::ParsedCorpus> fused = xml::ParseCorpus(w.text);
  if (!fused.ok()) {
    std::fprintf(stderr, "FAIL %s/%s: arena parse failed: %s\n",
                 w.corpus.c_str(), w.scale.c_str(),
                 fused.status().ToString().c_str());
    return false;
  }
  const xml::Document& doc = fused->doc;
  const xml::NodeTable& table = fused->table;

  for (const int indent : {0, 2}) {
    xml::WriteOptions wo;
    wo.indent_width = indent;
    if (legacy::Write(*legacy_root, indent) != WriteDocument(doc, wo)) {
      fail(indent == 0 ? "compact serialization diverged"
                       : "pretty serialization diverged");
    }
  }

  if (legacy_table.nodes.size() != table.size()) {
    fail("node counts diverged");
    return false;
  }
  for (size_t i = 0; i < table.size(); ++i) {
    const xml::NodeId id = static_cast<xml::NodeId>(i);
    if (legacy_table.parents[i] != table.parent(id)) {
      fail("parents diverged");
      return false;
    }
    if (!(legacy_table.deweys[i] == table.dewey(id))) {
      fail("Dewey labels diverged");
      return false;
    }
    if (legacy_table.nodes[i]->SubtreeSize() !=
        static_cast<size_t>(table.subtree_end(id) - id)) {
      fail("subtree extents diverged");
      return false;
    }
    if (legacy_table.TagPath(id) != table.TagPath(id)) {
      fail("tag paths diverged");
      return false;
    }
    if (table.IdOf(table.node(id)) != id) {
      fail("IdOf does not round-trip");
      return false;
    }
  }
  return ok;
}

struct Row {
  std::string corpus;
  std::string scale;
  bool largest = false;
  size_t bytes = 0;
  size_t nodes = 0;
  double legacy_ms = 0;
  double new_ms = 0;

  double Speedup() const { return new_ms > 0 ? legacy_ms / new_ms : 0; }
};

}  // namespace

int main() {
  bench::Header("corpus_load",
                "zero-copy arena load (fused parse -> DOM + NodeTable) vs "
                "the seed's owned-string DOM + recursive table walk");

  // Best-of-N: corpus load is deterministic, so the minimum is the
  // least-noisy estimate (medians wobble with machine load and would
  // flake the 3x gate).
  const int repeats = 9;
  bool gate_ok = true;
  std::vector<Row> rows;

  std::printf("%-17s %-2s %9s %8s | %10s %9s | %8s\n", "corpus", "sc",
              "bytes", "nodes", "legacy-ms", "new-ms", "speedup");
  for (const Workload& w : BuildWorkloads()) {
    if (!CheckIdentity(w)) gate_ok = false;

    Row row;
    row.corpus = w.corpus;
    row.scale = w.scale;
    row.largest = w.largest;
    row.bytes = w.text.size();
    {
      StatusOr<xml::ParsedCorpus> fused = xml::ParseCorpus(w.text);
      row.nodes = fused.ok() ? fused->table.size() : 0;
    }

    // Legacy load: parse into the owned-string DOM, then the recursive
    // table walk + IdOf hash map.
    row.legacy_ms =
        bench::TimeRepeated(repeats, [&] {
          const std::unique_ptr<legacy::Node> root = legacy::Parse(w.text);
          const legacy::Table table = legacy::Table::Build(root.get());
          if (table.nodes.empty()) std::exit(1);
        }).min() * 1e3;

    // New load: one fused pass (the std::string copy stands in for the
    // file read handing its buffer over).
    row.new_ms = bench::TimeRepeated(repeats, [&] {
                   StatusOr<xml::ParsedCorpus> corpus =
                       xml::ParseCorpus(std::string(w.text));
                   if (!corpus.ok() || corpus->table.size() == 0) {
                     std::exit(1);
                   }
                 }).min() * 1e3;

    std::printf("%-17s %-2s %9zu %8zu | %10.3f %9.3f | %7.2fx\n",
                row.corpus.c_str(), row.scale.c_str(), row.bytes, row.nodes,
                row.legacy_ms, row.new_ms, row.Speedup());
    rows.push_back(row);
  }
  bench::Rule();
  std::printf("peak RSS across all loads: %s\n",
              bench::HumanBytes(bench::PeakRssBytes()).c_str());

  for (const Row& row : rows) {
    if (row.largest && row.Speedup() < 3.0) {
      std::fprintf(stderr, "FAIL %s/%s: corpus-load speedup %.2fx < 3x\n",
                   row.corpus.c_str(), row.scale.c_str(), row.Speedup());
      gate_ok = false;
    }
  }

  FILE* json = std::fopen("BENCH_corpus_load.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"corpus_load\",\n  \"rows\": [\n");
    for (size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      std::fprintf(
          json,
          "    {\"corpus\": \"%s\", \"scale\": \"%s\", \"bytes\": %zu, "
          "\"nodes\": %zu, \"legacy_ms\": %.4f, \"new_ms\": %.4f, "
          "\"speedup\": %.2f}%s\n",
          row.corpus.c_str(), row.scale.c_str(), row.bytes, row.nodes,
          row.legacy_ms, row.new_ms, row.Speedup(),
          r + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"peak_rss_bytes\": %zu,\n  \"gate_ok\": %s\n}\n",
                 bench::PeakRssBytes(), gate_ok ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_corpus_load.json\n");
  }

  if (!gate_ok) return 1;
  std::printf("gate OK: byte-identical serialized DOM + identical NodeTable "
              "on every (corpus, scale); >= 3x load speedup at every "
              "largest scale\n");
  return 0;
}
