// bench_pipeline_hot — the full query→comparison-table serve path, new
// id-based pipeline vs a faithful in-file reproduction of the
// pre-overhaul path:
//
//   * string-keyed inverted index (two-pass build, a std::string
//     allocated per posting lookup),
//   * tuple-of-strings feature aggregation
//     (std::map<tuple<string,string,string>>, separate entity-count pass),
//   * scalar table / explainer / weights layer (per-cell SelectedTypes +
//     Differentiable scans, per-(result,entry) weight discovery).
//
// DFS selection and instance construction are shared (they were ported to
// the bitset substrate in the previous PR), so the rows isolate exactly
// this PR's serve-path delta. Measured end to end: SearchAndCompare
// (query parse → postings → SLCA → extraction → instance → selection →
// table) across three corpora at three document scales each.
//
// Equivalence gate (exit non-zero on failure): on every (corpus, scale)
// the two paths must produce byte-identical comparison tables,
// explanations, per-type weights (bit-for-bit doubles) and total DoD.
//
// Emits machine-readable BENCH_pipeline_hot.json, including a
// parse / index / extract / select / render stage breakdown of the new
// path at the largest product-reviews scale.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/dod.h"
#include "core/selector.h"
#include "core/weights.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "table/comparison_table.h"
#include "table/explainer.h"
#include "table/renderer.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

using namespace xsact;

// ---------------------------------------------------------------------------
// Legacy substrate: the seed's serve path, reproduced verbatim.
// ---------------------------------------------------------------------------

namespace legacy {

/// The seed's inverted index: term -> vector hash map, two full node
/// table scans to build, one std::string constructed per lookup.
struct InvertedIndex {
  std::unordered_map<std::string, std::vector<xml::NodeId>> postings;
  std::vector<xml::NodeId> empty;

  static InvertedIndex Build(const xml::NodeTable& table) {
    InvertedIndex index;
    for (size_t id = 0; id < table.size(); ++id) {
      const xml::Node* node = table.node(static_cast<xml::NodeId>(id));
      if (!node->is_text()) continue;
      const xml::NodeId element_id =
          table.parent(static_cast<xml::NodeId>(id)) != xml::kInvalidNodeId
              ? table.parent(static_cast<xml::NodeId>(id))
              : static_cast<xml::NodeId>(id);
      for (const std::string& term : Tokenize(node->text())) {
        index.postings[term].push_back(element_id);
      }
    }
    for (size_t id = 0; id < table.size(); ++id) {
      const xml::Node* node = table.node(static_cast<xml::NodeId>(id));
      if (!node->is_element()) continue;
      for (const auto& [name, value] : node->attributes()) {
        (void)name;
        for (const std::string& term : Tokenize(value)) {
          index.postings[term].push_back(static_cast<xml::NodeId>(id));
        }
      }
    }
    for (auto& [term, list] : index.postings) {
      (void)term;
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return index;
  }

  const std::vector<xml::NodeId>& Postings(std::string_view term) const {
    auto it = postings.find(std::string(term));  // the seed's per-lookup alloc
    return it == postings.end() ? empty : it->second;
  }
};

/// The seed's SearchEngine::Search on top of the legacy index (SLCA
/// computation and return-node inference shared with the new path).
std::vector<search::SearchResult> Search(const search::SearchEngine& engine,
                                         const InvertedIndex& index,
                                         std::string_view query) {
  const std::vector<search::QueryTerm> terms = search::ParseQuery(query);
  if (terms.empty()) return {};
  const xml::NodeTable& table = engine.table();
  search::MatchLists lists;
  std::vector<std::vector<xml::NodeId>> filtered_storage;
  filtered_storage.reserve(terms.size());
  for (const search::QueryTerm& qt : terms) {
    const std::vector<xml::NodeId>& postings = index.Postings(qt.term);
    if (qt.field.empty()) {
      lists.push_back(search::PostingList(postings.data(), postings.size()));
    } else {
      std::vector<xml::NodeId>& filtered = filtered_storage.emplace_back();
      for (xml::NodeId id : postings) {
        if (table.node(id)->tag() == qt.field) filtered.push_back(id);
      }
      lists.push_back(search::PostingList(filtered.data(), filtered.size()));
    }
    if (lists.back().empty()) return {};
  }
  const std::vector<xml::NodeId> slcas = ComputeSlcaIndexed(table, lists);

  std::vector<search::SearchResult> results;
  std::unordered_set<const xml::Node*> seen;
  for (xml::NodeId slca_id : slcas) {
    const xml::Node* slca = table.node(slca_id);
    const xml::Node* ret = slca;
    for (const xml::Node* cur = slca; cur != nullptr; cur = cur->parent()) {
      if (engine.schema().CategoryOf(*cur) == entity::NodeCategory::kEntity) {
        ret = cur;
        break;
      }
    }
    if (!seen.insert(ret).second) continue;
    search::SearchResult r;
    r.root = ret;
    r.root_id = table.IdOf(ret);
    r.slca = slca;
    r.title = search::InferTitle(*ret);
    results.push_back(std::move(r));
  }
  return results;
}

/// The seed's EntitySchema probe path: an std::map keyed by
/// (parent tag, tag) pairs, each CategoryOf constructing two std::string
/// copies, and OwningEntity re-walking ancestors per leaf. The schema
/// CONTENT is taken from the shared inference (identical categories); only
/// the lookup machinery is the seed's.
struct Schema {
  std::map<std::pair<std::string, std::string>, entity::NodeCategory>
      categories;

  explicit Schema(const entity::EntitySchema& schema) {
    for (const auto& [key, category] : schema.Entries()) {
      categories.emplace(key, category);
    }
  }

  entity::NodeCategory CategoryOf(const xml::Node& node) const {
    if (node.is_text()) return entity::NodeCategory::kValue;
    const xml::Node* parent = node.parent();
    if (parent == nullptr) {
      return node.IsLeafElement() ? entity::NodeCategory::kAttribute
                                  : entity::NodeCategory::kConnection;
    }
    auto it = categories.find(
        {std::string(parent->tag()), std::string(node.tag())});
    if (it != categories.end()) return it->second;
    return node.IsLeafElement() ? entity::NodeCategory::kAttribute
                                : entity::NodeCategory::kConnection;
  }

  const xml::Node* OwningEntity(const xml::Node& node,
                                const xml::Node& within) const {
    const xml::Node* cur = &node;
    while (cur != nullptr) {
      if (cur == &within) return cur;
      if (cur->is_element() &&
          CategoryOf(*cur) == entity::NodeCategory::kEntity) {
        return cur;
      }
      cur = cur->parent();
    }
    return &within;
  }
};

/// The seed's extractor: recursive entity-count pass plus
/// std::map<tuple<string,string,string>> observation aggregation.
struct ExtractionState {
  std::unordered_map<std::string, double> cardinality;
  std::map<std::tuple<std::string, std::string, std::string>, double> obs;
};

void CountEntities(const xml::Node& node, const xml::Node& root,
                   const Schema& schema, ExtractionState* state) {
  if (node.is_element() &&
      (&node == &root ||
       schema.CategoryOf(node) == entity::NodeCategory::kEntity)) {
    state->cardinality[std::string(node.tag())] += 1;
  }
  for (const xml::Node* child : node.children()) {
    CountEntities(*child, root, schema, state);
  }
}

feature::ResultFeatures Extract(const xml::Node& result_root,
                                const Schema& schema,
                                feature::FeatureCatalog* catalog,
                                const feature::ExtractorOptions& options) {
  ExtractionState state;
  CountEntities(result_root, result_root, schema, &state);

  std::vector<const xml::Node*> stack = {&result_root};
  while (!stack.empty()) {
    const xml::Node* node = stack.back();
    stack.pop_back();
    for (const xml::Node* child : node->children()) {
      if (child->is_element()) stack.push_back(child);
    }
    if (!node->is_element() || !node->IsLeafElement()) continue;
    if (node == &result_root) continue;

    std::string value = node->InnerText();
    if (value.empty() && options.skip_empty_values) continue;
    if (options.fold_value_case) value = ToLower(value);
    if (value.size() > options.max_value_length) {
      value.resize(options.max_value_length);
    }

    const entity::NodeCategory category = schema.CategoryOf(*node);
    const xml::Node* owner = schema.OwningEntity(*node, result_root);
    const std::string entity_tag(owner->tag());

    if (category == entity::NodeCategory::kMultiAttribute) {
      state.obs[{entity_tag, std::string(node->tag()) + ": " + value, "yes"}] += 1;
    } else {
      state.obs[{entity_tag, std::string(node->tag()), value}] += 1;
    }
  }

  feature::ResultFeatures features;
  features.set_label(search::InferTitle(result_root));
  for (const auto& [key, count] : state.obs) {
    const auto& [entity_tag, attribute, value] = key;
    const feature::TypeId type = catalog->InternType(entity_tag, attribute);
    const feature::ValueId value_id = catalog->InternValue(value);
    auto it = state.cardinality.find(entity_tag);
    const double cardinality = it == state.cardinality.end() ? 1 : it->second;
    features.AddObservation(type, value_id, count, cardinality);
  }
  features.Seal();
  return features;
}

/// The seed's table builder: std::map selected-type union, per-cell
/// TypeStats hash probes, all-pairs Differentiable scans.
table::ComparisonTable BuildComparisonTable(
    const core::ComparisonInstance& instance,
    const std::vector<core::Dfs>& dfss) {
  const int n = instance.num_results();
  table::ComparisonTable out;
  for (int i = 0; i < n; ++i) {
    const std::string& label = instance.result(i).label();
    out.headers.push_back(label.empty() ? "result " + std::to_string(i + 1)
                                        : label);
  }
  out.total_dod = core::TotalDod(instance, dfss);

  std::map<feature::TypeId, std::vector<int>> selected_by;
  for (int i = 0; i < n; ++i) {
    for (feature::TypeId t :
         dfss[static_cast<size_t>(i)].SelectedTypes(instance)) {
      selected_by[t].push_back(i);
    }
  }

  const auto& catalog = instance.catalog();
  for (const auto& [type_id, selectors] : selected_by) {
    table::TableRow row;
    row.type_id = type_id;
    row.label = catalog.TypeName(type_id);
    row.selected_in = static_cast<int>(selectors.size());
    row.cells.assign(static_cast<size_t>(n), "-");
    for (int i : selectors) {
      const feature::TypeStats* stats = instance.result(i).Find(type_id);
      if (stats == nullptr) continue;
      const feature::ValueId v = stats->DominantValue();
      std::string cell =
          v == feature::kInvalidValueId ? "?" : catalog.ValueOf(v);
      cell += " (" +
              FormatDouble(100.0 * stats->RelativeOccurrenceOf(v), 0) + "%)";
      row.cells[static_cast<size_t>(i)] = std::move(cell);
    }
    for (size_t a = 0; a < selectors.size() && !row.differentiating; ++a) {
      for (size_t b = a + 1; b < selectors.size(); ++b) {
        if (instance.Differentiable(type_id, selectors[a], selectors[b])) {
          row.differentiating = true;
          break;
        }
      }
    }
    out.rows.push_back(std::move(row));
  }

  std::stable_sort(out.rows.begin(), out.rows.end(),
                   [](const table::TableRow& a, const table::TableRow& b) {
                     if (a.differentiating != b.differentiating) {
                       return a.differentiating;
                     }
                     if (a.selected_in != b.selected_in) {
                       return a.selected_in > b.selected_in;
                     }
                     return a.label < b.label;
                   });
  return out;
}

std::string LabelOf(const core::ComparisonInstance& instance, int i) {
  const std::string& label = instance.result(i).label();
  return label.empty() ? "result " + std::to_string(i + 1) : label;
}

std::string Percent(double rel) {
  return FormatDouble(100.0 * rel, 0) + "%";
}

/// The seed's explainer: std::map union + all-pairs Differentiable scans.
std::vector<table::Explanation> ExplainDifferences(
    const core::ComparisonInstance& instance,
    const std::vector<core::Dfs>& dfss, size_t max_statements) {
  const int n = instance.num_results();
  const auto& catalog = instance.catalog();

  std::map<feature::TypeId, std::vector<int>> selected_by;
  for (int i = 0; i < n; ++i) {
    for (feature::TypeId t :
         dfss[static_cast<size_t>(i)].SelectedTypes(instance)) {
      selected_by[t].push_back(i);
    }
  }

  std::vector<table::Explanation> out;
  for (const auto& [type_id, holders] : selected_by) {
    int pairs = 0;
    int best_a = -1;
    int best_b = -1;
    double best_contrast = -1;
    for (size_t x = 0; x < holders.size(); ++x) {
      for (size_t y = x + 1; y < holders.size(); ++y) {
        const int a = holders[x];
        const int b = holders[y];
        if (!instance.Differentiable(type_id, a, b)) continue;
        ++pairs;
        const feature::TypeStats* sa = instance.result(a).Find(type_id);
        const feature::TypeStats* sb = instance.result(b).Find(type_id);
        const double contrast =
            std::abs(sa->RelativeOccurrenceOf(sa->DominantValue()) -
                     sb->RelativeOccurrenceOf(sb->DominantValue())) +
            (sa->DominantValue() != sb->DominantValue() ? 1.0 : 0.0);
        if (contrast > best_contrast) {
          best_contrast = contrast;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (pairs == 0) continue;

    const feature::TypeStats* sa = instance.result(best_a).Find(type_id);
    const feature::TypeStats* sb = instance.result(best_b).Find(type_id);
    const feature::ValueId va = sa->DominantValue();
    const feature::ValueId vb = sb->DominantValue();
    table::Explanation e;
    e.type_id = type_id;
    e.pairs_differentiated = pairs;
    const std::string attr = catalog.AttributeOf(type_id);
    if (va != vb) {
      e.text = attr + " is \"" + catalog.ValueOf(va) + "\" for " +
               LabelOf(instance, best_a) + " but \"" + catalog.ValueOf(vb) +
               "\" for " + LabelOf(instance, best_b);
    } else {
      e.text = attr + " holds for " + Percent(sa->RelativeOccurrenceOf(va)) +
               " of " + LabelOf(instance, best_a) + "'s " +
               catalog.EntityOf(type_id) + "s vs " +
               Percent(sb->RelativeOccurrenceOf(vb)) + " of " +
               LabelOf(instance, best_b) + "'s";
    }
    out.push_back(std::move(e));
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const table::Explanation& a, const table::Explanation& b) {
                     return a.pairs_differentiated > b.pairs_differentiated;
                   });
  if (out.size() > max_statements) out.resize(max_statements);
  return out;
}

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

double NormalizedEntropy(const std::map<feature::ValueId, int>& histogram,
                         int total) {
  if (histogram.size() <= 1 || total <= 0) return 0.0;
  double h = 0.0;
  for (const auto& [value, count] : histogram) {
    (void)value;
    const double p = static_cast<double>(count) / total;
    if (p > 0) h -= p * std::log(p);
  }
  return h / std::log(static_cast<double>(histogram.size()));
}

double Interestingness(const core::ComparisonInstance& instance,
                       feature::TypeId type) {
  std::map<feature::ValueId, int> dominant_values;
  double min_rel = 1.0;
  double max_rel = 0.0;
  int carriers = 0;
  for (int i = 0; i < instance.num_results(); ++i) {
    const feature::TypeStats* stats = instance.result(i).Find(type);
    if (stats == nullptr) continue;
    ++carriers;
    const feature::ValueId v = stats->DominantValue();
    ++dominant_values[v];
    const double rel = stats->RelativeOccurrenceOf(v);
    min_rel = std::min(min_rel, rel);
    max_rel = std::max(max_rel, rel);
  }
  if (carriers <= 1) return 0.0;
  const double value_diversity = NormalizedEntropy(dominant_values, carriers);
  const double share_spread = Clamp01(max_rel - min_rel);
  return std::max(value_diversity, share_spread);
}

/// The seed's interestingness weight table, as TypeId -> weight.
std::map<feature::TypeId, double> ComputeWeights(
    const core::ComparisonInstance& instance) {
  std::map<feature::TypeId, double> weights;
  for (int i = 0; i < instance.num_results(); ++i) {
    for (const core::Entry& e : instance.entries(i)) {
      if (weights.count(e.type_id) > 0) continue;
      weights.emplace(e.type_id,
                      core::TypeWeights::kFloor +
                          (1.0 - core::TypeWeights::kFloor) *
                              Interestingness(instance, e.type_id));
    }
  }
  return weights;
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

/// One workload: a corpus at one scale plus the query run against it.
struct Workload {
  std::string corpus;
  std::string scale;  // "S" / "M" / "L"
  bool largest = false;
  std::string query;
  std::string lift_results_to;
  int size_bound = 6;
  xml::Document doc;
};

/// Everything a serve produces; compared field by field across paths.
struct Served {
  table::ComparisonTable table;
  std::vector<table::Explanation> explanations;
  std::vector<double> weights;  // per catalog TypeId; absent types read 1.0
  int64_t total_dod = 0;
  int num_results = 0;
  size_t num_types = 0;
};

engine::CompareOptions OptionsFor(const Workload& w) {
  engine::CompareOptions options;
  options.selector.size_bound = w.size_bound;
  options.lift_results_to = w.lift_results_to;
  return options;
}

/// New path: the production SearchAndCompare plus explanation + weight
/// rendering.
Served ServeNew(const engine::Xsact& xsact, const Workload& w,
                bool with_render) {
  auto outcome = xsact.SearchAndCompare(w.query, 0, OptionsFor(w));
  if (!outcome.ok()) {
    std::fprintf(stderr, "new serve failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(1);
  }
  Served s;
  s.total_dod = outcome->total_dod;
  s.num_results = outcome->instance.num_results();
  s.num_types = outcome->instance.NumTypesTotal();
  if (with_render) {
    s.explanations = table::ExplainDifferences(outcome->instance,
                                               outcome->dfss, 5);
    const core::TypeWeights weights = core::TypeWeights::Compute(
        outcome->instance, core::WeightScheme::kInterestingness);
    for (feature::TypeId t = 0;
         t < static_cast<feature::TypeId>(outcome->catalog->NumTypes()); ++t) {
      s.weights.push_back(weights.Of(t));
    }
  }
  s.table = std::move(outcome->table);
  return s;
}

/// Legacy path: same pipeline wired from the seed's components (search on
/// the string-keyed index, tuple-map extraction, scalar rendering); SLCA,
/// instance construction and DFS selection are shared.
Served ServeLegacy(const engine::Xsact& xsact,
                   const legacy::InvertedIndex& index,
                   const legacy::Schema& scalar_schema, const Workload& w,
                   bool with_render) {
  const search::SearchEngine& engine = xsact.engine();
  const std::vector<search::SearchResult> results =
      legacy::Search(engine, index, w.query);

  // Lift + dedup (CompareResults' pre-processing, shared logic).
  std::vector<const xml::Node*> roots;
  std::unordered_set<const xml::Node*> seen;
  for (const search::SearchResult& r : results) {
    const xml::Node* lifted = r.root;
    if (!w.lift_results_to.empty()) {
      for (const xml::Node* cur = r.root; cur != nullptr;
           cur = cur->parent()) {
        if (cur->is_element() && cur->tag() == w.lift_results_to) {
          lifted = cur;
          break;
        }
      }
    }
    if (seen.insert(lifted).second) roots.push_back(lifted);
  }

  feature::FeatureCatalog catalog;
  std::vector<feature::ResultFeatures> features;
  features.reserve(roots.size());
  for (const xml::Node* root : roots) {
    features.push_back(
        legacy::Extract(*root, scalar_schema, &catalog, {}));
  }
  const core::ComparisonInstance instance =
      core::ComparisonInstance::Build(std::move(features), &catalog, 0.10);

  core::SelectorOptions selector_options;
  selector_options.size_bound = w.size_bound;
  const std::vector<core::Dfs> dfss =
      core::MakeSelector(core::SelectorKind::kMultiSwap)
          ->Select(instance, selector_options);

  Served s;
  s.table = legacy::BuildComparisonTable(instance, dfss);
  s.total_dod = s.table.total_dod;
  s.num_results = instance.num_results();
  s.num_types = instance.NumTypesTotal();
  if (with_render) {
    s.explanations = legacy::ExplainDifferences(instance, dfss, 5);
    const std::map<feature::TypeId, double> weights =
        legacy::ComputeWeights(instance);
    for (feature::TypeId t = 0;
         t < static_cast<feature::TypeId>(catalog.NumTypes()); ++t) {
      auto it = weights.find(t);
      s.weights.push_back(it == weights.end() ? 1.0 : it->second);
    }
  }
  return s;
}

bool SameTable(const table::ComparisonTable& a,
               const table::ComparisonTable& b) {
  if (a.headers != b.headers || a.total_dod != b.total_dod ||
      a.rows.size() != b.rows.size()) {
    return false;
  }
  for (size_t r = 0; r < a.rows.size(); ++r) {
    const table::TableRow& x = a.rows[r];
    const table::TableRow& y = b.rows[r];
    if (x.type_id != y.type_id || x.label != y.label || x.cells != y.cells ||
        x.selected_in != y.selected_in ||
        x.differentiating != y.differentiating) {
      return false;
    }
  }
  return true;
}

bool SameServe(const Served& a, const Served& b, const char* what) {
  bool ok = true;
  if (!SameTable(a.table, b.table)) {
    std::fprintf(stderr, "FAIL %s: comparison tables diverged\n", what);
    ok = false;
  }
  if (a.explanations.size() != b.explanations.size()) {
    std::fprintf(stderr, "FAIL %s: explanation counts diverged\n", what);
    ok = false;
  } else {
    for (size_t e = 0; e < a.explanations.size(); ++e) {
      if (a.explanations[e].type_id != b.explanations[e].type_id ||
          a.explanations[e].text != b.explanations[e].text ||
          a.explanations[e].pairs_differentiated !=
              b.explanations[e].pairs_differentiated) {
        std::fprintf(stderr, "FAIL %s: explanation %zu diverged\n", what, e);
        ok = false;
      }
    }
  }
  if (a.weights != b.weights) {  // exact doubles: bit-for-bit port
    std::fprintf(stderr, "FAIL %s: weights diverged\n", what);
    ok = false;
  }
  if (a.total_dod != b.total_dod) {
    std::fprintf(stderr, "FAIL %s: total DoD diverged\n", what);
    ok = false;
  }
  return ok;
}

struct Row {
  std::string corpus;
  std::string scale;
  bool largest = false;
  size_t doc_nodes = 0;
  int n = 0;
  size_t types = 0;
  int64_t dod = 0;
  double legacy_ms = 0;
  double new_ms = 0;
  double legacy_index_ms = 0;
  double new_index_ms = 0;

  double Speedup() const { return new_ms > 0 ? legacy_ms / new_ms : 0; }
  double IndexSpeedup() const {
    return new_index_ms > 0 ? legacy_index_ms / new_index_ms : 0;
  }
};

/// Stage breakdown of the new path (largest product-reviews scale).
struct Stages {
  double parse_ms = 0;
  double index_ms = 0;
  double extract_ms = 0;
  double select_ms = 0;
  double render_ms = 0;
};

std::vector<Workload> BuildWorkloads() {
  std::vector<Workload> workloads;
  {
    const int scales[] = {16, 48, 96};
    const char* names[] = {"S", "M", "L"};
    for (int s = 0; s < 3; ++s) {
      data::ProductReviewsConfig config;
      config.num_products = scales[s];
      Workload w;
      w.corpus = "product_reviews";
      w.scale = names[s];
      w.largest = s == 2;
      w.query = "gps";
      w.size_bound = 6;
      w.doc = data::GenerateProductReviews(config);
      workloads.push_back(std::move(w));
    }
  }
  {
    const int scales[] = {1, 2, 4};
    const char* names[] = {"S", "M", "L"};
    for (int s = 0; s < 3; ++s) {
      data::OutdoorRetailerConfig config;
      config.min_products = 18 * scales[s];
      config.max_products = 60 * scales[s];
      Workload w;
      w.corpus = "outdoor_retailer";
      w.scale = names[s];
      w.largest = s == 2;
      w.query = "men jackets";
      w.lift_results_to = "brand";
      w.size_bound = 6;
      w.doc = data::GenerateOutdoorRetailer(config);
      workloads.push_back(std::move(w));
    }
  }
  {
    const int scales[] = {1, 2, 4};
    const char* names[] = {"S", "M", "L"};
    const std::vector<data::QuerySpec> queries = data::MovieQueryWorkload();
    const data::QuerySpec& spec = queries.back();  // the largest query
    for (int s = 0; s < 3; ++s) {
      data::MoviesConfig config;
      for (int& size : config.franchise_sizes) size *= scales[s];
      Workload w;
      w.corpus = "movies";
      w.scale = names[s];
      w.largest = s == 2;
      w.query = spec.query;
      w.size_bound = spec.size_bound;
      w.doc = data::GenerateMovies(config);
      workloads.push_back(std::move(w));
    }
  }
  return workloads;
}

}  // namespace

int main() {
  bench::Header("pipeline_hot",
                "end-to-end SearchAndCompare: id-based serve path vs the "
                "seed's string-keyed pipeline");

  // Best-of-N timing: the serve path is deterministic, so the minimum is
  // the least-noisy estimate of its true cost (medians wobble with
  // machine load and would flake the 3x gate).
  const int repeats = 9;
  bool gate_ok = true;
  std::vector<Row> rows;
  Stages stages;

  std::printf("%-17s %-2s %8s %4s %6s %6s | %11s %11s %8s | %8s\n", "corpus",
              "sc", "nodes", "n", "types", "DoD", "legacy-ms", "new-ms",
              "speedup", "idx-spd");
  for (Workload& w : BuildWorkloads()) {
    const size_t doc_nodes = w.doc.root()->SubtreeSize();

    // Build both engines; inverted-index construction timed separately on
    // the same node table (startup cost, not part of the per-query serve
    // path).
    const engine::Xsact xsact(std::move(w.doc));
    const double new_index_ms =
        bench::TimeRepeated(repeats, [&] {
          search::InvertedIndex::Build(xsact.engine().table());
        }).min() * 1e3;
    const double legacy_index_ms =
        bench::TimeRepeated(repeats, [&] {
          legacy::InvertedIndex::Build(xsact.engine().table());
        }).min() * 1e3;
    const legacy::InvertedIndex legacy_index =
        legacy::InvertedIndex::Build(xsact.engine().table());
    const legacy::Schema legacy_schema(xsact.engine().schema());

    // Equivalence gate: full serve (table + explanations + weights).
    const Served new_serve = ServeNew(xsact, w, /*with_render=*/true);
    const Served legacy_serve =
        ServeLegacy(xsact, legacy_index, legacy_schema, w, /*with_render=*/true);
    const std::string what = w.corpus + "/" + w.scale;
    if (!SameServe(new_serve, legacy_serve, what.c_str())) gate_ok = false;

    // Timed region: end-to-end SearchAndCompare (query -> table).
    Row row;
    row.corpus = w.corpus;
    row.scale = w.scale;
    row.largest = w.largest;
    row.doc_nodes = doc_nodes;
    row.n = new_serve.num_results;
    row.types = new_serve.num_types;
    row.dod = new_serve.total_dod;
    row.legacy_index_ms = legacy_index_ms;
    row.new_index_ms = new_index_ms;
    row.legacy_ms =
        bench::TimeRepeated(repeats, [&] {
          ServeLegacy(xsact, legacy_index, legacy_schema, w,
                      /*with_render=*/false);
        }).min() * 1e3;
    row.new_ms = bench::TimeRepeated(repeats, [&] {
                   ServeNew(xsact, w, /*with_render=*/false);
                 }).min() * 1e3;

    std::printf("%-17s %-2s %8zu %4d %6zu %6lld | %11.3f %11.3f %7.2fx | %7.2fx\n",
                row.corpus.c_str(), row.scale.c_str(), row.doc_nodes, row.n,
                row.types, static_cast<long long>(row.dod), row.legacy_ms,
                row.new_ms, row.Speedup(), row.IndexSpeedup());
    rows.push_back(row);

    // Stage breakdown on the largest product-reviews scale.
    if (w.corpus == "product_reviews" && w.largest) {
      const std::string xml_text =
          xml::WriteDocument(xsact.engine().document());
      stages.parse_ms = bench::TimeRepeated(repeats, [&] {
                          auto doc = xml::Parse(xml_text);
                          if (!doc.ok()) std::exit(1);
                        }).min() * 1e3;
      auto parsed = xml::Parse(xml_text);
      stages.index_ms = bench::TimeRepeated(repeats, [&] {
                          const xml::NodeTable table =
                              xml::NodeTable::Build(*parsed);
                          search::InvertedIndex::Build(table);
                        }).min() * 1e3;
      auto results = xsact.Search(w.query);
      std::vector<xml::NodeId> root_ids;
      for (const auto& r : *results) root_ids.push_back(r.root_id);
      feature::FeatureExtractor extractor;
      feature::ExtractionScratch scratch;
      stages.extract_ms =
          bench::TimeRepeated(repeats, [&] {
            feature::FeatureCatalog catalog;
            std::vector<feature::ResultFeatures> features;
            for (const xml::NodeId root_id : root_ids) {
              features.push_back(extractor.Extract(
                  xsact.engine().table(), xsact.engine().category_index(),
                  root_id, &catalog, &scratch));
            }
          }).min() * 1e3;
      auto outcome = xsact.SearchAndCompare(w.query, 0, OptionsFor(w));
      stages.select_ms = outcome->select_seconds * 1e3;
      stages.render_ms =
          bench::TimeRepeated(repeats, [&] {
            table::BuildComparisonTable(outcome->instance, outcome->dfss);
            table::ExplainDifferences(outcome->instance, outcome->dfss, 5);
            core::TypeWeights::Compute(outcome->instance,
                                       core::WeightScheme::kInterestingness);
          }).min() * 1e3;
    }
  }
  bench::Rule();
  std::printf("stage breakdown (new path, product_reviews/L): parse %.2f ms, "
              "index %.2f ms, extract %.2f ms, select %.2f ms, render %.2f "
              "ms\n",
              stages.parse_ms, stages.index_ms, stages.extract_ms,
              stages.select_ms, stages.render_ms);

  // Gate: >= 3x end-to-end at every corpus's largest scale.
  for (const Row& row : rows) {
    if (row.largest && row.Speedup() < 3.0) {
      std::fprintf(stderr, "FAIL %s/%s: end-to-end speedup %.2fx < 3x\n",
                   row.corpus.c_str(), row.scale.c_str(), row.Speedup());
      gate_ok = false;
    }
  }

  FILE* json = std::fopen("BENCH_pipeline_hot.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"pipeline_hot\",\n  \"rows\": [\n");
    for (size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      std::fprintf(
          json,
          "    {\"corpus\": \"%s\", \"scale\": \"%s\", \"doc_nodes\": %zu, "
          "\"n\": %d, \"types\": %zu, \"dod\": %lld, \"legacy_ms\": %.4f, "
          "\"new_ms\": %.4f, \"speedup\": %.2f, \"legacy_index_ms\": %.4f, "
          "\"new_index_ms\": %.4f, \"index_speedup\": %.2f}%s\n",
          row.corpus.c_str(), row.scale.c_str(), row.doc_nodes, row.n,
          row.types, static_cast<long long>(row.dod), row.legacy_ms,
          row.new_ms, row.Speedup(), row.legacy_index_ms, row.new_index_ms,
          row.IndexSpeedup(), r + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"stages_new_path_ms\": {\"parse\": %.3f, "
                 "\"index\": %.3f, \"extract\": %.3f, \"select\": %.3f, "
                 "\"render\": %.3f},\n  \"gate_ok\": %s\n}\n",
                 stages.parse_ms, stages.index_ms, stages.extract_ms,
                 stages.select_ms, stages.render_ms,
                 gate_ok ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_pipeline_hot.json\n");
  }

  if (!gate_ok) return 1;
  std::printf("equivalence gate OK: identical tables, explanations, weights "
              "and DoD on every (corpus, scale); >= 3x at every largest "
              "scale\n");
  return 0;
}
