// E3 — Figure 1 + the §2 worked example: snippet DFSs on the paper's two
// TomTom GPS results have DoD exactly 2.
//
// "the two DFSs in Figure 1 have a DoD of 2 because only two feature
//  types, Product:Name and Pro:Compact, are differentiable."

#include <cstdio>

#include "bench_common.h"
#include "core/dod.h"
#include "core/snippet_selector.h"
#include "data/paper_example.h"

int main() {
  using namespace xsact;
  bench::Header("Figure 1", "eXtract-style snippets on the paper's GPS pair");

  data::PaperGpsInstance gps =
      data::BuildPaperGpsInstance(/*augmented=*/false);
  core::SelectorOptions options;
  options.size_bound = 5;  // five items per snippet, as in the figure
  const auto dfss = core::SnippetSelector().Select(gps.instance, options);

  for (int i = 0; i < gps.instance.num_results(); ++i) {
    std::printf("S%d (%s):\n  %s\n", i == 0 ? 1 : 3,
                gps.instance.result(i).label().c_str(),
                dfss[static_cast<size_t>(i)].ToString(gps.instance).c_str());
  }
  const int64_t dod = core::TotalDod(gps.instance, dfss);
  bench::Rule();
  std::printf("DoD(S1, S3) = %lld   (paper: 2, via Product:Name and "
              "Pro:Compact)\n",
              static_cast<long long>(dod));
  const bool ok = dod == 2;
  std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
