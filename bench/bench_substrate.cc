// A5 — google-benchmark micro-benchmarks for every substrate on the
// XSACT pipeline's critical path: XML parsing, node-table construction,
// inverted-index build, SLCA (both algorithms), schema inference,
// feature extraction, instance construction, and the per-result DP.

#include <benchmark/benchmark.h>

#include <initializer_list>
#include <map>
#include <vector>

#include "core/dod.h"
#include "core/multi_swap.h"
#include "core/snippet_selector.h"
#include "data/movies.h"
#include "data/product_reviews.h"
#include "engine/xsact.h"
#include "entity/entity_identifier.h"
#include "feature/extractor.h"
#include "search/inverted_index.h"
#include "search/slca.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

using namespace xsact;

const std::string& CorpusText() {
  static const std::string* kText = [] {
    data::ProductReviewsConfig config;
    config.num_products = 40;
    config.min_reviews = 10;
    config.max_reviews = 40;
    return new std::string(
        xml::WriteDocument(data::GenerateProductReviews(config)));
  }();
  return *kText;
}

const xml::Document& Corpus() {
  static const xml::Document* kDoc = [] {
    auto doc = xml::Parse(CorpusText());
    return new xml::Document(std::move(doc).value());
  }();
  return *kDoc;
}

const xml::NodeTable& Table() {
  static const xml::NodeTable* kTable =
      new xml::NodeTable(xml::NodeTable::Build(Corpus()));
  return *kTable;
}

const search::InvertedIndex& Index() {
  static const search::InvertedIndex* kIndex = new search::InvertedIndex(
      search::InvertedIndex::Build(Table()));
  return *kIndex;
}

void BM_XmlParse(benchmark::State& state) {
  for (auto _ : state) {
    auto doc = xml::Parse(CorpusText());
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(CorpusText().size()));
}
BENCHMARK(BM_XmlParse);

void BM_XmlWrite(benchmark::State& state) {
  for (auto _ : state) {
    std::string out = xml::WriteDocument(Corpus());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_XmlWrite);

void BM_NodeTableBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto table = xml::NodeTable::Build(Corpus());
    benchmark::DoNotOptimize(table);
  }
  state.counters["nodes"] = static_cast<double>(Corpus().NodeCount());
}
BENCHMARK(BM_NodeTableBuild);

void BM_IndexBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto index = search::InvertedIndex::Build(Table());
    benchmark::DoNotOptimize(index);
  }
  state.counters["terms"] = static_cast<double>(Index().TermCount());
}
BENCHMARK(BM_IndexBuild);

void BM_SchemaInfer(benchmark::State& state) {
  for (auto _ : state) {
    auto schema = entity::InferSchema(Corpus());
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_SchemaInfer);

/// Decoded match lists plus the storage the views point into.
struct QueryListsStorage {
  std::vector<std::vector<xml::NodeId>> storage;
  search::MatchLists lists;
};

QueryListsStorage DecodeLists(const search::InvertedIndex& index,
                              std::initializer_list<const char*> terms) {
  QueryListsStorage out;
  out.storage.reserve(terms.size());
  for (const char* t : terms) {
    out.lists.push_back(index.Decode(t, &out.storage.emplace_back()));
  }
  return out;
}

QueryListsStorage QueryLists() {
  return DecodeLists(Index(), {"gps", "compact"});
}

void BM_SlcaScan(benchmark::State& state) {
  const auto query = QueryLists();
  const search::MatchLists& lists = query.lists;
  for (auto _ : state) {
    auto slca = search::ComputeSlcaByScan(Table(), lists);
    benchmark::DoNotOptimize(slca);
  }
}
BENCHMARK(BM_SlcaScan);

void BM_SlcaIndexed(benchmark::State& state) {
  const auto query = QueryLists();
  const search::MatchLists& lists = query.lists;
  for (auto _ : state) {
    auto slca = search::ComputeSlcaIndexed(Table(), lists);
    benchmark::DoNotOptimize(slca);
  }
}
BENCHMARK(BM_SlcaIndexed);

void BM_Elca(benchmark::State& state) {
  const auto query = QueryLists();
  const search::MatchLists& lists = query.lists;
  for (auto _ : state) {
    auto elca = search::ComputeElcaByScan(Table(), lists);
    benchmark::DoNotOptimize(elca);
  }
}
BENCHMARK(BM_Elca);

/// Corpus-size scaling of the two SLCA algorithms: the scan pass is
/// linear in document size while the indexed lookup only touches the
/// posting lists — the gap widens with corpus growth.
struct SizedCorpus {
  xml::Document doc;
  xml::NodeTable table;
  search::InvertedIndex index;
};

const SizedCorpus& CorpusOfSize(int products) {
  static std::map<int, const SizedCorpus*>* cache =
      new std::map<int, const SizedCorpus*>();
  auto it = cache->find(products);
  if (it == cache->end()) {
    data::ProductReviewsConfig config;
    config.num_products = products;
    config.min_reviews = 10;
    config.max_reviews = 30;
    auto* corpus = new SizedCorpus{data::GenerateProductReviews(config),
                                   xml::NodeTable(), search::InvertedIndex()};
    corpus->table = xml::NodeTable::Build(corpus->doc);
    corpus->index = search::InvertedIndex::Build(corpus->table);
    it = cache->emplace(products, corpus).first;
  }
  return *it->second;
}

void BM_SlcaScanScaling(benchmark::State& state) {
  const SizedCorpus& corpus = CorpusOfSize(static_cast<int>(state.range(0)));
  const auto query = DecodeLists(corpus.index, {"gps", "compact"});
  const search::MatchLists& lists = query.lists;
  for (auto _ : state) {
    auto slca = search::ComputeSlcaByScan(corpus.table, lists);
    benchmark::DoNotOptimize(slca);
  }
  state.counters["nodes"] = static_cast<double>(corpus.table.size());
}
BENCHMARK(BM_SlcaScanScaling)->Arg(10)->Arg(40)->Arg(160);

void BM_SlcaIndexedScaling(benchmark::State& state) {
  const SizedCorpus& corpus = CorpusOfSize(static_cast<int>(state.range(0)));
  const auto query = DecodeLists(corpus.index, {"gps", "compact"});
  const search::MatchLists& lists = query.lists;
  for (auto _ : state) {
    auto slca = search::ComputeSlcaIndexed(corpus.table, lists);
    benchmark::DoNotOptimize(slca);
  }
  state.counters["nodes"] = static_cast<double>(corpus.table.size());
}
BENCHMARK(BM_SlcaIndexedScaling)->Arg(10)->Arg(40)->Arg(160);

void BM_FeatureExtraction(benchmark::State& state) {
  const entity::EntitySchema schema = entity::InferSchema(Corpus());
  const auto products = Corpus().root()->ChildElements("product");
  feature::FeatureExtractor extractor;
  feature::ExtractionScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    feature::FeatureCatalog catalog;
    auto rf = extractor.Extract(*products[i % products.size()], schema,
                                &catalog, &scratch);
    benchmark::DoNotOptimize(rf);
    ++i;
  }
}
BENCHMARK(BM_FeatureExtraction);

engine::ComparisonOutcome Outcome(core::SelectorKind kind, int n) {
  engine::Xsact xsact(Corpus().Clone());
  engine::CompareOptions options;
  options.algorithm = kind;
  options.selector.size_bound = 6;
  auto outcome = xsact.SearchAndCompare("gps", static_cast<size_t>(n),
                                        options);
  return std::move(outcome).value();
}

void BM_SelectSnippet(benchmark::State& state) {
  auto outcome = Outcome(core::SelectorKind::kSnippet, 6);
  core::SelectorOptions options;
  options.size_bound = 6;
  core::SnippetSelector selector;
  for (auto _ : state) {
    auto dfss = selector.Select(outcome.instance, options);
    benchmark::DoNotOptimize(dfss);
  }
}
BENCHMARK(BM_SelectSnippet);

void BM_SelectMultiSwap(benchmark::State& state) {
  auto outcome = Outcome(core::SelectorKind::kSnippet, 6);
  core::SelectorOptions options;
  options.size_bound = 6;
  core::MultiSwapOptimizer selector;
  for (auto _ : state) {
    auto dfss = selector.Select(outcome.instance, options);
    benchmark::DoNotOptimize(dfss);
  }
}
BENCHMARK(BM_SelectMultiSwap);

void BM_TotalDod(benchmark::State& state) {
  auto outcome = Outcome(core::SelectorKind::kMultiSwap, 6);
  for (auto _ : state) {
    auto dod = core::TotalDod(outcome.instance, outcome.dfss);
    benchmark::DoNotOptimize(dod);
  }
}
BENCHMARK(BM_TotalDod);

void BM_EndToEndCompare(benchmark::State& state) {
  engine::Xsact xsact(Corpus().Clone());
  engine::CompareOptions options;
  options.selector.size_bound = 6;
  for (auto _ : state) {
    auto outcome = xsact.SearchAndCompare("gps", 4, options);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_EndToEndCompare);

}  // namespace

BENCHMARK_MAIN();
