// E5 — the §3 demo scenarios, end to end on both demo datasets:
//   * Product Reviews (buzzillions shape): "TomTom GPS"-style product
//     comparison with a user-bounded table.
//   * Outdoor Retailer (REI shape): "men, jackets" with results lifted to
//     the owning BRANDS, exposing each brand's category focus.

#include <cstdio>

#include "bench_common.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "table/explainer.h"
#include "table/renderer.h"

namespace {

bool RunScenario(const xsact::engine::Xsact& xsact, const char* title,
                 const char* query, const xsact::engine::CompareOptions& options,
                 size_t min_results) {
  using namespace xsact;
  bench::Rule();
  std::printf("scenario: %s   (query: \"%s\")\n", title, query);
  Timer timer;
  auto outcome = xsact.SearchAndCompare(query, 4, options);
  const double total_ms = timer.ElapsedMillis();
  if (!outcome.ok()) {
    std::printf("FAILED: %s\n", outcome.status().ToString().c_str());
    return false;
  }
  std::printf("%s", table::RenderAscii(outcome->table).c_str());
  std::printf("key differences:\n%s",
              table::RenderExplanations(
                  table::ExplainDifferences(outcome->instance, outcome->dfss,
                                            3))
                  .c_str());
  std::printf("end-to-end %.2f ms (selection %.3f ms), %zu results\n",
              total_ms, outcome->select_seconds * 1e3,
              outcome->table.headers.size());
  return outcome->table.headers.size() >= min_results &&
         outcome->total_dod > 0;
}

}  // namespace

int main() {
  using namespace xsact;
  bench::Header("Demo §3", "End-to-end demo scenarios on both datasets");

  bool ok = true;
  {
    engine::Xsact xsact(data::GenerateProductReviews({}));
    engine::CompareOptions options;
    options.selector.size_bound = 8;
    ok &= RunScenario(xsact, "Product Reviews / compare GPS products", "gps",
                      options, 2);
  }
  {
    engine::Xsact xsact(data::GenerateOutdoorRetailer({}));
    engine::CompareOptions options;
    options.selector.size_bound = 6;
    options.lift_results_to = "brand";
    ok &= RunScenario(xsact, "Outdoor Retailer / compare brands",
                      "men jackets", options, 2);
  }
  bench::Rule();
  std::printf("shape check (both scenarios produce differentiating "
              "tables): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
