// bench_index_compress — the block-compressed postings format and the
// skip-driven SLCA/ELCA merge kernels vs the raw-CSR + scan baseline,
// at million-node corpus scale.
//
// Gates (exit non-zero on failure):
//   * compression — the index's compressed byte footprint (payload +
//     skips + CSR offsets) must be >= 3x smaller than the raw CSR
//     layout it replaced (one NodeId per posting + one size_t offset
//     per term), on every corpus;
//   * identity    — on every bench query, the full search pipeline
//     (SlcaAlgorithm::kScan engine vs the merge-dispatching kIndexed
//     engine) must produce byte-identical result lists, and at kernel
//     level ComputeSlcaMerge / ComputeElcaMerge must equal their scan
//     references exactly;
//   * speed       — over the selective query set, SLCA evaluation via
//     the merge kernel must be >= 5x faster than the decode + scan
//     baseline at both p50 and p99, on every corpus.
//
// Emits machine-readable BENCH_index_compress.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/timer.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "search/search_engine.h"
#include "search/slca.h"

namespace {

using namespace xsact;

struct Workload {
  std::string corpus;
  xml::Document doc;
  std::vector<std::string> queries;
};

std::vector<Workload> BuildWorkloads() {
  std::vector<Workload> workloads;
  {
    // ~1.5M nodes: 2000 products x 8..72 reviews.
    data::ProductReviewsConfig config;
    config.num_products = 2000;
    workloads.push_back(Workload{
        "product_reviews", data::GenerateProductReviews(config),
        {"tomtom gps", "magellan compact", "navigon marine",
         "garmin accurate"}});
  }
  {
    // ~1.3M nodes: 8 brands x 3600..12000 products.
    data::OutdoorRetailerConfig config;
    config.min_products = 18 * 200;
    config.max_products = 60 * 200;
    workloads.push_back(Workload{
        "outdoor_retailer", data::GenerateOutdoorRetailer(config),
        {"marmot packable", "patagonia down", "salomon windbreakers",
         "mammut stretch"}});
  }
  {
    // ~3.9M nodes: the default franchise mix scaled 60x.
    data::MoviesConfig config;
    for (int& size : config.franchise_sizes) size *= 60;
    workloads.push_back(Workload{
        "movies", data::GenerateMovies(config),
        {"phantom kimura", "ember eclipse", "crystal requiem",
         "thunder moreau"}});
  }
  return workloads;
}

/// Serializes a result list so "byte-identical pipeline output" is a
/// string comparison.
std::string Fingerprint(const std::vector<search::SearchResult>& results) {
  std::string out;
  for (const auto& r : results) {
    out += std::to_string(r.root_id);
    out.push_back(':');
    out += r.title;
    out.push_back(';');
  }
  return out;
}

struct Row {
  std::string corpus;
  size_t nodes = 0;
  size_t terms = 0;
  size_t postings = 0;
  size_t compressed_bytes = 0;
  size_t raw_bytes = 0;
  double ratio = 0;
  double scan_p50_ms = 0;
  double scan_p99_ms = 0;
  double merge_p50_ms = 0;
  double merge_p99_ms = 0;
  bool identity_ok = true;

  double SpeedupP50() const {
    return merge_p50_ms > 0 ? scan_p50_ms / merge_p50_ms : 0;
  }
  double SpeedupP99() const {
    return merge_p99_ms > 0 ? scan_p99_ms / merge_p99_ms : 0;
  }
};

}  // namespace

int main() {
  bench::Header("index_compress",
                "block-compressed postings + skip-driven SLCA/ELCA merge vs "
                "raw CSR + scan kernels");

  const int repeats = 15;
  bool gate_ok = true;
  std::vector<Row> rows;

  for (Workload& w : BuildWorkloads()) {
    Row row;
    row.corpus = w.corpus;

    // Two engines over the same document: the pure-scan reference
    // configuration and the merge-dispatching production configuration.
    search::SearchEngine scan_engine(w.doc.Clone(),
                                     search::SlcaAlgorithm::kScan);
    search::SearchEngine engine(std::move(w.doc),
                                search::SlcaAlgorithm::kIndexed);
    const xml::NodeTable& table = engine.table();
    const search::InvertedIndex& index = engine.index();
    row.nodes = table.size();
    row.terms = index.TermCount();
    row.postings = index.PostingCount();
    row.compressed_bytes = index.CompressedSizeBytes();
    row.raw_bytes = index.RawCsrSizeBytes();
    row.ratio = bench::ReportIndexBytes(w.corpus, row.compressed_bytes,
                                        row.raw_bytes);

    search::SearchWorkspace scan_ws, merge_ws;
    search::MergeScratch scratch;
    SampleStats scan_times, merge_times;

    for (const std::string& query : w.queries) {
      // ----- pipeline identity: kScan engine vs kIndexed engine -----
      auto scan_results = scan_engine.Search(query, &scan_ws);
      auto merge_results = engine.Search(query, &merge_ws);
      if (!scan_results.ok() || !merge_results.ok()) {
        std::fprintf(stderr, "FAIL %s: query '%s' errored\n",
                     w.corpus.c_str(), query.c_str());
        row.identity_ok = false;
        continue;
      }
      if (Fingerprint(*scan_results) != Fingerprint(*merge_results)) {
        std::fprintf(stderr,
                     "FAIL %s: pipeline output diverged on '%s' "
                     "(%zu scan vs %zu merge results)\n",
                     w.corpus.c_str(), query.c_str(), scan_results->size(),
                     merge_results->size());
        row.identity_ok = false;
      }
      if (scan_results->empty()) {
        std::fprintf(stderr, "FAIL %s: query '%s' returned no results "
                     "(bench queries must be non-trivial)\n",
                     w.corpus.c_str(), query.c_str());
        row.identity_ok = false;
      }

      // ----- kernel identity + timing on the same term lists -----
      std::vector<std::vector<xml::NodeId>> storage;
      search::MatchLists scan_lists;
      search::MergeLists merge_lists;
      size_t total_postings = 0;
      for (const search::QueryTerm& qt : search::ParseQuery(query)) {
        storage.emplace_back();
        scan_lists.push_back(index.Decode(qt.term, &storage.back()));
        merge_lists.push_back(
            search::PostingSource(index.Postings(qt.term)));
        total_postings += storage.back().size();
      }
      if (total_postings >= table.size() / 4) {
        std::fprintf(stderr,
                     "FAIL %s: query '%s' is not selective (%zu postings, "
                     "%zu nodes) — the merge dispatch would fall back\n",
                     w.corpus.c_str(), query.c_str(), total_postings,
                     table.size());
        row.identity_ok = false;
      }

      const auto slca_scan = search::ComputeSlcaByScan(table, scan_lists);
      const auto slca_merge =
          search::ComputeSlcaMerge(table, merge_lists, &scratch);
      if (slca_scan != slca_merge) {
        std::fprintf(stderr, "FAIL %s: SLCA merge != scan on '%s'\n",
                     w.corpus.c_str(), query.c_str());
        row.identity_ok = false;
      }
      const auto elca_scan = search::ComputeElcaByScan(table, scan_lists);
      const auto elca_merge =
          search::ComputeElcaMerge(table, merge_lists, &scratch);
      if (elca_scan != elca_merge) {
        std::fprintf(stderr, "FAIL %s: ELCA merge != scan on '%s'\n",
                     w.corpus.c_str(), query.c_str());
        row.identity_ok = false;
      }

      // Scan baseline: decode the postings (as the scan path must) and
      // run the linear kernel. Merge path: straight off the compressed
      // lists with reused scratch — the engine's steady-state hot path.
      const std::vector<search::QueryTerm> terms = search::ParseQuery(query);
      std::vector<xml::NodeId> decode_buf;
      for (int r = 0; r < repeats; ++r) {
        Timer timer;
        // One resize up front so the list views into the buffer stay
        // valid (mirrors the engine's decode pool).
        size_t total = 0;
        for (const search::QueryTerm& qt : terms) {
          total += index.Postings(qt.term).size();
        }
        decode_buf.resize(total);
        search::MatchLists lists;
        size_t begin = 0;
        for (const search::QueryTerm& qt : terms) {
          search::CompressedPostings cp = index.Postings(qt.term);
          cp.DecodeInto(decode_buf.data() + begin);
          lists.push_back(
              search::PostingList(decode_buf.data() + begin, cp.size()));
          begin += cp.size();
        }
        auto result = search::ComputeSlcaByScan(table, lists);
        scan_times.Add(timer.ElapsedSeconds());
        if (result != slca_scan) std::exit(1);
      }
      for (int r = 0; r < repeats; ++r) {
        Timer timer;
        auto result = search::ComputeSlcaMerge(table, merge_lists, &scratch);
        merge_times.Add(timer.ElapsedSeconds());
        if (result != slca_scan) std::exit(1);
      }
    }

    row.scan_p50_ms = scan_times.Percentile(50.0) * 1e3;
    row.scan_p99_ms = scan_times.Percentile(99.0) * 1e3;
    row.merge_p50_ms = merge_times.Percentile(50.0) * 1e3;
    row.merge_p99_ms = merge_times.Percentile(99.0) * 1e3;

    std::printf("%-17s %8zu nodes | scan p50/p99 %8.3f/%8.3f ms | "
                "merge p50/p99 %8.4f/%8.4f ms | %6.1fx/%.1fx\n",
                row.corpus.c_str(), row.nodes, row.scan_p50_ms,
                row.scan_p99_ms, row.merge_p50_ms, row.merge_p99_ms,
                row.SpeedupP50(), row.SpeedupP99());

    if (row.ratio < 3.0) {
      std::fprintf(stderr, "FAIL %s: compression ratio %.2fx < 3x\n",
                   row.corpus.c_str(), row.ratio);
      gate_ok = false;
    }
    if (row.SpeedupP50() < 5.0 || row.SpeedupP99() < 5.0) {
      std::fprintf(stderr,
                   "FAIL %s: merge speedup p50 %.1fx / p99 %.1fx < 5x\n",
                   row.corpus.c_str(), row.SpeedupP50(), row.SpeedupP99());
      gate_ok = false;
    }
    if (!row.identity_ok) gate_ok = false;
    rows.push_back(std::move(row));
  }
  bench::Rule();

  FILE* json = std::fopen("BENCH_index_compress.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"index_compress\",\n  \"rows\": [\n");
    for (size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      std::fprintf(
          json,
          "    {\"corpus\": \"%s\", \"nodes\": %zu, \"terms\": %zu, "
          "\"postings\": %zu, \"compressed_bytes\": %zu, \"raw_bytes\": %zu, "
          "\"ratio\": %.2f, \"scan_p50_ms\": %.4f, \"scan_p99_ms\": %.4f, "
          "\"merge_p50_ms\": %.4f, \"merge_p99_ms\": %.4f, "
          "\"speedup_p50\": %.1f, \"speedup_p99\": %.1f, "
          "\"identity_ok\": %s}%s\n",
          row.corpus.c_str(), row.nodes, row.terms, row.postings,
          row.compressed_bytes, row.raw_bytes, row.ratio, row.scan_p50_ms,
          row.scan_p99_ms, row.merge_p50_ms, row.merge_p99_ms,
          row.SpeedupP50(), row.SpeedupP99(),
          row.identity_ok ? "true" : "false",
          r + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"peak_rss_bytes\": %zu,\n  \"gate_ok\": %s\n}\n",
                 bench::PeakRssBytes(), gate_ok ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_index_compress.json\n");
  }

  if (!gate_ok) return 1;
  std::printf(
      "gate OK: >= 3x compression, byte-identical scan-vs-merge pipeline "
      "output, >= 5x SLCA p50/p99 speedup on selective queries, on every "
      "corpus\n");
  return 0;
}
