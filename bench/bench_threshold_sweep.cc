// A3 — ablation: sensitivity of DoD to the differentiability threshold x
// (the paper sets x = 10% "empirically"). Raising x makes the predicate
// stricter, so the achievable DoD falls monotonically; the bench sweeps
// x across two decades around the paper's choice.

#include <cstdio>

#include "bench_common.h"
#include "data/product_reviews.h"

int main() {
  using namespace xsact;
  bench::Header("Ablation A3",
                "DoD vs differentiability threshold x (4 GPS results, L=12)");

  engine::Xsact xsact(data::GenerateProductReviews({}));

  std::printf("%-8s %12s %11s %14s\n", "x", "single-swap", "multi-swap",
              "ceiling");
  bool monotone_ok = true;
  long long prev_multi = -1;
  for (double x : {0.0, 0.01, 0.05, 0.10, 0.20, 0.40, 0.80, 1.60}) {
    engine::CompareOptions options;
    options.diff_threshold = x;
    options.selector.size_bound = 12;
    options.algorithm = core::SelectorKind::kSingleSwap;
    auto single = xsact.SearchAndCompare("gps", 4, options);
    options.algorithm = core::SelectorKind::kMultiSwap;
    auto multi = xsact.SearchAndCompare("gps", 4, options);
    if (!single.ok() || !multi.ok()) {
      std::fprintf(stderr, "comparison failed\n");
      return 1;
    }
    std::printf("%-8.2f %12lld %11lld %14lld\n", x,
                static_cast<long long>(single->total_dod),
                static_cast<long long>(multi->total_dod),
                static_cast<long long>(
                    multi->instance.DifferentiationCeiling()));
    // Ceiling is exactly monotone in x; the optimizer's DoD tracks it.
    if (prev_multi >= 0 &&
        multi->instance.DifferentiationCeiling() > prev_multi) {
      monotone_ok = false;
    }
    prev_multi = multi->instance.DifferentiationCeiling();
  }
  bench::Rule();
  std::printf("shape check (ceiling monotonically falls as x rises): %s\n",
              monotone_ok ? "PASS" : "FAIL");
  return monotone_ok ? 0 : 1;
}
