// bench_swap_hot — the swap optimizers' hot path, bitset substrate vs
// the seed's scalar implementation.
//
// Times single-swap and multi-swap DFS selection end-to-end across
// n ∈ {4, 8, 16, 32, 64} compared results, against a faithful in-file
// reproduction of the pre-bitset scalar substrate (per-call hash probes
// for type -> entry and diff(t, i, j), full gain-vector recomputation in
// every BestMove / OptimizeOne). Both run in the same build, on the same
// instances, from the same snippet seeds.
//
// Sanity gate (exit non-zero on failure): for every n, both substrates
// must produce IDENTICAL selected DFSs and identical total DoD — the
// optimization must not change a single answer.
//
// Emits machine-readable BENCH_swap_hot.json alongside the report so the
// perf trajectory is recorded from this PR onward.

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/dod.h"
#include "core/multi_swap.h"
#include "core/single_swap.h"
#include "core/snippet_selector.h"
#include "data/product_reviews.h"
#include "xml/writer.h"

namespace {

using namespace xsact;
using core::ComparisonInstance;
using core::Dfs;
using core::EntityGroup;
using core::Entry;

// ---------------------------------------------------------------------------
// Scalar reference: the seed's substrate, reproduced verbatim — hash maps
// for type -> entry and the diff matrix, O(n) partner scans per TypeGain,
// full gain recomputation per BestMove/OptimizeOne call.
// ---------------------------------------------------------------------------

namespace scalar {

/// The seed's lookup structures, rebuilt from the instance (construction
/// is NOT part of the timed region — the seed built them at instance
/// construction time too).
struct Context {
  const ComparisonInstance* instance = nullptr;
  // per result: type_id -> entry index
  std::vector<std::unordered_map<feature::TypeId, int>> type_to_entry;
  // type_id -> dense index into diff
  std::unordered_map<feature::TypeId, int> type_index;
  // diff matrix: [dense type][i * n + j]
  std::vector<std::vector<uint8_t>> diff;

  explicit Context(const ComparisonInstance& inst) : instance(&inst) {
    const int n = inst.num_results();
    type_to_entry.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto& entries = inst.entries(i);
      for (size_t k = 0; k < entries.size(); ++k) {
        type_to_entry[static_cast<size_t>(i)].emplace(entries[k].type_id,
                                                      static_cast<int>(k));
        type_index.emplace(entries[k].type_id,
                           static_cast<int>(type_index.size()));
      }
    }
    diff.assign(type_index.size(),
                std::vector<uint8_t>(
                    static_cast<size_t>(n) * static_cast<size_t>(n), 0));
    for (const auto& [type_id, dense] : type_index) {
      auto& matrix = diff[static_cast<size_t>(dense)];
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (inst.Differentiable(type_id, i, j)) {
            matrix[static_cast<size_t>(i) * static_cast<size_t>(n) +
                   static_cast<size_t>(j)] = 1;
          }
        }
      }
    }
  }

  int EntryIndexOfType(int i, feature::TypeId t) const {
    const auto& map = type_to_entry[static_cast<size_t>(i)];
    auto it = map.find(t);
    return it == map.end() ? -1 : it->second;
  }

  bool ContainsType(const Dfs& dfs, feature::TypeId t) const {
    const int idx = EntryIndexOfType(dfs.result_index(), t);
    return idx >= 0 && dfs.Contains(idx);
  }

  bool Differentiable(feature::TypeId t, int i, int j) const {
    auto it = type_index.find(t);
    if (it == type_index.end()) return false;
    const int n = instance->num_results();
    return diff[static_cast<size_t>(it->second)]
               [static_cast<size_t>(i) * static_cast<size_t>(n) +
                static_cast<size_t>(j)] != 0;
  }

  /// The seed's TypeGain: O(n) partner scan, two hash probes per partner.
  int TypeGain(const std::vector<Dfs>& dfss, int i, feature::TypeId t) const {
    int gain = 0;
    for (int j = 0; j < instance->num_results(); ++j) {
      if (j == i) continue;
      if (ContainsType(dfss[static_cast<size_t>(j)], t) &&
          Differentiable(t, i, j)) {
        ++gain;
      }
    }
    return gain;
  }
};

bool GroupValid(const ComparisonInstance& instance, const Dfs& dfs,
                const EntityGroup& group) {
  const auto& entries = instance.entries(dfs.result_index());
  double min_selected = -1;
  bool any = false;
  for (int k = group.begin; k < group.end; ++k) {
    if (dfs.Contains(k)) {
      any = true;
      min_selected = entries[static_cast<size_t>(k)].occurrence;
    }
  }
  if (!any) return true;
  for (int k = group.begin; k < group.end; ++k) {
    const Entry& e = entries[static_cast<size_t>(k)];
    if (e.occurrence <= min_selected) break;
    if (!dfs.Contains(k)) return false;
  }
  return true;
}

struct Move {
  int remove = -1;
  int add = -1;
  int delta = 0;
};

/// The seed's BestMove: recomputes the FULL gain vector on every call.
Move BestMove(const Context& ctx, std::vector<Dfs>& dfss, int i,
              int size_bound) {
  const ComparisonInstance& instance = *ctx.instance;
  Dfs& dfs = dfss[static_cast<size_t>(i)];
  const auto& entries = instance.entries(i);
  const auto& groups = instance.groups(i);

  std::vector<int> gain(entries.size(), 0);
  for (size_t k = 0; k < entries.size(); ++k) {
    gain[k] = ctx.TypeGain(dfss, i, entries[k].type_id);
  }

  Move best;
  auto try_move = [&](int remove, int add) {
    const int delta = gain[static_cast<size_t>(add)] -
                      (remove >= 0 ? gain[static_cast<size_t>(remove)] : 0);
    if (delta <= best.delta) return;
    if (remove >= 0) dfs.Remove(remove);
    dfs.Add(add);
    const EntityGroup& ga = groups[static_cast<size_t>(
        entries[static_cast<size_t>(add)].group)];
    bool valid = GroupValid(instance, dfs, ga);
    if (valid && remove >= 0) {
      const EntityGroup& gr = groups[static_cast<size_t>(
          entries[static_cast<size_t>(remove)].group)];
      if (gr.begin != ga.begin) valid = GroupValid(instance, dfs, gr);
    }
    dfs.Remove(add);
    if (remove >= 0) dfs.Add(remove);
    if (valid) best = Move{remove, add, delta};
  };

  const std::vector<int> selected = dfs.SelectedEntries();
  for (size_t a = 0; a < entries.size(); ++a) {
    if (dfs.Contains(static_cast<int>(a))) continue;
    if (gain[a] == 0) continue;
    if (dfs.size() < size_bound) try_move(-1, static_cast<int>(a));
    for (int o : selected) try_move(o, static_cast<int>(a));
  }
  return best;
}

/// The seed's SingleSwapOptimizer::Select.
std::vector<Dfs> SingleSwapSelect(const Context& ctx,
                                  const core::SelectorOptions& options) {
  const ComparisonInstance& instance = *ctx.instance;
  std::vector<Dfs> dfss = core::SnippetSelector().Select(instance, options);
  for (int round = 0; round < options.max_rounds; ++round) {
    bool changed = false;
    for (int pass = 0; pass < options.max_rounds; ++pass) {
      bool pass_improved = false;
      for (int i = 0; i < instance.num_results(); ++i) {
        for (;;) {
          const Move move = BestMove(ctx, dfss, i, options.size_bound);
          if (move.delta <= 0) break;
          Dfs& dfs = dfss[static_cast<size_t>(i)];
          if (move.remove >= 0) dfs.Remove(move.remove);
          dfs.Add(move.add);
          pass_improved = true;
          changed = true;
        }
      }
      if (!pass_improved) break;
    }
    if (options.fill_to_bound) {
      const std::vector<Dfs> before = dfss;
      core::FillToBound(instance, options.size_bound, &dfss);
      if (!(dfss == before)) changed = true;
    }
    if (!changed) break;
  }
  return dfss;
}

constexpr double kGainEps = 1e-9;

struct Value {
  double gain = -1;
  int size = 0;
  bool Reachable() const { return gain >= 0; }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.gain < b.gain - kGainEps) return true;
    if (b.gain < a.gain - kGainEps) return false;
    return a.size < b.size;
  }
};

struct GroupPlan {
  std::vector<double> best;
  std::vector<std::vector<int>> chosen;
};

/// The seed's PlanGroup / OptimizeWithGains DP, reproduced so the scalar
/// multi-swap differs from the bitset one ONLY in gain evaluation.
GroupPlan PlanGroup(const ComparisonInstance& instance, int i,
                    const EntityGroup& group, const std::vector<double>& gain,
                    int max_k) {
  const auto& entries = instance.entries(i);
  GroupPlan plan;
  const int limit = std::min(max_k, group.size());
  plan.best.assign(static_cast<size_t>(limit) + 1, 0);
  plan.chosen.assign(static_cast<size_t>(limit) + 1, {});

  struct Level {
    int begin;
    int end;
  };
  std::vector<Level> levels;
  int pos = group.begin;
  while (pos < group.end) {
    int end = pos + 1;
    while (end < group.end &&
           entries[static_cast<size_t>(end)].occurrence ==
               entries[static_cast<size_t>(pos)].occurrence) {
      ++end;
    }
    levels.push_back(Level{pos, end});
    pos = end;
  }

  for (int k = 1; k <= limit; ++k) {
    double total = 0;
    std::vector<int> picked;
    int remaining = k;
    for (const Level& level : levels) {
      const int level_size = level.end - level.begin;
      if (remaining >= level_size) {
        for (int e = level.begin; e < level.end; ++e) {
          total += gain[static_cast<size_t>(e)];
          picked.push_back(e);
        }
        remaining -= level_size;
        if (remaining == 0) break;
      } else {
        std::vector<int> idx;
        idx.reserve(static_cast<size_t>(level_size));
        for (int e = level.begin; e < level.end; ++e) idx.push_back(e);
        std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
          return gain[static_cast<size_t>(a)] >
                 gain[static_cast<size_t>(b)] + kGainEps;
        });
        for (int r = 0; r < remaining; ++r) {
          total += gain[static_cast<size_t>(idx[static_cast<size_t>(r)])];
          picked.push_back(idx[static_cast<size_t>(r)]);
        }
        remaining = 0;
        break;
      }
    }
    plan.best[static_cast<size_t>(k)] = total;
    plan.chosen[static_cast<size_t>(k)] = std::move(picked);
  }
  return plan;
}

Dfs OptimizeWithGains(const ComparisonInstance& instance, int i,
                      int size_bound, const std::vector<double>& gain) {
  const auto& groups = instance.groups(i);
  std::vector<GroupPlan> plans;
  plans.reserve(groups.size());
  for (const EntityGroup& g : groups) {
    plans.push_back(PlanGroup(instance, i, g, gain, size_bound));
  }

  const size_t budget = static_cast<size_t>(size_bound);
  std::vector<Value> dp(budget + 1);
  dp[0] = Value{0, 0};
  std::vector<std::vector<int>> choice(plans.size(),
                                       std::vector<int>(budget + 1, -1));
  for (size_t g = 0; g < plans.size(); ++g) {
    std::vector<Value> next(budget + 1, Value{});
    for (size_t b = 0; b <= budget; ++b) {
      if (!dp[b].Reachable()) continue;
      const size_t max_k = std::min(budget - b, plans[g].best.size() - 1);
      for (size_t k = 0; k <= max_k; ++k) {
        Value candidate{dp[b].gain + plans[g].best[k],
                        dp[b].size + static_cast<int>(k)};
        if (next[b + k] < candidate) {
          next[b + k] = candidate;
          choice[g][b + k] = static_cast<int>(k);
        }
      }
    }
    dp = std::move(next);
  }

  size_t best_b = 0;
  for (size_t b = 1; b <= budget; ++b) {
    if (dp[b].Reachable() && dp[best_b] < dp[b]) best_b = b;
  }

  Dfs result(instance, i);
  size_t b = best_b;
  for (size_t g = plans.size(); g-- > 0;) {
    const int k = choice[g][b];
    if (k > 0) {
      for (int e : plans[g].chosen[static_cast<size_t>(k)]) result.Add(e);
      b -= static_cast<size_t>(k);
    }
  }
  return result;
}

/// The seed's multi-swap SelectLoop under uniform weights: the gain
/// vector of every visit is recomputed with O(n) hash-probe scans.
std::vector<Dfs> MultiSwapSelect(const Context& ctx,
                                 const core::SelectorOptions& options) {
  const ComparisonInstance& instance = *ctx.instance;
  std::vector<Dfs> dfss = core::SnippetSelector().Select(instance, options);
  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    for (int i = 0; i < instance.num_results(); ++i) {
      const auto& entries = instance.entries(i);
      std::vector<double> gain(entries.size(), 0);
      for (size_t k = 0; k < entries.size(); ++k) {
        gain[k] = ctx.TypeGain(dfss, i, entries[k].type_id);
      }
      Dfs candidate =
          OptimizeWithGains(instance, i, options.size_bound, gain);
      double current_gain = 0;
      const Dfs& current = dfss[static_cast<size_t>(i)];
      for (int e : current.SelectedEntries()) {
        current_gain += gain[static_cast<size_t>(e)];
      }
      double candidate_gain = 0;
      for (int e : candidate.SelectedEntries()) {
        candidate_gain += gain[static_cast<size_t>(e)];
      }
      const Value cur{current_gain, current.size()};
      const Value cand{candidate_gain, candidate.size()};
      if (cur < cand) {
        dfss[static_cast<size_t>(i)] = std::move(candidate);
        improved = true;
      }
    }
    if (!improved) break;
  }
  return dfss;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

struct Row {
  int n = 0;
  size_t num_types = 0;
  int64_t dod = 0;
  double scalar_single_ms = 0;
  double bitset_single_ms = 0;
  double scalar_multi_ms = 0;
  double bitset_multi_ms = 0;

  double SpeedupSingle() const {
    return bitset_single_ms > 0 ? scalar_single_ms / bitset_single_ms : 0;
  }
  double SpeedupMulti() const {
    return bitset_multi_ms > 0 ? scalar_multi_ms / bitset_multi_ms : 0;
  }
};

bool SameAssignment(const std::vector<Dfs>& a, const std::vector<Dfs>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::Header("swap_hot",
                "single-/multi-swap selection: bitset substrate vs the "
                "seed's scalar substrate");

  // One corpus large enough for the biggest comparison; each row compares
  // the first n product subtrees directly (no query variance).
  data::ProductReviewsConfig config;
  config.num_products = 72;
  config.min_reviews = 12;
  config.max_reviews = 48;
  auto xsact = engine::Xsact::FromXml(
      xml::WriteDocument(data::GenerateProductReviews(config)));
  if (!xsact.ok()) {
    std::fprintf(stderr, "corpus: %s\n", xsact.status().ToString().c_str());
    return 1;
  }
  const auto products =
      xsact->engine().document().root()->ChildElements("product");

  core::SelectorOptions options;
  options.size_bound = 6;
  const int repeats = 9;
  bool gate_ok = true;
  std::vector<Row> rows;

  std::printf("%4s %6s %6s | %12s %12s %8s | %12s %12s %8s\n", "n", "types",
              "DoD", "scalar-1s", "bitset-1s", "speedup", "scalar-ms",
              "bitset-ms", "speedup");
  for (const int n : {4, 8, 16, 32, 64}) {
    if (static_cast<size_t>(n) > products.size()) break;
    std::vector<const xml::Node*> roots(products.begin(),
                                        products.begin() + n);
    auto outcome = xsact->CompareResults(roots, {});
    if (!outcome.ok()) {
      std::fprintf(stderr, "compare n=%d: %s\n", n,
                   outcome.status().ToString().c_str());
      return 1;
    }
    const ComparisonInstance& instance = outcome->instance;
    const scalar::Context ctx(instance);

    Row row;
    row.n = n;
    row.num_types = instance.NumTypesTotal();

    std::vector<Dfs> scalar_single, bitset_single, scalar_multi, bitset_multi;
    row.scalar_single_ms =
        bench::TimeRepeated(repeats, [&] {
          scalar_single = scalar::SingleSwapSelect(ctx, options);
        }).Median() * 1e3;
    row.bitset_single_ms =
        bench::TimeRepeated(repeats, [&] {
          bitset_single = core::SingleSwapOptimizer().Select(instance, options);
        }).Median() * 1e3;
    row.scalar_multi_ms =
        bench::TimeRepeated(repeats, [&] {
          scalar_multi = scalar::MultiSwapSelect(ctx, options);
        }).Median() * 1e3;
    row.bitset_multi_ms =
        bench::TimeRepeated(repeats, [&] {
          bitset_multi = core::MultiSwapOptimizer().Select(instance, options);
        }).Median() * 1e3;

    // Equivalence gate: identical DFSs, identical DoD.
    if (!SameAssignment(scalar_single, bitset_single)) {
      std::fprintf(stderr, "FAIL n=%d: single-swap DFSs diverged\n", n);
      gate_ok = false;
    }
    if (!SameAssignment(scalar_multi, bitset_multi)) {
      std::fprintf(stderr, "FAIL n=%d: multi-swap DFSs diverged\n", n);
      gate_ok = false;
    }
    const int64_t dod_scalar = core::TotalDod(instance, scalar_multi);
    row.dod = core::TotalDod(instance, bitset_multi);
    if (dod_scalar != row.dod) {
      std::fprintf(stderr, "FAIL n=%d: DoD diverged (%lld vs %lld)\n", n,
                   static_cast<long long>(dod_scalar),
                   static_cast<long long>(row.dod));
      gate_ok = false;
    }

    std::printf("%4d %6zu %6lld | %12.3f %12.3f %7.1fx | %12.3f %12.3f %7.1fx\n",
                row.n, row.num_types, static_cast<long long>(row.dod),
                row.scalar_single_ms, row.bitset_single_ms,
                row.SpeedupSingle(), row.scalar_multi_ms, row.bitset_multi_ms,
                row.SpeedupMulti());
    rows.push_back(row);
  }
  bench::Rule();

  // Machine-readable trajectory record.
  FILE* json = std::fopen("BENCH_swap_hot.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"swap_hot\",\n  \"rows\": [\n");
    for (size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      std::fprintf(
          json,
          "    {\"n\": %d, \"types\": %zu, \"dod\": %lld, "
          "\"scalar_single_ms\": %.4f, \"bitset_single_ms\": %.4f, "
          "\"speedup_single\": %.2f, \"scalar_multi_ms\": %.4f, "
          "\"bitset_multi_ms\": %.4f, \"speedup_multi\": %.2f}%s\n",
          row.n, row.num_types, static_cast<long long>(row.dod),
          row.scalar_single_ms, row.bitset_single_ms, row.SpeedupSingle(),
          row.scalar_multi_ms, row.bitset_multi_ms, row.SpeedupMulti(),
          r + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"gate_ok\": %s\n}\n",
                 gate_ok ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_swap_hot.json\n");
  }

  if (!gate_ok) return 1;
  std::printf("equivalence gate OK: identical DFSs and DoD on every n\n");
  return 0;
}
