// Shared helpers for the XSACT benchmark/reproduction harnesses.
//
// Every bench binary prints the rows of the paper artifact it regenerates
// (see EXPERIMENTS.md for the mapping) and exits non-zero if a sanity
// check on the expected SHAPE of the result fails, so the bench suite
// doubles as an end-to-end regression gate.

#ifndef XSACT_BENCH_BENCH_COMMON_H_
#define XSACT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/timer.h"
#include "core/selector.h"
#include "engine/xsact.h"

namespace xsact::bench {

/// Prints a horizontal rule sized for a standard report line.
inline void Rule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

/// Prints a bench header.
inline void Header(const std::string& id, const std::string& title) {
  Rule();
  std::printf("[%s] %s\n", id.c_str(), title.c_str());
  Rule();
}

/// Runs `fn` `repeats` times and reports per-run wall time statistics.
template <typename Fn>
SampleStats TimeRepeated(int repeats, Fn&& fn) {
  SampleStats stats;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    fn();
    stats.Add(timer.ElapsedSeconds());
  }
  return stats;
}

/// One row of a Figure-4-style per-query report.
struct QueryReport {
  std::string id;
  size_t num_results = 0;
  int64_t dod_snippet = 0;
  int64_t dod_greedy = 0;
  int64_t dod_single = 0;
  int64_t dod_multi = 0;
  double time_single_ms = 0;
  double time_multi_ms = 0;
};

/// Executes one workload query with every algorithm and measures the swap
/// algorithms' selection time (median over `repeats` runs).
inline QueryReport RunQuery(const engine::Xsact& xsact,
                            const std::string& id, const std::string& query,
                            int size_bound, int repeats = 9) {
  QueryReport report;
  report.id = id;

  auto run = [&](core::SelectorKind kind) {
    engine::CompareOptions options;
    options.algorithm = kind;
    options.selector.size_bound = size_bound;
    auto outcome = xsact.SearchAndCompare(query, 0, options);
    if (!outcome.ok()) {
      std::fprintf(stderr, "query %s failed: %s\n", id.c_str(),
                   outcome.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(outcome).value();
  };

  auto snippet = run(core::SelectorKind::kSnippet);
  report.num_results = snippet.table.headers.size();
  report.dod_snippet = snippet.total_dod;
  report.dod_greedy = run(core::SelectorKind::kGreedy).total_dod;

  SampleStats single_times;
  for (int r = 0; r < repeats; ++r) {
    auto outcome = run(core::SelectorKind::kSingleSwap);
    report.dod_single = outcome.total_dod;
    single_times.Add(outcome.select_seconds);
  }
  report.time_single_ms = single_times.Median() * 1e3;

  SampleStats multi_times;
  for (int r = 0; r < repeats; ++r) {
    auto outcome = run(core::SelectorKind::kMultiSwap);
    report.dod_multi = outcome.total_dod;
    multi_times.Add(outcome.select_seconds);
  }
  report.time_multi_ms = multi_times.Median() * 1e3;
  return report;
}

}  // namespace xsact::bench

#endif  // XSACT_BENCH_BENCH_COMMON_H_
