// Shared helpers for the XSACT benchmark/reproduction harnesses.
//
// Every bench binary prints the rows of the paper artifact it regenerates
// (see EXPERIMENTS.md for the mapping) and exits non-zero if a sanity
// check on the expected SHAPE of the result fails, so the bench suite
// doubles as an end-to-end regression gate.

#ifndef XSACT_BENCH_BENCH_COMMON_H_
#define XSACT_BENCH_BENCH_COMMON_H_

#include <sys/resource.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/timer.h"
#include "core/selector.h"
#include "engine/xsact.h"

namespace xsact::bench {

/// Prints a horizontal rule sized for a standard report line.
inline void Rule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

/// Peak resident set size of this process so far, in bytes. A high-water
/// mark (monotone), so report it once per phase and diff across phases.
inline size_t PeakRssBytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

/// Formats a byte count as a compact human-readable string ("1.4 MiB").
inline std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), u == 0 ? "%.0f %s" : "%.1f %s", v, units[u]);
  return buf;
}

/// Prints one index-footprint accounting line (compressed layout vs the
/// raw CSR baseline plus current peak RSS) and returns the compression
/// ratio raw/compressed. Shared by the index benches so their reports
/// stay comparable.
inline double ReportIndexBytes(const std::string& label,
                               size_t compressed_bytes, size_t raw_bytes) {
  const double ratio =
      compressed_bytes > 0
          ? static_cast<double>(raw_bytes) / static_cast<double>(compressed_bytes)
          : 0.0;
  std::printf("%-24s index %10s compressed vs %10s raw CSR (%5.2fx), "
              "peak RSS %s\n",
              label.c_str(), HumanBytes(compressed_bytes).c_str(),
              HumanBytes(raw_bytes).c_str(), ratio,
              HumanBytes(PeakRssBytes()).c_str());
  return ratio;
}

/// Prints a bench header.
inline void Header(const std::string& id, const std::string& title) {
  Rule();
  std::printf("[%s] %s\n", id.c_str(), title.c_str());
  Rule();
}

/// Runs `fn` `repeats` times and reports per-run wall time statistics.
template <typename Fn>
SampleStats TimeRepeated(int repeats, Fn&& fn) {
  SampleStats stats;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    fn();
    stats.Add(timer.ElapsedSeconds());
  }
  return stats;
}

/// One row of a Figure-4-style per-query report.
struct QueryReport {
  std::string id;
  size_t num_results = 0;
  int64_t dod_snippet = 0;
  int64_t dod_greedy = 0;
  int64_t dod_single = 0;
  int64_t dod_multi = 0;
  double time_single_ms = 0;
  double time_multi_ms = 0;
};

/// Executes one workload query with every algorithm and measures the swap
/// algorithms' selection time (median over `repeats` runs).
inline QueryReport RunQuery(const engine::Xsact& xsact,
                            const std::string& id, const std::string& query,
                            int size_bound, int repeats = 9) {
  QueryReport report;
  report.id = id;

  auto run = [&](core::SelectorKind kind) {
    engine::CompareOptions options;
    options.algorithm = kind;
    options.selector.size_bound = size_bound;
    auto outcome = xsact.SearchAndCompare(query, 0, options);
    if (!outcome.ok()) {
      std::fprintf(stderr, "query %s failed: %s\n", id.c_str(),
                   outcome.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(outcome).value();
  };

  auto snippet = run(core::SelectorKind::kSnippet);
  report.num_results = snippet.table.headers.size();
  report.dod_snippet = snippet.total_dod;
  report.dod_greedy = run(core::SelectorKind::kGreedy).total_dod;

  SampleStats single_times;
  for (int r = 0; r < repeats; ++r) {
    auto outcome = run(core::SelectorKind::kSingleSwap);
    report.dod_single = outcome.total_dod;
    single_times.Add(outcome.select_seconds);
  }
  report.time_single_ms = single_times.Median() * 1e3;

  SampleStats multi_times;
  for (int r = 0; r < repeats; ++r) {
    auto outcome = run(core::SelectorKind::kMultiSwap);
    report.dod_multi = outcome.total_dod;
    multi_times.Add(outcome.select_seconds);
  }
  report.time_multi_ms = multi_times.Median() * 1e3;
  return report;
}

}  // namespace xsact::bench

#endif  // XSACT_BENCH_BENCH_COMMON_H_
