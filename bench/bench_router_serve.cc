// bench_router_serve — the multi-corpus routing front-end under load:
// one ServiceRouter owning a QueryService per bundled corpus, serving a
// mixed workload that interleaves datasets.
//
// Gates (exit non-zero on failure):
//   * routed byte-identity: every outcome served through
//     router.Submit(dataset, ...) — table, explanations, DFSs, DoD —
//     must be byte-identical to direct per-service QueryService serving
//     AND to the single-threaded reference for that (corpus, query);
//   * load shedding: flooding a bounded admission queue must shed (every
//     rejection is RESOURCE_EXHAUSTED, survivors still serve identical
//     outcomes, and the shed counter matches the observed rejections);
//   * deadlines: a batch submitted with an expired deadline resolves
//     entirely to DEADLINE_EXCEEDED and is counted per dataset.
//
// Reports routed throughput on the mixed workload and the router's
// overhead versus direct per-service submission (informational).
// Emits machine-readable BENCH_router_serve.json.

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "engine/query_service.h"
#include "engine/router.h"
#include "engine/session.h"
#include "engine/snapshot.h"
#include "table/explainer.h"
#include "table/renderer.h"

namespace {

using namespace xsact;

struct Query {
  std::string text;
  engine::CompareOptions options;
};

struct Corpus {
  std::string name;
  engine::SnapshotPtr snapshot;
  std::vector<Query> queries;
};

/// Everything observable about an outcome, rendered to one string.
std::string RenderOutcome(const engine::ComparisonOutcome& outcome) {
  std::string out = table::RenderAscii(outcome.table);
  out += "total_dod=" + std::to_string(outcome.total_dod) + "\n";
  for (const table::Explanation& e :
       table::ExplainDifferences(outcome.instance, outcome.dfss, 5)) {
    out += e.text + "\n";
  }
  for (const core::Dfs& dfs : outcome.dfss) {
    out += dfs.ToString(outcome.instance) + "\n";
  }
  return out;
}

std::vector<Corpus> BuildCorpora() {
  std::vector<Corpus> corpora;
  {
    Corpus c;
    c.name = "product_reviews";
    data::ProductReviewsConfig config;
    config.num_products = 48;
    c.snapshot = engine::CorpusSnapshot::Build(
        data::GenerateProductReviews(config));
    for (const char* text : {"gps", "camera", "phone"}) {
      Query q;
      q.text = text;
      q.options.selector.size_bound = 6;
      c.queries.push_back(std::move(q));
    }
    corpora.push_back(std::move(c));
  }
  {
    Corpus c;
    c.name = "outdoor_retailer";
    data::OutdoorRetailerConfig config;
    c.snapshot = engine::CorpusSnapshot::Build(
        data::GenerateOutdoorRetailer(config));
    Query q;
    q.text = "men jackets";
    q.options.selector.size_bound = 6;
    q.options.lift_results_to = "brand";
    c.queries.push_back(std::move(q));
    corpora.push_back(std::move(c));
  }
  {
    Corpus c;
    c.name = "movies";
    data::MoviesConfig config;
    c.snapshot = engine::CorpusSnapshot::Build(data::GenerateMovies(config));
    for (const data::QuerySpec& spec : data::MovieQueryWorkload()) {
      Query q;
      q.text = spec.query;
      q.options.selector.size_bound = spec.size_bound;
      c.queries.push_back(std::move(q));
      if (c.queries.size() == 3) break;  // routed mix, not the full sweep
    }
    corpora.push_back(std::move(c));
  }
  return corpora;
}

/// One (dataset, query index) unit of the mixed routed workload.
struct MixedTask {
  size_t corpus = 0;
  size_t query = 0;
};

std::vector<MixedTask> MixedWorkload(const std::vector<Corpus>& corpora,
                                     int rounds) {
  std::vector<MixedTask> tasks;
  for (int r = 0; r < rounds; ++r) {
    for (size_t c = 0; c < corpora.size(); ++c) {
      for (size_t q = 0; q < corpora[c].queries.size(); ++q) {
        tasks.push_back({c, q});
      }
    }
  }
  return tasks;
}

}  // namespace

int main() {
  bench::Header("router_serve",
                "multi-corpus routing: ServiceRouter byte-identity, "
                "admission control, mixed-workload throughput");

  const std::vector<Corpus> corpora = BuildCorpora();
  bool gate_ok = true;

  // Single-threaded reference render per (corpus, query).
  std::vector<std::vector<std::string>> reference(corpora.size());
  for (size_t c = 0; c < corpora.size(); ++c) {
    for (const Query& q : corpora[c].queries) {
      engine::QuerySession session;
      auto outcome = engine::SearchAndCompare(*corpora[c].snapshot, &session,
                                              q.text, 0, q.options);
      if (!outcome.ok()) {
        std::fprintf(stderr, "FAIL %s: reference serve for \"%s\": %s\n",
                     corpora[c].name.c_str(), q.text.c_str(),
                     outcome.status().ToString().c_str());
        return 1;
      }
      reference[c].push_back(RenderOutcome(*outcome));
    }
  }

  std::vector<engine::DatasetSpec> specs;
  for (const Corpus& c : corpora) specs.push_back({c.name, c.snapshot});

  // --- Gate 1: routed byte-identity vs direct serving -------------------
  {
    engine::QueryServiceOptions options;
    options.num_threads = 4;
    options.enable_cache = false;
    auto router = engine::ServiceRouter::Create(specs, options);
    if (!router.ok()) {
      std::fprintf(stderr, "FAIL router create: %s\n",
                   router.status().ToString().c_str());
      return 1;
    }
    for (size_t c = 0; c < corpora.size(); ++c) {
      engine::QueryService direct(corpora[c].snapshot, options);
      for (size_t q = 0; q < corpora[c].queries.size(); ++q) {
        const Query& query = corpora[c].queries[q];
        auto routed =
            router->Submit(corpora[c].name, query.text, query.options).get();
        auto direct_outcome = direct.Submit(query.text, query.options).get();
        if (!routed.ok() || !direct_outcome.ok()) {
          std::fprintf(stderr, "FAIL %s: serve errored\n",
                       corpora[c].name.c_str());
          gate_ok = false;
          continue;
        }
        const std::string routed_rendered = RenderOutcome(**routed);
        if (routed_rendered != RenderOutcome(**direct_outcome) ||
            routed_rendered != reference[c][q]) {
          std::fprintf(stderr,
                       "FAIL %s: routed outcome for \"%s\" diverged from "
                       "direct/reference serving\n",
                       corpora[c].name.c_str(), query.text.c_str());
          gate_ok = false;
        }
      }
    }
    std::printf("identity: routed == direct == single-threaded on %zu "
                "corpora%s\n",
                corpora.size(), gate_ok ? "" : "  ** FAILED **");
  }

  // --- Gate 2: bounded queue sheds under a burst ------------------------
  uint64_t shed_observed = 0;
  uint64_t shed_ok = 0;
  {
    engine::QueryServiceOptions options;
    options.num_threads = 1;
    options.enable_cache = false;
    options.max_queue = 8;
    auto router = engine::ServiceRouter::Create(specs, options);
    if (!router.ok()) return 1;
    constexpr int kBurst = 96;
    std::vector<std::future<StatusOr<engine::OutcomePtr>>> futures;
    for (int k = 0; k < kBurst; ++k) {
      const Query& q = corpora[0].queries[static_cast<size_t>(k) %
                                          corpora[0].queries.size()];
      futures.push_back(router->Submit(corpora[0].name, q.text, q.options));
    }
    for (size_t k = 0; k < futures.size(); ++k) {
      auto outcome = futures[k].get();
      if (outcome.ok()) {
        ++shed_ok;
        if (RenderOutcome(**outcome) !=
            reference[0][k % corpora[0].queries.size()]) {
          std::fprintf(stderr, "FAIL shed round: survivor %zu diverged\n",
                       k);
          gate_ok = false;
        }
      } else if (outcome.status().code() == StatusCode::kResourceExhausted) {
        ++shed_observed;
      } else {
        std::fprintf(stderr, "FAIL shed round: unexpected error %s\n",
                     outcome.status().ToString().c_str());
        gate_ok = false;
      }
    }
    const engine::RouterStats stats = router->stats();
    if (shed_observed == 0) {
      std::fprintf(stderr,
                   "FAIL shed round: a %d-deep burst into a queue of 8 on "
                   "one worker shed nothing\n",
                   kBurst);
      gate_ok = false;
    }
    if (stats.total_shed() != shed_observed) {
      std::fprintf(stderr,
                   "FAIL shed round: counter %llu != observed %llu\n",
                   static_cast<unsigned long long>(stats.total_shed()),
                   static_cast<unsigned long long>(shed_observed));
      gate_ok = false;
    }
    std::printf("shedding: burst=%d ok=%llu shed=%llu (max_queue=8)\n",
                kBurst, static_cast<unsigned long long>(shed_ok),
                static_cast<unsigned long long>(shed_observed));
  }

  // --- Gate 3: expired deadlines resolve DEADLINE_EXCEEDED --------------
  {
    engine::QueryServiceOptions options;
    options.num_threads = 2;
    options.enable_cache = false;
    auto router = engine::ServiceRouter::Create(specs, options);
    if (!router.ok()) return 1;
    const engine::Deadline expired =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);
    constexpr int kLate = 16;
    std::vector<std::future<StatusOr<engine::OutcomePtr>>> futures;
    for (int k = 0; k < kLate; ++k) {
      const Query& q = corpora[1].queries[0];
      futures.push_back(
          router->Submit(corpora[1].name, q.text, q.options, 0, expired));
    }
    uint64_t expired_count = 0;
    for (auto& future : futures) {
      auto outcome = future.get();
      if (!outcome.ok() &&
          outcome.status().code() == StatusCode::kDeadlineExceeded) {
        ++expired_count;
      }
    }
    const engine::RouterStats stats = router->stats();
    if (expired_count != kLate ||
        stats.total_deadline_exceeded() != expired_count) {
      std::fprintf(stderr,
                   "FAIL deadline round: %llu/%d expired (counter %llu)\n",
                   static_cast<unsigned long long>(expired_count), kLate,
                   static_cast<unsigned long long>(
                       stats.total_deadline_exceeded()));
      gate_ok = false;
    }
    std::printf("deadlines: %llu/%d late tasks resolved DEADLINE_EXCEEDED\n",
                static_cast<unsigned long long>(expired_count), kLate);
  }

  // --- Throughput: mixed routed workload vs direct services -------------
  const std::vector<MixedTask> workload = MixedWorkload(corpora, 8);
  const int kReps = 3;
  double routed_best = 0;
  double direct_best = 0;
  {
    engine::QueryServiceOptions options;
    options.num_threads = 2;  // per dataset
    options.enable_cache = false;
    auto router = engine::ServiceRouter::Create(specs, options);
    if (!router.ok()) return 1;
    for (int rep = 0; rep < kReps; ++rep) {
      Timer timer;
      std::vector<std::future<StatusOr<engine::OutcomePtr>>> futures;
      futures.reserve(workload.size());
      for (const MixedTask& task : workload) {
        const Query& q = corpora[task.corpus].queries[task.query];
        futures.push_back(router->Submit(corpora[task.corpus].name, q.text,
                                         q.options));
      }
      for (auto& future : futures) {
        if (!future.get().ok()) return 1;
      }
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0 || seconds < routed_best) routed_best = seconds;
    }

    std::vector<std::unique_ptr<engine::QueryService>> direct;
    for (const Corpus& c : corpora) {
      direct.push_back(
          std::make_unique<engine::QueryService>(c.snapshot, options));
    }
    for (int rep = 0; rep < kReps; ++rep) {
      Timer timer;
      std::vector<std::future<StatusOr<engine::OutcomePtr>>> futures;
      futures.reserve(workload.size());
      for (const MixedTask& task : workload) {
        const Query& q = corpora[task.corpus].queries[task.query];
        futures.push_back(direct[task.corpus]->Submit(q.text, q.options));
      }
      for (auto& future : futures) {
        if (!future.get().ok()) return 1;
      }
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0 || seconds < direct_best) direct_best = seconds;
    }
  }
  const double routed_qps =
      routed_best > 0 ? workload.size() / routed_best : 0;
  const double direct_qps =
      direct_best > 0 ? workload.size() / direct_best : 0;
  std::printf("throughput: %zu mixed tasks over %zu datasets — routed "
              "%.1f qps, direct %.1f qps (overhead %.1f%%)\n",
              workload.size(), corpora.size(), routed_qps, direct_qps,
              direct_qps > 0 ? (direct_qps / (routed_qps > 0 ? routed_qps : 1)
                                - 1.0) * 100.0
                             : 0.0);
  bench::Rule();

  FILE* json = std::fopen("BENCH_router_serve.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"router_serve\",\n"
                 "  \"datasets\": %zu,\n  \"mixed_tasks\": %zu,\n"
                 "  \"routed_qps\": %.1f,\n  \"direct_qps\": %.1f,\n"
                 "  \"shed_burst_ok\": %llu,\n  \"shed_burst_shed\": %llu,\n"
                 "  \"gates\": \"%s\"\n}\n",
                 corpora.size(), workload.size(), routed_qps, direct_qps,
                 static_cast<unsigned long long>(shed_ok),
                 static_cast<unsigned long long>(shed_observed),
                 gate_ok ? "ok" : "FAILED");
    std::fclose(json);
  }

  if (!gate_ok) {
    std::fprintf(stderr, "router_serve: GATES FAILED\n");
    return 1;
  }
  std::printf("router_serve: all gates passed\n");
  return 0;
}
