// A2 — ablation: DoD as the table size bound L grows. Larger budgets
// admit more shared types, so DoD rises and saturates once every
// differentiable shared type fits (the instance's differentiation
// ceiling). Exact optima for small controlled instances are covered by
// the A4 optimality-gap bench; real extracted results are too wide for
// exhaustive enumeration.

#include <cstdio>

#include "bench_common.h"
#include "core/dod.h"
#include "core/selector.h"
#include "data/movies.h"

int main() {
  using namespace xsact;
  bench::Header("Ablation A2", "DoD as the size bound L grows (4 results)");

  data::MoviesConfig config;
  config.franchise_sizes = {4};
  config.min_reviews = 10;
  config.max_reviews = 20;
  engine::Xsact xsact(data::GenerateMovies(config));

  std::printf("%-4s %10s %8s %12s %11s\n", "L", "snippet", "greedy",
              "single-swap", "multi-swap");
  bool ok = true;
  long long prev_multi = -1;
  long long last_multi = 0;
  for (int bound : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    long long dods[4] = {0, 0, 0, 0};
    int i = 0;
    for (core::SelectorKind kind :
         {core::SelectorKind::kSnippet, core::SelectorKind::kGreedy,
          core::SelectorKind::kSingleSwap, core::SelectorKind::kMultiSwap}) {
      engine::CompareOptions options;
      options.algorithm = kind;
      options.selector.size_bound = bound;
      auto outcome = xsact.SearchAndCompare("star", 0, options);
      if (!outcome.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     outcome.status().ToString().c_str());
        return 1;
      }
      dods[i++] = outcome->total_dod;
    }
    std::printf("%-4d %10lld %8lld %12lld %11lld\n", bound, dods[0], dods[1],
                dods[2], dods[3]);
    if (dods[2] < dods[0] || dods[3] < dods[0]) ok = false;  // >= snippet
    if (dods[3] < prev_multi) ok = false;  // monotone in L for multi-swap
    prev_multi = dods[3];
    last_multi = dods[3];
  }
  bench::Rule();
  // With an unbounded table every shared differentiable type fits; the
  // DoD must approach the instance ceiling.
  engine::CompareOptions options;
  options.algorithm = core::SelectorKind::kMultiSwap;
  options.selector.size_bound = 1'000;
  auto unbounded = xsact.SearchAndCompare("star", 0, options);
  if (!unbounded.ok()) return 1;
  std::printf("unbounded multi-swap DoD = %lld, instance ceiling = %lld\n",
              static_cast<long long>(unbounded->total_dod),
              static_cast<long long>(
                  unbounded->instance.DifferentiationCeiling()));
  ok = ok && unbounded->total_dod ==
                 unbounded->instance.DifferentiationCeiling() &&
       last_multi <= unbounded->total_dod;
  std::printf("shape check (monotone in L; saturates at the ceiling): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
