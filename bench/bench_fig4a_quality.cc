// E1 — Figure 4(a): "Quality of DFSs".
//
// For each movie query QM1..QM8, the paper plots the total DoD achieved
// by the single-swap and multi-swap methods. This harness regenerates
// the series on the synthetic IMDB-shaped corpus (plus the snippet and
// greedy baselines the companion paper compares against).
//
// Expected shape (paper): multi-swap >= single-swap on every query; both
// comfortably above the non-comparative snippet baseline overall.

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "data/movies.h"

int main() {
  using namespace xsact;
  bench::Header("Figure 4a", "Quality of DFSs (total DoD per movie query)");

  engine::Xsact xsact(data::GenerateMovies({}));
  const auto workload = data::MovieQueryWorkload(/*size_bound=*/5);

  std::printf("%-6s %8s %10s %8s %12s %11s\n", "query", "results", "snippet",
              "greedy", "single-swap", "multi-swap");
  bool per_query_ok = true;
  long long sum_snippet = 0, sum_single = 0, sum_multi = 0;
  for (const auto& spec : workload) {
    const bench::QueryReport r =
        bench::RunQuery(xsact, spec.id, spec.query, spec.size_bound,
                        /*repeats=*/3);
    std::printf("%-6s %8zu %10lld %8lld %12lld %11lld\n", r.id.c_str(),
                r.num_results, static_cast<long long>(r.dod_snippet),
                static_cast<long long>(r.dod_greedy),
                static_cast<long long>(r.dod_single),
                static_cast<long long>(r.dod_multi));
    // Both optimizers start from the snippets, so per query they can only
    // gain; between the two local optima the paper only claims a general
    // trend ("multi-swap generally outperforms"), checked on the totals.
    if (r.dod_single < r.dod_snippet || r.dod_multi < r.dod_snippet) {
      per_query_ok = false;
    }
    sum_snippet += r.dod_snippet;
    sum_single += r.dod_single;
    sum_multi += r.dod_multi;
  }
  bench::Rule();
  std::printf("totals: snippet=%lld single=%lld multi=%lld\n", sum_snippet,
              sum_single, sum_multi);
  const bool shape_ok =
      per_query_ok && sum_multi >= sum_single && sum_single >= sum_snippet;
  std::printf(
      "shape check (optimizers >= snippet per query; multi >= single >= "
      "snippet in total): %s\n",
      shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
