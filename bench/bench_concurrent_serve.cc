// bench_concurrent_serve — the two-tier serving core under concurrent
// load: one immutable CorpusSnapshot shared by a QueryService worker
// pool, swept over thread counts on each corpus's largest scale.
//
// Gates (exit non-zero on failure):
//   * byte-identity: every outcome served under maximum concurrency —
//     comparison table, explanations, selected DFSs, total DoD — must be
//     byte-identical to the single-threaded reference for its query;
//   * cache correctness: with the result cache enabled, a second round
//     of the same workload must be answered entirely from the cache and
//     return the identical (shared) outcomes;
//   * throughput scaling: >= 3x aggregate QPS at 8 worker threads vs 1
//     on every corpus. This gate needs real parallel hardware, so it is
//     enforced only when std::thread::hardware_concurrency() >= 8 and
//     reported (not gated) on smaller machines — the JSON records which.
//
// Emits machine-readable BENCH_concurrent_serve.json.

#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "engine/query_service.h"
#include "engine/session.h"
#include "engine/snapshot.h"
#include "table/explainer.h"
#include "table/renderer.h"

namespace {

using namespace xsact;

/// One query of a corpus workload.
struct Query {
  std::string text;
  engine::CompareOptions options;
};

/// One corpus at its largest benchmark scale.
struct Corpus {
  std::string name;
  engine::SnapshotPtr snapshot;
  std::vector<Query> queries;
};

/// Everything observable about an outcome, rendered to one string.
std::string RenderOutcome(const engine::ComparisonOutcome& outcome) {
  std::string out = table::RenderAscii(outcome.table);
  out += "total_dod=" + std::to_string(outcome.total_dod) + "\n";
  for (const table::Explanation& e :
       table::ExplainDifferences(outcome.instance, outcome.dfss, 5)) {
    out += e.text + "\n";
  }
  for (const core::Dfs& dfs : outcome.dfss) {
    out += dfs.ToString(outcome.instance) + "\n";
  }
  return out;
}

std::vector<Corpus> BuildCorpora() {
  std::vector<Corpus> corpora;
  {
    Corpus c;
    c.name = "product_reviews";
    data::ProductReviewsConfig config;
    config.num_products = 96;  // pipeline bench's L scale
    c.snapshot = engine::CorpusSnapshot::Build(
        data::GenerateProductReviews(config));
    for (const char* text : {"gps", "camera", "phone"}) {
      Query q;
      q.text = text;
      q.options.selector.size_bound = 6;
      c.queries.push_back(std::move(q));
    }
    corpora.push_back(std::move(c));
  }
  {
    Corpus c;
    c.name = "outdoor_retailer";
    data::OutdoorRetailerConfig config;
    config.min_products = 18 * 4;  // L scale
    config.max_products = 60 * 4;
    c.snapshot = engine::CorpusSnapshot::Build(
        data::GenerateOutdoorRetailer(config));
    Query q;
    q.text = "men jackets";
    q.options.selector.size_bound = 6;
    q.options.lift_results_to = "brand";
    c.queries.push_back(std::move(q));
    corpora.push_back(std::move(c));
  }
  {
    Corpus c;
    c.name = "movies";
    data::MoviesConfig config;
    for (int& size : config.franchise_sizes) size *= 4;  // L scale
    c.snapshot = engine::CorpusSnapshot::Build(data::GenerateMovies(config));
    for (const data::QuerySpec& spec : data::MovieQueryWorkload()) {
      Query q;
      q.text = spec.query;
      q.options.selector.size_bound = spec.size_bound;
      c.queries.push_back(std::move(q));
    }
    corpora.push_back(std::move(c));
  }
  return corpora;
}

/// Submits `tasks` round-robin over the corpus queries and waits for all
/// futures; returns them for inspection.
std::vector<StatusOr<engine::OutcomePtr>> RunRound(
    engine::QueryService& service, const Corpus& corpus, int tasks) {
  std::vector<std::future<StatusOr<engine::OutcomePtr>>> futures;
  futures.reserve(static_cast<size_t>(tasks));
  for (int k = 0; k < tasks; ++k) {
    const Query& q = corpus.queries[static_cast<size_t>(k) %
                                    corpus.queries.size()];
    futures.push_back(service.Submit(q.text, q.options));
  }
  std::vector<StatusOr<engine::OutcomePtr>> outcomes;
  outcomes.reserve(futures.size());
  for (auto& future : futures) outcomes.push_back(future.get());
  return outcomes;
}

struct ThroughputRow {
  std::string corpus;
  int threads = 0;
  int tasks = 0;
  double wall_ms = 0;
  double qps = 0;
  double speedup_vs_1 = 0;
};

struct CacheRow {
  std::string corpus;
  double round1_ms = 0;
  double round2_ms = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double hit_speedup = 0;
};

}  // namespace

int main() {
  bench::Header("concurrent_serve",
                "shared-snapshot concurrent serving: QueryService "
                "throughput scaling + byte-identity + result cache");

  const unsigned hardware = std::thread::hardware_concurrency();
  // The scaling gate needs real parallel hardware and native speed; it is
  // skipped on small machines and in instrumented builds (the TSAN CI job
  // sets XSACT_BENCH_NO_SCALING_GATE — identity gates still apply there).
  const bool gate_scaling =
      hardware >= 8 && std::getenv("XSACT_BENCH_NO_SCALING_GATE") == nullptr;
  const int kTasks = 48;
  const int kReps = 3;  // per (corpus, threads): best-of to damp noise
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  bool gate_ok = true;
  std::vector<ThroughputRow> rows;
  std::vector<CacheRow> cache_rows;

  std::printf("hardware_concurrency=%u (scaling gate %s)\n", hardware,
              gate_scaling ? "ENFORCED" : "reported only, needs >= 8 cores");
  std::printf("%-17s %7s %6s %10s %9s %9s\n", "corpus", "threads", "tasks",
              "wall-ms", "qps", "spd-vs-1");

  for (const Corpus& corpus : BuildCorpora()) {
    // Single-threaded reference render per query.
    std::vector<std::string> reference;
    for (const Query& q : corpus.queries) {
      engine::QuerySession session;
      auto outcome = engine::SearchAndCompare(*corpus.snapshot, &session,
                                              q.text, 0, q.options);
      if (!outcome.ok()) {
        std::fprintf(stderr, "FAIL %s: reference serve for \"%s\": %s\n",
                     corpus.name.c_str(), q.text.c_str(),
                     outcome.status().ToString().c_str());
        return 1;
      }
      reference.push_back(RenderOutcome(*outcome));
    }

    // Byte-identity gate under maximum concurrency (uncached).
    {
      engine::QueryServiceOptions options;
      options.num_threads = thread_counts.back();
      options.enable_cache = false;
      engine::QueryService service(corpus.snapshot, options);
      const auto outcomes = RunRound(service, corpus, kTasks);
      for (size_t k = 0; k < outcomes.size(); ++k) {
        if (!outcomes[k].ok()) {
          std::fprintf(stderr, "FAIL %s: concurrent serve errored: %s\n",
                       corpus.name.c_str(),
                       outcomes[k].status().ToString().c_str());
          gate_ok = false;
          continue;
        }
        const std::string rendered = RenderOutcome(**outcomes[k]);
        if (rendered != reference[k % corpus.queries.size()]) {
          std::fprintf(stderr,
                       "FAIL %s: outcome for task %zu diverged from the "
                       "single-threaded reference\n",
                       corpus.name.c_str(), k);
          gate_ok = false;
        }
      }
    }

    // Throughput sweep (uncached; service reused across reps, best-of).
    double qps_at_1 = 0;
    for (const int threads : thread_counts) {
      engine::QueryServiceOptions options;
      options.num_threads = threads;
      options.enable_cache = false;
      engine::QueryService service(corpus.snapshot, options);
      double best_s = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        Timer timer;
        const auto outcomes = RunRound(service, corpus, kTasks);
        const double seconds = timer.ElapsedSeconds();
        for (const auto& outcome : outcomes) {
          if (!outcome.ok()) {
            std::fprintf(stderr, "FAIL %s: serve errored under load\n",
                         corpus.name.c_str());
            return 1;
          }
        }
        if (rep == 0 || seconds < best_s) best_s = seconds;
      }
      ThroughputRow row;
      row.corpus = corpus.name;
      row.threads = threads;
      row.tasks = kTasks;
      row.wall_ms = best_s * 1e3;
      row.qps = best_s > 0 ? kTasks / best_s : 0;
      if (threads == 1) qps_at_1 = row.qps;
      row.speedup_vs_1 = qps_at_1 > 0 ? row.qps / qps_at_1 : 0;
      std::printf("%-17s %7d %6d %10.2f %9.1f %8.2fx\n", row.corpus.c_str(),
                  row.threads, row.tasks, row.wall_ms, row.qps,
                  row.speedup_vs_1);
      rows.push_back(std::move(row));
    }
    const ThroughputRow& at8 = rows.back();
    if (gate_scaling && at8.speedup_vs_1 < 3.0) {
      std::fprintf(stderr, "FAIL %s: %.2fx aggregate speedup at 8 threads "
                   "< 3x\n", corpus.name.c_str(), at8.speedup_vs_1);
      gate_ok = false;
    }

    // Cache rounds: round 2 must be all hits and identical outcomes.
    {
      engine::QueryServiceOptions options;
      options.num_threads = static_cast<int>(
          hardware >= 4 ? 4 : (hardware > 0 ? hardware : 1));
      options.enable_cache = true;
      engine::QueryService service(corpus.snapshot, options);
      CacheRow row;
      row.corpus = corpus.name;
      Timer t1;
      (void)RunRound(service, corpus, kTasks);
      row.round1_ms = t1.ElapsedSeconds() * 1e3;
      Timer t2;
      const auto outcomes = RunRound(service, corpus, kTasks);
      row.round2_ms = t2.ElapsedSeconds() * 1e3;
      const engine::CacheStats stats = service.cache_stats();
      row.hits = stats.hits;
      row.misses = stats.misses;
      row.hit_speedup = row.round2_ms > 0 ? row.round1_ms / row.round2_ms : 0;
      // Round 1 misses at least once per distinct key and may compute a
      // key twice when its repeats overlap in flight; round 2 must hit
      // on every task.
      if (stats.hits < static_cast<uint64_t>(kTasks)) {
        std::fprintf(stderr,
                     "FAIL %s: round 2 expected >= %d cache hits, got "
                     "%llu\n",
                     corpus.name.c_str(), kTasks,
                     static_cast<unsigned long long>(stats.hits));
        gate_ok = false;
      }
      for (size_t k = 0; k < outcomes.size(); ++k) {
        if (!outcomes[k].ok() ||
            RenderOutcome(**outcomes[k]) !=
                reference[k % corpus.queries.size()]) {
          std::fprintf(stderr, "FAIL %s: cached outcome %zu diverged\n",
                       corpus.name.c_str(), k);
          gate_ok = false;
        }
      }
      std::printf("%-17s   cache %6d r1 %7.2f ms, r2 %7.2f ms "
                  "(%llu hits, %llu misses, %.1fx)\n",
                  corpus.name.c_str(), kTasks, row.round1_ms, row.round2_ms,
                  static_cast<unsigned long long>(row.hits),
                  static_cast<unsigned long long>(row.misses),
                  row.hit_speedup);
      cache_rows.push_back(std::move(row));
    }
  }

  bench::Rule();

  FILE* json = std::fopen("BENCH_concurrent_serve.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"concurrent_serve\",\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"scaling_gate\": \"%s\",\n  \"rows\": [\n",
                 hardware,
                 gate_scaling ? "enforced"
                             : "reported only (hardware_concurrency < 8)");
    for (size_t r = 0; r < rows.size(); ++r) {
      const ThroughputRow& row = rows[r];
      std::fprintf(json,
                   "    {\"corpus\": \"%s\", \"threads\": %d, \"tasks\": %d, "
                   "\"wall_ms\": %.3f, \"qps\": %.1f, "
                   "\"speedup_vs_1\": %.2f}%s\n",
                   row.corpus.c_str(), row.threads, row.tasks, row.wall_ms,
                   row.qps, row.speedup_vs_1,
                   r + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"cache\": [\n");
    for (size_t r = 0; r < cache_rows.size(); ++r) {
      const CacheRow& row = cache_rows[r];
      std::fprintf(json,
                   "    {\"corpus\": \"%s\", \"round1_ms\": %.3f, "
                   "\"round2_ms\": %.3f, \"hits\": %llu, \"misses\": %llu, "
                   "\"hit_speedup\": %.1f}%s\n",
                   row.corpus.c_str(), row.round1_ms, row.round2_ms,
                   static_cast<unsigned long long>(row.hits),
                   static_cast<unsigned long long>(row.misses),
                   row.hit_speedup,
                   r + 1 < cache_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"gate_ok\": %s\n}\n",
                 gate_ok ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_concurrent_serve.json\n");
  }

  if (!gate_ok) return 1;
  std::printf("gate OK: byte-identical outcomes under concurrency, cache "
              "round fully served from cache%s\n",
              gate_scaling ? ", >= 3x at 8 threads on every corpus" : "");
  return 0;
}
