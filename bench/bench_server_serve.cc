// bench_server_serve — the hardened HTTP front-end under load: one
// HttpServer over a ServiceRouter serving the bundled corpora to real
// loopback sockets.
//
// Gates (exit non-zero on failure):
//   * wire byte-identity: every 200 body served over HTTP must be
//     byte-identical to table::RenderJson of the outcome the router
//     returns for the same (dataset, query) — the network layer adds
//     framing, never content;
//   * throughput/latency: a keep-alive client fleet must sustain a
//     floor QPS with a bounded p99 (floors are deliberately loose so
//     the gate catches pathologies, not machine variance);
//   * chaos: a storm of garbage, mid-request disconnects, and injected
//     transport faults must leave the server alive and serving
//     byte-identical answers (zero crashes, zero wedges);
//   * drain: Stop() with requests in flight must complete within the
//     drain budget plus bounded slack.
//
// Emits machine-readable BENCH_server_serve.json.

#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/faultpoint.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "engine/router.h"
#include "engine/snapshot.h"
#include "server/http_client.h"
#include "server/server.h"
#include "table/renderer.h"

namespace {

using namespace xsact;

/// One servable unit: dataset, URL-ready query string, and the direct
/// router arguments that must produce the identical body.
struct WireQuery {
  std::string dataset;
  std::string url;    ///< /query target, percent-encoded
  std::string query;  ///< raw query text for the direct path
  engine::CompareOptions options;
};

std::string PercentEncode(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == ' ') {
      out += "%20";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

struct Corpora {
  std::vector<engine::DatasetSpec> specs;
  std::vector<WireQuery> queries;
};

Corpora BuildCorpora() {
  Corpora out;
  {
    data::ProductReviewsConfig config;
    config.num_products = 48;
    out.specs.push_back({"products", engine::CorpusSnapshot::Build(
                                         data::GenerateProductReviews(config))});
    for (const char* text : {"gps", "camera", "phone"}) {
      WireQuery q;
      q.dataset = "products";
      q.query = text;
      q.url = "/query?dataset=products&q=" + PercentEncode(text);
      out.queries.push_back(std::move(q));
    }
  }
  {
    data::OutdoorRetailerConfig config;
    out.specs.push_back({"outdoor", engine::CorpusSnapshot::Build(
                                        data::GenerateOutdoorRetailer(config))});
    WireQuery q;
    q.dataset = "outdoor";
    q.query = "men jackets";
    q.options.lift_results_to = "brand";
    q.url = "/query?dataset=outdoor&q=men%20jackets&lift=brand";
    out.queries.push_back(std::move(q));
  }
  {
    data::MoviesConfig config;
    out.specs.push_back(
        {"movies", engine::CorpusSnapshot::Build(data::GenerateMovies(config))});
    size_t added = 0;
    for (const data::QuerySpec& spec : data::MovieQueryWorkload()) {
      WireQuery q;
      q.dataset = "movies";
      q.query = spec.query;
      q.url = "/query?dataset=movies&q=" + PercentEncode(spec.query);
      out.queries.push_back(std::move(q));
      if (++added == 3) break;  // a serving mix, not the full sweep
    }
  }
  return out;
}

/// Runs the server event loop on its own thread for the current scope.
class ScopedServer {
 public:
  ScopedServer(engine::ServiceRouter* router, server::ServerOptions options)
      : server_(router, options) {
    const Status started = server_.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "FAIL server start: %s\n",
                   started.ToString().c_str());
      std::exit(1);
    }
    thread_ = std::thread([this] { server_.Run(); });
  }

  ~ScopedServer() { StopAndJoin(); }

  /// Returns milliseconds from Stop() to Run() returning.
  double StopAndJoin() {
    if (!thread_.joinable()) return 0;
    Timer timer;
    server_.Stop();
    thread_.join();
    return timer.ElapsedMillis();
  }

  server::HttpServer& get() { return server_; }
  int port() const { return server_.port(); }

 private:
  server::HttpServer server_;
  std::thread thread_;
};

}  // namespace

int main() {
  bench::Header("server_serve",
                "hardened HTTP front-end: wire byte-identity, keep-alive "
                "throughput, network chaos, graceful drain");

  Corpora corpora = BuildCorpora();
  bool gate_ok = true;

  engine::QueryServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.enable_cache = true;
  auto router = engine::ServiceRouter::Create(corpora.specs, service_options);
  if (!router.ok()) {
    std::fprintf(stderr, "FAIL router create: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }

  // --- Gate 1: wire byte-identity vs the direct router path ------------
  {
    ScopedServer server(&*router, {});
    server::HttpClient client(server.port());
    size_t checked = 0;
    for (const WireQuery& q : corpora.queries) {
      auto response = client.Get(q.url);
      if (!response.ok() || response->code != 200) {
        std::fprintf(stderr, "FAIL identity: %s -> %s\n", q.url.c_str(),
                     response.ok() ? std::to_string(response->code).c_str()
                                   : response.status().ToString().c_str());
        gate_ok = false;
        continue;
      }
      auto direct = router->Submit(q.dataset, q.query, q.options).get();
      if (!direct.ok()) {
        std::fprintf(stderr, "FAIL identity: direct serve of \"%s\": %s\n",
                     q.query.c_str(), direct.status().ToString().c_str());
        gate_ok = false;
        continue;
      }
      if (response->body != table::RenderJson((*direct)->table)) {
        std::fprintf(stderr,
                     "FAIL identity: HTTP body for \"%s\" on %s diverged "
                     "from the direct router outcome\n",
                     q.query.c_str(), q.dataset.c_str());
        gate_ok = false;
      }
      ++checked;
    }
    std::printf("identity: %zu wire bodies == direct RenderJson%s\n", checked,
                gate_ok ? "" : "  ** FAILED **");
  }

  // --- Gate 2: keep-alive throughput and p99 ----------------------------
  double qps = 0;
  double p99_ms = 0;
  {
    ScopedServer server(&*router, {});
    constexpr int kClients = 4;
    constexpr int kRequestsPerClient = 100;
    std::vector<std::vector<double>> latencies(kClients);
    std::vector<int> failures(kClients, 0);
    Timer wall;
    std::vector<std::thread> fleet;
    for (int t = 0; t < kClients; ++t) {
      fleet.emplace_back([&, t] {
        server::HttpClient client(server.port());
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const WireQuery& q =
              corpora.queries[(t + i) % corpora.queries.size()];
          Timer timer;
          auto response = client.Get(q.url);
          if (!response.ok() || response->code != 200) {
            ++failures[t];
            continue;
          }
          latencies[t].push_back(timer.ElapsedMillis());
        }
      });
    }
    for (std::thread& t : fleet) t.join();
    const double seconds = wall.ElapsedSeconds();

    SampleStats all;
    int total_failures = 0;
    size_t total_ok = 0;
    for (int t = 0; t < kClients; ++t) {
      total_failures += failures[t];
      for (double sample : latencies[t]) {
        all.Add(sample);
        ++total_ok;
      }
    }
    qps = seconds > 0 ? static_cast<double>(total_ok) / seconds : 0;
    p99_ms = all.Percentile(99.0);
    std::printf("throughput: %zu keep-alive requests over %d clients — "
                "%.1f qps, p50 %.2f ms, p99 %.2f ms, failures %d\n",
                total_ok, kClients, qps, all.Median(), p99_ms,
                total_failures);
    if (total_failures > 0) {
      std::fprintf(stderr, "FAIL throughput: %d request(s) failed\n",
                   total_failures);
      gate_ok = false;
    }
    // Loose floors: catch a wedged event loop or a quadratic parser,
    // not machine noise.
    if (qps < 20.0) {
      std::fprintf(stderr, "FAIL throughput: %.1f qps below the 20 floor\n",
                   qps);
      gate_ok = false;
    }
    if (p99_ms > 1000.0) {
      std::fprintf(stderr, "FAIL throughput: p99 %.2f ms above 1000 ms\n",
                   p99_ms);
      gate_ok = false;
    }
  }

  // --- Gate 3: network chaos, zero crash, full recovery -----------------
  uint64_t chaos_parse_errors = 0;
  {
    ScopedServer server(&*router, {});
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    const char* points[] = {"server.accept", "server.read", "server.write"};
    for (int round = 0; round < 4; ++round) {
      fault::DisarmAllFaultPoints();
      for (const char* point : points) {
        if (coin(rng) < 0.5) {
          fault::FaultSpec spec;
          spec.code = StatusCode::kIoError;
          spec.probability = 0.3;
          spec.seed = rng();
          fault::ArmFaultPointByName(point, spec);
        }
      }
      for (int i = 0; i < 25; ++i) {
        server::HttpClient client(server.port(), 2000);
        const double dice = coin(rng);
        if (dice < 0.4) {
          (void)client.Get(
              corpora.queries[rng() % corpora.queries.size()].url);
        } else if (dice < 0.7) {
          std::string garbage;
          for (size_t b = 0; b < 1 + rng() % 48; ++b) {
            garbage.push_back(static_cast<char>(1 + rng() % 255));
          }
          if (client.SendRaw(garbage + "\r\n\r\n").ok()) {
            (void)client.ReadResponse();
          }
        } else {
          (void)client.SendRaw("GET /query?q=gps HTTP/1.1\r\nHo");
          client.Close();  // vanish mid-request
        }
      }
    }
    fault::DisarmAllFaultPoints();
    chaos_parse_errors = server.get().stats().parse_errors;

    // Recovery: the same byte-identity contract must hold post-storm.
    server::HttpClient probe(server.port());
    const WireQuery& q = corpora.queries[0];
    auto response = probe.Get(q.url);
    auto direct = router->Submit(q.dataset, q.query, q.options).get();
    if (!response.ok() || response->code != 200 || !direct.ok() ||
        response->body != table::RenderJson((*direct)->table)) {
      std::fprintf(stderr, "FAIL chaos: server did not recover to "
                           "byte-identical serving\n");
      gate_ok = false;
    }
    std::printf("chaos: 100 hostile clients, %llu parse errors, zero "
                "crashes, byte-identical after recovery%s\n",
                static_cast<unsigned long long>(chaos_parse_errors),
                gate_ok ? "" : "  ** FAILED **");
  }

  // --- Gate 4: graceful drain within budget -----------------------------
  double drain_ms = 0;
  {
    constexpr int kDrainBudgetMs = 1000;
    server::ServerOptions options;
    options.drain_budget_ms = kDrainBudgetMs;
    ScopedServer server(&*router, options);
    // Leave requests in flight when the stop lands.
    std::vector<std::unique_ptr<server::HttpClient>> inflight;
    for (int i = 0; i < 6; ++i) {
      inflight.push_back(
          std::make_unique<server::HttpClient>(server.port(), 5000));
      const WireQuery& q = corpora.queries[i % corpora.queries.size()];
      (void)inflight.back()->SendRaw("GET " + q.url + " HTTP/1.1\r\n\r\n");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    drain_ms = server.StopAndJoin();
    // Budget plus the forced-drain grace window plus scheduling slack.
    if (drain_ms > kDrainBudgetMs + 2500) {
      std::fprintf(stderr, "FAIL drain: %.0f ms exceeded the %d ms budget "
                           "(+2500 ms slack)\n",
                   drain_ms, kDrainBudgetMs);
      gate_ok = false;
    }
    int answered = 0;
    for (auto& client : inflight) {
      auto response = client->ReadResponse();
      if (response.ok() && response->code == 200) ++answered;
    }
    std::printf("drain: stopped with 6 in flight in %.0f ms (budget %d ms), "
                "%d answered before close\n",
                drain_ms, kDrainBudgetMs, answered);
  }
  bench::Rule();

  FILE* json = std::fopen("BENCH_server_serve.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"server_serve\",\n"
                 "  \"datasets\": %zu,\n  \"wire_queries\": %zu,\n"
                 "  \"qps\": %.1f,\n  \"p99_ms\": %.2f,\n"
                 "  \"chaos_parse_errors\": %llu,\n"
                 "  \"drain_ms\": %.0f,\n  \"gates\": \"%s\"\n}\n",
                 corpora.specs.size(), corpora.queries.size(), qps, p99_ms,
                 static_cast<unsigned long long>(chaos_parse_errors),
                 drain_ms, gate_ok ? "ok" : "FAILED");
    std::fclose(json);
  }

  if (!gate_ok) {
    std::fprintf(stderr, "server_serve: GATES FAILED\n");
    return 1;
  }
  std::printf("server_serve: all gates passed\n");
  return 0;
}
