// A4 — ablation: approximation quality of the heuristics against the
// exhaustive joint optimum on small random instances (the paper leaves
// "algorithms with a guaranteed approximation ratio" as future work;
// this bench measures the empirical gap).

#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "core/dod.h"
#include "core/exhaustive.h"
#include "core/multi_swap.h"
#include "core/selector.h"
#include "core/single_swap.h"
#include "core/snippet_selector.h"
#include "data/paper_example.h"
#include "feature/result_features.h"

namespace {

/// Small random opinion-style instance (shared aspect pool).
xsact::data::PaperGpsInstance RandomSmallInstance(uint64_t seed, int n,
                                                  int pool) {
  using namespace xsact;
  auto catalog = std::make_unique<feature::FeatureCatalog>();
  Rng rng(seed);
  std::vector<feature::ResultFeatures> results;
  for (int i = 0; i < n; ++i) {
    feature::ResultFeatures rf;
    rf.set_label("R" + std::to_string(i));
    const double cardinality = static_cast<double>(rng.Range(8, 40));
    rf.AddObservation(catalog->InternType("product", "name"),
                      catalog->InternValue("model-" + std::to_string(i)), 1,
                      1);
    for (int t = 0; t < pool; ++t) {
      if (!rng.Chance(0.7)) continue;
      rf.AddObservation(
          catalog->InternType("review", "aspect-" + std::to_string(t)),
          catalog->InternValue("yes"),
          static_cast<double>(rng.Range(1, static_cast<int64_t>(cardinality))),
          cardinality);
    }
    rf.Seal();
    results.push_back(std::move(rf));
  }
  data::PaperGpsInstance out{std::move(catalog),
                             xsact::core::ComparisonInstance()};
  out.instance = xsact::core::ComparisonInstance::Build(
      std::move(results), out.catalog.get(), 0.10);
  return out;
}

}  // namespace

int main() {
  using namespace xsact;
  bench::Header("Ablation A4",
                "Heuristics vs the exhaustive optimum (random instances)");

  constexpr int kInstances = 40;
  core::SelectorOptions options;
  options.size_bound = 3;

  int snippet_opt = 0, single_opt = 0, multi_opt = 0;
  double snippet_ratio = 0, single_ratio = 0, multi_ratio = 0;
  int counted = 0;
  for (uint64_t seed = 0; seed < kInstances; ++seed) {
    auto fx = RandomSmallInstance(seed, 3, 6);
    const int64_t exact = core::TotalDod(
        fx.instance, core::ExhaustiveSelector().Select(fx.instance, options));
    if (exact == 0) continue;
    const int64_t snip = core::TotalDod(
        fx.instance, core::SnippetSelector().Select(fx.instance, options));
    const int64_t single = core::TotalDod(
        fx.instance,
        core::SingleSwapOptimizer().Select(fx.instance, options));
    const int64_t multi = core::TotalDod(
        fx.instance, core::MultiSwapOptimizer().Select(fx.instance, options));
    if (single > exact || multi > exact) {
      std::fprintf(stderr, "heuristic beat the oracle: impossible\n");
      return 1;
    }
    ++counted;
    snippet_opt += snip == exact;
    single_opt += single == exact;
    multi_opt += multi == exact;
    snippet_ratio += static_cast<double>(snip) / static_cast<double>(exact);
    single_ratio += static_cast<double>(single) / static_cast<double>(exact);
    multi_ratio += static_cast<double>(multi) / static_cast<double>(exact);
  }
  std::printf("instances with positive optimum: %d / %d\n", counted,
              kInstances);
  std::printf("%-12s %14s %18s\n", "algorithm", "hits optimum",
              "mean DoD ratio");
  std::printf("%-12s %11d/%d %18.3f\n", "snippet", snippet_opt, counted,
              snippet_ratio / counted);
  std::printf("%-12s %11d/%d %18.3f\n", "single-swap", single_opt, counted,
              single_ratio / counted);
  std::printf("%-12s %11d/%d %18.3f\n", "multi-swap", multi_opt, counted,
              multi_ratio / counted);
  bench::Rule();
  const bool ok = counted > 0 && multi_opt >= single_opt &&
                  multi_ratio >= single_ratio && single_ratio >= snippet_ratio;
  std::printf("shape check (multi >= single >= snippet in ratio): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
