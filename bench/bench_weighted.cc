// A6 — extension ablation: weighted DFS selection (the paper's future
// work, "considering more factors (e.g., interestingness) when selecting
// features"). Compares the plain multi-swap objective with the
// interestingness- and significance-weighted variants on the movie
// workload, reporting both the weighted objective and the induced plain
// DoD for each scheme.

#include <cstdio>

#include "bench_common.h"
#include "core/dod.h"
#include "core/multi_swap.h"
#include "core/snippet_selector.h"
#include "core/weights.h"
#include "data/movies.h"

int main() {
  using namespace xsact;
  bench::Header("Ablation A6",
                "Weighted DFS selection (interestingness extension, L=5)");

  engine::Xsact xsact(data::GenerateMovies({}));
  const auto workload = data::MovieQueryWorkload(5);

  std::printf("%-6s | %10s | %21s | %20s\n", "", "uniform", "interestingness",
              "significance");
  std::printf("%-6s | %10s | %10s %10s | %9s %10s\n", "query", "DoD",
              "wDoD", "DoD", "wDoD", "DoD");
  bool ok = true;
  for (const auto& spec : workload) {
    engine::CompareOptions base;
    base.selector.size_bound = spec.size_bound;
    base.algorithm = core::SelectorKind::kMultiSwap;
    auto plain = xsact.SearchAndCompare(spec.query, 0, base);
    if (!plain.ok()) return 1;

    double wdod[2];
    int64_t dod[2];
    int i = 0;
    for (core::WeightScheme scheme :
         {core::WeightScheme::kInterestingness,
          core::WeightScheme::kSignificance}) {
      core::WeightedMultiSwapOptimizer selector(scheme);
      core::SelectorOptions sopts;
      sopts.size_bound = spec.size_bound;
      const auto dfss = selector.Select(plain->instance, sopts);
      const auto weights =
          core::TypeWeights::Compute(plain->instance, scheme);
      wdod[i] = core::WeightedTotalDod(plain->instance, dfss, weights);
      dod[i] = core::TotalDod(plain->instance, dfss);
      // Local optimizers may land on different local optima, so the
      // weighted optimizer need not dominate the plain one's endpoint
      // even on its own objective; what IS guaranteed is improvement
      // over its snippet start (it accepts only weighted-gain ascent).
      const auto snippet =
          core::SnippetSelector().Select(plain->instance, sopts);
      const double snippet_wdod =
          core::WeightedTotalDod(plain->instance, snippet, weights);
      if (wdod[i] + 1e-9 < snippet_wdod) ok = false;
      ++i;
    }
    std::printf("%-6s | %10lld | %10.2f %10lld | %9.2f %10lld\n",
                spec.id.c_str(), static_cast<long long>(plain->total_dod),
                wdod[0], static_cast<long long>(dod[0]), wdod[1],
                static_cast<long long>(dod[1]));
  }
  bench::Rule();
  std::printf("shape check (weighted optimizer improves on its snippet "
              "start for every scheme): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
