// Outdoor Retailer brand comparison: the paper's second demo scenario.
//
// "if a male user wants to buy a jacket and issues a query 'men,
//  jackets', then each result will be a brand selling men's jackets ...
//  the user will learn, for example, brand Marmot mainly sells rain
//  jackets, while brand Columbia focuses on insulated ski jackets."
//
//   $ ./examples/outdoor_retailer_brands [query]
//     (default: "men jackets")

#include <cstdio>
#include <string>

#include "data/outdoor_retailer.h"
#include "engine/xsact.h"
#include "table/renderer.h"

int main(int argc, char** argv) {
  using namespace xsact;
  const std::string query = argc > 1 ? argv[1] : "men jackets";

  engine::Xsact xsact(data::GenerateOutdoorRetailer({}));

  // Results are individual products; lift them to the owning brands so
  // the comparison contrasts brand portfolios.
  engine::CompareOptions options;
  options.lift_results_to = "brand";
  options.selector.size_bound = 6;
  auto outcome = xsact.SearchAndCompare(query, 4, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "comparison failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("query \"%s\" -> comparing %zu brands\n\n", query.c_str(),
              outcome->table.headers.size());
  std::printf("%s", table::RenderAscii(outcome->table).c_str());

  // Read the brand focus off the table, like the paper's walkthrough.
  for (const auto& row : outcome->table.rows) {
    if (row.label != "product.category") continue;
    std::printf("\ncategory focus per brand:\n");
    for (size_t i = 0; i < row.cells.size(); ++i) {
      std::printf("  %-18s mainly sells %s\n",
                  outcome->table.headers[i].c_str(), row.cells[i].c_str());
    }
  }
  return 0;
}
