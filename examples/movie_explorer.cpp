// Movie explorer: runs the paper's evaluation workload (QM1..QM8 on the
// IMDB-shaped corpus) interactively and prints, for each query, the
// result list, the DoD of every algorithm and the winning table — a
// command-line rendition of the evaluation behind Figure 4.
//
//   $ ./examples/movie_explorer            # run all eight queries
//   $ ./examples/movie_explorer QM3        # run one query
//   $ ./examples/movie_explorer dragon 8   # free-form query, bound 8

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/movies.h"
#include "engine/xsact.h"
#include "table/renderer.h"

namespace {

void RunOne(const xsact::engine::Xsact& xsact, const std::string& id,
            const std::string& query, int bound, bool print_table) {
  using namespace xsact;
  auto results = xsact.Search(query);
  if (!results.ok()) {
    std::fprintf(stderr, "%s: search failed: %s\n", id.c_str(),
                 results.status().ToString().c_str());
    return;
  }
  std::printf("%s  \"%s\": %zu results\n", id.c_str(), query.c_str(),
              results->size());
  if (results->size() < 2) return;

  long long dods[3];
  double times[3];
  int i = 0;
  engine::ComparisonOutcome winner;
  for (core::SelectorKind kind :
       {core::SelectorKind::kSnippet, core::SelectorKind::kSingleSwap,
        core::SelectorKind::kMultiSwap}) {
    engine::CompareOptions options;
    options.algorithm = kind;
    options.selector.size_bound = bound;
    auto outcome = xsact.SearchAndCompare(query, 0, options);
    if (!outcome.ok()) return;
    dods[i] = outcome->total_dod;
    times[i] = outcome->select_seconds * 1e3;
    if (kind == core::SelectorKind::kMultiSwap) {
      winner = std::move(outcome).value();
    }
    ++i;
  }
  std::printf("    DoD: snippet=%lld  single-swap=%lld  multi-swap=%lld"
              "   (times ms: %.3f / %.3f / %.3f)\n",
              dods[0], dods[1], dods[2], times[0], times[1], times[2]);
  if (print_table) {
    std::printf("%s\n", xsact::table::RenderAscii(winner.table).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xsact;
  engine::Xsact xsact(data::GenerateMovies({}));
  const auto workload = data::MovieQueryWorkload(5);

  if (argc > 1 && std::string(argv[1]).rfind("QM", 0) == 0) {
    for (const auto& spec : workload) {
      if (spec.id == argv[1]) {
        RunOne(xsact, spec.id, spec.query, spec.size_bound,
               /*print_table=*/true);
        return 0;
      }
    }
    std::fprintf(stderr, "unknown query id %s (QM1..QM8)\n", argv[1]);
    return 1;
  }
  if (argc > 1) {
    const int bound = argc > 2 ? std::atoi(argv[2]) : 5;
    RunOne(xsact, "ad-hoc", argv[1], bound > 0 ? bound : 5,
           /*print_table=*/true);
    return 0;
  }
  for (const auto& spec : workload) {
    RunOne(xsact, spec.id, spec.query, spec.size_bound,
           /*print_table=*/false);
  }
  return 0;
}
