// Shopping comparison: the paper's primary demo scenario (§3, Product
// Reviews dataset). Generates a buzzillions-shaped catalog, lets the
// "user" pick a query and a table size bound, and contrasts the XSACT
// comparison table with the non-comparative snippet baseline.
//
//   $ ./examples/shopping_comparison [query] [table_bound]
//     (defaults: "gps" 8)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/product_reviews.h"
#include "engine/xsact.h"
#include "table/renderer.h"

int main(int argc, char** argv) {
  using namespace xsact;
  const std::string query = argc > 1 ? argv[1] : "gps";
  const int bound = argc > 2 ? std::atoi(argv[2]) : 8;
  if (bound <= 0) {
    std::fprintf(stderr, "table bound must be positive\n");
    return 1;
  }

  data::ProductReviewsConfig config;
  config.num_products = 30;
  config.min_reviews = 10;
  config.max_reviews = 60;
  engine::Xsact xsact(data::GenerateProductReviews(config));

  auto results = xsact.Search(query);
  if (!results.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  std::printf("query \"%s\": %zu results\n", query.c_str(), results->size());
  if (results->size() < 2) {
    std::printf("need at least two results to compare; try \"gps\", "
                "\"camera\" or a brand name\n");
    return 1;
  }

  // The demo compares the first four checkboxes.
  engine::CompareOptions options;
  options.selector.size_bound = bound;

  options.algorithm = core::SelectorKind::kSnippet;
  auto snippet = xsact.SearchAndCompare(query, 4, options);
  options.algorithm = core::SelectorKind::kMultiSwap;
  auto best = xsact.SearchAndCompare(query, 4, options);
  if (!snippet.ok() || !best.ok()) {
    std::fprintf(stderr, "comparison failed\n");
    return 1;
  }

  std::printf("\n--- snippet baseline (eXtract-style, DoD %lld) ---\n",
              static_cast<long long>(snippet->total_dod));
  std::printf("%s", table::RenderAscii(snippet->table).c_str());
  std::printf("\n--- XSACT multi-swap DFSs (DoD %lld, %.3f ms) ---\n",
              static_cast<long long>(best->total_dod),
              best->select_seconds * 1e3);
  std::printf("%s", table::RenderAscii(best->table).c_str());

  std::printf("\nXSACT improves the degree of differentiation by %+lld "
              "within the same %d-row budget.\n",
              static_cast<long long>(best->total_dod - snippet->total_dod),
              bound);
  return 0;
}
