// Quickstart: the 60-second XSACT tour.
//
// Builds a tiny in-memory XML catalog, runs a keyword query, compares
// the results and prints the comparison table — the full Figure-3
// pipeline in one file.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "engine/xsact.h"
#include "table/renderer.h"

int main() {
  using namespace xsact;

  // 1. Any XML corpus works as long as results carry features. Here: two
  //    GPS devices with reviews in the shape of the paper's Figure 1.
  static constexpr const char* kCatalog = R"(
<products>
  <product>
    <name>TomTom Go 630</name>
    <price>219.99</price>
    <reviews>
      <review><stars>5</stars>
        <pros><pro>compact</pro><pro>easy to read</pro></pros>
        <uses><use>auto</use></uses></review>
      <review><stars>4</stars>
        <pros><pro>compact</pro></pros>
        <uses><use>auto</use></uses></review>
      <review><stars>4</stars>
        <pros><pro>easy to read</pro></pros>
        <uses><use>hiking</use></uses></review>
    </reviews>
  </product>
  <product>
    <name>TomTom Go 730</name>
    <price>329.99</price>
    <reviews>
      <review><stars>4</stars>
        <pros><pro>acquires satellites quickly</pro></pros>
        <uses><use>faster routes</use></uses></review>
      <review><stars>3</stars>
        <pros><pro>easy to setup</pro><pro>compact</pro></pros>
        <uses><use>faster routes</use></uses></review>
      <review><stars>5</stars>
        <pros><pro>easy to setup</pro></pros>
        <uses><use>auto</use></uses></review>
    </reviews>
  </product>
</products>)";

  // 2. Build the engine (parser + entity identifier + inverted index).
  auto xsact = engine::Xsact::FromXml(kCatalog);
  if (!xsact.ok()) {
    std::fprintf(stderr, "failed to load corpus: %s\n",
                 xsact.status().ToString().c_str());
    return 1;
  }

  // 3. Keyword search, exactly like the demo's search box.
  auto results = xsact->Search("tomtom");
  if (!results.ok() || results->size() < 2) {
    std::fprintf(stderr, "expected two results\n");
    return 1;
  }
  std::printf("query \"tomtom\" returned %zu results:\n", results->size());
  for (const auto& r : *results) {
    std::printf("  - %s\n", r.title.c_str());
  }

  // 4. Compare them: XSACT picks a Differentiation Feature Set per result
  //    (multi-swap method, table bound L = 5) and renders the table.
  engine::CompareOptions options;
  options.selector.size_bound = 5;
  auto outcome = xsact->SearchAndCompare("tomtom", 0, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "comparison failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", table::RenderAscii(outcome->table).c_str());
  std::printf("\nselected DFSs:\n");
  for (int i = 0; i < outcome->instance.num_results(); ++i) {
    std::printf("  %s: %s\n", outcome->table.headers[static_cast<size_t>(i)].c_str(),
                outcome->dfss[static_cast<size_t>(i)]
                    .ToString(outcome->instance)
                    .c_str());
  }
  return 0;
}
