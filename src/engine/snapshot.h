// CorpusSnapshot: the immutable tier of the XSACT serving stack.
//
// A snapshot bundles one corpus document with every read-only structure
// derived from it — node table, interner-backed inverted index, inferred
// entity schema, per-node category index — behind a shared_ptr<const>.
// After construction nothing in a snapshot ever mutates, so any number
// of concurrent queries (QuerySession, QueryService workers, plain
// threads) may evaluate against one snapshot simultaneously with no
// locking. Per-query mutable state lives in engine::QuerySession
// (session.h); the thread-pool executor on top is engine::QueryService
// (query_service.h).

#ifndef XSACT_ENGINE_SNAPSHOT_H_
#define XSACT_ENGINE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "search/search_engine.h"
#include "xml/document.h"
#include "xml/parser.h"

namespace xsact::engine {

class CorpusSnapshot;

/// Memory accounting for a snapshot's inverted index: what the
/// block-compressed posting storage holds versus what the same postings
/// would cost in the uncompressed CSR layout it replaced. Surfaced by
/// the CLI's --stats flag and the bench_index_compress gate.
struct IndexStats {
  size_t terms = 0;
  size_t postings = 0;
  size_t compressed_bytes = 0;  ///< payload + skip entries + offsets
  size_t raw_csr_bytes = 0;     ///< 1 NodeId/posting + 1 offset/term
  double ratio() const {
    return compressed_bytes == 0
               ? 0.0
               : static_cast<double>(raw_csr_bytes) /
                     static_cast<double>(compressed_bytes);
  }
};

/// How snapshots are shared: the snapshot is owned jointly by every
/// component serving queries over it (Xsact facade, QueryService,
/// in-flight sessions) and dies with the last of them.
using SnapshotPtr = std::shared_ptr<const CorpusSnapshot>;

/// Immutable, thread-safe corpus bundle. See file comment.
class CorpusSnapshot {
 public:
  /// Builds every derived structure for `doc`. O(document size).
  explicit CorpusSnapshot(
      xml::Document doc,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Builds from a fused-parse corpus (document + node table from one
  /// zero-copy pass; see xml::ParseCorpus).
  explicit CorpusSnapshot(
      xml::ParsedCorpus corpus,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Builds a shared snapshot from an already-parsed document.
  static SnapshotPtr Build(
      xml::Document doc,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Parses `xml_text` and builds a shared snapshot.
  static StatusOr<SnapshotPtr> FromXml(
      std::string_view xml_text,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Loads and parses an XML corpus file (single pre-sized read).
  static StatusOr<SnapshotPtr> FromFile(
      const std::string& path,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Structural validation of the derived index structures (per-block
  /// postings checksums, CSR consistency, id bounds). FromXml/FromFile
  /// run this before publishing a snapshot, so a corrupted or truncated
  /// corpus surfaces as kDataCorruption at load/reload time instead of
  /// undefined behavior on the query path.
  Status Validate() const;

  /// The immutable search tier (document, table, schema, indexes).
  const search::SearchEngine& engine() const { return engine_; }
  const search::CorpusIndex& corpus() const { return engine_.corpus(); }

  const xml::Document& document() const { return engine_.document(); }
  const xml::NodeTable& table() const { return engine_.table(); }
  const entity::EntitySchema& schema() const { return engine_.schema(); }
  const search::InvertedIndex& index() const { return engine_.index(); }
  const entity::DocumentCategoryIndex& category_index() const {
    return engine_.category_index();
  }

  /// Index memory accounting (see IndexStats).
  IndexStats index_stats() const {
    const search::InvertedIndex& idx = engine_.index();
    return IndexStats{idx.TermCount(), idx.PostingCount(),
                      idx.CompressedSizeBytes(), idx.RawCsrSizeBytes()};
  }

 private:
  search::SearchEngine engine_;
};

}  // namespace xsact::engine

#endif  // XSACT_ENGINE_SNAPSHOT_H_
