// Xsact: the end-to-end system facade (paper Figure 3).
//
//   keywords -> SearchEngine -> results -> [user selects results]
//            -> Entity Identifier + Feature Extractor (result processor)
//            -> DFS generator (snippet / greedy / single-swap / multi-swap)
//            -> ComparisonTable
//
// This is the class a downstream application embeds; the examples/ and
// bench/ binaries are all built on it.

#ifndef XSACT_ENGINE_XSACT_H_
#define XSACT_ENGINE_XSACT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "core/selector.h"
#include "feature/extractor.h"
#include "search/search_engine.h"
#include "table/comparison_table.h"
#include "xml/document.h"

namespace xsact::engine {

/// Options for a comparison request.
struct CompareOptions {
  /// DFS generation algorithm; the paper's default is multi-swap.
  core::SelectorKind algorithm = core::SelectorKind::kMultiSwap;
  /// Size bound L and iteration limits.
  core::SelectorOptions selector;
  /// Differentiability threshold x (paper: empirically 10%).
  double diff_threshold = 0.10;
  /// Feature extraction knobs.
  feature::ExtractorOptions extractor;
  /// When non-empty, lift every search result to its nearest ancestor
  /// with this tag before comparing (e.g. compare the BRANDS owning the
  /// matched products — the paper's Outdoor Retailer scenario).
  std::string lift_results_to;
  /// Cap on the number of compared results, applied AFTER lifting and
  /// deduplication (0 = compare all distinct results). SearchAndCompare's
  /// max_results parameter populates this field.
  size_t max_compared = 0;
};

/// The outcome of one comparison: the problem instance, the chosen DFSs,
/// and the rendered table model. Owns the feature catalog the instance
/// points into, so it is self-contained and movable.
struct ComparisonOutcome {
  std::unique_ptr<feature::FeatureCatalog> catalog;
  core::ComparisonInstance instance;
  std::vector<core::Dfs> dfss;
  table::ComparisonTable table;
  int64_t total_dod = 0;
  /// Wall time spent inside the DFS selection algorithm only.
  double select_seconds = 0;
};

/// End-to-end XSACT system over one XML corpus.
class Xsact {
 public:
  /// Parses `xml_text` and builds the search engine (index + schema).
  static StatusOr<Xsact> FromXml(
      std::string_view xml_text,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Loads and parses an XML corpus file.
  static StatusOr<Xsact> FromFile(
      const std::string& path,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Builds from an already-constructed document. `algorithm` selects the
  /// answer semantics (SLCA via scan or indexed lookup, or ELCA).
  explicit Xsact(
      xml::Document doc,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Keyword search (document-order results; see SearchEngine::Search).
  StatusOr<std::vector<search::SearchResult>> Search(
      std::string_view query) const;

  /// Keyword search ordered by relevance (see search/ranking.h).
  StatusOr<std::vector<search::SearchResult>> SearchRanked(
      std::string_view query) const;

  /// Compares explicit result subtrees (the user's checkbox selection).
  StatusOr<ComparisonOutcome> CompareResults(
      const std::vector<const xml::Node*>& result_roots,
      const CompareOptions& options = {}) const;

  /// Convenience: search, keep the first `max_results` results (0 = all),
  /// and compare them.
  StatusOr<ComparisonOutcome> SearchAndCompare(
      std::string_view query, size_t max_results = 0,
      const CompareOptions& options = {}) const;

  const search::SearchEngine& engine() const { return engine_; }

 private:
  search::SearchEngine engine_;
};

}  // namespace xsact::engine

#endif  // XSACT_ENGINE_XSACT_H_
