// Xsact: the end-to-end system facade (paper Figure 3).
//
//   keywords -> SearchEngine -> results -> [user selects results]
//            -> Entity Identifier + Feature Extractor (result processor)
//            -> DFS generator (snippet / greedy / single-swap / multi-swap)
//            -> ComparisonTable
//
// This is the class a downstream application embeds; the examples/ and
// bench/ binaries are all built on it.
//
// Concurrency: Xsact is a thin adapter over the two-tier serving core —
// an immutable, thread-safe CorpusSnapshot (snapshot.h) plus a pool of
// per-query QuerySessions (session.h). Every method below is const and
// safe to call from any number of threads simultaneously: each call
// leases a session from the internal pool (reusing warmed-up workspaces)
// and runs against the shared snapshot, so concurrent callers never
// contend beyond the pool's pop/push. Outputs are byte-identical to
// single-threaded serving. For sustained multi-threaded load with
// batching and caching, use engine::QueryService (query_service.h),
// which shares the same snapshot.

#ifndef XSACT_ENGINE_XSACT_H_
#define XSACT_ENGINE_XSACT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "engine/session.h"
#include "engine/snapshot.h"

namespace xsact::engine {

/// End-to-end XSACT system over one XML corpus. See the concurrency note
/// in the file comment.
class Xsact {
 public:
  /// Parses `xml_text` and builds the search engine (index + schema).
  static StatusOr<Xsact> FromXml(
      std::string_view xml_text,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Loads and parses an XML corpus file (single pre-sized read).
  static StatusOr<Xsact> FromFile(
      const std::string& path,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Builds from an already-constructed document. `algorithm` selects the
  /// answer semantics (SLCA via scan or indexed lookup, or ELCA).
  explicit Xsact(
      xml::Document doc,
      search::SlcaAlgorithm algorithm = search::SlcaAlgorithm::kIndexed);

  /// Wraps an existing snapshot (shared with other serving components).
  explicit Xsact(SnapshotPtr snapshot);

  /// Keyword search (document-order results; see SearchEngine::Search).
  StatusOr<std::vector<search::SearchResult>> Search(
      std::string_view query) const;

  /// Keyword search ordered by relevance (see search/ranking.h).
  StatusOr<std::vector<search::SearchResult>> SearchRanked(
      std::string_view query) const;

  /// Compares explicit result subtrees (the user's checkbox selection).
  StatusOr<ComparisonOutcome> CompareResults(
      const std::vector<const xml::Node*>& result_roots,
      const CompareOptions& options = {}) const;

  /// Convenience: search, keep the first `max_results` results (0 = all),
  /// and compare them.
  StatusOr<ComparisonOutcome> SearchAndCompare(
      std::string_view query, size_t max_results = 0,
      const CompareOptions& options = {}) const;

  const search::SearchEngine& engine() const { return snapshot_->engine(); }

  /// The shared immutable snapshot this facade serves from.
  const SnapshotPtr& snapshot() const { return snapshot_; }

 private:
  SnapshotPtr snapshot_;
  /// Shared (not unique) so Xsact stays movable/copyable; copies serve
  /// from the same snapshot and session pool.
  std::shared_ptr<SessionPool> sessions_;
};

}  // namespace xsact::engine

#endif  // XSACT_ENGINE_XSACT_H_
