// QueryService: multi-threaded serving executor for XSACT comparisons.
//
// A fixed pool of worker threads serves Submit()/SubmitBatch() requests
// against one immutable CorpusSnapshot. Each worker owns a private
// QuerySession, so queries run with zero shared mutable state beyond the
// task queue itself; outcomes are byte-identical to single-threaded
// serving (gated by tests/concurrent_serve_test.cc and
// bench/bench_concurrent_serve.cc).
//
// On top sits a sharded LRU result cache keyed on (normalized query,
// options fingerprint):
//   * normalization canonicalizes whitespace/case/punctuation through
//     the query parser, so "  GPS " and "gps" share an entry;
//   * the fingerprint covers every CompareOptions field that can change
//     the outcome, so two requests share an entry only when their
//     results are provably identical;
//   * cached values are shared_ptr<const ComparisonOutcome> — immutable
//     after construction, safe to hand to any number of reader threads;
//   * each shard evicts least-recently-used entries under its own lock;
//     hit/miss/eviction counters are exposed via cache_stats().
// Error outcomes are never cached. Two identical queries in flight at
// once may both compute (the cache is populated on completion, not on
// admission); the second insert wins harmlessly.
//
// Live corpus updates (snapshot hot swap): the service publishes its
// snapshot as an atomically swappable {snapshot, epoch} pair.
//   * Submit pins the task to the snapshot current at submission time,
//     so a query NEVER observes two snapshots — in-flight and queued
//     work finishes on the snapshot it was admitted under while new
//     submissions see the fresh corpus immediately;
//   * cache keys carry the epoch, so an outcome computed against one
//     snapshot can never serve a query admitted under another
//     (epoch-based invalidation); the swap also eagerly clears the
//     shards so stale entries don't squat in the LRU;
//   * ReloadCorpus parses + indexes the new corpus on a background
//     thread and publishes it via SwapSnapshot on success — a failed
//     load leaves the serving snapshot untouched.
//
// Request-level admission control: the task queue can be bounded
// (max_queue) — a submission that would exceed the bound is shed with
// ResourceExhausted instead of growing the backlog — and every request
// may carry a deadline. A worker that dequeues a task at or past its
// deadline resolves it to DeadlineExceeded without evaluating it, so an
// overloaded service drains stale work at queue speed instead of compute
// speed. Both are counted in admission_stats(). engine::ServiceRouter
// (router.h) composes several QueryServices — one per named dataset —
// behind a single Submit(dataset, ...) front-end.

#ifndef XSACT_ENGINE_QUERY_SERVICE_H_
#define XSACT_ENGINE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "engine/session.h"
#include "engine/snapshot.h"

namespace xsact::engine {

/// Shared, immutable comparison outcome (the cache's unit of storage).
using OutcomePtr = std::shared_ptr<const ComparisonOutcome>;

/// Per-request completion deadline (steady clock). A task a worker
/// dequeues at or after its deadline is not evaluated: its future
/// resolves to Status::DeadlineExceeded instead. Cache hits resolve at
/// submission and therefore never miss a deadline.
using Deadline = std::chrono::steady_clock::time_point;

/// Sentinel deadline: the request may start arbitrarily late.
inline constexpr Deadline kNoDeadline = Deadline::max();

/// Tuning knobs for a QueryService.
struct QueryServiceOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  int num_threads = 0;
  /// Result cache on/off (a capacity of 0 also disables it).
  bool enable_cache = true;
  /// Number of independent LRU shards (lock striping).
  size_t cache_shards = 8;
  /// Total cached outcomes across all shards. Distributed so per-shard
  /// capacities sum exactly to this value (low-index shards take the
  /// remainder; a shard may get capacity 0 when capacity < shards).
  size_t cache_capacity = 512;
  /// Admission bound: maximum tasks queued (admitted, not yet picked up
  /// by a worker). A Submit that would exceed it is shed — its future
  /// resolves to Status::ResourceExhausted. 0 = unbounded.
  size_t max_queue = 0;
  /// Test seam: when >= 0, used in place of
  /// std::thread::hardware_concurrency() to resolve num_threads == 0.
  /// Lets tests exercise the hardware_concurrency() == 0 case the
  /// standard permits ("value not computable").
  int hardware_concurrency_override = -1;
  /// ReloadCorpus retry policy: transient failures (kIoError only — a
  /// parse or validation error is deterministic and retrying cannot
  /// help) are retried up to this many total attempts, sleeping
  /// reload_backoff_ms before the first retry and doubling it each
  /// further retry. Clamped to >= 1.
  int reload_max_attempts = 3;
  int reload_backoff_ms = 10;
};

/// Reload/serving health of one QueryService, kept current by
/// ReloadCorpus. A service starts healthy; a reload that exhausts its
/// retries marks it unhealthy (it keeps serving the last good snapshot)
/// and the next successful reload restores it.
struct ServiceHealth {
  bool healthy = true;
  uint64_t reload_successes = 0;
  uint64_t reload_failures = 0;  ///< reloads failed after all retries
  uint64_t reload_attempts = 0;  ///< individual load attempts, incl. retries
  std::string last_error;        ///< most recent failure; empty when healthy
};

/// Monotonic cache counters (totals since construction) plus the current
/// entry count. A miss is counted when the task is ADMITTED, not at
/// lookup: submissions shed by a full queue never compute, so they
/// count toward AdmissionStats::shed only — hits + misses + shed covers
/// every cacheable submission exactly once.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
};

/// Admission-control counters (totals since construction) plus the
/// current queue depth.
struct AdmissionStats {
  /// Tasks enqueued to the worker pool (cache hits are not admitted).
  uint64_t admitted = 0;
  /// Submissions rejected because the queue was at max_queue.
  uint64_t shed = 0;
  /// Tasks dequeued at or past their deadline (never evaluated), plus
  /// tasks whose evaluation was cut short by an expired deadline (the
  /// cooperative in-flight check; see QuerySession::cancel).
  uint64_t deadline_exceeded = 0;
  /// Tasks resolved with kCancelled: queued work drained by Shutdown()
  /// and submissions rejected while draining.
  uint64_t cancelled = 0;
  /// Tasks currently queued, not yet picked up by a worker.
  uint64_t queue_depth = 0;
};

/// Multi-threaded query executor over one snapshot. See file comment.
/// Thread-safe: Submit/SubmitBatch/cache_stats may be called from any
/// thread. The destructor finishes all accepted work before returning,
/// so every future obtained from Submit becomes ready.
class QueryService {
 public:
  explicit QueryService(SnapshotPtr snapshot,
                        QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one SearchAndCompare; the future resolves to the outcome
  /// (or the error status). Cache hits resolve immediately. Admission
  /// control: when the queue holds max_queue tasks the request is shed
  /// (ResourceExhausted); a task whose worker dequeues it at or past
  /// `deadline` resolves to DeadlineExceeded without being evaluated.
  ///
  /// `cancel` (optional) is a caller-owned per-request cancel signal —
  /// the HTTP front-end fires it when the client disconnects. A task
  /// whose source has fired by dequeue time resolves to kCancelled
  /// without being evaluated; one that fires mid-evaluation stops at the
  /// next cooperative check. The source must stay alive until the
  /// returned future is ready.
  std::future<StatusOr<OutcomePtr>> Submit(std::string query,
                                           const CompareOptions& options = {},
                                           size_t max_results = 0,
                                           Deadline deadline = kNoDeadline,
                                           const CancelSource* cancel =
                                               nullptr)
      XSACT_EXCLUDES(queue_mu_);

  /// Enqueues a batch; futures are in input order.
  std::vector<std::future<StatusOr<OutcomePtr>>> SubmitBatch(
      const std::vector<std::string>& queries,
      const CompareOptions& options = {}, size_t max_results = 0,
      Deadline deadline = kNoDeadline);

  /// Aggregate cache counters across shards.
  CacheStats cache_stats() const;

  /// Admission counters (queue depth, shed, deadline-exceeded).
  AdmissionStats admission_stats() const XSACT_EXCLUDES(queue_mu_);

  /// Reload health (see ServiceHealth). Thread-safe.
  ServiceHealth health() const XSACT_EXCLUDES(health_mu_);

  /// Drains the service without destroying it: rejects new submissions
  /// (kCancelled — including ones that would have hit the result
  /// cache), resolves all queued tasks with kCancelled, abandons
  /// pending reloads, and signals in-flight evaluations to stop at
  /// their next cooperative cancellation check. Idempotent; the
  /// destructor still joins the workers. Every future obtained from
  /// Submit still becomes ready.
  void Shutdown() XSACT_EXCLUDES(queue_mu_, drain_mu_);

  /// Per-shard cache capacities (empty when the cache is disabled).
  /// Invariant: the values sum exactly to options.cache_capacity.
  const std::vector<size_t>& cache_shard_capacities() const {
    return shard_capacities_;
  }

  /// Resolved worker count.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The snapshot new submissions are currently served from.
  SnapshotPtr snapshot() const { return Current()->snapshot; }

  /// Monotonic snapshot generation (bumped by every swap).
  uint64_t snapshot_epoch() const { return Current()->epoch; }

  /// Atomically publishes `fresh` as the serving snapshot. In-flight and
  /// already-queued queries finish on the snapshot they were admitted
  /// under; the result cache is epoch-invalidated. Thread-safe.
  void SwapSnapshot(SnapshotPtr fresh) XSACT_EXCLUDES(swap_mu_);

  /// Loads `path` (fused zero-copy parse + index build) on a background
  /// thread and SwapSnapshot()s the result. The future resolves after
  /// publication — ok, or the load error (serving state untouched).
  /// Concurrent reloads serialize; the SLCA algorithm is inherited from
  /// the current snapshot. After Shutdown() the reload is abandoned
  /// (kCancelled) without touching the serving snapshot or health.
  std::future<Status> ReloadCorpus(std::string path)
      XSACT_EXCLUDES(reload_mu_);

  /// Canonical form of a query for cache keying: the parsed conjuncts
  /// ("term" / "field:term") joined by single spaces — whitespace, case
  /// and punctuation variants of the same query collapse onto one key.
  static std::string NormalizeQuery(std::string_view query);

  /// Stable textual encoding of every outcome-relevant CompareOptions
  /// field (doubles rendered as exact hex floats).
  static std::string OptionsFingerprint(const CompareOptions& options);

 private:
  /// One published serving generation. Immutable after construction;
  /// replaced wholesale by SwapSnapshot so readers always see a
  /// coherent (snapshot, epoch) pair.
  struct ServingState {
    SnapshotPtr snapshot;
    uint64_t epoch = 0;
  };

  struct Task {
    std::string query;
    CompareOptions options;
    std::string cache_key;  // empty = uncacheable (cache disabled)
    /// The snapshot (and its epoch) this task was admitted under: the
    /// worker evaluates against exactly this corpus, swap or no swap.
    SnapshotPtr snapshot;
    uint64_t epoch = 0;
    /// Latest start time; checked when a worker dequeues the task.
    Deadline deadline = kNoDeadline;
    /// Caller-owned per-request cancellation (client disconnect); may be
    /// null. Checked at dequeue and polled during evaluation.
    const CancelSource* cancel = nullptr;
    std::promise<StatusOr<OutcomePtr>> promise;
  };

  /// One LRU shard: entries in recency order (front = most recent).
  struct CacheShard {
    Mutex mu;
    std::list<std::pair<std::string, OutcomePtr>> lru XSACT_GUARDED_BY(mu);
    std::unordered_map<std::string_view,
                       std::list<std::pair<std::string, OutcomePtr>>::iterator>
        map XSACT_GUARDED_BY(mu);  // keys view the list nodes' strings
                                   // (stable addresses)
  };

  void WorkerLoop(QuerySession* session) XSACT_EXCLUDES(queue_mu_);
  /// Synchronous reload body (runs on the reload thread): load with
  /// retry/backoff per options_, swap on success, record health; bails
  /// out (kCancelled) as soon as the drain signal fires.
  Status ReloadNow(const std::string& path)
      XSACT_EXCLUDES(health_mu_, drain_mu_, swap_mu_);
  size_t ShardIndexFor(std::string_view key) const;
  OutcomePtr CacheLookup(std::string_view key);
  void CacheInsert(const std::string& key, uint64_t epoch,
                   OutcomePtr outcome);
  /// LRU tail eviction down to `capacity`, with counter upkeep. The
  /// caller holds the shard lock (compile-time enforced).
  void EvictToCapacity(CacheShard& shard, size_t capacity)
      XSACT_REQUIRES(shard.mu);
  void ClearCache();

  /// Atomic read of the published serving state.
  std::shared_ptr<const ServingState> Current() const {
    return std::atomic_load_explicit(&serving_, std::memory_order_acquire);
  }

  /// Published {snapshot, epoch}; swapped atomically by SwapSnapshot.
  /// NOT guarded: readers go through the lock-free atomic_load in
  /// Current(); only stores (serialized by swap_mu_) mutate it.
  std::shared_ptr<const ServingState> serving_;
  Mutex swap_mu_;  // serializes swappers (epoch monotonicity)

  Mutex reload_mu_;
  std::thread reload_thread_ XSACT_GUARDED_BY(reload_mu_);

  QueryServiceOptions options_;
  /// Per-shard LRU capacities; sum exactly to options_.cache_capacity.
  std::vector<size_t> shard_capacities_;

  std::vector<std::unique_ptr<CacheShard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};

  mutable Mutex health_mu_;
  ServiceHealth health_ XSACT_GUARDED_BY(health_mu_);

  /// Sticky drain signal observed by in-flight evaluations (installed
  /// into each worker session's Cancellation alongside the deadline).
  /// Internally atomic; reads need no lock. Cancel() fires under
  /// drain_mu_ so the backoff sleeper cannot miss the flag between its
  /// predicate check and its wait.
  CancelSource drain_;
  /// Wakes sleepers that must observe the drain promptly — today the
  /// reload retry backoff, which would otherwise pin Shutdown() (or the
  /// destructor) for the full backoff interval.
  Mutex drain_mu_;
  CondVar drain_cv_;

  mutable Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<Task> queue_ XSACT_GUARDED_BY(queue_mu_);
  bool stopping_ XSACT_GUARDED_BY(queue_mu_) = false;
  /// Set by Shutdown(); rejects new submissions (checked BEFORE the
  /// cache so a drained service never answers from the cache either).
  bool draining_ XSACT_GUARDED_BY(queue_mu_) = false;

  /// One private session per worker (index-aligned with workers_).
  std::vector<std::unique_ptr<QuerySession>> worker_sessions_;
  std::vector<std::thread> workers_;
};

}  // namespace xsact::engine

#endif  // XSACT_ENGINE_QUERY_SERVICE_H_
