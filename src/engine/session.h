// QuerySession: the per-query mutable tier of the XSACT serving stack.
//
// Everything a query mutates — search evaluation scratch, the feature
// extractor's workspace, pooled selector instances, lift/dedup buffers —
// lives in one QuerySession. A session owns no corpus state: serve calls
// pair it with an immutable CorpusSnapshot (snapshot.h), so
//
//   * one snapshot + N sessions  =  N concurrent queries, lock-free;
//   * session reuse across sequential queries keeps every hash table and
//     buffer warm (cleared, capacity kept) without changing any output.
//
// SessionPool hands out sessions RAII-style for callers (like the Xsact
// facade) that don't manage per-thread sessions themselves.

#ifndef XSACT_ENGINE_SESSION_H_
#define XSACT_ENGINE_SESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/statusor.h"
#include "core/selector.h"
#include "engine/snapshot.h"
#include "feature/extractor.h"
#include "search/search_engine.h"
#include "table/comparison_table.h"

namespace xsact::engine {

/// Options for a comparison request.
struct CompareOptions {
  /// DFS generation algorithm; the paper's default is multi-swap.
  core::SelectorKind algorithm = core::SelectorKind::kMultiSwap;
  /// Size bound L and iteration limits.
  core::SelectorOptions selector;
  /// Differentiability threshold x (paper: empirically 10%).
  double diff_threshold = 0.10;
  /// Feature extraction knobs.
  feature::ExtractorOptions extractor;
  /// When non-empty, lift every search result to its nearest ancestor
  /// with this tag before comparing (e.g. compare the BRANDS owning the
  /// matched products — the paper's Outdoor Retailer scenario).
  std::string lift_results_to;
  /// Cap on the number of compared results, applied AFTER lifting and
  /// deduplication (0 = compare all distinct results). SearchAndCompare's
  /// max_results parameter populates this field.
  size_t max_compared = 0;
};

/// The outcome of one comparison: the problem instance, the chosen DFSs,
/// and the rendered table model. Owns the feature catalog the instance
/// points into, so it is self-contained and movable. Once built it is
/// never mutated by the serve stack, so a shared_ptr<const
/// ComparisonOutcome> (the QueryService cache's unit) is safe to read
/// from any number of threads.
struct ComparisonOutcome {
  std::unique_ptr<feature::FeatureCatalog> catalog;
  core::ComparisonInstance instance;
  std::vector<core::Dfs> dfss;
  table::ComparisonTable table;
  int64_t total_dod = 0;
  /// Wall time spent inside the DFS selection algorithm only.
  double select_seconds = 0;
};

/// All per-query mutable state (see file comment). Default-constructed
/// sessions are ready to serve; a session must not be used by two
/// queries concurrently, but is freely reusable sequentially.
class QuerySession {
 public:
  /// Search evaluation scratch (posting decode pools, merge-kernel block
  /// cache/heap/stack, posting filters, dedup set, schema-probe
  /// composition buffer). Warmed by the first query; later queries run
  /// the match pipeline allocation-free.
  search::SearchWorkspace search;
  /// Feature-extraction workspace (local interners, aggregation tables).
  feature::ExtractionScratch extraction;
  /// Pooled DFS selector instances, one per algorithm kind.
  core::SelectorSet selectors;
  /// Lift/dedup buffers of CompareResults.
  std::vector<const xml::Node*> roots;
  std::unordered_set<const xml::Node*> seen;
  /// Cancellation scope for queries served through this session. The
  /// serving layer installs the request's deadline + drain token before
  /// evaluating and resets it afterwards; the Search/Compare entry points
  /// propagate it into the kernels and the extractor. Default: never
  /// expires, so direct (non-service) callers are unaffected.
  Cancellation cancel;
};

/// Keyword search against a snapshot; all mutable state in *session.
StatusOr<std::vector<search::SearchResult>> Search(
    const CorpusSnapshot& snapshot, QuerySession* session,
    std::string_view query);

/// Ranked keyword search; the query is parsed once into the session's
/// workspace and ranking reads the terms as string_views in place.
StatusOr<std::vector<search::SearchResult>> SearchRanked(
    const CorpusSnapshot& snapshot, QuerySession* session,
    std::string_view query);

/// Compares explicit result subtrees (the user's checkbox selection).
/// Reentrant across (snapshot, session) pairs; byte-identical output to
/// the single-threaded path for any session, fresh or reused.
StatusOr<ComparisonOutcome> CompareResults(
    const CorpusSnapshot& snapshot, QuerySession* session,
    const std::vector<const xml::Node*>& result_roots,
    const CompareOptions& options = {});

/// Search, keep the first `max_results` distinct results (0 = all), and
/// compare them.
StatusOr<ComparisonOutcome> SearchAndCompare(const CorpusSnapshot& snapshot,
                                             QuerySession* session,
                                             std::string_view query,
                                             size_t max_results = 0,
                                             const CompareOptions& options = {});

/// Thread-safe pool of QuerySessions: Acquire() pops an idle session (or
/// creates one when none is idle); the returned lease gives it back on
/// destruction. Repeated queries therefore reuse warmed-up workspaces
/// instead of reconstructing them.
class SessionPool {
 public:
  /// RAII handle to a pooled session. Movable, not copyable.
  class Lease {
   public:
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept;
    ~Lease();

    QuerySession* get() const { return session_.get(); }
    QuerySession* operator->() const { return session_.get(); }
    QuerySession& operator*() const { return *session_; }

   private:
    friend class SessionPool;
    Lease(SessionPool* pool, std::unique_ptr<QuerySession> session)
        : pool_(pool), session_(std::move(session)) {}

    SessionPool* pool_;
    std::unique_ptr<QuerySession> session_;
  };

  SessionPool() = default;
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Pops an idle session, or creates a fresh one when the pool is empty.
  Lease Acquire() XSACT_EXCLUDES(mu_);

  /// Number of sessions currently idle in the pool.
  size_t IdleCount() const XSACT_EXCLUDES(mu_);

 private:
  void Release(std::unique_ptr<QuerySession> session) XSACT_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::vector<std::unique_ptr<QuerySession>> idle_ XSACT_GUARDED_BY(mu_);
};

}  // namespace xsact::engine

#endif  // XSACT_ENGINE_SESSION_H_
