#include "engine/query_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/faultpoint.h"

namespace xsact::engine {

namespace {

const fault::FaultPointId kFaultServiceWorker =
    fault::RegisterFaultPoint("service.worker");
const fault::FaultPointId kFaultServiceReload =
    fault::RegisterFaultPoint("service.reload");

/// 64-bit FNV-1a over the key bytes; cheap, stable, and good enough for
/// shard striping (shard count is small).
uint64_t HashKey(std::string_view key) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string QueryService::NormalizeQuery(std::string_view query) {
  std::string out;
  for (const search::QueryTerm& qt : search::ParseQuery(query)) {
    if (!out.empty()) out.push_back(' ');
    if (!qt.field.empty()) {
      out.append(qt.field);
      out.push_back(':');
    }
    out.append(qt.term);
  }
  return out;
}

std::string QueryService::OptionsFingerprint(const CompareOptions& options) {
  // %a renders doubles as exact hex floats: two fingerprints are equal
  // iff every numeric field is bit-for-bit equal.
  char buf[160];
  std::snprintf(buf, sizeof(buf), "a%d|b%d|r%d|f%d|t%a|vc%d|vl%zu|ve%d|m%zu|",
                static_cast<int>(options.algorithm),
                options.selector.size_bound, options.selector.max_rounds,
                options.selector.fill_to_bound ? 1 : 0, options.diff_threshold,
                options.extractor.fold_value_case ? 1 : 0,
                options.extractor.max_value_length,
                options.extractor.skip_empty_values ? 1 : 0,
                options.max_compared);
  std::string out(buf);
  out.append(options.lift_results_to);  // last field: free-form, no escaping
  return out;
}

QueryService::QueryService(SnapshotPtr snapshot, QueryServiceOptions options)
    : serving_(std::make_shared<const ServingState>(
          ServingState{std::move(snapshot), 0})),
      options_(options) {
  if (options_.cache_shards == 0) options_.cache_shards = 1;
  if (options_.cache_capacity == 0) options_.enable_cache = false;
  if (options_.enable_cache) {
    // Distribute the capacity so the shard capacities sum EXACTLY to
    // cache_capacity: base entries everywhere, the remainder spread over
    // the low-index shards. (The former max(1, capacity/shards) drifted:
    // capacity=1, shards=8 admitted 8 entries; 100/8 admitted 96.) A
    // shard left with capacity 0 simply never stores an entry.
    const size_t base = options_.cache_capacity / options_.cache_shards;
    const size_t remainder = options_.cache_capacity % options_.cache_shards;
    shard_capacities_.resize(options_.cache_shards, base);
    for (size_t s = 0; s < remainder; ++s) ++shard_capacities_[s];
    shards_.reserve(options_.cache_shards);
    for (size_t s = 0; s < options_.cache_shards; ++s) {
      shards_.push_back(std::make_unique<CacheShard>());
    }
  }

  int threads = options_.num_threads;
  if (threads <= 0) {
    // The override seam lets tests pin what hardware_concurrency()
    // reports — including 0, which the standard permits ("value not
    // computable").
    threads = options_.hardware_concurrency_override >= 0
                  ? options_.hardware_concurrency_override
                  : static_cast<int>(std::thread::hardware_concurrency());
  }
  // Clamp AFTER resolving the hardware count: a 0 from either source
  // must still yield a pool with one worker, or no task ever runs.
  threads = std::max(threads, 1);
  worker_sessions_.reserve(static_cast<size_t>(threads));
  workers_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    worker_sessions_.push_back(std::make_unique<QuerySession>());
    workers_.emplace_back(&QueryService::WorkerLoop, this,
                          worker_sessions_.back().get());
  }
}

QueryService::~QueryService() {
  {
    MutexLock lock(reload_mu_);
    if (reload_thread_.joinable()) reload_thread_.join();
  }
  {
    MutexLock lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void QueryService::SwapSnapshot(SnapshotPtr fresh) {
  MutexLock lock(swap_mu_);
  auto next = std::make_shared<const ServingState>(
      ServingState{std::move(fresh), Current()->epoch + 1});
  std::atomic_store_explicit(&serving_, std::move(next),
                             std::memory_order_release);
  // Stale-epoch keys can never be looked up again; clear eagerly so the
  // dead entries don't occupy LRU capacity until natural eviction.
  ClearCache();
}

std::future<Status> QueryService::ReloadCorpus(std::string path) {
  auto promise = std::make_shared<std::promise<Status>>();
  std::future<Status> future = promise->get_future();
  MutexLock lock(reload_mu_);
  if (reload_thread_.joinable()) reload_thread_.join();
  reload_thread_ = std::thread([this, path = std::move(path), promise] {
    promise->set_value(ReloadNow(path));
  });
  return future;
}

Status QueryService::ReloadNow(const std::string& path) {
  const search::SlcaAlgorithm algorithm =
      Current()->snapshot->corpus().algorithm;
  const int max_attempts = std::max(options_.reload_max_attempts, 1);
  int backoff_ms = std::max(options_.reload_backoff_ms, 1);
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // A draining service must not load a fresh snapshot: a reload racing
    // Shutdown() could otherwise publish a new serving generation (and
    // even flip the service back to healthy) after the caller was told
    // everything is cancelled. Abandon WITHOUT touching health — this is
    // not a reload failure, and last-known-good state stays meaningful.
    if (drain_.cancelled()) {
      return Status::Cancelled(
          "reload abandoned: service is shutting down");
    }
    {
      MutexLock lock(health_mu_);
      ++health_.reload_attempts;
    }
    // The fault site substitutes for the load so an injected kIoError
    // exercises the retry loop exactly like a real transient failure.
    Status injected = fault::CheckFaultPoint(kFaultServiceReload);
    StatusOr<SnapshotPtr> fresh =
        injected.ok() ? CorpusSnapshot::FromFile(path, algorithm)
                      : StatusOr<SnapshotPtr>(std::move(injected));
    if (fresh.ok()) {
      // Re-check the drain between the (slow) load and publication: the
      // swap below is the step that must never happen on a drained
      // service.
      if (drain_.cancelled()) {
        return Status::Cancelled(
            "reload abandoned: service drained during load");
      }
      // Publishing is the last step: a failure anywhere above leaves the
      // previous (last-known-good) snapshot serving untouched.
      SwapSnapshot(std::move(fresh).value());
      MutexLock lock(health_mu_);
      health_.healthy = true;
      ++health_.reload_successes;
      health_.last_error.clear();
      return Status::Ok();
    }
    // Carry the underlying parse/I-O message so callers see WHY the
    // reload failed, not just that it did.
    last = fresh.status().WithContext("reload attempt " +
                                      std::to_string(attempt) + "/" +
                                      std::to_string(max_attempts));
    if (fresh.status().code() != StatusCode::kIoError) break;
    if (attempt < max_attempts) {
      // Interruptible backoff: wait on the drain signal instead of a
      // plain sleep, so Shutdown() during a backed-off reload returns
      // promptly instead of blocking for the remaining interval. The
      // predicate loop is explicit (not a wait-lambda) so the analysis
      // sees every access inside the locked scope.
      bool drained_while_waiting;
      {
        MutexLock wait_lock(drain_mu_);
        const auto wait_deadline = std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(backoff_ms);
        while (!drain_.cancelled() &&
               drain_cv_.WaitUntil(drain_mu_, wait_deadline)) {
        }
        drained_while_waiting = drain_.cancelled();
      }
      if (drained_while_waiting) {
        last = Status::Cancelled(
            "reload abandoned: service draining during retry backoff (" +
            last.ToString() + ")");
        break;
      }
      backoff_ms *= 2;
    }
  }
  MutexLock lock(health_mu_);
  health_.healthy = false;
  ++health_.reload_failures;
  health_.last_error = last.ToString();
  return last;
}

ServiceHealth QueryService::health() const {
  MutexLock lock(health_mu_);
  return health_;
}

void QueryService::Shutdown() {
  std::deque<Task> drained;
  {
    MutexLock lock(queue_mu_);
    draining_ = true;
    drained.swap(queue_);
  }
  // Signal in-flight evaluations BEFORE resolving the drained promises so
  // a caller observing a cancelled future knows no further work runs on
  // its behalf beyond the current cooperative check interval. The cv
  // wakes the reload thread out of a retry backoff (under drain_mu_ so
  // the sleeper cannot miss the flag between its predicate and wait).
  // queue_mu_ is NOT held here: the two locks are never nested, in
  // either order (a lock cycle between the drain and queue paths is how
  // Shutdown could deadlock against a worker).
  {
    MutexLock drain_lock(drain_mu_);
    drain_.Cancel();
  }
  drain_cv_.NotifyAll();
  for (Task& task : drained) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(Status::Cancelled("service shutting down"));
  }
  queue_cv_.NotifyAll();
}

std::future<StatusOr<OutcomePtr>> QueryService::Submit(
    std::string query, const CompareOptions& options, size_t max_results,
    Deadline deadline, const CancelSource* cancel) {
  // Fold max_results into the options so equivalent requests share a
  // cache entry regardless of which parameter carried the cap.
  CompareOptions effective = options;
  if (max_results > 0) effective.max_compared = max_results;

  // Drain check FIRST — before the cache lookup. Shutdown() promises
  // that every later submission resolves kCancelled; a cache hit
  // answered here would hand out real data after that promise (the
  // lock-discipline audit caught exactly this: tests/
  // lock_discipline_test.cc::CacheHitDoesNotBypassDrain). The check is
  // repeated under the same lock at admission below for requests that
  // race Shutdown() past this point.
  {
    MutexLock lock(queue_mu_);
    if (draining_) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      std::promise<StatusOr<OutcomePtr>> rejected;
      rejected.set_value(
          Status::Cancelled("service is shutting down; submission rejected"));
      return rejected.get_future();
    }
  }

  // Pin the task to the serving state current at submission: the worker
  // evaluates against exactly this snapshot, and the cache key carries
  // its epoch, so a hot swap can neither mix snapshots within a query
  // nor serve an outcome across generations.
  const std::shared_ptr<const ServingState> serving = Current();

  std::string cache_key;
  if (options_.enable_cache) {
    cache_key = std::to_string(serving->epoch);
    cache_key.push_back('\x1e');
    cache_key.append(NormalizeQuery(query));
    cache_key.push_back('\x1e');
    cache_key.append(OptionsFingerprint(effective));
    if (OutcomePtr cached = CacheLookup(cache_key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      std::promise<StatusOr<OutcomePtr>> ready;
      ready.set_value(std::move(cached));
      return ready.get_future();
    }
    // The miss is counted at admission below: a submission shed by the
    // full queue never computes, so counting it here would make the
    // miss count overstate actual work under overload.
  }

  Task task;
  task.query = std::move(query);
  task.options = std::move(effective);
  task.cache_key = std::move(cache_key);
  task.snapshot = serving->snapshot;
  task.epoch = serving->epoch;
  task.deadline = deadline;
  task.cancel = cancel;
  std::future<StatusOr<OutcomePtr>> future = task.promise.get_future();
  {
    MutexLock lock(queue_mu_);
    if (draining_) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(
          Status::Cancelled("service is shutting down; submission rejected"));
      return future;
    }
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      // Load shedding: reject instead of growing the backlog, so a
      // burst degrades into fast failures rather than unbounded latency.
      shed_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.max_queue) +
          " tasks queued)"));
      return future;
    }
    if (!task.cache_key.empty()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
    queue_.push_back(std::move(task));
    admitted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.NotifyOne();
  return future;
}

std::vector<std::future<StatusOr<OutcomePtr>>> QueryService::SubmitBatch(
    const std::vector<std::string>& queries, const CompareOptions& options,
    size_t max_results, Deadline deadline) {
  std::vector<std::future<StatusOr<OutcomePtr>>> futures;
  futures.reserve(queries.size());
  for (const std::string& query : queries) {
    futures.push_back(Submit(query, options, max_results, deadline));
  }
  return futures;
}

CacheStats QueryService::cache_stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

AdmissionStats QueryService::admission_stats() const {
  AdmissionStats stats;
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  {
    MutexLock lock(queue_mu_);
    stats.queue_depth = queue_.size();
  }
  return stats;
}

void QueryService::WorkerLoop(QuerySession* session) {
  for (;;) {
    Task task;
    {
      MutexLock lock(queue_mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }

    // Deadline check at dequeue: a task starting at or past its deadline
    // is answered DEADLINE_EXCEEDED without evaluation, so a backlog
    // drains at queue speed, not compute speed.
    if (task.deadline != kNoDeadline &&
        std::chrono::steady_clock::now() >= task.deadline) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(
          Status::DeadlineExceeded("task dequeued past its deadline"));
      continue;
    }

    // A request whose caller already cancelled (the HTTP front-end saw
    // the client disconnect) is dead weight: resolve it without burning
    // worker time on an answer nobody will read.
    if (task.cancel != nullptr && task.cancel->cancelled()) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(
          Status::Cancelled("request cancelled before evaluation"));
      continue;
    }

    // Injected evaluation failure (chaos suite): resolve like any other
    // evaluation error — the promise is always satisfied.
    Status injected = fault::CheckFaultPoint(kFaultServiceWorker);
    if (!injected.ok()) {
      task.promise.set_value(std::move(injected));
      continue;
    }

    // The deadline also bounds EXECUTION, not just queue time: the
    // session's cancellation token (deadline + the service's drain
    // signal + the caller's per-request cancel) is polled inside the
    // kernels and the extractor, so a slow query stops within one check
    // interval of expiry.
    session->cancel = Cancellation(task.deadline, &drain_, task.cancel);
    StatusOr<ComparisonOutcome> outcome =
        SearchAndCompare(*task.snapshot, session, task.query, 0,
                         task.options);
    session->cancel = Cancellation();
    if (!outcome.ok()) {
      const StatusCode code = outcome.status().code();
      if (code == StatusCode::kDeadlineExceeded) {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      } else if (code == StatusCode::kCancelled) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
      }
      task.promise.set_value(outcome.status());  // errors are not cached
      continue;
    }
    OutcomePtr shared =
        std::make_shared<const ComparisonOutcome>(std::move(outcome).value());
    if (!task.cache_key.empty()) {
      CacheInsert(task.cache_key, task.epoch, shared);
    }
    task.promise.set_value(std::move(shared));
  }
}

void QueryService::ClearCache() {
  for (const std::unique_ptr<CacheShard>& shard : shards_) {
    MutexLock lock(shard->mu);
    const size_t dropped = shard->lru.size();
    shard->map.clear();
    shard->lru.clear();
    entries_.fetch_sub(dropped, std::memory_order_relaxed);
    evictions_.fetch_add(dropped, std::memory_order_relaxed);
  }
}

size_t QueryService::ShardIndexFor(std::string_view key) const {
  return HashKey(key) % shards_.size();
}

OutcomePtr QueryService::CacheLookup(std::string_view key) {
  CacheShard& shard = *shards_[ShardIndexFor(key)];
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  // Refresh recency: move the entry to the front of the LRU list (the
  // map's iterator stays valid across splice).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void QueryService::CacheInsert(const std::string& key, uint64_t epoch,
                               OutcomePtr outcome) {
  const size_t index = ShardIndexFor(key);
  const size_t capacity = shard_capacities_[index];
  if (capacity == 0) return;  // this shard stores nothing
  CacheShard& shard = *shards_[index];
  MutexLock lock(shard.mu);
  // A task finishing after a swap must not refill the shard with a
  // stale-epoch key (unreachable by lookups, yet squatting on LRU
  // capacity). SwapSnapshot publishes the new epoch BEFORE clearing the
  // shards, so under the shard lock: either this insert precedes the
  // clear (which then removes it), or the epoch check below sees the
  // new epoch and skips the insert. Either way no stale entry survives.
  if (Current()->epoch != epoch) return;
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // A concurrent worker computed the same key; keep the newer value and
    // refresh recency.
    it->second->second = std::move(outcome);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(outcome));
  shard.map.emplace(std::string_view(shard.lru.front().first),
                    shard.lru.begin());
  entries_.fetch_add(1, std::memory_order_relaxed);
  EvictToCapacity(shard, capacity);
}

void QueryService::EvictToCapacity(CacheShard& shard, size_t capacity) {
  while (shard.lru.size() > capacity) {
    shard.map.erase(std::string_view(shard.lru.back().first));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace xsact::engine
