#include "engine/snapshot.h"

#include "common/macros.h"
#include "xml/io.h"
#include "xml/parser.h"

namespace xsact::engine {

CorpusSnapshot::CorpusSnapshot(xml::Document doc,
                               search::SlcaAlgorithm algorithm)
    : engine_(std::move(doc), algorithm) {}

SnapshotPtr CorpusSnapshot::Build(xml::Document doc,
                                  search::SlcaAlgorithm algorithm) {
  return std::make_shared<const CorpusSnapshot>(std::move(doc), algorithm);
}

StatusOr<SnapshotPtr> CorpusSnapshot::FromXml(
    std::string_view xml_text, search::SlcaAlgorithm algorithm) {
  XSACT_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(xml_text));
  return Build(std::move(doc), algorithm);
}

StatusOr<SnapshotPtr> CorpusSnapshot::FromFile(
    const std::string& path, search::SlcaAlgorithm algorithm) {
  XSACT_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseFile(path));
  return Build(std::move(doc), algorithm);
}

}  // namespace xsact::engine
