#include "engine/snapshot.h"

#include "common/macros.h"
#include "xml/io.h"
#include "xml/parser.h"

namespace xsact::engine {

CorpusSnapshot::CorpusSnapshot(xml::Document doc,
                               search::SlcaAlgorithm algorithm)
    : engine_(std::move(doc), algorithm) {}

CorpusSnapshot::CorpusSnapshot(xml::ParsedCorpus corpus,
                               search::SlcaAlgorithm algorithm)
    : engine_(std::move(corpus.doc), std::move(corpus.table), algorithm) {}

SnapshotPtr CorpusSnapshot::Build(xml::Document doc,
                                  search::SlcaAlgorithm algorithm) {
  return std::make_shared<const CorpusSnapshot>(std::move(doc), algorithm);
}

StatusOr<SnapshotPtr> CorpusSnapshot::FromXml(
    std::string_view xml_text, search::SlcaAlgorithm algorithm) {
  // Fused zero-copy load: one pass emits the arena document AND its node
  // table; the snapshot retains the text as the view backing buffer.
  XSACT_ASSIGN_OR_RETURN(xml::ParsedCorpus corpus,
                         xml::ParseCorpus(std::string(xml_text)));
  return std::make_shared<const CorpusSnapshot>(std::move(corpus), algorithm);
}

StatusOr<SnapshotPtr> CorpusSnapshot::FromFile(
    const std::string& path, search::SlcaAlgorithm algorithm) {
  XSACT_ASSIGN_OR_RETURN(xml::ParsedCorpus corpus,
                         xml::ParseCorpusFile(path));
  return std::make_shared<const CorpusSnapshot>(std::move(corpus), algorithm);
}

}  // namespace xsact::engine
