#include "engine/snapshot.h"

#include "common/faultpoint.h"
#include "common/macros.h"
#include "xml/io.h"
#include "xml/parser.h"

namespace xsact::engine {

namespace {

const fault::FaultPointId kFaultSnapshotBuild =
    fault::RegisterFaultPoint("snapshot.build");
const fault::FaultPointId kFaultSnapshotValidate =
    fault::RegisterFaultPoint("snapshot.validate");

}  // namespace

CorpusSnapshot::CorpusSnapshot(xml::Document doc,
                               search::SlcaAlgorithm algorithm)
    : engine_(std::move(doc), algorithm) {}

CorpusSnapshot::CorpusSnapshot(xml::ParsedCorpus corpus,
                               search::SlcaAlgorithm algorithm)
    : engine_(std::move(corpus.doc), std::move(corpus.table), algorithm) {}

SnapshotPtr CorpusSnapshot::Build(xml::Document doc,
                                  search::SlcaAlgorithm algorithm) {
  return std::make_shared<const CorpusSnapshot>(std::move(doc), algorithm);
}

Status CorpusSnapshot::Validate() const {
  XSACT_INJECT_FAULT(kFaultSnapshotValidate);
  return engine_.index()
      .Validate(table().size())
      .WithContext("corpus snapshot validation");
}

StatusOr<SnapshotPtr> CorpusSnapshot::FromXml(
    std::string_view xml_text, search::SlcaAlgorithm algorithm) {
  XSACT_INJECT_FAULT(kFaultSnapshotBuild);
  // Fused zero-copy load: one pass emits the arena document AND its node
  // table; the snapshot retains the text as the view backing buffer.
  XSACT_ASSIGN_OR_RETURN(xml::ParsedCorpus corpus,
                         xml::ParseCorpus(std::string(xml_text)));
  auto snapshot =
      std::make_shared<const CorpusSnapshot>(std::move(corpus), algorithm);
  XSACT_RETURN_IF_ERROR(snapshot->Validate());
  return snapshot;
}

StatusOr<SnapshotPtr> CorpusSnapshot::FromFile(
    const std::string& path, search::SlcaAlgorithm algorithm) {
  XSACT_INJECT_FAULT(kFaultSnapshotBuild);
  XSACT_ASSIGN_OR_RETURN(xml::ParsedCorpus corpus,
                         xml::ParseCorpusFile(path));
  auto snapshot =
      std::make_shared<const CorpusSnapshot>(std::move(corpus), algorithm);
  XSACT_RETURN_IF_ERROR(snapshot->Validate().WithContext(path));
  return snapshot;
}

}  // namespace xsact::engine
