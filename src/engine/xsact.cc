#include "engine/xsact.h"

#include <unordered_set>

#include "common/timer.h"
#include "xml/io.h"
#include "xml/parser.h"

namespace xsact::engine {

StatusOr<Xsact> Xsact::FromXml(std::string_view xml_text,
                               search::SlcaAlgorithm algorithm) {
  XSACT_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(xml_text));
  return Xsact(std::move(doc), algorithm);
}

StatusOr<Xsact> Xsact::FromFile(const std::string& path,
                                search::SlcaAlgorithm algorithm) {
  XSACT_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseFile(path));
  return Xsact(std::move(doc), algorithm);
}

Xsact::Xsact(xml::Document doc, search::SlcaAlgorithm algorithm)
    : engine_(std::move(doc), algorithm) {}

StatusOr<std::vector<search::SearchResult>> Xsact::Search(
    std::string_view query) const {
  return engine_.Search(query);
}

StatusOr<std::vector<search::SearchResult>> Xsact::SearchRanked(
    std::string_view query) const {
  return engine_.SearchRanked(query);
}

StatusOr<ComparisonOutcome> Xsact::CompareResults(
    const std::vector<const xml::Node*>& result_roots,
    const CompareOptions& options) const {
  if (result_roots.size() < 2) {
    return Status::InvalidArgument(
        "a comparison needs at least two results, got " +
        std::to_string(result_roots.size()));
  }

  // Optionally lift results to an enclosing entity (e.g. brand), then
  // deduplicate while preserving order.
  std::vector<const xml::Node*> roots;
  std::unordered_set<const xml::Node*> seen;
  for (const xml::Node* node : result_roots) {
    if (node == nullptr) {
      return Status::InvalidArgument("null result root");
    }
    const xml::Node* lifted = node;
    if (!options.lift_results_to.empty()) {
      for (const xml::Node* cur = node; cur != nullptr; cur = cur->parent()) {
        if (cur->is_element() && cur->tag() == options.lift_results_to) {
          lifted = cur;
          break;
        }
      }
    }
    if (seen.insert(lifted).second) roots.push_back(lifted);
  }
  if (options.max_compared > 0 && roots.size() > options.max_compared) {
    roots.resize(options.max_compared);
  }
  if (roots.size() < 2) {
    return Status::InvalidArgument(
        "fewer than two distinct results after lifting");
  }

  // Result processor: entity identification + feature extraction.
  ComparisonOutcome outcome;
  outcome.catalog = std::make_unique<feature::FeatureCatalog>();
  feature::FeatureExtractor extractor(options.extractor);
  std::vector<feature::ResultFeatures> features;
  features.reserve(roots.size());
  for (const xml::Node* root : roots) {
    // Serve-path fast extraction over the node's pre-order id range; the
    // node-walk fallback covers roots from outside the engine's document.
    const xml::NodeId root_id = engine_.table().IdOf(root);
    if (root_id != xml::kInvalidNodeId) {
      features.push_back(extractor.Extract(engine_.table(),
                                           engine_.category_index(), root_id,
                                           outcome.catalog.get()));
    } else {
      features.push_back(
          extractor.Extract(*root, engine_.schema(), outcome.catalog.get()));
    }
  }
  outcome.instance = core::ComparisonInstance::Build(
      std::move(features), outcome.catalog.get(), options.diff_threshold);

  // DFS generation.
  std::unique_ptr<core::DfsSelector> selector =
      core::MakeSelector(options.algorithm);
  Timer timer;
  outcome.dfss = selector->Select(outcome.instance, options.selector);
  outcome.select_seconds = timer.ElapsedSeconds();

  outcome.table = table::BuildComparisonTable(outcome.instance, outcome.dfss);
  outcome.total_dod = outcome.table.total_dod;
  return outcome;
}

StatusOr<ComparisonOutcome> Xsact::SearchAndCompare(
    std::string_view query, size_t max_results,
    const CompareOptions& options) const {
  XSACT_ASSIGN_OR_RETURN(std::vector<search::SearchResult> results,
                         Search(query));
  std::vector<const xml::Node*> roots;
  roots.reserve(results.size());
  for (const search::SearchResult& r : results) roots.push_back(r.root);
  // The cap is applied after lifting/deduplication inside CompareResults,
  // so "first 4 results" means four DISTINCT compared entities even when
  // several raw results lift into the same ancestor.
  CompareOptions effective = options;
  if (max_results > 0) effective.max_compared = max_results;
  return CompareResults(roots, effective);
}

}  // namespace xsact::engine
