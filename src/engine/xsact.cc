#include "engine/xsact.h"

#include "xml/io.h"
#include "xml/parser.h"

namespace xsact::engine {

StatusOr<Xsact> Xsact::FromXml(std::string_view xml_text,
                               search::SlcaAlgorithm algorithm) {
  XSACT_ASSIGN_OR_RETURN(SnapshotPtr snapshot,
                         CorpusSnapshot::FromXml(xml_text, algorithm));
  return Xsact(std::move(snapshot));
}

StatusOr<Xsact> Xsact::FromFile(const std::string& path,
                                search::SlcaAlgorithm algorithm) {
  XSACT_ASSIGN_OR_RETURN(SnapshotPtr snapshot,
                         CorpusSnapshot::FromFile(path, algorithm));
  return Xsact(std::move(snapshot));
}

Xsact::Xsact(xml::Document doc, search::SlcaAlgorithm algorithm)
    : Xsact(CorpusSnapshot::Build(std::move(doc), algorithm)) {}

Xsact::Xsact(SnapshotPtr snapshot)
    : snapshot_(std::move(snapshot)),
      sessions_(std::make_shared<SessionPool>()) {}

StatusOr<std::vector<search::SearchResult>> Xsact::Search(
    std::string_view query) const {
  SessionPool::Lease session = sessions_->Acquire();
  return engine::Search(*snapshot_, session.get(), query);
}

StatusOr<std::vector<search::SearchResult>> Xsact::SearchRanked(
    std::string_view query) const {
  SessionPool::Lease session = sessions_->Acquire();
  return engine::SearchRanked(*snapshot_, session.get(), query);
}

StatusOr<ComparisonOutcome> Xsact::CompareResults(
    const std::vector<const xml::Node*>& result_roots,
    const CompareOptions& options) const {
  SessionPool::Lease session = sessions_->Acquire();
  return engine::CompareResults(*snapshot_, session.get(), result_roots,
                                options);
}

StatusOr<ComparisonOutcome> Xsact::SearchAndCompare(
    std::string_view query, size_t max_results,
    const CompareOptions& options) const {
  SessionPool::Lease session = sessions_->Acquire();
  return engine::SearchAndCompare(*snapshot_, session.get(), query,
                                  max_results, options);
}

}  // namespace xsact::engine
