#include "engine/router.h"

#include <utility>

namespace xsact::engine {

namespace {

/// Ready future carrying an error (for rejections that never enqueue).
template <typename T>
std::future<T> ReadyError(Status status) {
  std::promise<T> promise;
  promise.set_value(std::move(status));
  return promise.get_future();
}

}  // namespace

uint64_t RouterStats::total_shed() const {
  uint64_t total = 0;
  for (const DatasetStats& d : datasets) total += d.admission.shed;
  return total;
}

uint64_t RouterStats::total_deadline_exceeded() const {
  uint64_t total = 0;
  for (const DatasetStats& d : datasets) {
    total += d.admission.deadline_exceeded;
  }
  return total;
}

uint64_t RouterStats::total_queue_depth() const {
  uint64_t total = 0;
  for (const DatasetStats& d : datasets) total += d.admission.queue_depth;
  return total;
}

uint64_t RouterStats::total_unhealthy() const {
  uint64_t total = 0;
  for (const DatasetStats& d : datasets) {
    if (!d.health.healthy) ++total;
  }
  return total;
}

StatusOr<ServiceRouter> ServiceRouter::Create(
    std::vector<DatasetSpec> datasets, const QueryServiceOptions& options) {
  if (datasets.empty()) {
    return Status::InvalidArgument("router needs at least one dataset");
  }
  ServiceMap services;
  for (DatasetSpec& spec : datasets) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("dataset name must be non-empty");
    }
    if (spec.snapshot == nullptr) {
      return Status::InvalidArgument("dataset '" + spec.name +
                                     "' has no snapshot");
    }
    if (services.find(spec.name) != services.end()) {
      return Status::AlreadyExists("duplicate dataset name '" + spec.name +
                                   "'");
    }
    services.emplace(std::move(spec.name),
                     std::make_unique<QueryService>(std::move(spec.snapshot),
                                                    options));
  }
  return ServiceRouter(std::move(services));
}

std::future<StatusOr<OutcomePtr>> ServiceRouter::Submit(
    std::string_view dataset, std::string query,
    const CompareOptions& options, size_t max_results, Deadline deadline,
    const CancelSource* cancel) {
  QueryService* target = service(dataset);
  if (target == nullptr) {
    return ReadyError<StatusOr<OutcomePtr>>(Status::NotFound(
        "unknown dataset '" + std::string(dataset) + "'"));
  }
  return target->Submit(std::move(query), options, max_results, deadline,
                        cancel);
}

std::future<Status> ServiceRouter::ReloadCorpus(std::string_view dataset,
                                                std::string path) {
  QueryService* target = service(dataset);
  if (target == nullptr) {
    return ReadyError<Status>(Status::NotFound(
        "unknown dataset '" + std::string(dataset) + "'"));
  }
  return target->ReloadCorpus(std::move(path));
}

QueryService* ServiceRouter::service(std::string_view dataset) {
  const auto it = services_.find(dataset);
  return it == services_.end() ? nullptr : it->second.get();
}

const QueryService* ServiceRouter::service(std::string_view dataset) const {
  const auto it = services_.find(dataset);
  return it == services_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ServiceRouter::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(services_.size());
  for (const auto& [name, service] : services_) names.push_back(name);
  return names;  // map iteration order == sorted
}

RouterStats ServiceRouter::stats() const {
  RouterStats stats;
  stats.datasets.reserve(services_.size());
  for (const auto& [name, service] : services_) {
    DatasetStats d;
    d.dataset = name;
    d.epoch = service->snapshot_epoch();
    d.cache = service->cache_stats();
    d.admission = service->admission_stats();
    d.health = service->health();
    stats.datasets.push_back(std::move(d));
  }
  return stats;
}

}  // namespace xsact::engine
