#include "engine/session.h"

#include "common/faultpoint.h"
#include "common/macros.h"
#include "common/timer.h"

namespace xsact::engine {

namespace {

// Hit-only latency site inside the per-root extraction loop — lets the
// chaos suite stall a comparison mid-flight to exercise cancellation.
const fault::FaultPointId kFaultSessionExtract = fault::RegisterFaultPoint(
    "session.extract", fault::FaultSiteKind::kHitOnly);

}  // namespace

StatusOr<std::vector<search::SearchResult>> Search(
    const CorpusSnapshot& snapshot, QuerySession* session,
    std::string_view query) {
  session->search.cancel = session->cancel;
  return snapshot.engine().Search(query, &session->search);
}

StatusOr<std::vector<search::SearchResult>> SearchRanked(
    const CorpusSnapshot& snapshot, QuerySession* session,
    std::string_view query) {
  session->search.cancel = session->cancel;
  return snapshot.engine().SearchRanked(query, &session->search);
}

StatusOr<ComparisonOutcome> CompareResults(
    const CorpusSnapshot& snapshot, QuerySession* session,
    const std::vector<const xml::Node*>& result_roots,
    const CompareOptions& options) {
  XSACT_RETURN_IF_ERROR(session->cancel.Check());
  if (result_roots.size() < 2) {
    return Status::InvalidArgument(
        "a comparison needs at least two results, got " +
        std::to_string(result_roots.size()));
  }

  // Optionally lift results to an enclosing entity (e.g. brand), then
  // deduplicate while preserving order. The buffers persist in the
  // session so repeated queries reuse their capacity.
  std::vector<const xml::Node*>& roots = session->roots;
  std::unordered_set<const xml::Node*>& seen = session->seen;
  roots.clear();
  seen.clear();
  for (const xml::Node* node : result_roots) {
    if (node == nullptr) {
      return Status::InvalidArgument("null result root");
    }
    const xml::Node* lifted = node;
    if (!options.lift_results_to.empty()) {
      for (const xml::Node* cur = node; cur != nullptr; cur = cur->parent()) {
        if (cur->is_element() && cur->tag() == options.lift_results_to) {
          lifted = cur;
          break;
        }
      }
    }
    if (seen.insert(lifted).second) roots.push_back(lifted);
  }
  if (options.max_compared > 0 && roots.size() > options.max_compared) {
    roots.resize(options.max_compared);
  }
  if (roots.size() < 2) {
    return Status::InvalidArgument(
        "fewer than two distinct results after lifting");
  }

  // Result processor: entity identification + feature extraction. The
  // extractor is stateless (options only); its workspace is the session's.
  ComparisonOutcome outcome;
  outcome.catalog = std::make_unique<feature::FeatureCatalog>();
  const feature::FeatureExtractor extractor(options.extractor);
  std::vector<feature::ResultFeatures> features;
  features.reserve(roots.size());
  for (const xml::Node* root : roots) {
    XSACT_FAULT_HIT(kFaultSessionExtract);
    // Serve-path fast extraction over the node's pre-order id range; the
    // node-walk fallback covers roots from outside the snapshot's
    // document.
    const xml::NodeId root_id = snapshot.table().IdOf(root);
    if (root_id != xml::kInvalidNodeId) {
      features.push_back(extractor.Extract(
          snapshot.table(), snapshot.category_index(), root_id,
          outcome.catalog.get(), &session->extraction, session->cancel));
    } else {
      features.push_back(extractor.Extract(*root, snapshot.schema(),
                                           outcome.catalog.get(),
                                           &session->extraction,
                                           session->cancel));
    }
    // Expired extraction returns partial features; never compare those.
    XSACT_RETURN_IF_ERROR(session->cancel.Check());
  }
  outcome.instance = core::ComparisonInstance::Build(
      std::move(features), outcome.catalog.get(), options.diff_threshold);
  XSACT_RETURN_IF_ERROR(session->cancel.Check());

  // DFS generation on the session's pooled selector instance.
  const core::DfsSelector& selector =
      session->selectors.Get(options.algorithm);
  Timer timer;
  outcome.dfss = selector.Select(outcome.instance, options.selector);
  outcome.select_seconds = timer.ElapsedSeconds();
  XSACT_RETURN_IF_ERROR(session->cancel.Check());

  outcome.table = table::BuildComparisonTable(outcome.instance, outcome.dfss);
  outcome.total_dod = outcome.table.total_dod;
  return outcome;
}

StatusOr<ComparisonOutcome> SearchAndCompare(const CorpusSnapshot& snapshot,
                                             QuerySession* session,
                                             std::string_view query,
                                             size_t max_results,
                                             const CompareOptions& options) {
  XSACT_ASSIGN_OR_RETURN(std::vector<search::SearchResult> results,
                         Search(snapshot, session, query));
  std::vector<const xml::Node*> roots;
  roots.reserve(results.size());
  for (const search::SearchResult& r : results) roots.push_back(r.root);
  // The cap is applied after lifting/deduplication inside CompareResults,
  // so "first 4 results" means four DISTINCT compared entities even when
  // several raw results lift into the same ancestor.
  CompareOptions effective = options;
  if (max_results > 0) effective.max_compared = max_results;
  return CompareResults(snapshot, session, roots, effective);
}

SessionPool::Lease& SessionPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && session_ != nullptr) {
      pool_->Release(std::move(session_));
    }
    pool_ = other.pool_;
    session_ = std::move(other.session_);
    other.pool_ = nullptr;
  }
  return *this;
}

SessionPool::Lease::~Lease() {
  if (pool_ != nullptr && session_ != nullptr) {
    pool_->Release(std::move(session_));
  }
}

SessionPool::Lease SessionPool::Acquire() {
  std::unique_ptr<QuerySession> session;
  {
    MutexLock lock(mu_);
    if (!idle_.empty()) {
      session = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  if (session == nullptr) session = std::make_unique<QuerySession>();
  return Lease(this, std::move(session));
}

size_t SessionPool::IdleCount() const {
  MutexLock lock(mu_);
  return idle_.size();
}

void SessionPool::Release(std::unique_ptr<QuerySession> session) {
  MutexLock lock(mu_);
  idle_.push_back(std::move(session));
}

}  // namespace xsact::engine
