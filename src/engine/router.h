// ServiceRouter: the multi-corpus front-end of the XSACT serving stack.
//
// One router owns N named QueryService instances — one per dataset, each
// with its own snapshot / epoch / hot-swap lifecycle and its own result
// cache and admission queue — and routes Submit(dataset, query, ...) to
// the service owning that corpus. This is the topology native-XML search
// services expose (many heterogeneous collections behind one query
// front-end): datasets scale independently, a hot corpus reload on one
// never touches another, and per-dataset counters stay attributable.
//
// Admission control (bounded queue + load shedding, per-request
// deadlines) lives in QueryService; the router composes it per dataset
// rather than reimplementing it, and aggregates the observability
// counters — cache hit/miss/eviction, queue depth, shed and
// deadline-exceeded totals, snapshot epoch — into RouterStats.
//
// Thread safety: the dataset map is immutable after Create(), so routing
// is lock-free; all mutability lives inside the individual services,
// which are themselves thread-safe (their locking discipline is
// annotated with common/thread_annotations.h and proven by the
// -Wthread-safety static-analysis gate — see docs/static_analysis.md).
// Any number of threads may call Submit / ReloadCorpus / stats
// concurrently. The router itself must therefore stay lock-free: if a
// future change adds shared mutable state here, it takes an
// XSACT_GUARDED_BY'd field and an xsact::Mutex, never a raw std::mutex
// (tools/lint/run_lint.py rejects the latter repo-wide).

#ifndef XSACT_ENGINE_ROUTER_H_
#define XSACT_ENGINE_ROUTER_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "engine/query_service.h"
#include "engine/snapshot.h"

namespace xsact::engine {

/// One dataset a router serves: a unique name and its initial snapshot.
struct DatasetSpec {
  std::string name;
  SnapshotPtr snapshot;
};

/// Everything observable about one dataset's service.
struct DatasetStats {
  std::string dataset;
  uint64_t epoch = 0;  ///< snapshot generation (bumped by each hot swap)
  CacheStats cache;
  AdmissionStats admission;
  ServiceHealth health;  ///< reload health (last-known-good retention)
};

/// Per-dataset stats plus totals, as returned by ServiceRouter::stats().
struct RouterStats {
  /// One entry per dataset, sorted by dataset name.
  std::vector<DatasetStats> datasets;

  uint64_t total_shed() const;
  uint64_t total_deadline_exceeded() const;
  uint64_t total_queue_depth() const;

  /// Datasets whose most recent reload failed (still serving their
  /// last-known-good snapshot).
  uint64_t total_unhealthy() const;
};

/// Multi-corpus query front-end. See file comment. Movable, not
/// copyable; construct via Create().
class ServiceRouter {
 public:
  /// Builds one QueryService per spec (each configured with `options`).
  /// Fails with kAlreadyExists on a duplicate dataset name and
  /// kInvalidArgument on an empty name or null snapshot.
  static StatusOr<ServiceRouter> Create(std::vector<DatasetSpec> datasets,
                                        const QueryServiceOptions& options = {});

  /// Routes the query to `dataset`'s service. Unknown datasets resolve
  /// immediately to kNotFound; otherwise the semantics (caching,
  /// shedding, deadlines, snapshot pinning, the caller-owned `cancel`
  /// signal) are exactly QueryService::Submit on that dataset's service
  /// — routed serving is byte-identical to direct per-service serving.
  std::future<StatusOr<OutcomePtr>> Submit(std::string_view dataset,
                                           std::string query,
                                           const CompareOptions& options = {},
                                           size_t max_results = 0,
                                           Deadline deadline = kNoDeadline,
                                           const CancelSource* cancel =
                                               nullptr);

  /// Routes a hot corpus reload to `dataset`'s service
  /// (QueryService::ReloadCorpus); other datasets are untouched.
  std::future<Status> ReloadCorpus(std::string_view dataset,
                                   std::string path);

  /// The service owning `dataset`, or nullptr when unknown. Exposes the
  /// full per-service surface (SwapSnapshot, snapshot(), ...).
  QueryService* service(std::string_view dataset);
  const QueryService* service(std::string_view dataset) const;

  /// Dataset names, sorted.
  std::vector<std::string> dataset_names() const;

  size_t num_datasets() const { return services_.size(); }

  /// Aggregated per-dataset counters (sorted by dataset name).
  RouterStats stats() const;

 private:
  using ServiceMap =
      std::map<std::string, std::unique_ptr<QueryService>, std::less<>>;

  explicit ServiceRouter(ServiceMap services)
      : services_(std::move(services)) {}

  /// Immutable after construction (the map, not the services).
  ServiceMap services_;
};

}  // namespace xsact::engine

#endif  // XSACT_ENGINE_ROUTER_H_
