// XSeek-style keyword search engine over one XML document.
//
// Pipeline per query (paper Figure 3, "Search Engine" box):
//   1. tokenize the keyword query,
//   2. fetch posting lists from the inverted index,
//   3. compute SLCA nodes,
//   4. infer the RETURN NODE for each SLCA: the nearest ancestor-or-self
//      element categorized as an entity (XSeek's "meaningful return
//      information" heuristic), deduplicated in document order.
//
// The returned subtrees are exactly the "structured search results" that
// XSACT's result processor consumes.

#ifndef XSACT_SEARCH_SEARCH_ENGINE_H_
#define XSACT_SEARCH_SEARCH_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "entity/category_index.h"
#include "entity/entity_identifier.h"
#include "search/inverted_index.h"
#include "search/slca.h"
#include "xml/document.h"
#include "xml/path.h"

namespace xsact::search {

/// One keyword-search result: an entity subtree of the corpus document.
struct SearchResult {
  const xml::Node* root = nullptr;  ///< inferred return node (entity subtree)
  xml::NodeId root_id = xml::kInvalidNodeId;
  const xml::Node* slca = nullptr;  ///< the SLCA match this result came from
  std::string title;                ///< display title (name/title child text)
};

/// Which answer semantics / algorithm family the engine uses.
///  * kScan    — SLCA semantics, always the linear-scan kernel (the
///               reference configuration for identity gates);
///  * kIndexed — SLCA semantics via the skip-driven merge over the
///               compressed postings when the query is selective,
///               falling back to the scan kernel when the posting
///               volume approaches corpus size (identical answers);
///  * kElca    — Exclusive LCA semantics (superset of SLCA; see
///               slca.h), with the same merge-vs-scan dispatch.
enum class SlcaAlgorithm { kScan, kIndexed, kElca };

/// One conjunct of a parsed query: a term, optionally restricted to
/// elements with a given tag ("director:moreau" -> {"moreau","director"}).
struct QueryTerm {
  std::string term;
  std::string field;  ///< empty = unrestricted

  friend bool operator==(const QueryTerm& a, const QueryTerm& b) {
    return a.term == b.term && a.field == b.field;
  }
};

/// Splits a query string into conjuncts. Whitespace-separated chunks may
/// carry a "tag:" prefix restricting the match to elements of that tag;
/// each chunk tokenizes into one or more terms sharing the restriction.
std::vector<QueryTerm> ParseQuery(std::string_view query);

/// Reentrant variant for hot paths: parses into `*out` (cleared first,
/// capacity kept), so repeated queries reuse the vector.
void ParseQueryInto(std::string_view query, std::vector<QueryTerm>* out);

/// Immutable index tier of the search engine: the corpus document plus
/// every structure derived from it (node table, inferred schema,
/// inverted index, per-node category index). Built once, never mutated
/// afterwards — safe to share by const reference across any number of
/// concurrent query evaluations.
struct CorpusIndex {
  explicit CorpusIndex(xml::Document document,
                       SlcaAlgorithm slca = SlcaAlgorithm::kIndexed);

  /// Adopts a table built elsewhere (the parser's fused build) instead of
  /// re-walking the document.
  CorpusIndex(xml::Document document, xml::NodeTable node_table,
              SlcaAlgorithm slca);

  xml::Document doc;
  xml::NodeTable table;
  entity::EntitySchema schema;
  InvertedIndex index;
  entity::DocumentCategoryIndex category_index;
  SlcaAlgorithm algorithm;
};

/// Query-time evaluation scratch: every container Search mutates lives
/// here, so evaluation against a const CorpusIndex is reentrant. Reused
/// across queries (cleared, capacity kept) — the decode pools and merge
/// scratch in particular keep their buffers, so a warmed session runs
/// the whole match pipeline without allocating.
struct SearchWorkspace {
  MatchLists lists;
  MergeLists sources;  // per-term posting sources, smallest-first
  std::vector<std::vector<xml::NodeId>> filtered_storage;
  std::unordered_set<const xml::Node*> seen;
  std::string key_scratch;  // schema-probe composition buffer
  std::vector<QueryTerm> terms;  // parsed query conjuncts (reused)
  std::vector<std::string_view> term_views;  // views into `terms` (ranking)
  std::vector<xml::NodeId> decode_pool;   // flat arena for scan fallback
  std::vector<xml::NodeId> field_scratch; // fielded-term decode buffer
  MergeScratch merge;  // merge-kernel state (block cache, heap, stack)

  /// Cancellation scope for queries run through this workspace. Set by
  /// the caller before Search (the serving layer installs the request's
  /// deadline + drain token); deliberately NOT touched by Reset() so the
  /// owner controls its lifetime across queries. Default: never expires.
  Cancellation cancel;

  void Reset() {
    lists.clear();
    sources.clear();
    filtered_storage.clear();
    seen.clear();
    terms.clear();
    term_views.clear();
    // decode_pool / field_scratch / merge keep their storage; every use
    // overwrites before reading.
  }
};

/// Search engine owning the corpus document, its node table, inferred
/// schema and inverted index. The engine itself is the immutable tier:
/// every Search overload is const and reentrant — per-query state lives
/// in a SearchWorkspace (an internal one is created per call when the
/// caller does not supply one).
class SearchEngine {
 public:
  /// Builds all derived structures for `doc`. O(document size).
  explicit SearchEngine(xml::Document doc,
                        SlcaAlgorithm algorithm = SlcaAlgorithm::kIndexed);

  /// Adopts a fused-parse node table (see xml::ParseCorpus) — skips the
  /// table-building walk entirely.
  SearchEngine(xml::Document doc, xml::NodeTable table,
               SlcaAlgorithm algorithm = SlcaAlgorithm::kIndexed);

  /// Evaluates a conjunctive keyword query. Returns results in document
  /// order; an empty vector when some keyword does not occur at all.
  /// Fails with kInvalidArgument when the query has no tokens.
  StatusOr<std::vector<SearchResult>> Search(std::string_view query) const;

  /// Reentrant variant: all mutable evaluation state lives in `*ws`
  /// (reused across calls; prefer this on hot / concurrent paths).
  StatusOr<std::vector<SearchResult>> Search(std::string_view query,
                                             SearchWorkspace* ws) const;

  /// Like Search, but orders results by relevance (see ranking.h).
  StatusOr<std::vector<SearchResult>> SearchRanked(
      std::string_view query) const;

  /// Reentrant ranked search: parses the query once into the workspace
  /// and ranks through string_view terms (no per-call term vector).
  StatusOr<std::vector<SearchResult>> SearchRanked(std::string_view query,
                                                   SearchWorkspace* ws) const;

  const CorpusIndex& corpus() const { return corpus_; }
  const xml::Document& document() const { return corpus_.doc; }
  const xml::NodeTable& table() const { return corpus_.table; }
  const entity::EntitySchema& schema() const { return corpus_.schema; }
  const InvertedIndex& index() const { return corpus_.index; }

  /// Per-node schema facts (categories, owners, subtree extents),
  /// precomputed once so the serve path reads flat arrays.
  const entity::DocumentCategoryIndex& category_index() const {
    return corpus_.category_index;
  }

 private:
  CorpusIndex corpus_;
};

/// Picks a human-readable title for a result subtree: the text of its
/// first <name>/<title>/<id> child if present, else a prefix of its text.
std::string InferTitle(const xml::Node& result_root);

/// One-line listing snippet for a result: its first `max_fields` leaf
/// children rendered as "tag: value | tag: value" (the demo's result
/// list shows "snippets, such as product names and prices").
std::string BriefSnippet(const xml::Node& result_root,
                         size_t max_fields = 3);

}  // namespace xsact::search

#endif  // XSACT_SEARCH_SEARCH_ENGINE_H_
