// XSeek-style keyword search engine over one XML document.
//
// Pipeline per query (paper Figure 3, "Search Engine" box):
//   1. tokenize the keyword query,
//   2. fetch posting lists from the inverted index,
//   3. compute SLCA nodes,
//   4. infer the RETURN NODE for each SLCA: the nearest ancestor-or-self
//      element categorized as an entity (XSeek's "meaningful return
//      information" heuristic), deduplicated in document order.
//
// The returned subtrees are exactly the "structured search results" that
// XSACT's result processor consumes.

#ifndef XSACT_SEARCH_SEARCH_ENGINE_H_
#define XSACT_SEARCH_SEARCH_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "entity/category_index.h"
#include "entity/entity_identifier.h"
#include "search/inverted_index.h"
#include "search/slca.h"
#include "xml/document.h"
#include "xml/path.h"

namespace xsact::search {

/// One keyword-search result: an entity subtree of the corpus document.
struct SearchResult {
  const xml::Node* root = nullptr;  ///< inferred return node (entity subtree)
  xml::NodeId root_id = xml::kInvalidNodeId;
  const xml::Node* slca = nullptr;  ///< the SLCA match this result came from
  std::string title;                ///< display title (name/title child text)
};

/// Which answer semantics / algorithm the engine uses.
///  * kScan / kIndexed — SLCA semantics via the linear-scan or the
///    indexed-lookup algorithm (identical answers);
///  * kElca — Exclusive LCA semantics (superset of SLCA; see slca.h).
enum class SlcaAlgorithm { kScan, kIndexed, kElca };

/// One conjunct of a parsed query: a term, optionally restricted to
/// elements with a given tag ("director:moreau" -> {"moreau","director"}).
struct QueryTerm {
  std::string term;
  std::string field;  ///< empty = unrestricted

  friend bool operator==(const QueryTerm& a, const QueryTerm& b) {
    return a.term == b.term && a.field == b.field;
  }
};

/// Splits a query string into conjuncts. Whitespace-separated chunks may
/// carry a "tag:" prefix restricting the match to elements of that tag;
/// each chunk tokenizes into one or more terms sharing the restriction.
std::vector<QueryTerm> ParseQuery(std::string_view query);

/// Search engine owning the corpus document, its node table, inferred
/// schema and inverted index.
class SearchEngine {
 public:
  /// Builds all derived structures for `doc`. O(document size).
  explicit SearchEngine(xml::Document doc,
                        SlcaAlgorithm algorithm = SlcaAlgorithm::kIndexed);

  /// Evaluates a conjunctive keyword query. Returns results in document
  /// order; an empty vector when some keyword does not occur at all.
  /// Fails with kInvalidArgument when the query has no tokens.
  StatusOr<std::vector<SearchResult>> Search(std::string_view query) const;

  /// Like Search, but orders results by relevance (see ranking.h).
  StatusOr<std::vector<SearchResult>> SearchRanked(
      std::string_view query) const;

  const xml::Document& document() const { return doc_; }
  const xml::NodeTable& table() const { return table_; }
  const entity::EntitySchema& schema() const { return schema_; }
  const InvertedIndex& index() const { return index_; }

  /// Per-node schema facts (categories, owners, subtree extents),
  /// precomputed once so the serve path reads flat arrays.
  const entity::DocumentCategoryIndex& category_index() const {
    return category_index_;
  }

 private:
  xml::Document doc_;
  xml::NodeTable table_;
  entity::EntitySchema schema_;
  InvertedIndex index_;
  entity::DocumentCategoryIndex category_index_;
  SlcaAlgorithm algorithm_;
};

/// Picks a human-readable title for a result subtree: the text of its
/// first <name>/<title>/<id> child if present, else a prefix of its text.
std::string InferTitle(const xml::Node& result_root);

/// One-line listing snippet for a result: its first `max_fields` leaf
/// children rendered as "tag: value | tag: value" (the demo's result
/// list shows "snippets, such as product names and prices").
std::string BriefSnippet(const xml::Node& result_root,
                         size_t max_fields = 3);

}  // namespace xsact::search

#endif  // XSACT_SEARCH_SEARCH_ENGINE_H_
