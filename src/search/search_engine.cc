#include "search/search_engine.h"

#include <cctype>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"
#include "search/ranking.h"

namespace xsact::search {

CorpusIndex::CorpusIndex(xml::Document document, SlcaAlgorithm slca)
    : CorpusIndex(std::move(document), xml::NodeTable(), slca) {}

CorpusIndex::CorpusIndex(xml::Document document, xml::NodeTable node_table,
                         SlcaAlgorithm slca)
    : doc(std::move(document)),
      table(node_table.size() > 0 ? std::move(node_table)
                                  : xml::NodeTable::Build(doc)),
      schema(entity::InferSchema(doc)),
      index(InvertedIndex::Build(table)),
      category_index(table, schema),
      algorithm(slca) {}

SearchEngine::SearchEngine(xml::Document doc, SlcaAlgorithm algorithm)
    : corpus_(std::move(doc), algorithm) {}

SearchEngine::SearchEngine(xml::Document doc, xml::NodeTable table,
                           SlcaAlgorithm algorithm)
    : corpus_(std::move(doc), std::move(table), algorithm) {}

std::vector<QueryTerm> ParseQuery(std::string_view query) {
  std::vector<QueryTerm> out;
  ParseQueryInto(query, &out);
  return out;
}

void ParseQueryInto(std::string_view query, std::vector<QueryTerm>* out_ptr) {
  std::vector<QueryTerm>& out = *out_ptr;
  out.clear();
  // Whitespace-separated chunks; a chunk may carry a "tag:" restriction.
  size_t pos = 0;
  while (pos < query.size()) {
    while (pos < query.size() &&
           std::isspace(static_cast<unsigned char>(query[pos]))) {
      ++pos;
    }
    size_t end = pos;
    while (end < query.size() &&
           !std::isspace(static_cast<unsigned char>(query[end]))) {
      ++end;
    }
    if (end == pos) break;
    std::string_view chunk = query.substr(pos, end - pos);
    pos = end;
    std::string field;
    const size_t colon = chunk.find(':');
    if (colon != std::string_view::npos && colon > 0) {
      const std::vector<std::string> field_tokens =
          Tokenize(chunk.substr(0, colon));
      if (field_tokens.size() == 1) {
        field = field_tokens[0];
        chunk = chunk.substr(colon + 1);
      }
    }
    for (std::string& term : Tokenize(chunk)) {
      out.push_back(QueryTerm{std::move(term), field});
    }
  }
}

StatusOr<std::vector<SearchResult>> SearchEngine::Search(
    std::string_view query) const {
  SearchWorkspace ws;
  return Search(query, &ws);
}

StatusOr<std::vector<SearchResult>> SearchEngine::Search(
    std::string_view query, SearchWorkspace* ws) const {
  const xml::NodeTable& table = corpus_.table;
  ws->Reset();
  ParseQueryInto(query, &ws->terms);
  const std::vector<QueryTerm>& terms = ws->terms;
  if (terms.empty()) {
    return Status::InvalidArgument("query contains no searchable tokens");
  }
  MatchLists& lists = ws->lists;
  lists.reserve(terms.size());
  // Backing storage for fielded terms only; unrestricted terms view the
  // index's posting array directly.
  std::vector<std::vector<xml::NodeId>>& filtered_storage =
      ws->filtered_storage;
  filtered_storage.reserve(terms.size());
  for (const QueryTerm& qt : terms) {
    const PostingList postings = corpus_.index.Postings(qt.term);
    if (qt.field.empty()) {
      lists.push_back(postings);
    } else {
      // Fielded term: keep only matches whose containing element has the
      // requested tag.
      std::vector<xml::NodeId>& filtered = filtered_storage.emplace_back();
      for (xml::NodeId id : postings) {
        if (table.node(id)->tag() == qt.field) filtered.push_back(id);
      }
      lists.push_back(PostingList(filtered.data(), filtered.size()));
    }
    if (lists.back().empty()) {
      return std::vector<SearchResult>{};  // conjunctive: no results
    }
  }
  std::vector<xml::NodeId> slcas;
  switch (corpus_.algorithm) {
    case SlcaAlgorithm::kScan:
      slcas = ComputeSlcaByScan(table, lists);
      break;
    case SlcaAlgorithm::kIndexed:
      slcas = ComputeSlcaIndexed(table, lists);
      break;
    case SlcaAlgorithm::kElca:
      slcas = ComputeElcaByScan(table, lists);
      break;
  }

  std::vector<SearchResult> results;
  std::unordered_set<const xml::Node*>& seen = ws->seen;
  for (xml::NodeId slca_id : slcas) {
    const xml::Node* slca = table.node(slca_id);
    // Return-node inference: nearest entity ancestor-or-self. The document
    // root bounds the walk: if no entity exists on the path we fall back to
    // the SLCA itself rather than returning the entire corpus.
    const xml::Node* ret = slca;
    for (const xml::Node* cur = slca; cur != nullptr; cur = cur->parent()) {
      if (corpus_.schema.CategoryOf(*cur, &ws->key_scratch) ==
          entity::NodeCategory::kEntity) {
        ret = cur;
        break;
      }
    }
    if (!seen.insert(ret).second) continue;  // several SLCAs, one entity
    SearchResult r;
    r.root = ret;
    r.root_id = table.IdOf(ret);
    r.slca = slca;
    r.title = InferTitle(*ret);
    results.push_back(std::move(r));
  }
  return results;
}

StatusOr<std::vector<SearchResult>> SearchEngine::SearchRanked(
    std::string_view query) const {
  SearchWorkspace ws;
  return SearchRanked(query, &ws);
}

StatusOr<std::vector<SearchResult>> SearchEngine::SearchRanked(
    std::string_view query, SearchWorkspace* ws) const {
  // Search leaves the parsed conjuncts in the workspace; ranking views
  // them in place — the query is parsed once and no term is copied.
  XSACT_ASSIGN_OR_RETURN(std::vector<SearchResult> results,
                         Search(query, ws));
  ws->term_views.reserve(ws->terms.size());
  for (const QueryTerm& qt : ws->terms) ws->term_views.push_back(qt.term);
  return RankResults(corpus_.table, corpus_.index, ws->term_views,
                     std::move(results));
}

std::string InferTitle(const xml::Node& result_root) {
  static constexpr std::string_view kTitleTags[] = {"name", "title", "id"};
  for (std::string_view tag : kTitleTags) {
    if (const xml::Node* child = result_root.FirstChildElement(tag)) {
      std::string text = child->InnerText();
      if (!text.empty()) return text;
    }
  }
  std::string text = result_root.InnerText();
  if (text.size() > 40) {
    text.resize(40);
    text += "...";
  }
  return text.empty() ? std::string(result_root.tag()) : text;
}

std::string BriefSnippet(const xml::Node& result_root, size_t max_fields) {
  std::vector<std::string> fields;
  for (const xml::Node* child : result_root.children()) {
    if (fields.size() >= max_fields) break;
    if (!child->is_element() || !child->IsLeafElement()) continue;
    std::string value = child->InnerText();
    if (value.empty()) continue;
    if (value.size() > 32) {
      value.resize(32);
      value += "...";
    }
    fields.push_back(std::string(child->tag()) + ": " + value);
  }
  return Join(fields, " | ");
}

}  // namespace xsact::search
