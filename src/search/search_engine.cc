#include "search/search_engine.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <unordered_set>

#include "common/faultpoint.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "search/ranking.h"

namespace xsact::search {

namespace {

// Hit-only site (injected error codes are dropped): lets the chaos suite
// insert latency at the heart of query evaluation to exercise deadline
// enforcement mid-execution.
const fault::FaultPointId kFaultSearchEvaluate =
    fault::RegisterFaultPoint("search.evaluate", fault::FaultSiteKind::kHitOnly);

}  // namespace

CorpusIndex::CorpusIndex(xml::Document document, SlcaAlgorithm slca)
    : CorpusIndex(std::move(document), xml::NodeTable(), slca) {}

CorpusIndex::CorpusIndex(xml::Document document, xml::NodeTable node_table,
                         SlcaAlgorithm slca)
    : doc(std::move(document)),
      table(!node_table.empty() ? std::move(node_table)
                                : xml::NodeTable::Build(doc)),
      schema(entity::InferSchema(doc)),
      index(InvertedIndex::Build(table)),
      category_index(table, schema),
      algorithm(slca) {}

SearchEngine::SearchEngine(xml::Document doc, SlcaAlgorithm algorithm)
    : corpus_(std::move(doc), algorithm) {}

SearchEngine::SearchEngine(xml::Document doc, xml::NodeTable table,
                           SlcaAlgorithm algorithm)
    : corpus_(std::move(doc), std::move(table), algorithm) {}

std::vector<QueryTerm> ParseQuery(std::string_view query) {
  std::vector<QueryTerm> out;
  ParseQueryInto(query, &out);
  return out;
}

void ParseQueryInto(std::string_view query, std::vector<QueryTerm>* out_ptr) {
  std::vector<QueryTerm>& out = *out_ptr;
  out.clear();
  // Whitespace-separated chunks; a chunk may carry a "tag:" restriction.
  size_t pos = 0;
  while (pos < query.size()) {
    while (pos < query.size() &&
           std::isspace(static_cast<unsigned char>(query[pos]))) {
      ++pos;
    }
    size_t end = pos;
    while (end < query.size() &&
           !std::isspace(static_cast<unsigned char>(query[end]))) {
      ++end;
    }
    if (end == pos) break;
    std::string_view chunk = query.substr(pos, end - pos);
    pos = end;
    std::string field;
    const size_t colon = chunk.find(':');
    if (colon != std::string_view::npos && colon > 0) {
      const std::vector<std::string> field_tokens =
          Tokenize(chunk.substr(0, colon));
      if (field_tokens.size() == 1) {
        field = field_tokens[0];
        chunk = chunk.substr(colon + 1);
      }
    }
    for (std::string& term : Tokenize(chunk)) {
      out.push_back(QueryTerm{std::move(term), field});
    }
  }
}

StatusOr<std::vector<SearchResult>> SearchEngine::Search(
    std::string_view query) const {
  SearchWorkspace ws;
  return Search(query, &ws);
}

namespace {

// Decodes every source into the workspace's flat arena (plain sources
// keep their existing storage) and builds MatchLists views for the scan
// kernels. One arena resize, no per-list vectors. Checks the workspace's
// cancellation between sources (one source decode is the natural unit of
// interruptible work here).
Status DecodeSources(SearchWorkspace* ws) {
  size_t need = 0;
  for (const PostingSource& src : ws->sources) {
    if (!src.is_plain()) need += src.size();
  }
  ws->decode_pool.resize(need);
  ws->lists.clear();
  size_t offset = 0;
  const bool expirable = ws->cancel.can_expire();
  for (const PostingSource& src : ws->sources) {
    if (expirable) XSACT_RETURN_IF_ERROR(ws->cancel.Check());
    if (src.is_plain()) {
      ws->lists.push_back(src.plain());
      continue;
    }
    xml::NodeId* out = ws->decode_pool.data() + offset;
    src.compressed().DecodeInto(out);
    ws->lists.push_back(PostingList(out, src.size()));
    offset += src.size();
  }
  return Status();
}

}  // namespace

StatusOr<std::vector<SearchResult>> SearchEngine::Search(
    std::string_view query, SearchWorkspace* ws) const {
  const xml::NodeTable& table = corpus_.table;
  ws->Reset();
  ParseQueryInto(query, &ws->terms);
  std::vector<QueryTerm>& terms = ws->terms;
  if (terms.empty()) {
    return Status::InvalidArgument("query contains no searchable tokens");
  }
  // Dedup conjuncts (stable): a duplicated query term would fetch and
  // intersect the same posting list twice without changing the answer.
  size_t unique_terms = 0;
  for (size_t i = 0; i < terms.size(); ++i) {
    bool duplicate = false;
    for (size_t j = 0; j < unique_terms && !duplicate; ++j) {
      duplicate = terms[j] == terms[i];
    }
    if (!duplicate) {
      if (unique_terms != i) terms[unique_terms] = std::move(terms[i]);
      ++unique_terms;
    }
  }
  terms.resize(unique_terms);

  MergeLists& sources = ws->sources;
  sources.reserve(terms.size());
  // Backing storage for fielded terms only; unrestricted terms read the
  // index's compressed postings directly.
  std::vector<std::vector<xml::NodeId>>& filtered_storage =
      ws->filtered_storage;
  filtered_storage.reserve(terms.size());
  size_t total_postings = 0;
  for (const QueryTerm& qt : terms) {
    const CompressedPostings postings = corpus_.index.Postings(qt.term);
    if (qt.field.empty()) {
      sources.push_back(PostingSource(postings));
    } else {
      // Fielded term: keep only matches whose containing element has the
      // requested tag.
      const PostingList full = postings.DecodeAll(&ws->field_scratch);
      std::vector<xml::NodeId>& filtered = filtered_storage.emplace_back();
      for (xml::NodeId id : full) {
        if (table.node(id)->tag() == qt.field) filtered.push_back(id);
      }
      sources.push_back(
          PostingSource(PostingList(filtered.data(), filtered.size())));
    }
    if (sources.back().empty()) {
      return std::vector<SearchResult>{};  // conjunctive: no results
    }
    total_postings += sources.back().size();
  }
  // Smallest list first: the merge kernels anchor on the first shortest
  // list, and the scan kernels are insensitive to order, so sorting is
  // free correctness-wise and pays on the merge path.
  std::stable_sort(sources.begin(), sources.end(),
                   [](const PostingSource& a, const PostingSource& b) {
                     return a.size() < b.size();
                   });

  // Selectivity dispatch: the merge kernels cost ~ posting volume, the
  // scan kernels ~ corpus size. Merge when the postings are a small
  // fraction of the table (or when the query is too wide for the scan
  // fast path); scan when the lists approach corpus scale and the merge
  // would gallop over nearly every block anyway.
  const bool selective = total_postings < table.size() / 4;
  const bool prefer_merge = selective || sources.size() > 64;
  XSACT_FAULT_HIT(kFaultSearchEvaluate);
  const Cancellation& cancel = ws->cancel;
  std::vector<xml::NodeId> slcas;
  switch (corpus_.algorithm) {
    case SlcaAlgorithm::kScan:
      XSACT_RETURN_IF_ERROR(DecodeSources(ws));
      slcas = ComputeSlcaByScan(table, ws->lists, cancel);
      break;
    case SlcaAlgorithm::kIndexed:
      if (prefer_merge) {
        slcas = ComputeSlcaMerge(table, sources, &ws->merge, cancel);
      } else {
        XSACT_RETURN_IF_ERROR(DecodeSources(ws));
        slcas = ComputeSlcaByScan(table, ws->lists, cancel);
      }
      break;
    case SlcaAlgorithm::kElca:
      if (prefer_merge) {
        slcas = ComputeElcaMerge(table, sources, &ws->merge, cancel);
      } else {
        XSACT_RETURN_IF_ERROR(DecodeSources(ws));
        slcas = ComputeElcaByScan(table, ws->lists, cancel);
      }
      break;
  }
  // The kernels return partial answers on expiry; never surface those.
  XSACT_RETURN_IF_ERROR(cancel.Check());

  std::vector<SearchResult> results;
  std::unordered_set<const xml::Node*>& seen = ws->seen;
  const bool expirable = cancel.can_expire();
  uint32_t tick = 0;
  for (xml::NodeId slca_id : slcas) {
    if (expirable && (++tick & 255u) == 0) {
      XSACT_RETURN_IF_ERROR(cancel.Check());
    }
    const xml::Node* slca = table.node(slca_id);
    // Return-node inference: nearest entity ancestor-or-self. The document
    // root bounds the walk: if no entity exists on the path we fall back to
    // the SLCA itself rather than returning the entire corpus.
    const xml::Node* ret = slca;
    for (const xml::Node* cur = slca; cur != nullptr; cur = cur->parent()) {
      if (corpus_.schema.CategoryOf(*cur, &ws->key_scratch) ==
          entity::NodeCategory::kEntity) {
        ret = cur;
        break;
      }
    }
    if (!seen.insert(ret).second) continue;  // several SLCAs, one entity
    SearchResult r;
    r.root = ret;
    r.root_id = table.IdOf(ret);
    r.slca = slca;
    r.title = InferTitle(*ret);
    results.push_back(std::move(r));
  }
  return results;
}

StatusOr<std::vector<SearchResult>> SearchEngine::SearchRanked(
    std::string_view query) const {
  SearchWorkspace ws;
  return SearchRanked(query, &ws);
}

StatusOr<std::vector<SearchResult>> SearchEngine::SearchRanked(
    std::string_view query, SearchWorkspace* ws) const {
  // Search leaves the parsed conjuncts in the workspace; ranking views
  // them in place — the query is parsed once and no term is copied.
  XSACT_ASSIGN_OR_RETURN(std::vector<SearchResult> results,
                         Search(query, ws));
  ws->term_views.reserve(ws->terms.size());
  for (const QueryTerm& qt : ws->terms) ws->term_views.push_back(qt.term);
  return RankResults(corpus_.table, corpus_.index, ws->term_views,
                     std::move(results));
}

std::string InferTitle(const xml::Node& result_root) {
  static constexpr std::string_view kTitleTags[] = {"name", "title", "id"};
  for (std::string_view tag : kTitleTags) {
    if (const xml::Node* child = result_root.FirstChildElement(tag)) {
      std::string text = child->InnerText();
      if (!text.empty()) return text;
    }
  }
  std::string text = result_root.InnerText();
  if (text.size() > 40) {
    text.resize(40);
    text += "...";
  }
  return text.empty() ? std::string(result_root.tag()) : text;
}

std::string BriefSnippet(const xml::Node& result_root, size_t max_fields) {
  std::vector<std::string> fields;
  for (const xml::Node* child : result_root.children()) {
    if (fields.size() >= max_fields) break;
    if (!child->is_element() || !child->IsLeafElement()) continue;
    std::string value = child->InnerText();
    if (value.empty()) continue;
    if (value.size() > 32) {
      value.resize(32);
      value += "...";
    }
    fields.push_back(std::string(child->tag()) + ": " + value);
  }
  return Join(fields, " | ");
}

}  // namespace xsact::search
