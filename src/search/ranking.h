// Result ranking: orders keyword-search results by relevance.
//
// The paper situates result differentiation "with other techniques such
// as ... result ranking" in a full keyword-search engine; this module
// provides the standard XML-keyword-search ranking signal set:
//   * term frequency inside the result subtree (damped logarithmically),
//   * inverse document frequency of each term over the corpus elements,
//   * specificity: tighter (smaller) result subtrees outrank sprawling
//     ones that merely happen to contain all keywords somewhere.
//
// Terms are passed as string_views (typically views into the
// SearchWorkspace's parsed query terms) — ranking allocates nothing per
// term, and subtree sizes come from the node table's precomputed extents
// rather than a recursive walk.

#ifndef XSACT_SEARCH_RANKING_H_
#define XSACT_SEARCH_RANKING_H_

#include <string_view>
#include <vector>

#include "search/inverted_index.h"
#include "search/search_engine.h"
#include "xml/path.h"

namespace xsact::search {

/// Relevance score of one result subtree for a tokenized query.
/// Monotone in term frequency, anti-monotone in subtree size.
double ScoreResult(const xml::NodeTable& table, const InvertedIndex& index,
                   const std::vector<std::string_view>& terms,
                   const SearchResult& result);

/// Returns `results` sorted by descending score; ties keep document
/// order (stable), so ranking is deterministic.
std::vector<SearchResult> RankResults(
    const xml::NodeTable& table, const InvertedIndex& index,
    const std::vector<std::string_view>& terms,
    std::vector<SearchResult> results);

/// Number of postings of `term` that fall inside the subtree rooted at
/// `root_id` (subtrees are contiguous pre-order id ranges, so this is
/// two rank queries against the compressed posting list).
size_t TermFrequencyInSubtree(const xml::NodeTable& table,
                              const InvertedIndex& index,
                              std::string_view term, xml::NodeId root_id);

}  // namespace xsact::search

#endif  // XSACT_SEARCH_RANKING_H_
