// Smallest Lowest Common Ancestor (SLCA) computation.
//
// The SLCA semantics defines the answer set of an XML keyword query: the
// deepest nodes whose subtree contains every query keyword, excluding any
// node with a descendant that already contains them all. XSACT's search
// engine (an XSeek [3,4] reimplementation) uses SLCA to locate matches
// before inferring the entity ("return node") to present as the result.
//
// Two independent implementations are provided:
//  * ComputeSlcaByScan    — one linear pass propagating keyword bitmasks
//                           up the tree; O(nodes * keywords/64), simple
//                           and obviously correct (used as test oracle).
//  * ComputeSlcaIndexed   — the Indexed Lookup Eager style algorithm of
//                           Xu & Papakonstantinou, driven by the shortest
//                           posting list with binary searches into the
//                           others; sublinear for selective keywords.

#ifndef XSACT_SEARCH_SLCA_H_
#define XSACT_SEARCH_SLCA_H_

#include <vector>

#include "search/posting_list.h"
#include "xml/path.h"

namespace xsact::search {

/// Keyword match lists: one sorted element-id list view per keyword. The
/// views typically point straight into the inverted index (or into a
/// caller-owned filtered vector), so assembling a query's match lists
/// copies no ids.
using MatchLists = std::vector<PostingList>;

/// Linear-scan SLCA. Supports up to 64 keywords. Returns element ids in
/// document order; empty when any list is empty (conjunctive semantics).
std::vector<xml::NodeId> ComputeSlcaByScan(const xml::NodeTable& table,
                                           const MatchLists& lists);

/// Indexed-lookup SLCA (binary searches into Dewey-ordered lists).
/// Same contract and results as ComputeSlcaByScan.
std::vector<xml::NodeId> ComputeSlcaIndexed(const xml::NodeTable& table,
                                            const MatchLists& lists);

/// Exclusive LCA (ELCA, XRank-style) semantics: a node v answers the
/// query iff its subtree contains every keyword through WITNESS matches
/// that do not lie inside any descendant already containing all
/// keywords. Every SLCA is an ELCA; ELCA additionally keeps ancestors
/// that have their own exclusive evidence (e.g. a <product> whose <name>
/// matches everything still answers if the product has further matches
/// of every keyword outside that name). O(nodes * keywords).
std::vector<xml::NodeId> ComputeElcaByScan(const xml::NodeTable& table,
                                           const MatchLists& lists);

}  // namespace xsact::search

#endif  // XSACT_SEARCH_SLCA_H_
