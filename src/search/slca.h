// Smallest Lowest Common Ancestor (SLCA) computation.
//
// The SLCA semantics defines the answer set of an XML keyword query: the
// deepest nodes whose subtree contains every query keyword, excluding any
// node with a descendant that already contains them all. XSACT's search
// engine (an XSeek [3,4] reimplementation) uses SLCA to locate matches
// before inferring the entity ("return node") to present as the result.
//
// Four implementations are provided:
//  * ComputeSlcaByScan    — one linear pass propagating keyword bitmasks
//                           up the tree; O(nodes * keywords/64), simple
//                           and obviously correct (used as test oracle).
//                           Any keyword count (multi-word masks past 64).
//  * ComputeSlcaIndexed   — the Indexed Lookup Eager style algorithm of
//                           Xu & Papakonstantinou over Dewey labels,
//                           driven by the shortest posting list with
//                           binary searches into the others.
//  * ComputeSlcaMerge     — the same eager algorithm run directly on the
//                           block-compressed postings: per-order NodeId
//                           arithmetic replaces Dewey prefixes (ancestor
//                           checks via NodeTable::parent/subtree_end),
//                           and skip-entry galloping replaces binary
//                           search, decoding at most one block per probe.
//                           Sublinear for selective keywords.
//  * ComputeElcaByScan /  — Exclusive LCA semantics (superset of SLCA),
//    ComputeElcaMerge       as a full scan and as a k-way heap merge of
//                           the compressed postings with a stack of open
//                           ancestors (cost ~ sum of list lengths, not
//                           corpus size).
// All SLCA variants return identical answers, as do both ELCA variants;
// the search engine picks per query by selectivity (see search_engine.cc).

#ifndef XSACT_SEARCH_SLCA_H_
#define XSACT_SEARCH_SLCA_H_

#include <vector>

#include "common/cancellation.h"
#include "search/posting_list.h"
#include "search/postings_codec.h"
#include "xml/path.h"

namespace xsact::search {

/// Keyword match lists: one sorted element-id list view per keyword. The
/// views typically point straight into decode scratch (or into a
/// caller-owned filtered vector); assembling them copies no ids beyond
/// the decode itself.
using MatchLists = std::vector<PostingList>;

/// One keyword's postings for the merge kernels: either a compressed
/// handle straight out of the inverted index, or a plain decoded view
/// (fielded terms filter into caller scratch and stay uncompressed).
class PostingSource {
 public:
  PostingSource() = default;
  explicit PostingSource(CompressedPostings compressed)
      : compressed_(compressed) {}
  explicit PostingSource(PostingList plain) : plain_(plain), is_plain_(true) {}

  bool is_plain() const { return is_plain_; }
  const CompressedPostings& compressed() const { return compressed_; }
  const PostingList& plain() const { return plain_; }
  size_t size() const {
    return is_plain_ ? plain_.size() : compressed_.size();
  }
  bool empty() const { return size() == 0; }

 private:
  CompressedPostings compressed_;
  PostingList plain_;
  bool is_plain_ = false;
};

/// Per-keyword posting sources for the merge kernels.
using MergeLists = std::vector<PostingSource>;

/// Reusable evaluation state for the merge kernels: block decode
/// buffers, the candidate set, and the ELCA heap/stack. Clear() drops
/// contents but keeps capacity, so a session-held scratch makes the
/// merge path allocation-free in steady state.
struct MergeScratch {
  std::vector<xml::NodeId> blocks;     // k * kPostingsBlockSize decode slots
  std::vector<uint32_t> cached_block;  // per list: block index resident above
  std::vector<size_t> hint;            // per list: monotone search cursor
  std::vector<xml::NodeId> candidates;
  std::vector<size_t> heap;            // ELCA: list indices keyed by head id
  std::vector<xml::NodeId> heads;      // ELCA: current posting per list
  std::vector<size_t> pos;             // ELCA: per-list stream positions
  std::vector<xml::NodeId> stack_id;   // ELCA: open ancestor path
  std::vector<xml::NodeId> stack_end;  // ELCA: matching subtree extents
  std::vector<int32_t> counters;       // ELCA: 2k counters per stack slot

  void Clear() {
    blocks.clear();
    cached_block.clear();
    hint.clear();
    candidates.clear();
    heap.clear();
    heads.clear();
    pos.clear();
    stack_id.clear();
    stack_end.clear();
    counters.clear();
  }
};

// Every kernel takes an optional Cancellation and polls it at a strided
// cadence (every few thousand fold steps / 64 anchor probes or heap
// pops). On expiry a kernel stops early and returns whatever partial
// answer it accumulated — callers that passed an expirable token MUST
// call cancel.Check() afterwards and discard the result on error (the
// search engine does; see search_engine.cc).

/// Linear-scan SLCA. Any number of keywords. Returns element ids in
/// document order; empty when any list is empty (conjunctive semantics).
std::vector<xml::NodeId> ComputeSlcaByScan(const xml::NodeTable& table,
                                           const MatchLists& lists,
                                           const Cancellation& cancel = {});

/// Indexed-lookup SLCA (binary searches into Dewey-ordered lists).
/// Same contract and results as ComputeSlcaByScan.
std::vector<xml::NodeId> ComputeSlcaIndexed(const xml::NodeTable& table,
                                            const MatchLists& lists,
                                            const Cancellation& cancel = {});

/// Skip-driven SLCA merge over compressed postings. Same contract and
/// results as ComputeSlcaByScan; cost scales with the shortest list.
std::vector<xml::NodeId> ComputeSlcaMerge(const xml::NodeTable& table,
                                          const MergeLists& lists,
                                          MergeScratch* scratch,
                                          const Cancellation& cancel = {});

/// Exclusive LCA (ELCA, XRank-style) semantics: a node v answers the
/// query iff its subtree contains every keyword through WITNESS matches
/// that do not lie inside any descendant already containing all
/// keywords. Every SLCA is an ELCA; ELCA additionally keeps ancestors
/// that have their own exclusive evidence (e.g. a <product> whose <name>
/// matches everything still answers if the product has further matches
/// of every keyword outside that name). O(nodes * keywords).
std::vector<xml::NodeId> ComputeElcaByScan(const xml::NodeTable& table,
                                           const MatchLists& lists,
                                           const Cancellation& cancel = {});

/// ELCA as a k-way merge of the compressed postings: a heap interleaves
/// the lists in pre-order while a stack maintains the open ancestor path
/// with per-keyword exclusive counters. Same results as ComputeElcaByScan
/// at cost ~ sum of list lengths (times log k) instead of corpus size.
std::vector<xml::NodeId> ComputeElcaMerge(const xml::NodeTable& table,
                                          const MergeLists& lists,
                                          MergeScratch* scratch,
                                          const Cancellation& cancel = {});

}  // namespace xsact::search

#endif  // XSACT_SEARCH_SLCA_H_
