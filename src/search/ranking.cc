#include "search/ranking.h"

#include <algorithm>
#include <cmath>

namespace xsact::search {

size_t TermFrequencyInSubtree(const xml::NodeTable& table,
                              const InvertedIndex& index,
                              std::string_view term, xml::NodeId root_id) {
  const CompressedPostings postings = index.Postings(term);
  if (postings.empty()) return 0;
  // Subtrees are contiguous pre-order id ranges; the table's precomputed
  // extent replaces the recursive SubtreeSize walk, and two rank queries
  // over the compressed list (skip search + at most one block decode
  // each) replace the binary searches over a flat array.
  const xml::NodeId end = table.subtree_end(root_id);
  return postings.Rank(end) - postings.Rank(root_id);
}

double ScoreResult(const xml::NodeTable& table, const InvertedIndex& index,
                   const std::vector<std::string_view>& terms,
                   const SearchResult& result) {
  if (result.root_id == xml::kInvalidNodeId) return 0.0;
  const double corpus_elements = static_cast<double>(table.size());
  double score = 0.0;
  for (const std::string_view term : terms) {
    const size_t tf =
        TermFrequencyInSubtree(table, index, term, result.root_id);
    if (tf == 0) continue;
    const double df = static_cast<double>(index.Df(term));
    const double idf = std::log((corpus_elements + 1.0) / (df + 1.0));
    score += std::log1p(static_cast<double>(tf)) * std::max(idf, 0.1);
  }
  // Specificity: damp by the subtree size so the tightest match wins.
  const double size =
      static_cast<double>(table.subtree_end(result.root_id) - result.root_id);
  return score / std::log(2.0 + size);
}

std::vector<SearchResult> RankResults(
    const xml::NodeTable& table, const InvertedIndex& index,
    const std::vector<std::string_view>& terms,
    std::vector<SearchResult> results) {
  std::vector<std::pair<double, size_t>> keyed;
  keyed.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    keyed.emplace_back(ScoreResult(table, index, terms, results[i]), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  std::vector<SearchResult> out;
  out.reserve(results.size());
  for (const auto& [score, i] : keyed) {
    (void)score;
    out.push_back(std::move(results[i]));
  }
  return out;
}

}  // namespace xsact::search
