// Block-compressed posting-list codec.
//
// A posting list (sorted, duplicate-free pre-order element NodeIds) is
// split into fixed-size blocks of kPostingsBlockSize ids. Each block has
// a skip entry {first posting id, payload byte offset} so readers can
// jump between blocks without touching the payload, and the payload
// encodes only the remaining ids as gap values (delta - 1; sorted unique
// ids make every delta >= 1). A block therefore decodes independently:
// its first id comes from the skip entry, never from the payload.
//
// Per block the encoder picks the cheaper of two layouts:
//   * varbyte  — one 7-bit-per-byte varint per gap; wins on skewed gap
//     distributions (a few huge gaps among many small ones).
//   * packed   — all gaps bit-packed at the width of the largest
//     "regular" gap, plus a short exception list patching the outliers
//     (position byte + varbyte of the high bits). This is the classic
//     patched frame-of-reference layout and wins on the uniform-ish
//     gaps real posting lists have.
// The choice is a per-block header byte; decoders dispatch on it.
//
// Corruption safety: every block with a payload (2+ ids) carries a
// 4-byte little-endian FNV-1a-32 checksum of its header+body bytes,
// written before the header. The trusted hot decoders (DecodeBlock,
// DecodeInto, Rank) skip it; DecodeBlockChecked and Validate verify it
// and bounds-check every read, so a corrupted or truncated index
// surfaces as Status::DataCorruption instead of undefined behavior.
// Validation runs once per snapshot build/reload (see
// InvertedIndex::Validate), keeping the per-query path checksum-free.

#ifndef XSACT_SEARCH_POSTINGS_CODEC_H_
#define XSACT_SEARCH_POSTINGS_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "search/posting_list.h"
#include "xml/path.h"

namespace xsact::search {

/// Ids per block. 128 keeps one decoded block inside two cache lines of
/// skip metadata and lets exception positions fit in one byte.
inline constexpr size_t kPostingsBlockSize = 128;

/// Bytes of the per-block payload checksum (FNV-1a-32, little-endian).
inline constexpr size_t kPostingsChecksumBytes = 4;

/// FNV-1a-32 over `len` bytes at `data` — the per-block checksum.
uint32_t PostingsBlockChecksum(const uint8_t* data, size_t len);

/// One entry per block: the block's first posting id and the byte offset
/// of its payload relative to the owning term's payload start.
struct PostingsSkip {
  xml::NodeId first_id = 0;
  uint32_t byte_offset = 0;
};

/// Appends `v` as a little-endian base-128 varint.
void AppendVarbyte(uint32_t v, std::vector<uint8_t>* out);

/// Decodes one varint starting at `p`; returns the first byte past it.
/// The buffer is trusted (produced by AppendVarbyte), so no bounds check.
const uint8_t* DecodeVarbyte(const uint8_t* p, uint32_t* v);

/// Bounds-validated variant for untrusted buffers: decodes one varint
/// from [p, end) into `*v` and returns the first byte past it, or
/// nullptr when the varint runs off `end` or overflows 32 bits.
const uint8_t* DecodeVarbyteBounded(const uint8_t* p, const uint8_t* end,
                                    uint32_t* v);

/// Encodes `count` sorted unique ids, appending one PostingsSkip per
/// block to `*skips` and the block payloads to `*bytes`. Skip byte
/// offsets are relative to the value of `bytes->size()` on entry.
/// Fails with kInvalidArgument when the ids are not non-negative and
/// strictly increasing; on failure the outputs are unspecified (the
/// caller must discard them).
Status EncodePostings(const xml::NodeId* ids, size_t count,
                      std::vector<uint8_t>* bytes,
                      std::vector<PostingsSkip>* skips);

/// Read-only handle on one term's compressed posting list. Points into
/// storage owned by the InvertedIndex (or any caller-owned buffers);
/// valid as long as that storage lives. Copyable, 5 words. `byte_size`
/// is the total payload length — the end bound the checked readers
/// validate against.
class CompressedPostings {
 public:
  CompressedPostings() = default;
  CompressedPostings(const uint8_t* bytes, const PostingsSkip* skips,
                     size_t num_blocks, size_t count, size_t byte_size)
      : bytes_(bytes),
        skips_(skips),
        num_blocks_(num_blocks),
        count_(count),
        byte_size_(byte_size) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t num_blocks() const { return num_blocks_; }
  size_t byte_size() const { return byte_size_; }
  xml::NodeId front() const { return skips_[0].first_id; }

  /// First posting id of block `b` — read straight off the skip entry.
  xml::NodeId BlockFirstId(size_t b) const { return skips_[b].first_id; }

  /// Number of ids in block `b` (all blocks are full except the last).
  size_t BlockLength(size_t b) const {
    return b + 1 < num_blocks_ ? kPostingsBlockSize
                               : count_ - (num_blocks_ - 1) * kPostingsBlockSize;
  }

  /// Decodes block `b` into out[0..BlockLength(b)); returns the length.
  /// `out` must hold at least kPostingsBlockSize ids. Trusts the payload
  /// (validated at build/reload); see DecodeBlockChecked for the
  /// untrusted path.
  size_t DecodeBlock(size_t b, xml::NodeId* out) const;

  /// Bounds- and checksum-validated block decode: every read is checked
  /// against the payload extent, the block checksum must match, and the
  /// decoded ids must be strictly increasing non-negative int32s. On
  /// success `*len` is the block length. Fails with kDataCorruption (or
  /// kOutOfRange for a bad block index) and leaves `*out` unspecified.
  Status DecodeBlockChecked(size_t b, xml::NodeId* out, size_t* len) const;

  /// Decodes the whole list into out[0..size()). The caller sizes the
  /// buffer — typically a slice of a pooled decode arena.
  void DecodeInto(xml::NodeId* out) const;

  /// Decodes the whole list into `*out` (resized to size()) and returns
  /// a view of it. Capacity is reused across calls.
  PostingList DecodeAll(std::vector<xml::NodeId>* out) const;

  /// Number of postings with id < `limit`: a binary search over the skip
  /// entries plus at most one block decode (into a stack buffer).
  size_t Rank(xml::NodeId limit) const;

  /// Full structural validation: skip-table shape, per-block checksums,
  /// bounded decode of every block, ids strictly increasing across the
  /// whole list and < `node_count`. Run once at snapshot build/reload so
  /// the trusted hot decoders never see a malformed payload.
  Status Validate(size_t node_count) const;

 private:
  const uint8_t* bytes_ = nullptr;
  const PostingsSkip* skips_ = nullptr;
  size_t num_blocks_ = 0;
  size_t count_ = 0;
  size_t byte_size_ = 0;
};

}  // namespace xsact::search

#endif  // XSACT_SEARCH_POSTINGS_CODEC_H_
