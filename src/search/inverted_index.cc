#include "search/inverted_index.h"

#include <algorithm>

#include "common/string_util.h"

namespace xsact::search {

InvertedIndex InvertedIndex::Build(const xml::Document& doc,
                                   const xml::NodeTable& table) {
  (void)doc;  // the node table fully describes the document
  InvertedIndex index;
  for (size_t id = 0; id < table.size(); ++id) {
    const xml::Node* node = table.node(static_cast<xml::NodeId>(id));
    if (!node->is_text()) continue;
    // Attribute the text to the containing element.
    const xml::NodeId element_id =
        table.parent(static_cast<xml::NodeId>(id)) != xml::kInvalidNodeId
            ? table.parent(static_cast<xml::NodeId>(id))
            : static_cast<xml::NodeId>(id);
    for (const std::string& term : Tokenize(node->text())) {
      index.postings_[term].push_back(element_id);
    }
  }
  // Also index attribute values on their owning element.
  for (size_t id = 0; id < table.size(); ++id) {
    const xml::Node* node = table.node(static_cast<xml::NodeId>(id));
    if (!node->is_element()) continue;
    for (const auto& [name, value] : node->attributes()) {
      (void)name;
      for (const std::string& term : Tokenize(value)) {
        index.postings_[term].push_back(static_cast<xml::NodeId>(id));
      }
    }
  }
  for (auto& [term, list] : index.postings_) {
    (void)term;
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    index.total_postings_ += list.size();
  }
  return index;
}

const std::vector<xml::NodeId>& InvertedIndex::Postings(
    std::string_view term) const {
  auto it = postings_.find(std::string(term));
  return it == postings_.end() ? empty_ : it->second;
}

}  // namespace xsact::search
