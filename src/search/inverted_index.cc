#include "search/inverted_index.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/faultpoint.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace xsact::search {

namespace {

const fault::FaultPointId kFaultIndexBuild =
    fault::RegisterFaultPoint("index.build");
const fault::FaultPointId kFaultIndexValidate =
    fault::RegisterFaultPoint("index.validate");

}  // namespace

InvertedIndex InvertedIndex::Build(const xml::NodeTable& table) {
  InvertedIndex index;
  index.build_status_ = fault::CheckFaultPoint(kFaultIndexBuild);
  if (!index.build_status_.ok()) return index;

  // Single sweep: text nodes post against their containing element,
  // attribute values against their owning element. Occurrences are
  // collected as (term id, element id) pairs and laid out afterwards.
  std::vector<std::pair<int32_t, xml::NodeId>> occurrences;
  std::string scratch;
  auto post = [&](std::string_view text, xml::NodeId element_id) {
    ForEachToken(text, &scratch, [&](std::string_view token) {
      occurrences.emplace_back(index.terms_.Intern(token), element_id);
    });
  };
  for (size_t id = 0; id < table.size(); ++id) {
    const xml::Node* node = table.node(static_cast<xml::NodeId>(id));
    if (node->is_text()) {
      const xml::NodeId parent = table.parent(static_cast<xml::NodeId>(id));
      post(node->text(),
           parent != xml::kInvalidNodeId ? parent
                                         : static_cast<xml::NodeId>(id));
    } else if (node->is_element()) {
      for (const auto& [name, value] : node->attributes()) {
        (void)name;
        post(value, static_cast<xml::NodeId>(id));
      }
    }
  }

  // Counting sort into per-term ranges, sort + dedup each range in a
  // flat id buffer, then compress term by term into the shared payload.
  const size_t num_terms = index.terms_.size();
  std::vector<size_t> range(num_terms + 1, 0);
  for (const auto& [term, element] : occurrences) {
    (void)element;
    ++range[static_cast<size_t>(term) + 1];
  }
  for (size_t t = 0; t < num_terms; ++t) range[t + 1] += range[t];
  std::vector<xml::NodeId> flat(occurrences.size());
  std::vector<size_t> cursor(range.begin(), range.end() - 1);
  for (const auto& [term, element] : occurrences) {
    flat[cursor[static_cast<size_t>(term)]++] = element;
  }
  occurrences.clear();
  occurrences.shrink_to_fit();

  index.byte_offsets_.reserve(num_terms + 1);
  index.skip_offsets_.reserve(num_terms + 1);
  index.count_offsets_.reserve(num_terms + 1);
  index.byte_offsets_.push_back(0);
  index.skip_offsets_.push_back(0);
  index.count_offsets_.push_back(0);
  for (size_t t = 0; t < num_terms; ++t) {
    const size_t begin = range[t];
    const size_t end = range[t + 1];
    std::sort(flat.begin() + static_cast<ptrdiff_t>(begin),
              flat.begin() + static_cast<ptrdiff_t>(end));
    size_t write = begin;
    for (size_t r = begin; r < end; ++r) {
      if (r > begin && flat[r] == flat[r - 1]) continue;
      flat[write++] = flat[r];
    }
    Status encoded = EncodePostings(flat.data() + begin, write - begin,
                                    &index.bytes_, &index.skips_);
    if (!encoded.ok()) {
      // The sorted/deduped ids should always encode; a failure here means
      // the build sweep produced a malformed sequence. Poison the index
      // rather than abort — Validate() surfaces it to the snapshot layer.
      index.build_status_ =
          encoded.WithContext("term '" + index.terms_.Lookup(
                                             static_cast<int32_t>(t)) +
                              "'");
      return index;
    }
    index.byte_offsets_.push_back(static_cast<uint32_t>(index.bytes_.size()));
    index.skip_offsets_.push_back(static_cast<uint32_t>(index.skips_.size()));
    index.count_offsets_.push_back(index.count_offsets_.back() +
                                   static_cast<uint32_t>(write - begin));
  }
  index.bytes_.shrink_to_fit();
  index.skips_.shrink_to_fit();
  return index;
}

Status InvertedIndex::Validate(size_t node_count) const {
  XSACT_INJECT_FAULT(kFaultIndexValidate);
  XSACT_RETURN_IF_ERROR(build_status_.WithContext("index build failed"));
  const size_t num_terms = terms_.size();
  const bool shapes_ok =
      byte_offsets_.size() == num_terms + 1 &&
      skip_offsets_.size() == num_terms + 1 &&
      count_offsets_.size() == num_terms + 1 &&
      byte_offsets_.front() == 0 && skip_offsets_.front() == 0 &&
      count_offsets_.front() == 0 && byte_offsets_.back() == bytes_.size() &&
      skip_offsets_.back() == skips_.size();
  if (!shapes_ok) {
    return Status::DataCorruption("index CSR offset arrays inconsistent");
  }
  for (size_t t = 0; t < num_terms; ++t) {
    if (byte_offsets_[t + 1] < byte_offsets_[t] ||
        skip_offsets_[t + 1] < skip_offsets_[t] ||
        count_offsets_[t + 1] < count_offsets_[t]) {
      return Status::DataCorruption("index CSR offsets not monotone at term " +
                                    std::to_string(t));
    }
  }
  for (size_t t = 0; t < num_terms; ++t) {
    Status st = PostingsById(t).Validate(node_count);
    if (!st.ok()) {
      return st.WithContext("term '" + terms_.Lookup(static_cast<int32_t>(t)) +
                            "'");
    }
  }
  return Status();
}

}  // namespace xsact::search
