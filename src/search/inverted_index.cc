#include "search/inverted_index.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace xsact::search {

InvertedIndex InvertedIndex::Build(const xml::NodeTable& table) {
  InvertedIndex index;

  // Single sweep: text nodes post against their containing element,
  // attribute values against their owning element. Occurrences are
  // collected as (term id, element id) pairs and laid out afterwards.
  std::vector<std::pair<int32_t, xml::NodeId>> occurrences;
  std::string scratch;
  auto post = [&](std::string_view text, xml::NodeId element_id) {
    ForEachToken(text, &scratch, [&](std::string_view token) {
      occurrences.emplace_back(index.terms_.Intern(token), element_id);
    });
  };
  for (size_t id = 0; id < table.size(); ++id) {
    const xml::Node* node = table.node(static_cast<xml::NodeId>(id));
    if (node->is_text()) {
      const xml::NodeId parent = table.parent(static_cast<xml::NodeId>(id));
      post(node->text(),
           parent != xml::kInvalidNodeId ? parent
                                         : static_cast<xml::NodeId>(id));
    } else if (node->is_element()) {
      for (const auto& [name, value] : node->attributes()) {
        (void)name;
        post(value, static_cast<xml::NodeId>(id));
      }
    }
  }

  // Counting sort into CSR ranges, then sort + dedup each term's range,
  // compacting the array in place.
  const size_t num_terms = index.terms_.size();
  index.offsets_.assign(num_terms + 1, 0);
  for (const auto& [term, element] : occurrences) {
    (void)element;
    ++index.offsets_[static_cast<size_t>(term) + 1];
  }
  for (size_t t = 0; t < num_terms; ++t) {
    index.offsets_[t + 1] += index.offsets_[t];
  }
  index.postings_.resize(occurrences.size());
  std::vector<size_t> cursor(index.offsets_.begin(),
                             index.offsets_.end() - 1);
  for (const auto& [term, element] : occurrences) {
    index.postings_[cursor[static_cast<size_t>(term)]++] = element;
  }
  size_t write = 0;
  for (size_t t = 0; t < num_terms; ++t) {
    const size_t begin = index.offsets_[t];
    const size_t end = index.offsets_[t + 1];
    std::sort(index.postings_.begin() + static_cast<ptrdiff_t>(begin),
              index.postings_.begin() + static_cast<ptrdiff_t>(end));
    index.offsets_[t] = write;
    for (size_t r = begin; r < end; ++r) {
      if (r > begin && index.postings_[r] == index.postings_[r - 1]) continue;
      index.postings_[write++] = index.postings_[r];
    }
  }
  index.offsets_[num_terms] = write;
  index.postings_.resize(write);
  index.postings_.shrink_to_fit();
  return index;
}

}  // namespace xsact::search
