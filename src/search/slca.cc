#include "search/slca.h"

#include <algorithm>
#include <cstdint>

#include "common/macros.h"
#include "xml/dewey.h"

namespace xsact::search {

namespace {

bool AnyListEmpty(const MatchLists& lists) {
  if (lists.empty()) return true;
  for (const auto& l : lists) {
    if (l.empty()) return true;
  }
  return false;
}

}  // namespace

namespace {

// Arbitrary-keyword-count scan: identical sweep to the 64-keyword fast
// path below, with ceil(k/64) mask words per node instead of one.
std::vector<xml::NodeId> SlcaByScanWide(const xml::NodeTable& table,
                                        const MatchLists& lists,
                                        const Cancellation& cancel) {
  std::vector<xml::NodeId> result;
  const bool expirable = cancel.can_expire();
  const size_t k = lists.size();
  const size_t words = (k + 63) / 64;
  std::vector<uint64_t> mask(table.size() * words, 0);
  uint32_t tick = 0;
  for (size_t q = 0; q < k; ++q) {
    for (xml::NodeId id : lists[q]) {
      mask[static_cast<size_t>(id) * words + q / 64] |= 1ULL << (q % 64);
      if (expirable && (++tick & 4095u) == 0 && cancel.Expired()) return result;
    }
  }
  auto covers_all = [&](size_t v) {
    for (size_t w = 0; w < words; ++w) {
      const uint64_t want = w + 1 < words           ? ~0ULL
                            : (k % 64) == 0         ? ~0ULL
                                            : ((1ULL << (k % 64)) - 1);
      if (mask[v * words + w] != want) return false;
    }
    return true;
  };
  for (size_t i = table.size(); i-- > 1;) {
    if (expirable && (i & 4095u) == 0 && cancel.Expired()) return result;
    const xml::NodeId parent = table.parent(static_cast<xml::NodeId>(i));
    if (parent == xml::kInvalidNodeId) continue;
    for (size_t w = 0; w < words; ++w) {
      mask[static_cast<size_t>(parent) * words + w] |= mask[i * words + w];
    }
  }
  std::vector<bool> has_full_child(table.size(), false);
  for (size_t i = 1; i < table.size(); ++i) {
    if (covers_all(i)) {
      const xml::NodeId parent = table.parent(static_cast<xml::NodeId>(i));
      if (parent != xml::kInvalidNodeId) {
        has_full_child[static_cast<size_t>(parent)] = true;
      }
    }
  }
  for (size_t i = 0; i < table.size(); ++i) {
    if (expirable && (i & 4095u) == 0 && cancel.Expired()) break;
    if (covers_all(i) && !has_full_child[i] &&
        table.node(static_cast<xml::NodeId>(i))->is_element()) {
      result.push_back(static_cast<xml::NodeId>(i));
    }
  }
  return result;
}

}  // namespace

std::vector<xml::NodeId> ComputeSlcaByScan(const xml::NodeTable& table,
                                           const MatchLists& lists,
                                           const Cancellation& cancel) {
  std::vector<xml::NodeId> result;
  if (AnyListEmpty(lists)) return result;
  if (lists.size() > 64) return SlcaByScanWide(table, lists, cancel);

  const bool expirable = cancel.can_expire();
  const uint64_t full =
      lists.size() == 64 ? ~0ULL : ((1ULL << lists.size()) - 1);
  std::vector<uint64_t> mask(table.size(), 0);
  uint32_t tick = 0;
  for (size_t k = 0; k < lists.size(); ++k) {
    for (xml::NodeId id : lists[k]) {
      mask[static_cast<size_t>(id)] |= (1ULL << k);
      if (expirable && (++tick & 4095u) == 0 && cancel.Expired()) return result;
    }
  }
  // Pre-order table: children have larger ids than parents, so a reverse
  // sweep folds every subtree's mask into its root before the root is read.
  for (size_t i = table.size(); i-- > 1;) {
    if (expirable && (i & 4095u) == 0 && cancel.Expired()) return result;
    const xml::NodeId parent = table.parent(static_cast<xml::NodeId>(i));
    if (parent != xml::kInvalidNodeId) {
      mask[static_cast<size_t>(parent)] |= mask[i];
    }
  }
  // A node is an SLCA iff it covers all keywords and no child does.
  std::vector<bool> has_full_child(table.size(), false);
  for (size_t i = 1; i < table.size(); ++i) {
    if (mask[i] == full) {
      const xml::NodeId parent = table.parent(static_cast<xml::NodeId>(i));
      if (parent != xml::kInvalidNodeId) {
        has_full_child[static_cast<size_t>(parent)] = true;
      }
    }
  }
  for (size_t i = 0; i < table.size(); ++i) {
    if (expirable && (i & 4095u) == 0 && cancel.Expired()) break;
    if (mask[i] == full && !has_full_child[i] &&
        table.node(static_cast<xml::NodeId>(i))->is_element()) {
      result.push_back(static_cast<xml::NodeId>(i));
    }
  }
  return result;
}

std::vector<xml::NodeId> ComputeElcaByScan(const xml::NodeTable& table,
                                           const MatchLists& lists,
                                           const Cancellation& cancel) {
  std::vector<xml::NodeId> result;
  if (AnyListEmpty(lists)) return result;
  const bool expirable = cancel.can_expire();
  const size_t k = lists.size();
  const size_t n = table.size();

  // cnt[v][q]  = matches of keyword q in subtree(v).
  // under[v][q]= matches of keyword q inside FULL descendants of v.
  // Flat row-major arrays; a reverse pre-order sweep folds children into
  // parents exactly once (children have larger ids).
  std::vector<int32_t> cnt(n * k, 0);
  std::vector<int32_t> under(n * k, 0);
  for (size_t q = 0; q < k; ++q) {
    for (xml::NodeId id : lists[q]) {
      ++cnt[static_cast<size_t>(id) * k + q];
    }
  }
  auto full = [&](size_t v) {
    for (size_t q = 0; q < k; ++q) {
      if (cnt[v * k + q] == 0) return false;
    }
    return true;
  };
  for (size_t v = n; v-- > 1;) {
    if (expirable && (v & 4095u) == 0 && cancel.Expired()) return result;
    const xml::NodeId parent = table.parent(static_cast<xml::NodeId>(v));
    if (parent == xml::kInvalidNodeId) continue;
    const size_t p = static_cast<size_t>(parent);
    const bool child_full = full(v);
    for (size_t q = 0; q < k; ++q) {
      // A full child shields ALL its matches from the parent's exclusive
      // evidence; a non-full child only shields what its own full
      // descendants already shield.
      under[p * k + q] += child_full ? cnt[v * k + q] : under[v * k + q];
      cnt[p * k + q] += cnt[v * k + q];
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (expirable && (v & 4095u) == 0 && cancel.Expired()) break;
    if (!table.node(static_cast<xml::NodeId>(v))->is_element()) continue;
    bool elca = true;
    for (size_t q = 0; q < k; ++q) {
      if (cnt[v * k + q] - under[v * k + q] <= 0) {
        elca = false;
        break;
      }
    }
    if (elca) result.push_back(static_cast<xml::NodeId>(v));
  }
  return result;
}

namespace {

/// Length of the common Dewey prefix of two labels.
size_t CommonPrefixLen(const xml::DeweyId& a, const xml::DeweyId& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

/// Truncates `a` to its first `len` components.
xml::DeweyId Prefix(const xml::DeweyId& a, size_t len) {
  return xml::DeweyId(a.begin(), len);
}

}  // namespace

std::vector<xml::NodeId> ComputeSlcaIndexed(const xml::NodeTable& table,
                                            const MatchLists& lists,
                                            const Cancellation& cancel) {
  std::vector<xml::NodeId> result;
  if (AnyListEmpty(lists)) return result;
  const bool expirable = cancel.can_expire();

  // Drive the algorithm with the shortest list.
  size_t shortest = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() < lists[shortest].size()) shortest = i;
  }

  std::vector<xml::DeweyId> candidates;
  uint32_t tick = 0;
  for (xml::NodeId d : lists[shortest]) {
    if (expirable && (++tick & 63u) == 0 && cancel.Expired()) break;
    xml::DeweyId u = table.dewey(d);
    for (size_t i = 0; i < lists.size(); ++i) {
      if (i == shortest) continue;
      const auto& list = lists[i];
      // Find pred (greatest id <= anchor) and succ (least id >= anchor) of
      // the current candidate in pre-order. NodeId order equals pre-order,
      // and the candidate u is always an ancestor-or-self of the original
      // match d, so d's id is a valid in-subtree anchor for the search.
      const auto it = std::lower_bound(list.begin(), list.end(), d);
      size_t best = 0;
      if (it != list.end()) {
        best = std::max(best, CommonPrefixLen(u, table.dewey(*it)));
      }
      if (it != list.begin()) {
        best = std::max(best, CommonPrefixLen(u, table.dewey(*(it - 1))));
      }
      if (best < u.depth()) u = Prefix(u, best);
      if (u.empty()) break;  // already at the root; cannot get shallower
    }
    candidates.push_back(std::move(u));
  }

  // Keep only the deepest candidates: sort in pre-order; an ancestor is
  // always immediately dominated by its first descendant in the order.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<xml::DeweyId> minimal;
  for (const auto& c : candidates) {
    while (!minimal.empty() && minimal.back().IsAncestorOrSelf(c)) {
      minimal.pop_back();
    }
    minimal.push_back(c);
  }
  for (const auto& m : minimal) {
    const xml::NodeId id = table.FindByDewey(m);
    // Every minimal candidate is a truncated Dewey label of a real node,
    // so the lookup should always resolve; if a corrupted table breaks
    // that, drop the candidate rather than abort the process.
    if (id == xml::kInvalidNodeId) continue;
    if (table.node(id)->is_element()) result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace xsact::search
