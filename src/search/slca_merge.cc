// Merge-path SLCA/ELCA kernels over block-compressed postings.
//
// Both kernels touch postings instead of the node table: cost scales
// with the (shortest / total) posting list length rather than corpus
// size, which is what makes selective queries cheap on large corpora.
// Per-list state (one decoded block, a monotone search hint, stream
// positions) lives in the caller's MergeScratch so steady-state queries
// allocate nothing.

#include <algorithm>
#include <cstdint>

#include "search/slca.h"

namespace xsact::search {

namespace {

constexpr uint32_t kNoBlock = UINT32_MAX;

/// Random access into a source through a one-block cache. Sequential or
/// galloping access patterns decode each block at most once.
xml::NodeId At(const PostingSource& src, xml::NodeId* slot, uint32_t* cached,
               size_t i) {
  if (src.is_plain()) return src.plain()[i];
  const size_t b = i / kPostingsBlockSize;
  if (*cached != b) {
    src.compressed().DecodeBlock(b, slot);
    *cached = static_cast<uint32_t>(b);
  }
  return slot[i % kPostingsBlockSize];
}

struct BoundsResult {
  bool has_pred = false;
  bool has_succ = false;
  xml::NodeId pred = 0;  // greatest posting <  anchor
  xml::NodeId succ = 0;  // least posting    >= anchor
};

/// Neighbors of anchor `d` in a plain sorted list. `*hint` carries the
/// previous result forward; anchors arrive in nondecreasing order, so a
/// short gallop from the hint replaces a full binary search.
BoundsResult PlainBounds(const PostingList& list, size_t* hint,
                         xml::NodeId d) {
  const size_t n = list.size();
  size_t lo = *hint;
  if (lo < n && list[lo] < d) {
    size_t step = 1;
    while (lo + step < n && list[lo + step] < d) {
      lo += step;
      step <<= 1;
    }
    const xml::NodeId* begin = list.begin();
    lo = static_cast<size_t>(
        std::lower_bound(begin + lo + 1, begin + std::min(lo + step, n), d) -
        begin);
  }
  *hint = lo;
  BoundsResult r;
  if (lo > 0) {
    r.has_pred = true;
    r.pred = list[lo - 1];
  }
  if (lo < n) {
    r.has_succ = true;
    r.succ = list[lo];
  }
  return r;
}

/// Neighbors of anchor `d` in a compressed list: gallop over the skip
/// entries (first ids only) to the owning block, decode that one block,
/// and search inside it. A successor sitting at a block boundary is read
/// straight off the next skip entry — no second decode.
BoundsResult CompressedBounds(const CompressedPostings& cp, xml::NodeId* slot,
                              uint32_t* cached, size_t* hint, xml::NodeId d) {
  BoundsResult r;
  if (d <= cp.front()) {
    r.has_succ = true;
    r.succ = cp.front();
    return r;
  }
  // Last block whose first id is < d; the hint block satisfies that for
  // every earlier (smaller) anchor, so gallop forward from it.
  size_t b = *hint;
  size_t step = 1;
  while (b + step < cp.num_blocks() && cp.BlockFirstId(b + step) < d) {
    b += step;
    step <<= 1;
  }
  size_t hi = std::min(b + step, cp.num_blocks());
  while (b + 1 < hi) {
    const size_t mid = (b + hi) / 2;
    if (cp.BlockFirstId(mid) < d) {
      b = mid;
    } else {
      hi = mid;
    }
  }
  *hint = b;
  if (*cached != b) {
    cp.DecodeBlock(b, slot);
    *cached = static_cast<uint32_t>(b);
  }
  const size_t blen = cp.BlockLength(b);
  const size_t j =
      static_cast<size_t>(std::lower_bound(slot, slot + blen, d) - slot);
  // j >= 1 always: the block's first id is < d.
  r.has_pred = true;
  r.pred = slot[j - 1];
  if (j < blen) {
    r.has_succ = true;
    r.succ = slot[j];
  } else if (b + 1 < cp.num_blocks()) {
    r.has_succ = true;
    r.succ = cp.BlockFirstId(b + 1);
  }
  return r;
}

BoundsResult Bounds(const PostingSource& src, xml::NodeId* slot,
                    uint32_t* cached, size_t* hint, xml::NodeId d) {
  if (src.is_plain()) return PlainBounds(src.plain(), hint, d);
  return CompressedBounds(src.compressed(), slot, cached, hint, d);
}

/// LCA by id: pre-order ids make "b inside subtree(a)" a range check
/// (a <= b < subtree_end(a)), so the LCA is found by climbing the
/// shallower id until the deeper one falls inside its extent.
xml::NodeId LcaId(const xml::NodeTable& table, xml::NodeId a, xml::NodeId b) {
  xml::NodeId lo = std::min(a, b);
  const xml::NodeId hi = std::max(a, b);
  while (table.subtree_end(lo) <= hi) lo = table.parent(lo);
  return lo;
}

bool AnyListEmpty(const MergeLists& lists) {
  if (lists.empty()) return true;
  for (const auto& l : lists) {
    if (l.empty()) return true;
  }
  return false;
}

}  // namespace

std::vector<xml::NodeId> ComputeSlcaMerge(const xml::NodeTable& table,
                                          const MergeLists& lists,
                                          MergeScratch* scratch,
                                          const Cancellation& cancel) {
  std::vector<xml::NodeId> result;
  if (AnyListEmpty(lists)) return result;
  const bool expirable = cancel.can_expire();
  const size_t k = lists.size();
  scratch->Clear();
  scratch->blocks.resize(k * kPostingsBlockSize);
  scratch->cached_block.assign(k, kNoBlock);
  scratch->hint.assign(k, 0);
  auto slot = [&](size_t i) {
    return scratch->blocks.data() + i * kPostingsBlockSize;
  };

  size_t smallest = 0;
  for (size_t i = 1; i < k; ++i) {
    if (lists[i].size() < lists[smallest].size()) smallest = i;
  }

  // Eager indexed lookup: each match d of the smallest list contributes
  // the deepest node that is an LCA of d with a witness from every other
  // list — exactly the id-space analogue of truncating d's Dewey label
  // to its longest common prefix with each list's nearest neighbor.
  std::vector<xml::NodeId>& candidates = scratch->candidates;
  const size_t anchor_count = lists[smallest].size();
  for (size_t a = 0; a < anchor_count; ++a) {
    if (expirable && (a & 63u) == 0 && cancel.Expired()) break;
    const xml::NodeId d = At(lists[smallest], slot(smallest),
                             &scratch->cached_block[smallest], a);
    xml::NodeId u = d;
    for (size_t i = 0; i < k; ++i) {
      if (i == smallest) continue;
      const BoundsResult b =
          Bounds(lists[i], slot(i), &scratch->cached_block[i],
                 &scratch->hint[i], d);
      // The deeper of the two LCAs is the id-order maximum: both are
      // ancestors-or-self of u, hence comparable along one root path.
      xml::NodeId best = xml::kInvalidNodeId;
      if (b.has_succ) best = std::max(best, LcaId(table, u, b.succ));
      if (b.has_pred) best = std::max(best, LcaId(table, u, b.pred));
      u = best;  // non-empty list: at least one neighbor exists
    }
    candidates.push_back(u);
  }

  // Keep only the deepest candidates: ascending pre-order ids put every
  // ancestor immediately before its first retained descendant.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (const xml::NodeId c : candidates) {
    while (!result.empty() && c < table.subtree_end(result.back())) {
      result.pop_back();
    }
    result.push_back(c);
  }
  result.erase(std::remove_if(result.begin(), result.end(),
                              [&](xml::NodeId id) {
                                return !table.node(id)->is_element();
                              }),
               result.end());
  return result;
}

std::vector<xml::NodeId> ComputeElcaMerge(const xml::NodeTable& table,
                                          const MergeLists& lists,
                                          MergeScratch* scratch,
                                          const Cancellation& cancel) {
  std::vector<xml::NodeId> result;
  if (AnyListEmpty(lists)) return result;
  const bool expirable = cancel.can_expire();
  const size_t k = lists.size();
  scratch->Clear();
  scratch->blocks.resize(k * kPostingsBlockSize);
  scratch->cached_block.assign(k, kNoBlock);
  scratch->pos.assign(k, 0);
  scratch->heads.resize(k);
  auto slot = [&](size_t i) {
    return scratch->blocks.data() + i * kPostingsBlockSize;
  };

  // Min-heap of list indices keyed by each list's current head posting:
  // popping yields (id, keyword) events in nondecreasing pre-order.
  std::vector<size_t>& heap = scratch->heap;
  std::vector<xml::NodeId>& heads = scratch->heads;
  auto sift_down = [&](size_t at) {
    while (true) {
      const size_t l = 2 * at + 1, r = 2 * at + 2;
      size_t best = at;
      if (l < heap.size() && heads[heap[l]] < heads[heap[best]]) best = l;
      if (r < heap.size() && heads[heap[r]] < heads[heap[best]]) best = r;
      if (best == at) return;
      std::swap(heap[at], heap[best]);
      at = best;
    }
  };
  for (size_t i = 0; i < k; ++i) {
    heads[i] = At(lists[i], slot(i), &scratch->cached_block[i], 0);
    heap.push_back(i);
  }
  for (size_t i = k; i-- > 0;) sift_down(i);

  // Stack of open ancestors — always a contiguous root-to-node path —
  // with per-keyword counters: cnt = matches in the subtree so far,
  // under = matches already shielded by full descendants. Identical to
  // the scan kernel's fold, restricted to nodes that have matches below.
  std::vector<xml::NodeId>& stack_id = scratch->stack_id;
  std::vector<xml::NodeId>& stack_end = scratch->stack_end;
  std::vector<int32_t>& counters = scratch->counters;
  auto cnt = [&](size_t depth, size_t q) -> int32_t& {
    return counters[depth * 2 * k + q];
  };
  auto under = [&](size_t depth, size_t q) -> int32_t& {
    return counters[depth * 2 * k + k + q];
  };
  auto finalize_top = [&]() {
    const size_t top = stack_id.size() - 1;
    bool full = true, elca = true;
    for (size_t q = 0; q < k; ++q) {
      if (cnt(top, q) == 0) full = false;
      if (cnt(top, q) - under(top, q) <= 0) elca = false;
    }
    const xml::NodeId id = stack_id.back();
    if (elca && table.node(id)->is_element()) result.push_back(id);
    if (top > 0) {
      // The entry below is the direct parent (contiguous path): a full
      // child shields ALL its matches, a non-full one only what its own
      // full descendants shield — exactly the scan kernel's rule.
      for (size_t q = 0; q < k; ++q) {
        under(top - 1, q) += full ? cnt(top, q) : under(top, q);
        cnt(top - 1, q) += cnt(top, q);
      }
    }
    stack_id.pop_back();
    stack_end.pop_back();
  };

  std::vector<xml::NodeId>& climb = scratch->candidates;
  uint32_t pops = 0;
  while (!heap.empty()) {
    // On expiry, break to the stack drain below so every open ancestor is
    // finalized against the events seen so far — a well-formed (if
    // partial) answer the caller will discard via cancel.Check().
    if (expirable && (++pops & 63u) == 0 && cancel.Expired()) break;
    const size_t q = heap[0];
    const xml::NodeId id = heads[q];
    ++scratch->pos[q];
    if (scratch->pos[q] < lists[q].size()) {
      heads[q] = At(lists[q], slot(q), &scratch->cached_block[q],
                    scratch->pos[q]);
      sift_down(0);
    } else {
      heap[0] = heap.back();
      heap.pop_back();
      if (!heap.empty()) sift_down(0);
    }

    while (!stack_id.empty() && stack_end.back() <= id) finalize_top();
    // Open every not-yet-open ancestor of the event node. After the
    // closes above, the stack top (if any) is a strict ancestor of id.
    const xml::NodeId stop =
        stack_id.empty() ? xml::kInvalidNodeId : stack_id.back();
    climb.clear();
    for (xml::NodeId x = id; x != stop; x = table.parent(x)) {
      climb.push_back(x);
    }
    for (size_t c = climb.size(); c-- > 0;) {
      stack_id.push_back(climb[c]);
      stack_end.push_back(table.subtree_end(climb[c]));
      const size_t depth = stack_id.size() - 1;
      if (counters.size() < (depth + 1) * 2 * k) {
        counters.resize((depth + 1) * 2 * k);
      }
      std::fill_n(counters.begin() +
                      static_cast<ptrdiff_t>(depth * 2 * k),
                  2 * k, 0);
    }
    ++cnt(stack_id.size() - 1, q);
  }
  while (!stack_id.empty()) finalize_top();
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace xsact::search
