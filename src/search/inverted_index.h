// Inverted index over XML text content.
//
// Every text node's tokens are posted against the ELEMENT that contains
// the text (attribute values against their owning element). Postings are
// dense pre-order NodeIds (document order), so posting lists double as
// Dewey-ordered match lists for the SLCA algorithms.
//
// Terms are interned to dense ids and all posting lists live in one
// contiguous array (CSR layout: offsets_[t]..offsets_[t+1]). Lookups are
// heterogeneous string_view probes — a query term never materializes a
// std::string, and a hit returns a view into the shared array.

#ifndef XSACT_SEARCH_INVERTED_INDEX_H_
#define XSACT_SEARCH_INVERTED_INDEX_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "search/posting_list.h"
#include "xml/document.h"
#include "xml/path.h"

namespace xsact::search {

/// Keyword -> sorted element-id posting lists for one document.
class InvertedIndex {
 public:
  /// Builds the index in a single sweep of the node table. `table` must
  /// outlive any query evaluated against this index.
  static InvertedIndex Build(const xml::NodeTable& table);

  /// Posting list for a (case-folded) term; empty list when absent.
  /// Allocation-free.
  PostingList Postings(std::string_view term) const {
    const int32_t id = terms_.Find(term);
    if (id < 0) return PostingList();
    const size_t begin = offsets_[static_cast<size_t>(id)];
    const size_t end = offsets_[static_cast<size_t>(id) + 1];
    return PostingList(postings_.data() + begin, end - begin);
  }

  /// Number of distinct terms.
  size_t TermCount() const { return terms_.size(); }

  /// Total number of postings across all terms.
  size_t PostingCount() const { return postings_.size(); }

  /// True iff the term occurs anywhere in the document.
  bool Contains(std::string_view term) const { return terms_.Find(term) >= 0; }

 private:
  StringInterner terms_;           // term -> dense term id
  std::vector<size_t> offsets_;    // term id -> [offsets_[t], offsets_[t+1])
  std::vector<xml::NodeId> postings_;  // contiguous, sorted + unique per term
};

}  // namespace xsact::search

#endif  // XSACT_SEARCH_INVERTED_INDEX_H_
