// Inverted index over XML text content.
//
// Every text node's tokens are posted against the ELEMENT that contains
// the text. Postings are dense pre-order NodeIds (document order), so
// posting lists double as Dewey-ordered match lists for the SLCA
// algorithms.

#ifndef XSACT_SEARCH_INVERTED_INDEX_H_
#define XSACT_SEARCH_INVERTED_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/document.h"
#include "xml/path.h"

namespace xsact::search {

/// Keyword -> sorted element-id posting lists for one document.
class InvertedIndex {
 public:
  /// Builds the index. `table` must describe `doc` and must outlive any
  /// query evaluated against this index.
  static InvertedIndex Build(const xml::Document& doc,
                             const xml::NodeTable& table);

  /// Posting list for a (case-folded) term; empty list when absent.
  const std::vector<xml::NodeId>& Postings(std::string_view term) const;

  /// Number of distinct terms.
  size_t TermCount() const { return postings_.size(); }

  /// Total number of postings across all terms.
  size_t PostingCount() const { return total_postings_; }

  /// True iff the term occurs anywhere in the document.
  bool Contains(std::string_view term) const {
    return postings_.count(std::string(term)) > 0;
  }

 private:
  std::unordered_map<std::string, std::vector<xml::NodeId>> postings_;
  std::vector<xml::NodeId> empty_;
  size_t total_postings_ = 0;
};

}  // namespace xsact::search

#endif  // XSACT_SEARCH_INVERTED_INDEX_H_
