// Inverted index over XML text content.
//
// Every text node's tokens are posted against the ELEMENT that contains
// the text (attribute values against their owning element). Postings are
// dense pre-order NodeIds (document order), so posting lists double as
// Dewey-ordered match lists for the SLCA algorithms.
//
// Terms are interned to dense ids. Posting lists are stored
// block-compressed (see postings_codec.h): one shared payload byte
// array, one shared skip-entry array, and three CSR offset arrays
// mapping a term id to its byte / skip / posting ranges. Lookups are
// heterogeneous string_view probes — a query term never materializes a
// std::string, and a hit returns a CompressedPostings handle into the
// shared arrays. Callers that need a flat id array decode into
// caller-owned scratch (Decode); the merge kernels and the ranker read
// the compressed form directly.

#ifndef XSACT_SEARCH_INVERTED_INDEX_H_
#define XSACT_SEARCH_INVERTED_INDEX_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "search/posting_list.h"
#include "search/postings_codec.h"
#include "xml/document.h"
#include "xml/path.h"

namespace xsact::search {

/// Keyword -> block-compressed element-id posting lists for one document.
class InvertedIndex {
 public:
  /// Builds the index in a single sweep of the node table. `table` must
  /// outlive any query evaluated against this index.
  static InvertedIndex Build(const xml::NodeTable& table);

  /// Compressed posting list for a (case-folded) term; empty handle when
  /// absent. Allocation-free.
  CompressedPostings Postings(std::string_view term) const {
    const int32_t id = terms_.Find(term);
    if (id < 0) return CompressedPostings();
    return PostingsById(static_cast<size_t>(id));
  }

  /// Decodes a term's postings into `*scratch` (capacity reused) and
  /// returns a view of it; empty view when the term is absent.
  PostingList Decode(std::string_view term,
                     std::vector<xml::NodeId>* scratch) const {
    return Postings(term).DecodeAll(scratch);
  }

  /// Document frequency: number of distinct elements containing `term`
  /// (0 when absent). Reads only the CSR offsets, never the payload.
  size_t Df(std::string_view term) const {
    const int32_t id = terms_.Find(term);
    if (id < 0) return 0;
    const size_t t = static_cast<size_t>(id);
    return count_offsets_[t + 1] - count_offsets_[t];
  }

  /// Number of distinct terms.
  size_t TermCount() const { return terms_.size(); }

  /// Total number of postings across all terms.
  size_t PostingCount() const {
    return count_offsets_.empty() ? 0 : count_offsets_.back();
  }

  /// True iff the term occurs anywhere in the document.
  bool Contains(std::string_view term) const { return terms_.Find(term) >= 0; }

  /// Bytes held by the compressed posting storage: payload + skip
  /// entries + the three CSR offset arrays (term strings excluded —
  /// both layouts pay the same interner cost).
  size_t CompressedSizeBytes() const {
    return bytes_.size() * sizeof(uint8_t) +
           skips_.size() * sizeof(PostingsSkip) +
           (byte_offsets_.size() + skip_offsets_.size() +
            count_offsets_.size()) *
               sizeof(uint32_t);
  }

  /// Bytes the same postings would occupy in the uncompressed CSR layout
  /// this index replaced (one NodeId per posting plus a size_t offset
  /// per term) — the denominator of the compression-ratio gate.
  size_t RawCsrSizeBytes() const {
    return PostingCount() * sizeof(xml::NodeId) +
           (TermCount() + 1) * sizeof(size_t);
  }

  /// Error captured while building (a malformed per-term id sequence or
  /// an injected build fault). An index with a non-OK build status must
  /// not be served; Validate() reports it.
  const Status& build_status() const { return build_status_; }

  /// Full structural validation: CSR offset consistency plus a checked
  /// decode of every term's posting list (checksums, bounds, strictly
  /// increasing ids < `node_count`). Intended to run once per snapshot
  /// build/reload, not per query.
  Status Validate(size_t node_count) const;

 private:
  /// Handle for the term with dense id `t` (must be < TermCount()).
  CompressedPostings PostingsById(size_t t) const {
    return CompressedPostings(bytes_.data() + byte_offsets_[t],
                              skips_.data() + skip_offsets_[t],
                              skip_offsets_[t + 1] - skip_offsets_[t],
                              count_offsets_[t + 1] - count_offsets_[t],
                              byte_offsets_[t + 1] - byte_offsets_[t]);
  }

  StringInterner terms_;                  // term -> dense term id
  Status build_status_;                   // first error hit while building
  std::vector<uint8_t> bytes_;            // all block payloads
  std::vector<PostingsSkip> skips_;       // all skip entries
  std::vector<uint32_t> byte_offsets_;    // term id -> payload byte range
  std::vector<uint32_t> skip_offsets_;    // term id -> skip entry range
  std::vector<uint32_t> count_offsets_;   // term id -> posting count prefix
};

}  // namespace xsact::search

#endif  // XSACT_SEARCH_INVERTED_INDEX_H_
