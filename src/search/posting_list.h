// PostingList: a non-owning view of one term's sorted element-id posting
// range inside the inverted index's contiguous posting array.
//
// The SLCA algorithms and the ranker only ever read posting lists, so the
// query path passes these views around instead of copying id vectors —
// the per-query pipeline stays allocation-free up to result materialization.

#ifndef XSACT_SEARCH_POSTING_LIST_H_
#define XSACT_SEARCH_POSTING_LIST_H_

#include <cstddef>

#include "xml/path.h"

namespace xsact::search {

/// Read-only view of a sorted, duplicate-free run of element NodeIds.
/// Valid as long as the owning InvertedIndex (or backing vector) lives.
class PostingList {
 public:
  using value_type = xml::NodeId;
  using const_iterator = const xml::NodeId*;

  constexpr PostingList() = default;
  constexpr PostingList(const xml::NodeId* data, size_t size)
      : data_(data), size_(size) {}

  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  xml::NodeId operator[](size_t i) const { return data_[i]; }
  xml::NodeId front() const { return data_[0]; }
  xml::NodeId back() const { return data_[size_ - 1]; }

 private:
  const xml::NodeId* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace xsact::search

#endif  // XSACT_SEARCH_POSTING_LIST_H_
