#include "search/postings_codec.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/macros.h"

namespace xsact::search {

namespace {

// Block payload layout (m ids in the block, m1 = m - 1 gaps; the first
// id lives in the skip entry):
//   m1 == 0           -> zero bytes.
//   otherwise the payload starts with a 4-byte little-endian FNV-1a-32
//   checksum of everything that follows, then:
//   header 0x00       -> varbyte mode: m1 varints.
//   header 0x80 | w   -> packed mode at bit width w (0..32): one byte of
//                        exception count E, ceil(m1*w/8) bytes of
//                        little-endian bit-packed low bits, then E
//                        exceptions {position byte, varbyte high bits}.
constexpr uint8_t kPackedFlag = 0x80;

// Exception positions and the patch-count byte index gaps within one
// block, so both must fit in a byte. Guaranteed by the block size; this
// is why the encoder needs no runtime overflow check on the count.
static_assert(kPostingsBlockSize <= 256,
              "exception positions/counts are stored as single bytes");

size_t VarbyteLen(uint32_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

size_t BitWidth(uint32_t v) {
  size_t w = 0;
  while (v >> w) ++w;
  return w;
}

void PutChecksumLe(uint32_t sum, uint8_t* out) {
  out[0] = static_cast<uint8_t>(sum);
  out[1] = static_cast<uint8_t>(sum >> 8);
  out[2] = static_cast<uint8_t>(sum >> 16);
  out[3] = static_cast<uint8_t>(sum >> 24);
}

uint32_t GetChecksumLe(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

Status Corrupt(size_t block, const char* what) {
  return Status::DataCorruption("postings block " + std::to_string(block) +
                                ": " + what);
}

}  // namespace

uint32_t PostingsBlockChecksum(const uint8_t* data, size_t len) {
  uint32_t h = 0x811c9dc5u;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

void AppendVarbyte(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

const uint8_t* DecodeVarbyte(const uint8_t* p, uint32_t* v) {
  uint32_t out = 0;
  int shift = 0;
  while (*p & 0x80) {
    out |= static_cast<uint32_t>(*p++ & 0x7F) << shift;
    shift += 7;
  }
  *v = out | (static_cast<uint32_t>(*p++) << shift);
  return p;
}

const uint8_t* DecodeVarbyteBounded(const uint8_t* p, const uint8_t* end,
                                    uint32_t* v) {
  uint32_t out = 0;
  int shift = 0;
  // A uint32 varint is at most 5 bytes; the 5th may only carry 4 bits.
  while (true) {
    if (p == end || shift > 28) return nullptr;
    const uint8_t byte = *p++;
    const uint32_t low = byte & 0x7Fu;
    if (shift == 28 && (low >> 4) != 0) return nullptr;
    out |= low << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = out;
  return p;
}

Status EncodePostings(const xml::NodeId* ids, size_t count,
                      std::vector<uint8_t>* bytes,
                      std::vector<PostingsSkip>* skips) {
  if (count == 0) return Status();
  if (ids[0] < 0) {
    return Status::InvalidArgument("posting ids must be non-negative");
  }
  for (size_t i = 1; i < count; ++i) {
    if (ids[i] <= ids[i - 1]) {
      return Status::InvalidArgument(
          "posting ids must be strictly increasing (position " +
          std::to_string(i) + ")");
    }
  }
  const size_t base = bytes->size();
  uint32_t gaps[kPostingsBlockSize];
  for (size_t b0 = 0; b0 < count; b0 += kPostingsBlockSize) {
    const size_t m = std::min(count - b0, kPostingsBlockSize);
    skips->push_back(PostingsSkip{
        ids[b0], static_cast<uint32_t>(bytes->size() - base)});
    const size_t m1 = m - 1;
    if (m1 == 0) continue;
    // Reserve the checksum slot; patched after the payload is emitted.
    const size_t sum_pos = bytes->size();
    bytes->insert(bytes->end(), kPostingsChecksumBytes, 0);
    size_t max_w = 0;
    size_t varbyte_cost = 1;
    for (size_t i = 0; i < m1; ++i) {
      gaps[i] = ids[b0 + i + 1] - ids[b0 + i] - 1;
      max_w = std::max(max_w, BitWidth(gaps[i]));
      varbyte_cost += VarbyteLen(gaps[i]);
    }
    // Packed cost at each candidate width: header + exception count +
    // packed low bits + patch list. Blocks are <= 128 gaps, so the
    // exhaustive width search is cheap and only runs at build time.
    size_t best_w = max_w;
    size_t best_cost = SIZE_MAX;
    for (size_t w = 0; w <= max_w; ++w) {
      size_t cost = 2 + (m1 * w + 7) / 8;
      for (size_t i = 0; i < m1 && cost < best_cost; ++i) {
        if (w < 32 && (gaps[i] >> w) != 0) cost += 1 + VarbyteLen(gaps[i] >> w);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_w = w;
      }
    }
    if (varbyte_cost <= best_cost) {
      bytes->push_back(0x00);
      for (size_t i = 0; i < m1; ++i) AppendVarbyte(gaps[i], bytes);
    } else {
      const size_t w = best_w;
      bytes->push_back(kPackedFlag | static_cast<uint8_t>(w));
      const size_t count_pos = bytes->size();
      bytes->push_back(0);  // exception count, patched below
      uint64_t acc = 0;
      int nbits = 0;
      const uint32_t mask = w >= 32 ? ~0u : ((1u << w) - 1);
      for (size_t i = 0; i < m1; ++i) {
        acc |= static_cast<uint64_t>(gaps[i] & mask) << nbits;
        nbits += static_cast<int>(w);
        while (nbits >= 8) {
          bytes->push_back(static_cast<uint8_t>(acc));
          acc >>= 8;
          nbits -= 8;
        }
      }
      if (nbits > 0) bytes->push_back(static_cast<uint8_t>(acc));
      size_t exceptions = 0;
      for (size_t i = 0; i < m1; ++i) {
        const uint32_t high = w >= 32 ? 0 : (gaps[i] >> w);
        if (high == 0) continue;
        bytes->push_back(static_cast<uint8_t>(i));
        AppendVarbyte(high, bytes);
        ++exceptions;
      }
      (*bytes)[count_pos] = static_cast<uint8_t>(exceptions);
    }
    const size_t payload = sum_pos + kPostingsChecksumBytes;
    PutChecksumLe(
        PostingsBlockChecksum(bytes->data() + payload, bytes->size() - payload),
        bytes->data() + sum_pos);
  }
  return Status();
}

size_t CompressedPostings::DecodeBlock(size_t b, xml::NodeId* out) const {
  const size_t m = BlockLength(b);
  out[0] = skips_[b].first_id;
  const size_t m1 = m - 1;
  if (m1 == 0) return m;
  const uint8_t* p = bytes_ + skips_[b].byte_offset + kPostingsChecksumBytes;
  const uint8_t header = *p++;
  if ((header & kPackedFlag) == 0) {
    xml::NodeId prev = out[0];
    for (size_t i = 0; i < m1; ++i) {
      uint32_t gap;
      p = DecodeVarbyte(p, &gap);
      prev += gap + 1;
      out[i + 1] = prev;
    }
    return m;
  }
  const size_t w = header & 0x3F;
  const size_t exceptions = *p++;
  // Unpack low bits into the gap slots (out[1..m]), then patch the
  // exceptions and prefix-sum in one final pass.
  uint64_t acc = 0;
  int nbits = 0;
  const uint32_t mask = w >= 32 ? ~0u : ((1u << w) - 1);
  for (size_t i = 0; i < m1; ++i) {
    while (nbits < static_cast<int>(w)) {
      acc |= static_cast<uint64_t>(*p++) << nbits;
      nbits += 8;
    }
    out[i + 1] = static_cast<xml::NodeId>(acc & mask);
    acc >>= w;
    nbits -= static_cast<int>(w);
  }
  for (size_t e = 0; e < exceptions; ++e) {
    const size_t pos = *p++;
    uint32_t high;
    p = DecodeVarbyte(p, &high);
    out[pos + 1] = static_cast<xml::NodeId>(
        static_cast<uint32_t>(out[pos + 1]) | (high << w));
  }
  xml::NodeId prev = out[0];
  for (size_t i = 0; i < m1; ++i) {
    prev += out[i + 1] + 1;
    out[i + 1] = prev;
  }
  return m;
}

Status CompressedPostings::DecodeBlockChecked(size_t b, xml::NodeId* out,
                                              size_t* len) const {
  if (b >= num_blocks_) {
    return Status::OutOfRange("postings block index " + std::to_string(b) +
                              " out of range (" + std::to_string(num_blocks_) +
                              " blocks)");
  }
  const size_t m = BlockLength(b);
  if (m == 0 || m > kPostingsBlockSize) {
    return Corrupt(b, "invalid block length");
  }
  const size_t begin = skips_[b].byte_offset;
  const size_t finish =
      b + 1 < num_blocks_ ? skips_[b + 1].byte_offset : byte_size_;
  if (begin > finish || finish > byte_size_) {
    return Corrupt(b, "skip offsets out of bounds");
  }
  if (skips_[b].first_id < 0) {
    return Corrupt(b, "negative first id in skip entry");
  }
  out[0] = skips_[b].first_id;
  *len = m;
  const size_t m1 = m - 1;
  if (m1 == 0) {
    if (finish != begin) return Corrupt(b, "single-id block has payload");
    return Status();
  }
  if (finish - begin < kPostingsChecksumBytes + 1) {
    return Corrupt(b, "payload truncated before header");
  }
  const uint8_t* p = bytes_ + begin;
  const uint8_t* stop = bytes_ + finish;
  const uint32_t stored = GetChecksumLe(p);
  p += kPostingsChecksumBytes;
  if (PostingsBlockChecksum(p, static_cast<size_t>(stop - p)) != stored) {
    return Corrupt(b, "checksum mismatch");
  }
  const uint8_t header = *p++;
  // Gap values are accumulated in int64 so a hostile payload cannot
  // overflow past INT32_MAX undetected.
  int64_t prev = out[0];
  if ((header & kPackedFlag) == 0) {
    if (header != 0x00) return Corrupt(b, "unknown header byte");
    for (size_t i = 0; i < m1; ++i) {
      uint32_t gap;
      p = DecodeVarbyteBounded(p, stop, &gap);
      if (p == nullptr) return Corrupt(b, "varbyte gap overruns payload");
      prev += static_cast<int64_t>(gap) + 1;
      if (prev > INT32_MAX) return Corrupt(b, "posting id overflows int32");
      out[i + 1] = static_cast<xml::NodeId>(prev);
    }
    if (p != stop) return Corrupt(b, "trailing bytes after varbyte gaps");
    return Status();
  }
  const size_t w = header & 0x7F;
  if (w > 32) return Corrupt(b, "packed bit width exceeds 32");
  if (p == stop) return Corrupt(b, "payload truncated before exception count");
  const size_t exceptions = *p++;
  const size_t packed_bytes = (m1 * w + 7) / 8;
  if (static_cast<size_t>(stop - p) < packed_bytes) {
    return Corrupt(b, "packed bits overrun payload");
  }
  uint32_t gaps[kPostingsBlockSize];
  uint64_t acc = 0;
  int nbits = 0;
  const uint32_t mask = w >= 32 ? ~0u : ((1u << w) - 1);
  for (size_t i = 0; i < m1; ++i) {
    while (nbits < static_cast<int>(w)) {
      acc |= static_cast<uint64_t>(*p++) << nbits;
      nbits += 8;
    }
    gaps[i] = static_cast<uint32_t>(acc & mask);
    acc >>= w;
    nbits -= static_cast<int>(w);
  }
  for (size_t e = 0; e < exceptions; ++e) {
    if (p == stop) return Corrupt(b, "exception list truncated");
    const size_t pos = *p++;
    if (pos >= m1) return Corrupt(b, "exception position out of range");
    uint32_t high;
    p = DecodeVarbyteBounded(p, stop, &high);
    if (p == nullptr) return Corrupt(b, "exception varbyte overruns payload");
    if (w >= 32) return Corrupt(b, "exception at full bit width");
    if (high == 0 || high > (UINT32_MAX >> w)) {
      return Corrupt(b, "invalid exception high bits");
    }
    gaps[pos] |= high << w;
  }
  if (p != stop) return Corrupt(b, "trailing bytes after exception list");
  for (size_t i = 0; i < m1; ++i) {
    prev += static_cast<int64_t>(gaps[i]) + 1;
    if (prev > INT32_MAX) return Corrupt(b, "posting id overflows int32");
    out[i + 1] = static_cast<xml::NodeId>(prev);
  }
  return Status();
}

void CompressedPostings::DecodeInto(xml::NodeId* out) const {
  for (size_t b = 0; b < num_blocks_; ++b) {
    DecodeBlock(b, out + b * kPostingsBlockSize);
  }
}

PostingList CompressedPostings::DecodeAll(std::vector<xml::NodeId>* out) const {
  out->resize(count_);
  DecodeInto(out->data());
  return PostingList(out->data(), out->size());
}

size_t CompressedPostings::Rank(xml::NodeId limit) const {
  if (count_ == 0) return 0;
  // First block whose first id is >= limit; everything before the
  // previous block is fully below the limit.
  size_t lo = 0, hi = num_blocks_;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (skips_[mid].first_id < limit) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return 0;
  const size_t b = lo - 1;
  xml::NodeId block[kPostingsBlockSize];
  const size_t m = DecodeBlock(b, block);
  const size_t j = static_cast<size_t>(
      std::lower_bound(block, block + m, limit) - block);
  return b * kPostingsBlockSize + j;
}

Status CompressedPostings::Validate(size_t node_count) const {
  if (count_ == 0) {
    if (num_blocks_ != 0 || byte_size_ != 0) {
      return Status::DataCorruption(
          "empty posting list has blocks or payload bytes");
    }
    return Status();
  }
  const size_t want_blocks =
      (count_ + kPostingsBlockSize - 1) / kPostingsBlockSize;
  if (num_blocks_ != want_blocks) {
    return Status::DataCorruption(
        "block count mismatch: have " + std::to_string(num_blocks_) +
        ", want " + std::to_string(want_blocks) + " for " +
        std::to_string(count_) + " postings");
  }
  if (skips_[0].byte_offset != 0) {
    return Status::DataCorruption("first skip entry has nonzero byte offset");
  }
  for (size_t b = 0; b < num_blocks_; ++b) {
    const size_t finish =
        b + 1 < num_blocks_ ? skips_[b + 1].byte_offset : byte_size_;
    if (skips_[b].byte_offset > finish || finish > byte_size_) {
      return Corrupt(b, "skip offsets not nondecreasing within payload");
    }
  }
  xml::NodeId block[kPostingsBlockSize];
  int64_t prev = -1;
  for (size_t b = 0; b < num_blocks_; ++b) {
    size_t m = 0;
    XSACT_RETURN_IF_ERROR(DecodeBlockChecked(b, block, &m));
    for (size_t i = 0; i < m; ++i) {
      if (block[i] <= prev) {
        return Corrupt(b, "posting ids not strictly increasing");
      }
      prev = block[i];
    }
  }
  if (prev >= static_cast<int64_t>(node_count)) {
    return Status::DataCorruption(
        "posting id " + std::to_string(prev) + " out of range for " +
        std::to_string(node_count) + " nodes");
  }
  return Status();
}

}  // namespace xsact::search
