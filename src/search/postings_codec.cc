#include "search/postings_codec.h"

#include <algorithm>

#include "common/macros.h"

namespace xsact::search {

namespace {

// Block payload layout (m ids in the block, m1 = m - 1 gaps; the first
// id lives in the skip entry):
//   m1 == 0           -> zero bytes.
//   header 0x00       -> varbyte mode: m1 varints.
//   header 0x80 | w   -> packed mode at bit width w (0..32): one byte of
//                        exception count E, ceil(m1*w/8) bytes of
//                        little-endian bit-packed low bits, then E
//                        exceptions {position byte, varbyte high bits}.
constexpr uint8_t kPackedFlag = 0x80;

size_t VarbyteLen(uint32_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

size_t BitWidth(uint32_t v) {
  size_t w = 0;
  while (v >> w) ++w;
  return w;
}

}  // namespace

void AppendVarbyte(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

const uint8_t* DecodeVarbyte(const uint8_t* p, uint32_t* v) {
  uint32_t out = 0;
  int shift = 0;
  while (*p & 0x80) {
    out |= static_cast<uint32_t>(*p++ & 0x7F) << shift;
    shift += 7;
  }
  *v = out | (static_cast<uint32_t>(*p++) << shift);
  return p;
}

void EncodePostings(const xml::NodeId* ids, size_t count,
                    std::vector<uint8_t>* bytes,
                    std::vector<PostingsSkip>* skips) {
  const size_t base = bytes->size();
  uint32_t gaps[kPostingsBlockSize];
  for (size_t b0 = 0; b0 < count; b0 += kPostingsBlockSize) {
    const size_t m = std::min(count - b0, kPostingsBlockSize);
    skips->push_back(PostingsSkip{
        ids[b0], static_cast<uint32_t>(bytes->size() - base)});
    const size_t m1 = m - 1;
    if (m1 == 0) continue;
    size_t max_w = 0;
    size_t varbyte_cost = 1;
    for (size_t i = 0; i < m1; ++i) {
      gaps[i] = ids[b0 + i + 1] - ids[b0 + i] - 1;
      max_w = std::max(max_w, BitWidth(gaps[i]));
      varbyte_cost += VarbyteLen(gaps[i]);
    }
    // Packed cost at each candidate width: header + exception count +
    // packed low bits + patch list. Blocks are <= 128 gaps, so the
    // exhaustive width search is cheap and only runs at build time.
    size_t best_w = max_w;
    size_t best_cost = SIZE_MAX;
    for (size_t w = 0; w <= max_w; ++w) {
      size_t cost = 2 + (m1 * w + 7) / 8;
      for (size_t i = 0; i < m1 && cost < best_cost; ++i) {
        if (w < 32 && (gaps[i] >> w) != 0) cost += 1 + VarbyteLen(gaps[i] >> w);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_w = w;
      }
    }
    if (varbyte_cost <= best_cost) {
      bytes->push_back(0x00);
      for (size_t i = 0; i < m1; ++i) AppendVarbyte(gaps[i], bytes);
      continue;
    }
    const size_t w = best_w;
    bytes->push_back(kPackedFlag | static_cast<uint8_t>(w));
    const size_t count_pos = bytes->size();
    bytes->push_back(0);  // exception count, patched below
    uint64_t acc = 0;
    int nbits = 0;
    const uint32_t mask = w >= 32 ? ~0u : ((1u << w) - 1);
    for (size_t i = 0; i < m1; ++i) {
      acc |= static_cast<uint64_t>(gaps[i] & mask) << nbits;
      nbits += static_cast<int>(w);
      while (nbits >= 8) {
        bytes->push_back(static_cast<uint8_t>(acc));
        acc >>= 8;
        nbits -= 8;
      }
    }
    if (nbits > 0) bytes->push_back(static_cast<uint8_t>(acc));
    size_t exceptions = 0;
    for (size_t i = 0; i < m1; ++i) {
      const uint32_t high = w >= 32 ? 0 : (gaps[i] >> w);
      if (high == 0) continue;
      bytes->push_back(static_cast<uint8_t>(i));
      AppendVarbyte(high, bytes);
      ++exceptions;
    }
    XSACT_CHECK(exceptions <= 0xFF);
    (*bytes)[count_pos] = static_cast<uint8_t>(exceptions);
  }
}

size_t CompressedPostings::DecodeBlock(size_t b, xml::NodeId* out) const {
  const size_t m = BlockLength(b);
  out[0] = skips_[b].first_id;
  const size_t m1 = m - 1;
  if (m1 == 0) return m;
  const uint8_t* p = bytes_ + skips_[b].byte_offset;
  const uint8_t header = *p++;
  if ((header & kPackedFlag) == 0) {
    xml::NodeId prev = out[0];
    for (size_t i = 0; i < m1; ++i) {
      uint32_t gap;
      p = DecodeVarbyte(p, &gap);
      prev += gap + 1;
      out[i + 1] = prev;
    }
    return m;
  }
  const size_t w = header & 0x3F;
  const size_t exceptions = *p++;
  // Unpack low bits into the gap slots (out[1..m]), then patch the
  // exceptions and prefix-sum in one final pass.
  uint64_t acc = 0;
  int nbits = 0;
  const uint32_t mask = w >= 32 ? ~0u : ((1u << w) - 1);
  for (size_t i = 0; i < m1; ++i) {
    while (nbits < static_cast<int>(w)) {
      acc |= static_cast<uint64_t>(*p++) << nbits;
      nbits += 8;
    }
    out[i + 1] = static_cast<xml::NodeId>(acc & mask);
    acc >>= w;
    nbits -= static_cast<int>(w);
  }
  for (size_t e = 0; e < exceptions; ++e) {
    const size_t pos = *p++;
    uint32_t high;
    p = DecodeVarbyte(p, &high);
    out[pos + 1] = static_cast<xml::NodeId>(
        static_cast<uint32_t>(out[pos + 1]) | (high << w));
  }
  xml::NodeId prev = out[0];
  for (size_t i = 0; i < m1; ++i) {
    prev += out[i + 1] + 1;
    out[i + 1] = prev;
  }
  return m;
}

void CompressedPostings::DecodeInto(xml::NodeId* out) const {
  for (size_t b = 0; b < num_blocks_; ++b) {
    DecodeBlock(b, out + b * kPostingsBlockSize);
  }
}

PostingList CompressedPostings::DecodeAll(std::vector<xml::NodeId>* out) const {
  out->resize(count_);
  DecodeInto(out->data());
  return PostingList(out->data(), out->size());
}

size_t CompressedPostings::Rank(xml::NodeId limit) const {
  if (count_ == 0) return 0;
  // First block whose first id is >= limit; everything before the
  // previous block is fully below the limit.
  size_t lo = 0, hi = num_blocks_;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (skips_[mid].first_id < limit) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return 0;
  const size_t b = lo - 1;
  xml::NodeId block[kPostingsBlockSize];
  const size_t m = DecodeBlock(b, block);
  const size_t j = static_cast<size_t>(
      std::lower_bound(block, block + m, limit) - block);
  return b * kPostingsBlockSize + j;
}

}  // namespace xsact::search
