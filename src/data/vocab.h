// Vocabulary pools for the synthetic dataset generators.
//
// The paper's datasets were crawled from buzzillions.com (product
// reviews), REI.com (outdoor retailer) and the IMDB FTP dump (movies);
// none is redistributable, so the generators in this module synthesize
// documents with the same element shapes and statistical structure
// (see DESIGN.md "Substitutions"). The pools below provide realistic
// categorical values.

#ifndef XSACT_DATA_VOCAB_H_
#define XSACT_DATA_VOCAB_H_

#include <string>
#include <vector>

namespace xsact::data {

/// Review "pro" aspects for electronics (paper Figure 1 vocabulary).
const std::vector<std::string>& ProAspects();

/// Review "con" aspects.
const std::vector<std::string>& ConAspects();

/// "Best use" values for electronics.
const std::vector<std::string>& BestUses();

/// Reviewer category values ("casual user", ...).
const std::vector<std::string>& ReviewerCategories();

/// Electronics brand names.
const std::vector<std::string>& ElectronicsBrands();

/// Product kinds sold by the review site (GPS, phone, camera, ...).
const std::vector<std::string>& ProductKinds();

/// Outdoor brands (REI-like dataset).
const std::vector<std::string>& OutdoorBrands();

/// Outdoor product categories.
const std::vector<std::string>& OutdoorCategories();

/// Outdoor product subcategories per category index (parallel vector).
const std::vector<std::vector<std::string>>& OutdoorSubcategories();

/// Outdoor product materials.
const std::vector<std::string>& OutdoorMaterials();

/// Genders used by the outdoor catalog.
const std::vector<std::string>& Genders();

/// Movie franchise stems used to build titles and queries (QM1..QM8).
const std::vector<std::string>& MovieFranchises();

/// Movie genres.
const std::vector<std::string>& MovieGenres();

/// Director surname pool.
const std::vector<std::string>& DirectorNames();

/// Production country pool.
const std::vector<std::string>& Countries();

/// Review aspects for movies (acting, plot, ...).
const std::vector<std::string>& MovieAspects();

/// First names for reviewers.
const std::vector<std::string>& FirstNames();

}  // namespace xsact::data

#endif  // XSACT_DATA_VOCAB_H_
