// Product Reviews dataset generator (buzzillions.com shape, paper §3).
//
// Emits an XML catalog of GPS / phone / camera products, each with a
// price, an aggregated rating and a set of reviews; every review carries
// the reviewer, a star rating, a reviewer category, and multi-valued
// pros / cons / best-use opinions — the exact element shape of the
// paper's Figure 1. Aspect popularity is product-specific (Zipf base
// popularity plus per-product skew), which makes occurrence percentages
// differ across products and drives the DoD objective.

#ifndef XSACT_DATA_PRODUCT_REVIEWS_H_
#define XSACT_DATA_PRODUCT_REVIEWS_H_

#include <cstdint>

#include "xml/document.h"

namespace xsact::data {

/// Generation parameters; defaults give a demo-sized catalog.
struct ProductReviewsConfig {
  int num_products = 24;
  int min_reviews = 8;
  int max_reviews = 72;
  /// Zipf skew of global aspect popularity (0 = uniform).
  double aspect_skew = 0.8;
  uint64_t seed = 2010;
};

/// Generates the catalog document (root <products>).
xml::Document GenerateProductReviews(const ProductReviewsConfig& config = {});

}  // namespace xsact::data

#endif  // XSACT_DATA_PRODUCT_REVIEWS_H_
