#include "data/vocab.h"

namespace xsact::data {

const std::vector<std::string>& ProAspects() {
  static const std::vector<std::string> kPool = {
      "compact",          "easy to read",     "easy to setup",
      "acquires satellites quickly",          "large screen",
      "accurate",         "long battery life", "lightweight",
      "loud speaker",     "fast routing",     "good value",
      "durable",          "intuitive menus",  "bright display",
      "quick charging",   "reliable",
  };
  return kPool;
}

const std::vector<std::string>& ConAspects() {
  static const std::vector<std::string> kPool = {
      "short battery life", "bulky",           "slow startup",
      "expensive",          "poor mount",      "dim screen",
      "confusing menus",    "outdated maps",   "weak speaker",
      "fragile",            "laggy touchscreen",
  };
  return kPool;
}

const std::vector<std::string>& BestUses() {
  static const std::vector<std::string> kPool = {
      "auto",   "hiking", "cycling", "marine",
      "travel", "faster routes", "city driving", "off road",
  };
  return kPool;
}

const std::vector<std::string>& ReviewerCategories() {
  static const std::vector<std::string> kPool = {
      "casual user", "power user", "commuter", "professional", "first timer",
  };
  return kPool;
}

const std::vector<std::string>& ElectronicsBrands() {
  static const std::vector<std::string> kPool = {
      "TomTom", "Garmin", "Magellan", "Navigon", "Mio", "Lowrance",
  };
  return kPool;
}

const std::vector<std::string>& ProductKinds() {
  static const std::vector<std::string> kPool = {
      "GPS", "mobile phone", "digital camera",
  };
  return kPool;
}

const std::vector<std::string>& OutdoorBrands() {
  static const std::vector<std::string> kPool = {
      "Marmot",    "Columbia",  "Patagonia", "Arcteryx",
      "North Face", "Salomon",  "Mammut",    "Outdoor Research",
  };
  return kPool;
}

const std::vector<std::string>& OutdoorCategories() {
  static const std::vector<std::string> kPool = {
      "rain jackets", "insulated ski jackets", "fleece jackets",
      "down jackets", "softshell jackets",     "windbreakers",
  };
  return kPool;
}

const std::vector<std::vector<std::string>>& OutdoorSubcategories() {
  static const std::vector<std::vector<std::string>> kPool = {
      {"packable", "3-layer shell", "2.5-layer shell"},
      {"resort", "backcountry", "freeride"},
      {"midweight", "lightweight", "heavyweight"},
      {"850 fill", "700 fill", "hybrid"},
      {"stretch", "hooded", "technical"},
      {"running", "casual", "ultralight"},
  };
  return kPool;
}

const std::vector<std::string>& OutdoorMaterials() {
  static const std::vector<std::string> kPool = {
      "gore-tex", "nylon", "polyester", "down", "wool", "pertex",
  };
  return kPool;
}

const std::vector<std::string>& Genders() {
  static const std::vector<std::string> kPool = {"men", "women", "unisex"};
  return kPool;
}

const std::vector<std::string>& MovieFranchises() {
  static const std::vector<std::string> kPool = {
      "star", "dragon", "shadow", "galaxy",
      "crystal", "phantom", "thunder", "ember",
  };
  return kPool;
}

const std::vector<std::string>& MovieGenres() {
  static const std::vector<std::string> kPool = {
      "action",  "adventure", "sci-fi", "drama",   "comedy",
      "fantasy", "thriller",  "horror", "romance", "mystery",
  };
  return kPool;
}

const std::vector<std::string>& DirectorNames() {
  static const std::vector<std::string> kPool = {
      "Almodovar", "Bergstrom", "Castellanos", "Dubois", "Eriksson",
      "Fontaine",  "Guerrero",  "Hashimoto",   "Ivanova", "Jankowski",
      "Kimura",    "Laurent",   "Moreau",      "Nakamura", "Okafor",
  };
  return kPool;
}

const std::vector<std::string>& Countries() {
  static const std::vector<std::string> kPool = {
      "usa", "uk", "france", "japan", "germany", "spain", "korea", "canada",
  };
  return kPool;
}

const std::vector<std::string>& MovieAspects() {
  static const std::vector<std::string> kPool = {
      "acting",   "plot",     "visuals",   "soundtrack", "pacing",
      "dialogue", "effects",  "directing", "world building", "ending",
      "humor",    "suspense", "characters", "cinematography",
  };
  return kPool;
}

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> kPool = {
      "alex", "blair", "casey", "devon", "emery", "finley",
      "gray", "harper", "indigo", "jules", "kai", "logan",
      "morgan", "noel", "oakley", "parker", "quinn", "riley",
  };
  return kPool;
}

}  // namespace xsact::data
