#include "data/product_reviews.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/vocab.h"

namespace xsact::data {

namespace {

/// Per-product probability that a reviewer reports an aspect: a global
/// Zipf-ish base popularity modulated by a product-specific factor, so
/// some products are "compact" for 80% of reviewers and others for 20%.
std::vector<double> AspectProfile(Rng& rng, size_t pool_size,
                                  double aspect_skew) {
  std::vector<double> probs(pool_size, 0.0);
  for (size_t a = 0; a < pool_size; ++a) {
    const double base =
        1.0 / std::pow(static_cast<double>(a) + 1.0, aspect_skew);
    const double product_factor = 0.15 + 0.85 * rng.NextDouble();
    probs[a] = std::min(0.95, base * product_factor);
  }
  return probs;
}

}  // namespace

xml::Document GenerateProductReviews(const ProductReviewsConfig& config) {
  Rng rng(config.seed);
  xml::Document doc = xml::Document::WithRoot("products");
  xml::Node* root = doc.root();

  const auto& pros = ProAspects();
  const auto& cons = ConAspects();
  const auto& uses = BestUses();
  const auto& categories = ReviewerCategories();

  for (int p = 0; p < config.num_products; ++p) {
    xml::Node* product = root->AddElement("product");
    const std::string& brand = rng.Pick(ElectronicsBrands());
    // Round-robin the product kind so every catalog stocks all kinds in
    // comparable numbers (kind-keyword queries then always have enough
    // results to compare, regardless of the seed).
    const std::string& kind =
        ProductKinds()[static_cast<size_t>(p) % ProductKinds().size()];
    const int model = static_cast<int>(rng.Range(100, 999));
    product->AddElementWithText(
        "name", brand + " Go " + std::to_string(model) + " " + kind);
    product->AddElementWithText("brand", brand);
    product->AddElementWithText("kind", kind);
    product->AddElementWithText(
        "price", FormatDouble(49.0 + rng.NextDouble() * 450.0, 2));
    product->AddElementWithText(
        "rating", FormatDouble(2.5 + rng.NextDouble() * 2.5, 1));

    const std::vector<double> pro_profile =
        AspectProfile(rng, pros.size(), config.aspect_skew);
    const std::vector<double> con_profile =
        AspectProfile(rng, cons.size(), config.aspect_skew + 0.4);
    const size_t favored_use = rng.Zipf(uses.size(), 1.1);
    const size_t favored_category = rng.Below(categories.size());

    xml::Node* reviews = product->AddElement("reviews");
    const int num_reviews =
        static_cast<int>(rng.Range(config.min_reviews, config.max_reviews));
    for (int r = 0; r < num_reviews; ++r) {
      xml::Node* review = reviews->AddElement("review");
      review->AddElementWithText("reviewer", rng.Pick(FirstNames()));
      review->AddElementWithText("stars",
                                 std::to_string(rng.Range(1, 5)));
      // 60% of reviewers self-report the product's dominant category.
      const size_t cat = rng.Chance(0.6) ? favored_category
                                         : rng.Below(categories.size());
      review->AddElementWithText("category", categories[cat]);

      xml::Node* pros_node = review->AddElement("pros");
      for (size_t a = 0; a < pros.size(); ++a) {
        if (rng.Chance(pro_profile[a])) {
          pros_node->AddElementWithText("pro", pros[a]);
        }
      }
      xml::Node* cons_node = review->AddElement("cons");
      for (size_t a = 0; a < cons.size(); ++a) {
        if (rng.Chance(con_profile[a] * 0.5)) {
          cons_node->AddElementWithText("con", cons[a]);
        }
      }
      xml::Node* uses_node = review->AddElement("uses");
      const size_t use =
          rng.Chance(0.7) ? favored_use : rng.Below(uses.size());
      uses_node->AddElementWithText("use", uses[use]);
    }
  }
  return doc;
}

}  // namespace xsact::data
