#include "data/paper_example.h"

namespace xsact::data {

namespace {

void Add(feature::ResultFeatures* rf, feature::FeatureCatalog* catalog,
         const std::string& entity, const std::string& attribute,
         const std::string& value, double count, double cardinality) {
  rf->AddObservation(catalog->InternType(entity, attribute),
                     catalog->InternValue(value), count, cardinality);
}

}  // namespace

PaperGpsInstance BuildPaperGpsInstance(bool augmented,
                                       double diff_threshold) {
  auto catalog = std::make_unique<feature::FeatureCatalog>();

  feature::ResultFeatures gps1;
  gps1.set_label("TomTom Go 630 Portable GPS");
  // Product-level attribute (entity "product", cardinality 1).
  Add(&gps1, catalog.get(), "product", "name", "TomTom Go 630 Portable GPS",
      1, 1);
  // Review-level opinion types ("# of reviews: 11" in Figure 1).
  const double c1 = 11;
  Add(&gps1, catalog.get(), "review", "pro: easy to read", "yes", 10, c1);
  Add(&gps1, catalog.get(), "review", "pro: compact", "yes", 8, c1);
  Add(&gps1, catalog.get(), "review", "best use: auto", "yes", 6, c1);
  Add(&gps1, catalog.get(), "review", "category: casual user", "yes", 6, c1);
  Add(&gps1, catalog.get(), "review", "pro: large screen", "yes", 1, c1);
  if (augmented) {
    Add(&gps1, catalog.get(), "review", "pro: acquires satellites quickly",
        "yes", 3, c1);
    Add(&gps1, catalog.get(), "review", "pro: easy to setup", "yes", 4, c1);
    Add(&gps1, catalog.get(), "review", "best use: faster routes", "yes", 1,
        c1);
  }
  gps1.Seal();

  feature::ResultFeatures gps3;
  gps3.set_label("TomTom Go 730 (Tri-linguial) BOX");
  Add(&gps3, catalog.get(), "product", "name",
      "TomTom Go 730 (Tri-linguial) BOX", 1, 1);
  const double c3 = 68;
  Add(&gps3, catalog.get(), "review", "pro: acquires satellites quickly",
      "yes", 44, c3);
  Add(&gps3, catalog.get(), "review", "pro: easy to setup", "yes", 40, c3);
  Add(&gps3, catalog.get(), "review", "pro: compact", "yes", 38, c3);
  Add(&gps3, catalog.get(), "review", "best use: faster routes", "yes", 26,
      c3);
  Add(&gps3, catalog.get(), "review", "pro: large screen", "yes", 4, c3);
  if (augmented) {
    Add(&gps3, catalog.get(), "review", "pro: easy to read", "yes", 20, c3);
    Add(&gps3, catalog.get(), "review", "best use: auto", "yes", 10, c3);
    Add(&gps3, catalog.get(), "review", "category: casual user", "yes", 8,
        c3);
  }
  gps3.Seal();

  std::vector<feature::ResultFeatures> results;
  results.push_back(std::move(gps1));
  results.push_back(std::move(gps3));

  PaperGpsInstance out{std::move(catalog), core::ComparisonInstance()};
  out.instance = core::ComparisonInstance::Build(std::move(results),
                                                 out.catalog.get(),
                                                 diff_threshold);
  return out;
}

}  // namespace xsact::data
