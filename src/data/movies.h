// Movie dataset generator (IMDB shape) and the QM1..QM8 query workload
// of the paper's evaluation (Figure 4).
//
// The paper evaluates on "a movie data set extracted from IMDB" with
// eight keyword queries QM1..QM8, reporting per-query DoD (Fig. 4a) and
// processing time (Fig. 4b). The IMDB FTP dump is not redistributable;
// this generator synthesizes movies organized into eight "franchises"
// whose stems double as the workload's keywords, so QM-k retrieves the
// k-th franchise's movies. Result-set sizes and feature breadth grow
// across the queries, giving the workload the same knobs the paper's
// queries vary.

#ifndef XSACT_DATA_MOVIES_H_
#define XSACT_DATA_MOVIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/document.h"

namespace xsact::data {

/// Generation parameters.
struct MoviesConfig {
  /// Movies per franchise for QM1..QM8 (size of each query's result set).
  std::vector<int> franchise_sizes = {4, 6, 8, 10, 12, 16, 20, 25};
  int min_reviews = 6;
  int max_reviews = 48;
  uint64_t seed = 1990;
};

/// Generates the movie corpus (root <movies>).
xml::Document GenerateMovies(const MoviesConfig& config = {});

/// One query of the evaluation workload.
struct QuerySpec {
  std::string id;       ///< "QM1".."QM8"
  std::string query;    ///< keyword string fed to the search engine
  int size_bound = 5;   ///< DFS size bound L used for this query
};

/// The eight queries of Figure 4. Query k targets franchise k; the size
/// bound mirrors the paper's default comparison-table budget.
std::vector<QuerySpec> MovieQueryWorkload(int size_bound = 5);

}  // namespace xsact::data

#endif  // XSACT_DATA_MOVIES_H_
