// The exact worked example of the paper (Figure 1): two TomTom GPS
// results with their published feature statistics. Used by the E3/E4
// benchmarks and by tests that pin the paper's DoD arithmetic
// (snippet DoD = 2; XSACT DoD >= 5).

#ifndef XSACT_DATA_PAPER_EXAMPLE_H_
#define XSACT_DATA_PAPER_EXAMPLE_H_

#include <memory>
#include <vector>

#include "core/instance.h"
#include "feature/catalog.h"
#include "feature/result_features.h"

namespace xsact::data {

/// The paper's GPS instance. Owns the catalog the instance points into.
struct PaperGpsInstance {
  std::unique_ptr<feature::FeatureCatalog> catalog;
  core::ComparisonInstance instance;
};

/// Builds the Figure-1 instance.
///
/// The published statistics (verbatim from the figure):
///   GPS 1 "TomTom Go 630 Portable GPS",  11 reviews:
///     pro: easy to read 10, pro: compact 8, best use: auto 6,
///     category: casual 6, pro: large screen 1
///   GPS 3 "TomTom Go 730 (Tri-linguial) BOX", 68 reviews:
///     pro: satellites 44, pro: easy to setup 40, pro: compact 38,
///     best use: routers 26, pro: large screen 4
///
/// `augmented` additionally fills in the counts the figure truncates with
/// "..." (plausible synthesized values, documented in EXPERIMENTS.md) so
/// that more feature types are shared between the results — required to
/// reproduce Figure 2's DoD-5 comparison table:
///   GPS 1 += pro: satellites 3, pro: easy to setup 4, best use: routers 1
///   GPS 3 += pro: easy to read 20, best use: auto 10, category: casual 8
PaperGpsInstance BuildPaperGpsInstance(bool augmented,
                                       double diff_threshold = 0.10);

}  // namespace xsact::data

#endif  // XSACT_DATA_PAPER_EXAMPLE_H_
