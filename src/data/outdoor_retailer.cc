#include "data/outdoor_retailer.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/vocab.h"

namespace xsact::data {

xml::Document GenerateOutdoorRetailer(const OutdoorRetailerConfig& config) {
  Rng rng(config.seed);
  xml::Document doc = xml::Document::WithRoot("catalog");
  xml::Node* root = doc.root();

  const auto& brands = OutdoorBrands();
  const auto& categories = OutdoorCategories();
  const auto& subcategories = OutdoorSubcategories();
  const auto& materials = OutdoorMaterials();
  const auto& genders = Genders();

  const int num_brands =
      std::min<int>(config.num_brands, static_cast<int>(brands.size()));
  for (int b = 0; b < num_brands; ++b) {
    xml::Node* brand = root->AddElement("brand");
    brand->AddElementWithText("name", brands[static_cast<size_t>(b)]);
    brand->AddElementWithText("founded",
                              std::to_string(rng.Range(1900, 1995)));

    // Brand focus: one dominant category (55-85% of the portfolio) plus a
    // long tail; each brand also has a preferred material.
    const size_t focus_category = static_cast<size_t>(b) % categories.size();
    const double focus_share = 0.55 + 0.30 * rng.NextDouble();
    const size_t focus_material = rng.Below(materials.size());

    xml::Node* products = brand->AddElement("products");
    const int num_products =
        static_cast<int>(rng.Range(config.min_products, config.max_products));
    for (int p = 0; p < num_products; ++p) {
      xml::Node* product = products->AddElement("product");
      const size_t cat = rng.Chance(focus_share)
                             ? focus_category
                             : rng.Below(categories.size());
      const auto& subs = subcategories[cat];
      product->AddElementWithText(
          "name", brands[static_cast<size_t>(b)] + " " + categories[cat] +
                      " " + std::to_string(rng.Range(10, 99)));
      product->AddElementWithText("category", categories[cat]);
      product->AddElementWithText("subcategory", rng.Pick(subs));
      product->AddElementWithText("gender", rng.Pick(genders));
      product->AddElementWithText(
          "price", FormatDouble(40.0 + rng.NextDouble() * 560.0, 2));
      const size_t mat =
          rng.Chance(0.6) ? focus_material : rng.Below(materials.size());
      product->AddElementWithText("material", materials[mat]);
      product->AddElementWithText(
          "weight_grams", std::to_string(rng.Range(180, 1400)));
    }
  }
  return doc;
}

}  // namespace xsact::data
