// Outdoor Retailer dataset generator (REI.com shape, paper §3).
//
// Emits a catalog of brands; each brand has a set of products with
// category / subcategory / gender / price / material features. Brands
// have distinct category mixes (e.g. a "Marmot"-like brand concentrates
// on rain jackets while a "Columbia"-like brand sells mostly insulated
// ski jackets), which is exactly the brand-focus signal the paper's
// demo scenario surfaces through the comparison table.

#ifndef XSACT_DATA_OUTDOOR_RETAILER_H_
#define XSACT_DATA_OUTDOOR_RETAILER_H_

#include <cstdint>

#include "xml/document.h"

namespace xsact::data {

/// Generation parameters.
struct OutdoorRetailerConfig {
  int num_brands = 8;   ///< capped at the brand-name pool size
  int min_products = 18;
  int max_products = 60;
  uint64_t seed = 1938;  ///< REI's founding year, for flavor
};

/// Generates the catalog document (root <catalog>).
xml::Document GenerateOutdoorRetailer(const OutdoorRetailerConfig& config = {});

}  // namespace xsact::data

#endif  // XSACT_DATA_OUTDOOR_RETAILER_H_
