#include "data/movies.h"

#include "common/macros.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "data/vocab.h"

namespace xsact::data {

namespace {

const std::vector<std::string>& SubtitleWords() {
  static const std::vector<std::string> kPool = {
      "quest",  "odyssey", "legacy", "awakening", "reckoning",
      "origins", "ascension", "requiem", "horizon", "eclipse",
  };
  return kPool;
}

}  // namespace

xml::Document GenerateMovies(const MoviesConfig& config) {
  Rng rng(config.seed);
  xml::Document doc = xml::Document::WithRoot("movies");
  xml::Node* root = doc.root();

  const auto& franchises = MovieFranchises();
  const auto& genres = MovieGenres();
  const auto& aspects = MovieAspects();
  XSACT_CHECK(config.franchise_sizes.size() <= franchises.size());

  for (size_t f = 0; f < config.franchise_sizes.size(); ++f) {
    // A franchise shares a genre palette and era, like real sagas do;
    // individual movies differ in reception (ratings, review aspects).
    const size_t genre_a = rng.Below(genres.size());
    const size_t genre_b = (genre_a + 1 + rng.Below(genres.size() - 1)) %
                           genres.size();
    const int era_start = static_cast<int>(rng.Range(1965, 2000));

    for (int m = 0; m < config.franchise_sizes[f]; ++m) {
      xml::Node* movie = root->AddElement("movie");
      std::string title = franchises[f] + " " + rng.Pick(SubtitleWords());
      if (m > 0) title += " " + std::to_string(m + 1);
      movie->AddElementWithText("title", title);
      movie->AddElementWithText("year",
                                std::to_string(era_start + 2 * m));
      movie->AddElementWithText("director", rng.Pick(DirectorNames()));
      movie->AddElementWithText("runtime",
                                std::to_string(rng.Range(84, 192)));
      movie->AddElementWithText("country", rng.Pick(Countries()));
      movie->AddElementWithText(
          "rating", FormatDouble(4.0 + rng.NextDouble() * 5.5, 1));
      movie->AddElementWithText(
          "votes", std::to_string(rng.Range(500, 250000)));

      xml::Node* genres_node = movie->AddElement("genres");
      genres_node->AddElementWithText("genre", genres[genre_a]);
      if (rng.Chance(0.7)) {
        genres_node->AddElementWithText("genre", genres[genre_b]);
      }
      if (rng.Chance(0.3)) {
        genres_node->AddElementWithText("genre", rng.Pick(genres));
      }

      // Movie-specific review profile over aspects, so the percentage of
      // reviewers praising "acting" etc. varies between movies.
      std::vector<double> praise(aspects.size());
      std::vector<double> complain(aspects.size());
      for (size_t a = 0; a < aspects.size(); ++a) {
        praise[a] = rng.NextDouble() * 0.8;
        complain[a] = rng.NextDouble() * 0.35;
      }

      xml::Node* reviews = movie->AddElement("reviews");
      const int num_reviews = static_cast<int>(
          rng.Range(config.min_reviews, config.max_reviews));
      for (int r = 0; r < num_reviews; ++r) {
        xml::Node* review = reviews->AddElement("review");
        review->AddElementWithText("reviewer", rng.Pick(FirstNames()));
        review->AddElementWithText("stars",
                                   std::to_string(rng.Range(1, 10)));
        xml::Node* pros = review->AddElement("pros");
        for (size_t a = 0; a < aspects.size(); ++a) {
          if (rng.Chance(praise[a])) {
            pros->AddElementWithText("pro", aspects[a]);
          }
        }
        xml::Node* cons = review->AddElement("cons");
        for (size_t a = 0; a < aspects.size(); ++a) {
          if (rng.Chance(complain[a])) {
            cons->AddElementWithText("con", aspects[a]);
          }
        }
      }
    }
  }
  return doc;
}

std::vector<QuerySpec> MovieQueryWorkload(int size_bound) {
  const auto& franchises = MovieFranchises();
  std::vector<QuerySpec> workload;
  workload.reserve(8);
  for (int k = 0; k < 8; ++k) {
    QuerySpec spec;
    spec.id = "QM" + std::to_string(k + 1);
    spec.query = franchises[static_cast<size_t>(k)];
    spec.size_bound = size_bound;
    workload.push_back(std::move(spec));
  }
  return workload;
}

}  // namespace xsact::data
