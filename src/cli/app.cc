#include "cli/app.h"

#include <sys/stat.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/multi_swap.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "engine/query_service.h"
#include "table/explainer.h"
#include "table/renderer.h"

namespace xsact::cli {

namespace {

std::string Render(const table::ComparisonTable& table, OutputFormat format) {
  switch (format) {
    case OutputFormat::kAscii:
      return table::RenderAscii(table);
    case OutputFormat::kMarkdown:
      return table::RenderMarkdown(table);
    case OutputFormat::kHtml:
      return table::RenderHtml(table);
    case OutputFormat::kCsv:
      return table::RenderCsv(table);
    case OutputFormat::kJson:
      return table::RenderJson(table) + "\n";
  }
  return "";
}

/// Load-generation path (--threads / --repeat / --cache): serves the
/// query through a QueryService pool, checks that every repetition
/// produced an identical table, and prints throughput + cache counters
/// before rendering the (shared) outcome once.
int RunLoadGen(const CliOptions& options, const engine::Xsact& xsact,
               const engine::CompareOptions& compare, std::ostream& out,
               std::ostream& err) {
  engine::QueryServiceOptions service_options;
  service_options.num_threads = options.threads > 0 ? options.threads : 1;
  service_options.enable_cache = options.cache;
  engine::QueryService service(xsact.snapshot(), service_options);

  const std::vector<std::string> queries(
      static_cast<size_t>(options.repeat), options.query);
  Timer timer;
  auto futures = service.SubmitBatch(queries, compare);
  engine::OutcomePtr first;
  for (auto& future : futures) {
    StatusOr<engine::OutcomePtr> outcome = future.get();
    if (!outcome.ok()) {
      err << outcome.status() << "\n";
      return 1;
    }
    if (first == nullptr) {
      first = *outcome;
    } else if ((*outcome)->total_dod != first->total_dod ||
               (*outcome)->table.rows.size() != first->table.rows.size()) {
      err << "outcome diverged across repetitions\n";
      return 1;
    }
  }
  const double seconds = timer.ElapsedSeconds();
  out << "served " << queries.size() << " queries on "
      << service.num_threads() << " thread(s) in "
      << FormatDouble(seconds * 1e3, 1) << " ms ("
      << FormatDouble(seconds > 0 ? queries.size() / seconds : 0, 0)
      << " qps)\n";
  if (options.cache) {
    const engine::CacheStats stats = service.cache_stats();
    out << "cache: " << stats.hits << " hits, " << stats.misses
        << " misses, " << stats.evictions << " evictions, " << stats.entries
        << " entries\n";
  }

  // Render exactly what the synchronous path renders. The shared outcome
  // is immutable, so the --weights re-selection recomputes into locals.
  const std::vector<core::Dfs>* dfss = &first->dfss;
  const table::ComparisonTable* table = &first->table;
  std::vector<core::Dfs> reselected_dfss;
  table::ComparisonTable reselected_table;
  if (options.algorithm == core::SelectorKind::kWeightedMultiSwap &&
      options.weight_scheme != core::WeightScheme::kInterestingness) {
    core::WeightedMultiSwapOptimizer selector(options.weight_scheme);
    core::SelectorOptions sopts;
    sopts.size_bound = options.bound;
    reselected_dfss = selector.Select(first->instance, sopts);
    reselected_table =
        table::BuildComparisonTable(first->instance, reselected_dfss);
    dfss = &reselected_dfss;
    table = &reselected_table;
  }

  out << Render(*table, options.format);
  if (options.explain) {
    const auto explanations =
        table::ExplainDifferences(first->instance, *dfss);
    out << "\nkey differences:\n" << table::RenderExplanations(explanations);
  }
  if (options.show_dfs) {
    out << "\nselected DFSs (" << core::SelectorKindName(options.algorithm)
        << "):\n";
    for (int i = 0; i < first->instance.num_results(); ++i) {
      out << "  " << table->headers[static_cast<size_t>(i)] << ": "
          << (*dfss)[static_cast<size_t>(i)].ToString(first->instance)
          << "\n";
    }
  }
  return 0;
}

/// Serves one query through the service and renders the outcome (the
/// --watch loop's unit of work). Returns false on serve failure.
bool ServeAndRender(engine::QueryService& service, const CliOptions& options,
                    const engine::CompareOptions& compare, std::ostream& out,
                    std::ostream& err) {
  StatusOr<engine::OutcomePtr> outcome =
      service.Submit(options.query, compare).get();
  if (!outcome.ok()) {
    err << outcome.status() << "\n";
    return false;
  }
  out << Render((*outcome)->table, options.format);
  if (options.explain) {
    const auto explanations =
        table::ExplainDifferences((*outcome)->instance, (*outcome)->dfss);
    out << "\nkey differences:\n"
        << table::RenderExplanations(explanations);
  }
  return true;
}

/// --watch: serve once, then poll the corpus file's mtime and hot-swap
/// the snapshot (QueryService::ReloadCorpus) whenever it changes.
/// In-flight queries finish on their admitted snapshot; new submissions
/// see the fresh corpus. Exits after --max-reloads reloads (0 = forever)
/// or when the file disappears.
int RunWatch(const CliOptions& options, const engine::Xsact& xsact,
             const engine::CompareOptions& compare, std::ostream& out,
             std::ostream& err) {
  engine::QueryServiceOptions service_options;
  service_options.num_threads = options.threads > 0 ? options.threads : 1;
  service_options.enable_cache = options.cache;
  engine::QueryService service(xsact.snapshot(), service_options);

  out << "serving (epoch " << service.snapshot_epoch() << "):\n";
  if (!ServeAndRender(service, options, compare, out, err)) return 1;

  // Nanosecond mtime: whole-second st_mtime would miss a rewrite landing
  // in the same second as the previous one.
  const auto mtime_of = [](const struct stat& st) {
    return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
           st.st_mtim.tv_nsec;
  };
  struct stat st;
  if (::stat(options.dataset.c_str(), &st) != 0) {
    err << "cannot stat '" << options.dataset << "'\n";
    return 1;
  }
  int64_t last_mtime = mtime_of(st);
  int reloads = 0;
  out << "watching " << options.dataset << " for changes"
      << (options.max_reloads > 0
              ? " (" + std::to_string(options.max_reloads) + " reloads max)"
              : std::string())
      << "...\n";
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (::stat(options.dataset.c_str(), &st) != 0) {
      err << "corpus file disappeared; stopping watch\n";
      return 1;
    }
    if (mtime_of(st) == last_mtime) continue;
    last_mtime = mtime_of(st);
    const Status reloaded = service.ReloadCorpus(options.dataset).get();
    if (!reloaded.ok()) {
      err << "reload failed (still serving previous snapshot): " << reloaded
          << "\n";
      continue;
    }
    ++reloads;
    out << "reloaded (epoch " << service.snapshot_epoch() << "):\n";
    if (!ServeAndRender(service, options, compare, out, err)) return 1;
    if (options.max_reloads > 0 && reloads >= options.max_reloads) break;
  }
  return 0;
}

}  // namespace

StatusOr<engine::Xsact> BuildEngine(const CliOptions& options) {
  if (options.dataset == "products") {
    data::ProductReviewsConfig config;
    if (options.seed != 0) config.seed = options.seed;
    return engine::Xsact(data::GenerateProductReviews(config));
  }
  if (options.dataset == "outdoor") {
    data::OutdoorRetailerConfig config;
    if (options.seed != 0) config.seed = options.seed;
    return engine::Xsact(data::GenerateOutdoorRetailer(config));
  }
  if (options.dataset == "movies") {
    data::MoviesConfig config;
    if (options.seed != 0) config.seed = options.seed;
    return engine::Xsact(data::GenerateMovies(config));
  }
  if (EndsWith(options.dataset, ".xml") ||
      options.dataset.find('/') != std::string::npos) {
    return engine::Xsact::FromFile(options.dataset);
  }
  return Status::InvalidArgument(
      "unknown dataset '" + options.dataset +
      "' (products|outdoor|movies|path/to/file.xml)");
}

int RunApp(const CliOptions& options, std::ostream& out, std::ostream& err) {
  if (options.help) {
    out << CliUsage();
    return 0;
  }
  StatusOr<engine::Xsact> xsact = BuildEngine(options);
  if (!xsact.ok()) {
    err << xsact.status() << "\n";
    return 1;
  }

  if (options.watch) {
    engine::CompareOptions compare;
    compare.algorithm = options.algorithm;
    compare.selector.size_bound = options.bound;
    compare.diff_threshold = options.threshold;
    compare.lift_results_to = options.lift;
    compare.max_compared = options.max_results;
    return RunWatch(options, *xsact, compare, out, err);
  }

  auto results = options.ranked ? xsact->SearchRanked(options.query)
                                : xsact->Search(options.query);
  if (!results.ok()) {
    err << results.status() << "\n";
    return 1;
  }
  out << "query \"" << options.query << "\": " << results->size()
      << " results\n";
  if (options.list_only || results->size() < 2) {
    size_t shown = 0;
    for (const auto& r : *results) {
      out << "  " << ++shown << ". " << r.title;
      const std::string snippet = search::BriefSnippet(*r.root);
      if (!snippet.empty()) out << "  [" << snippet << "]";
      out << "\n";
    }
    if (!options.list_only && results->size() < 2) {
      err << "need at least two results to compare\n";
      return 1;
    }
    return 0;
  }

  engine::CompareOptions compare;
  compare.algorithm = options.algorithm;
  compare.selector.size_bound = options.bound;
  compare.diff_threshold = options.threshold;
  compare.lift_results_to = options.lift;
  compare.max_compared = options.max_results;
  if (options.threads > 0 || options.repeat > 1 || options.cache) {
    return RunLoadGen(options, *xsact, compare, out, err);
  }
  auto outcome = xsact->SearchAndCompare(options.query, 0, compare);
  if (!outcome.ok()) {
    err << outcome.status() << "\n";
    return 1;
  }
  if (options.algorithm == core::SelectorKind::kWeightedMultiSwap &&
      options.weight_scheme != core::WeightScheme::kInterestingness) {
    // MakeSelector defaults the weighted algorithm to interestingness;
    // re-select with the requested scheme on the already-built instance.
    core::WeightedMultiSwapOptimizer selector(options.weight_scheme);
    core::SelectorOptions sopts;
    sopts.size_bound = options.bound;
    outcome->dfss = selector.Select(outcome->instance, sopts);
    outcome->table = table::BuildComparisonTable(outcome->instance,
                                                 outcome->dfss);
    outcome->total_dod = outcome->table.total_dod;
  }

  out << Render(outcome->table, options.format);
  if (options.explain) {
    const auto explanations =
        table::ExplainDifferences(outcome->instance, outcome->dfss);
    out << "\nkey differences:\n"
        << table::RenderExplanations(explanations);
  }
  if (options.show_dfs) {
    out << "\nselected DFSs (" << core::SelectorKindName(options.algorithm)
        << "):\n";
    for (int i = 0; i < outcome->instance.num_results(); ++i) {
      out << "  " << outcome->table.headers[static_cast<size_t>(i)] << ": "
          << outcome->dfss[static_cast<size_t>(i)].ToString(outcome->instance)
          << "\n";
    }
  }
  return 0;
}

}  // namespace xsact::cli
