#include "cli/app.h"

#include <sys/stat.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/shutdown_signal.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/multi_swap.h"
#include "data/movies.h"
#include "data/outdoor_retailer.h"
#include "data/product_reviews.h"
#include "engine/query_service.h"
#include "engine/router.h"
#include "server/server.h"
#include "table/explainer.h"
#include "table/renderer.h"

namespace xsact::cli {

namespace {

std::string Render(const table::ComparisonTable& table, OutputFormat format) {
  switch (format) {
    case OutputFormat::kAscii:
      return table::RenderAscii(table);
    case OutputFormat::kMarkdown:
      return table::RenderMarkdown(table);
    case OutputFormat::kHtml:
      return table::RenderHtml(table);
    case OutputFormat::kCsv:
      return table::RenderCsv(table);
    case OutputFormat::kJson:
      return table::RenderJson(table) + "\n";
  }
  return "";
}

/// The CompareOptions every serve path (sync, load-gen, watch, router)
/// derives from the parsed command line.
engine::CompareOptions CompareOptionsFor(const CliOptions& options) {
  engine::CompareOptions compare;
  compare.algorithm = options.algorithm;
  compare.selector.size_bound = options.bound;
  compare.diff_threshold = options.threshold;
  compare.lift_results_to = options.lift;
  compare.max_compared = options.max_results;
  return compare;
}

/// QueryService knobs shared by the load-gen, watch and router paths.
engine::QueryServiceOptions ServiceOptionsFor(const CliOptions& options) {
  engine::QueryServiceOptions service_options;
  service_options.num_threads = options.threads > 0 ? options.threads : 1;
  service_options.enable_cache = options.cache;
  service_options.max_queue = static_cast<size_t>(options.max_queue);
  return service_options;
}

/// Fresh per-request deadline from --deadline-ms (none when 0).
engine::Deadline DeadlineFor(const CliOptions& options) {
  if (options.deadline_ms <= 0) return engine::kNoDeadline;
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(options.deadline_ms);
}

/// Renders a served outcome exactly like the synchronous path: the
/// --weights re-selection (recomputed into locals — the shared outcome
/// is immutable), the table in the requested format, --explain and
/// --show-dfs output. Shared by the load-gen, watch and router paths.
void RenderServedOutcome(const engine::OutcomePtr& outcome,
                         const CliOptions& options, std::ostream& out) {
  const std::vector<core::Dfs>* dfss = &outcome->dfss;
  const table::ComparisonTable* table = &outcome->table;
  std::vector<core::Dfs> reselected_dfss;
  table::ComparisonTable reselected_table;
  if (options.algorithm == core::SelectorKind::kWeightedMultiSwap &&
      options.weight_scheme != core::WeightScheme::kInterestingness) {
    core::WeightedMultiSwapOptimizer selector(options.weight_scheme);
    core::SelectorOptions sopts;
    sopts.size_bound = options.bound;
    reselected_dfss = selector.Select(outcome->instance, sopts);
    reselected_table =
        table::BuildComparisonTable(outcome->instance, reselected_dfss);
    dfss = &reselected_dfss;
    table = &reselected_table;
  }

  out << Render(*table, options.format);
  if (options.explain) {
    const auto explanations =
        table::ExplainDifferences(outcome->instance, *dfss);
    out << "\nkey differences:\n"
        << table::RenderExplanations(explanations);
  }
  if (options.show_dfs) {
    out << "\nselected DFSs (" << core::SelectorKindName(options.algorithm)
        << "):\n";
    for (int i = 0; i < outcome->instance.num_results(); ++i) {
      out << "  " << table->headers[static_cast<size_t>(i)] << ": "
          << (*dfss)[static_cast<size_t>(i)].ToString(outcome->instance)
          << "\n";
    }
  }
}

/// Load-generation path (--threads / --repeat / --cache): serves the
/// query through a QueryService pool, checks that every repetition
/// produced an identical table, and prints throughput + cache counters
/// before rendering the (shared) outcome once. Requests shed by the
/// bounded queue or expired past --deadline-ms are counted, not fatal.
int RunLoadGen(const CliOptions& options, const engine::Xsact& xsact,
               const engine::CompareOptions& compare, std::ostream& out,
               std::ostream& err) {
  engine::QueryService service(xsact.snapshot(), ServiceOptionsFor(options));

  const std::vector<std::string> queries(
      static_cast<size_t>(options.repeat), options.query);
  Timer timer;
  // Each request gets its own --deadline-ms budget measured from ITS
  // submission (same semantics as the router path), not one absolute
  // deadline shared by the whole batch.
  std::vector<std::future<StatusOr<engine::OutcomePtr>>> futures;
  futures.reserve(queries.size());
  for (const std::string& query : queries) {
    futures.push_back(
        service.Submit(query, compare, 0, DeadlineFor(options)));
  }
  engine::OutcomePtr first;
  size_t ok_count = 0;
  for (auto& future : futures) {
    StatusOr<engine::OutcomePtr> outcome = future.get();
    if (!outcome.ok()) {
      const StatusCode code = outcome.status().code();
      if (code == StatusCode::kResourceExhausted ||
          code == StatusCode::kDeadlineExceeded) {
        continue;  // admission rejections are expected under overload
      }
      err << outcome.status() << "\n";
      return 1;
    }
    ++ok_count;
    if (first == nullptr) {
      first = *outcome;
    } else if ((*outcome)->total_dod != first->total_dod ||
               (*outcome)->table.rows.size() != first->table.rows.size()) {
      err << "outcome diverged across repetitions\n";
      return 1;
    }
  }
  const double seconds = timer.ElapsedSeconds();
  out << "served " << queries.size() << " queries on "
      << service.num_threads() << " thread(s) in "
      << FormatDouble(seconds * 1e3, 1) << " ms ("
      << FormatDouble(seconds > 0 ? queries.size() / seconds : 0, 0)
      << " qps)\n";
  if (options.cache) {
    const engine::CacheStats stats = service.cache_stats();
    out << "cache: " << stats.hits << " hits, " << stats.misses
        << " misses, " << stats.evictions << " evictions, " << stats.entries
        << " entries\n";
  }
  if (options.max_queue > 0 || options.deadline_ms > 0) {
    const engine::AdmissionStats stats = service.admission_stats();
    out << "admission: " << ok_count << " ok, " << stats.shed << " shed, "
        << stats.deadline_exceeded << " deadline-exceeded\n";
  }
  if (first == nullptr) {
    err << "no request survived admission control\n";
    return 1;
  }

  RenderServedOutcome(first, options, out);
  return 0;
}

/// Serves one query through the service and renders the outcome (the
/// --watch loop's unit of work). Returns false on serve failure.
bool ServeAndRender(engine::QueryService& service, const CliOptions& options,
                    const engine::CompareOptions& compare, std::ostream& out,
                    std::ostream& err) {
  StatusOr<engine::OutcomePtr> outcome =
      service.Submit(options.query, compare, 0, DeadlineFor(options)).get();
  if (!outcome.ok()) {
    err << outcome.status() << "\n";
    return false;
  }
  RenderServedOutcome(*outcome, options, out);
  return true;
}

/// Nanosecond mtime: whole-second st_mtime would miss a rewrite landing
/// in the same second as the previous one.
int64_t MtimeNs(const struct stat& st) {
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
         st.st_mtim.tv_nsec;
}

enum class ReloadResult { kReloaded, kFailed, kGone };

/// One torn-read-safe reload round. The poll loop stats the file BEFORE
/// the load starts (`observed_mtime`); a writer may still be mid-rewrite
/// at that point, so a successful parse can be of a truncated-but-well-
/// formed corpus. Re-stat after the load: if the mtime moved while the
/// load ran, wait out the poll interval and reload again until a load
/// completes with the mtime stable around it (bounded retries so a
/// continuously-written file can't pin the watcher re-parsing forever).
/// On success *last_mtime advances to the stable mtime; on a failed or
/// never-stable reload it is deliberately left untouched so the NEXT
/// poll retries instead of wedging on the torn content forever.
template <typename ReloadFn>
ReloadResult ReloadStable(const std::string& path, int64_t observed_mtime,
                          int64_t* last_mtime, const ReloadFn& reload,
                          std::ostream& err) {
  constexpr int kMaxRetries = 5;
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    if (attempt > 0) {
      // The file was rewritten while we loaded: let the writer finish
      // at poll cadence instead of re-parsing in a tight loop.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    const Status reloaded = reload();
    if (!reloaded.ok()) {
      err << "reload failed (still serving previous snapshot): " << reloaded
          << "\n";
      // Distinguish torn from settled-but-invalid content: a writer
      // mid-rewrite moves the mtime again (the next poll retries because
      // *last_mtime stays behind), while a file that FAILED to parse and
      // whose mtime is already stable is genuinely malformed — advance
      // *last_mtime so it is reported once, not re-parsed every poll
      // until the next real change.
      struct stat failed_st;
      if (::stat(path.c_str(), &failed_st) == 0 &&
          MtimeNs(failed_st) == observed_mtime) {
        *last_mtime = observed_mtime;
      }
      return ReloadResult::kFailed;
    }
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      err << "corpus file disappeared; stopping watch\n";
      return ReloadResult::kGone;
    }
    if (MtimeNs(st) == observed_mtime) {
      *last_mtime = observed_mtime;
      return ReloadResult::kReloaded;
    }
    observed_mtime = MtimeNs(st);  // rewritten during the load: go again
  }
  err << "corpus file kept changing across " << kMaxRetries
      << " reloads; will retry on the next poll\n";
  return ReloadResult::kFailed;
}

/// --watch: serve once, then poll the corpus file's mtime and hot-swap
/// the snapshot (QueryService::ReloadCorpus) whenever it changes.
/// In-flight queries finish on their admitted snapshot; new submissions
/// see the fresh corpus. Exits after --max-reloads reloads (0 = forever)
/// or when the file disappears.
int RunWatch(const CliOptions& options, const engine::Xsact& xsact,
             const engine::CompareOptions& compare, std::ostream& out,
             std::ostream& err) {
  engine::QueryService service(xsact.snapshot(), ServiceOptionsFor(options));

  out << "serving (epoch " << service.snapshot_epoch() << "):\n";
  if (!ServeAndRender(service, options, compare, out, err)) return 1;

  struct stat st;
  if (::stat(options.dataset.c_str(), &st) != 0) {
    err << "cannot stat '" << options.dataset << "'\n";
    return 1;
  }
  int64_t last_mtime = MtimeNs(st);
  int reloads = 0;
  // SIGINT/SIGTERM must end the poll loop cleanly (still-serving
  // snapshot intact, exit code 0), not kill the process mid-reload.
  InstallShutdownSignalHandlers();
  out << "watching " << options.dataset << " for changes"
      << (options.max_reloads > 0
              ? " (" + std::to_string(options.max_reloads) + " reloads max)"
              : std::string())
      << "...\n";
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (ShutdownRequested()) {
      out << "shutdown requested; stopping watch\n";
      return 0;
    }
    if (::stat(options.dataset.c_str(), &st) != 0) {
      err << "corpus file disappeared; stopping watch\n";
      return 1;
    }
    if (MtimeNs(st) == last_mtime) continue;
    const ReloadResult result = ReloadStable(
        options.dataset, MtimeNs(st), &last_mtime,
        [&] { return service.ReloadCorpus(options.dataset).get(); }, err);
    if (result == ReloadResult::kGone) return 1;
    if (result == ReloadResult::kFailed) continue;  // next poll retries
    ++reloads;
    out << "reloaded (epoch " << service.snapshot_epoch() << "):\n";
    if (!ServeAndRender(service, options, compare, out, err)) return 1;
    if (options.max_reloads > 0 && reloads >= options.max_reloads) break;
  }
  return 0;
}

/// Serves one dataset through the router (--repeat copies, each with a
/// fresh --deadline-ms deadline) and renders the first surviving
/// outcome under a dataset header. Shed / deadline-exceeded requests are
/// expected under overload and only fail the run when NOTHING survives.
bool ServeDataset(engine::ServiceRouter& router, const std::string& name,
                  const CliOptions& options,
                  const engine::CompareOptions& compare, std::ostream& out,
                  std::ostream& err) {
  const size_t repeat = static_cast<size_t>(std::max(options.repeat, 1));
  std::vector<std::future<StatusOr<engine::OutcomePtr>>> futures;
  futures.reserve(repeat);
  for (size_t r = 0; r < repeat; ++r) {
    futures.push_back(router.Submit(name, options.query, compare, 0,
                                    DeadlineFor(options)));
  }
  engine::OutcomePtr first;
  size_t shed = 0;
  size_t expired = 0;
  for (auto& future : futures) {
    StatusOr<engine::OutcomePtr> outcome = future.get();
    if (!outcome.ok()) {
      const StatusCode code = outcome.status().code();
      if (code == StatusCode::kResourceExhausted) {
        ++shed;
        continue;
      }
      if (code == StatusCode::kDeadlineExceeded) {
        ++expired;
        continue;
      }
      err << "dataset '" << name << "': " << outcome.status() << "\n";
      return false;
    }
    if (first == nullptr) {
      first = *outcome;
    } else if ((*outcome)->total_dod != first->total_dod ||
               (*outcome)->table.rows.size() != first->table.rows.size()) {
      err << "dataset '" << name
          << "': outcome diverged across repetitions\n";
      return false;
    }
  }
  if (first == nullptr) {
    err << "dataset '" << name << "': all " << repeat
        << " request(s) rejected by admission control (" << shed
        << " shed, " << expired << " deadline-exceeded)\n";
    return false;
  }
  out << "=== " << name << " (epoch "
      << router.service(name)->snapshot_epoch() << ") ===\n";
  RenderServedOutcome(first, options, out);
  return true;
}

/// Per-dataset observability block (cache + admission counters).
void PrintRouterStats(const engine::ServiceRouter& router,
                      std::ostream& out) {
  out << "router stats:\n";
  for (const engine::DatasetStats& d : router.stats().datasets) {
    out << "  " << d.dataset << ": epoch " << d.epoch << ", cache "
        << d.cache.hits << " hits / " << d.cache.misses << " misses, queue "
        << d.admission.queue_depth << ", shed " << d.admission.shed
        << ", deadline-exceeded " << d.admission.deadline_exceeded;
    if (d.health.healthy) {
      out << ", healthy";
    } else {
      out << ", DEGRADED (serving last-known-good; " << d.health.last_error
          << ")";
    }
    if (d.health.reload_attempts > 0) {
      out << ", reloads " << d.health.reload_successes << " ok / "
          << d.health.reload_failures << " failed";
    }
    out << "\n";
  }
}

/// Router --watch: poll every file-backed dataset's mtime; a change
/// hot-swaps ONLY that dataset's service (other corpora keep serving
/// their snapshots untouched). Uses the same torn-read-safe reload
/// protocol as the single-dataset watch. --max-reloads counts reloads
/// across all datasets.
int RunRouterWatch(engine::ServiceRouter& router, const CliOptions& options,
                   const engine::CompareOptions& compare, std::ostream& out,
                   std::ostream& err) {
  struct WatchedDataset {
    std::string name;
    std::string path;
    int64_t last_mtime;
  };
  std::vector<WatchedDataset> watched;
  for (const DatasetBinding& binding : options.datasets) {
    if (!IsFileDatasetSource(binding.source)) continue;
    struct stat st;
    if (::stat(binding.source.c_str(), &st) != 0) {
      err << "cannot stat '" << binding.source << "'\n";
      return 1;
    }
    watched.push_back({binding.name, binding.source, MtimeNs(st)});
  }
  // SIGINT/SIGTERM end the poll loop cleanly between reload rounds.
  InstallShutdownSignalHandlers();
  out << "watching " << watched.size() << " dataset file(s) for changes"
      << (options.max_reloads > 0
              ? " (" + std::to_string(options.max_reloads) + " reloads max)"
              : std::string())
      << "...\n";
  int reloads = 0;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (ShutdownRequested()) {
      out << "shutdown requested; stopping watch\n";
      return 0;
    }
    for (WatchedDataset& w : watched) {
      struct stat st;
      if (::stat(w.path.c_str(), &st) != 0) {
        err << "corpus file '" << w.path << "' disappeared; stopping watch\n";
        return 1;
      }
      if (MtimeNs(st) == w.last_mtime) continue;
      const ReloadResult result = ReloadStable(
          w.path, MtimeNs(st), &w.last_mtime,
          [&] { return router.ReloadCorpus(w.name, w.path).get(); }, err);
      if (result == ReloadResult::kGone) return 1;
      if (result == ReloadResult::kFailed) continue;  // next poll retries
      ++reloads;
      out << "reloaded " << w.name << " (epoch "
          << router.service(w.name)->snapshot_epoch() << "):\n";
      if (!ServeDataset(router, w.name, options, compare, out, err)) {
        return 1;
      }
      if (options.max_reloads > 0 && reloads >= options.max_reloads) {
        return 0;
      }
    }
  }
}

/// Router mode (two or more --dataset bindings): one ServiceRouter owns
/// a QueryService per corpus; the query is served on every dataset, the
/// per-dataset admission/cache counters are printed, and --watch routes
/// file reloads to the owning service.
int RunRouter(const CliOptions& options, std::ostream& out,
              std::ostream& err) {
  std::vector<engine::DatasetSpec> specs;
  specs.reserve(options.datasets.size());
  for (const DatasetBinding& binding : options.datasets) {
    StatusOr<engine::SnapshotPtr> snapshot =
        BuildSnapshot(binding.source, options.seed);
    if (!snapshot.ok()) {
      err << "dataset '" << binding.name << "': " << snapshot.status()
          << "\n";
      return 1;
    }
    specs.push_back({binding.name, std::move(*snapshot)});
  }
  StatusOr<engine::ServiceRouter> router =
      engine::ServiceRouter::Create(std::move(specs),
                                    ServiceOptionsFor(options));
  if (!router.ok()) {
    err << router.status() << "\n";
    return 1;
  }

  const engine::CompareOptions compare = CompareOptionsFor(options);
  bool ok = true;
  for (const DatasetBinding& binding : options.datasets) {
    ok = ServeDataset(*router, binding.name, options, compare, out, err) &&
         ok;
  }
  PrintRouterStats(*router, out);
  if (!ok) return 1;
  if (options.watch) {
    return RunRouterWatch(*router, options, compare, out, err);
  }
  return 0;
}

/// --serve: the HTTP front-end. Builds one ServiceRouter over the
/// --dataset bindings (a single unnamed dataset serves under its source
/// name), installs SIGTERM/SIGINT handlers wired to the server's drain
/// path, and runs the event loop on this thread until a shutdown signal
/// (or programmatic RequestShutdown) completes a graceful drain.
int RunServe(const CliOptions& options, std::ostream& out,
             std::ostream& err) {
  std::vector<DatasetBinding> bindings = options.datasets;
  if (bindings.empty()) {
    bindings.push_back({options.dataset, options.dataset});
  }
  std::vector<engine::DatasetSpec> specs;
  specs.reserve(bindings.size());
  for (const DatasetBinding& binding : bindings) {
    StatusOr<engine::SnapshotPtr> snapshot =
        BuildSnapshot(binding.source, options.seed);
    if (!snapshot.ok()) {
      err << "dataset '" << binding.name << "': " << snapshot.status()
          << "\n";
      return 1;
    }
    specs.push_back({binding.name, std::move(*snapshot)});
  }
  StatusOr<engine::ServiceRouter> router = engine::ServiceRouter::Create(
      std::move(specs), ServiceOptionsFor(options));
  if (!router.ok()) {
    err << router.status() << "\n";
    return 1;
  }

  InstallShutdownSignalHandlers();
  server::ServerOptions server_options;
  server_options.port = options.port;
  server_options.drain_budget_ms = options.drain_ms;
  server_options.default_deadline_ms = options.deadline_ms;
  server_options.wakeup_fd = ShutdownWakeupFd();
  server::HttpServer server(&*router, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    err << started << "\n";
    return 1;
  }
  out << "serving " << router->num_datasets()
      << " dataset(s) on http://127.0.0.1:" << server.port()
      << " (drain budget " << options.drain_ms << " ms)" << std::endl;
  if (ShutdownRequested()) server.Stop();  // signal won the startup race
  server.Run();

  const server::ServerStats stats = server.stats();
  out << "drained: " << stats.requests << " request(s) served ("
      << stats.responses_ok << " ok, " << stats.responses_error
      << " error), " << stats.accepted << " connection(s), "
      << stats.timeouts << " timeout(s), " << stats.disconnects
      << " disconnect(s)\n";
  PrintRouterStats(*router, out);
  return 0;
}

}  // namespace

StatusOr<engine::SnapshotPtr> BuildSnapshot(const std::string& source,
                                            uint64_t seed) {
  if (source == "products") {
    data::ProductReviewsConfig config;
    if (seed != 0) config.seed = seed;
    return engine::CorpusSnapshot::Build(
        data::GenerateProductReviews(config));
  }
  if (source == "outdoor") {
    data::OutdoorRetailerConfig config;
    if (seed != 0) config.seed = seed;
    return engine::CorpusSnapshot::Build(
        data::GenerateOutdoorRetailer(config));
  }
  if (source == "movies") {
    data::MoviesConfig config;
    if (seed != 0) config.seed = seed;
    return engine::CorpusSnapshot::Build(data::GenerateMovies(config));
  }
  if (IsFileDatasetSource(source)) {
    return engine::CorpusSnapshot::FromFile(source);
  }
  return Status::InvalidArgument(
      "unknown dataset '" + source +
      "' (products|outdoor|movies|path/to/file.xml)");
}

StatusOr<engine::Xsact> BuildEngine(const CliOptions& options) {
  StatusOr<engine::SnapshotPtr> snapshot =
      BuildSnapshot(options.dataset, options.seed);
  if (!snapshot.ok()) return snapshot.status();
  return engine::Xsact(std::move(*snapshot));
}

int RunApp(const CliOptions& options, std::ostream& out, std::ostream& err) {
  if (options.help) {
    out << CliUsage();
    return 0;
  }
  if (options.serve) {
    return RunServe(options, out, err);
  }
  if (options.datasets.size() >= 2) {
    if (options.list_only || options.ranked) {
      err << "--list/--ranked are single-dataset modes\n";
      return 1;
    }
    return RunRouter(options, out, err);
  }
  StatusOr<engine::Xsact> xsact = BuildEngine(options);
  if (!xsact.ok()) {
    err << xsact.status() << "\n";
    return 1;
  }

  if (options.stats) {
    const engine::IndexStats stats = xsact->snapshot()->index_stats();
    out << "corpus: " << xsact->snapshot()->table().size() << " nodes\n"
        << "index: " << stats.terms << " terms, " << stats.postings
        << " postings, " << stats.compressed_bytes
        << " bytes compressed (raw CSR " << stats.raw_csr_bytes << " bytes, "
        << FormatDouble(stats.ratio(), 2) << "x)\n";
    if (options.query.empty()) return 0;
  }

  if (options.watch) {
    return RunWatch(options, *xsact, CompareOptionsFor(options), out, err);
  }

  auto results = options.ranked ? xsact->SearchRanked(options.query)
                                : xsact->Search(options.query);
  if (!results.ok()) {
    err << results.status() << "\n";
    return 1;
  }
  out << "query \"" << options.query << "\": " << results->size()
      << " results\n";
  if (options.list_only || results->size() < 2) {
    size_t shown = 0;
    for (const auto& r : *results) {
      out << "  " << ++shown << ". " << r.title;
      const std::string snippet = search::BriefSnippet(*r.root);
      if (!snippet.empty()) out << "  [" << snippet << "]";
      out << "\n";
    }
    if (!options.list_only && results->size() < 2) {
      err << "need at least two results to compare\n";
      return 1;
    }
    return 0;
  }

  const engine::CompareOptions compare = CompareOptionsFor(options);
  if (options.threads > 0 || options.repeat > 1 || options.cache) {
    return RunLoadGen(options, *xsact, compare, out, err);
  }
  auto outcome = xsact->SearchAndCompare(options.query, 0, compare);
  if (!outcome.ok()) {
    err << outcome.status() << "\n";
    return 1;
  }
  if (options.algorithm == core::SelectorKind::kWeightedMultiSwap &&
      options.weight_scheme != core::WeightScheme::kInterestingness) {
    // MakeSelector defaults the weighted algorithm to interestingness;
    // re-select with the requested scheme on the already-built instance.
    core::WeightedMultiSwapOptimizer selector(options.weight_scheme);
    core::SelectorOptions sopts;
    sopts.size_bound = options.bound;
    outcome->dfss = selector.Select(outcome->instance, sopts);
    outcome->table = table::BuildComparisonTable(outcome->instance,
                                                 outcome->dfss);
    outcome->total_dod = outcome->table.total_dod;
  }

  out << Render(outcome->table, options.format);
  if (options.explain) {
    const auto explanations =
        table::ExplainDifferences(outcome->instance, outcome->dfss);
    out << "\nkey differences:\n"
        << table::RenderExplanations(explanations);
  }
  if (options.show_dfs) {
    out << "\nselected DFSs (" << core::SelectorKindName(options.algorithm)
        << "):\n";
    for (int i = 0; i < outcome->instance.num_results(); ++i) {
      out << "  " << outcome->table.headers[static_cast<size_t>(i)] << ": "
          << outcome->dfss[static_cast<size_t>(i)].ToString(outcome->instance)
          << "\n";
    }
  }
  return 0;
}

}  // namespace xsact::cli
