// The xsact_cli application logic, separated from main() for testing.

#ifndef XSACT_CLI_APP_H_
#define XSACT_CLI_APP_H_

#include <ostream>
#include <string>

#include "cli/options.h"
#include "common/statusor.h"
#include "engine/xsact.h"

namespace xsact::cli {

/// Builds a corpus snapshot from one dataset source: a built-in
/// generator name ("products", "outdoor", "movies", honoring `seed`
/// when non-zero) or an XML file path. Router mode builds one snapshot
/// per --dataset binding through this.
StatusOr<engine::SnapshotPtr> BuildSnapshot(const std::string& source,
                                            uint64_t seed);

/// Builds the corpus selected by `options.dataset`: one of the built-in
/// generators (honoring --seed) or an XML file.
StatusOr<engine::Xsact> BuildEngine(const CliOptions& options);

/// Runs the full CLI flow against `out`; returns the process exit code.
int RunApp(const CliOptions& options, std::ostream& out, std::ostream& err);

}  // namespace xsact::cli

#endif  // XSACT_CLI_APP_H_
