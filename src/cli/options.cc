#include "cli/options.h"

#include <cstdlib>

#include "common/string_util.h"

namespace xsact::cli {

namespace {

/// Splits "--flag=value"; returns true when `arg` starts with "--name".
bool MatchFlag(std::string_view arg, std::string_view name,
               std::string_view* value, bool* has_value) {
  if (!StartsWith(arg, "--")) return false;
  std::string_view body = arg.substr(2);
  const size_t eq = body.find('=');
  const std::string_view flag = eq == std::string_view::npos
                                    ? body
                                    : body.substr(0, eq);
  if (flag != name) return false;
  *has_value = eq != std::string_view::npos;
  *value = *has_value ? body.substr(eq + 1) : std::string_view();
  return true;
}

Status NeedValue(std::string_view flag) {
  return Status::InvalidArgument("--" + std::string(flag) +
                                 " requires a value (--" + std::string(flag) +
                                 "=...)");
}

StatusOr<int> ParseInt(std::string_view flag, std::string_view value) {
  char* end = nullptr;
  const std::string text(value);
  const long parsed = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + std::string(flag) +
                                   ": not an integer: '" + text + "'");
  }
  return static_cast<int>(parsed);
}

StatusOr<double> ParseDouble(std::string_view flag, std::string_view value) {
  char* end = nullptr;
  const std::string text(value);
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + std::string(flag) +
                                   ": not a number: '" + text + "'");
  }
  return parsed;
}

}  // namespace

StatusOr<core::SelectorKind> SelectorKindFromName(std::string_view name) {
  if (name == "snippet") return core::SelectorKind::kSnippet;
  if (name == "greedy") return core::SelectorKind::kGreedy;
  if (name == "single-swap" || name == "single") {
    return core::SelectorKind::kSingleSwap;
  }
  if (name == "multi-swap" || name == "multi") {
    return core::SelectorKind::kMultiSwap;
  }
  if (name == "exhaustive") return core::SelectorKind::kExhaustive;
  if (name == "weighted") return core::SelectorKind::kWeightedMultiSwap;
  return Status::InvalidArgument(
      "unknown algorithm '" + std::string(name) +
      "' (snippet|greedy|single-swap|multi-swap|exhaustive|weighted)");
}

StatusOr<OutputFormat> OutputFormatFromName(std::string_view name) {
  if (name == "ascii") return OutputFormat::kAscii;
  if (name == "markdown" || name == "md") return OutputFormat::kMarkdown;
  if (name == "html") return OutputFormat::kHtml;
  if (name == "csv") return OutputFormat::kCsv;
  if (name == "json") return OutputFormat::kJson;
  return Status::InvalidArgument("unknown format '" + std::string(name) +
                                 "' (ascii|markdown|html|csv|json)");
}

bool IsFileDatasetSource(std::string_view source) {
  return EndsWith(source, ".xml") ||
         source.find('/') != std::string_view::npos;
}

StatusOr<CliOptions> ParseCliArgs(int argc, const char* const* argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    bool has_value = false;
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--list") {
      options.list_only = true;
    } else if (arg == "--ranked") {
      options.ranked = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--show-dfs") {
      options.show_dfs = true;
    } else if (arg == "--explain") {
      options.explain = true;
    } else if (MatchFlag(arg, "dataset", &value, &has_value)) {
      if (!has_value || value.empty()) return NeedValue("dataset");
      // "--dataset=name=source" names the corpus for router mode; a
      // plain "--dataset=source" binds name == source. A router name is
      // a simple token, so when the part before '=' contains '/' or '.'
      // the whole value is a verbatim file path (e.g. a file literally
      // named "results=v2.xml" stays addressable as ./results=v2.xml).
      DatasetBinding binding;
      const size_t eq = value.find('=');
      if (eq == std::string_view::npos ||
          value.substr(0, eq).find_first_of("/.") !=
              std::string_view::npos) {
        binding.name = std::string(value);
        binding.source = std::string(value);
      } else {
        binding.name = std::string(value.substr(0, eq));
        binding.source = std::string(value.substr(eq + 1));
        if (binding.name.empty() || binding.source.empty()) {
          return Status::InvalidArgument(
              "--dataset=name=source needs both parts non-empty: '" +
              std::string(value) + "'");
        }
      }
      options.dataset = binding.source;
      options.datasets.push_back(std::move(binding));
    } else if (MatchFlag(arg, "query", &value, &has_value)) {
      if (!has_value || value.empty()) return NeedValue("query");
      options.query = std::string(value);
    } else if (MatchFlag(arg, "algorithm", &value, &has_value)) {
      if (!has_value) return NeedValue("algorithm");
      XSACT_ASSIGN_OR_RETURN(options.algorithm, SelectorKindFromName(value));
    } else if (MatchFlag(arg, "weights", &value, &has_value)) {
      if (!has_value) return NeedValue("weights");
      if (value == "uniform") {
        options.weight_scheme = core::WeightScheme::kUniform;
      } else if (value == "interestingness") {
        options.weight_scheme = core::WeightScheme::kInterestingness;
      } else if (value == "significance") {
        options.weight_scheme = core::WeightScheme::kSignificance;
      } else {
        return Status::InvalidArgument(
            "unknown weight scheme '" + std::string(value) +
            "' (uniform|interestingness|significance)");
      }
    } else if (MatchFlag(arg, "format", &value, &has_value)) {
      if (!has_value) return NeedValue("format");
      XSACT_ASSIGN_OR_RETURN(options.format, OutputFormatFromName(value));
    } else if (MatchFlag(arg, "lift", &value, &has_value)) {
      if (!has_value) return NeedValue("lift");
      options.lift = std::string(value);
    } else if (MatchFlag(arg, "bound", &value, &has_value)) {
      if (!has_value) return NeedValue("bound");
      XSACT_ASSIGN_OR_RETURN(const int bound, ParseInt("bound", value));
      if (bound <= 0) {
        return Status::InvalidArgument("--bound must be positive");
      }
      options.bound = bound;
    } else if (MatchFlag(arg, "max-results", &value, &has_value)) {
      if (!has_value) return NeedValue("max-results");
      XSACT_ASSIGN_OR_RETURN(const int n, ParseInt("max-results", value));
      if (n < 0) {
        return Status::InvalidArgument("--max-results must be >= 0");
      }
      options.max_results = static_cast<size_t>(n);
    } else if (MatchFlag(arg, "threshold", &value, &has_value)) {
      if (!has_value) return NeedValue("threshold");
      XSACT_ASSIGN_OR_RETURN(const double x, ParseDouble("threshold", value));
      if (x < 0) {
        return Status::InvalidArgument("--threshold must be >= 0");
      }
      options.threshold = x;
    } else if (MatchFlag(arg, "seed", &value, &has_value)) {
      if (!has_value) return NeedValue("seed");
      XSACT_ASSIGN_OR_RETURN(const int seed, ParseInt("seed", value));
      options.seed = static_cast<uint64_t>(seed);
    } else if (arg == "--cache") {
      options.cache = true;
    } else if (arg == "--serve") {
      options.serve = true;
    } else if (MatchFlag(arg, "port", &value, &has_value)) {
      if (!has_value) return NeedValue("port");
      XSACT_ASSIGN_OR_RETURN(const int port, ParseInt("port", value));
      if (port < 0 || port > 65535) {
        return Status::InvalidArgument("--port must be in [0, 65535]");
      }
      options.port = port;
    } else if (MatchFlag(arg, "drain-ms", &value, &has_value)) {
      if (!has_value) return NeedValue("drain-ms");
      XSACT_ASSIGN_OR_RETURN(const int ms, ParseInt("drain-ms", value));
      if (ms < 0) {
        return Status::InvalidArgument("--drain-ms must be >= 0");
      }
      options.drain_ms = ms;
    } else if (arg == "--watch") {
      options.watch = true;
    } else if (MatchFlag(arg, "max-reloads", &value, &has_value)) {
      if (!has_value) return NeedValue("max-reloads");
      XSACT_ASSIGN_OR_RETURN(const int n, ParseInt("max-reloads", value));
      if (n < 0) {
        return Status::InvalidArgument("--max-reloads must be >= 0");
      }
      options.max_reloads = n;
    } else if (MatchFlag(arg, "threads", &value, &has_value)) {
      if (!has_value) return NeedValue("threads");
      XSACT_ASSIGN_OR_RETURN(const int threads, ParseInt("threads", value));
      if (threads < 0) {
        return Status::InvalidArgument("--threads must be >= 0");
      }
      options.threads = threads;
    } else if (MatchFlag(arg, "repeat", &value, &has_value)) {
      if (!has_value) return NeedValue("repeat");
      XSACT_ASSIGN_OR_RETURN(const int repeat, ParseInt("repeat", value));
      if (repeat <= 0) {
        return Status::InvalidArgument("--repeat must be positive");
      }
      options.repeat = repeat;
    } else if (MatchFlag(arg, "deadline-ms", &value, &has_value)) {
      if (!has_value) return NeedValue("deadline-ms");
      XSACT_ASSIGN_OR_RETURN(const int ms, ParseInt("deadline-ms", value));
      if (ms < 0) {
        return Status::InvalidArgument("--deadline-ms must be >= 0");
      }
      options.deadline_ms = ms;
    } else if (MatchFlag(arg, "max-queue", &value, &has_value)) {
      if (!has_value) return NeedValue("max-queue");
      XSACT_ASSIGN_OR_RETURN(const int n, ParseInt("max-queue", value));
      if (n < 0) {
        return Status::InvalidArgument("--max-queue must be >= 0");
      }
      options.max_queue = n;
    } else {
      return Status::InvalidArgument("unknown argument '" + std::string(arg) +
                                     "'; see --help");
    }
  }
  // --stats alone is a valid single-dataset invocation (print corpus and
  // index statistics, no query evaluation); router mode still needs one.
  // --serve takes queries over HTTP, so none is needed on the command
  // line.
  const bool stats_only = options.stats && options.datasets.size() < 2;
  if (!options.help && !stats_only && !options.serve &&
      options.query.empty()) {
    return Status::InvalidArgument("--query is required; see --help");
  }
  if (options.serve) {
    if (options.watch || options.list_only || options.ranked) {
      return Status::InvalidArgument(
          "--serve is a network serving mode; drop --watch/--list/--ranked");
    }
    if (options.repeat > 1) {
      return Status::InvalidArgument(
          "--repeat is a load-generation mode; load the server over HTTP "
          "instead");
    }
  } else {
    if (options.port != 0) {
      return Status::InvalidArgument("--port needs --serve");
    }
    if (options.drain_ms != 2000) {
      return Status::InvalidArgument("--drain-ms needs --serve");
    }
  }
  for (size_t i = 0; i < options.datasets.size(); ++i) {
    for (size_t j = i + 1; j < options.datasets.size(); ++j) {
      if (options.datasets[i].name == options.datasets[j].name) {
        return Status::InvalidArgument("duplicate dataset name '" +
                                       options.datasets[i].name + "'");
      }
    }
  }
  if (options.datasets.size() >= 2) {
    if (options.list_only || options.ranked) {
      return Status::InvalidArgument(
          "--list/--ranked are single-dataset modes; drop the extra "
          "--dataset flags");
    }
    if (options.watch) {
      // Router watch polls file-backed datasets only; at least one must
      // be a file, or there is nothing to watch.
      bool any_file = false;
      for (const DatasetBinding& binding : options.datasets) {
        any_file = any_file || IsFileDatasetSource(binding.source);
      }
      if (!any_file) {
        return Status::InvalidArgument(
            "--watch needs at least one file dataset (name=path/to.xml)");
      }
    }
  } else if (options.watch && !IsFileDatasetSource(options.dataset)) {
    return Status::InvalidArgument(
        "--watch requires a file dataset (path/to/file.xml)");
  }
  // Admission control lives in QueryService; the synchronous
  // single-dataset path never constructs one, so these flags would be
  // silently ignored there.
  const bool uses_service = options.threads > 0 || options.repeat > 1 ||
                            options.cache || options.watch || options.serve ||
                            options.datasets.size() >= 2;
  if ((options.deadline_ms > 0 || options.max_queue > 0) && !uses_service &&
      !options.help) {
    return Status::InvalidArgument(
        "--deadline-ms/--max-queue need a serving mode (--threads, "
        "--repeat, --cache, --watch, or multiple --dataset flags)");
  }
  return options;
}

std::string CliUsage() {
  return
      "xsact_cli - compare structured keyword-search results (XSACT)\n"
      "\n"
      "usage: xsact_cli --query=KEYWORDS [options]\n"
      "\n"
      "options:\n"
      "  --dataset=NAME       products | outdoor | movies | path/to.xml\n"
      "                       (default: products); repeat as\n"
      "                       --dataset=name=source to serve several\n"
      "                       corpora through one ServiceRouter\n"
      "  --query=KEYWORDS     keyword query, e.g. --query=\"tomtom gps\"\n"
      "  --algorithm=ALGO     snippet | greedy | single-swap | multi-swap |\n"
      "                       exhaustive | weighted  (default: multi-swap)\n"
      "  --weights=SCHEME     uniform | interestingness | significance\n"
      "                       (for --algorithm=weighted)\n"
      "  --bound=L            DFS size bound (default: 6)\n"
      "  --max-results=N      compare at most N results, 0 = all (default 4)\n"
      "  --threshold=X        differentiability threshold (default 0.10)\n"
      "  --lift=TAG           lift results to the enclosing TAG entity\n"
      "  --format=FMT         ascii | markdown | html | csv | json\n"
      "  --seed=N             dataset generator seed override\n"
      "  --threads=N          serve through a QueryService with N worker\n"
      "                       threads (load generation; 0 = synchronous)\n"
      "  --repeat=N           submit the query N times (default 1); with\n"
      "                       --threads prints aggregate throughput\n"
      "  --deadline-ms=N      per-request deadline: tasks still queued\n"
      "                       after N ms resolve to 'deadline exceeded'\n"
      "                       (0 = none)\n"
      "  --max-queue=N        bound the admission queue; overflow\n"
      "                       submissions are shed with 'resource\n"
      "                       exhausted' (0 = unbounded)\n"
      "  --cache              enable the QueryService result cache and\n"
      "                       print hit/miss counters\n"
      "  --serve              serve the dataset(s) over HTTP on 127.0.0.1\n"
      "                       (endpoints /query /healthz /statz; see\n"
      "                       docs/serving.md); drains gracefully on\n"
      "                       SIGTERM/SIGINT\n"
      "  --port=N             --serve TCP port (default 0 = kernel picks;\n"
      "                       the bound port is printed at startup)\n"
      "  --drain-ms=N         --serve graceful-drain budget: in-flight\n"
      "                       requests get N ms after SIGTERM before the\n"
      "                       engine is hard-cancelled (default 2000)\n"
      "  --watch              serve, then watch the XML file and hot-swap\n"
      "                       the corpus snapshot whenever it changes\n"
      "                       (file datasets only; re-prints the table)\n"
      "  --max-reloads=N      exit --watch after N reloads (0 = forever)\n"
      "  --ranked             order results by relevance\n"
      "  --list               only list results (with snippets)\n"
      "  --stats              print corpus/index statistics (terms,\n"
      "                       postings, compressed vs raw index bytes)\n"
      "  --show-dfs           also print the selected DFS per result\n"
      "  --explain            also print natural-language differences\n"
      "  --help               this text\n";
}

}  // namespace xsact::cli
