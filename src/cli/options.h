// Command-line options for the xsact_cli tool (the terminal rendition of
// the demo's web UI, Figure 5). Parsing is a pure function so it is unit
// tested apart from the binary.

#ifndef XSACT_CLI_OPTIONS_H_
#define XSACT_CLI_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/selector.h"
#include "core/weights.h"

namespace xsact::cli {

/// Output format for the comparison table.
enum class OutputFormat { kAscii, kMarkdown, kHtml, kCsv, kJson };

/// One named corpus for router mode: `--dataset name=source` binds a
/// router dataset name to a built-in generator or an XML file path.
struct DatasetBinding {
  std::string name;
  std::string source;
};

/// Parsed command line.
struct CliOptions {
  /// Built-in dataset name ("products", "outdoor", "movies") or a path to
  /// an XML file (detected by a ".xml" suffix or an existing "/").
  std::string dataset = "products";
  /// Every --dataset occurrence, in command-line order. Two or more
  /// entries switch the app into router mode (engine::ServiceRouter, one
  /// QueryService per dataset); a plain `--dataset=src` binds name=src.
  std::vector<DatasetBinding> datasets;
  std::string query;
  core::SelectorKind algorithm = core::SelectorKind::kMultiSwap;
  core::WeightScheme weight_scheme = core::WeightScheme::kInterestingness;
  OutputFormat format = OutputFormat::kAscii;
  std::string lift;          ///< --lift=brand: compare enclosing entities
  int bound = 6;             ///< DFS size bound L
  size_t max_results = 4;    ///< compare at most this many results (0=all)
  double threshold = 0.10;   ///< differentiability threshold x
  uint64_t seed = 0;         ///< generator seed override (0 = default)
  int threads = 0;           ///< >0: serve through a QueryService pool
  int repeat = 1;            ///< submit the query N times (load generation)
  int deadline_ms = 0;       ///< per-request deadline in ms (0 = none)
  int max_queue = 0;         ///< admission queue bound (0 = unbounded)
  bool cache = false;        ///< enable the QueryService result cache
  bool serve = false;        ///< run the HTTP front-end (src/server/)
  int port = 0;              ///< --serve TCP port (0 = kernel-assigned)
  int drain_ms = 2000;       ///< --serve graceful-drain budget on SIGTERM
  bool watch = false;        ///< watch a file dataset, hot-swap on change
  int max_reloads = 0;       ///< stop --watch after N reloads (0 = forever)
  bool stats = false;        ///< print corpus/index statistics
  bool list_only = false;    ///< print the result list, no comparison
  bool ranked = false;       ///< order results by relevance
  bool show_dfs = false;     ///< also print each DFS
  bool explain = false;      ///< also print natural-language differences
  bool help = false;
};

/// Parses argv (argv[0] is skipped). Unknown flags, malformed values and
/// missing arguments yield kInvalidArgument with an explanatory message.
StatusOr<CliOptions> ParseCliArgs(int argc, const char* const* argv);

/// Human-readable usage text.
std::string CliUsage();

/// Maps an algorithm name ("snippet", "greedy", "single-swap",
/// "multi-swap", "exhaustive", "weighted") to a SelectorKind.
StatusOr<core::SelectorKind> SelectorKindFromName(std::string_view name);

/// Maps a format name to OutputFormat.
StatusOr<OutputFormat> OutputFormatFromName(std::string_view name);

/// True when a dataset source is an XML file path (".xml" suffix or a
/// "/" in it) rather than a built-in generator name.
bool IsFileDatasetSource(std::string_view source);

}  // namespace xsact::cli

#endif  // XSACT_CLI_OPTIONS_H_
