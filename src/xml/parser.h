// From-scratch, dependency-free XML parser.
//
// Supports the XML subset needed by realistic data files: elements,
// attributes (single/double quoted), character data, entity references
// (&amp; &lt; &gt; &quot; &apos; plus numeric &#NN; / &#xHH;), comments,
// CDATA sections, processing instructions, XML declarations and DOCTYPE
// (skipped). Namespaces are treated as part of the tag name. Errors are
// reported with 1-based line/column positions.

#ifndef XSACT_XML_PARSER_H_
#define XSACT_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/statusor.h"
#include "xml/document.h"

namespace xsact::xml {

/// Parser options.
struct ParseOptions {
  /// Drop text nodes that contain only whitespace (pretty-printing noise).
  bool skip_whitespace_text = true;
  /// Reject trailing non-whitespace content after the root element.
  bool strict_trailing = true;
};

/// Parses `input` into a Document, or returns a kParseError status with
/// the 1-based line:column of the first problem.
StatusOr<Document> Parse(std::string_view input, ParseOptions options = {});

/// Decodes XML entities in a character-data run.
/// Unknown entities are passed through verbatim (lenient mode).
std::string DecodeEntities(std::string_view text);

}  // namespace xsact::xml

#endif  // XSACT_XML_PARSER_H_
