// From-scratch, dependency-free XML parser — zero-copy arena edition.
//
// Supports the XML subset needed by realistic data files: elements,
// attributes (single/double quoted), character data, entity references
// (&amp; &lt; &gt; &quot; &apos; plus numeric &#NN; / &#xHH;), comments,
// CDATA sections, processing instructions, XML declarations and DOCTYPE
// (skipped). Namespaces are treated as part of the tag name. Errors are
// reported with 1-based line/column positions, byte-identical to the
// seed parser's messages (pinned by tests/xml_parser_equiv_test.cc).
//
// The parser makes a single pass over the input. The produced Document
// RETAINS the input text: tags, attribute names/values and character data
// are string_views into that buffer (only the rare strings containing
// entity references are decoded into a side arena), and every Node is
// allocated contiguously in pre-order from a flat arena — no
// pointer-per-node DOM, no per-node string copies. Because arena order is
// pre-order, ParseCorpus fuses the NodeTable build into the parse: ids,
// parents, Dewey labels and subtree extents are assigned as tags close.

#ifndef XSACT_XML_PARSER_H_
#define XSACT_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/statusor.h"
#include "xml/document.h"
#include "xml/path.h"

namespace xsact::xml {

/// Parser options.
struct ParseOptions {
  /// Drop text nodes that contain only whitespace (pretty-printing noise).
  bool skip_whitespace_text = true;
  /// Reject trailing non-whitespace content after the root element.
  bool strict_trailing = true;
};

/// Parses `input` into a Document, or returns a kParseError status with
/// the 1-based line:column of the first problem. The document keeps its
/// own copy of `input` as the view backing buffer; prefer ParseRetained /
/// ParseCorpus when the caller can hand the string over.
StatusOr<Document> Parse(std::string_view input, ParseOptions options = {});

/// Zero-copy variant: moves `text` into the Document (no copy at all —
/// the single fread of xml/io.cc is the only time corpus bytes are
/// touched before parsing).
StatusOr<Document> ParseRetained(std::string text, ParseOptions options = {});

/// A parsed corpus: the arena document plus the NodeTable built by the
/// same pass (fused — no second tree walk).
struct ParsedCorpus {
  Document doc;
  NodeTable table;
};

/// Parses `text` and emits document + node table in one fused pass.
StatusOr<ParsedCorpus> ParseCorpus(std::string text,
                                   ParseOptions options = {});

/// Decodes XML entities in a character-data run.
/// Unknown entities are passed through verbatim (lenient mode).
std::string DecodeEntities(std::string_view text);

}  // namespace xsact::xml

#endif  // XSACT_XML_PARSER_H_
