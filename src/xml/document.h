// Document: owner of a parsed / constructed XML tree.
//
// Two storage modes share one type:
//   * Arena documents (from the zero-copy parser) retain the raw corpus
//     text and hold every Node contiguously in pre-order inside a flat
//     arena; tag/text/attribute views point into the retained text (or
//     into a small side arena holding the rare entity-decoded strings).
//   * Programmatic documents own a heap root built with Node::MakeElement
//     and friends (dataset generators, tests); each node owns its
//     strings.
// Either way the Document is the sole owner: moving it keeps every
// Node* stable (the arena's heap buffer moves with it).

#ifndef XSACT_XML_DOCUMENT_H_
#define XSACT_XML_DOCUMENT_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "xml/node.h"

namespace xsact::xml {

/// An XML document: a single owned root element.
class Document {
 public:
  Document() = default;

  /// Takes ownership of a root element.
  explicit Document(std::unique_ptr<Node> root)
      : owned_root_(std::move(root)), root_(owned_root_.get()) {}

  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Creates a document with a fresh `<tag>` root and returns it.
  static Document WithRoot(std::string tag) {
    return Document(Node::MakeElement(std::move(tag)));
  }

  /// The root element (nullptr for an empty document).
  Node* root() const { return root_; }

  /// True iff no root has been set.
  bool empty() const { return root_ == nullptr; }

  /// True iff the nodes live contiguously in pre-order in this
  /// document's arena (zero-copy parsed documents).
  bool is_arena() const { return !arena_.empty(); }
  const Node* arena_data() const { return arena_.data(); }
  size_t arena_size() const { return arena_.size(); }

  /// The retained source text an arena document's views point into
  /// (empty for programmatic documents).
  const std::string& source() const {
    static const std::string kEmpty;
    return source_ != nullptr ? *source_ : kEmpty;
  }

  /// Total number of nodes (0 when empty). O(1) for arena documents.
  size_t NodeCount() const {
    if (is_arena()) return arena_.size();
    return root_ != nullptr ? root_->SubtreeSize() : 0;
  }

  /// Pre-order depth-first traversal; the visitor receives every node
  /// (elements and text) together with its depth (root = 0).
  void Visit(const std::function<void(const Node&, int depth)>& fn) const;

  /// Deep copy. The clone owns its strings, so it is independent of this
  /// document's arena / source buffer.
  Document Clone() const {
    return root_ != nullptr ? Document(root_->Clone()) : Document();
  }

 private:
  friend class ArenaParser;

  /// Retained corpus text (arena docs). Boxed so moving the Document can
  /// never relocate the bytes the node views point into (a short
  /// std::string's SSO buffer would move with the object).
  std::unique_ptr<std::string> source_;
  std::deque<std::string> decoded_;  // entity-unescaped side arena
  std::vector<Node> arena_;          // pre-order contiguous node storage
  std::unique_ptr<Node> owned_root_;  // programmatic documents
  Node* root_ = nullptr;
};

}  // namespace xsact::xml

#endif  // XSACT_XML_DOCUMENT_H_
