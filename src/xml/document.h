// Document: owner of a parsed / constructed XML tree.

#ifndef XSACT_XML_DOCUMENT_H_
#define XSACT_XML_DOCUMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "xml/node.h"

namespace xsact::xml {

/// An XML document: a single owned root element.
class Document {
 public:
  Document() = default;

  /// Takes ownership of a root element.
  explicit Document(std::unique_ptr<Node> root) : root_(std::move(root)) {}

  /// Creates a document with a fresh `<tag>` root and returns it.
  static Document WithRoot(std::string tag) {
    return Document(Node::MakeElement(std::move(tag)));
  }

  /// The root element (nullptr for an empty document).
  Node* root() const { return root_.get(); }

  /// True iff no root has been set.
  bool empty() const { return root_ == nullptr; }

  /// Total number of nodes (0 when empty).
  size_t NodeCount() const { return root_ ? root_->SubtreeSize() : 0; }

  /// Pre-order depth-first traversal; the visitor receives every node
  /// (elements and text) together with its depth (root = 0).
  void Visit(const std::function<void(const Node&, int depth)>& fn) const;

  /// Deep copy.
  Document Clone() const {
    return root_ ? Document(root_->Clone()) : Document();
  }

 private:
  std::unique_ptr<Node> root_;
};

}  // namespace xsact::xml

#endif  // XSACT_XML_DOCUMENT_H_
