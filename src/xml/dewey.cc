#include "xml/dewey.h"

namespace xsact::xml {

std::string DeweyId::ToString() const {
  if (empty()) return "ε";
  std::string out;
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(data_[i]);
  }
  return out;
}

}  // namespace xsact::xml
