// Minimal path queries over the DOM and a node table keyed by Dewey ids.
//
// The node table assigns every node a pre-order integer id and its Dewey
// label; it is the bridge between the DOM and the search engine's posting
// lists (which store node ids, not pointers).

#ifndef XSACT_XML_PATH_H_
#define XSACT_XML_PATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/dewey.h"
#include "xml/document.h"

namespace xsact::xml {

/// Dense pre-order id of a node within one document.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNodeId = -1;

/// Immutable side table: node pointers, Dewey labels, parent links and tag
/// paths for every node of a document, indexed by pre-order NodeId.
class NodeTable {
 public:
  /// Builds the table for `doc` (re-build after any mutation).
  static NodeTable Build(const Document& doc);

  /// Number of nodes.
  size_t size() const { return nodes_.size(); }

  const Node* node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  const DeweyId& dewey(NodeId id) const {
    return deweys_[static_cast<size_t>(id)];
  }
  NodeId parent(NodeId id) const { return parents_[static_cast<size_t>(id)]; }

  /// The id of `node`, or kInvalidNodeId if the node is not in this table.
  NodeId IdOf(const Node* node) const;

  /// Id of the node with exactly this Dewey label, or kInvalidNodeId.
  NodeId FindByDewey(const DeweyId& dewey) const;

  /// Slash-separated tag path from the root, e.g. "catalog/product/name".
  std::string TagPath(NodeId id) const;

 private:
  std::vector<const Node*> nodes_;
  std::vector<DeweyId> deweys_;
  std::vector<NodeId> parents_;
  std::unordered_map<const Node*, NodeId> ids_;
};

/// Evaluates an absolute slash path ("/catalog/product/name") against the
/// document; returns all matching elements in document order. A leading
/// slash is optional; the first component must match the root tag.
std::vector<const Node*> SelectPath(const Document& doc,
                                    std::string_view path);

/// All descendant elements (including `root` itself) with the given tag.
std::vector<const Node*> SelectByTag(const Node& root, std::string_view tag);

}  // namespace xsact::xml

#endif  // XSACT_XML_PATH_H_
