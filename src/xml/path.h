// Minimal path queries over the DOM and a node table keyed by Dewey ids.
//
// The node table assigns every node a pre-order integer id and its Dewey
// label; it is the bridge between the DOM and the search engine's posting
// lists (which store node ids, not pointers). For arena documents the
// table is produced by the parser itself (fused build, see xml/parser.h):
// ids, parents, Dewey labels and subtree extents are assigned while tags
// close, so no second tree walk ever happens. IdOf reads the id stamped
// on the node (validated against the table) — the seed's
// unordered_map<const Node*, NodeId> is gone.

#ifndef XSACT_XML_PATH_H_
#define XSACT_XML_PATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xml/dewey.h"
#include "xml/document.h"

namespace xsact::xml {

/// Dense pre-order id of a node within one document.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNodeId = -1;

/// Immutable side table: node pointers, Dewey labels, parent links,
/// subtree extents and tag paths for every node of a document, indexed by
/// pre-order NodeId.
class NodeTable {
 public:
  /// Builds the table for `doc` (re-build after any mutation). Arena
  /// documents get a linear, recursion-free sweep; prefer ParseCorpus,
  /// which emits the table during the parse itself.
  static NodeTable Build(const Document& doc);

  /// Number of nodes.
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  const Node* node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  const DeweyId& dewey(NodeId id) const {
    return deweys_[static_cast<size_t>(id)];
  }
  NodeId parent(NodeId id) const { return parents_[static_cast<size_t>(id)]; }

  /// One past the last pre-order id of the subtree rooted at `id`
  /// (subtrees are contiguous id ranges, so the subtree node count is
  /// subtree_end(id) - id).
  NodeId subtree_end(NodeId id) const {
    return subtree_end_[static_cast<size_t>(id)];
  }

  /// The id of `node`, or kInvalidNodeId if the node is not in this
  /// table. O(1): reads the id stamped on the node during the build and
  /// validates it against the table, so foreign nodes never alias.
  NodeId IdOf(const Node* node) const {
    if (node == nullptr) return kInvalidNodeId;
    const NodeId id = node->table_id_;
    if (id >= 0 && static_cast<size_t>(id) < nodes_.size() &&
        nodes_[static_cast<size_t>(id)] == node) {
      return id;
    }
    return kInvalidNodeId;
  }

  /// Id of the node with exactly this Dewey label, or kInvalidNodeId.
  NodeId FindByDewey(const DeweyId& dewey) const;

  /// Slash-separated tag path from the root, e.g. "catalog/product/name".
  std::string TagPath(NodeId id) const;

 private:
  friend class ArenaParser;

  std::vector<const Node*> nodes_;
  std::vector<DeweyId> deweys_;
  std::vector<NodeId> parents_;
  std::vector<NodeId> subtree_end_;
};

/// Evaluates an absolute slash path ("/catalog/product/name") against the
/// document; returns all matching elements in document order. A leading
/// slash is optional; the first component must match the root tag.
std::vector<const Node*> SelectPath(const Document& doc,
                                    std::string_view path);

/// All descendant elements (including `root` itself) with the given tag.
std::vector<const Node*> SelectByTag(const Node& root, std::string_view tag);

}  // namespace xsact::xml

#endif  // XSACT_XML_PATH_H_
