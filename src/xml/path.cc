#include "xml/path.h"

#include <unordered_map>

#include "common/string_util.h"

namespace xsact::xml {

namespace {

void BuildImpl(const Node* node, DeweyId* dewey, NodeId parent,
               std::vector<const Node*>* nodes, std::vector<DeweyId>* deweys,
               std::vector<NodeId>* parents) {
  const NodeId my_id = static_cast<NodeId>(nodes->size());
  nodes->push_back(node);
  deweys->push_back(*dewey);
  parents->push_back(parent);
  int32_t child_index = 0;
  for (const auto& child : node->children()) {
    dewey->Push(child_index++);
    BuildImpl(child.get(), dewey, my_id, nodes, deweys, parents);
    dewey->Pop();
  }
}

}  // namespace

NodeTable NodeTable::Build(const Document& doc) {
  NodeTable table;
  if (!doc.empty()) {
    DeweyId dewey;
    BuildImpl(doc.root(), &dewey, kInvalidNodeId, &table.nodes_,
              &table.deweys_, &table.parents_);
    table.ids_.reserve(table.nodes_.size());
    for (size_t i = 0; i < table.nodes_.size(); ++i) {
      table.ids_.emplace(table.nodes_[i], static_cast<NodeId>(i));
    }
  }
  return table;
}

NodeId NodeTable::IdOf(const Node* node) const {
  auto it = ids_.find(node);
  return it == ids_.end() ? kInvalidNodeId : it->second;
}

NodeId NodeTable::FindByDewey(const DeweyId& dewey) const {
  // Dewey labels are in pre-order, and so is the table: binary search.
  size_t lo = 0;
  size_t hi = deweys_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (deweys_[mid] < dewey) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < deweys_.size() && deweys_[lo] == dewey) {
    return static_cast<NodeId>(lo);
  }
  return kInvalidNodeId;
}

std::string NodeTable::TagPath(NodeId id) const {
  std::vector<std::string> parts;
  for (NodeId cur = id; cur != kInvalidNodeId; cur = parent(cur)) {
    const Node* n = node(cur);
    parts.push_back(n->is_element() ? n->tag() : "#text");
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out.push_back('/');
    out += *it;
  }
  return out;
}

std::vector<const Node*> SelectPath(const Document& doc,
                                    std::string_view path) {
  std::vector<const Node*> current;
  if (doc.empty()) return current;
  std::string_view trimmed = path;
  if (!trimmed.empty() && trimmed.front() == '/') trimmed.remove_prefix(1);
  const std::vector<std::string> parts = Split(trimmed, '/');
  if (parts.empty() || parts[0].empty()) return current;
  if (doc.root()->tag() != parts[0]) return current;
  current.push_back(doc.root());
  for (size_t i = 1; i < parts.size(); ++i) {
    std::vector<const Node*> next;
    for (const Node* n : current) {
      for (const auto& child : n->children()) {
        if (child->is_element() && child->tag() == parts[i]) {
          next.push_back(child.get());
        }
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

namespace {

void SelectByTagImpl(const Node& node, std::string_view tag,
                     std::vector<const Node*>* out) {
  if (node.is_element() && node.tag() == tag) out->push_back(&node);
  for (const auto& child : node.children()) {
    SelectByTagImpl(*child, tag, out);
  }
}

}  // namespace

std::vector<const Node*> SelectByTag(const Node& root, std::string_view tag) {
  std::vector<const Node*> out;
  SelectByTagImpl(root, tag, &out);
  return out;
}

}  // namespace xsact::xml
