#include "xml/path.h"

#include "common/string_util.h"

namespace xsact::xml {

NodeTable NodeTable::Build(const Document& doc) {
  NodeTable table;
  if (doc.empty()) return table;
  const size_t n = doc.NodeCount();
  table.nodes_.reserve(n);
  table.deweys_.reserve(n);
  table.parents_.reserve(n);
  table.subtree_end_.assign(n, 0);

  // Iterative pre-order walk carrying the Dewey path; works for both
  // arena and programmatic documents. Subtree extents are assigned when a
  // node's subtree is exhausted (the analogue of "as tags close").
  struct Frame {
    const Node* node;
    NodeId id;
  };
  std::vector<Frame> stack;
  DeweyId dewey;
  const Node* cur = doc.root();
  NodeId parent = kInvalidNodeId;
  int32_t ordinal = 0;
  for (;;) {
    const NodeId id = static_cast<NodeId>(table.nodes_.size());
    cur->table_id_ = id;
    table.nodes_.push_back(cur);
    table.deweys_.push_back(dewey);
    table.parents_.push_back(parent);
    if (cur->first_child() != nullptr) {
      stack.push_back(Frame{cur, id});
      dewey.Push(0);
      parent = id;
      cur = cur->first_child();
      continue;
    }
    table.subtree_end_[static_cast<size_t>(id)] = id + 1;
    // Ascend until a next sibling exists, closing subtrees on the way.
    const Node* next = cur->next_sibling();
    while (next == nullptr && !stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      dewey.Pop();
      table.subtree_end_[static_cast<size_t>(frame.id)] =
          static_cast<NodeId>(table.nodes_.size());
      next = frame.node->next_sibling();
      cur = frame.node;
      parent = stack.empty() ? kInvalidNodeId : stack.back().id;
    }
    if (next == nullptr) break;  // root closed
    // Step to the sibling: bump the trailing Dewey component.
    ordinal = dewey.back() + 1;
    dewey.Pop();
    dewey.Push(ordinal);
    cur = next;
    parent = stack.empty() ? kInvalidNodeId : stack.back().id;
  }
  return table;
}

NodeId NodeTable::FindByDewey(const DeweyId& dewey) const {
  // Dewey labels are in pre-order, and so is the table: binary search.
  size_t lo = 0;
  size_t hi = deweys_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (deweys_[mid] < dewey) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < deweys_.size() && deweys_[lo] == dewey) {
    return static_cast<NodeId>(lo);
  }
  return kInvalidNodeId;
}

std::string NodeTable::TagPath(NodeId id) const {
  std::vector<std::string_view> parts;
  for (NodeId cur = id; cur != kInvalidNodeId; cur = parent(cur)) {
    const Node* n = node(cur);
    parts.push_back(n->is_element() ? n->tag() : std::string_view("#text"));
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out.push_back('/');
    out.append(*it);
  }
  return out;
}

std::vector<const Node*> SelectPath(const Document& doc,
                                    std::string_view path) {
  std::vector<const Node*> current;
  if (doc.empty()) return current;
  std::string_view trimmed = path;
  if (!trimmed.empty() && trimmed.front() == '/') trimmed.remove_prefix(1);
  const std::vector<std::string> parts = Split(trimmed, '/');
  if (parts.empty() || parts[0].empty()) return current;
  if (doc.root()->tag() != parts[0]) return current;
  current.push_back(doc.root());
  for (size_t i = 1; i < parts.size(); ++i) {
    std::vector<const Node*> next;
    for (const Node* n : current) {
      for (const Node* child : n->children()) {
        if (child->is_element() && child->tag() == parts[i]) {
          next.push_back(child);
        }
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

namespace {

void SelectByTagImpl(const Node& node, std::string_view tag,
                     std::vector<const Node*>* out) {
  if (node.is_element() && node.tag() == tag) out->push_back(&node);
  for (const Node* child : node.children()) {
    SelectByTagImpl(*child, tag, out);
  }
}

}  // namespace

std::vector<const Node*> SelectByTag(const Node& root, std::string_view tag) {
  std::vector<const Node*> out;
  SelectByTagImpl(root, tag, &out);
  return out;
}

}  // namespace xsact::xml
