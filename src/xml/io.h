// File I/O for XML documents: the demo's datasets live as XML files on
// disk; these helpers load and persist them with Status-based errors.

#ifndef XSACT_XML_IO_H_
#define XSACT_XML_IO_H_

#include <string>
#include <string_view>

#include "common/statusor.h"
#include "xml/document.h"
#include "xml/writer.h"

namespace xsact::xml {

/// Reads a whole file into a string (kIoError on failure).
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view content);

/// Parses an XML file into a Document.
StatusOr<Document> ParseFile(const std::string& path);

/// Serializes a document to a file (pretty-printed by default).
Status WriteDocumentToFile(const Document& doc, const std::string& path,
                           WriteOptions options = {.indent_width = 2,
                                                   .declaration = true});

}  // namespace xsact::xml

#endif  // XSACT_XML_IO_H_
