// File I/O for XML documents: the demo's datasets live as XML files on
// disk; these helpers load and persist them with Status-based errors.

#ifndef XSACT_XML_IO_H_
#define XSACT_XML_IO_H_

#include <string>
#include <string_view>

#include "common/statusor.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xsact::xml {

/// Reads a whole file into a string (kIoError on failure).
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view content);

/// Parses an XML file into a Document (single pre-sized read; the
/// document retains the buffer, so parsing is zero-copy).
StatusOr<Document> ParseFile(const std::string& path);

/// Like ParseFile, but also emits the NodeTable fused into the same
/// parsing pass — the fastest way to load a corpus for indexing.
StatusOr<ParsedCorpus> ParseCorpusFile(const std::string& path);

/// Serializes a document to a file (pretty-printed by default).
Status WriteDocumentToFile(const Document& doc, const std::string& path,
                           WriteOptions options = {.indent_width = 2,
                                                   .declaration = true});

}  // namespace xsact::xml

#endif  // XSACT_XML_IO_H_
