#include "xml/node.h"

#include "common/string_util.h"

namespace xsact::xml {

namespace {

void CollectText(const Node& node, std::string* out) {
  if (node.is_text()) {
    if (!out->empty() && !node.text().empty()) out->push_back(' ');
    out->append(Trim(node.text()));
    return;
  }
  for (const Node* child : node.children()) CollectText(*child, out);
}

}  // namespace

std::string Node::InnerText() const {
  std::string out;
  CollectText(*this, &out);
  return std::string(Trim(out));
}

std::string_view Node::InnerTextView(std::string* scratch) const {
  scratch->clear();
  CollectText(*this, scratch);
  return Trim(*scratch);
}

size_t Node::SubtreeSize() const {
  size_t n = 1;
  for (const Node* c : children()) n += c->SubtreeSize();
  return n;
}

std::unique_ptr<Node> Node::Clone() const {
  std::unique_ptr<Node> copy = is_element() ? MakeElement(std::string(data_))
                                            : MakeText(std::string(data_));
  for (const auto& [name, value] : attributes_) {
    copy->AddAttribute(std::string(name), std::string(value));
  }
  for (const Node* c : children()) copy->AddChild(c->Clone());
  return copy;
}

}  // namespace xsact::xml
