// DOM node for XSACT's XML substrate.
//
// XSACT consumes "structured search results"; in the paper both demo
// datasets (Product Reviews, Outdoor Retailer) and the evaluation dataset
// (IMDB movies) are XML. This is a deliberately small, fully owned DOM:
// elements with attributes and ordered children, plus text nodes.

#ifndef XSACT_XML_NODE_H_
#define XSACT_XML_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xsact::xml {

/// A node in the document tree: either an element or a text node.
class Node {
 public:
  enum class Kind { kElement, kText };

  /// Creates an element node with the given tag.
  static std::unique_ptr<Node> MakeElement(std::string tag) {
    auto n = std::unique_ptr<Node>(new Node(Kind::kElement));
    n->tag_ = std::move(tag);
    return n;
  }

  /// Creates a text node with the given content.
  static std::unique_ptr<Node> MakeText(std::string text) {
    auto n = std::unique_ptr<Node>(new Node(Kind::kText));
    n->text_ = std::move(text);
    return n;
  }

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Element tag name (empty for text nodes).
  const std::string& tag() const { return tag_; }

  /// Text content (empty for element nodes).
  const std::string& text() const { return text_; }

  /// Parent element, or nullptr for the root.
  Node* parent() const { return parent_; }

  /// Ordered children (elements and text nodes interleaved).
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }

  /// Number of children.
  size_t child_count() const { return children_.size(); }

  /// Attributes in document order.
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  /// Appends a child, taking ownership; returns a stable raw pointer.
  Node* AddChild(std::unique_ptr<Node> child) {
    child->parent_ = this;
    children_.push_back(std::move(child));
    return children_.back().get();
  }

  /// Convenience: appends `<tag>` element and returns it.
  Node* AddElement(std::string tag) {
    return AddChild(MakeElement(std::move(tag)));
  }

  /// Convenience: appends `<tag>text</tag>` and returns the element.
  Node* AddElementWithText(std::string tag, std::string text) {
    Node* e = AddElement(std::move(tag));
    e->AddChild(MakeText(std::move(text)));
    return e;
  }

  /// Appends an attribute (duplicates are kept; first one wins on lookup).
  void AddAttribute(std::string name, std::string value) {
    attributes_.emplace_back(std::move(name), std::move(value));
  }

  /// Returns the value of attribute `name`, or nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const {
    for (const auto& [k, v] : attributes_) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  /// First child element with the given tag, or nullptr.
  Node* FirstChildElement(std::string_view tag) const {
    for (const auto& c : children_) {
      if (c->is_element() && c->tag_ == tag) return c.get();
    }
    return nullptr;
  }

  /// All child elements with the given tag, in order.
  std::vector<Node*> ChildElements(std::string_view tag) const {
    std::vector<Node*> out;
    for (const auto& c : children_) {
      if (c->is_element() && c->tag_ == tag) out.push_back(c.get());
    }
    return out;
  }

  /// All child elements (any tag), in order.
  std::vector<Node*> ChildElements() const {
    std::vector<Node*> out;
    for (const auto& c : children_) {
      if (c->is_element()) out.push_back(c.get());
    }
    return out;
  }

  /// True iff this element has no element children (only text / nothing).
  bool IsLeafElement() const {
    if (!is_element()) return false;
    for (const auto& c : children_) {
      if (c->is_element()) return false;
    }
    return true;
  }

  /// Concatenated text of all descendant text nodes, whitespace-trimmed
  /// at both ends.
  std::string InnerText() const;

  /// Allocation-light InnerText: collects into `*scratch` (clearing it)
  /// and returns the trimmed view into the buffer. The view is valid
  /// until `*scratch` is next modified. Same content as InnerText().
  std::string_view InnerTextView(std::string* scratch) const;

  /// Number of nodes in this subtree (including this node).
  size_t SubtreeSize() const;

  /// Deep copy of this subtree (parent of the copy is nullptr).
  std::unique_ptr<Node> Clone() const;

 private:
  explicit Node(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string tag_;
  std::string text_;
  Node* parent_ = nullptr;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

}  // namespace xsact::xml

#endif  // XSACT_XML_NODE_H_
