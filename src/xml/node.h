// DOM node for XSACT's XML substrate.
//
// XSACT consumes "structured search results"; in the paper both demo
// datasets (Product Reviews, Outdoor Retailer) and the evaluation dataset
// (IMDB movies) are XML. Since the corpus-load overhaul the node is a
// flat, view-based record rather than an owning tree:
//
//   * tag / text / attribute strings are std::string_views. For documents
//     produced by the arena parser they point into the Document's retained
//     source buffer (or its entity-decoding side arena); for
//     programmatically built nodes they point into a lazily allocated
//     per-node string store.
//   * children form an intrusive singly-linked sibling list
//     (first_child_/next_sibling_), so an element owns no child vector
//     and an arena-parsed node performs zero heap allocations.
//   * nodes parsed from a corpus live contiguously in pre-order inside
//     the Document's arena, which is what makes NodeTable::IdOf pointer
//     arithmetic instead of a hash probe.
//
// Programmatic construction (MakeElement / AddChild / AddAttribute — the
// dataset generators and tests) still works exactly as before; those
// nodes individually own their strings and children through a lazily
// created OwnedStore.

#ifndef XSACT_XML_NODE_H_
#define XSACT_XML_NODE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xsact::xml {

class ArenaParser;
class NodeTable;

/// A node in the document tree: either an element or a text node.
class Node {
 public:
  enum class Kind { kElement, kText };

  /// Default-constructed nodes are empty text nodes; only the arena
  /// builder materializes nodes this way before filling their fields.
  Node() = default;

  /// Arena materialization: the non-link fields in one construction (the
  /// builder patches the link pointers afterwards, once the arena's base
  /// address is final).
  Node(Kind kind, int32_t table_id, std::string_view data,
       uint32_t child_count)
      : kind_(kind),
        table_id_(table_id),
        data_(data),
        child_count_(child_count) {}

  /// Nodes are linked into trees by address; copying would corrupt the
  /// sibling/parent links. Moves exist only so std::vector can act as the
  /// arena storage (the arena is sized once and never relocated).
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  Node(Node&&) = default;
  Node& operator=(Node&&) = default;

  /// Creates an element node with the given tag.
  static std::unique_ptr<Node> MakeElement(std::string tag) {
    auto n = std::unique_ptr<Node>(new Node(Kind::kElement));
    n->data_ = n->Own(std::move(tag));
    return n;
  }

  /// Creates a text node with the given content.
  static std::unique_ptr<Node> MakeText(std::string text) {
    auto n = std::unique_ptr<Node>(new Node(Kind::kText));
    n->data_ = n->Own(std::move(text));
    return n;
  }

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Element tag name (empty for text nodes).
  std::string_view tag() const {
    return kind_ == Kind::kElement ? data_ : std::string_view();
  }

  /// Text content (empty for element nodes).
  std::string_view text() const {
    return kind_ == Kind::kText ? data_ : std::string_view();
  }

  /// Parent element, or nullptr for the root.
  Node* parent() const { return parent_; }

  /// First / last child and next sibling of the intrusive child list
  /// (nullptr when absent).
  Node* first_child() const { return first_child_; }
  Node* last_child() const { return last_child_; }
  Node* next_sibling() const { return next_sibling_; }

  /// Iterable view over the ordered children (elements and text nodes
  /// interleaved): `for (const Node* c : node.children())`.
  class ChildIterator {
   public:
    explicit ChildIterator(Node* node) : node_(node) {}
    Node* operator*() const { return node_; }
    ChildIterator& operator++() {
      node_ = node_->next_sibling_;
      return *this;
    }
    bool operator==(const ChildIterator& o) const { return node_ == o.node_; }
    bool operator!=(const ChildIterator& o) const { return node_ != o.node_; }

   private:
    Node* node_;
  };
  class ChildRange {
   public:
    explicit ChildRange(Node* first) : first_(first) {}
    ChildIterator begin() const { return ChildIterator(first_); }
    ChildIterator end() const { return ChildIterator(nullptr); }
    bool empty() const { return first_ == nullptr; }

   private:
    Node* first_;
  };
  ChildRange children() const { return ChildRange(first_child_); }

  /// Number of children.
  size_t child_count() const { return child_count_; }

  /// Attributes in document order.
  const std::vector<std::pair<std::string_view, std::string_view>>&
  attributes() const {
    return attributes_;
  }

  /// Appends a child, taking ownership; returns a stable raw pointer.
  Node* AddChild(std::unique_ptr<Node> child) {
    Node* c = child.get();
    Owned().children.push_back(std::move(child));
    Link(c);
    return c;
  }

  /// Convenience: appends `<tag>` element and returns it.
  Node* AddElement(std::string tag) {
    return AddChild(MakeElement(std::move(tag)));
  }

  /// Convenience: appends `<tag>text</tag>` and returns the element.
  Node* AddElementWithText(std::string tag, std::string text) {
    Node* e = AddElement(std::move(tag));
    e->AddChild(MakeText(std::move(text)));
    return e;
  }

  /// Appends an attribute (duplicates are kept; first one wins on lookup).
  void AddAttribute(std::string name, std::string value) {
    const std::string_view n = Own(std::move(name));
    const std::string_view v = Own(std::move(value));
    attributes_.emplace_back(n, v);
  }

  /// Returns the value of attribute `name`, or nullptr when absent.
  const std::string_view* FindAttribute(std::string_view name) const {
    for (const auto& [k, v] : attributes_) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  /// First child element with the given tag, or nullptr.
  Node* FirstChildElement(std::string_view tag) const {
    for (Node* c = first_child_; c != nullptr; c = c->next_sibling_) {
      if (c->is_element() && c->data_ == tag) return c;
    }
    return nullptr;
  }

  /// All child elements with the given tag, in order.
  std::vector<Node*> ChildElements(std::string_view tag) const {
    std::vector<Node*> out;
    for (Node* c = first_child_; c != nullptr; c = c->next_sibling_) {
      if (c->is_element() && c->data_ == tag) out.push_back(c);
    }
    return out;
  }

  /// All child elements (any tag), in order.
  std::vector<Node*> ChildElements() const {
    std::vector<Node*> out;
    for (Node* c = first_child_; c != nullptr; c = c->next_sibling_) {
      if (c->is_element()) out.push_back(c);
    }
    return out;
  }

  /// True iff this element has no element children (only text / nothing).
  bool IsLeafElement() const {
    if (!is_element()) return false;
    for (const Node* c = first_child_; c != nullptr; c = c->next_sibling_) {
      if (c->is_element()) return false;
    }
    return true;
  }

  /// Concatenated text of all descendant text nodes, whitespace-trimmed
  /// at both ends.
  std::string InnerText() const;

  /// Allocation-light InnerText: collects into `*scratch` (clearing it)
  /// and returns the trimmed view into the buffer. The view is valid
  /// until `*scratch` is next modified. Same content as InnerText().
  std::string_view InnerTextView(std::string* scratch) const;

  /// Number of nodes in this subtree (including this node). For nodes of
  /// an indexed document prefer NodeTable::subtree_end (O(1)).
  size_t SubtreeSize() const;

  /// Deep copy of this subtree (parent of the copy is nullptr). The copy
  /// owns its strings, so it outlives any arena the original views into.
  std::unique_ptr<Node> Clone() const;

 private:
  friend class ArenaParser;
  friend class NodeTable;

  /// Per-node ownership for programmatic construction: string storage
  /// with stable addresses plus the owned heap children. Arena-parsed
  /// nodes never allocate one.
  struct OwnedStore {
    std::deque<std::string> strings;  // deque: stable addresses for views
    std::vector<std::unique_ptr<Node>> children;
  };

  explicit Node(Kind kind) : kind_(kind) {}

  OwnedStore& Owned() {
    if (owned_ == nullptr) owned_ = std::make_unique<OwnedStore>();
    return *owned_;
  }

  std::string_view Own(std::string s) {
    OwnedStore& store = Owned();
    store.strings.push_back(std::move(s));
    return store.strings.back();
  }

  void Link(Node* child) {
    child->parent_ = this;
    child->next_sibling_ = nullptr;
    if (last_child_ != nullptr) {
      last_child_->next_sibling_ = child;
    } else {
      first_child_ = child;
    }
    last_child_ = child;
    ++child_count_;
  }

  Kind kind_ = Kind::kText;
  /// Pre-order id within the owning NodeTable (kInvalidNodeId until a
  /// table is built over the document). Mutable annotation: building an
  /// index over a const document stamps ids without logically mutating
  /// the tree; IdOf validates the stamp against the table, so stale
  /// stamps can never leak a wrong id.
  mutable int32_t table_id_ = -1;
  std::string_view data_;  // tag (elements) or text (text nodes)
  Node* parent_ = nullptr;
  Node* first_child_ = nullptr;
  Node* last_child_ = nullptr;
  Node* next_sibling_ = nullptr;
  uint32_t child_count_ = 0;
  std::vector<std::pair<std::string_view, std::string_view>> attributes_;
  std::unique_ptr<OwnedStore> owned_;
};

}  // namespace xsact::xml

#endif  // XSACT_XML_NODE_H_
