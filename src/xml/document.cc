#include "xml/document.h"

namespace xsact::xml {

namespace {

void VisitImpl(const Node& node, int depth,
               const std::function<void(const Node&, int)>& fn) {
  fn(node, depth);
  for (const Node* c : node.children()) VisitImpl(*c, depth + 1, fn);
}

}  // namespace

void Document::Visit(
    const std::function<void(const Node&, int depth)>& fn) const {
  if (root_ != nullptr) VisitImpl(*root_, 0, fn);
}

}  // namespace xsact::xml
