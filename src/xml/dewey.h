// Dewey identifiers: hierarchical node labels for document-order reasoning.
//
// A Dewey id is the path of child indices from the root ("0.2.5"). Dewey
// labels give O(depth) ancestor tests and lowest-common-ancestor
// computation, which are the primitives of the SLCA keyword-search
// algorithm the XSACT search engine is built on.

#ifndef XSACT_XML_DEWEY_H_
#define XSACT_XML_DEWEY_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace xsact::xml {

/// Hierarchical node label; lexicographic order == document pre-order.
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<int32_t> components)
      : components_(std::move(components)) {}

  const std::vector<int32_t>& components() const { return components_; }
  size_t depth() const { return components_.size(); }
  bool empty() const { return components_.empty(); }

  /// Appends one component (descend to child `index`).
  void Push(int32_t index) { components_.push_back(index); }

  /// Removes the last component (ascend to parent).
  void Pop() { components_.pop_back(); }

  /// The parent label (empty for the root).
  DeweyId Parent() const {
    DeweyId p = *this;
    if (!p.components_.empty()) p.Pop();
    return p;
  }

  /// True iff `this` is an ancestor of (or equal to) `other`.
  bool IsAncestorOrSelf(const DeweyId& other) const {
    if (components_.size() > other.components_.size()) return false;
    for (size_t i = 0; i < components_.size(); ++i) {
      if (components_[i] != other.components_[i]) return false;
    }
    return true;
  }

  /// True iff `this` is a strict ancestor of `other`.
  bool IsAncestorOf(const DeweyId& other) const {
    return components_.size() < other.components_.size() &&
           IsAncestorOrSelf(other);
  }

  /// Lowest common ancestor of two labels.
  static DeweyId Lca(const DeweyId& a, const DeweyId& b) {
    DeweyId out;
    const size_t n = std::min(a.components_.size(), b.components_.size());
    for (size_t i = 0; i < n; ++i) {
      if (a.components_[i] != b.components_[i]) break;
      out.Push(a.components_[i]);
    }
    return out;
  }

  /// Dotted rendering, e.g. "0.2.5"; the root is "ε".
  std::string ToString() const;

  friend bool operator==(const DeweyId& a, const DeweyId& b) {
    return a.components_ == b.components_;
  }

  /// Document (pre-order) comparison: prefix sorts before extension.
  friend bool operator<(const DeweyId& a, const DeweyId& b) {
    return a.components_ < b.components_;
  }
  friend bool operator<=(const DeweyId& a, const DeweyId& b) {
    return a == b || a < b;
  }

 private:
  std::vector<int32_t> components_;
};

}  // namespace xsact::xml

#endif  // XSACT_XML_DEWEY_H_
