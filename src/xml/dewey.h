// Dewey identifiers: hierarchical node labels for document-order reasoning.
//
// A Dewey id is the path of child indices from the root ("0.2.5"). Dewey
// labels give O(depth) ancestor tests and lowest-common-ancestor
// computation, which are the primitives of the SLCA keyword-search
// algorithm the XSACT search engine is built on.
//
// Storage is a small inline buffer (12 components — deeper than any of
// the demo corpora) with a heap spill for pathological depths: a corpus
// load materializes one DeweyId per node, and the inline buffer makes
// that (and every label copy on the SLCA query path) allocation-free.

#ifndef XSACT_XML_DEWEY_H_
#define XSACT_XML_DEWEY_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace xsact::xml {

/// Hierarchical node label; lexicographic order == document pre-order.
class DeweyId {
 public:
  DeweyId() = default;

  explicit DeweyId(const std::vector<int32_t>& components) {
    Assign(components.data(), components.size());
  }

  /// Copies `size` components from `data` (the arena parser's running
  /// child-ordinal path).
  DeweyId(const int32_t* data, size_t size) { Assign(data, size); }

  DeweyId(const DeweyId& other) { Assign(other.data_, other.size_); }

  DeweyId(DeweyId&& other) noexcept { StealFrom(other); }

  DeweyId& operator=(const DeweyId& other) {
    if (this != &other) {
      FreeHeap();
      data_ = inline_;
      capacity_ = kInlineCapacity;
      Assign(other.data_, other.size_);
    }
    return *this;
  }

  DeweyId& operator=(DeweyId&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      StealFrom(other);
    }
    return *this;
  }

  ~DeweyId() { FreeHeap(); }

  size_t depth() const { return size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int32_t operator[](size_t i) const { return data_[i]; }
  int32_t back() const { return data_[size_ - 1]; }
  const int32_t* begin() const { return data_; }
  const int32_t* end() const { return data_ + size_; }

  /// The components as a vector (copy; diagnostics / tests).
  std::vector<int32_t> components() const {
    return std::vector<int32_t>(begin(), end());
  }

  /// Appends one component (descend to child `index`).
  void Push(int32_t index) {
    if (size_ == capacity_) Grow();
    data_[size_++] = index;
  }

  /// Removes the last component (ascend to parent).
  void Pop() { --size_; }

  /// The parent label (empty for the root).
  DeweyId Parent() const {
    DeweyId p = *this;
    if (!p.empty()) p.Pop();
    return p;
  }

  /// True iff `this` is an ancestor of (or equal to) `other`.
  bool IsAncestorOrSelf(const DeweyId& other) const {
    if (size_ > other.size_) return false;
    for (size_t i = 0; i < size_; ++i) {
      if (data_[i] != other.data_[i]) return false;
    }
    return true;
  }

  /// True iff `this` is a strict ancestor of `other`.
  bool IsAncestorOf(const DeweyId& other) const {
    return size_ < other.size_ && IsAncestorOrSelf(other);
  }

  /// Lowest common ancestor of two labels.
  static DeweyId Lca(const DeweyId& a, const DeweyId& b) {
    size_t n = std::min(a.size_, b.size_);
    size_t i = 0;
    while (i < n && a.data_[i] == b.data_[i]) ++i;
    return DeweyId(a.data_, i);
  }

  /// Dotted rendering, e.g. "0.2.5"; the root is "ε".
  std::string ToString() const;

  friend bool operator==(const DeweyId& a, const DeweyId& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.data_, b.data_, a.size_ * sizeof(int32_t)) == 0;
  }

  /// Document (pre-order) comparison: prefix sorts before extension.
  friend bool operator<(const DeweyId& a, const DeweyId& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }
  friend bool operator<=(const DeweyId& a, const DeweyId& b) {
    return a == b || a < b;
  }

 private:
  static constexpr uint32_t kInlineCapacity = 12;

  void Assign(const int32_t* data, size_t size) {
    if (size > capacity_) {
      FreeHeap();
      capacity_ = static_cast<uint32_t>(size);
      data_ = new int32_t[capacity_];
    }
    size_ = static_cast<uint32_t>(size);
    // The size guard keeps memcpy away from a null source (an empty
    // vector's data() — the root label's path — may be nullptr).
    if (size > 0) std::memcpy(data_, data, size * sizeof(int32_t));
  }

  void StealFrom(DeweyId& other) noexcept {
    size_ = other.size_;
    if (other.data_ == other.inline_) {
      data_ = inline_;
      capacity_ = kInlineCapacity;
      std::memcpy(inline_, other.inline_, size_ * sizeof(int32_t));
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_;
      other.capacity_ = kInlineCapacity;
    }
    other.size_ = 0;
  }

  void FreeHeap() {
    if (data_ != inline_) delete[] data_;
  }

  void Grow() {
    const uint32_t new_capacity = capacity_ * 2;
    int32_t* grown = new int32_t[new_capacity];
    std::memcpy(grown, data_, size_ * sizeof(int32_t));
    FreeHeap();
    data_ = grown;
    capacity_ = new_capacity;
  }

  int32_t* data_ = inline_;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineCapacity;
  int32_t inline_[kInlineCapacity];
};

}  // namespace xsact::xml

#endif  // XSACT_XML_DEWEY_H_
