#include "xml/parser.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/faultpoint.h"
#include "common/macros.h"

namespace xsact::xml {

namespace {

const fault::FaultPointId kFaultParseCorpus =
    fault::RegisterFaultPoint("parse.corpus");

/// Locale-independent character classes as flat 256-entry tables: the
/// seed parser routed every probe through std::isalpha/std::isspace
/// (locale-dependent, function call per character); these are single
/// array loads with the exact "C"-locale ASCII semantics the tokenizer
/// and the on-disk corpora assume.
struct CharTables {
  bool name_start[256] = {};
  bool name_char[256] = {};
  bool space[256] = {};

  constexpr CharTables() {
    for (int c = 'a'; c <= 'z'; ++c) name_start[c] = true;
    for (int c = 'A'; c <= 'Z'; ++c) name_start[c] = true;
    name_start[static_cast<unsigned char>('_')] = true;
    name_start[static_cast<unsigned char>(':')] = true;
    for (int c = 0; c < 256; ++c) name_char[c] = name_start[c];
    for (int c = '0'; c <= '9'; ++c) name_char[c] = true;
    name_char[static_cast<unsigned char>('-')] = true;
    name_char[static_cast<unsigned char>('.')] = true;
    for (const char c : {' ', '\t', '\n', '\v', '\f', '\r'}) {
      space[static_cast<unsigned char>(c)] = true;
    }
  }
};

constexpr CharTables kChars;

inline bool IsNameStartChar(char c) {
  return kChars.name_start[static_cast<unsigned char>(c)];
}
inline bool IsNameChar(char c) {
  return kChars.name_char[static_cast<unsigned char>(c)];
}
inline bool IsSpaceChar(char c) {
  return kChars.space[static_cast<unsigned char>(c)];
}

bool IsAllWhitespace(std::string_view s) {
  for (const char c : s) {
    if (!IsSpaceChar(c)) return false;
  }
  return true;
}

}  // namespace

/// Single-pass zero-copy parser. Builds a flat pre-order record stream
/// (views into the retained source), then materializes the Document's
/// node arena — and, when requested, fills the NodeTable as it goes:
/// ids and parents when a node opens, Dewey labels from the running
/// child-ordinal path, subtree extents when its tag closes.
class ArenaParser {
 public:
  ArenaParser(std::string text, ParseOptions options, NodeTable* table)
      : options_(options), table_(table) {
    doc_.source_ = std::make_unique<std::string>(std::move(text));
    in_ = *doc_.source_;
    // Pretty-printed corpora run ~16-24 input bytes per node; size the
    // record stream (and the fused table's columns) to avoid regrowth.
    const size_t estimated_nodes = in_.size() / 16 + 4;
    recs_.reserve(estimated_nodes);
    if (table_ != nullptr) {
      table_->parents_.reserve(estimated_nodes);
      table_->deweys_.reserve(estimated_nodes);
      table_->subtree_end_.reserve(estimated_nodes);
    }
  }

  StatusOr<Document> Run() {
    XSACT_RETURN_IF_ERROR(SkipProlog());
    if (AtEnd() || in_[pos_] != '<') {
      return Error("expected root element");
    }
    XSACT_RETURN_IF_ERROR(ParseStartTag());
    while (!open_.empty()) {
      XSACT_RETURN_IF_ERROR(ParseContentStep());
    }
    // Trailing misc: whitespace, comments, PIs.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) break;
      if (MatchLit("<!--")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("-->"));
        continue;
      }
      if (MatchLit("<?")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("?>"));
        continue;
      }
      if (options_.strict_trailing) {
        return Error("unexpected content after root element");
      }
      break;
    }
    return Materialize();
  }

 private:
  /// One node of the flat pre-order stream; links are indices so the
  /// stream can grow without invalidating anything.
  struct Rec {
    Node::Kind kind = Node::Kind::kText;
    int32_t parent = -1;
    int32_t first_child = -1;
    int32_t last_child = -1;
    int32_t next_sibling = -1;
    uint32_t child_count = 0;
    uint32_t attr_begin = 0;
    uint32_t attr_count = 0;
    std::string_view data;
  };

  bool AtEnd() const { return pos_ >= in_.size(); }

  /// Matches `literal` at the cursor (no temporaries — the seed built two
  /// substrings per probe here).
  bool MatchLit(std::string_view literal) {
    if (in_.size() - pos_ < literal.size() ||
        in_.compare(pos_, literal.size(), literal) != 0) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  void SkipWhitespace() {
    while (pos_ < in_.size() && IsSpaceChar(in_[pos_])) ++pos_;
  }

  /// Error at the current position; line/column are derived lazily from
  /// the prefix (the seed tracked them per Advance — same 1-based
  /// values, none of the per-character bookkeeping).
  Status Error(std::string message) const {
    size_t line = 1;
    size_t line_start = 0;
    for (size_t i = 0; i < pos_; ++i) {
      if (in_[i] == '\n') {
        ++line;
        line_start = i + 1;
      }
    }
    return Status::ParseError("line " + std::to_string(line) + ", column " +
                              std::to_string(pos_ - line_start + 1) + ": " +
                              std::move(message));
  }

  Status SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (MatchLit("<?")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("?>"));
      } else if (MatchLit("<!--")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("-->"));
      } else if (MatchLit("<!DOCTYPE") || MatchLit("<!doctype")) {
        XSACT_RETURN_IF_ERROR(SkipDoctype());
      } else {
        return Status::Ok();
      }
    }
  }

  Status SkipUntil(std::string_view terminator) {
    const size_t found = in_.find(terminator, pos_);
    if (found == std::string_view::npos) {
      pos_ = in_.size();
      return Error("unterminated construct, expected '" +
                   std::string(terminator) + "'");
    }
    pos_ = found + terminator.size();
    return Status::Ok();
  }

  Status SkipDoctype() {
    // DOCTYPE may contain an internal subset in brackets.
    int bracket_depth = 0;
    while (!AtEnd()) {
      const char c = in_[pos_++];
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) return Status::Ok();
    }
    return Error("unterminated DOCTYPE");
  }

  Status ParseName(std::string_view* out) {
    if (AtEnd() || !IsNameStartChar(in_[pos_])) {
      return Error("expected a name");
    }
    const size_t start = pos_;
    ++pos_;
    while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
    *out = in_.substr(start, pos_ - start);
    return Status::Ok();
  }

  /// Appends a node to the pre-order stream under the innermost open
  /// element and — table mode — records its id, parent and Dewey label.
  int32_t OpenNode(Node::Kind kind, std::string_view data) {
    const int32_t id = static_cast<int32_t>(recs_.size());
    const int32_t parent = open_.empty() ? -1 : open_.back();
    Rec rec;
    rec.kind = kind;
    rec.parent = parent;
    rec.data = data;
    rec.attr_begin = static_cast<uint32_t>(attrs_.size());
    if (parent >= 0) {
      Rec& p = recs_[static_cast<size_t>(parent)];
      if (p.last_child >= 0) {
        recs_[static_cast<size_t>(p.last_child)].next_sibling = id;
      } else {
        p.first_child = id;
      }
      p.last_child = id;
      path_.push_back(static_cast<int32_t>(p.child_count));
      ++p.child_count;
    }
    recs_.push_back(rec);
    if (table_ != nullptr) {
      table_->parents_.push_back(parent);
      table_->deweys_.emplace_back(path_.data(), path_.size());
      table_->subtree_end_.push_back(0);
    }
    return id;
  }

  /// Closes a node: its subtree extent is everything appended since it
  /// opened, and its Dewey component leaves the running path.
  void CloseNode(int32_t id) {
    if (table_ != nullptr) {
      table_->subtree_end_[static_cast<size_t>(id)] =
          static_cast<NodeId>(recs_.size());
    }
    if (recs_[static_cast<size_t>(id)].parent >= 0) path_.pop_back();
  }

  Status ParseStartTag() {
    ++pos_;  // '<'
    std::string_view tag;
    XSACT_RETURN_IF_ERROR(ParseName(&tag));
    const int32_t id = OpenNode(Node::Kind::kElement, tag);
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (MatchLit("/>")) {
        CloseNode(id);
        return Status::Ok();
      }
      if (MatchLit(">")) {
        open_.push_back(id);
        return Status::Ok();
      }
      std::string_view name;
      XSACT_RETURN_IF_ERROR(ParseName(&name));
      SkipWhitespace();
      if (AtEnd() || in_[pos_] != '=') {
        return Error("expected '=' after attribute name '" +
                     std::string(name) + "'");
      }
      ++pos_;  // '='
      SkipWhitespace();
      if (AtEnd() || (in_[pos_] != '"' && in_[pos_] != '\'')) {
        return Error("expected quoted attribute value");
      }
      const char quote = in_[pos_++];
      const size_t end = in_.find(quote, pos_);
      if (end == std::string_view::npos) {
        pos_ = in_.size();
        return Error("unterminated attribute value");
      }
      const std::string_view raw = in_.substr(pos_, end - pos_);
      pos_ = end + 1;  // closing quote
      attrs_.emplace_back(name, NeedsDecoding(raw) ? Decoded(raw) : raw);
      ++recs_[static_cast<size_t>(id)].attr_count;
    }
  }

  /// One step of the innermost open element's content: a text run up to
  /// the next '<', then whatever markup follows it.
  Status ParseContentStep() {
    const size_t lt = in_.find('<', pos_);
    if (lt == std::string_view::npos) {
      pos_ = in_.size();
      return Error("unterminated element <" + CurrentTag() + ">");
    }
    if (lt > pos_) AddSegment(in_.substr(pos_, lt - pos_));
    pos_ = lt;

    if (MatchLit("</")) {
      FlushText();
      std::string_view close_tag;
      XSACT_RETURN_IF_ERROR(ParseName(&close_tag));
      SkipWhitespace();
      if (!MatchLit(">")) {
        return Error("malformed end tag </" + std::string(close_tag) + ">");
      }
      const int32_t id = open_.back();
      if (close_tag != recs_[static_cast<size_t>(id)].data) {
        return Error("mismatched end tag: expected </" + CurrentTag() +
                     ">, found </" + std::string(close_tag) + ">");
      }
      CloseNode(id);
      open_.pop_back();
      return Status::Ok();
    }
    if (MatchLit("<!--")) return SkipUntil("-->");
    if (MatchLit("<![CDATA[")) {
      FlushText();
      const size_t end = in_.find("]]>", pos_);
      if (end == std::string_view::npos) {
        pos_ = in_.size();
        return Error("unterminated CDATA section");
      }
      // CDATA is verbatim: a direct view, no entity decoding.
      const int32_t id =
          OpenNode(Node::Kind::kText, in_.substr(pos_, end - pos_));
      CloseNode(id);
      pos_ = end + 3;
      return Status::Ok();
    }
    if (MatchLit("<?")) return SkipUntil("?>");
    FlushText();
    return ParseStartTag();
  }

  std::string CurrentTag() const {
    return std::string(recs_[static_cast<size_t>(open_.back())].data);
  }

  static bool NeedsDecoding(std::string_view raw) {
    return std::memchr(raw.data(), '&', raw.size()) != nullptr;
  }

  /// Decodes into the document's side arena and returns a stable view.
  std::string_view Decoded(std::string_view raw) {
    doc_.decoded_.push_back(DecodeEntities(raw));
    return doc_.decoded_.back();
  }

  void AddSegment(std::string_view segment) {
    if (!segment_entity_ && NeedsDecoding(segment)) segment_entity_ = true;
    segments_.push_back(segment);
  }

  /// Emits the accumulated text run (segments are split by comments and
  /// PIs, which the seed parser skipped mid-run) as one text node. The
  /// whitespace check runs over the RAW bytes, and multi-segment or
  /// entity-bearing runs are concatenated and decoded as one string —
  /// both exactly as the seed did with its char-by-char pending buffer.
  void FlushText() {
    if (segments_.empty()) return;
    bool all_whitespace = true;
    for (const std::string_view s : segments_) {
      if (!IsAllWhitespace(s)) {
        all_whitespace = false;
        break;
      }
    }
    if (!(options_.skip_whitespace_text && all_whitespace)) {
      std::string_view data;
      if (segments_.size() == 1 && !segment_entity_) {
        data = segments_[0];  // zero-copy: view straight into the source
      } else if (segments_.size() == 1) {
        data = Decoded(segments_[0]);
      } else {
        scratch_.clear();
        for (const std::string_view s : segments_) scratch_.append(s);
        data = Decoded(scratch_);
      }
      CloseNode(OpenNode(Node::Kind::kText, data));
    }
    segments_.clear();
    segment_entity_ = false;
  }

  /// Converts the record stream into the Document's contiguous node
  /// arena (indices -> pointers) and finishes the fused NodeTable.
  Document Materialize() {
    const size_t n = recs_.size();
    doc_.arena_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Rec& rec = recs_[i];
      doc_.arena_.emplace_back(rec.kind, static_cast<int32_t>(i), rec.data,
                               rec.child_count);
      if (rec.attr_count > 0) {
        const auto begin =
            attrs_.begin() + static_cast<ptrdiff_t>(rec.attr_begin);
        doc_.arena_.back().attributes_.assign(
            begin, begin + static_cast<ptrdiff_t>(rec.attr_count));
      }
    }
    // Second pass: indices -> pointers, now that the base is final (the
    // reserve guarantees no reallocation happened while emplacing).
    Node* base = doc_.arena_.data();
    for (size_t i = 0; i < n; ++i) {
      const Rec& rec = recs_[i];
      Node& node = base[i];
      node.parent_ = rec.parent >= 0 ? base + rec.parent : nullptr;
      node.first_child_ =
          rec.first_child >= 0 ? base + rec.first_child : nullptr;
      node.last_child_ = rec.last_child >= 0 ? base + rec.last_child : nullptr;
      node.next_sibling_ =
          rec.next_sibling >= 0 ? base + rec.next_sibling : nullptr;
    }
    doc_.root_ = n > 0 ? base : nullptr;
    if (table_ != nullptr) {
      table_->nodes_.resize(n);
      for (size_t i = 0; i < n; ++i) table_->nodes_[i] = base + i;
    }
    return std::move(doc_);
  }

  Document doc_;
  std::string_view in_;
  size_t pos_ = 0;
  ParseOptions options_;
  NodeTable* table_;

  std::vector<Rec> recs_;
  std::vector<std::pair<std::string_view, std::string_view>> attrs_;
  std::vector<int32_t> open_;   // ids of the open-element chain
  std::vector<int32_t> path_;   // running Dewey components
  std::vector<std::string_view> segments_;
  bool segment_entity_ = false;
  std::string scratch_;
};

std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    const size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      out.push_back(text[i++]);  // lone '&': pass through leniently
      continue;
    }
    const std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      uint32_t code = 0;
      bool valid = entity.size() > 1;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (size_t k = 2; k < entity.size() && valid; ++k) {
          char c = entity[k];
          code *= 16;
          if (c >= '0' && c <= '9') {
            code += static_cast<uint32_t>(c - '0');
          } else if (c >= 'a' && c <= 'f') {
            code += static_cast<uint32_t>(c - 'a' + 10);
          } else if (c >= 'A' && c <= 'F') {
            code += static_cast<uint32_t>(c - 'A' + 10);
          } else {
            valid = false;
          }
        }
        valid = valid && entity.size() > 2;
      } else {
        for (size_t k = 1; k < entity.size() && valid; ++k) {
          char c = entity[k];
          if (c < '0' || c > '9') {
            valid = false;
          } else {
            code = code * 10 + static_cast<uint32_t>(c - '0');
          }
        }
      }
      if (!valid || code == 0 || code > 0x10FFFF) {
        out.append(text.substr(i, semi - i + 1));
      } else if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      // Unknown named entity: keep verbatim.
      out.append(text.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

StatusOr<Document> Parse(std::string_view input, ParseOptions options) {
  return ParseRetained(std::string(input), options);
}

StatusOr<Document> ParseRetained(std::string text, ParseOptions options) {
  ArenaParser parser(std::move(text), options, nullptr);
  return parser.Run();
}

StatusOr<ParsedCorpus> ParseCorpus(std::string text, ParseOptions options) {
  XSACT_INJECT_FAULT(kFaultParseCorpus);
  ParsedCorpus corpus;
  ArenaParser parser(std::move(text), options, &corpus.table);
  XSACT_ASSIGN_OR_RETURN(corpus.doc, parser.Run());
  return corpus;
}

}  // namespace xsact::xml
