#include "xml/parser.h"

#include <cctype>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace xsact::xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool Match(std::string_view literal) {
    if (input_.substr(pos_).substr(0, literal.size()) != literal) return false;
    for (size_t i = 0; i < literal.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  size_t pos() const { return pos_; }
  std::string_view Slice(size_t from, size_t to) const {
    return input_.substr(from, to - from);
  }

  Status Error(std::string message) const {
    return Status::ParseError("line " + std::to_string(line_) + ", column " +
                              std::to_string(column_) + ": " +
                              std::move(message));
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class ParserImpl {
 public:
  ParserImpl(std::string_view input, ParseOptions options)
      : cur_(input), options_(options) {}

  StatusOr<Document> Run() {
    XSACT_RETURN_IF_ERROR(SkipProlog());
    if (cur_.AtEnd() || cur_.Peek() != '<') {
      return cur_.Error("expected root element");
    }
    std::unique_ptr<Node> root;
    XSACT_RETURN_IF_ERROR(ParseElement(&root));
    // Trailing misc: whitespace, comments, PIs.
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) break;
      if (cur_.Match("<!--")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("-->"));
        continue;
      }
      if (cur_.Match("<?")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("?>"));
        continue;
      }
      if (options_.strict_trailing) {
        return cur_.Error("unexpected content after root element");
      }
      break;
    }
    return Document(std::move(root));
  }

 private:
  Status SkipProlog() {
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.Match("<?")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("?>"));
      } else if (cur_.Match("<!--")) {
        XSACT_RETURN_IF_ERROR(SkipUntil("-->"));
      } else if (cur_.Match("<!DOCTYPE") || cur_.Match("<!doctype")) {
        XSACT_RETURN_IF_ERROR(SkipDoctype());
      } else {
        return Status::Ok();
      }
    }
  }

  Status SkipUntil(std::string_view terminator) {
    while (!cur_.AtEnd()) {
      if (cur_.Match(terminator)) return Status::Ok();
      cur_.Advance();
    }
    return cur_.Error("unterminated construct, expected '" +
                      std::string(terminator) + "'");
  }

  Status SkipDoctype() {
    // DOCTYPE may contain an internal subset in brackets.
    int bracket_depth = 0;
    while (!cur_.AtEnd()) {
      char c = cur_.Advance();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) return Status::Ok();
    }
    return cur_.Error("unterminated DOCTYPE");
  }

  Status ParseName(std::string* out) {
    if (cur_.AtEnd() || !IsNameStartChar(cur_.Peek())) {
      return cur_.Error("expected a name");
    }
    const size_t start = cur_.pos();
    cur_.Advance();
    while (!cur_.AtEnd() && IsNameChar(cur_.Peek())) cur_.Advance();
    *out = std::string(cur_.Slice(start, cur_.pos()));
    return Status::Ok();
  }

  Status ParseAttributes(Node* element, bool* self_closing) {
    *self_closing = false;
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) return cur_.Error("unterminated start tag");
      if (cur_.Match("/>")) {
        *self_closing = true;
        return Status::Ok();
      }
      if (cur_.Match(">")) return Status::Ok();
      std::string name;
      XSACT_RETURN_IF_ERROR(ParseName(&name));
      cur_.SkipWhitespace();
      if (cur_.AtEnd() || cur_.Peek() != '=') {
        return cur_.Error("expected '=' after attribute name '" + name + "'");
      }
      cur_.Advance();  // '='
      cur_.SkipWhitespace();
      if (cur_.AtEnd() || (cur_.Peek() != '"' && cur_.Peek() != '\'')) {
        return cur_.Error("expected quoted attribute value");
      }
      const char quote = cur_.Advance();
      const size_t start = cur_.pos();
      while (!cur_.AtEnd() && cur_.Peek() != quote) cur_.Advance();
      if (cur_.AtEnd()) return cur_.Error("unterminated attribute value");
      std::string value = DecodeEntities(cur_.Slice(start, cur_.pos()));
      cur_.Advance();  // closing quote
      element->AddAttribute(std::move(name), std::move(value));
    }
  }

  Status ParseElement(std::unique_ptr<Node>* out) {
    if (!cur_.Match("<")) return cur_.Error("expected '<'");
    std::string tag;
    XSACT_RETURN_IF_ERROR(ParseName(&tag));
    std::unique_ptr<Node> element = Node::MakeElement(tag);
    bool self_closing = false;
    XSACT_RETURN_IF_ERROR(ParseAttributes(element.get(), &self_closing));
    if (!self_closing) {
      XSACT_RETURN_IF_ERROR(ParseContent(element.get(), tag));
    }
    *out = std::move(element);
    return Status::Ok();
  }

  Status ParseContent(Node* element, const std::string& tag) {
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      if (!(options_.skip_whitespace_text && IsAllWhitespace(pending_text))) {
        element->AddChild(Node::MakeText(DecodeEntities(pending_text)));
      }
      pending_text.clear();
    };

    for (;;) {
      if (cur_.AtEnd()) {
        return cur_.Error("unterminated element <" + tag + ">");
      }
      if (cur_.Peek() == '<') {
        if (cur_.Match("</")) {
          flush_text();
          std::string close_tag;
          XSACT_RETURN_IF_ERROR(ParseName(&close_tag));
          cur_.SkipWhitespace();
          if (!cur_.Match(">")) {
            return cur_.Error("malformed end tag </" + close_tag + ">");
          }
          if (close_tag != tag) {
            return cur_.Error("mismatched end tag: expected </" + tag +
                              ">, found </" + close_tag + ">");
          }
          return Status::Ok();
        }
        if (cur_.Match("<!--")) {
          XSACT_RETURN_IF_ERROR(SkipUntil("-->"));
          continue;
        }
        if (cur_.Match("<![CDATA[")) {
          flush_text();
          const size_t start = cur_.pos();
          size_t end = start;
          // Scan for the CDATA terminator without entity decoding.
          for (;;) {
            if (cur_.AtEnd()) return cur_.Error("unterminated CDATA section");
            if (cur_.Match("]]>")) {
              end = cur_.pos() - 3;
              break;
            }
            cur_.Advance();
          }
          element->AddChild(
              Node::MakeText(std::string(cur_.Slice(start, end))));
          continue;
        }
        if (cur_.Match("<?")) {
          XSACT_RETURN_IF_ERROR(SkipUntil("?>"));
          continue;
        }
        flush_text();
        std::unique_ptr<Node> child;
        XSACT_RETURN_IF_ERROR(ParseElement(&child));
        element->AddChild(std::move(child));
        continue;
      }
      pending_text.push_back(cur_.Advance());
    }
  }

  Cursor cur_;
  ParseOptions options_;
};

}  // namespace

std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    const size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      out.push_back(text[i++]);  // lone '&': pass through leniently
      continue;
    }
    const std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      uint32_t code = 0;
      bool valid = entity.size() > 1;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (size_t k = 2; k < entity.size() && valid; ++k) {
          char c = entity[k];
          code *= 16;
          if (c >= '0' && c <= '9') {
            code += static_cast<uint32_t>(c - '0');
          } else if (c >= 'a' && c <= 'f') {
            code += static_cast<uint32_t>(c - 'a' + 10);
          } else if (c >= 'A' && c <= 'F') {
            code += static_cast<uint32_t>(c - 'A' + 10);
          } else {
            valid = false;
          }
        }
        valid = valid && entity.size() > 2;
      } else {
        for (size_t k = 1; k < entity.size() && valid; ++k) {
          char c = entity[k];
          if (c < '0' || c > '9') {
            valid = false;
          } else {
            code = code * 10 + static_cast<uint32_t>(c - '0');
          }
        }
      }
      if (!valid || code == 0 || code > 0x10FFFF) {
        out.append(text.substr(i, semi - i + 1));
      } else if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      // Unknown named entity: keep verbatim.
      out.append(text.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

StatusOr<Document> Parse(std::string_view input, ParseOptions options) {
  ParserImpl impl(input, options);
  return impl.Run();
}

}  // namespace xsact::xml
