#include "xml/io.h"

#include <cstdio>
#include <memory>

#include "common/macros.h"
#include "xml/parser.h"

namespace xsact::xml {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    content.append(buffer, n);
  }
  if (std::ferror(file.get())) {
    return Status::IoError("read error on '" + path + "'");
  }
  return content;
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  if (std::fwrite(content.data(), 1, content.size(), file.get()) !=
      content.size()) {
    return Status::IoError("write error on '" + path + "'");
  }
  return Status::Ok();
}

StatusOr<Document> ParseFile(const std::string& path) {
  XSACT_ASSIGN_OR_RETURN(const std::string content, ReadFileToString(path));
  StatusOr<Document> doc = Parse(content);
  if (!doc.ok()) return doc.status().WithContext(path);
  return doc;
}

Status WriteDocumentToFile(const Document& doc, const std::string& path,
                           WriteOptions options) {
  return WriteStringToFile(path, WriteDocument(doc, options));
}

}  // namespace xsact::xml
