#include "xml/io.h"

#include <cstdio>
#include <memory>

#include "common/faultpoint.h"
#include "common/macros.h"
#include "xml/parser.h"

namespace xsact::xml {

namespace {

const fault::FaultPointId kFaultIoRead =
    fault::RegisterFaultPoint("io.read_file");

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  XSACT_INJECT_FAULT(kFaultIoRead);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  // Pre-size from the file length and read in one call: corpus load is on
  // the startup path, and streaming 64 KiB appends re-copied the buffer
  // on every growth. Seekable files (the normal case) take the fast path;
  // pipes and other non-seekable streams fall back to chunked appends.
  std::string content;
  if (std::fseek(file.get(), 0, SEEK_END) == 0) {
    const long size = std::ftell(file.get());
    if (size > 0 && std::fseek(file.get(), 0, SEEK_SET) == 0) {
      content.resize(static_cast<size_t>(size));
      const size_t read = std::fread(&content[0], 1, content.size(),
                                     file.get());
      if (std::ferror(file.get())) {
        return Status::IoError("read error on '" + path + "'");
      }
      content.resize(read);  // shorter than stat'd (e.g. raced truncate)
      return content;
    }
    if (std::fseek(file.get(), 0, SEEK_SET) != 0) {
      return Status::IoError("seek error on '" + path + "'");
    }
  } else {
    std::clearerr(file.get());
  }
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    content.append(buffer, n);
  }
  if (std::ferror(file.get())) {
    return Status::IoError("read error on '" + path + "'");
  }
  return content;
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  if (std::fwrite(content.data(), 1, content.size(), file.get()) !=
      content.size()) {
    return Status::IoError("write error on '" + path + "'");
  }
  return Status::Ok();
}

StatusOr<Document> ParseFile(const std::string& path) {
  XSACT_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  // Zero-copy: the document retains the freshly read buffer outright.
  StatusOr<Document> doc = ParseRetained(std::move(content));
  if (!doc.ok()) return doc.status().WithContext(path);
  return doc;
}

StatusOr<ParsedCorpus> ParseCorpusFile(const std::string& path) {
  XSACT_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  StatusOr<ParsedCorpus> corpus = ParseCorpus(std::move(content));
  if (!corpus.ok()) return corpus.status().WithContext(path);
  return corpus;
}

Status WriteDocumentToFile(const Document& doc, const std::string& path,
                           WriteOptions options) {
  return WriteStringToFile(path, WriteDocument(doc, options));
}

}  // namespace xsact::xml
