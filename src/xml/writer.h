// XML serialization: compact and pretty-printed, with entity escaping.

#ifndef XSACT_XML_WRITER_H_
#define XSACT_XML_WRITER_H_

#include <string>
#include <string_view>

#include "xml/document.h"

namespace xsact::xml {

/// Serialization options.
struct WriteOptions {
  /// Indent children by `indent_width` spaces per depth level; 0 = compact.
  int indent_width = 2;
  /// Emit an `<?xml version="1.0"?>` declaration.
  bool declaration = false;
};

/// Escapes character data for use inside element content.
std::string EscapeText(std::string_view text);

/// Escapes character data for use inside a double-quoted attribute value.
std::string EscapeAttribute(std::string_view text);

/// Serializes a subtree rooted at `node`.
std::string WriteNode(const Node& node, WriteOptions options = {});

/// Serializes a whole document (empty string for an empty document).
std::string WriteDocument(const Document& doc, WriteOptions options = {});

}  // namespace xsact::xml

#endif  // XSACT_XML_WRITER_H_
