#include "xml/writer.h"

namespace xsact::xml {

namespace {

void AppendIndent(std::string* out, int depth, int width) {
  if (width <= 0) return;
  out->append(static_cast<size_t>(depth * width), ' ');
}

void WriteImpl(const Node& node, int depth, const WriteOptions& options,
               std::string* out) {
  const bool pretty = options.indent_width > 0;
  if (node.is_text()) {
    AppendIndent(out, depth, options.indent_width);
    out->append(EscapeText(node.text()));
    if (pretty) out->push_back('\n');
    return;
  }
  AppendIndent(out, depth, options.indent_width);
  out->push_back('<');
  out->append(node.tag());
  for (const auto& [name, value] : node.attributes()) {
    out->push_back(' ');
    out->append(name);
    out->append("=\"");
    out->append(EscapeAttribute(value));
    out->push_back('"');
  }
  if (node.child_count() == 0) {
    out->append("/>");
    if (pretty) out->push_back('\n');
    return;
  }
  // Single text child renders inline: <name>value</name>.
  if (node.child_count() == 1 && node.first_child()->is_text()) {
    out->push_back('>');
    out->append(EscapeText(node.first_child()->text()));
    out->append("</");
    out->append(node.tag());
    out->push_back('>');
    if (pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (pretty) out->push_back('\n');
  for (const Node* child : node.children()) {
    WriteImpl(*child, depth + 1, options, out);
  }
  AppendIndent(out, depth, options.indent_width);
  out->append("</");
  out->append(node.tag());
  out->push_back('>');
  if (pretty) out->push_back('\n');
}

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '"':
        out.append("&quot;");
        break;
      case '\'':
        out.append("&apos;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string WriteNode(const Node& node, WriteOptions options) {
  std::string out;
  if (options.declaration) {
    out.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options.indent_width > 0) out.push_back('\n');
  }
  WriteImpl(node, 0, options, &out);
  return out;
}

std::string WriteDocument(const Document& doc, WriteOptions options) {
  if (doc.empty()) return "";
  return WriteNode(*doc.root(), options);
}

}  // namespace xsact::xml
