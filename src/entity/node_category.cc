#include "entity/node_category.h"

namespace xsact::entity {

std::string_view NodeCategoryToString(NodeCategory category) {
  switch (category) {
    case NodeCategory::kEntity:
      return "entity";
    case NodeCategory::kAttribute:
      return "attribute";
    case NodeCategory::kMultiAttribute:
      return "multi-attribute";
    case NodeCategory::kConnection:
      return "connection";
    case NodeCategory::kValue:
      return "value";
  }
  return "unknown";
}

}  // namespace xsact::entity
