#include "entity/category_index.h"

#include "common/string_util.h"

namespace xsact::entity {

DocumentCategoryIndex::DocumentCategoryIndex(const xml::NodeTable& table,
                                             const EntitySchema& schema) {
  const size_t n = table.size();
  categories_.resize(n);
  owners_.resize(n);
  leaf_.resize(n);
  subtree_end_.assign(n, 0);
  tag_ids_.assign(n, -1);
  text_ids_.assign(n, -1);
  obs_attr_ids_.assign(n, -1);
  obs_value_ids_.assign(n, -1);

  // Pre-order ids: parents precede children, so owners resolve in one
  // forward pass; subtree extents resolve in one backward pass (a node's
  // subtree ends where its last descendant's does).
  std::string text_scratch;
  std::string attr_scratch;
  std::string key_scratch;
  for (size_t i = 0; i < n; ++i) {
    const xml::NodeId id = static_cast<xml::NodeId>(i);
    const xml::Node* node = table.node(id);
    categories_[i] = schema.CategoryOf(*node, &key_scratch);
    leaf_[i] = node->IsLeafElement() ? 1 : 0;
    if (node->is_element()) {
      tag_ids_[i] = tags_.Intern(node->tag());
      if (leaf_[i] != 0) {
        const std::string_view raw = node->InnerTextView(&text_scratch);
        text_ids_[i] = texts_.Intern(raw);
        // Precompute the observation encoding under leaf_options_.
        if (raw.empty() && leaf_options_.skip_empty_values) {
          // skipped: ids stay -1
        } else {
          if (leaf_options_.fold_value_case) xsact::FoldCase(&text_scratch);
          std::string_view value = text_scratch;
          value = value.substr(
              static_cast<size_t>(raw.data() - text_scratch.data()),
              raw.size());
          if (value.size() > leaf_options_.max_value_length) {
            value = value.substr(0, leaf_options_.max_value_length);
          }
          if (categories_[i] == NodeCategory::kMultiAttribute) {
            attr_scratch.assign(node->tag());
            attr_scratch.append(": ");
            attr_scratch.append(value);
            obs_attr_ids_[i] = obs_attrs_.Intern(attr_scratch);
            obs_value_ids_[i] = obs_values_.Intern("yes");
          } else {
            obs_attr_ids_[i] = obs_attrs_.Intern(node->tag());
            obs_value_ids_[i] = obs_values_.Intern(value);
          }
        }
      }
    }
    const xml::NodeId parent = table.parent(id);
    if (node->is_element() && categories_[i] == NodeCategory::kEntity) {
      owners_[i] = id;
    } else {
      owners_[i] = parent != xml::kInvalidNodeId
                       ? owners_[static_cast<size_t>(parent)]
                       : id;
    }
  }
  for (size_t i = n; i-- > 0;) {
    const xml::NodeId id = static_cast<xml::NodeId>(i);
    if (subtree_end_[i] == 0) subtree_end_[i] = id + 1;  // no descendants yet
    const xml::NodeId parent = table.parent(id);
    if (parent != xml::kInvalidNodeId) {
      auto& parent_end = subtree_end_[static_cast<size_t>(parent)];
      if (subtree_end_[i] > parent_end) parent_end = subtree_end_[i];
    }
  }
}

}  // namespace xsact::entity
