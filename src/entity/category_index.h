// DocumentCategoryIndex: per-node schema facts and document-level
// identifier encoding, precomputed once so the per-query serve path
// never probes the schema or re-reads node strings.
//
// For every NodeId of a NodeTable it stores:
//   * the node's NodeCategory (one schema probe per node, at build time),
//   * the nearest entity ancestor-or-self under the DOCUMENT root
//     ("global owner"; pre-order comparison rebinds it to any result
//     subtree in O(1), see OwnerWithin),
//   * whether the node is a leaf element,
//   * the end of the node's pre-order subtree range,
//   * the element tag interned to a document-level tag id, and
//   * for leaf elements, the trimmed inner text interned to a
//     document-level text id (computed once, not per query).
//
// With this, feature extraction over a result subtree is a single linear
// sweep of a contiguous id range reading flat arrays — the XSACT serve
// path's analogue of a native-XML system's term/path identifier encoding.

#ifndef XSACT_ENTITY_CATEGORY_INDEX_H_
#define XSACT_ENTITY_CATEGORY_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "entity/entity_identifier.h"
#include "entity/node_category.h"
#include "xml/path.h"

namespace xsact::entity {

/// Leaf value processing knobs baked into the precomputed observation
/// encoding. Field semantics (and defaults) mirror
/// feature::ExtractorOptions; extraction uses the precomputed encoding
/// only when its options match these exactly.
struct LeafValueOptions {
  bool fold_value_case = true;
  size_t max_value_length = 48;
  bool skip_empty_values = true;
};

class DocumentCategoryIndex {
 public:
  /// Builds the index in one pass over `table`. `table` and `schema` are
  /// only read during construction (the index holds no references, so it
  /// stays valid when the owning engine is moved); readers pass the table
  /// back in wherever nodes are needed.
  DocumentCategoryIndex(const xml::NodeTable& table,
                        const EntitySchema& schema);

  /// CategoryOf(node), cached.
  NodeCategory category(xml::NodeId id) const {
    return categories_[static_cast<size_t>(id)];
  }

  /// Nearest entity ancestor-or-self under the document root; the node
  /// itself when it is an entity, the document root when no entity exists
  /// on the path.
  xml::NodeId owner(xml::NodeId id) const {
    return owners_[static_cast<size_t>(id)];
  }

  /// EntitySchema::OwningEntity(node, within) for any ancestor-or-self
  /// `within_id` of `id`: among the two ancestors, the deeper one (larger
  /// pre-order id) is the walk's first hit.
  xml::NodeId OwnerWithin(xml::NodeId id, xml::NodeId within_id) const {
    const xml::NodeId global = owner(id);
    return global >= within_id ? global : within_id;
  }

  /// Node::IsLeafElement(), cached.
  bool is_leaf_element(xml::NodeId id) const {
    return leaf_[static_cast<size_t>(id)] != 0;
  }

  /// One past the last pre-order id of the subtree rooted at `id`
  /// (subtrees are contiguous id ranges).
  xml::NodeId subtree_end(xml::NodeId id) const {
    return subtree_end_[static_cast<size_t>(id)];
  }

  /// Document-level tag id of an element (-1 for text nodes).
  int32_t tag_id(xml::NodeId id) const {
    return tag_ids_[static_cast<size_t>(id)];
  }
  size_t num_tags() const { return tags_.size(); }
  const std::string& tag(int32_t tag_id) const { return tags_.Lookup(tag_id); }

  /// Document-level id of a leaf element's trimmed inner text (-1 for
  /// non-leaf nodes). Equal ids denote byte-identical text.
  int32_t text_id(xml::NodeId id) const {
    return text_ids_[static_cast<size_t>(id)];
  }
  size_t num_texts() const { return texts_.size(); }
  const std::string& text(int32_t text_id) const {
    return texts_.Lookup(text_id);
  }

  /// The options the precomputed observation encoding was built with.
  const LeafValueOptions& leaf_value_options() const { return leaf_options_; }

  /// Precomputed observation encoding of a leaf element under
  /// leaf_value_options(): the attribute name (the tag, value-qualified
  /// for multi-attributes) and the processed value ("yes" for
  /// multi-attributes), both as document-level ids. -1 when the node is
  /// not a leaf element or its observation is skipped (empty value).
  /// Equal ids denote byte-identical strings, so aggregation on these
  /// ids equals aggregation on the strings.
  int32_t obs_attr_id(xml::NodeId id) const {
    return obs_attr_ids_[static_cast<size_t>(id)];
  }
  int32_t obs_value_id(xml::NodeId id) const {
    return obs_value_ids_[static_cast<size_t>(id)];
  }
  size_t num_obs_attrs() const { return obs_attrs_.size(); }
  const std::string& obs_attr(int32_t attr_id) const {
    return obs_attrs_.Lookup(attr_id);
  }
  size_t num_obs_values() const { return obs_values_.size(); }
  const std::string& obs_value(int32_t value_id) const {
    return obs_values_.Lookup(value_id);
  }

 private:
  std::vector<NodeCategory> categories_;
  std::vector<xml::NodeId> owners_;
  std::vector<uint8_t> leaf_;
  std::vector<xml::NodeId> subtree_end_;
  StringInterner tags_;
  StringInterner texts_;
  std::vector<int32_t> tag_ids_;
  std::vector<int32_t> text_ids_;
  LeafValueOptions leaf_options_;
  StringInterner obs_attrs_;
  StringInterner obs_values_;
  std::vector<int32_t> obs_attr_ids_;
  std::vector<int32_t> obs_value_ids_;
};

}  // namespace xsact::entity

#endif  // XSACT_ENTITY_CATEGORY_INDEX_H_
