// Node categories in the spirit of the Entity-Relationship model.
//
// XSACT's result processor first infers which XML elements denote
// entities, which denote attributes, and which are mere connections
// (paper §2, citing XSeek [3]). The inference is purely structural:
//
//   * an element tag that occurs MULTIPLE times among the children of a
//     single parent instance is "starred" (set-like);
//     - starred and internal (has element children)  -> ENTITY
//       (e.g. <review>, <product> under <products>)
//     - starred and leaf (text only)                 -> MULTI_ATTRIBUTE
//       (e.g. <pro> under <pros>, <genre> under <genres>)
//   * an unstarred leaf element                      -> ATTRIBUTE
//       (e.g. <name>, <rating>)
//   * an unstarred internal element                  -> CONNECTION
//       (e.g. <reviews>, <pros> grouping nodes)
//   * text nodes                                     -> VALUE

#ifndef XSACT_ENTITY_NODE_CATEGORY_H_
#define XSACT_ENTITY_NODE_CATEGORY_H_

#include <cstdint>
#include <string_view>

namespace xsact::entity {

/// Structural role of an XML element.
enum class NodeCategory : uint8_t {
  kEntity = 0,          ///< repeated internal node: a real-world object
  kAttribute = 1,       ///< single-valued property of an entity
  kMultiAttribute = 2,  ///< repeated leaf: set-valued property
  kConnection = 3,      ///< structural grouping node
  kValue = 4,           ///< text content
};

/// Stable display name ("entity", "attribute", ...).
std::string_view NodeCategoryToString(NodeCategory category);

}  // namespace xsact::entity

#endif  // XSACT_ENTITY_NODE_CATEGORY_H_
