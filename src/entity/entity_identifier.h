// Entity identifier: infers an entity/attribute schema from document
// structure (the "Entity Identifier" box of the XSACT architecture,
// Figure 3 of the paper).

#ifndef XSACT_ENTITY_ENTITY_IDENTIFIER_H_
#define XSACT_ENTITY_ENTITY_IDENTIFIER_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "entity/node_category.h"
#include "xml/document.h"

namespace xsact::entity {

/// Inferred structural schema for a document.
///
/// Categories are keyed by (parent tag, tag): real catalogs use the same
/// tag consistently under a given parent, and this keying is robust to the
/// same tag name playing different roles in different contexts.
class EntitySchema {
 public:
  /// Category of a tag in the context of a parent tag. Unknown pairs
  /// default to kAttribute for leaves and kConnection otherwise; since the
  /// caller usually has the node, prefer CategoryOf(node).
  NodeCategory CategoryOf(std::string_view parent_tag,
                          std::string_view tag) const;

  /// Category of a concrete node (kValue for text nodes).
  NodeCategory CategoryOf(const xml::Node& node) const;

  /// Reentrant probe variants for hot paths: the key composition runs
  /// through the caller-supplied `*scratch` (no hidden shared state), so
  /// any number of threads may probe one const schema concurrently, each
  /// with its own buffer. The scratch-free overloads above use a local
  /// buffer per call (correct but allocation-prone on long tags).
  NodeCategory CategoryOf(std::string_view parent_tag, std::string_view tag,
                          std::string* scratch) const;
  NodeCategory CategoryOf(const xml::Node& node, std::string* scratch) const;

  /// Nearest ancestor-or-self element categorized as an entity. Falls back
  /// to the subtree root `within` when no entity is found on the path.
  /// `within` bounds the walk (the result root during extraction).
  const xml::Node* OwningEntity(const xml::Node& node,
                                const xml::Node& within) const;

  /// All (parent, tag) -> category entries, sorted, for diagnostics.
  std::vector<std::pair<std::pair<std::string, std::string>, NodeCategory>>
  Entries() const;

  /// True iff a tag pair was observed during inference.
  bool Contains(std::string_view parent_tag, std::string_view tag) const;

  /// Registers/overrides a category (used by inference and by tests).
  void Set(std::string parent_tag, std::string tag, NodeCategory category);

 private:
  /// Composes "parent\x1ftag" into `*scratch` (reentrant: concurrent
  /// const queries each bring their own buffer) and returns the dense
  /// key id, or -1 when never registered.
  int32_t FindKey(std::string_view parent_tag, std::string_view tag,
                  std::string* scratch) const;

  /// Sorted view kept for Entries(); the hot path probes the interner.
  std::map<std::pair<std::string, std::string>, NodeCategory> categories_;
  /// "parent\x1ftag" -> dense id -> category: one hash probe, O(1),
  /// allocation-free. Extraction calls CategoryOf once per element, so
  /// this is on the serve path's critical loop.
  StringInterner keys_;
  std::vector<NodeCategory> by_key_;
};

/// Infers the schema of `doc` with the structural rules described in
/// node_category.h. Deterministic; one full pass over the document.
EntitySchema InferSchema(const xml::Document& doc);

/// Infers a schema from a set of subtrees (used when only search results,
/// not the whole corpus, are available).
EntitySchema InferSchemaFromRoots(const std::vector<const xml::Node*>& roots);

}  // namespace xsact::entity

#endif  // XSACT_ENTITY_ENTITY_IDENTIFIER_H_
