#include "entity/entity_identifier.h"

#include <unordered_map>

#include "common/string_util.h"

namespace xsact::entity {

namespace {

struct TagStats {
  bool repeated = false;  // some parent instance holds >1 child of this tag
  bool internal = false;  // some instance has element children
};

using StatsMap = std::map<std::pair<std::string, std::string>, TagStats>;

void CollectStats(const xml::Node& node, StatsMap* stats) {
  if (!node.is_element()) return;
  // Count children per tag within THIS parent instance.
  std::unordered_map<std::string_view, int> counts;
  for (const xml::Node* child : node.children()) {
    if (!child->is_element()) continue;
    ++counts[child->tag()];
  }
  for (const xml::Node* child : node.children()) {
    if (!child->is_element()) continue;
    TagStats& ts =
        (*stats)[{std::string(node.tag()), std::string(child->tag())}];
    if (counts[child->tag()] > 1) ts.repeated = true;
    if (!child->IsLeafElement()) ts.internal = true;
    CollectStats(*child, stats);
  }
}

EntitySchema SchemaFromStats(const StatsMap& stats) {
  EntitySchema schema;
  for (const auto& [key, ts] : stats) {
    NodeCategory category;
    if (ts.repeated && ts.internal) {
      category = NodeCategory::kEntity;
    } else if (ts.repeated) {
      category = NodeCategory::kMultiAttribute;
    } else if (ts.internal) {
      category = NodeCategory::kConnection;
    } else {
      category = NodeCategory::kAttribute;
    }
    schema.Set(key.first, key.second, category);
  }
  return schema;
}

}  // namespace

int32_t EntitySchema::FindKey(std::string_view parent_tag,
                              std::string_view tag,
                              std::string* scratch) const {
  return keys_.Find(ComposeTagKey(parent_tag, tag, scratch));
}

NodeCategory EntitySchema::CategoryOf(std::string_view parent_tag,
                                      std::string_view tag) const {
  std::string scratch;
  return CategoryOf(parent_tag, tag, &scratch);
}

NodeCategory EntitySchema::CategoryOf(std::string_view parent_tag,
                                      std::string_view tag,
                                      std::string* scratch) const {
  const int32_t key = FindKey(parent_tag, tag, scratch);
  if (key >= 0) return by_key_[static_cast<size_t>(key)];
  return NodeCategory::kAttribute;
}

NodeCategory EntitySchema::CategoryOf(const xml::Node& node) const {
  std::string scratch;
  return CategoryOf(node, &scratch);
}

NodeCategory EntitySchema::CategoryOf(const xml::Node& node,
                                      std::string* scratch) const {
  if (node.is_text()) return NodeCategory::kValue;
  const xml::Node* parent = node.parent();
  if (parent == nullptr) {
    // The document root groups everything; treat as connection unless leaf.
    return node.IsLeafElement() ? NodeCategory::kAttribute
                                : NodeCategory::kConnection;
  }
  const int32_t key = FindKey(parent->tag(), node.tag(), scratch);
  if (key >= 0) return by_key_[static_cast<size_t>(key)];
  return node.IsLeafElement() ? NodeCategory::kAttribute
                              : NodeCategory::kConnection;
}

const xml::Node* EntitySchema::OwningEntity(const xml::Node& node,
                                            const xml::Node& within) const {
  std::string scratch;
  const xml::Node* cur = &node;
  while (cur != nullptr) {
    if (cur == &within) return cur;  // result root acts as its own entity
    if (cur->is_element() &&
        CategoryOf(*cur, &scratch) == NodeCategory::kEntity) {
      return cur;
    }
    cur = cur->parent();
  }
  return &within;
}

std::vector<std::pair<std::pair<std::string, std::string>, NodeCategory>>
EntitySchema::Entries() const {
  return {categories_.begin(), categories_.end()};
}

bool EntitySchema::Contains(std::string_view parent_tag,
                            std::string_view tag) const {
  std::string scratch;
  return FindKey(parent_tag, tag, &scratch) >= 0;
}

void EntitySchema::Set(std::string parent_tag, std::string tag,
                       NodeCategory category) {
  std::string scratch;
  const int32_t key = keys_.Intern(ComposeTagKey(parent_tag, tag, &scratch));
  if (static_cast<size_t>(key) == by_key_.size()) {
    by_key_.push_back(category);
  } else {
    by_key_[static_cast<size_t>(key)] = category;
  }
  categories_[{std::move(parent_tag), std::move(tag)}] = category;
}

EntitySchema InferSchema(const xml::Document& doc) {
  StatsMap stats;
  if (!doc.empty()) CollectStats(*doc.root(), &stats);
  return SchemaFromStats(stats);
}

EntitySchema InferSchemaFromRoots(const std::vector<const xml::Node*>& roots) {
  StatsMap stats;
  for (const xml::Node* root : roots) {
    if (root != nullptr) CollectStats(*root, &stats);
  }
  return SchemaFromStats(stats);
}

}  // namespace xsact::entity
