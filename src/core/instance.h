// ComparisonInstance: the immutable problem statement handed to the DFS
// selection algorithms.
//
// It freezes, for a set of results selected by the user:
//   * per result, the selectable features ("entries") grouped by entity
//     and sorted by significance (the paper's validity order), and
//   * the precomputed differentiability predicate diff(t, i, j) for every
//     feature type shared by a pair of results (paper §2: occurrences of
//     some selected feature of t differ by more than x% of the smaller).
//
// A selected entry denotes the feature type plus its DOMINANT value in
// that result — exactly what XSACT's comparison table displays (one value
// and its percentage per cell, Figure 2).
//
// Storage is fully dense: every type occurring anywhere gets a dense
// index (ascending TypeId), diff(t, i, j) lives in a word-packed
// DiffMatrix, and type -> entry resolution per result is a flat
// [result x dense type] table — no hash probes anywhere on the
// optimizers' hot path.

#ifndef XSACT_CORE_INSTANCE_H_
#define XSACT_CORE_INSTANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/diff_matrix.h"
#include "feature/catalog.h"
#include "feature/result_features.h"

namespace xsact::core {

/// One selectable feature of one result.
struct Entry {
  feature::TypeId type_id = feature::kInvalidTypeId;
  feature::ValueId dominant_value = feature::kInvalidValueId;
  /// Absolute occurrence of the type in the result (significance key).
  double occurrence = 0;
  /// Occurrence of the DOMINANT value alone (what a table cell displays).
  double dominant_count = 0;
  /// Cardinality of the owning entity within the result.
  double cardinality = 1;
  /// Dense index of the entity group this entry belongs to.
  int32_t group = 0;
  /// Dense index of the type in the instance's DiffMatrix.
  int32_t dense_type = -1;
  /// Position of this type's TypeStats in the result's types() vector
  /// (lets the build resolve stats without hashing the type id).
  int32_t stats_index = -1;

  /// Relative occurrence of the type (occurrence / cardinality).
  double RelOccurrence() const {
    return cardinality > 0 ? occurrence / cardinality : 0;
  }

  /// Relative occurrence of the dominant value — the percentage rendered
  /// next to the cell value in the comparison table.
  double DominantRelOccurrence() const {
    return cardinality > 0 ? dominant_count / cardinality : 0;
  }
};

/// Contiguous [begin, end) range of entries of one entity within one
/// result's entry list, sorted by significance (occurrence desc).
struct EntityGroup {
  std::string entity;
  int32_t begin = 0;
  int32_t end = 0;
  int32_t size() const { return end - begin; }
};

/// Immutable comparison problem over n results.
class ComparisonInstance {
 public:
  /// Builds the instance. `results` must all be sealed and share `catalog`
  /// (both are copied/retained by value or pointer as documented).
  /// `diff_threshold` is the paper's x (default 10%).
  static ComparisonInstance Build(std::vector<feature::ResultFeatures> results,
                                  const feature::FeatureCatalog* catalog,
                                  double diff_threshold = 0.10);

  int num_results() const { return static_cast<int>(results_.size()); }
  const feature::ResultFeatures& result(int i) const {
    return results_[static_cast<size_t>(i)];
  }
  const feature::FeatureCatalog& catalog() const { return *catalog_; }
  double diff_threshold() const { return diff_threshold_; }

  /// All selectable entries of result `i`, grouped by entity, each group
  /// sorted by (occurrence desc, type_id asc): the validity order.
  const std::vector<Entry>& entries(int i) const {
    return entries_[static_cast<size_t>(i)];
  }

  /// Entity groups of result `i` as ranges into entries(i).
  const std::vector<EntityGroup>& groups(int i) const {
    return groups_[static_cast<size_t>(i)];
  }

  /// The word-packed differentiability substrate.
  const DiffMatrix& diff_matrix() const { return diff_matrix_; }

  /// Dense index of type `t`, or -1 when it occurs in no result.
  int DenseTypeIndex(feature::TypeId t) const {
    return diff_matrix_.DenseIndex(t);
  }

  /// Index of the entry carrying the dense type in result `i`, or -1.
  /// O(1): a flat table lookup.
  int EntryIndexOfDenseType(int i, int dense_type) const {
    if (dense_type < 0) return -1;
    return entry_of_type_[static_cast<size_t>(i) *
                              static_cast<size_t>(diff_matrix_.num_types()) +
                          static_cast<size_t>(dense_type)];
  }

  /// Index of the entry carrying type `t` in result `i`, or -1.
  int EntryIndexOfType(int i, feature::TypeId t) const {
    return EntryIndexOfDenseType(i, DenseTypeIndex(t));
  }

  /// True iff type `t` occurs in result `i`.
  bool HasType(int i, feature::TypeId t) const {
    return EntryIndexOfType(i, t) >= 0;
  }

  /// Precomputed differentiability of results i and j on type t.
  /// False when the type is missing in either result.
  bool Differentiable(feature::TypeId t, int i, int j) const {
    const int dense = DenseTypeIndex(t);
    return dense >= 0 && diff_matrix_.Test(dense, i, j);
  }

  /// Number of distinct feature types across all results.
  size_t NumTypesTotal() const {
    return static_cast<size_t>(diff_matrix_.num_types());
  }

  /// Upper bound on achievable total DoD: for every pair, the number of
  /// shared differentiable types (useful for reporting).
  int64_t DifferentiationCeiling() const { return diff_matrix_.CountPairs(); }

 private:
  /// Evaluates the paper's differentiability predicate for the dominant
  /// values of a type's stats in two results.
  bool ComputeDiff(const feature::TypeStats& si,
                   const feature::TypeStats& sj) const;

  std::vector<feature::ResultFeatures> results_;
  const feature::FeatureCatalog* catalog_ = nullptr;
  double diff_threshold_ = 0.10;

  std::vector<std::vector<Entry>> entries_;
  std::vector<std::vector<EntityGroup>> groups_;
  /// Dense types + word-packed diff masks.
  DiffMatrix diff_matrix_;
  /// [result * num_types + dense_type] -> entry index or -1.
  std::vector<int32_t> entry_of_type_;
};

}  // namespace xsact::core

#endif  // XSACT_CORE_INSTANCE_H_
