#include "core/diff_matrix.h"

#include <algorithm>

#include "common/macros.h"

namespace xsact::core {

DiffMatrix::DiffMatrix(std::vector<feature::TypeId> sorted_types,
                       int num_results)
    : n_(num_results),
      words_(bits::WordsFor(num_results)),
      types_(std::move(sorted_types)) {
  XSACT_CHECK(std::is_sorted(types_.begin(), types_.end()));
  XSACT_CHECK(std::adjacent_find(types_.begin(), types_.end()) ==
              types_.end());
  bits_.assign(types_.size() * static_cast<size_t>(n_) *
                   static_cast<size_t>(words_),
               0);
}

int DiffMatrix::DenseIndex(feature::TypeId t) const {
  auto it = std::lower_bound(types_.begin(), types_.end(), t);
  if (it == types_.end() || *it != t) return -1;
  return static_cast<int>(it - types_.begin());
}

void DiffMatrix::Set(int dense_type, int i, int j) {
  XSACT_CHECK(i != j);
  uint64_t* base = bits_.data() + static_cast<size_t>(dense_type) *
                                      static_cast<size_t>(n_) *
                                      static_cast<size_t>(words_);
  bits::Set(base + static_cast<size_t>(i) * static_cast<size_t>(words_), j);
  bits::Set(base + static_cast<size_t>(j) * static_cast<size_t>(words_), i);
}

int64_t DiffMatrix::CountPairs() const {
  // Every differentiable pair sets two bits (symmetry), so the total
  // popcount halves into the pair count.
  int64_t total = 0;
  for (const uint64_t word : bits_) {
    total += __builtin_popcountll(word);
  }
  return total / 2;
}

}  // namespace xsact::core
