// DfsSelector: common interface of the DFS generation algorithms, plus a
// factory. The paper's "DFS generator" module with its two methods
// (single-swap, multi-swap); we additionally provide the eXtract-style
// snippet baseline, a greedy baseline, and an exhaustive exact solver
// used as a test oracle on small instances.

#ifndef XSACT_CORE_SELECTOR_H_
#define XSACT_CORE_SELECTOR_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/dfs.h"
#include "core/instance.h"

namespace xsact::core {

/// Tuning knobs common to all selectors.
struct SelectorOptions {
  /// The paper's L: upper bound on each DFS's size (number of features).
  int size_bound = 5;
  /// Safety valve for the iterative algorithms: maximum number of
  /// round-robin passes over the results (each pass re-optimizes every
  /// DFS once). Both algorithms converge long before this in practice.
  int max_rounds = 64;
  /// Fill remaining capacity with the most significant non-gaining
  /// features after optimization, so DFSs stay reasonable summaries even
  /// when few types differentiate (never decreases DoD).
  bool fill_to_bound = true;
};

/// Abstract DFS generation algorithm.
class DfsSelector {
 public:
  virtual ~DfsSelector() = default;

  /// Algorithm name for reports ("single-swap", "multi-swap", ...).
  virtual std::string_view name() const = 0;

  /// Computes one DFS per result. Postcondition: the assignment is valid
  /// and every DFS respects options.size_bound.
  virtual std::vector<Dfs> Select(const ComparisonInstance& instance,
                                  const SelectorOptions& options) const = 0;
};

/// Available algorithms.
enum class SelectorKind {
  kSnippet,            ///< eXtract-style per-result top-significance snippet
  kGreedy,             ///< global greedy by potential DoD gain
  kSingleSwap,         ///< single-swap optimal local search (paper §2)
  kMultiSwap,          ///< multi-swap optimal via per-result DP (paper §2)
  kExhaustive,         ///< exact joint optimum (small instances only)
  kWeightedMultiSwap,  ///< interestingness-weighted multi-swap (extension)
};

/// Display name of a selector kind.
std::string_view SelectorKindName(SelectorKind kind);

/// Instantiates a selector.
std::unique_ptr<DfsSelector> MakeSelector(SelectorKind kind);

/// Number of SelectorKind values (array sizing).
inline constexpr size_t kNumSelectorKinds = 6;

/// Pooled selector instances, one per kind, constructed lazily and reused
/// across queries. Select() is const and keeps its working state (DP
/// tables, gain caches) in per-call locals, so a pooled instance returns
/// identical output to a fresh one; pooling only avoids the per-query
/// factory allocation. Not thread-safe: a SelectorSet belongs to one
/// query session.
class SelectorSet {
 public:
  /// The pooled selector for `kind`, constructing it on first use.
  const DfsSelector& Get(SelectorKind kind);

 private:
  std::array<std::unique_ptr<DfsSelector>, kNumSelectorKinds> selectors_;
};

/// Greedily extends every DFS to the size bound with the most significant
/// unselected valid entries (used by `fill_to_bound`; DoD never drops
/// because DoD is monotone under adding types).
void FillToBound(const ComparisonInstance& instance, int size_bound,
                 std::vector<Dfs>* dfss);

}  // namespace xsact::core

#endif  // XSACT_CORE_SELECTOR_H_
