// SingleSwapOptimizer: the paper's single-swap optimal method.
//
// "A set of DFSs is single-swap optimal if by changing or adding one
//  feature in a DFS, while keeping its validity and size limit bound, the
//  degree of differentiation cannot increase." (paper §2)
//
// We start from the snippet assignment (most significant features) and
// perform steepest-ascent local search. The move set on one result is:
//   * ADD a single feature (if the budget allows), or
//   * REPLACE one selected feature by one unselected feature,
// accepting only strict DoD improvements and only validity-preserving
// states. Pure removals are never beneficial (DoD is monotone under
// adding types) and are therefore not searched. Iteration proceeds
// round-robin over results until a global fixpoint — by construction the
// result is single-swap optimal.

#ifndef XSACT_CORE_SINGLE_SWAP_H_
#define XSACT_CORE_SINGLE_SWAP_H_

#include "core/selector.h"

namespace xsact::core {

class SingleSwapOptimizer : public DfsSelector {
 public:
  std::string_view name() const override { return "single-swap"; }
  std::vector<Dfs> Select(const ComparisonInstance& instance,
                          const SelectorOptions& options) const override;

  /// Exposed for tests: true iff some single add/replace on some DFS
  /// strictly increases total DoD (i.e. the assignment is NOT single-swap
  /// optimal).
  static bool HasImprovingMove(const ComparisonInstance& instance,
                               const std::vector<Dfs>& dfss, int size_bound);
};

}  // namespace xsact::core

#endif  // XSACT_CORE_SINGLE_SWAP_H_
