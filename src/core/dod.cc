#include "core/dod.h"

namespace xsact::core {

namespace {

/// Shared pair-DoD kernel: iterates the smaller DFS's selected entries
/// and resolves the partner side through the instance's O(1) dense
/// type -> entry table. The weighted and unweighted entry points are the
/// same walk with a different per-type contribution, so they cannot
/// drift apart.
template <typename WeightOf>
double PairDodImpl(const ComparisonInstance& instance, const Dfs& a,
                   const Dfs& b, WeightOf&& weight_of) {
  const Dfs& smaller = a.size() <= b.size() ? a : b;
  const Dfs& larger = a.size() <= b.size() ? b : a;
  const int i = smaller.result_index();
  const int j = larger.result_index();
  const auto& entries = instance.entries(i);
  const DiffMatrix& matrix = instance.diff_matrix();
  double dod = 0;
  smaller.ForEachSelected([&](int k) {
    const Entry& e = entries[static_cast<size_t>(k)];
    if (larger.ContainsDenseType(instance, e.dense_type) &&
        matrix.Test(e.dense_type, i, j)) {
      dod += weight_of(e.type_id);
    }
  });
  return dod;
}

/// Shared gain kernel: partners whose DFS selects t and are
/// differentiable from i on t, resolved with word probes.
int TypeGainImpl(const ComparisonInstance& instance,
                 const std::vector<Dfs>& dfss, int i, int dense_type) {
  if (dense_type < 0) return 0;
  const DiffMatrix& matrix = instance.diff_matrix();
  const uint64_t* row = matrix.Row(dense_type, i);
  int gain = 0;
  // The diff row already restricts to partners carrying the type and
  // excludes i itself (clear diagonal), so only selection is left to test.
  bits::ForEachBit(row, matrix.words_per_mask(), [&](int j) {
    if (dfss[static_cast<size_t>(j)].ContainsDenseType(instance, dense_type)) {
      ++gain;
    }
  });
  return gain;
}

}  // namespace

int PairDod(const ComparisonInstance& instance, const Dfs& a, const Dfs& b) {
  return static_cast<int>(
      PairDodImpl(instance, a, b, [](feature::TypeId) { return 1.0; }));
}

int64_t TotalDod(const ComparisonInstance& instance,
                 const std::vector<Dfs>& dfss) {
  // Allocation-free pairwise sweep (exhaustive search calls this once per
  // enumerated assignment); SelectionState::TotalDod provides the mask
  // popcount variant for substrate users holding a live state.
  int64_t total = 0;
  for (size_t i = 0; i < dfss.size(); ++i) {
    for (size_t j = i + 1; j < dfss.size(); ++j) {
      total += PairDod(instance, dfss[i], dfss[j]);
    }
  }
  return total;
}

int TypeGain(const ComparisonInstance& instance, const std::vector<Dfs>& dfss,
             int i, feature::TypeId t) {
  return TypeGainImpl(instance, dfss, i, instance.DenseTypeIndex(t));
}

double WeightedPairDod(const ComparisonInstance& instance, const Dfs& a,
                       const Dfs& b, const TypeWeights& weights) {
  return PairDodImpl(instance, a, b,
                     [&](feature::TypeId t) { return weights.Of(t); });
}

double WeightedTotalDod(const ComparisonInstance& instance,
                        const std::vector<Dfs>& dfss,
                        const TypeWeights& weights) {
  double total = 0;
  for (size_t i = 0; i < dfss.size(); ++i) {
    for (size_t j = i + 1; j < dfss.size(); ++j) {
      total += WeightedPairDod(instance, dfss[i], dfss[j], weights);
    }
  }
  return total;
}

double WeightedTypeGain(const ComparisonInstance& instance,
                        const std::vector<Dfs>& dfss, int i,
                        feature::TypeId t, const TypeWeights& weights) {
  return TypeGain(instance, dfss, i, t) * weights.Of(t);
}

}  // namespace xsact::core
