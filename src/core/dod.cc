#include "core/dod.h"

namespace xsact::core {

int PairDod(const ComparisonInstance& instance, const Dfs& a, const Dfs& b) {
  const int i = a.result_index();
  const int j = b.result_index();
  int dod = 0;
  // Iterate over the smaller DFS's selected types.
  const Dfs& smaller = a.size() <= b.size() ? a : b;
  const Dfs& larger = a.size() <= b.size() ? b : a;
  for (feature::TypeId t : smaller.SelectedTypes(instance)) {
    if (larger.ContainsType(instance, t) && instance.Differentiable(t, i, j)) {
      ++dod;
    }
  }
  return dod;
}

int64_t TotalDod(const ComparisonInstance& instance,
                 const std::vector<Dfs>& dfss) {
  int64_t total = 0;
  for (size_t i = 0; i < dfss.size(); ++i) {
    for (size_t j = i + 1; j < dfss.size(); ++j) {
      total += PairDod(instance, dfss[i], dfss[j]);
    }
  }
  return total;
}

int TypeGain(const ComparisonInstance& instance, const std::vector<Dfs>& dfss,
             int i, feature::TypeId t) {
  int gain = 0;
  for (int j = 0; j < instance.num_results(); ++j) {
    if (j == i) continue;
    if (dfss[static_cast<size_t>(j)].ContainsType(instance, t) &&
        instance.Differentiable(t, i, j)) {
      ++gain;
    }
  }
  return gain;
}

double WeightedPairDod(const ComparisonInstance& instance, const Dfs& a,
                       const Dfs& b, const TypeWeights& weights) {
  const int i = a.result_index();
  const int j = b.result_index();
  double dod = 0;
  const Dfs& smaller = a.size() <= b.size() ? a : b;
  const Dfs& larger = a.size() <= b.size() ? b : a;
  for (feature::TypeId t : smaller.SelectedTypes(instance)) {
    if (larger.ContainsType(instance, t) && instance.Differentiable(t, i, j)) {
      dod += weights.Of(t);
    }
  }
  return dod;
}

double WeightedTotalDod(const ComparisonInstance& instance,
                        const std::vector<Dfs>& dfss,
                        const TypeWeights& weights) {
  double total = 0;
  for (size_t i = 0; i < dfss.size(); ++i) {
    for (size_t j = i + 1; j < dfss.size(); ++j) {
      total += WeightedPairDod(instance, dfss[i], dfss[j], weights);
    }
  }
  return total;
}

double WeightedTypeGain(const ComparisonInstance& instance,
                        const std::vector<Dfs>& dfss, int i,
                        feature::TypeId t, const TypeWeights& weights) {
  return TypeGain(instance, dfss, i, t) * weights.Of(t);
}

}  // namespace xsact::core
