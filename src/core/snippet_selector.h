// SnippetSelector: the eXtract-style [2] baseline.
//
// Each result's snippet independently shows its most significant features
// (highest relative occurrence), with no awareness of the other results —
// exactly the snippets of Figure 1 that the paper's introduction shows are
// weakly differentiating (DoD = 2 on the GPS example).

#ifndef XSACT_CORE_SNIPPET_SELECTOR_H_
#define XSACT_CORE_SNIPPET_SELECTOR_H_

#include "core/selector.h"

namespace xsact::core {

class SnippetSelector : public DfsSelector {
 public:
  std::string_view name() const override { return "snippet"; }
  std::vector<Dfs> Select(const ComparisonInstance& instance,
                          const SelectorOptions& options) const override;
};

}  // namespace xsact::core

#endif  // XSACT_CORE_SNIPPET_SELECTOR_H_
