// DiffMatrix: the dense, word-packed differentiability substrate.
//
// The scalar seed evaluated diff(t, i, j) through two hash probes
// (type -> dense index, then a byte matrix). This structure instead
// dense-indexes every feature type once (sorted TypeId order, binary
// search at the API boundary only) and stores, for each (type, result i),
// a uint64_t-packed mask over results j with diff(t, i, j). The swap
// optimizers consume whole rows with branch-free popcounts instead of
// per-partner probes, turning O(n) scans into O(n/64) word ops.
//
// Invariants: the matrix is symmetric and its diagonal is always clear
// (a result is never differentiable from itself), so row popcounts never
// need a self-bit correction.

#ifndef XSACT_CORE_DIFF_MATRIX_H_
#define XSACT_CORE_DIFF_MATRIX_H_

#include <cstdint>
#include <vector>

#include "feature/feature.h"

namespace xsact::core {

/// Word-level kernels shared by the bitset substrate (DiffMatrix,
/// SelectionState, Dfs).
namespace bits {

inline constexpr int kWordBits = 64;

/// Number of uint64_t words covering `nbits` bits.
inline int WordsFor(int nbits) { return (nbits + kWordBits - 1) / kWordBits; }

inline bool Test(const uint64_t* words, int bit) {
  return (words[bit / kWordBits] >> (bit % kWordBits)) & 1u;
}

inline void Set(uint64_t* words, int bit) {
  words[bit / kWordBits] |= uint64_t{1} << (bit % kWordBits);
}

inline void Clear(uint64_t* words, int bit) {
  words[bit / kWordBits] &= ~(uint64_t{1} << (bit % kWordBits));
}

inline int Popcount(const uint64_t* words, int num_words) {
  int count = 0;
  for (int w = 0; w < num_words; ++w) {
    count += __builtin_popcountll(words[w]);
  }
  return count;
}

/// popcount(a & b) without materializing the intersection.
inline int PopcountAnd(const uint64_t* a, const uint64_t* b, int num_words) {
  int count = 0;
  for (int w = 0; w < num_words; ++w) {
    count += __builtin_popcountll(a[w] & b[w]);
  }
  return count;
}

/// Calls fn(bit_index) for every set bit, in ascending order.
template <typename Fn>
inline void ForEachBit(const uint64_t* words, int num_words, Fn&& fn) {
  for (int w = 0; w < num_words; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      fn(w * kWordBits + bit);
      word &= word - 1;
    }
  }
}

}  // namespace bits

/// Dense differentiability matrix over (type, result pair).
class DiffMatrix {
 public:
  DiffMatrix() = default;

  /// `sorted_types` must be ascending and duplicate-free; it becomes the
  /// dense type order. Allocates T * n masks, all clear.
  DiffMatrix(std::vector<feature::TypeId> sorted_types, int num_results);

  int num_results() const { return n_; }
  int num_types() const { return static_cast<int>(types_.size()); }
  /// Words per per-result mask (= WordsFor(num_results())).
  int words_per_mask() const { return words_; }

  /// Dense-indexed type universe, ascending TypeId.
  const std::vector<feature::TypeId>& types() const { return types_; }

  /// Dense index of `t`, or -1 when the type occurs in no result.
  int DenseIndex(feature::TypeId t) const;

  feature::TypeId TypeAt(int dense_type) const {
    return types_[static_cast<size_t>(dense_type)];
  }

  /// Word-packed mask over results j with diff(t, i, j). Diagonal clear.
  const uint64_t* Row(int dense_type, int i) const {
    return bits_.data() +
           (static_cast<size_t>(dense_type) * static_cast<size_t>(n_) +
            static_cast<size_t>(i)) *
               static_cast<size_t>(words_);
  }

  bool Test(int dense_type, int i, int j) const {
    return bits::Test(Row(dense_type, i), j);
  }

  /// Marks results i and j differentiable on the type (symmetric; i != j).
  void Set(int dense_type, int i, int j);

  /// Total number of differentiable (type, unordered pair) combinations —
  /// the instance's DoD ceiling.
  int64_t CountPairs() const;

 private:
  int n_ = 0;
  int words_ = 0;
  std::vector<feature::TypeId> types_;
  std::vector<uint64_t> bits_;  // [dense_type][result][word]
};

}  // namespace xsact::core

#endif  // XSACT_CORE_DIFF_MATRIX_H_
