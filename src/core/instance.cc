#include "core/instance.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace xsact::core {

namespace {

/// The paper's predicate: relative occurrences a, b "differ more than x%
/// of the smaller one". A value absent on one side (occurrence 0) differs
/// from any present value. The epsilon keeps the strict comparison stable
/// against floating-point noise (0.55 - 0.5 slightly exceeds 0.05 in
/// binary), so exact-boundary cases are NOT differentiable, as specified.
bool OccurrencesDiffer(double a, double b, double threshold) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  constexpr double kEps = 1e-9;
  return (hi - lo) > threshold * lo + kEps;
}

}  // namespace

ComparisonInstance ComparisonInstance::Build(
    std::vector<feature::ResultFeatures> results,
    const feature::FeatureCatalog* catalog, double diff_threshold) {
  XSACT_CHECK(catalog != nullptr);
  XSACT_CHECK(diff_threshold >= 0);
  ComparisonInstance inst;
  inst.results_ = std::move(results);
  inst.catalog_ = catalog;
  inst.diff_threshold_ = diff_threshold;

  const int n = inst.num_results();
  inst.entries_.resize(static_cast<size_t>(n));
  inst.groups_.resize(static_cast<size_t>(n));

  for (int i = 0; i < n; ++i) {
    const feature::ResultFeatures& rf = inst.results_[static_cast<size_t>(i)];
    // Group by entity name (ascending) with the validity order inside each
    // group: one sort on (entity, occurrence desc, type id) — type ids are
    // unique, so the key is total and this reproduces the sorted-map
    // bucketing it replaces without per-result map churn.
    std::vector<int32_t> by_entity(rf.types().size());
    std::iota(by_entity.begin(), by_entity.end(), 0);
    std::sort(by_entity.begin(), by_entity.end(),
              [&](int32_t x, int32_t y) {
                const feature::TypeStats& a =
                    rf.types()[static_cast<size_t>(x)];
                const feature::TypeStats& b =
                    rf.types()[static_cast<size_t>(y)];
                const std::string& ea = catalog->EntityOf(a.type_id);
                const std::string& eb = catalog->EntityOf(b.type_id);
                if (ea != eb) return ea < eb;
                if (a.occurrence != b.occurrence) {
                  return a.occurrence > b.occurrence;
                }
                return a.type_id < b.type_id;
              });
    auto& entries = inst.entries_[static_cast<size_t>(i)];
    auto& groups = inst.groups_[static_cast<size_t>(i)];
    for (const int32_t stats_index : by_entity) {
      const feature::TypeStats& ts =
          rf.types()[static_cast<size_t>(stats_index)];
      const std::string& entity_name = catalog->EntityOf(ts.type_id);
      if (groups.empty() || groups.back().entity != entity_name) {
        EntityGroup group;
        group.entity = entity_name;
        group.begin = static_cast<int32_t>(entries.size());
        group.end = group.begin;
        groups.push_back(std::move(group));
      }
      Entry e;
      e.type_id = ts.type_id;
      e.dominant_value = ts.DominantValue();
      e.occurrence = ts.occurrence;
      e.dominant_count = ts.values.empty() ? 0 : ts.values.front().count;
      e.cardinality = ts.entity_cardinality;
      e.group = static_cast<int32_t>(groups.size()) - 1;
      e.stats_index = stats_index;
      entries.push_back(e);
      groups.back().end = static_cast<int32_t>(entries.size());
    }
  }

  // Dense-index every type seen anywhere (ascending TypeId — deterministic
  // and binary-searchable), then stamp each entry with its dense type and
  // build the flat [result x type] -> entry table.
  std::vector<feature::TypeId> all_types;
  for (int i = 0; i < n; ++i) {
    for (const Entry& e : inst.entries_[static_cast<size_t>(i)]) {
      all_types.push_back(e.type_id);
    }
  }
  std::sort(all_types.begin(), all_types.end());
  all_types.erase(std::unique(all_types.begin(), all_types.end()),
                  all_types.end());
  inst.diff_matrix_ = DiffMatrix(std::move(all_types), n);

  const int num_types = inst.diff_matrix_.num_types();
  inst.entry_of_type_.assign(
      static_cast<size_t>(n) * static_cast<size_t>(num_types), -1);
  for (int i = 0; i < n; ++i) {
    auto& entries = inst.entries_[static_cast<size_t>(i)];
    for (size_t k = 0; k < entries.size(); ++k) {
      entries[k].dense_type = inst.diff_matrix_.DenseIndex(entries[k].type_id);
      XSACT_CHECK(entries[k].dense_type >= 0);
      inst.entry_of_type_[static_cast<size_t>(i) *
                              static_cast<size_t>(num_types) +
                          static_cast<size_t>(entries[k].dense_type)] =
          static_cast<int32_t>(k);
    }
  }

  // Precompute the symmetric differentiability masks per type: for every
  // pair of results carrying the type, evaluate the paper's predicate.
  // Stats are resolved through the entries' stats_index — no hash probes.
  for (int dense = 0; dense < num_types; ++dense) {
    for (int i = 0; i < n; ++i) {
      const int ei = inst.EntryIndexOfDenseType(i, dense);
      if (ei < 0) continue;
      const feature::TypeStats& si =
          inst.results_[static_cast<size_t>(i)].types()[static_cast<size_t>(
              inst.entries_[static_cast<size_t>(i)][static_cast<size_t>(ei)]
                  .stats_index)];
      for (int j = i + 1; j < n; ++j) {
        const int ej = inst.EntryIndexOfDenseType(j, dense);
        if (ej < 0) continue;
        const feature::TypeStats& sj =
            inst.results_[static_cast<size_t>(j)].types()[static_cast<size_t>(
                inst.entries_[static_cast<size_t>(j)][static_cast<size_t>(ej)]
                    .stats_index)];
        if (inst.ComputeDiff(si, sj)) {
          inst.diff_matrix_.Set(dense, i, j);
        }
      }
    }
  }
  return inst;
}

bool ComparisonInstance::ComputeDiff(const feature::TypeStats& si,
                                     const feature::TypeStats& sj) const {
  // The displayed feature of t on each side is its dominant value; the
  // pair is differentiable when EITHER displayed feature's relative
  // occurrences differ across the two results by more than the threshold.
  for (const feature::ValueId v : {si.DominantValue(), sj.DominantValue()}) {
    if (v == feature::kInvalidValueId) continue;
    const double rel_i = si.RelativeOccurrenceOf(v);
    const double rel_j = sj.RelativeOccurrenceOf(v);
    if (OccurrencesDiffer(rel_i, rel_j, diff_threshold_)) return true;
  }
  return false;
}

}  // namespace xsact::core
