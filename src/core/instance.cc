#include "core/instance.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/macros.h"

namespace xsact::core {

namespace {

/// The paper's predicate: relative occurrences a, b "differ more than x%
/// of the smaller one". A value absent on one side (occurrence 0) differs
/// from any present value. The epsilon keeps the strict comparison stable
/// against floating-point noise (0.55 - 0.5 slightly exceeds 0.05 in
/// binary), so exact-boundary cases are NOT differentiable, as specified.
bool OccurrencesDiffer(double a, double b, double threshold) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  constexpr double kEps = 1e-9;
  return (hi - lo) > threshold * lo + kEps;
}

}  // namespace

ComparisonInstance ComparisonInstance::Build(
    std::vector<feature::ResultFeatures> results,
    const feature::FeatureCatalog* catalog, double diff_threshold) {
  XSACT_CHECK(catalog != nullptr);
  XSACT_CHECK(diff_threshold >= 0);
  ComparisonInstance inst;
  inst.results_ = std::move(results);
  inst.catalog_ = catalog;
  inst.diff_threshold_ = diff_threshold;

  const int n = inst.num_results();
  inst.entries_.resize(static_cast<size_t>(n));
  inst.groups_.resize(static_cast<size_t>(n));
  inst.type_to_entry_.resize(static_cast<size_t>(n));

  for (int i = 0; i < n; ++i) {
    const feature::ResultFeatures& rf = inst.results_[static_cast<size_t>(i)];
    // Bucket types by entity name (the first half of the type).
    std::map<std::string, std::vector<const feature::TypeStats*>> by_entity;
    for (const feature::TypeStats& ts : rf.types()) {
      by_entity[catalog->EntityOf(ts.type_id)].push_back(&ts);
    }
    auto& entries = inst.entries_[static_cast<size_t>(i)];
    auto& groups = inst.groups_[static_cast<size_t>(i)];
    for (auto& [entity_name, stats] : by_entity) {
      // Validity order: occurrence desc, then type id for determinism.
      std::sort(stats.begin(), stats.end(),
                [](const feature::TypeStats* a, const feature::TypeStats* b) {
                  if (a->occurrence != b->occurrence) {
                    return a->occurrence > b->occurrence;
                  }
                  return a->type_id < b->type_id;
                });
      EntityGroup group;
      group.entity = entity_name;
      group.begin = static_cast<int32_t>(entries.size());
      for (const feature::TypeStats* ts : stats) {
        Entry e;
        e.type_id = ts->type_id;
        e.dominant_value = ts->DominantValue();
        e.occurrence = ts->occurrence;
        e.cardinality = ts->entity_cardinality;
        e.group = static_cast<int32_t>(groups.size());
        entries.push_back(e);
      }
      group.end = static_cast<int32_t>(entries.size());
      groups.push_back(std::move(group));
    }
    auto& type_map = inst.type_to_entry_[static_cast<size_t>(i)];
    for (size_t k = 0; k < entries.size(); ++k) {
      type_map.emplace(entries[k].type_id, static_cast<int>(k));
    }
  }

  // Dense-index every type seen anywhere, then precompute the symmetric
  // differentiability matrix per type.
  for (int i = 0; i < n; ++i) {
    for (const Entry& e : inst.entries_[static_cast<size_t>(i)]) {
      inst.type_index_.emplace(e.type_id,
                               static_cast<int>(inst.type_index_.size()));
    }
  }
  inst.diff_.assign(inst.type_index_.size(),
                    std::vector<uint8_t>(static_cast<size_t>(n) *
                                             static_cast<size_t>(n),
                                         0));
  for (const auto& [type_id, dense] : inst.type_index_) {
    auto& matrix = inst.diff_[static_cast<size_t>(dense)];
    for (int i = 0; i < n; ++i) {
      if (!inst.HasType(i, type_id)) continue;
      for (int j = i + 1; j < n; ++j) {
        if (!inst.HasType(j, type_id)) continue;
        const uint8_t d = inst.ComputeDiff(type_id, i, j) ? 1 : 0;
        matrix[static_cast<size_t>(i) * static_cast<size_t>(n) +
               static_cast<size_t>(j)] = d;
        matrix[static_cast<size_t>(j) * static_cast<size_t>(n) +
               static_cast<size_t>(i)] = d;
      }
    }
  }
  return inst;
}

int ComparisonInstance::EntryIndexOfType(int i, feature::TypeId t) const {
  const auto& map = type_to_entry_[static_cast<size_t>(i)];
  auto it = map.find(t);
  return it == map.end() ? -1 : it->second;
}

bool ComparisonInstance::Differentiable(feature::TypeId t, int i,
                                        int j) const {
  auto it = type_index_.find(t);
  if (it == type_index_.end()) return false;
  const int n = num_results();
  return diff_[static_cast<size_t>(it->second)]
              [static_cast<size_t>(i) * static_cast<size_t>(n) +
               static_cast<size_t>(j)] != 0;
}

bool ComparisonInstance::ComputeDiff(feature::TypeId t, int i, int j) const {
  const feature::TypeStats* si = results_[static_cast<size_t>(i)].Find(t);
  const feature::TypeStats* sj = results_[static_cast<size_t>(j)].Find(t);
  XSACT_CHECK(si != nullptr && sj != nullptr);
  // The displayed feature of t on each side is its dominant value; the
  // pair is differentiable when EITHER displayed feature's relative
  // occurrences differ across the two results by more than the threshold.
  for (const feature::ValueId v : {si->DominantValue(), sj->DominantValue()}) {
    if (v == feature::kInvalidValueId) continue;
    const double rel_i = si->RelativeOccurrenceOf(v);
    const double rel_j = sj->RelativeOccurrenceOf(v);
    if (OccurrencesDiffer(rel_i, rel_j, diff_threshold_)) return true;
  }
  return false;
}

int64_t ComparisonInstance::DifferentiationCeiling() const {
  const int n = num_results();
  int64_t ceiling = 0;
  for (const auto& [type_id, dense] : type_index_) {
    (void)type_id;
    const auto& matrix = diff_[static_cast<size_t>(dense)];
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        ceiling += matrix[static_cast<size_t>(i) * static_cast<size_t>(n) +
                          static_cast<size_t>(j)];
      }
    }
  }
  return ceiling;
}

}  // namespace xsact::core
