#include "core/selection_state.h"

#include "common/macros.h"

namespace xsact::core {

SelectionState::SelectionState(const ComparisonInstance& instance,
                               const std::vector<Dfs>* dfss,
                               std::vector<Dfs>* mutable_dfss)
    : instance_(&instance),
      dfss_(dfss),
      mutable_dfss_(mutable_dfss),
      words_(instance.diff_matrix().words_per_mask()) {
  const int num_types = instance.diff_matrix().num_types();
  XSACT_CHECK(static_cast<int>(dfss_->size()) == instance.num_results());
  selected_.assign(
      static_cast<size_t>(num_types) * static_cast<size_t>(words_), 0);
  versions_.assign(static_cast<size_t>(num_types), 1);
  for (int i = 0; i < instance.num_results(); ++i) {
    const auto& entries = instance.entries(i);
    (*dfss_)[static_cast<size_t>(i)].ForEachSelected([&](int k) {
      SetMaskBit(entries[static_cast<size_t>(k)].dense_type, i);
    });
  }
}

SelectionState::SelectionState(const ComparisonInstance& instance,
                               std::vector<Dfs>* dfss)
    : SelectionState(instance, dfss, dfss) {}

SelectionState::SelectionState(const ComparisonInstance& instance,
                               const std::vector<Dfs>& dfss)
    : SelectionState(instance, &dfss, nullptr) {}

void SelectionState::SetMaskBit(int dense_type, int i) {
  bits::Set(selected_.data() + static_cast<size_t>(dense_type) *
                                   static_cast<size_t>(words_),
            i);
}

void SelectionState::ClearMaskBit(int dense_type, int i) {
  bits::Clear(selected_.data() + static_cast<size_t>(dense_type) *
                                     static_cast<size_t>(words_),
              i);
}

void SelectionState::Add(int i, int entry_index) {
  XSACT_CHECK(mutable_dfss_ != nullptr);
  Dfs& dfs = (*mutable_dfss_)[static_cast<size_t>(i)];
  if (dfs.Contains(entry_index)) return;
  dfs.Add(entry_index);
  const int dense =
      instance_->entries(i)[static_cast<size_t>(entry_index)].dense_type;
  SetMaskBit(dense, i);
  ++versions_[static_cast<size_t>(dense)];
}

void SelectionState::Remove(int i, int entry_index) {
  XSACT_CHECK(mutable_dfss_ != nullptr);
  Dfs& dfs = (*mutable_dfss_)[static_cast<size_t>(i)];
  if (!dfs.Contains(entry_index)) return;
  dfs.Remove(entry_index);
  const int dense =
      instance_->entries(i)[static_cast<size_t>(entry_index)].dense_type;
  ClearMaskBit(dense, i);
  ++versions_[static_cast<size_t>(dense)];
}

void SelectionState::Assign(int i, const Dfs& replacement) {
  XSACT_CHECK(mutable_dfss_ != nullptr);
  XSACT_CHECK(replacement.result_index() == i);
  Dfs& current = (*mutable_dfss_)[static_cast<size_t>(i)];
  const auto& entries = instance_->entries(i);
  current.ForEachSelected([&](int k) {
    if (!replacement.Contains(k)) {
      const int dense = entries[static_cast<size_t>(k)].dense_type;
      ClearMaskBit(dense, i);
      ++versions_[static_cast<size_t>(dense)];
    }
  });
  replacement.ForEachSelected([&](int k) {
    if (!current.Contains(k)) {
      const int dense = entries[static_cast<size_t>(k)].dense_type;
      SetMaskBit(dense, i);
      ++versions_[static_cast<size_t>(dense)];
    }
  });
  current = replacement;
}

int64_t SelectionState::TotalDod() const {
  // Each unordered differentiable pair (i, j) with both sides selecting t
  // is counted from both rows, so the sweep halves at the end.
  const DiffMatrix& matrix = instance_->diff_matrix();
  int64_t twice = 0;
  for (int t = 0; t < matrix.num_types(); ++t) {
    const uint64_t* mask = SelectedMask(t);
    bits::ForEachBit(mask, words_, [&](int i) {
      twice += bits::PopcountAnd(matrix.Row(t, i), mask, words_);
    });
  }
  return twice / 2;
}

double SelectionState::WeightedTotalDod(const TypeWeights& weights) const {
  const DiffMatrix& matrix = instance_->diff_matrix();
  double twice = 0;
  for (int t = 0; t < matrix.num_types(); ++t) {
    const uint64_t* mask = SelectedMask(t);
    int64_t pairs = 0;
    bits::ForEachBit(mask, words_, [&](int i) {
      pairs += bits::PopcountAnd(matrix.Row(t, i), mask, words_);
    });
    if (pairs > 0) twice += static_cast<double>(pairs) * weights.Of(matrix.TypeAt(t));
  }
  return twice / 2;
}

}  // namespace xsact::core
