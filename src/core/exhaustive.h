// ExhaustiveSelector: exact joint optimum by enumeration.
//
// The DFS construction problem is NP-hard (paper Theorem 2.1); this
// solver enumerates every valid DFS assignment and is therefore only
// usable on small instances (it aborts beyond a combination cap). It is
// the ground-truth oracle for the optimality-gap tests and benchmarks.

#ifndef XSACT_CORE_EXHAUSTIVE_H_
#define XSACT_CORE_EXHAUSTIVE_H_

#include "core/selector.h"

namespace xsact::core {

class ExhaustiveSelector : public DfsSelector {
 public:
  /// Hard cap on enumerated assignments (~tens of millions of DoD
  /// evaluations); Select() aborts via XSACT_CHECK beyond it.
  static constexpr int64_t kMaxAssignments = 20'000'000;

  std::string_view name() const override { return "exhaustive"; }
  std::vector<Dfs> Select(const ComparisonInstance& instance,
                          const SelectorOptions& options) const override;

  /// Enumerates all valid DFSs (size <= size_bound) of one result.
  static std::vector<Dfs> EnumerateValid(const ComparisonInstance& instance,
                                         int i, int size_bound);
};

}  // namespace xsact::core

#endif  // XSACT_CORE_EXHAUSTIVE_H_
