// Degree of Differentiation (DoD) — the paper's objective function.
//
//   DoD(D_i, D_j)  = number of feature types t selected in BOTH DFSs on
//                    which the two results are differentiable.
//   DoD(D_1..D_n)  = sum of DoD over all unordered pairs (Desideratum 3).

#ifndef XSACT_CORE_DOD_H_
#define XSACT_CORE_DOD_H_

#include <cstdint>
#include <vector>

#include "core/dfs.h"
#include "core/instance.h"
#include "core/weights.h"

namespace xsact::core {

/// DoD of one pair of DFSs.
int PairDod(const ComparisonInstance& instance, const Dfs& a, const Dfs& b);

/// Total DoD over all unordered pairs.
int64_t TotalDod(const ComparisonInstance& instance,
                 const std::vector<Dfs>& dfss);

/// Marginal contribution of type `t` being selected in D_i, against the
/// current assignment: the number of other results j whose DFS selects t
/// and is differentiable from i on t. This is the quantity both swap
/// algorithms maximize; adding t to D_i raises total DoD by exactly this
/// amount (and removing t lowers it by the same amount).
int TypeGain(const ComparisonInstance& instance, const std::vector<Dfs>& dfss,
             int i, feature::TypeId t);

/// Weighted variants (the future-work extension, see weights.h): every
/// differentiable shared type contributes w(t) per pair instead of 1.
/// With TypeWeights::Uniform() these agree exactly with the unweighted
/// functions.
double WeightedPairDod(const ComparisonInstance& instance, const Dfs& a,
                       const Dfs& b, const TypeWeights& weights);
double WeightedTotalDod(const ComparisonInstance& instance,
                        const std::vector<Dfs>& dfss,
                        const TypeWeights& weights);
double WeightedTypeGain(const ComparisonInstance& instance,
                        const std::vector<Dfs>& dfss, int i,
                        feature::TypeId t, const TypeWeights& weights);

}  // namespace xsact::core

#endif  // XSACT_CORE_DOD_H_
