#include "core/greedy_selector.h"

#include "core/dod.h"

namespace xsact::core {

namespace {

/// Optimistic gain: partners that CARRY the type differentiably,
/// regardless of their current DFS contents. The diff row's popcount is
/// exactly this (the diagonal bit is always clear), so no partner scan.
int PotentialGain(const ComparisonInstance& instance, int i, int dense_type) {
  const DiffMatrix& matrix = instance.diff_matrix();
  return bits::Popcount(matrix.Row(dense_type, i), matrix.words_per_mask());
}

}  // namespace

std::vector<Dfs> GreedySelector::Select(const ComparisonInstance& instance,
                                        const SelectorOptions& options) const {
  const int n = instance.num_results();
  std::vector<Dfs> dfss;
  dfss.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) dfss.emplace_back(instance, i);

  // Phase 1: positive-potential additions, steepest first.
  for (;;) {
    int best_result = -1;
    int best_entry = -1;
    int best_gain = 0;  // strictly positive gains only
    for (int i = 0; i < n; ++i) {
      Dfs& dfs = dfss[static_cast<size_t>(i)];
      if (dfs.size() >= options.size_bound) continue;
      const auto& entries = instance.entries(i);
      for (const EntityGroup& group : instance.groups(i)) {
        // Only frontier entries of each group are valid additions; a
        // frontier is a maximal tie run, so scan until the first
        // unselected occurrence level ends.
        double frontier_occ = -1;
        for (int k = group.begin; k < group.end; ++k) {
          if (dfs.Contains(k)) continue;
          const Entry& e = entries[static_cast<size_t>(k)];
          if (frontier_occ < 0) frontier_occ = e.occurrence;
          if (e.occurrence != frontier_occ) break;
          const int gain = PotentialGain(instance, i, e.dense_type);
          if (gain > best_gain) {
            best_gain = gain;
            best_result = i;
            best_entry = k;
          }
        }
      }
    }
    if (best_result < 0) break;
    dfss[static_cast<size_t>(best_result)].Add(best_entry);
  }

  // Phase 2: keep DFSs reasonable summaries.
  if (options.fill_to_bound) {
    FillToBound(instance, options.size_bound, &dfss);
  }
  return dfss;
}

}  // namespace xsact::core
