// MultiSwapOptimizer: the paper's multi-swap optimal method.
//
// "A set of DFSs is multi-swap optimal if, by making changes to any
//  number of features in a DFS, while keeping its validity and size limit
//  bound, the degree of differentiation cannot increase." (paper §2)
//
// Checking every feature combination is exponential; the paper proposes a
// dynamic programming algorithm. Our DP re-optimizes one result exactly
// while the other DFSs are fixed:
//
//   1. The DoD objective decomposes over feature types, so with the other
//      DFSs fixed each type t of result i has an independent gain
//      (the number of differentiable partners selecting t).
//   2. Within one entity group, a valid selection of exactly k types is
//      forced except inside the boundary tie level, where the best choice
//      is simply the k' highest-gain types of that level (independence).
//      This yields bestGain_g(k) for every k via prefix sums.
//   3. Across entity groups, distributing the budget L is a multiple-
//      choice knapsack solved by DP in O(#groups * L * maxGroupSize).
//
// The DP maximizes (gain, size) lexicographically, so spare budget is
// spent on the most significant remaining features (the "reasonable
// summary" desideratum) without sacrificing DoD. Re-optimization loops
// round-robin over the results until a fixpoint: the assignment is then
// multi-swap optimal by construction.

#ifndef XSACT_CORE_MULTI_SWAP_H_
#define XSACT_CORE_MULTI_SWAP_H_

#include "core/selector.h"
#include "core/weights.h"

namespace xsact::core {

class MultiSwapOptimizer : public DfsSelector {
 public:
  std::string_view name() const override { return "multi-swap"; }
  std::vector<Dfs> Select(const ComparisonInstance& instance,
                          const SelectorOptions& options) const override;

  /// Exposed for tests and the single-result DP benchmark: the exact best
  /// valid DFS (<= size_bound features) for result `i` against the other
  /// DFSs in `dfss`, maximizing (DoD gain, size) lexicographically.
  static Dfs OptimizeOne(const ComparisonInstance& instance,
                         const std::vector<Dfs>& dfss, int i, int size_bound);

  /// Weighted variant of the DP (see weights.h); the unweighted
  /// OptimizeOne is this with uniform weights.
  static Dfs OptimizeOneWeighted(const ComparisonInstance& instance,
                                 const std::vector<Dfs>& dfss, int i,
                                 int size_bound, const TypeWeights& weights);
};

/// Multi-swap optimization of the WEIGHTED objective (paper future work:
/// "considering more factors (e.g., interestingness) when selecting
/// features"). Identical DP; gains are w(t) per differentiable partner.
class WeightedMultiSwapOptimizer : public DfsSelector {
 public:
  explicit WeightedMultiSwapOptimizer(
      WeightScheme scheme = WeightScheme::kInterestingness)
      : scheme_(scheme) {}

  std::string_view name() const override { return "weighted-multi-swap"; }
  WeightScheme scheme() const { return scheme_; }

  std::vector<Dfs> Select(const ComparisonInstance& instance,
                          const SelectorOptions& options) const override;

 private:
  WeightScheme scheme_;
};

}  // namespace xsact::core

#endif  // XSACT_CORE_MULTI_SWAP_H_
